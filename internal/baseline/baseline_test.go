package baseline

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rwr"
)

func testGraph(t testing.TB, seed int64, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddWeightedEdge(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64())
	}
	for i := 0; i < 4*n; i++ {
		b.AddWeightedEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), 1+rng.Float64()*3)
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestIBFMatchesBruteForce(t *testing.T) {
	g := testGraph(t, 5, 60)
	p := rwr.DefaultParams()
	ibf, err := BuildIBF(g, 10, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []graph.NodeID{0, 17, 42} {
		for _, k := range []int{1, 5, 10} {
			got, err := ibf.Query(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.BruteForce(g, q, k, p, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("q=%d k=%d: IBF %v, BF %v", q, k, got, want)
			}
		}
	}
	if ibf.BuildElapsed <= 0 {
		t.Error("no build time recorded")
	}
	if ibf.MemoryBytes() <= int64(g.N())*int64(g.N()) {
		t.Error("memory accounting implausible")
	}
}

func TestFBFMatchesBruteForce(t *testing.T) {
	g := testGraph(t, 6, 60)
	p := rwr.DefaultParams()
	fbf, err := BuildFBF(g, 10, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []graph.NodeID{3, 29} {
		for _, k := range []int{1, 4, 10} {
			got, err := fbf.Query(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.BruteForce(g, q, k, p, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("q=%d k=%d: FBF %v, BF %v", q, k, got, want)
			}
		}
	}
	// FBF memory is K·n, far below IBF's n².
	if fbf.MemoryBytes() >= int64(g.N())*int64(g.N())*8 {
		t.Error("FBF memory should be far below IBF")
	}
}

func TestValidation(t *testing.T) {
	g := testGraph(t, 1, 20)
	p := rwr.DefaultParams()
	if _, err := BuildIBF(g, 0, p, 1); err == nil {
		t.Error("want maxK error")
	}
	if _, err := BuildFBF(g, -1, p, 1); err == nil {
		t.Error("want maxK error")
	}
	ibf, err := BuildIBF(g, 5, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ibf.Query(99, 3); err == nil {
		t.Error("want range error")
	}
	if _, err := ibf.Query(0, 6); err == nil {
		t.Error("want k error")
	}
	fbf, err := BuildFBF(g, 5, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fbf.Query(-1, 3); err == nil {
		t.Error("want range error")
	}
	if _, err := fbf.Query(0, 0); err == nil {
		t.Error("want k error")
	}
}
