// Package baseline implements the two brute-force comparators of Fig. 8:
//
//   - IBF ("infeasible brute force"): materialize the entire proximity
//     matrix P once; each query then costs a single row scan. Memory is
//     O(n²) — 6.7TB for Web-google in the paper — hence "infeasible".
//   - FBF ("feasible brute force"): precompute only each node's exact
//     top-K proximity values (still a full P computation's worth of work,
//     but O(K·n) memory); each query runs PMPN (Algorithm 2) and compares
//     against the cached thresholds.
//
// Both give exact answers and share the ≥ membership rule with the core
// engine.
package baseline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

// IBF is the fully materialized brute-force evaluator.
type IBF struct {
	n    int
	k    int
	p    rwr.Params
	cols [][]float64 // cols[u] = p_u
	topK [][]float64 // topK[u] = exact p̂_u(1:K), descending
	// BuildElapsed is the one-off precomputation cost (the tall first
	// step of the IBF curve in Fig. 8).
	BuildElapsed time.Duration
}

// BuildIBF computes the entire proximity matrix (refusing graphs larger
// than rwr.MaxMatrixNodes) plus each column's exact top-K values.
func BuildIBF(g *graph.Graph, maxK int, p rwr.Params, workers int) (*IBF, error) {
	if maxK <= 0 {
		return nil, fmt.Errorf("baseline: maxK must be positive, got %d", maxK)
	}
	start := time.Now()
	cols, err := rwr.ProximityMatrix(g, p, workers)
	if err != nil {
		return nil, err
	}
	b := &IBF{n: g.N(), k: maxK, p: p, cols: cols, topK: make([][]float64, g.N())}
	for u := 0; u < g.N(); u++ {
		b.topK[u] = vecmath.TopKValues(cols[u], maxK)
	}
	b.BuildElapsed = time.Since(start)
	return b, nil
}

// Query returns the reverse top-k set of q at the minimal possible cost:
// one pass over row q of the materialized matrix.
func (b *IBF) Query(q graph.NodeID, k int) ([]graph.NodeID, error) {
	if int(q) < 0 || int(q) >= b.n {
		return nil, fmt.Errorf("baseline: query node %d out of range [0,%d)", q, b.n)
	}
	if k <= 0 || k > b.k {
		return nil, fmt.Errorf("baseline: k=%d outside [1,%d]", k, b.k)
	}
	var out []graph.NodeID
	for u := 0; u < b.n; u++ {
		if b.cols[u][q] >= b.topK[u][k-1] {
			out = append(out, graph.NodeID(u))
		}
	}
	return out, nil
}

// MemoryBytes returns the resident footprint: the full matrix plus the
// cached thresholds.
func (b *IBF) MemoryBytes() int64 {
	return int64(b.n)*int64(b.n)*8 + int64(b.n)*int64(b.k)*8
}

// FBF is the feasible brute-force evaluator: exact thresholds, per-query
// PMPN.
type FBF struct {
	g    *graph.Graph
	k    int
	p    rwr.Params
	topK [][]float64
	// BuildElapsed is the one-off threshold precomputation cost — the
	// same O(n·m) as IBF's, but without retaining P.
	BuildElapsed time.Duration
}

// BuildFBF computes each node's exact top-K proximity values in parallel
// and discards the vectors.
func BuildFBF(g *graph.Graph, maxK int, p rwr.Params, workers int) (*FBF, error) {
	if maxK <= 0 {
		return nil, fmt.Errorf("baseline: maxK must be positive, got %d", maxK)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	b := &FBF{g: g, k: maxK, p: p, topK: make([][]float64, g.N())}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	jobs := make(chan graph.NodeID)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				res, err := rwr.ProximityVector(g, u, p)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("baseline: node %d: %w", u, err)
					}
					mu.Unlock()
					continue
				}
				b.topK[u] = vecmath.TopKValues(res.Vector, maxK)
			}
		}()
	}
	for u := 0; u < g.N(); u++ {
		jobs <- graph.NodeID(u)
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	b.BuildElapsed = time.Since(start)
	return b, nil
}

// Query runs PMPN to obtain the exact proximities to q and screens them
// against the cached exact thresholds.
func (b *FBF) Query(q graph.NodeID, k int) ([]graph.NodeID, error) {
	if int(q) < 0 || int(q) >= b.g.N() {
		return nil, fmt.Errorf("baseline: query node %d out of range [0,%d)", q, b.g.N())
	}
	if k <= 0 || k > b.k {
		return nil, fmt.Errorf("baseline: k=%d outside [1,%d]", k, b.k)
	}
	res, err := rwr.ProximityTo(b.g, q, b.p)
	if err != nil {
		return nil, err
	}
	var out []graph.NodeID
	// PMPN values carry ε-level noise relative to the power-method
	// thresholds; absorb it exactly like the core engine does.
	const tieTol = 1e-9
	for u := 0; u < b.g.N(); u++ {
		if res.Vector[u] >= b.topK[u][k-1]-tieTol {
			out = append(out, graph.NodeID(u))
		}
	}
	return out, nil
}

// MemoryBytes returns the resident footprint: thresholds only.
func (b *FBF) MemoryBytes() int64 {
	return int64(b.g.N()) * int64(b.k) * 8
}
