package wal

import (
	"path/filepath"
	"testing"
	"time"
)

// TestOnAppendHook checks the append observation callback: one call per
// successful append, byte counts that sum to the journal growth, and no
// call for a rejected append.
func TestOnAppendHook(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edits.wal")
	var calls int
	var bytes int64
	l, _, err := Open(path, Options{OnAppend: func(n int, elapsed time.Duration) {
		calls++
		bytes += int64(n)
		if n <= 0 {
			t.Errorf("append reported %d bytes", n)
		}
		if elapsed < 0 {
			t.Errorf("append reported negative elapsed %v", elapsed)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	recs := testRecords()
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if calls != len(recs) {
		t.Fatalf("hook fired %d times, want %d", calls, len(recs))
	}
	if want := l.Size() - headerSize; bytes != want {
		t.Fatalf("hook counted %d bytes, journal grew %d", bytes, want)
	}
	// A watermark violation is rejected before the write; no observation.
	if err := l.Append(Record{Watermark: 1}); err == nil {
		t.Fatal("stale watermark accepted")
	}
	if calls != len(recs) {
		t.Fatalf("hook fired on a rejected append (%d calls)", calls)
	}
}
