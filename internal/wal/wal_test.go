package wal

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func testRecords() []Record {
	return []Record{
		{Watermark: 1, Theta: 0, Edits: []graph.EdgeEdit{{From: 0, To: 1}}},
		{Watermark: 2, Theta: 1e-4, Edits: []graph.EdgeEdit{
			{From: 3, To: 4, Weight: 2.5},
			{From: 4, To: 3, Remove: true},
		}},
		{Watermark: 5, Theta: 0.25, Edits: []graph.EdgeEdit{
			{From: 100, To: 0, Weight: 0.125},
			{From: 0, To: 100},
			{From: 7, To: 8, Remove: true},
		}},
	}
}

func recordsEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Watermark != w.Watermark || g.Theta != w.Theta || len(g.Edits) != len(w.Edits) {
			t.Fatalf("record %d = %+v, want %+v", i, g, w)
		}
		for j := range w.Edits {
			if g.Edits[j] != w.Edits[j] {
				t.Fatalf("record %d edit %d = %+v, want %+v", i, j, g.Edits[j], w.Edits[j])
			}
		}
	}
}

func TestWALAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edits.wal")
	l, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 0 || rec.DroppedBytes != 0 {
		t.Fatalf("fresh journal recovered %+v", rec)
	}
	want := testRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.Batches() != len(want) {
		t.Fatalf("Batches() = %d, want %d", l.Batches(), len(want))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every record comes back bit-identical, no tail dropped.
	l2, rec2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec2.DroppedBytes != 0 || rec2.TailError != nil {
		t.Fatalf("clean journal reported tail damage: %+v", rec2)
	}
	recordsEqual(t, rec2.Records, want)

	// Appends continue past the recovered watermark...
	next := Record{Watermark: 6, Edits: []graph.EdgeEdit{{From: 1, To: 2}}}
	if err := l2.Append(next); err != nil {
		t.Fatal(err)
	}
	// ...and regressions are refused.
	if err := l2.Append(Record{Watermark: 6, Edits: []graph.EdgeEdit{{From: 2, To: 1}}}); err == nil {
		t.Fatal("duplicate watermark accepted")
	}
}

// TestWALTornTailEveryTruncation cuts a three-record journal at every byte
// offset: the scan must never panic, never lose an intact record, and
// reopening the truncated file must recover exactly the record prefix the
// cut preserved — the crash-mid-append contract.
func TestWALTornTailEveryTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edits.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	var boundaries []int64 // valid prefix lengths: header, then after each record
	boundaries = append(boundaries, headerSize)
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, l.Size())
	}
	l.Close()
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := headerSize; cut <= len(full); cut++ {
		// How many whole records survive a cut at this offset?
		wantRecs := 0
		wantValid := int64(headerSize)
		for i, b := range boundaries[1:] {
			if int64(cut) >= b {
				wantRecs = i + 1
				wantValid = b
			}
		}
		recs, valid, tailErr, err := Scan(full[:cut])
		if err != nil {
			t.Fatalf("cut %d: scan error: %v", cut, err)
		}
		if len(recs) != wantRecs || valid != wantValid {
			t.Fatalf("cut %d: scanned %d records valid=%d, want %d records valid=%d",
				cut, len(recs), valid, wantRecs, wantValid)
		}
		if torn := int64(cut) != wantValid; torn != (tailErr != nil) {
			t.Fatalf("cut %d: torn=%v but tailErr=%v", cut, torn, tailErr)
		}
		recordsEqual(t, recs, want[:wantRecs])
	}

	// Reopen at a torn offset: the file is truncated back to the last
	// intact record and appends work again.
	cut := int(boundaries[2]) + 5 // two records + a torn third prefix
	tornPath := filepath.Join(dir, "torn.wal")
	if err := os.WriteFile(tornPath, full[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec, err := Open(tornPath, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if rec.DroppedBytes != 5 || rec.TailError == nil {
		t.Fatalf("torn reopen: dropped %d (err %v), want 5 bytes dropped", rec.DroppedBytes, rec.TailError)
	}
	recordsEqual(t, rec.Records, want[:2])
	if st, _ := os.Stat(tornPath); st.Size() != boundaries[2] {
		t.Fatalf("torn tail not truncated: size %d, want %d", st.Size(), boundaries[2])
	}
	if err := l2.Append(Record{Watermark: 9, Edits: []graph.EdgeEdit{{From: 0, To: 2}}}); err != nil {
		t.Fatal(err)
	}
}

// TestWALCorruptMiddleStopsScan flips a byte inside the middle record: the
// scan must keep the intact prefix and refuse everything from the damage on
// (records are not self-delimiting once a checksum fails).
func TestWALCorruptMiddleStopsScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edits.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	var afterFirst int64
	for i, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			afterFirst = l.Size()
		}
	}
	l.Close()
	data, _ := os.ReadFile(path)
	data[afterFirst+recordPrefix+3] ^= 0x40 // inside record 2's payload
	recs, valid, tailErr, err := Scan(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || valid != afterFirst || tailErr == nil {
		t.Fatalf("corrupt middle: %d records valid=%d err=%v, want 1 record valid=%d", len(recs), valid, tailErr, afterFirst)
	}
	recordsEqual(t, recs, want[:1])
}

func TestWALTruncateBelow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edits.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords() // watermarks 1, 2, 5
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateBelow(2); err != nil {
		t.Fatal(err)
	}
	if l.Batches() != 1 {
		t.Fatalf("after TruncateBelow(2): %d batches, want 1", l.Batches())
	}
	// The live log keeps appending to the new file.
	if err := l.Append(Record{Watermark: 7, Edits: []graph.EdgeEdit{{From: 2, To: 3}}}); err != nil {
		t.Fatal(err)
	}
	// Even when everything is dropped, the watermark floor survives.
	if err := l.TruncateBelow(100); err != nil {
		t.Fatal(err)
	}
	if l.Batches() != 0 || l.Size() != headerSize {
		t.Fatalf("after full truncation: %d batches %d bytes", l.Batches(), l.Size())
	}
	if err := l.Append(Record{Watermark: 7, Edits: []graph.EdgeEdit{{From: 2, To: 3}}}); err == nil {
		t.Fatal("watermark reuse accepted after truncation")
	}
	if err := l.Append(Record{Watermark: 8, Edits: []graph.EdgeEdit{{From: 2, To: 3}}}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l2, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec.Records) != 1 || rec.Records[0].Watermark != 8 {
		t.Fatalf("recovered %+v, want single watermark-8 record", rec.Records)
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a.wal")
	if err := os.WriteFile(path, []byte("definitely not a journal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Options{}); err == nil {
		t.Fatal("foreign file opened as journal")
	}
}

// TestWALScanRejectsBadRecords hand-crafts records that frame and checksum
// correctly but violate record invariants; each must end the valid prefix.
func TestWALScanRejectsBadRecords(t *testing.T) {
	base := testRecords()[0]
	mut := []struct {
		name string
		rec  Record
	}{
		{"zero watermark", Record{Watermark: 0, Edits: base.Edits}},
		{"nan theta", Record{Watermark: 1, Theta: math.NaN(), Edits: base.Edits}},
		{"inf theta", Record{Watermark: 1, Theta: math.Inf(1), Edits: base.Edits}},
		{"negative theta", Record{Watermark: 1, Theta: -1, Edits: base.Edits}},
		{"no edits", Record{Watermark: 1}},
		{"negative node", Record{Watermark: 1, Edits: []graph.EdgeEdit{{From: -1, To: 0}}}},
		{"nan weight", Record{Watermark: 1, Edits: []graph.EdgeEdit{{From: 0, To: 1, Weight: math.NaN()}}}},
		{"inf weight", Record{Watermark: 1, Edits: []graph.EdgeEdit{{From: 0, To: 1, Weight: math.Inf(1)}}}},
	}
	for _, m := range mut {
		data := AppendRecord([]byte(Magic), m.rec)
		recs, valid, tailErr, err := Scan(data)
		if err != nil {
			t.Fatalf("%s: header error: %v", m.name, err)
		}
		if len(recs) != 0 || valid != headerSize || tailErr == nil {
			t.Errorf("%s: accepted (%d records, valid=%d, tailErr=%v)", m.name, len(recs), valid, tailErr)
		}
	}
}

func TestWALNoSyncStillDurableAcrossClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edits.wal")
	l, _, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte(Magic)) {
		t.Fatal("journal missing header")
	}
	recs, _, tailErr, err := Scan(data)
	if err != nil || tailErr != nil {
		t.Fatalf("scan: %v / %v", err, tailErr)
	}
	recordsEqual(t, recs, want)
}
