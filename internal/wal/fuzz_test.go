package wal

import (
	"bytes"
	"testing"

	"repro/internal/graph"
)

// FuzzScan holds the journal reader to the same bar as the index loaders:
// never panic, never hang, and never return a record that violates the
// record invariants, on any byte string. The seeds cover a well-formed
// multi-record journal, torn prefixes, and flipped bytes; the fuzzer
// mutates from there.
func FuzzScan(f *testing.F) {
	well := []byte(Magic)
	for _, r := range []Record{
		{Watermark: 1, Theta: 0, Edits: []graph.EdgeEdit{{From: 0, To: 1}}},
		{Watermark: 3, Theta: 0.5, Edits: []graph.EdgeEdit{
			{From: 2, To: 0, Weight: 4},
			{From: 0, To: 2, Remove: true},
		}},
	} {
		well = AppendRecord(well, r)
	}
	f.Add(well)
	f.Add(well[:len(well)-3])
	f.Add(well[:headerSize])
	f.Add([]byte(Magic))
	f.Add([]byte("RTKWAL99garbage"))
	flipped := bytes.Clone(well)
	flipped[headerSize+recordPrefix+2] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, _, err := Scan(data)
		if err != nil {
			return // not a journal at all
		}
		if valid < headerSize || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [%d,%d]", valid, headerSize, len(data))
		}
		// Whatever the scan accepted must re-encode to exactly the valid
		// prefix (scan/append are inverses) and satisfy the invariants.
		out := []byte(Magic)
		prev := uint64(0)
		for _, r := range recs {
			if r.Watermark <= prev {
				t.Fatalf("non-ascending watermark %d after %d", r.Watermark, prev)
			}
			prev = r.Watermark
			if len(r.Edits) == 0 {
				t.Fatal("accepted record with no edits")
			}
			for _, e := range r.Edits {
				if e.From < 0 || e.To < 0 {
					t.Fatalf("accepted negative node id %d→%d", e.From, e.To)
				}
			}
			out = AppendRecord(out, r)
		}
		if !bytes.Equal(out, data[:valid]) {
			t.Fatalf("re-encoding %d records does not reproduce the %d-byte valid prefix", len(recs), valid)
		}
	})
}
