package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

// failingDir returns an already-closed directory handle, so Sync (and
// Close) on it fail — the injectable fault for the openDir hook.
func failingDir(t *testing.T) func(string) (*os.File, error) {
	t.Helper()
	return func(dir string) (*os.File, error) {
		d, err := os.Open(dir)
		if err != nil {
			return nil, err
		}
		if err := d.Close(); err != nil {
			return nil, err
		}
		return d, nil
	}
}

// TestWALTruncateBelowPropagatesDirSyncFailure is the regression test for
// the silent `d.Sync()` in syncDir: a directory fsync failure after the
// truncation rename must surface to the caller (the checkpoint aborts and
// retries) instead of being swallowed — and must still leave the log
// appendable, because the rename itself succeeded and the old fd points at
// an unlinked inode.
func TestWALTruncateBelowPropagatesDirSyncFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edits.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, r := range testRecords() { // watermarks 1, 2, 5
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}

	prev := openDir
	openDir = failingDir(t)
	err = l.TruncateBelow(2)
	openDir = prev

	if err == nil {
		t.Fatal("TruncateBelow swallowed the directory-sync failure")
	}
	if !strings.Contains(err.Error(), "not durable") {
		t.Fatalf("TruncateBelow error %q does not name the durability failure", err)
	}

	// The in-memory swap must have completed despite the error: the log
	// still accepts appends, and they land in the renamed (truncated) file.
	if l.Batches() != 1 {
		t.Fatalf("after failed-sync truncation: %d batches, want 1", l.Batches())
	}
	if err := l.Append(Record{Watermark: 9, Edits: []graph.EdgeEdit{{From: 1, To: 2}}}); err != nil {
		t.Fatalf("append after failed-sync truncation: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := make([]uint64, 0, len(rec.Records))
	for _, r := range rec.Records {
		got = append(got, r.Watermark)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 9 {
		t.Fatalf("recovered watermarks %v, want [5 9]", got)
	}
}

// TestWALTruncateBelowDirSyncSuccessUnaffected pins the happy path through
// the now-error-returning syncDir.
func TestWALTruncateBelowDirSyncSuccessUnaffected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edits.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, r := range testRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.TruncateBelow(2); err != nil {
		t.Fatalf("TruncateBelow with healthy directory: %v", err)
	}
	if l.Batches() != 1 {
		t.Fatalf("after truncation: %d batches, want 1", l.Batches())
	}
}
