// Package wal implements the durable write-ahead edit journal behind the
// serving daemon's maintenance pipeline. Each accepted edit batch is
// appended as one length-prefixed, CRC32C-checksummed record (the same
// Castagnoli polynomial the index format v2 sections use) and fsync'd
// before the enqueue acknowledgement returns, so a 202-acknowledged batch
// survives process death. On startup the log is scanned back: a torn or
// corrupt tail — the half-written record of a crash mid-append — is
// detected by its checksum and truncated away, and every intact record is
// returned for replay through the ordinary maintenance pipeline.
//
// File layout, little-endian throughout:
//
//	header (8 B): magic "RTKWAL01"
//	records, back to back:
//	  u32 payloadLen, u32 crc32c(payload), payload
//	payload:
//	  u64 watermark, f64 theta, u32 numEdits, u32 pad(0)
//	  per edit: u32 from, u32 to, f64 weight, u32 flags (bit0 = remove)
//
// Records carry strictly increasing watermarks; a scan stops at the first
// record that is short, fails its checksum, or breaks monotonicity, and
// reports everything before it as the valid prefix. The log never reorders
// or rewrites acknowledged bytes in place — the only destructive operation
// is TruncateBelow, which atomically drops records at or below a
// checkpointed watermark by rewriting the suffix to a sibling file and
// renaming it into place.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"repro/internal/graph"
)

// Magic identifies a journal file; the trailing digit versions the record
// format.
const Magic = "RTKWAL01"

const (
	headerSize   = 8
	recordPrefix = 8  // u32 len + u32 crc
	payloadFixed = 24 // watermark + theta + numEdits + pad
	editSize     = 20 // from + to + weight + flags
	flagRemove   = 1 << 0
	// maxRecordBytes bounds one record's payload: edits are 20 B each and
	// the serving layer caps a batch body at 8 MiB, so 64 MiB of payload is
	// far beyond any record the writer emits. A scan treats a larger
	// length prefix as corruption instead of believing it and allocating.
	maxRecordBytes = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled edit batch: the watermark the batch was
// acknowledged at, its staleness threshold, and the edits themselves.
type Record struct {
	Watermark uint64
	Theta     float64
	Edits     []graph.EdgeEdit
}

// encodedSize returns the on-disk footprint of the record, prefix included.
func (r Record) encodedSize() int {
	return recordPrefix + payloadFixed + editSize*len(r.Edits)
}

// appendPayload encodes the record payload (everything the CRC covers).
func appendPayload(buf []byte, r Record) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, r.Watermark)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.Theta))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.Edits)))
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	for _, e := range r.Edits {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.From))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.To))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.Weight))
		var flags uint32
		if e.Remove {
			flags |= flagRemove
		}
		buf = binary.LittleEndian.AppendUint32(buf, flags)
	}
	return buf
}

// AppendRecord encodes one framed record (length, checksum, payload) onto
// buf. The exact inverse of what Scan decodes.
func AppendRecord(buf []byte, r Record) []byte {
	payload := appendPayload(nil, r)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

// decodeRecord decodes one payload whose checksum already verified.
// Structural failures (an implausible edit count, a negative node id, a
// non-finite weight) reject the record — the checksum guarantees the bytes
// are what the writer wrote, but Scan also accepts hand-crafted files.
func decodeRecord(payload []byte) (Record, error) {
	if len(payload) < payloadFixed {
		return Record{}, fmt.Errorf("wal: record payload %d bytes, need at least %d", len(payload), payloadFixed)
	}
	r := Record{
		Watermark: binary.LittleEndian.Uint64(payload[0:]),
		Theta:     math.Float64frombits(binary.LittleEndian.Uint64(payload[8:])),
	}
	numEdits := int(binary.LittleEndian.Uint32(payload[16:]))
	if len(payload) != payloadFixed+editSize*numEdits {
		return Record{}, fmt.Errorf("wal: record claims %d edits, payload holds %d bytes", numEdits, len(payload))
	}
	if r.Watermark == 0 {
		return Record{}, fmt.Errorf("wal: record with zero watermark")
	}
	if math.IsNaN(r.Theta) || math.IsInf(r.Theta, 0) || r.Theta < 0 {
		return Record{}, fmt.Errorf("wal: record theta %g not a finite non-negative", r.Theta)
	}
	if numEdits == 0 {
		return Record{}, fmt.Errorf("wal: record with no edits")
	}
	r.Edits = make([]graph.EdgeEdit, numEdits)
	for i := range r.Edits {
		p := payload[payloadFixed+editSize*i:]
		from := int32(binary.LittleEndian.Uint32(p[0:]))
		to := int32(binary.LittleEndian.Uint32(p[4:]))
		w := math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
		flags := binary.LittleEndian.Uint32(p[16:])
		if from < 0 || to < 0 {
			return Record{}, fmt.Errorf("wal: edit %d names negative node (%d→%d)", i, from, to)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return Record{}, fmt.Errorf("wal: edit %d weight %g not a finite non-negative", i, w)
		}
		if flags&^flagRemove != 0 {
			return Record{}, fmt.Errorf("wal: edit %d has unknown flags %#x", i, flags)
		}
		r.Edits[i] = graph.EdgeEdit{
			From:   graph.NodeID(from),
			To:     graph.NodeID(to),
			Weight: w,
			Remove: flags&flagRemove != 0,
		}
	}
	return r, nil
}

// Scan decodes a journal image: every intact record of the valid prefix,
// the prefix's byte length (header included), and — when the image ends in
// a torn or corrupt record — a description of why the scan stopped. A
// short, checksum-failing, or watermark-regressing record ends the valid
// prefix; everything before it is trustworthy because each record's CRC
// verified. Only a missing or wrong header is a hard error: that is not a
// torn tail but a file that was never a journal. Never panics on any
// input.
func Scan(data []byte) (recs []Record, validLen int64, tailErr error, err error) {
	if len(data) < headerSize || string(data[:headerSize]) != Magic {
		return nil, 0, nil, fmt.Errorf("wal: bad journal header (not a %s file)", Magic)
	}
	pos := headerSize
	prevWM := uint64(0)
	for {
		rest := data[pos:]
		if len(rest) == 0 {
			return recs, int64(pos), nil, nil
		}
		if len(rest) < recordPrefix {
			return recs, int64(pos), fmt.Errorf("wal: torn record prefix (%d trailing bytes)", len(rest)), nil
		}
		plen := int(binary.LittleEndian.Uint32(rest[0:]))
		crc := binary.LittleEndian.Uint32(rest[4:])
		if plen < payloadFixed || plen > maxRecordBytes {
			return recs, int64(pos), fmt.Errorf("wal: implausible record length %d", plen), nil
		}
		if len(rest) < recordPrefix+plen {
			return recs, int64(pos), fmt.Errorf("wal: torn record payload (%d of %d bytes)", len(rest)-recordPrefix, plen), nil
		}
		payload := rest[recordPrefix : recordPrefix+plen]
		if crc32.Checksum(payload, castagnoli) != crc {
			return recs, int64(pos), fmt.Errorf("wal: record checksum mismatch at offset %d", pos), nil
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			return recs, int64(pos), derr, nil
		}
		if rec.Watermark <= prevWM {
			return recs, int64(pos), fmt.Errorf("wal: watermark %d not above predecessor %d", rec.Watermark, prevWM), nil
		}
		prevWM = rec.Watermark
		recs = append(recs, rec)
		pos += recordPrefix + plen
	}
}

// Options configures a Log.
type Options struct {
	// NoSync skips the per-append fsync. Appends then only guarantee
	// ordering within the OS page cache — a process crash keeps every
	// acknowledged batch, a machine crash may lose a recent suffix. The
	// recovery benchmark uses it to price the fsync; production serving
	// should not.
	NoSync bool
	// OnAppend, when set, observes every successful Append with the
	// framed record size and the wall clock of the write+fsync. It is
	// called while the log's mutex is held (so observations are ordered
	// exactly like the appends) and must therefore be cheap and must not
	// call back into the Log.
	OnAppend func(bytes int, elapsed time.Duration)
}

// Log is an open journal file positioned for appends. Safe for concurrent
// use; Append and TruncateBelow serialize on an internal mutex.
type Log struct {
	mu      sync.Mutex
	path    string   // immutable after Open
	f       *os.File // guarded by mu
	size    int64    // guarded by mu
	batches int      // guarded by mu
	lastWM  uint64   // guarded by mu
	noSync  bool     // immutable after Open
	buf     []byte   // guarded by mu

	onAppend func(bytes int, elapsed time.Duration) // immutable after Open
}

// Recovery reports what Open found in an existing journal.
type Recovery struct {
	// Records is every intact record, in watermark order.
	Records []Record
	// DroppedBytes is the length of the torn/corrupt tail truncated away
	// (0 for a cleanly closed journal).
	DroppedBytes int64
	// TailError describes the tail corruption, nil when DroppedBytes is 0.
	TailError error
}

// Open opens (creating if absent) the journal at path, scans it, truncates
// any torn tail so the file ends at the last intact record, and returns
// the log positioned for appends plus everything recovered. The caller
// replays the recovered records before appending new ones; appended
// watermarks must continue ascending past the last recovered record.
func Open(path string, opts Options) (*Log, *Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l := &Log{path: path, f: f, noSync: opts.NoSync, onAppend: opts.OnAppend}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	rec := &Recovery{}
	if st.Size() == 0 {
		// Fresh journal: write and persist the header now, so a crash
		// before the first append still leaves a well-formed file.
		if _, err := f.Write([]byte(Magic)); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		if err := l.sync(); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		l.size = headerSize
		return l, rec, nil
	}
	data, err := io.ReadAll(f)
	if err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	recs, valid, tailErr, err := Scan(data)
	if err != nil {
		_ = f.Close()
		return nil, nil, fmt.Errorf("wal: %s: %w", path, err)
	}
	if valid < int64(len(data)) {
		if err := f.Truncate(valid); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		if err := l.sync(); err != nil {
			_ = f.Close()
			return nil, nil, err
		}
		rec.DroppedBytes = int64(len(data)) - valid
		rec.TailError = tailErr
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, nil, err
	}
	l.size = valid
	l.batches = len(recs)
	if len(recs) > 0 {
		l.lastWM = recs[len(recs)-1].Watermark
	}
	rec.Records = recs
	return l, rec, nil
}

// sync flushes the file unless the log runs unsynced.
func (l *Log) sync() error {
	if l.noSync {
		return nil
	}
	//rtklint:ignore lockguard caller holds l.mu — sync is an internal helper of Open/Append/Close
	return l.f.Sync()
}

// Append frames, writes and (unless NoSync) fsyncs one record. When it
// returns nil the record is durable — this is the fsync the serving layer
// performs before acknowledging a batch. Watermarks must strictly ascend.
func (l *Log) Append(r Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: append to closed journal")
	}
	if r.Watermark <= l.lastWM {
		return fmt.Errorf("wal: watermark %d not above last journaled %d", r.Watermark, l.lastWM)
	}
	start := time.Now()
	l.buf = AppendRecord(l.buf[:0], r)
	if _, err := l.f.Write(l.buf); err != nil {
		// A short write leaves a torn tail; the next Open truncates it.
		return err
	}
	if err := l.sync(); err != nil {
		return err
	}
	l.size += int64(len(l.buf))
	l.batches++
	l.lastWM = r.Watermark
	if l.onAppend != nil {
		l.onAppend(len(l.buf), time.Since(start))
	}
	return nil
}

// Size returns the journal's current byte length.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Batches returns how many records the journal currently holds.
func (l *Log) Batches() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.batches
}

// TruncateBelow atomically drops every record with watermark ≤ wm — the
// checkpoint's journal truncation. The surviving suffix is rewritten to a
// sibling temp file, fsync'd, and renamed over the journal, so a crash at
// any point leaves either the old complete journal or the new one, never a
// half-truncated file. Appends are blocked for the duration (the suffix is
// small right after a checkpoint).
func (l *Log) TruncateBelow(wm uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: truncate of closed journal")
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := io.ReadAll(l.f)
	if err != nil {
		return err
	}
	recs, _, _, err := Scan(data)
	if err != nil {
		return err
	}
	tmp := l.path + ".tmp"
	tf, err := os.Create(tmp)
	if err != nil {
		return err
	}
	buf := []byte(Magic)
	kept := 0
	var lastWM uint64
	for _, r := range recs {
		if r.Watermark <= wm {
			continue
		}
		buf = AppendRecord(buf, r)
		kept++
		lastWM = r.Watermark
	}
	if _, err := tf.Write(buf); err != nil {
		_ = tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Sync(); err != nil {
		_ = tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename is only durable once the directory entry is persisted.
	// Even if that fails the in-memory swap below must still happen — the
	// old fd points at the unlinked inode, and appending there would lose
	// acknowledged data — so finish the swap first and report after.
	dirErr := syncDir(l.path)
	// The old fd still points at the unlinked inode; swap to the new file
	// positioned at its end.
	nf, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		_ = nf.Close()
		return err
	}
	// Close error on the unlinked old file is unactionable: every record
	// that matters is already synced in the new file.
	_ = l.f.Close()
	l.f = nf
	l.size = int64(len(buf))
	l.batches = kept
	if kept > 0 {
		l.lastWM = lastWM
	}
	// lastWM is sticky when nothing survived: appends must still ascend
	// past everything ever journaled, truncated or not.
	if dirErr != nil {
		return fmt.Errorf("wal: truncation rename not durable: %w", dirErr)
	}
	return nil
}

// Close flushes and closes the journal. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// openDir opens a directory for fsync. A variable so tests can inject a
// handle whose Sync fails and assert the error propagates.
var openDir = os.Open

// syncDir fsyncs the directory containing path, persisting a rename, and
// reports failure to the caller — a rename that is not in the directory's
// on-disk entry can vanish on power loss, which is exactly the data loss
// the journal exists to prevent. Filesystems that refuse directory fsync
// outright (EINVAL) are tolerated: there the rename is as durable as that
// filesystem makes anything.
func syncDir(path string) error {
	d, err := openDir(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if err != nil && errors.Is(err, syscall.EINVAL) {
		err = nil
	}
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
