// Package partition assigns every node of a graph to exactly one of P
// shards, deterministically: the same inputs always produce the same
// assignment, on every machine, so a partition map computed at index-build
// time can be re-derived (or verified) by every shard and by the query
// coordinator independently. The map is tiny — a strategy tag plus at most
// P+1 boundaries — and is serialized alongside each per-shard index slice
// (see lbindex), so a slice file is self-describing: it knows which shard
// it is, out of how many, under which assignment.
//
// Three strategies are provided:
//
//   - Hash: shard(u) = mix64(u, seed) mod P. Spreads hot node-id ranges
//     (generators and crawlers both emit correlated ids) evenly, at the
//     price of non-contiguous ownership.
//   - Range: P near-equal contiguous node-id ranges. Ownership is an
//     interval, so per-shard rows are one dense slab and coordinator
//     merges are concatenations.
//   - Balanced: contiguous ranges again, but boundaries are placed so each
//     shard owns ≈ the same total DEGREE (out+in edges), not the same node
//     count — the balance-aware option for skewed graphs, where the heavy
//     head of a power-law degree sequence would otherwise overload shard 0.
//
// All strategies cover [0, n) exactly once; Validate checks this in O(P)
// (and tests re-check it exhaustively).
package partition

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Strategy selects the node→shard assignment rule.
type Strategy int

const (
	// Hash assigns by a seeded 64-bit mix of the node id.
	Hash Strategy = iota
	// Range assigns P near-equal contiguous node-id ranges.
	Range
	// Balanced assigns contiguous ranges with ≈ equal total degree.
	Balanced
)

// String returns the strategy name accepted by ParseStrategy.
func (s Strategy) String() string {
	switch s {
	case Hash:
		return "hash"
	case Range:
		return "range"
	case Balanced:
		return "balanced"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Strategies lists the valid -strategy values, for CLI help messages.
func Strategies() []string { return []string{"hash", "range", "balanced"} }

// ParseStrategy decodes a CLI strategy name.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "hash":
		return Hash, nil
	case "range":
		return Range, nil
	case "balanced":
		return Balanced, nil
	default:
		return 0, fmt.Errorf("partition: unknown strategy %q (valid: hash, range, balanced)", name)
	}
}

// Map is one deterministic assignment of n nodes to p shards. Immutable
// after construction and safe for concurrent use.
type Map struct {
	n        int
	p        int
	strategy Strategy
	// seed perturbs the Hash mix so different deployments can decorrelate
	// their assignments; ignored by the contiguous strategies.
	seed uint64
	// bounds holds the p+1 range boundaries of the contiguous strategies
	// (shard s owns [bounds[s], bounds[s+1])); nil for Hash.
	bounds []int32
}

// NewHash builds a seeded hash partition of n nodes into p shards.
func NewHash(n, p int, seed uint64) (*Map, error) {
	if err := checkShape(n, p); err != nil {
		return nil, err
	}
	return &Map{n: n, p: p, strategy: Hash, seed: seed}, nil
}

// NewRange builds a contiguous partition of n nodes into p near-equal
// ranges (the first n mod p shards own one extra node).
func NewRange(n, p int) (*Map, error) {
	if err := checkShape(n, p); err != nil {
		return nil, err
	}
	bounds := make([]int32, p+1)
	base, extra := n/p, n%p
	pos := 0
	for s := 0; s < p; s++ {
		bounds[s] = int32(pos)
		pos += base
		if s < extra {
			pos++
		}
	}
	bounds[p] = int32(n)
	return &Map{n: n, p: p, strategy: Range, bounds: bounds}, nil
}

// NewBalanced builds a contiguous partition whose boundaries equalize the
// total degree (out+in edges, a proxy for both index-row weight and
// decision cost) across shards, via the greedy prefix-sum cut: each
// boundary advances until the running weight reaches the next multiple of
// total/p. Deterministic for a given graph.
func NewBalanced(g graph.View, p int) (*Map, error) {
	n := g.N()
	if err := checkShape(n, p); err != nil {
		return nil, err
	}
	bounds := make([]int32, p+1)
	total := 0.0
	for u := 0; u < n; u++ {
		total += float64(g.OutDegree(graph.NodeID(u)) + g.InDegree(graph.NodeID(u)))
	}
	acc, next := 0.0, 1
	for u := 0; u < n && next < p; u++ {
		acc += float64(g.OutDegree(graph.NodeID(u)) + g.InDegree(graph.NodeID(u)))
		for next < p && acc >= total*float64(next)/float64(p) {
			// Never let a shard start past the nodes that remain: every
			// trailing shard keeps at least one candidate boundary slot.
			cut := u + 1
			if max := n - (p - next); cut > max {
				cut = max
			}
			bounds[next] = int32(cut)
			next++
		}
	}
	for ; next < p; next++ {
		bounds[next] = int32(n - (p - next))
	}
	bounds[p] = int32(n)
	// Boundaries must be non-decreasing; the clamps above keep them so,
	// but an inconsistent View could break the prefix logic.
	m := &Map{n: n, p: p, strategy: Balanced, bounds: bounds}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// New builds a map with the named strategy — the one constructor CLI and
// bench front ends share. g is only read by Balanced (its node count must
// be n); seed only by Hash.
func New(strategy Strategy, g graph.View, n, p int, seed uint64) (*Map, error) {
	switch strategy {
	case Hash:
		return NewHash(n, p, seed)
	case Range:
		return NewRange(n, p)
	case Balanced:
		if g == nil {
			return nil, fmt.Errorf("partition: balanced strategy needs the graph")
		}
		if g.N() != n {
			return nil, fmt.Errorf("partition: balanced strategy over %d nodes, graph has %d", n, g.N())
		}
		return NewBalanced(g, p)
	default:
		return nil, fmt.Errorf("partition: unknown strategy %d", int(strategy))
	}
}

// FromParts reconstructs a Map from its serialized fields (the inverse of
// Parts), validating shape and coverage.
func FromParts(strategy Strategy, n, p int, seed uint64, bounds []int32) (*Map, error) {
	if err := checkShape(n, p); err != nil {
		return nil, err
	}
	m := &Map{n: n, p: p, strategy: strategy, seed: seed}
	switch strategy {
	case Hash:
		if len(bounds) != 0 {
			return nil, fmt.Errorf("partition: hash map carries %d bounds, want none", len(bounds))
		}
	case Range, Balanced:
		m.bounds = append([]int32(nil), bounds...)
	default:
		return nil, fmt.Errorf("partition: unknown strategy %d", int(strategy))
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Parts returns the serializable fields of the map. The returned bounds
// slice aliases internal storage and must not be modified.
func (m *Map) Parts() (strategy Strategy, n, p int, seed uint64, bounds []int32) {
	return m.strategy, m.n, m.p, m.seed, m.bounds
}

func checkShape(n, p int) error {
	if n <= 0 {
		return fmt.Errorf("partition: node count must be positive, got %d", n)
	}
	if p <= 0 {
		return fmt.Errorf("partition: shard count must be positive, got %d", p)
	}
	if p > n {
		return fmt.Errorf("partition: cannot split %d nodes into %d shards", n, p)
	}
	return nil
}

// N returns the number of nodes covered.
func (m *Map) N() int { return m.n }

// P returns the number of shards.
func (m *Map) P() int { return m.p }

// Strategy returns the assignment rule.
func (m *Map) Strategy() Strategy { return m.strategy }

// Seed returns the hash seed (0 for contiguous strategies).
func (m *Map) Seed() uint64 { return m.seed }

// mix64 is SplitMix64's finalizer: a fixed, platform-independent 64-bit
// mixing function, so hash assignments are stable across builds.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Owner returns the shard owning node u. Nodes at or beyond N() (fresh
// identifiers introduced by growth) are owned too: hash assigns them like
// any other id, the contiguous strategies fold them into the last shard —
// see Grow.
func (m *Map) Owner(u graph.NodeID) int {
	if u < 0 {
		panic(fmt.Sprintf("partition: negative node id %d", u))
	}
	if m.strategy == Hash {
		return int(mix64(uint64(u) ^ m.seed) % uint64(m.p))
	}
	if int(u) >= m.n {
		return m.p - 1
	}
	// bounds is short (P+1); binary search beats a scan from P ≈ 8 up and
	// is never worse below that.
	s := sort.Search(m.p, func(s int) bool { return m.bounds[s+1] > int32(u) })
	return s
}

// OwnedCount returns the number of nodes shard s owns. O(1) for contiguous
// strategies, O(n) for hash.
func (m *Map) OwnedCount(s int) int {
	m.checkShard(s)
	if m.bounds != nil {
		return int(m.bounds[s+1] - m.bounds[s])
	}
	count := 0
	for u := 0; u < m.n; u++ {
		if m.Owner(graph.NodeID(u)) == s {
			count++
		}
	}
	return count
}

// Owned materializes the ascending list of nodes shard s owns.
func (m *Map) Owned(s int) []graph.NodeID {
	m.checkShard(s)
	if m.bounds != nil {
		lo, hi := m.bounds[s], m.bounds[s+1]
		out := make([]graph.NodeID, 0, hi-lo)
		for u := lo; u < hi; u++ {
			out = append(out, u)
		}
		return out
	}
	var out []graph.NodeID
	for u := 0; u < m.n; u++ {
		if m.Owner(graph.NodeID(u)) == s {
			out = append(out, graph.NodeID(u))
		}
	}
	return out
}

func (m *Map) checkShard(s int) {
	if s < 0 || s >= m.p {
		panic(fmt.Sprintf("partition: shard %d outside [0,%d)", s, m.p))
	}
}

// Grow returns a map covering n2 ≥ N() nodes under the same assignment for
// existing ids: hash maps are unchanged (the mix covers any id), contiguous
// maps extend the last shard's range. Growth therefore never migrates a
// node between shards — the invariant the serving layer's incremental
// maintenance relies on.
func (m *Map) Grow(n2 int) (*Map, error) {
	if n2 < m.n {
		return nil, fmt.Errorf("partition: cannot shrink %d → %d nodes", m.n, n2)
	}
	if n2 == m.n {
		return m, nil
	}
	g := &Map{n: n2, p: m.p, strategy: m.strategy, seed: m.seed}
	if m.bounds != nil {
		g.bounds = append([]int32(nil), m.bounds...)
		g.bounds[m.p] = int32(n2)
	}
	return g, nil
}

// Equal reports whether two maps describe the same assignment fields.
func (m *Map) Equal(o *Map) bool {
	if m.n != o.n || m.p != o.p || m.strategy != o.strategy || m.seed != o.seed || len(m.bounds) != len(o.bounds) {
		return false
	}
	for i := range m.bounds {
		if m.bounds[i] != o.bounds[i] {
			return false
		}
	}
	return true
}

// Validate checks that the map covers [0, n) exactly once: shard count and
// node count positive, and (for contiguous strategies) boundaries
// non-decreasing from 0 to n. Hash coverage is structural — every id has
// exactly one mix value — so only the shape needs checking.
func (m *Map) Validate() error {
	if err := checkShape(m.n, m.p); err != nil {
		return err
	}
	switch m.strategy {
	case Hash:
		if m.bounds != nil {
			return fmt.Errorf("partition: hash map carries bounds")
		}
	case Range, Balanced:
		if len(m.bounds) != m.p+1 {
			return fmt.Errorf("partition: %d bounds for %d shards, want %d", len(m.bounds), m.p, m.p+1)
		}
		if m.bounds[0] != 0 || m.bounds[m.p] != int32(m.n) {
			return fmt.Errorf("partition: bounds span [%d,%d], want [0,%d]", m.bounds[0], m.bounds[m.p], m.n)
		}
		for s := 0; s < m.p; s++ {
			if m.bounds[s] > m.bounds[s+1] {
				return fmt.Errorf("partition: bounds decrease at shard %d (%d > %d)", s, m.bounds[s], m.bounds[s+1])
			}
		}
	default:
		return fmt.Errorf("partition: unknown strategy %d", int(m.strategy))
	}
	return nil
}

// String summarizes the map for logs.
func (m *Map) String() string {
	return fmt.Sprintf("partition{%s n=%d P=%d}", m.strategy, m.n, m.p)
}
