package partition

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// build constructs one map per strategy over the given shape.
func buildMaps(t *testing.T, g graph.View, p int) map[string]*Map {
	t.Helper()
	n := g.N()
	hash, err := NewHash(n, p, 42)
	if err != nil {
		t.Fatalf("NewHash(%d,%d): %v", n, p, err)
	}
	rng, err := NewRange(n, p)
	if err != nil {
		t.Fatalf("NewRange(%d,%d): %v", n, p, err)
	}
	bal, err := NewBalanced(g, p)
	if err != nil {
		t.Fatalf("NewBalanced(%d,%d): %v", n, p, err)
	}
	return map[string]*Map{"hash": hash, "range": rng, "balanced": bal}
}

// TestCoverageExactlyOnce is the partition correctness property: every
// strategy assigns every node to exactly one shard, and Owned agrees with
// Owner.
func TestCoverageExactlyOnce(t *testing.T) {
	g, err := gen.WebGraph(257, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 4, 7, 16, 257} {
		for name, m := range buildMaps(t, g, p) {
			if err := m.Validate(); err != nil {
				t.Fatalf("%s P=%d: Validate: %v", name, p, err)
			}
			seen := make([]int, g.N())
			total := 0
			for s := 0; s < p; s++ {
				owned := m.Owned(s)
				if got := m.OwnedCount(s); got != len(owned) {
					t.Errorf("%s P=%d shard %d: OwnedCount=%d, Owned has %d", name, p, s, got, len(owned))
				}
				prev := graph.NodeID(-1)
				for _, u := range owned {
					if u <= prev {
						t.Fatalf("%s P=%d shard %d: Owned not strictly ascending at %d", name, p, s, u)
					}
					prev = u
					seen[u]++
					if own := m.Owner(u); own != s {
						t.Fatalf("%s P=%d: node %d in Owned(%d) but Owner says %d", name, p, u, s, own)
					}
				}
				total += len(owned)
			}
			if total != g.N() {
				t.Errorf("%s P=%d: %d nodes assigned, graph has %d", name, p, total, g.N())
			}
			for u, c := range seen {
				if c != 1 {
					t.Errorf("%s P=%d: node %d assigned %d times", name, p, u, c)
				}
			}
		}
	}
}

// TestDeterminism rebuilds each map from scratch and from its serialized
// parts; all three must agree on every assignment.
func TestDeterminism(t *testing.T) {
	g, err := gen.SocialGraph(300, 11)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range buildMaps(t, g, 5) {
		var again *Map
		switch m.Strategy() {
		case Hash:
			again, err = NewHash(m.N(), m.P(), m.Seed())
		case Range:
			again, err = NewRange(m.N(), m.P())
		case Balanced:
			again, err = NewBalanced(g, m.P())
		}
		if err != nil {
			t.Fatalf("%s: rebuild: %v", name, err)
		}
		if !m.Equal(again) {
			t.Errorf("%s: rebuild differs from original", name)
		}
		strategy, n, p, seed, bounds := m.Parts()
		round, err := FromParts(strategy, n, p, seed, bounds)
		if err != nil {
			t.Fatalf("%s: FromParts: %v", name, err)
		}
		if !m.Equal(round) {
			t.Errorf("%s: FromParts round trip differs", name)
		}
		for u := graph.NodeID(0); int(u) < m.N(); u++ {
			if m.Owner(u) != again.Owner(u) || m.Owner(u) != round.Owner(u) {
				t.Fatalf("%s: owner of %d unstable across reconstructions", name, u)
			}
		}
	}
}

// TestBalancedWeights checks the balance-aware strategy actually bounds
// per-shard degree skew well below the naive range split's on a power-law
// graph.
func TestBalancedWeights(t *testing.T) {
	g, err := gen.SocialGraph(2000, 5)
	if err != nil {
		t.Fatal(err)
	}
	const p = 4
	weight := func(m *Map, s int) float64 {
		var w float64
		for _, u := range m.Owned(s) {
			w += float64(g.OutDegree(u) + g.InDegree(u))
		}
		return w
	}
	skew := func(m *Map) float64 {
		min, max := weight(m, 0), weight(m, 0)
		for s := 1; s < p; s++ {
			w := weight(m, s)
			if w < min {
				min = w
			}
			if w > max {
				max = w
			}
		}
		return max / min
	}
	bal, err := NewBalanced(g, p)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := NewRange(g.N(), p)
	if err != nil {
		t.Fatal(err)
	}
	if bs, rs := skew(bal), skew(rng); bs >= rs && bs > 1.5 {
		// Preferential attachment front-loads degree mass onto early ids,
		// so the plain range split must be visibly worse.
		t.Errorf("balanced skew %.2f not better than range skew %.2f", bs, rs)
	}
}

func TestGrow(t *testing.T) {
	g, err := gen.WebGraph(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	for name, m := range buildMaps(t, g, 3) {
		grown, err := m.Grow(120)
		if err != nil {
			t.Fatalf("%s: Grow: %v", name, err)
		}
		if grown.N() != 120 {
			t.Fatalf("%s: grown N=%d", name, grown.N())
		}
		if err := grown.Validate(); err != nil {
			t.Fatalf("%s: grown map invalid: %v", name, err)
		}
		for u := graph.NodeID(0); int(u) < m.N(); u++ {
			if m.Owner(u) != grown.Owner(u) {
				t.Fatalf("%s: growth migrated node %d (%d → %d)", name, u, m.Owner(u), grown.Owner(u))
			}
		}
		// New ids are owned by SOME shard, and consistently so: the old
		// map must predict the same owner (growth is decided before the
		// grown map exists on the edit path).
		for u := graph.NodeID(100); u < 120; u++ {
			own := grown.Owner(u)
			if own < 0 || own >= 3 {
				t.Fatalf("%s: new node %d owner %d out of range", name, u, own)
			}
			if m.Owner(u) != own {
				t.Fatalf("%s: old and grown maps disagree on new node %d", name, u)
			}
		}
		if _, err := m.Grow(50); err == nil {
			t.Errorf("%s: shrinking Grow accepted", name)
		}
	}
}

func TestShapeErrors(t *testing.T) {
	if _, err := NewRange(5, 6); err == nil {
		t.Error("P > n accepted")
	}
	if _, err := NewHash(0, 1, 0); err == nil {
		t.Error("empty node set accepted")
	}
	if _, err := NewRange(10, 0); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("unknown strategy name accepted")
	}
	for _, name := range Strategies() {
		if _, err := ParseStrategy(name); err != nil {
			t.Errorf("listed strategy %q rejected: %v", name, err)
		}
	}
	if _, err := FromParts(Range, 10, 2, 0, []int32{0, 4, 9}); err == nil {
		t.Error("bounds not ending at n accepted")
	}
	if _, err := FromParts(Hash, 10, 2, 0, []int32{0, 5, 10}); err == nil {
		t.Error("hash map with bounds accepted")
	}
}
