package serve

import (
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/evolve"
	"repro/internal/graph"
)

// ParamError is a rejected reverse top-k query parameter: a message for the
// caller plus the HTTP status the serving layer maps it to. The CLI
// (cmd/rtkquery) and the HTTP handlers share ValidateQueryParams, so both
// front ends reject identical inputs with identical messages.
type ParamError struct {
	// Status is the HTTP status code (400 or 404) for the rejection.
	Status int
	msg    string
}

func (e *ParamError) Error() string { return e.msg }

// ValidateQueryParams checks a reverse top-k request (query node q, depth
// k) against a serving pair of n nodes whose index supports k up to maxK.
// It returns nil when the query is servable.
func ValidateQueryParams(q, k, n, maxK int) *ParamError {
	if q < 0 || q >= n {
		return &ParamError{
			Status: http.StatusNotFound,
			msg:    fmt.Sprintf("unknown node %d (graph has %d nodes)", q, n),
		}
	}
	if k < 1 || k > maxK {
		return &ParamError{
			Status: http.StatusBadRequest,
			msg:    fmt.Sprintf("k=%d outside [1,%d] supported by the index", k, maxK),
		}
	}
	return nil
}

// ModeApprox is the mode parameter value selecting the anytime approximate
// tier, and the CacheKey.Mode value its cached responses are filed under.
const ModeApprox = "approx"

// DefaultApproxEps is the undecided-fraction budget when mode=approx is
// requested without an explicit eps.
const DefaultApproxEps = 0.1

// ParseApproxParams validates the mode/eps/delta request parameters shared
// by the HTTP handlers and cmd/rtkquery. mode "" or "exact" selects the
// exact tier (eps/delta must then be absent); mode "approx" selects the
// anytime tier with eps defaulting to DefaultApproxEps in [0,1) and delta
// defaulting to 0 in [0,0.5]. Parameters are passed as raw strings so the
// empty string can mean "unset".
func ParseApproxParams(mode, epsStr, deltaStr string) (approx bool, eps, delta float64, perr *ParamError) {
	bad := func(format string, args ...any) (bool, float64, float64, *ParamError) {
		return false, 0, 0, &ParamError{Status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
	}
	switch mode {
	case "", "exact":
		if epsStr != "" || deltaStr != "" {
			return bad("eps/delta are only valid with mode=approx")
		}
		return false, 0, 0, nil
	case ModeApprox:
	default:
		return bad("unknown mode %q (want exact or approx)", mode)
	}
	eps = DefaultApproxEps
	if epsStr != "" {
		v, err := strconv.ParseFloat(epsStr, 64)
		if err != nil {
			return bad("malformed eps=%q: %v", epsStr, err)
		}
		eps = v
	}
	if math.IsNaN(eps) || eps < 0 || eps >= 1 {
		return bad("eps=%g outside [0,1)", eps)
	}
	if deltaStr != "" {
		v, err := strconv.ParseFloat(deltaStr, 64)
		if err != nil {
			return bad("malformed delta=%q: %v", deltaStr, err)
		}
		delta = v
	}
	if math.IsNaN(delta) || delta < 0 || delta > 0.5 {
		return bad("delta=%g outside [0,0.5]", delta)
	}
	return true, eps, delta, nil
}

// ValidateEdits checks an edit batch and its staleness threshold before any
// watermark is assigned: empty batches, non-finite or negative theta,
// negative node identifiers and non-finite, negative or subnormal weights
// are all rejected with errBadEdits (HTTP 400). Subnormal weights (below
// graph.MinNormalWeight) are refused because they can sum into an
// out-weight normalizer whose reciprocal overflows to +Inf, which would
// NaN-poison every proximity score downstream of the edited node — the
// graph layer rejects them too, but rejecting here keeps the bad batch out
// of the journal and returns a 400 instead of a failed maintenance batch.
// Every front end — the in-process API, the single-daemon handler and the
// fan-out coordinator — shares this helper, so all reject identical inputs
// with identical messages; it also matches what the write-ahead journal's
// reader accepts, so a batch that validates here always survives a journal
// round trip.
func ValidateEdits(edits []evolve.Edit, theta float64) error {
	if len(edits) == 0 {
		return fmt.Errorf("%w: no edits given", errBadEdits)
	}
	if math.IsNaN(theta) || math.IsInf(theta, 0) {
		return fmt.Errorf("%w: staleness threshold must be finite, got %g", errBadEdits, theta)
	}
	if theta < 0 {
		return fmt.Errorf("%w: negative staleness threshold %g", errBadEdits, theta)
	}
	for i, e := range edits {
		if e.From < 0 || e.To < 0 {
			return fmt.Errorf("%w: edit %d names negative node (%d→%d)", errBadEdits, i, e.From, e.To)
		}
		if math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) || e.Weight < 0 {
			return fmt.Errorf("%w: edit %d weight %g not a finite non-negative", errBadEdits, i, e.Weight)
		}
		if e.Weight != 0 && e.Weight < graph.MinNormalWeight {
			return fmt.Errorf("%w: edit %d weight %g below minimum %g (subnormal weights would zero a transition-column normalizer)", errBadEdits, i, e.Weight, graph.MinNormalWeight)
		}
	}
	return nil
}
