package serve

import (
	"fmt"
	"net/http"
)

// ParamError is a rejected reverse top-k query parameter: a message for the
// caller plus the HTTP status the serving layer maps it to. The CLI
// (cmd/rtkquery) and the HTTP handlers share ValidateQueryParams, so both
// front ends reject identical inputs with identical messages.
type ParamError struct {
	// Status is the HTTP status code (400 or 404) for the rejection.
	Status int
	msg    string
}

func (e *ParamError) Error() string { return e.msg }

// ValidateQueryParams checks a reverse top-k request (query node q, depth
// k) against a serving pair of n nodes whose index supports k up to maxK.
// It returns nil when the query is servable.
func ValidateQueryParams(q, k, n, maxK int) *ParamError {
	if q < 0 || q >= n {
		return &ParamError{
			Status: http.StatusNotFound,
			msg:    fmt.Sprintf("unknown node %d (graph has %d nodes)", q, n),
		}
	}
	if k < 1 || k > maxK {
		return &ParamError{
			Status: http.StatusBadRequest,
			msg:    fmt.Sprintf("k=%d outside [1,%d] supported by the index", k, maxK),
		}
	}
	return nil
}
