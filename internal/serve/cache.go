package serve

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// CacheKey identifies one cached result. The epoch component ties every
// entry to the snapshot that produced it: after a snapshot swap, lookups
// carry the new epoch and can never alias a stale answer. Mode, Eps and
// Delta discriminate the result families that share (Q, K, Epoch): an
// anytime answer under one budget is a different value from the exact
// answer (and from an anytime answer under another budget), so keying them
// apart is what guarantees an approx body can never be served to an exact
// request or vice versa. The zero value of the three fields is the exact
// query, keeping every pre-existing key literal meaning what it meant.
type CacheKey struct {
	Q graph.NodeID
	K int
	// Mode is "" for exact queries, ModeApprox for anytime ones.
	Mode string
	// Eps and Delta are the anytime budget (always 0 for exact). Both are
	// validated finite, so the comparable-struct key never holds a NaN.
	Eps   float64
	Delta float64
	Epoch uint64
}

// CacheStatus classifies how GetOrCompute satisfied a call.
type CacheStatus int

const (
	// StatusMiss: this call ran compute and (on success) stored the result.
	StatusMiss CacheStatus = iota
	// StatusHit: served from a completed cache entry.
	StatusHit
	// StatusCoalesced: an identical call was already computing; this call
	// waited for it and shares its result (single-flight deduplication).
	StatusCoalesced
	// StatusBypass: caching is disabled (capacity 0); compute ran directly.
	StatusBypass
)

// String returns the HTTP X-Cache header value for the status.
func (s CacheStatus) String() string {
	switch s {
	case StatusMiss:
		return "MISS"
	case StatusHit:
		return "HIT"
	case StatusCoalesced:
		return "COALESCED"
	case StatusBypass:
		return "BYPASS"
	default:
		return fmt.Sprintf("CacheStatus(%d)", int(s))
	}
}

// flight is one in-progress computation awaited by coalesced callers.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

type entry struct {
	key CacheKey
	val []byte
}

// cacheEntryOverhead approximates the per-entry bookkeeping cost beyond the
// value bytes themselves: the key, the list element, the map slot and the
// entry header. Accounting it keeps a flood of tiny results from occupying
// unbounded real memory behind a "bytes" budget that would otherwise read
// as nearly empty.
const cacheEntryOverhead = 128

// entryCost is the budget charge for caching one value.
func entryCost(val []byte) int64 { return int64(len(val)) + cacheEntryOverhead }

// Cache is an LRU result cache with single-flight deduplication, bounded by
// BYTES rather than entries: a k=1000 response is charged what it actually
// weighs, so heavy traffic with large k cannot grow memory past the budget
// the way an entry-counted bound would. Values are the exact serialized
// response bytes, so a cached response is byte-identical to the fresh
// computation that produced it. Errors are never cached: a failed compute
// leaves no entry, and its coalesced waiters receive the same error.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64                      // guarded by mu; sum of entryCost over cached entries
	ll       *list.List                 // guarded by mu; front = most recently used
	items    map[CacheKey]*list.Element // guarded by mu
	flights  map[CacheKey]*flight       // guarded by mu
	// liveEpoch (valid when haveLive) is the newest epoch DropOtherEpochs
	// kept. A compute that straggles past a publish must not re-insert an
	// entry for a dropped epoch: the key could never be looked up again,
	// so it would only waste budget. Guarded by mu.
	liveEpoch uint64
	haveLive  bool // guarded by mu

	// Eviction accounting, by cause: entries evicted to stay under the
	// byte budget, entries dropped on an epoch swap, and completed values
	// refused because they exceed the whole budget (or their epoch was
	// already stale at insert). Read by the metrics layer.
	evictedCapacity atomic.Int64
	droppedEpoch    atomic.Int64
	skippedOversize atomic.Int64
}

// NewCache creates a cache bounded to maxBytes of accounted payload.
// maxBytes ≤ 0 disables caching AND deduplication: GetOrCompute always runs
// compute.
func NewCache(maxBytes int64) *Cache {
	c := &Cache{maxBytes: maxBytes}
	if maxBytes > 0 {
		c.ll = list.New()
		c.items = make(map[CacheKey]*list.Element)
		c.flights = make(map[CacheKey]*flight)
	}
	return c
}

// Cap returns the configured byte budget (≤ 0 when disabled).
func (c *Cache) Cap() int64 { return c.maxBytes }

// Bytes returns the accounted size of all completed cached entries.
func (c *Cache) Bytes() int64 {
	if c.maxBytes <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Len returns the number of completed cached entries.
func (c *Cache) Len() int {
	if c.maxBytes <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// GetOrCompute returns the cached value for k, or computes it. Concurrent
// calls for the same key are deduplicated: exactly one runs compute, the
// rest wait and share its outcome. The returned status reports which path
// served the call.
func (c *Cache) GetOrCompute(k CacheKey, compute func() ([]byte, error)) ([]byte, CacheStatus, error) {
	if c == nil || c.maxBytes <= 0 {
		val, err := compute()
		return val, StatusBypass, err
	}
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, StatusHit, nil
	}
	if f, ok := c.flights[k]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val, StatusCoalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	completed := false
	defer func() {
		c.mu.Lock()
		delete(c.flights, k)
		cost := entryCost(f.val)
		if completed && f.err == nil && cost <= c.maxBytes && (!c.haveLive || k.Epoch == c.liveEpoch) {
			c.items[k] = c.ll.PushFront(&entry{key: k, val: f.val})
			c.bytes += cost
			// Evict least-recently-used entries until back under budget. A
			// single oversized value was skipped above: evicting the whole
			// cache to admit something that cannot fit helps no one.
			for c.bytes > c.maxBytes {
				oldest := c.ll.Back()
				e := oldest.Value.(*entry)
				c.ll.Remove(oldest)
				delete(c.items, e.key)
				c.bytes -= entryCost(e.val)
				c.evictedCapacity.Add(1)
			}
		} else if completed && f.err == nil {
			// A completed value the cache refused: too big for the whole
			// budget, or computed for an epoch that was dropped mid-flight.
			c.skippedOversize.Add(1)
		} else if !completed {
			// compute panicked: release waiters with an error instead of
			// leaving them blocked forever (the panic itself propagates).
			f.err = fmt.Errorf("serve: compute aborted")
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	completed = true
	return f.val, StatusMiss, f.err
}

// DropOtherEpochs removes every completed entry whose epoch differs from
// keep, returning how many were removed. Store.Publish invokes it on every
// epoch bump: old-epoch entries can never be looked up again (keys carry
// the new epoch), so dropping them eagerly frees their bytes immediately
// instead of letting dead entries squat in the budget until eviction
// happens to reach them.
func (c *Cache) DropOtherEpochs(keep uint64) int {
	if c == nil || c.maxBytes <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.liveEpoch, c.haveLive = keep, true
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry); e.key.Epoch != keep {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.bytes -= entryCost(e.val)
			dropped++
		}
		el = next
	}
	c.droppedEpoch.Add(int64(dropped))
	return dropped
}
