package serve

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/graph"
)

// CacheKey identifies one cached result. The epoch component ties every
// entry to the snapshot that produced it: after a snapshot swap, lookups
// carry the new epoch and can never alias a stale answer.
type CacheKey struct {
	Q     graph.NodeID
	K     int
	Epoch uint64
}

// CacheStatus classifies how GetOrCompute satisfied a call.
type CacheStatus int

const (
	// StatusMiss: this call ran compute and (on success) stored the result.
	StatusMiss CacheStatus = iota
	// StatusHit: served from a completed cache entry.
	StatusHit
	// StatusCoalesced: an identical call was already computing; this call
	// waited for it and shares its result (single-flight deduplication).
	StatusCoalesced
	// StatusBypass: caching is disabled (capacity 0); compute ran directly.
	StatusBypass
)

// String returns the HTTP X-Cache header value for the status.
func (s CacheStatus) String() string {
	switch s {
	case StatusMiss:
		return "MISS"
	case StatusHit:
		return "HIT"
	case StatusCoalesced:
		return "COALESCED"
	case StatusBypass:
		return "BYPASS"
	default:
		return fmt.Sprintf("CacheStatus(%d)", int(s))
	}
}

// flight is one in-progress computation awaited by coalesced callers.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

type entry struct {
	key CacheKey
	val []byte
}

// Cache is a bounded LRU result cache with single-flight deduplication.
// Values are the exact serialized response bytes, so a cached response is
// byte-identical to the fresh computation that produced it. Errors are
// never cached: a failed compute leaves no entry, and its coalesced waiters
// receive the same error.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[CacheKey]*list.Element
	flights  map[CacheKey]*flight
	// liveEpoch (valid when haveLive) is the newest epoch DropOtherEpochs
	// kept. A compute that straggles past a publish must not re-insert an
	// entry for a dropped epoch: the key could never be looked up again,
	// so it would only waste an LRU slot.
	liveEpoch uint64
	haveLive  bool
}

// NewCache creates a cache bounded to capacity entries. capacity ≤ 0
// disables caching AND deduplication: GetOrCompute always runs compute.
func NewCache(capacity int) *Cache {
	c := &Cache{capacity: capacity}
	if capacity > 0 {
		c.ll = list.New()
		c.items = make(map[CacheKey]*list.Element)
		c.flights = make(map[CacheKey]*flight)
	}
	return c
}

// Cap returns the configured entry bound (≤ 0 when disabled).
func (c *Cache) Cap() int { return c.capacity }

// Len returns the number of completed cached entries.
func (c *Cache) Len() int {
	if c.capacity <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// GetOrCompute returns the cached value for k, or computes it. Concurrent
// calls for the same key are deduplicated: exactly one runs compute, the
// rest wait and share its outcome. The returned status reports which path
// served the call.
func (c *Cache) GetOrCompute(k CacheKey, compute func() ([]byte, error)) ([]byte, CacheStatus, error) {
	if c == nil || c.capacity <= 0 {
		val, err := compute()
		return val, StatusBypass, err
	}
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		c.mu.Unlock()
		return val, StatusHit, nil
	}
	if f, ok := c.flights[k]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val, StatusCoalesced, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[k] = f
	c.mu.Unlock()

	completed := false
	defer func() {
		c.mu.Lock()
		delete(c.flights, k)
		if completed && f.err == nil && (!c.haveLive || k.Epoch == c.liveEpoch) {
			c.items[k] = c.ll.PushFront(&entry{key: k, val: f.val})
			for c.ll.Len() > c.capacity {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.items, oldest.Value.(*entry).key)
			}
		} else if !completed {
			// compute panicked: release waiters with an error instead of
			// leaving them blocked forever (the panic itself propagates).
			f.err = fmt.Errorf("serve: compute aborted")
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = compute()
	completed = true
	return f.val, StatusMiss, f.err
}

// DropOtherEpochs removes every completed entry whose epoch differs from
// keep, returning how many were removed. Called after a snapshot publish:
// old-epoch entries can never be looked up again (keys carry the new
// epoch), so dropping them frees their LRU slots immediately instead of
// waiting for eviction.
func (c *Cache) DropOtherEpochs(keep uint64) int {
	if c == nil || c.capacity <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.liveEpoch, c.haveLive = keep, true
	dropped := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry); e.key.Epoch != keep {
			c.ll.Remove(el)
			delete(c.items, e.key)
			dropped++
		}
		el = next
	}
	return dropped
}
