package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/lbindex"
	"repro/internal/obs"
	"repro/internal/partition"
)

// scrapeMetrics fetches and parses the daemon's /metrics exposition,
// failing the test on any malformed line — the same strictness a real
// Prometheus scraper applies.
func scrapeMetrics(t *testing.T, baseURL string) map[string]*obs.Family {
	t.Helper()
	resp, body := get(t, baseURL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type %q", ct)
	}
	fams, err := obs.ParseText(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("malformed exposition: %v\n%s", err, body)
	}
	return fams
}

// TestMetricsEndpoint drives exact, cached and approx traffic through one
// daemon and asserts the /metrics exposition parses and covers the query,
// cache, batching and maintenance families with values matching the
// traffic actually sent.
func TestMetricsEndpoint(t *testing.T) {
	g := testGraph(t, 11, 120)
	idx := testIndex(t, g, 16)
	_, ts := newTestServer(t, g, idx, Config{})

	// Two distinct exact queries, then a repeat (cache hit), then approx.
	for _, q := range []string{"q=3&k=5", "q=7&k=5", "q=3&k=5", "q=9&k=5&mode=approx&eps=0.2&delta=0.01"} {
		resp, body := get(t, ts.URL+"/v1/reverse-topk?"+q)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %s: %d %s", q, resp.StatusCode, body)
		}
		if id := resp.Header.Get(RequestIDHeader); len(id) != 16 {
			t.Fatalf("query %s: response request ID %q, want 16 hex chars", q, id)
		}
	}

	fams := scrapeMetrics(t, ts.URL)
	for _, name := range []string{
		"rtk_queries_served_total",
		"rtk_queries_computed_total",
		"rtk_query_cache_total",
		"rtk_queries_rejected_total",
		"rtk_query_failures_total",
		"rtk_query_duration_seconds",
		"rtk_query_phase_seconds",
		"rtk_cache_bytes",
		"rtk_cache_entries",
		"rtk_cache_evictions_total",
		"rtk_epoch",
		"rtk_nodes",
		"rtk_inflight",
		"rtk_maint_queue_depth",
		"rtk_enqueued_watermark",
		"rtk_applied_watermark",
		"rtk_overlay_delta_edges",
		"rtk_maint_duration_seconds",
		"rtk_maint_errors_total",
		"rtk_compactions_total",
		"rtk_checkpoint_age_seconds",
		"rtk_spmm_groups_total",
		"rtk_approx_rounds_total",
		"rtk_uptime_seconds",
	} {
		if fams[name] == nil {
			t.Errorf("family %s missing from exposition", name)
		}
	}

	if v, ok := obs.SampleValue(fams, "rtk_queries_served_total", map[string]string{"mode": "exact"}); !ok || v != 3 {
		t.Errorf("served{mode=exact} = %v (ok=%v), want 3", v, ok)
	}
	if v, ok := obs.SampleValue(fams, "rtk_queries_served_total", map[string]string{"mode": "approx"}); !ok || v != 1 {
		t.Errorf("served{mode=approx} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := obs.SampleValue(fams, "rtk_queries_computed_total", map[string]string{"mode": "exact"}); !ok || v != 2 {
		t.Errorf("computed{mode=exact} = %v (ok=%v), want 2", v, ok)
	}
	if v, ok := obs.SampleValue(fams, "rtk_query_cache_total", map[string]string{"status": "hit"}); !ok || v != 1 {
		t.Errorf("cache{status=hit} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := obs.SampleValue(fams, "rtk_query_duration_seconds_count", map[string]string{"mode": "exact"}); !ok || v != 3 {
		t.Errorf("query_duration_count{mode=exact} = %v (ok=%v), want 3", v, ok)
	}
	// The computed queries produced pmpn phase observations.
	if v, ok := obs.SampleValue(fams, "rtk_query_phase_seconds_count", map[string]string{"phase": "pmpn"}); !ok || v < 2 {
		t.Errorf("phase_count{phase=pmpn} = %v (ok=%v), want >= 2", v, ok)
	}
	if v, ok := obs.SampleValue(fams, "rtk_nodes", nil); !ok || v != float64(g.N()) {
		t.Errorf("rtk_nodes = %v (ok=%v), want %d", v, ok, g.N())
	}

	// A client error surfaces in the unified error account, labeled by
	// handler and status.
	if resp, _ := get(t, ts.URL+"/v1/reverse-topk?q=bogus&k=5"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed q returned %d, want 400", resp.StatusCode)
	}
	fams = scrapeMetrics(t, ts.URL)
	if v, ok := obs.SampleValue(fams, "rtk_http_errors_total", map[string]string{"handler": "query", "status": "400"}); !ok || v != 1 {
		t.Errorf("http_errors{query,400} = %v (ok=%v), want 1", v, ok)
	}
}

// TestMetricsDurable asserts the WAL and checkpoint families move when a
// durable daemon ingests edits.
func TestMetricsDurable(t *testing.T) {
	g := testGraph(t, 13, 80)
	idx := testIndex(t, g, 12)
	jp := t.TempDir() + "/edits.wal"
	s, _, err := NewDurable(g, idx, Config{}, DurabilityConfig{JournalPath: jp, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := newHTTPServer(t, s)

	body := `{"edits":[{"from":1,"to":2,"weight":0.5}],"wait":true}`
	resp, rb := post(t, ts+"/v1/edits", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edits: %d %s", resp.StatusCode, rb)
	}

	fams := scrapeMetrics(t, ts)
	if v, ok := obs.SampleValue(fams, "rtk_wal_appended_bytes_total", nil); !ok || v <= 0 {
		t.Errorf("wal_appended_bytes = %v (ok=%v), want > 0", v, ok)
	}
	if v, ok := obs.SampleValue(fams, "rtk_wal_append_seconds_count", nil); !ok || v != 1 {
		t.Errorf("wal_append_count = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := obs.SampleValue(fams, "rtk_journal_bytes", nil); !ok || v <= 0 {
		t.Errorf("journal_bytes = %v (ok=%v), want > 0", v, ok)
	}
	if fams["rtk_checkpoints_total"] == nil || fams["rtk_checkpoint_duration_seconds"] == nil {
		t.Error("checkpoint families missing from durable exposition")
	}
	if v, ok := obs.SampleValue(fams, "rtk_epoch_swaps_total", nil); !ok || v != 1 {
		t.Errorf("epoch_swaps = %v (ok=%v), want 1", v, ok)
	}
}

// newTestListener mounts a handler on a test HTTP listener and returns its
// base URL.
func newTestListener(t *testing.T, h http.Handler) string {
	t.Helper()
	hs := httptest.NewServer(h)
	t.Cleanup(hs.Close)
	return hs.URL
}

// newHTTPServer mounts an already-built server on a test listener.
func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	return newTestListener(t, s.Handler())
}

// post issues a JSON POST and returns the response and body.
func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestStatsJSONShape pins the exact top-level key set of /v1/stats: the
// counters now live on the metric registry, and this test is the contract
// that the migration kept the JSON wire shape intact for existing scrapers.
func TestStatsJSONShape(t *testing.T) {
	g := testGraph(t, 17, 90)
	idx := testIndex(t, g, 12)
	_, ts := newTestServer(t, g, idx, Config{})

	if resp, body := get(t, ts.URL+"/v1/reverse-topk?q=2&k=4"); resp.StatusCode != http.StatusOK {
		t.Fatalf("query: %d %s", resp.StatusCode, body)
	}
	resp, body := get(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: %d", resp.StatusCode)
	}
	var got map[string]any
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	// Every always-present pre-migration key must still be there (omitempty
	// keys appear only on durable/sharded daemons and are covered by their
	// own tests).
	want := []string{
		"epoch", "nodes", "max_k", "served", "computed", "cache_hits",
		"coalesced", "rejected", "errors", "epoch_swaps", "cache_len",
		"cache_bytes", "cache_cap_bytes", "inflight", "worker_budget",
		"draining", "uptime_seconds", "spmm_groups", "spmm_batched_queries",
		"approx_computed", "approx_rounds", "approx_mc_walks",
		"enqueued_watermark", "applied_watermark", "pending_edits",
		"overlay_patched_nodes", "overlay_delta_edges", "overlay_generation",
		"compactions", "maint_errors", "last_maint_ms",
		"last_affected_origins", "last_affected_hubs", "nodes_grown",
	}
	for _, k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("stats key %q missing", k)
		}
	}
	if got["served"].(float64) != 1 || got["computed"].(float64) != 1 {
		t.Errorf("served=%v computed=%v, want 1/1", got["served"], got["computed"])
	}
}

// logBuffer is a goroutine-safe sink for a test slog.Logger.
type logBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *logBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *logBuffer) lines(t *testing.T) []map[string]any {
	t.Helper()
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(b.buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("malformed log line %q: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func newTestLogger() (*logBuffer, *slog.Logger) {
	b := &logBuffer{}
	return b, slog.New(slog.NewJSONHandler(b, nil))
}

// TestRequestIDPropagation runs a 2-shard fan-out topology with structured
// logging on every daemon and checks that a client-supplied request ID is
// echoed on the coordinator's response, stamped onto every proxied shard
// call, and repeated verbatim in the coordinator's and every shard's log
// line — one grep joins the whole query's story across three processes.
func TestRequestIDPropagation(t *testing.T) {
	g, err := gen.WebGraph(150, 7)
	if err != nil {
		t.Fatal(err)
	}
	opts := lbindex.DefaultOptions()
	opts.K = 12
	opts.HubBudget = 4
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := partition.NewRange(g.N(), 2)
	if err != nil {
		t.Fatal(err)
	}
	shardBufs := make([]*logBuffer, 2)
	urls := make([]string, 2)
	for i := 0; i < 2; i++ {
		slice, err := idx.ShardSlice(pm, i)
		if err != nil {
			t.Fatal(err)
		}
		var logger *slog.Logger
		shardBufs[i], logger = newTestLogger()
		srv, err := New(g, slice, Config{Logger: logger})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(srv.Close)
		urls[i] = newTestListener(t, srv.Handler())
	}
	fanBuf, fanLogger := newTestLogger()
	fan, err := NewFanout(FanoutConfig{Shards: urls, Logger: fanLogger})
	if err != nil {
		t.Fatal(err)
	}
	fanURL := newTestListener(t, fan.Handler())

	const reqID = "feedc0defeedc0de"
	req, err := http.NewRequest(http.MethodGet, fanURL+"/v1/reverse-topk?q=5&k=4", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(RequestIDHeader, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator query: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(RequestIDHeader); got != reqID {
		t.Fatalf("coordinator echoed request ID %q, want %q", got, reqID)
	}

	coord := fanBuf.lines(t)
	found := false
	for _, line := range coord {
		if line["msg"] == "fanout_query" && line["request_id"] == reqID {
			found = true
		}
	}
	if !found {
		t.Errorf("coordinator log has no fanout_query line with request_id=%s: %v", reqID, coord)
	}
	for i, buf := range shardBufs {
		lines := buf.lines(t)
		found := false
		for _, line := range lines {
			if line["msg"] == "query" && line["request_id"] == reqID {
				found = true
				for _, key := range []string{"mode", "q", "k", "cache", "status", "duration_ms"} {
					if _, ok := line[key]; !ok {
						t.Errorf("shard %d query log line missing %q: %v", i, key, line)
					}
				}
			}
		}
		if !found {
			t.Errorf("shard %d log has no query line with request_id=%s: %v", i, reqID, lines)
		}
	}

	// The coordinator's /v1/stats reports per-shard summaries with the
	// proxied calls just made, and keeps the pre-existing key set.
	resp2, body := get(t, fanURL+"/v1/stats")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stats: %d", resp2.StatusCode)
	}
	var fs map[string]any
	if err := json.Unmarshal(body, &fs); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"shards", "fanouts", "served", "shard_errors", "edits_fanned", "uptime_seconds", "shard_stats", "shard_summaries"} {
		if _, ok := fs[k]; !ok {
			t.Errorf("fanout stats key %q missing", k)
		}
	}
	var stats FanoutStatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.ShardSummaries) != 2 {
		t.Fatalf("shard_summaries len %d, want 2", len(stats.ShardSummaries))
	}
	for i, sum := range stats.ShardSummaries {
		if sum.Requests < 1 {
			t.Errorf("shard %d summary requests=%d, want >= 1", i, sum.Requests)
		}
		if sum.Errors != 0 || sum.LastErrorRequestID != "" {
			t.Errorf("shard %d summary reports errors with none induced: %+v", i, sum)
		}
		if sum.URL != urls[i] {
			t.Errorf("shard %d summary url %q, want %q", i, sum.URL, urls[i])
		}
		if sum.Requests > 0 && (sum.P50Ms <= 0 || sum.P99Ms < sum.P50Ms) {
			t.Errorf("shard %d summary quantiles implausible: %+v", i, sum)
		}
	}

	// The coordinator exposes its own /metrics.
	fams := scrapeMetrics(t, fanURL)
	if v, ok := obs.SampleValue(fams, "rtk_fanouts_total", nil); !ok || v != 1 {
		t.Errorf("rtk_fanouts_total = %v (ok=%v), want 1", v, ok)
	}
	for i := 0; i < 2; i++ {
		label := map[string]string{"shard": fmt.Sprint(i)}
		if v, ok := obs.SampleValue(fams, "rtk_fanout_shard_seconds_count", label); !ok || v < 1 {
			t.Errorf("fanout_shard_seconds_count{shard=%d} = %v (ok=%v), want >= 1", i, v, ok)
		}
	}
}

// TestFanoutErrorAccounting kills one shard and checks the per-shard error
// counter and last-error request ID light up for that shard only.
func TestFanoutErrorAccounting(t *testing.T) {
	g := testGraph(t, 23, 60)
	idx := testIndex(t, g, 8)
	srv, err := New(g, idx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	liveURL := newTestListener(t, srv.Handler())

	fan, err := NewFanout(FanoutConfig{Shards: []string{liveURL, "http://127.0.0.1:1"}})
	if err != nil {
		t.Fatal(err)
	}
	fanURL := newTestListener(t, fan.Handler())

	const reqID = "abad1deaabad1dea"
	req, _ := http.NewRequest(http.MethodGet, fanURL+"/v1/reverse-topk?q=1&k=3", nil)
	req.Header.Set(RequestIDHeader, reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("query with dead shard: %d, want 502", resp.StatusCode)
	}

	_, body := get(t, fanURL+"/v1/stats")
	var stats FanoutStatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.ShardErrors < 1 {
		t.Errorf("shard_errors = %d, want >= 1", stats.ShardErrors)
	}
	if got := stats.ShardSummaries[1]; got.Errors < 1 || got.LastErrorRequestID != reqID {
		t.Errorf("dead shard summary = %+v, want errors >= 1 and last_error_request_id=%s", got, reqID)
	}
	if got := stats.ShardSummaries[0]; got.LastErrorRequestID == reqID && got.Errors > 0 {
		// The live shard served its call; the /v1/stats fan-out itself also
		// touches the dead shard but must not charge the live one.
		t.Errorf("live shard charged an error: %+v", got)
	}
}

// TestSlowLogEndpoint records every query (negative threshold) and checks
// the ring serves them newest first with request IDs and phase breakdowns,
// and that the ?threshold= filter and capacity bound hold.
func TestSlowLogEndpoint(t *testing.T) {
	g := testGraph(t, 29, 80)
	idx := testIndex(t, g, 10)
	_, ts := newTestServer(t, g, idx, Config{SlowLogThreshold: -1, SlowLogCapacity: 4})

	var ids []string
	for i := 0; i < 6; i++ {
		resp, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=3", ts.URL, i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, resp.StatusCode, body)
		}
		ids = append(ids, resp.Header.Get(RequestIDHeader))
	}

	resp, body := get(t, ts.URL+"/debug/slowlog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/slowlog: %d %s", resp.StatusCode, body)
	}
	var sl struct {
		Capacity int             `json:"capacity"`
		Count    int             `json:"count"`
		Entries  []obs.SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(body, &sl); err != nil {
		t.Fatalf("slowlog not JSON: %v", err)
	}
	if sl.Capacity != 4 || sl.Count != 4 || len(sl.Entries) != 4 {
		t.Fatalf("slowlog capacity=%d count=%d entries=%d, want 4/4/4 (ring must bound)", sl.Capacity, sl.Count, len(sl.Entries))
	}
	// Newest first: the last 4 of the 6 queries, reversed.
	for i, e := range sl.Entries {
		if want := ids[5-i]; e.RequestID != want {
			t.Errorf("entry %d request_id %q, want %q", i, e.RequestID, want)
		}
		if e.Route != "reverse-topk" {
			t.Errorf("entry %d route %q", i, e.Route)
		}
		if len(e.PhasesMS) == 0 {
			t.Errorf("entry %d has no phase breakdown: %+v", i, e)
		}
	}

	// An impossible threshold filters everything out.
	if _, body := get(t, ts.URL+"/debug/slowlog?threshold=10m"); !strings.Contains(string(body), `"count":0`) {
		t.Errorf("threshold=10m returned entries: %s", body)
	}
	if resp, _ := get(t, ts.URL+"/debug/slowlog?threshold=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed threshold returned %d, want 400", resp.StatusCode)
	}
}

// TestExpositionStable scrapes twice and diffs the family sets — a family
// that appears only after traffic would be invisible to dashboards built
// from a cold scrape.
func TestExpositionStable(t *testing.T) {
	g := testGraph(t, 31, 60)
	idx := testIndex(t, g, 8)
	_, ts := newTestServer(t, g, idx, Config{})

	cold := scrapeMetrics(t, ts.URL)
	if resp, _ := get(t, ts.URL+"/v1/reverse-topk?q=1&k=3"); resp.StatusCode != http.StatusOK {
		t.Fatal("query failed")
	}
	warm := scrapeMetrics(t, ts.URL)
	var coldNames, warmNames []string
	for n := range cold {
		coldNames = append(coldNames, n)
	}
	for n := range warm {
		warmNames = append(warmNames, n)
	}
	sort.Strings(coldNames)
	sort.Strings(warmNames)
	if strings.Join(coldNames, ",") != strings.Join(warmNames, ",") {
		t.Errorf("family set changed between scrapes:\ncold: %v\nwarm: %v", coldNames, warmNames)
	}
}
