package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/evolve"
	"repro/internal/graph"
	"repro/internal/wal"
)

// snapshotAnswers queries every node of the server's current snapshot — the
// equality fingerprint the recovery tests compare across restarts.
func snapshotAnswers(t *testing.T, s *Server, k int) [][]graph.NodeID {
	t.Helper()
	snap := s.store.Current()
	out := make([][]graph.NodeID, snap.View.N())
	for q := range out {
		res, _, err := snap.View.Query(graph.NodeID(q), k, 2)
		if err != nil {
			t.Fatalf("query %d: %v", q, err)
		}
		out[q] = res
	}
	return out
}

func requireSameAnswers(t *testing.T, what string, a, b [][]graph.NodeID) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: node count %d vs %d", what, len(a), len(b))
	}
	for q := range a {
		if !sameNodes(a[q], b[q]) {
			t.Fatalf("%s: query %d: %v vs %v", what, q, a[q], b[q])
		}
	}
}

// durableBurst applies a representative batch sequence — inserts, a
// growing batch, a removal, a batch that FAILS validation at apply time
// (its watermark is still consumed), and a final insert — and returns how
// many batches were acknowledged.
func durableBurst(t *testing.T, s *Server) int {
	t.Helper()
	ins := findInserts(t, s.Overlay(), 3)
	mustApply := func(edits []evolve.Edit, theta float64) {
		t.Helper()
		if _, _, err := s.ApplyEdits(edits, theta); err != nil {
			t.Fatalf("apply: %v", err)
		}
	}
	mustApply([]evolve.Edit{
		{From: ins[0].From, To: ins[0].To},
		{From: ins[1].From, To: ins[1].To, Weight: 2.5},
	}, 0)
	n := s.Overlay().N()
	mustApply([]evolve.Edit{{From: graph.NodeID(n), To: 0}}, 0.5)
	mustApply([]evolve.Edit{{From: ins[0].From, To: ins[0].To, Remove: true}}, 0)
	// Duplicate insert: passes ValidateEdits, rejected when applied. The
	// batch is journaled and its watermark consumed; a replay must
	// re-reject it identically.
	pending, err := s.EnqueueEdits([]evolve.Edit{{From: ins[1].From, To: ins[1].To}}, 0)
	if err != nil {
		t.Fatalf("enqueue duplicate: %v", err)
	}
	if _, _, err := pending.Wait(); !errors.Is(err, errBadEdits) {
		t.Fatalf("duplicate insert: err %v, want errBadEdits", err)
	}
	mustApply([]evolve.Edit{{From: ins[2].From, To: ins[2].To}}, 0)
	return 5
}

// TestDurableJournalBeforeAck is the tentpole contract: every acknowledged
// batch — including one later rejected at apply time — is on disk with its
// watermark before the acknowledgement returns.
func TestDurableJournalBeforeAck(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "edits.wal")
	g := testGraph(t, 41, 30)
	idx := testIndex(t, g, 4)
	s, info, err := NewDurable(g, idx, Config{}, DurabilityConfig{JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	if info.Replayed != 0 || info.FromCheckpoint {
		t.Fatalf("fresh journal recovered %+v", info)
	}
	batches := durableBurst(t, s)
	st := s.Stats()
	if !st.Durable || st.JournalBatches != batches {
		t.Fatalf("stats: durable=%t journal_batches=%d, want true/%d", st.Durable, st.JournalBatches, batches)
	}
	s.Close()

	log, rec, err := wal.Open(jp, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if rec.DroppedBytes != 0 {
		t.Fatalf("clean shutdown left a torn tail: %+v", rec)
	}
	if len(rec.Records) != batches {
		t.Fatalf("journal holds %d records, want %d", len(rec.Records), batches)
	}
	for i, r := range rec.Records {
		if r.Watermark != uint64(i+1) {
			t.Fatalf("record %d has watermark %d", i, r.Watermark)
		}
	}
}

// TestDurableRecoveryMatchesOracle restarts from the journal alone (cold
// pair + full replay) and requires the recovered server to answer every
// query exactly like the server that never went down — the rejected batch
// re-rejects, watermarks line up, and new edits continue past the replay.
func TestDurableRecoveryMatchesOracle(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "edits.wal")
	g := testGraph(t, 43, 30)
	idx := testIndex(t, g, 4)

	a, _, err := NewDurable(g, idx.Clone(), Config{}, DurabilityConfig{JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	batches := durableBurst(t, a)
	want := snapshotAnswers(t, a, 3)
	wantWM := a.AppliedWatermark()
	a.Close()

	b, info, err := NewDurable(g, idx.Clone(), Config{}, DurabilityConfig{JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if info.Replayed != batches {
		t.Fatalf("replayed %d batches, want %d", info.Replayed, batches)
	}
	if got := b.AppliedWatermark(); got != wantWM {
		t.Fatalf("recovered watermark %d, want %d", got, wantWM)
	}
	requireSameAnswers(t, "replayed state", want, snapshotAnswers(t, b, 3))
	if errs := b.Stats().MaintErrors; errs != 1 {
		t.Fatalf("replay re-rejected %d batches, want 1", errs)
	}
	// Fresh edits continue the watermark sequence past the replay.
	ins := findInserts(t, b.Overlay(), 1)
	if _, _, err := b.ApplyEdits([]evolve.Edit{{From: ins[0].From, To: ins[0].To}}, 0); err != nil {
		t.Fatal(err)
	}
	if got := b.AppliedWatermark(); got != wantWM+1 {
		t.Fatalf("post-recovery watermark %d, want %d", got, wantWM+1)
	}
}

// TestDurableTornTailRecovery crashes "mid-append": the journal gains a
// half-written record (and then pure garbage) that was never acknowledged.
// Recovery must drop exactly the torn suffix and replay the rest.
func TestDurableTornTailRecovery(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "edits.wal")
	g := testGraph(t, 47, 30)
	idx := testIndex(t, g, 4)
	a, _, err := NewDurable(g, idx.Clone(), Config{}, DurabilityConfig{JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	batches := durableBurst(t, a)
	want := snapshotAnswers(t, a, 3)
	a.Close()

	torn := wal.AppendRecord(nil, wal.Record{
		Watermark: uint64(batches + 1),
		Edits:     []graph.EdgeEdit{{From: 1, To: 2}},
	})
	for _, tail := range [][]byte{torn[:len(torn)-5], {0xde, 0xad, 0xbe, 0xef}} {
		f, err := os.OpenFile(jp, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		b, info, err := NewDurable(g, idx.Clone(), Config{}, DurabilityConfig{JournalPath: jp})
		if err != nil {
			t.Fatal(err)
		}
		if info.DroppedBytes != int64(len(tail)) || info.TailError == "" {
			t.Fatalf("tail %x: recovery %+v, want %d dropped bytes and a tail error", tail, info, len(tail))
		}
		if info.Replayed != batches {
			t.Fatalf("tail %x: replayed %d, want %d", tail, info.Replayed, batches)
		}
		requireSameAnswers(t, "torn-tail recovery", want, snapshotAnswers(t, b, 3))
		b.Close()
	}
}

// TestDurableCheckpoint drives the batch-count trigger, verifies the
// journal is truncated at the checkpointed watermark, and restarts from
// the checkpoint image with zero replay — still answering identically.
func TestDurableCheckpoint(t *testing.T) {
	dir := t.TempDir()
	dcfg := DurabilityConfig{
		JournalPath:       filepath.Join(dir, "edits.wal"),
		CheckpointDir:     filepath.Join(dir, "ckpt"),
		CheckpointBatches: 2,
		CheckpointBytes:   -1,
	}
	g := testGraph(t, 53, 30)
	idx := testIndex(t, g, 4)
	a, _, err := NewDurable(g, idx.Clone(), Config{}, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	durableBurst(t, a)
	deadline := time.Now().Add(30 * time.Second)
	for a.Stats().JournalBatches >= dcfg.CheckpointBatches {
		if time.Now().After(deadline) {
			t.Fatalf("journal never truncated: %d batches", a.Stats().JournalBatches)
		}
		time.Sleep(time.Millisecond)
	}
	st := a.Stats()
	if st.Checkpoints == 0 || st.LastCheckpointWatermark == 0 {
		t.Fatalf("no checkpoint recorded: %+v", st)
	}
	want := snapshotAnswers(t, a, 3)
	wantWM := a.AppliedWatermark()
	a.Close()

	b, info, err := NewDurable(g, idx.Clone(), Config{}, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !info.FromCheckpoint {
		t.Fatalf("recovery ignored the checkpoint: %+v", info)
	}
	if info.CheckpointWatermark != st.LastCheckpointWatermark {
		t.Fatalf("checkpoint watermark %d, want %d", info.CheckpointWatermark, st.LastCheckpointWatermark)
	}
	if got := info.Replayed + int(info.CheckpointWatermark); got != int(wantWM) {
		t.Fatalf("checkpoint %d + replayed %d ≠ %d batches", info.CheckpointWatermark, info.Replayed, wantWM)
	}
	if got := b.AppliedWatermark(); got != wantWM {
		t.Fatalf("recovered watermark %d, want %d", got, wantWM)
	}
	requireSameAnswers(t, "checkpoint recovery", want, snapshotAnswers(t, b, 3))
}

// TestDurableCheckpointCrashBeforeTruncate simulates a crash between the
// manifest commit and the journal truncation: the journal still holds
// records at or below the checkpoint watermark, which recovery must SKIP —
// re-applying them would double-apply edits the image already contains.
func TestDurableCheckpointCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	jp := filepath.Join(dir, "edits.wal")
	ckpt := filepath.Join(dir, "ckpt")
	g := testGraph(t, 59, 30)
	idx := testIndex(t, g, 4)

	// Run with checkpointing, then un-truncate the journal by restoring a
	// pre-checkpoint copy of it (same records, now below the watermark).
	a, _, err := NewDurable(g, idx.Clone(), Config{}, DurabilityConfig{JournalPath: jp})
	if err != nil {
		t.Fatal(err)
	}
	batches := durableBurst(t, a)
	want := snapshotAnswers(t, a, 3)
	wantWM := a.AppliedWatermark()
	a.Close()
	journalCopy, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}

	// Reopen WITH checkpointing at every batch; replay triggers none (no
	// new batches), so force one through a real batch.
	b, _, err := NewDurable(g, idx.Clone(), Config{}, DurabilityConfig{
		JournalPath: jp, CheckpointDir: ckpt, CheckpointBatches: 1, CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ins := findInserts(t, b.Overlay(), 1)
	if _, _, err := b.ApplyEdits([]evolve.Edit{{From: ins[0].From, To: ins[0].To}}, 0); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for b.Stats().Checkpoints == 0 {
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never fired")
		}
		time.Sleep(time.Millisecond)
	}
	want = snapshotAnswers(t, b, 3)
	wantWM = b.AppliedWatermark()
	b.Close()

	// "Crash before truncate": restore the full journal alongside the
	// committed checkpoint. All restored records are ≤ the checkpoint
	// watermark except none — they must all be skipped.
	if err := os.WriteFile(jp, journalCopy, 0o644); err != nil {
		t.Fatal(err)
	}
	c, info, err := NewDurable(g, idx.Clone(), Config{}, DurabilityConfig{
		JournalPath: jp, CheckpointDir: ckpt, CheckpointBatches: 1, CheckpointBytes: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !info.FromCheckpoint || info.Replayed != 0 || info.SkippedBelowCheckpoint != batches {
		t.Fatalf("recovery %+v, want checkpoint load with %d skipped and 0 replayed", info, batches)
	}
	if got := c.AppliedWatermark(); got != wantWM {
		t.Fatalf("watermark %d, want %d", got, wantWM)
	}
	requireSameAnswers(t, "skip-below-checkpoint recovery", want, snapshotAnswers(t, c, 3))
}

// TestCloseDrainsAcknowledgedBatches is the acknowledged-edit-loss fix:
// batches holding a 202 watermark when Close is called must be applied,
// not failed with ErrClosed.
func TestCloseDrainsAcknowledgedBatches(t *testing.T) {
	g := testGraph(t, 61, 30)
	idx := testIndex(t, g, 4)
	s, err := New(g, idx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	s.testMaintGate = func() {
		entered <- struct{}{}
		<-release
	}
	ins := findInserts(t, g, 3)
	var pendings []*Pending
	for _, e := range ins {
		p, err := s.EnqueueEdits([]evolve.Edit{{From: e.From, To: e.To}}, 0)
		if err != nil {
			t.Fatal(err)
		}
		pendings = append(pendings, p)
	}
	<-entered // first batch is inside the maintenance gate

	closeDone := make(chan struct{})
	go func() {
		s.Close()
		close(closeDone)
	}()
	// Wait until Close has marked the server closed, so the remaining
	// batches are provably drained post-close.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Close never marked the server closed")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	<-closeDone

	for i, p := range pendings {
		if _, epoch, err := p.Wait(); err != nil || epoch == 0 {
			t.Fatalf("batch %d (watermark %d): err=%v epoch=%d, want applied", i, p.Watermark, err, epoch)
		}
	}
	if got := s.AppliedWatermark(); got != uint64(len(pendings)) {
		t.Fatalf("applied watermark %d, want %d", got, len(pendings))
	}
	if _, err := s.EnqueueEdits([]evolve.Edit{{From: 0, To: 1}}, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v, want ErrClosed", err)
	}
}

// TestValidateEditsSharedAcrossFrontEnds is the non-finite-theta fix: the
// in-process API, the HTTP handler and the fan-out coordinator all reject
// bad batches identically, before any watermark is assigned — and the
// coordinator never broadcasts a doomed batch.
func TestValidateEditsSharedAcrossFrontEnds(t *testing.T) {
	g := testGraph(t, 67, 30)
	idx := testIndex(t, g, 4)
	s, ts := newTestServer(t, g, idx, Config{})

	bad := []struct {
		name  string
		edits []evolve.Edit
		theta float64
		msg   string
	}{
		{"nan theta", []evolve.Edit{{From: 0, To: 1}}, math.NaN(), "must be finite"},
		{"+inf theta", []evolve.Edit{{From: 0, To: 1}}, math.Inf(1), "must be finite"},
		{"negative theta", []evolve.Edit{{From: 0, To: 1}}, -1, "negative staleness"},
		{"no edits", nil, 0, "no edits"},
		{"negative node", []evolve.Edit{{From: -3, To: 1}}, 0, "negative node"},
		{"negative weight", []evolve.Edit{{From: 0, To: 1, Weight: -2}}, 0, "finite non-negative"},
		{"nan weight", []evolve.Edit{{From: 0, To: 1, Weight: math.NaN()}}, 0, "finite non-negative"},
	}
	for _, tc := range bad {
		if _, err := s.EnqueueEdits(tc.edits, tc.theta); !errors.Is(err, errBadEdits) || !strings.Contains(fmt.Sprint(err), tc.msg) {
			t.Fatalf("%s: EnqueueEdits err %v, want errBadEdits mentioning %q", tc.name, err, tc.msg)
		}
	}
	if wm := s.Stats().EnqueuedWatermark; wm != 0 {
		t.Fatalf("rejected batches consumed watermarks: %d", wm)
	}

	// Front-end parity over raw bodies. Non-finite theta cannot cross the
	// JSON decoder (1e999 overflows, NaN is not JSON), so the decoder's 400
	// covers it; negative ids and weights reach ValidateEdits.
	var shardCalls atomic.Int64
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		shardCalls.Add(1)
		s.Handler().ServeHTTP(w, r)
	}))
	defer proxy.Close()
	f, err := NewFanout(FanoutConfig{Shards: []string{proxy.URL}})
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(f.Handler())
	defer fts.Close()

	rawBodies := []string{
		`{"edits":[{"from":0,"to":1}],"theta":1e999}`,
		`{"edits":[{"from":-3,"to":1}]}`,
		`{"edits":[{"from":0,"to":1,"weight":-2}]}`,
		`{"edits":[]}`,
	}
	for _, body := range rawBodies {
		single, err := http.Post(ts.URL+"/v1/edits", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		singleBody := readAllClose(t, single)
		before := shardCalls.Load()
		coord, err := http.Post(fts.URL+"/v1/edits", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		coordBody := readAllClose(t, coord)
		if single.StatusCode != http.StatusBadRequest || coord.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: statuses %d/%d, want 400/400", body, single.StatusCode, coord.StatusCode)
		}
		if got := single.Header.Get("Content-Type"); got != "application/json" {
			t.Fatalf("single 400 content type %q", got)
		}
		if shardCalls.Load() != before {
			t.Fatalf("body %s: coordinator broadcast a doomed batch", body)
		}
		// The decoder-level rejection (1e999) words its message differently
		// per front end; validation-level rejections must match verbatim.
		if !strings.Contains(body, "1e999") && !bytes.Equal(singleBody, coordBody) {
			t.Fatalf("body %s: single %s vs coordinator %s", body, singleBody, coordBody)
		}
	}
}

func readAllClose(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEditsResponseHeadersAndWriteAccounting pins the /v1/edits response
// contract — every outcome carries the JSON content type and a decodable
// body — and checks dropped response writes are counted, not ignored.
func TestEditsResponseHeadersAndWriteAccounting(t *testing.T) {
	g := testGraph(t, 71, 30)
	idx := testIndex(t, g, 4)
	s, ts := newTestServer(t, g, idx, Config{})

	ins := findInserts(t, g, 2)
	resp, er, _ := postEdits(t, ts.URL, EditsRequest{Edits: ins[:1]})
	if resp.StatusCode != http.StatusAccepted || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("202 path: status %d content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if er.Watermark == 0 {
		t.Fatal("202 body lost its watermark")
	}
	resp, er, _ = postEdits(t, ts.URL, EditsRequest{Edits: ins[1:2], Wait: true})
	if resp.StatusCode != http.StatusOK || resp.Header.Get("Content-Type") != "application/json" {
		t.Fatalf("wait path: status %d content type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if er.Epoch == 0 {
		t.Fatal("wait body lost its epoch")
	}

	if s.Stats().ResponseWriteDrops != 0 {
		t.Fatal("write drops counted without any failure")
	}
	s.writeJSON(&failingWriter{}, "edits", http.StatusAccepted, []byte(`{}`))
	if got := s.Stats().ResponseWriteDrops; got != 1 {
		t.Fatalf("write drops %d after a failed write, want 1", got)
	}
}

// failingWriter refuses every body byte, simulating a client that vanished
// between the status line and the body.
type failingWriter struct{ header http.Header }

func (f *failingWriter) Header() http.Header {
	if f.header == nil {
		f.header = make(http.Header)
	}
	return f.header
}
func (f *failingWriter) WriteHeader(int)           {}
func (f *failingWriter) Write([]byte) (int, error) { return 0, errors.New("connection lost") }
