package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// TestValidateQueryParams is the table-driven spec for the shared
// CLI/HTTP parameter validation: which inputs are rejected, with which
// status and which message.
func TestValidateQueryParams(t *testing.T) {
	const n, maxK = 100, 20
	cases := []struct {
		name       string
		q, k       int
		wantStatus int // 0 = accepted
		wantMsg    string
	}{
		{"valid", 5, 10, 0, ""},
		{"valid k=1", 0, 1, 0, ""},
		{"valid k=maxK", n - 1, maxK, 0, ""},
		{"negative q", -1, 5, http.StatusNotFound, "unknown node -1 (graph has 100 nodes)"},
		{"q = n", n, 5, http.StatusNotFound, "unknown node 100 (graph has 100 nodes)"},
		{"q beyond n", 1 << 20, 5, http.StatusNotFound, "unknown node 1048576 (graph has 100 nodes)"},
		{"k zero", 5, 0, http.StatusBadRequest, "k=0 outside [1,20] supported by the index"},
		{"k negative", 5, -3, http.StatusBadRequest, "k=-3 outside [1,20] supported by the index"},
		{"k beyond index", 5, maxK + 1, http.StatusBadRequest, "k=21 outside [1,20] supported by the index"},
		// Unknown node wins over bad k: the node error is a 404, and the
		// HTTP handler has always checked q first.
		{"both bad", -1, 0, http.StatusNotFound, "unknown node -1 (graph has 100 nodes)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			perr := ValidateQueryParams(tc.q, tc.k, n, maxK)
			if tc.wantStatus == 0 {
				if perr != nil {
					t.Fatalf("rejected valid params: %v", perr)
				}
				return
			}
			if perr == nil {
				t.Fatalf("accepted q=%d k=%d", tc.q, tc.k)
			}
			if perr.Status != tc.wantStatus || perr.Error() != tc.wantMsg {
				t.Fatalf("got %d %q, want %d %q", perr.Status, perr.Error(), tc.wantStatus, tc.wantMsg)
			}
		})
	}
}

// TestHandlerUsesSharedValidation asserts the HTTP handler rejects exactly
// as the shared helper prescribes — status AND message — so any front end
// built on ValidateQueryParams (the rtkquery CLI) matches the daemon.
func TestHandlerUsesSharedValidation(t *testing.T) {
	g := testGraph(t, 17, 30)
	idx := testIndex(t, g, 5)
	_, ts := newTestServer(t, g, idx, Config{})

	for _, tc := range []struct{ q, k int }{
		{-1, 3}, {g.N(), 3}, {5, 0}, {5, idx.K() + 1},
	} {
		perr := ValidateQueryParams(tc.q, tc.k, g.N(), idx.K())
		if perr == nil {
			t.Fatalf("q=%d k=%d: helper accepted a case this test assumes invalid", tc.q, tc.k)
		}
		resp, body := get(t, ts.URL+fmt.Sprintf("/v1/reverse-topk?q=%d&k=%d", tc.q, tc.k))
		if resp.StatusCode != perr.Status {
			t.Errorf("q=%d k=%d: HTTP status %d, helper says %d", tc.q, tc.k, resp.StatusCode, perr.Status)
		}
		var decoded map[string]string
		if err := json.Unmarshal(body, &decoded); err != nil {
			t.Fatalf("q=%d k=%d: non-JSON error body %q", tc.q, tc.k, body)
		}
		if decoded["error"] != perr.Error() {
			t.Errorf("q=%d k=%d: HTTP message %q, helper says %q", tc.q, tc.k, decoded["error"], perr.Error())
		}
	}
}
