package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/evolve"
	"repro/internal/graph"
)

// TestEditsRejectSubnormalWeights is the NaN-propagation regression test: an
// edit whose subnormal weight would produce a transition-column normalizer
// with an infinite reciprocal (and therefore NaN proximity scores) must be
// rejected at the API boundary with a 400, leaving the served epoch, the
// cache and every served score untouched — and a subsequent valid batch must
// still go through.
func TestEditsRejectSubnormalWeights(t *testing.T) {
	g := testGraph(t, 99, 30)
	idx := testIndex(t, g, 5)
	s, ts := newTestServer(t, g, idx, Config{})
	orc := newOracle(t, g)

	// A non-edge to target with the poisoned insert.
	var eu, ev graph.NodeID = -1, -1
findNonEdge:
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if u != v && g.EdgeWeight(u, v) == 0 {
				eu, ev = u, v
				break findNonEdge
			}
		}
	}
	if eu < 0 {
		t.Fatal("test graph is complete; cannot pick a non-edge")
	}

	// The subnormal batch bounces with a 400 before any watermark or
	// journal entry exists.
	body, _ := json.Marshal(EditsRequest{
		Edits: []EditJSON{{From: eu, To: ev, Weight: 1e-310}},
		Wait:  true,
	})
	resp, err := http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	rejBody := make([]byte, 1024)
	nr, _ := resp.Body.Read(rejBody)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("subnormal edit accepted with status %d: %s", resp.StatusCode, rejBody[:nr])
	}
	if !strings.Contains(string(rejBody[:nr]), "below minimum") {
		t.Fatalf("rejection does not name the weight floor: %s", rejBody[:nr])
	}

	// ValidateEdits (shared by the CLI and the coordinator front end)
	// rejects the same batch directly.
	if err := ValidateEdits([]evolve.Edit{{From: eu, To: ev, Weight: 1e-310}}, 0); err == nil {
		t.Fatal("ValidateEdits accepted a subnormal weight")
	}

	// Nothing was published: same epoch, and the served graph's inverse
	// normalizers are all finite.
	snap := s.Store().Current()
	if snap.Epoch != 1 {
		t.Fatalf("epoch advanced to %d after a rejected batch", snap.Epoch)
	}
	gv := snap.View.Graph()
	for u := graph.NodeID(0); int(u) < gv.N(); u++ {
		if inv := 1 / gv.TotalOutWeight(u); math.IsNaN(inv) || math.IsInf(inv, 0) {
			t.Fatalf("node %d: non-finite inverse normalizer %g reached the served graph", u, inv)
		}
	}

	// Every served score path stays NaN-free: answers still match the
	// exact oracle for the unedited graph (a NaN anywhere in a proximity
	// column would scramble the top-k sets).
	for q := 0; q < g.N(); q += 7 {
		resp, qbody := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=3", ts.URL, q))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("q=%d: status %d: %s", q, resp.StatusCode, qbody)
		}
		qr := decodeQuery(t, qbody)
		if want := orc.answer(graph.NodeID(q), 3); !sameNodes(qr.Results, want) {
			t.Fatalf("q=%d: served %v, oracle %v", q, qr.Results, want)
		}
	}

	// The guard is a floor, not a blanket rejection: a valid insert on the
	// same non-edge still applies and publishes a new epoch.
	body, _ = json.Marshal(EditsRequest{
		Edits: []EditJSON{{From: eu, To: ev, Weight: 1}},
		Wait:  true,
	})
	resp, err = http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var er EditsResponse
	err = json.NewDecoder(resp.Body).Decode(&er)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || er.Epoch != 2 {
		t.Fatalf("valid follow-up batch: status %d, epoch %d (want 200, 2)", resp.StatusCode, er.Epoch)
	}
	g2, err := evolve.ApplyEdits(g, []evolve.Edit{{From: eu, To: ev, Weight: 1}}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	orc2 := newOracle(t, g2)
	for q := 0; q < g.N(); q += 7 {
		resp, qbody := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=3", ts.URL, q))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-edit q=%d: status %d: %s", q, resp.StatusCode, qbody)
		}
		qr := decodeQuery(t, qbody)
		if want := orc2.answer(graph.NodeID(q), 3); !sameNodes(qr.Results, want) {
			t.Fatalf("post-edit q=%d: served %v, oracle %v", q, qr.Results, want)
		}
	}
}
