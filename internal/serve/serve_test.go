package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

func testGraph(t *testing.T, seed int64, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testIndex(t *testing.T, g *graph.Graph, k int) *lbindex.Index {
	t.Helper()
	opts := lbindex.DefaultOptions()
	opts.K = k
	opts.HubBudget = 2
	opts.Workers = 2
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

// oracle answers reverse top-k queries from one exact proximity matrix
// computation (the §3 brute-force method), so a test can check many (q, k)
// pairs against one graph cheaply.
type oracle struct {
	cols [][]float64
}

func newOracle(t *testing.T, g graph.View) *oracle {
	t.Helper()
	cols, err := rwr.ProximityMatrix(g, rwr.DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return &oracle{cols: cols}
}

func (o *oracle) answer(q graph.NodeID, k int) []graph.NodeID {
	results := []graph.NodeID{}
	for u := range o.cols {
		if o.cols[u][q] >= vecmath.KthLargest(o.cols[u], k) {
			results = append(results, graph.NodeID(u))
		}
	}
	return results
}

func newTestServer(t *testing.T, g *graph.Graph, idx *lbindex.Index, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(g, idx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func decodeQuery(t *testing.T, body []byte) QueryResponse {
	t.Helper()
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("malformed response body %q: %v", body, err)
	}
	return qr
}

func sameNodes(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServeMatchesOracle checks that every served answer — cold, then
// cached — equals the brute-force oracle.
func TestServeMatchesOracle(t *testing.T) {
	g := testGraph(t, 21, 50)
	idx := testIndex(t, g, 8)
	_, ts := newTestServer(t, g, idx, Config{})
	orc := newOracle(t, g)

	for _, q := range []int{0, 7, 23, 49} {
		for _, k := range []int{1, 3, 8} {
			url := fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=%d", ts.URL, q, k)
			resp, body := get(t, url)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("q=%d k=%d: status %d body %s", q, k, resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-Cache"); got != "MISS" {
				t.Errorf("q=%d k=%d: first request X-Cache=%s, want MISS", q, k, got)
			}
			qr := decodeQuery(t, body)
			want := orc.answer(graph.NodeID(q), k)
			if !sameNodes(qr.Results, want) {
				t.Errorf("q=%d k=%d: served %v, oracle %v", q, k, qr.Results, want)
			}
			if qr.Epoch != 1 || qr.Count != len(qr.Results) || qr.Query != graph.NodeID(q) || qr.K != k {
				t.Errorf("q=%d k=%d: inconsistent envelope %+v", q, k, qr)
			}

			// Second request: served from cache, byte-identical.
			resp2, body2 := get(t, url)
			if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Cache") != "HIT" {
				t.Errorf("q=%d k=%d: repeat status=%d X-Cache=%s, want 200 HIT", q, k, resp2.StatusCode, resp2.Header.Get("X-Cache"))
			}
			if !bytes.Equal(body, body2) {
				t.Errorf("q=%d k=%d: cached body differs from fresh:\n%s\n%s", q, k, body, body2)
			}
		}
	}
}

// TestServePostRefreshMatchesOracle applies edits through the HTTP edits
// endpoint and checks that post-refresh answers match the new graph's
// oracle at the bumped epoch, with the old cache invalidated.
func TestServePostRefreshMatchesOracle(t *testing.T) {
	g := testGraph(t, 22, 40)
	idx := testIndex(t, g, 6)
	s, ts := newTestServer(t, g, idx, Config{})

	// Warm the cache on epoch 1.
	queryURL := ts.URL + "/v1/reverse-topk?q=5&k=4"
	resp, body1 := get(t, queryURL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup failed: %d %s", resp.StatusCode, body1)
	}
	if s.Cache().Len() == 0 {
		t.Fatal("cache empty after warmup")
	}

	// Find two non-edges to insert and one edge to remove.
	var edits []EditJSON
	for u := graph.NodeID(0); len(edits) < 2 && int(u) < g.N(); u++ {
		for v := graph.NodeID(0); len(edits) < 2 && int(v) < g.N(); v++ {
			if u != v && !g.HasEdge(u, v) {
				edits = append(edits, EditJSON{From: u, To: v})
			}
		}
	}
	reqBody, _ := json.Marshal(EditsRequest{Edits: edits, Wait: true})
	postResp, err := http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	postBody, _ := io.ReadAll(postResp.Body)
	postResp.Body.Close()
	if postResp.StatusCode != http.StatusOK {
		t.Fatalf("edits failed: %d %s", postResp.StatusCode, postBody)
	}
	var er EditsResponse
	if err := json.Unmarshal(postBody, &er); err != nil {
		t.Fatal(err)
	}
	if er.Epoch != 2 {
		t.Fatalf("published epoch %d, want 2", er.Epoch)
	}
	if s.Cache().Len() != 0 {
		t.Errorf("cache still holds %d stale entries after epoch bump", s.Cache().Len())
	}

	// Served answers now match the oracle of the EDITED graph.
	g2 := s.Store().Current().View.Graph()
	if _, ok := g2.(*graph.Overlay); !ok {
		t.Fatalf("post-edit snapshot serves %T, want *graph.Overlay", g2)
	}
	orc2 := newOracle(t, g2)
	for _, q := range []int{0, 5, 17, 39} {
		for _, k := range []int{1, 4, 6} {
			resp, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=%d", ts.URL, q, k))
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("q=%d k=%d: status %d body %s", q, k, resp.StatusCode, body)
			}
			qr := decodeQuery(t, body)
			if qr.Epoch != 2 {
				t.Errorf("q=%d k=%d: served from epoch %d, want 2", q, k, qr.Epoch)
			}
			if want := orc2.answer(graph.NodeID(q), k); !sameNodes(qr.Results, want) {
				t.Errorf("q=%d k=%d: served %v, post-refresh oracle %v", q, k, qr.Results, want)
			}
		}
	}
}

// TestServeErrorPaths exercises every malformed-request path and its
// status code.
func TestServeErrorPaths(t *testing.T) {
	g := testGraph(t, 23, 30)
	idx := testIndex(t, g, 5)
	s, ts := newTestServer(t, g, idx, Config{})

	cases := []struct {
		name   string
		path   string
		status int
	}{
		{"missing q", "/v1/reverse-topk?k=3", http.StatusBadRequest},
		{"missing k", "/v1/reverse-topk?q=3", http.StatusBadRequest},
		{"malformed q", "/v1/reverse-topk?q=abc&k=3", http.StatusBadRequest},
		{"malformed k", "/v1/reverse-topk?q=3&k=abc", http.StatusBadRequest},
		{"float k", "/v1/reverse-topk?q=3&k=2.5", http.StatusBadRequest},
		{"unknown node", "/v1/reverse-topk?q=30&k=3", http.StatusNotFound},
		{"negative node", "/v1/reverse-topk?q=-1&k=3", http.StatusNotFound},
		{"k zero", "/v1/reverse-topk?q=3&k=0", http.StatusBadRequest},
		{"k above index K", "/v1/reverse-topk?q=3&k=6", http.StatusBadRequest},
		{"unknown path", "/v1/nope", http.StatusNotFound},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, ts.URL+tc.path)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %s)", resp.StatusCode, tc.status, body)
			}
			if tc.status != http.StatusNotFound || strings.HasPrefix(tc.path, "/v1/reverse-topk") {
				var e map[string]string
				if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
					t.Errorf("error body not a JSON error object: %q", body)
				}
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/reverse-topk?q=1&k=2", "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST to query endpoint: status %d, want 405", resp.StatusCode)
		}
	})
	t.Run("edits malformed body", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/edits", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("edits removing a non-existent edge", func(t *testing.T) {
		var u, v graph.NodeID
	outer:
		for u = 0; int(u) < g.N(); u++ {
			for v = 0; int(v) < g.N(); v++ {
				if u != v && !g.HasEdge(u, v) {
					break outer
				}
			}
		}
		body, _ := json.Marshal(EditsRequest{Edits: []EditJSON{{From: u, To: v, Remove: true}}, Wait: true})
		resp, err := http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if got := s.Store().Current().Epoch; got != 1 {
			t.Fatalf("failed edit still bumped the epoch to %d", got)
		}
	})
	t.Run("edits empty batch", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/edits", "application/json", strings.NewReader(`{"edits":[]}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
}

// TestServeHealthAndStats covers /healthz (including drain flip) and the
// /v1/stats counters.
func TestServeHealthAndStats(t *testing.T) {
	g := testGraph(t, 24, 30)
	idx := testIndex(t, g, 5)
	s, ts := newTestServer(t, g, idx, Config{})

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// Two queries: one computed, one cached.
	get(t, ts.URL+"/v1/reverse-topk?q=1&k=3")
	get(t, ts.URL+"/v1/reverse-topk?q=1&k=3")
	resp, body = get(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 2 || st.Computed != 1 || st.CacheHits != 1 || st.Epoch != 1 || st.Nodes != 30 || st.MaxK != 5 {
		t.Errorf("unexpected stats %+v", st)
	}

	s.StartDrain()
	resp, _ = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", resp.StatusCode)
	}
	// Draining rejects only health probes; queries still flow until the
	// listener closes.
	resp, _ = get(t, ts.URL+"/v1/reverse-topk?q=1&k=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query during drain: %d, want 200", resp.StatusCode)
	}
}

// TestServeAdmissionControl holds one computation open and checks that a
// second concurrent computation is rejected with 503 while a cache hit
// still succeeds.
func TestServeAdmissionControl(t *testing.T) {
	g := testGraph(t, 25, 40)
	idx := testIndex(t, g, 5)
	s, err := New(g, idx, Config{MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	gateEntered := make(chan struct{}, 8)
	gateRelease := make(chan struct{})
	var gateActive, computedWhileInactive atomic.Bool
	gateActive.Store(true)
	s.testComputeGate = func() {
		if gateActive.Load() {
			gateEntered <- struct{}{}
			<-gateRelease
		} else {
			computedWhileInactive.Store(true)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := make(chan int, 1)
	go func() {
		resp, err := http.Get(ts.URL + "/v1/reverse-topk?q=1&k=3")
		if err != nil {
			first <- -1
			return
		}
		resp.Body.Close()
		first <- resp.StatusCode
	}()
	<-gateEntered // the first computation is now occupying the only slot

	resp, body := get(t, ts.URL+"/v1/reverse-topk?q=2&k=3")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second computation: %d %s, want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	close(gateRelease)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("gated request finished with %d, want 200", code)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Errorf("rejected counter %d, want 1", got)
	}

	// The completed answer is cached: a hit does not need an admission slot.
	gateActive.Store(false)
	resp, _ = get(t, ts.URL+"/v1/reverse-topk?q=1&k=3")
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("cached query during saturation: %d %s", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if computedWhileInactive.Load() {
		t.Error("cache hit entered the compute path")
	}
}

// TestServeSingleFlight fires many identical queries at a cold cache and
// checks the engine ran exactly once, with every response identical.
func TestServeSingleFlight(t *testing.T) {
	g := testGraph(t, 26, 40)
	idx := testIndex(t, g, 5)
	s, err := New(g, idx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	// Hold the first computation at the gate until all clients have sent
	// their requests, so the identical queries genuinely overlap.
	const clients = 16
	gateEntered := make(chan struct{}, clients)
	gateRelease := make(chan struct{})
	s.testComputeGate = func() {
		gateEntered <- struct{}{}
		<-gateRelease
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	bodies := make([][]byte, clients)
	statuses := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/reverse-topk?q=3&k=4")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
			statuses[i] = resp.Header.Get("X-Cache")
		}(i)
	}
	<-gateEntered
	// All other clients are either coalesced onto the flight or not yet
	// arrived; release the computation and let everyone finish.
	close(gateRelease)
	wg.Wait()

	if got := s.Stats().Computed; got != 1 {
		t.Fatalf("%d identical concurrent queries ran the engine %d times, want 1", clients, got)
	}
	misses := 0
	for i := range bodies {
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("client %d body differs: %s vs %s", i, bodies[i], bodies[0])
		}
		if statuses[i] == "MISS" {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d clients reported MISS, want exactly 1", misses)
	}
}
