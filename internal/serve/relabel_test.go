package serve

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/graph"
)

// TestRelabeledServerMatchesIdentity: a daemon serving a degree-ordered
// relabeled (graph, index) pair is externally indistinguishable from one
// serving the identity layout — queries answer with the same node sets, and
// edit batches sent in external ids route to the right internal rows (the
// translation in runBatch), so post-edit answers agree too.
func TestRelabeledServerMatchesIdentity(t *testing.T) {
	g := testGraph(t, 95, 70)
	idx := testIndex(t, g, 5)
	_, tsID := newTestServer(t, g, idx, Config{CacheBytes: -1})

	perm := graph.DegreeOrderPermutation(g)
	if perm.IsIdentity() {
		t.Fatal("test graph degenerated to an identity degree order")
	}
	pg, err := graph.ApplyPermutation(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	pidx := testIndex(t, pg, 5)
	if err := pidx.SetRelabeling(perm); err != nil {
		t.Fatal(err)
	}
	_, tsPerm := newTestServer(t, pg, pidx, Config{CacheBytes: -1})

	sweep := func(stage string) {
		t.Helper()
		for q := 0; q < g.N(); q += 9 {
			for _, k := range []int{1, 5} {
				url := fmt.Sprintf("/v1/reverse-topk?q=%d&k=%d", q, k)
				respID, bodyID := get(t, tsID.URL+url)
				respPerm, bodyPerm := get(t, tsPerm.URL+url)
				if respID.StatusCode != http.StatusOK || respPerm.StatusCode != http.StatusOK {
					t.Fatalf("%s q=%d k=%d: status %d vs %d", stage, q, k, respID.StatusCode, respPerm.StatusCode)
				}
				want := decodeQuery(t, bodyID)
				got := decodeQuery(t, bodyPerm)
				if !sameNodes(got.Results, want.Results) {
					t.Errorf("%s q=%d k=%d: relabeled %v, identity %v", stage, q, k, got.Results, want.Results)
				}
			}
		}
	}
	sweep("pre-edit")

	// One removal of an existing external edge plus one insert of a fresh
	// one, posted identically (external ids) to both servers.
	hasEdge := func(u, v graph.NodeID) bool {
		for _, w := range g.OutNeighbors(u) {
			if w == v {
				return true
			}
		}
		return false
	}
	ru := graph.NodeID(0)
	for g.OutDegree(ru) == 0 {
		ru++
	}
	rv := g.OutNeighbors(ru)[0]
	var iu, iv graph.NodeID = -1, -1
findInsert:
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		for v := graph.NodeID(0); int(v) < g.N(); v++ {
			if u != v && !hasEdge(u, v) {
				iu, iv = u, v
				break findInsert
			}
		}
	}
	if iu < 0 {
		t.Fatal("no insertable edge found")
	}
	req := EditsRequest{
		Edits: []EditJSON{
			{From: ru, To: rv, Remove: true},
			{From: iu, To: iv, Weight: 1},
		},
		Wait: true,
	}
	for _, ts := range []string{tsID.URL, tsPerm.URL} {
		resp, _, raw := postEdits(t, ts, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("edits on %s: status %d: %s", ts, resp.StatusCode, raw)
		}
	}
	sweep("post-edit")
}
