package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/evolve"
	"repro/internal/graph"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

// TestServeConcurrentWithRefresh hammers the server with concurrent
// queries while asynchronous maintenance (journaled edit batches applied
// to the overlay, epoch publishes, and forced background compactions) runs
// underneath. Every response must be internally consistent with exactly
// ONE published epoch: its answer set must equal the brute-force oracle of
// the graph published under the epoch the response claims — and the oracle
// graphs are built through the INDEPENDENT rebuild path (evolve.ApplyEdits
// chain), so this is also an end-to-end differential test of the overlay
// pipeline. A torn read across a swap (proximities from one snapshot
// screened against bounds of another) would almost surely fail the claimed
// epoch's oracle. Run under -race this also proves the swap, journal and
// compaction layers are data-race-free.
func TestServeConcurrentWithRefresh(t *testing.T) {
	g := testGraph(t, 41, 48)
	idx := testIndex(t, g, 6)
	// MaxInflight must cover every reader: this test asserts 200s, and on a
	// low-core machine (GOMAXPROCS small) the default 4×GOMAXPROCS limit
	// could legitimately 503 a burst of readers. CompactAfter 1 forces a
	// compaction republish after every batch, so queries also race the
	// same-epoch view swap.
	s, err := New(g, idx, Config{CacheBytes: 32 << 10, MaxInflight: 16, CompactAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const (
		maintenanceRounds = 4
		editsPerRound     = 3
		readers           = 8
		requestsPerReader = 30
	)

	// Writer: enqueue async edit batches over HTTP and track, per epoch,
	// the graph the REBUILD path produces for the same batch chain. Epochs
	// are deterministic (all batches are valid, compaction keeps the
	// epoch), so batch i publishes epoch i+2.
	epochGraphs := map[uint64]*graph.Graph{1: g}
	writerDone := make(chan struct{})
	var lastWatermark uint64
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(42))
		cur := g
		for round := 0; round < maintenanceRounds; round++ {
			var edits []evolve.Edit
			for len(edits) < editsPerRound {
				u := graph.NodeID(rng.Intn(cur.N()))
				if rng.Intn(2) == 0 && cur.OutDegree(u) > 1 {
					nbrs := cur.OutNeighbors(u)
					edits = append(edits, evolve.Edit{From: u, To: nbrs[rng.Intn(len(nbrs))], Remove: true})
				} else {
					v := graph.NodeID(rng.Intn(cur.N()))
					already := false
					for _, e := range edits {
						if e.From == u && e.To == v {
							already = true
						}
					}
					if v == u || cur.HasEdge(u, v) || already {
						continue
					}
					edits = append(edits, evolve.Edit{From: u, To: v})
				}
			}
			var wire []EditJSON
			for _, e := range edits {
				wire = append(wire, EditJSON{From: e.From, To: e.To, Weight: e.Weight, Remove: e.Remove})
			}
			body, _ := json.Marshal(EditsRequest{Edits: wire})
			resp, err := http.Post(ts.URL+"/v1/edits", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Errorf("maintenance round %d: %v", round, err)
				return
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("maintenance round %d: status %d body %s", round, resp.StatusCode, raw)
				return
			}
			var er EditsResponse
			if err := json.Unmarshal(raw, &er); err != nil {
				t.Errorf("maintenance round %d: bad body %q", round, raw)
				return
			}
			lastWatermark = er.Watermark

			// Independent oracle chain through the rebuild path.
			g2, err := evolve.ApplyEdits(cur, edits, graph.DanglingSelfLoop)
			if err != nil {
				t.Errorf("oracle rebuild round %d: %v", round, err)
				return
			}
			cur = g2
			epochGraphs[uint64(round)+2] = g2
		}
	}()

	// Readers: fire queries the whole time, recording each response.
	type sample struct {
		q       graph.NodeID
		k       int
		epoch   uint64
		results []graph.NodeID
	}
	var (
		sampleMu sync.Mutex
		samples  []sample
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < requestsPerReader; i++ {
				q, k := rng.Intn(g.N()), 1+rng.Intn(6)
				resp, err := http.Get(fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=%d", ts.URL, q, k))
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("q=%d k=%d: status %d body %s", q, k, resp.StatusCode, body)
					continue
				}
				var qr QueryResponse
				if err := json.Unmarshal(body, &qr); err != nil {
					t.Errorf("q=%d k=%d: bad body %q: %v", q, k, body, err)
					continue
				}
				if hdr := resp.Header.Get("X-Epoch"); hdr != strconv.FormatUint(qr.Epoch, 10) {
					t.Errorf("q=%d k=%d: X-Epoch header %s disagrees with body epoch %d", q, k, hdr, qr.Epoch)
				}
				if qr.Count != len(qr.Results) {
					t.Errorf("q=%d k=%d: count %d but %d results", q, k, qr.Count, len(qr.Results))
				}
				sampleMu.Lock()
				samples = append(samples, sample{graph.NodeID(q), k, qr.Epoch, qr.Results})
				sampleMu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	<-writerDone

	// Drain the journal before verifying.
	deadline := time.Now().Add(30 * time.Second)
	for s.AppliedWatermark() < lastWatermark {
		if time.Now().After(deadline) {
			t.Fatalf("journal never drained: applied %d of %d", s.AppliedWatermark(), lastWatermark)
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.MaintErrors != 0 {
		t.Fatalf("maintenance errors during the run: %+v", st)
	}

	// Verify every sampled response against the oracle of its CLAIMED
	// epoch. One exact proximity matrix per epoch answers all samples.
	oracles := map[uint64][][]float64{}
	for epoch, eg := range epochGraphs {
		cols, err := rwr.ProximityMatrix(eg, rwr.DefaultParams(), 0)
		if err != nil {
			t.Fatal(err)
		}
		oracles[epoch] = cols
	}
	checked := 0
	for _, sm := range samples {
		cols, ok := oracles[sm.epoch]
		if !ok {
			t.Fatalf("response claims epoch %d, which was never published", sm.epoch)
		}
		var want []graph.NodeID
		for u := range cols {
			if cols[u][sm.q] >= vecmath.KthLargest(cols[u], sm.k) {
				want = append(want, graph.NodeID(u))
			}
		}
		if !sameNodes(sm.results, want) {
			t.Errorf("q=%d k=%d epoch=%d: served %v, oracle %v", sm.q, sm.k, sm.epoch, sm.results, want)
		}
		checked++
	}
	if checked != readers*requestsPerReader {
		t.Errorf("verified %d/%d responses", checked, readers*requestsPerReader)
	}
	if got := s.Stats().Compactions; got != maintenanceRounds {
		t.Errorf("compactions %d, want %d (CompactAfter=1 forces one per batch)", got, maintenanceRounds)
	}
}
