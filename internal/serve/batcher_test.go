package serve

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
)

// TestBatchedQueriesMatchOracle: concurrent bursts of distinct queries
// coalesce into SpMM groups and every response still equals the brute-force
// oracle — batching changes throughput, never answers.
func TestBatchedQueriesMatchOracle(t *testing.T) {
	g := testGraph(t, 91, 80)
	idx := testIndex(t, g, 6)
	orc := newOracle(t, g)
	s, ts := newTestServer(t, g, idx, Config{
		CacheBytes:  -1, // every request computes; nothing served from cache
		MaxInflight: 64, // admit the whole burst regardless of core count
		SpMMBatch:   4,
		SpMMWindow:  5 * time.Millisecond,
	})

	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			q := graph.NodeID((round*8 + i*7) % g.N())
			k := 1 + i%6
			wg.Add(1)
			go func() {
				defer wg.Done()
				resp, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=%d", ts.URL, q, k))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("q=%d k=%d: status %d: %s", q, k, resp.StatusCode, body)
					return
				}
				qr := decodeQuery(t, body)
				if want := orc.answer(q, k); !sameNodes(qr.Results, want) {
					t.Errorf("q=%d k=%d: got %v, oracle %v", q, k, qr.Results, want)
				}
			}()
		}
		wg.Wait()
	}
	if got := s.m.spmmBatched.Value(); got == 0 {
		t.Error("no queries went through the SpMM tier despite concurrent bursts")
	}
	if groups := s.m.spmmGroups.Value(); groups == 0 {
		t.Error("no SpMM groups fired")
	}
}

// TestBatchedEarlyReleaseUnderStarvation is the worker-budget accounting
// regression test: a fast query coalesced into the same SpMM group as a
// slow one must return — and release its admission slot — as soon as its
// own column is decided, not when the whole group finishes. The broken
// accounting held every member's slot until the group completed, so a
// stream of fast queries sharing groups with slow ones starved follow-up
// traffic into 503s.
func TestBatchedEarlyReleaseUnderStarvation(t *testing.T) {
	g := testGraph(t, 92, 60)
	idx := testIndex(t, g, 4)
	// Width 2 fires a group the instant its second member joins; the long
	// window guarantees the two concurrent requests coalesce rather than
	// racing the timer. MaxInflight 3 admits the held slow query plus one
	// follow-up PAIR only if the fast query's slot was really freed.
	s, ts := newTestServer(t, g, idx, Config{
		CacheBytes:  -1,
		MaxInflight: 3,
		SpMMBatch:   2,
		SpMMWindow:  10 * time.Second,
	})

	const slowQ, fastQ = 1, 2
	// slowQ is queried exactly once (the cache and its single-flight are
	// off), so the gate blocks exactly one delivery.
	release := make(chan struct{})
	s.testDeliverGate = func(q graph.NodeID) {
		if q == slowQ {
			<-release
		}
	}

	type result struct {
		status int
		body   []byte
	}
	query := func(q graph.NodeID, out chan<- result) {
		resp, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=3", ts.URL, q))
		out <- result{resp.StatusCode, body}
	}

	slowDone := make(chan result, 1)
	fastDone := make(chan result, 1)
	go query(slowQ, slowDone)
	go query(fastQ, fastDone)

	// The fast member of the group returns while the slow one is gated.
	select {
	case r := <-fastDone:
		if r.status != http.StatusOK {
			t.Fatalf("fast query: status %d: %s", r.status, r.body)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fast query did not return while its group-mate was held")
	}
	select {
	case r := <-slowDone:
		t.Fatalf("slow query returned while gated: status %d", r.status)
	default:
	}

	// Its slot is free: a follow-up pair (one more group) fits inside
	// MaxInflight=3 alongside the still-held slow query. With the broken
	// accounting the fast query's slot would still be occupied and one of
	// these would be rejected with 503.
	pair := make(chan result, 2)
	go query(10, pair)
	go query(11, pair)
	for i := 0; i < 2; i++ {
		select {
		case r := <-pair:
			if r.status != http.StatusOK {
				t.Fatalf("follow-up query: status %d: %s", r.status, r.body)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("follow-up pair did not complete")
		}
	}

	close(release)
	r := <-slowDone
	if r.status != http.StatusOK {
		t.Fatalf("slow query after release: status %d: %s", r.status, r.body)
	}
	if in := s.active.Load(); in != 0 {
		t.Fatalf("inflight = %d after all queries returned", in)
	}
}

// TestSpMMBatchDisabled: negative SpMMBatch turns the batcher off entirely
// and queries compute scalar.
func TestSpMMBatchDisabled(t *testing.T) {
	g := testGraph(t, 93, 40)
	idx := testIndex(t, g, 4)
	orc := newOracle(t, g)
	s, ts := newTestServer(t, g, idx, Config{SpMMBatch: -1})
	if s.batcher != nil {
		t.Fatal("batcher constructed despite SpMMBatch < 0")
	}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		q := graph.NodeID(i * 5 % g.N())
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=2", ts.URL, q))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("q=%d: status %d: %s", q, resp.StatusCode, body)
				return
			}
			if qr := decodeQuery(t, body); !sameNodes(qr.Results, orc.answer(q, 2)) {
				t.Errorf("q=%d: wrong answer %v", q, qr.Results)
			}
		}()
	}
	wg.Wait()
	if s.m.spmmGroups.Value() != 0 || s.m.spmmBatched.Value() != 0 {
		t.Error("SpMM counters moved with batching disabled")
	}
}
