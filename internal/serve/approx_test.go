package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"repro/internal/graph"
)

func decodeApprox(t *testing.T, body []byte) ApproxQueryResponse {
	t.Helper()
	var ar ApproxQueryResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("malformed approx body %q: %v", body, err)
	}
	return ar
}

// TestServeApproxMatchesOracle brackets every served anytime answer with
// the brute-force oracle: guaranteed ⊆ exact ⊆ guaranteed ∪ maybe, across
// (q, k, eps), with cached repeats byte-identical.
func TestServeApproxMatchesOracle(t *testing.T) {
	g := testGraph(t, 31, 60)
	idx := testIndex(t, g, 8)
	_, ts := newTestServer(t, g, idx, Config{})
	orc := newOracle(t, g)

	for _, q := range []int{0, 11, 42, 59} {
		for _, k := range []int{1, 4, 8} {
			for _, eps := range []string{"", "0.3", "0"} {
				url := fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=%d&mode=approx&delta=0.001", ts.URL, q, k)
				if eps != "" {
					url += "&eps=" + eps
				}
				resp, body := get(t, url)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("q=%d k=%d eps=%s: status %d body %s", q, k, eps, resp.StatusCode, body)
				}
				ar := decodeApprox(t, body)
				if ar.Mode != ModeApprox || ar.Query != graph.NodeID(q) || ar.K != k || ar.Count != len(ar.Results) {
					t.Fatalf("inconsistent envelope %+v", ar)
				}
				if eps == "" && ar.Eps != DefaultApproxEps {
					t.Fatalf("default eps not applied: %+v", ar)
				}
				want := orc.answer(graph.NodeID(q), k)
				inExact := map[graph.NodeID]bool{}
				for _, u := range want {
					inExact[u] = true
				}
				cover := map[graph.NodeID]bool{}
				for _, u := range ar.Results {
					if !inExact[u] {
						t.Fatalf("q=%d k=%d eps=%s: guaranteed %d not in exact %v", q, k, eps, u, want)
					}
					cover[u] = true
				}
				for _, u := range ar.Maybe {
					cover[u] = true
				}
				for _, u := range want {
					if !cover[u] {
						t.Fatalf("q=%d k=%d eps=%s: exact node %d uncovered (body %s)", q, k, eps, u, body)
					}
				}
				resp2, body2 := get(t, url)
				if resp2.Header.Get("X-Cache") != "HIT" {
					t.Errorf("q=%d k=%d eps=%s: repeat X-Cache=%s, want HIT", q, k, eps, resp2.Header.Get("X-Cache"))
				}
				if !bytes.Equal(body, body2) {
					t.Errorf("q=%d k=%d eps=%s: cached approx body differs", q, k, eps)
				}
			}
		}
	}
}

// TestServeApproxCacheIsolation is the cross-mode cache regression: the
// same (q, k) served exact then approx (and under two different eps) must
// be three distinct cache entries — each first request a MISS, each repeat
// a HIT of its own body type.
func TestServeApproxCacheIsolation(t *testing.T) {
	g := testGraph(t, 33, 50)
	idx := testIndex(t, g, 8)
	_, ts := newTestServer(t, g, idx, Config{})

	exactURL := fmt.Sprintf("%s/v1/reverse-topk?q=7&k=5", ts.URL)
	approxURL := fmt.Sprintf("%s/v1/reverse-topk?q=7&k=5&mode=approx&eps=0.2", ts.URL)
	tightURL := fmt.Sprintf("%s/v1/reverse-topk?q=7&k=5&mode=approx&eps=0.05", ts.URL)

	respE, bodyE := get(t, exactURL)
	if respE.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("exact first request X-Cache=%s", respE.Header.Get("X-Cache"))
	}
	respA, bodyA := get(t, approxURL)
	if respA.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("approx after exact was %s, want MISS (cache key must separate modes)", respA.Header.Get("X-Cache"))
	}
	respT, bodyT := get(t, tightURL)
	if respT.Header.Get("X-Cache") != "MISS" {
		t.Fatalf("eps=0.05 after eps=0.2 was %s, want MISS (cache key must separate budgets)", respT.Header.Get("X-Cache"))
	}

	// Repeats hit, and each returns its own body type: exact bodies have no
	// mode field, approx bodies do.
	resp2, body2 := get(t, exactURL)
	if resp2.Header.Get("X-Cache") != "HIT" || !bytes.Equal(body2, bodyE) {
		t.Fatalf("exact repeat corrupted: X-Cache=%s", resp2.Header.Get("X-Cache"))
	}
	var raw map[string]any
	if err := json.Unmarshal(body2, &raw); err != nil {
		t.Fatal(err)
	}
	if _, hasMode := raw["mode"]; hasMode {
		t.Fatalf("exact request served an approx body: %s", body2)
	}
	resp3, body3 := get(t, approxURL)
	if resp3.Header.Get("X-Cache") != "HIT" || !bytes.Equal(body3, bodyA) {
		t.Fatalf("approx repeat corrupted: X-Cache=%s", resp3.Header.Get("X-Cache"))
	}
	if ar := decodeApprox(t, body3); ar.Mode != ModeApprox || ar.Eps != 0.2 {
		t.Fatalf("approx repeat wrong body: %s", body3)
	}
	if ar := decodeApprox(t, bodyT); ar.Eps != 0.05 {
		t.Fatalf("tight-eps body wrong: %s", bodyT)
	}
}

// TestServeApproxValidation covers the mode/eps/delta 400s.
func TestServeApproxValidation(t *testing.T) {
	g := testGraph(t, 35, 30)
	idx := testIndex(t, g, 5)
	_, ts := newTestServer(t, g, idx, Config{})
	for _, tc := range []struct {
		name, params string
	}{
		{"unknown mode", "q=1&k=3&mode=fast"},
		{"eps without approx", "q=1&k=3&eps=0.1"},
		{"delta without approx", "q=1&k=3&delta=0.1"},
		{"eps=1", "q=1&k=3&mode=approx&eps=1"},
		{"negative eps", "q=1&k=3&mode=approx&eps=-0.1"},
		{"malformed eps", "q=1&k=3&mode=approx&eps=lots"},
		{"delta too large", "q=1&k=3&mode=approx&delta=0.9"},
		{"malformed delta", "q=1&k=3&mode=approx&delta=x"},
	} {
		resp, body := get(t, ts.URL+"/v1/reverse-topk?"+tc.params)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d body %s, want 400", tc.name, resp.StatusCode, body)
		}
	}
}

// TestServeApproxStats checks the /v1/stats anytime counters move.
func TestServeApproxStats(t *testing.T) {
	g := testGraph(t, 37, 40)
	idx := testIndex(t, g, 6)
	s, ts := newTestServer(t, g, idx, Config{})

	for q := 0; q < 5; q++ {
		resp, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=4&mode=approx&eps=0.2", ts.URL, q))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("q=%d: status %d body %s", q, resp.StatusCode, body)
		}
	}
	st := s.Stats()
	if st.ApproxComputed != 5 {
		t.Errorf("ApproxComputed=%d, want 5", st.ApproxComputed)
	}
	if st.ApproxRounds < 5 {
		t.Errorf("ApproxRounds=%d, want ≥ 5", st.ApproxRounds)
	}
	// And the counters survive the JSON envelope.
	resp, body := get(t, ts.URL+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatal(resp.StatusCode)
	}
	var sr StatsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ApproxComputed != st.ApproxComputed || sr.ApproxRounds != st.ApproxRounds {
		t.Errorf("stats body %+v disagrees with Stats() %+v", sr, st)
	}
}

// TestServeApproxConcurrentMixed hammers one server with interleaved exact
// and anytime requests for the -race harness, checking each response is of
// the requested type and internally consistent.
func TestServeApproxConcurrentMixed(t *testing.T) {
	g := testGraph(t, 39, 50)
	idx := testIndex(t, g, 8)
	_, ts := newTestServer(t, g, idx, Config{WorkerBudget: 4, MaxInflight: 64})

	var wg sync.WaitGroup
	for i := 0; i < 48; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := i % 6
			if i%2 == 0 {
				resp, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=5&mode=approx&eps=0.2&delta=0.001", ts.URL, q))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("approx q=%d: status %d body %s", q, resp.StatusCode, body)
					return
				}
				if ar := decodeApprox(t, body); ar.Mode != ModeApprox || ar.Query != graph.NodeID(q) {
					t.Errorf("approx q=%d: wrong body %s", q, body)
				}
			} else {
				resp, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=5", ts.URL, q))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("exact q=%d: status %d body %s", q, resp.StatusCode, body)
					return
				}
				var raw map[string]any
				if err := json.Unmarshal(body, &raw); err != nil {
					t.Errorf("exact q=%d: %v", q, err)
					return
				}
				if _, hasMode := raw["mode"]; hasMode {
					t.Errorf("exact q=%d: served approx body %s", q, body)
				}
			}
		}(i)
	}
	wg.Wait()
}
