package serve

import (
	"encoding/json"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
)

// spmmBatcher coalesces concurrently admitted query computations on the
// same snapshot into SpMM groups (core.View.QueryMulti): the group's PMPN
// proximity columns advance in one shared slab, amortizing the transition
// matrix's memory traffic across the group — the serving bottleneck at
// production traffic, where every scalar query streams the whole CSR from
// RAM by itself.
//
// Coalescing is bounded two ways: a group fires as soon as it reaches the
// configured width, or when its window timer expires, whichever comes
// first — a lone query pays at most one window of extra latency, never
// waits for a full group. A group that fires with a single member takes
// the scalar path (one column gains nothing from a slab).
//
// Admission stays PER QUERY: each request holds its own admission slot
// (Server.active) and releases it the moment its OWN result is delivered.
// QueryMulti retires each query's column as it converges and decides it
// immediately, so a fast query coalesced with a slow one returns early and
// frees its slot — the group never holds capacity for members already
// answered (see the starvation regression test).
type spmmBatcher struct {
	width  int
	window time.Duration

	mu     sync.Mutex
	groups map[*Snapshot]*spmmGroup // guarded by mu; open (not yet fired) group per snapshot
}

// spmmGroup is one forming batch, pinned to the snapshot all its members
// validated against.
type spmmGroup struct {
	snap    *Snapshot
	entries []*spmmEntry
	timer   *time.Timer
}

// spmmEntry is one request's membership in a group; done closes when body,
// err and stats are final.
type spmmEntry struct {
	q    graph.NodeID
	k    int
	done chan struct{}
	body []byte
	err  error
	// stats is this query's own phase record from the group computation,
	// written by the deliver callback before done closes.
	stats core.QueryStats
}

func newSpmmBatcher(width int, window time.Duration) *spmmBatcher {
	return &spmmBatcher{width: width, window: window, groups: make(map[*Snapshot]*spmmGroup)}
}

// joinGroup adds one admitted computation to the snapshot's open group,
// opening a fresh one (and arming its window timer) when none is pending.
// The caller blocks on the returned entry's done channel; the group runs on
// its own goroutine so no member's handler is drafted into serving the
// others' results.
func (s *Server) joinGroup(snap *Snapshot, q graph.NodeID, k int) *spmmEntry {
	b := s.batcher
	e := &spmmEntry{q: q, k: k, done: make(chan struct{})}
	b.mu.Lock()
	g := b.groups[snap]
	if g == nil {
		g = &spmmGroup{snap: snap}
		b.groups[snap] = g
		g.timer = time.AfterFunc(b.window, func() {
			b.mu.Lock()
			if b.groups[snap] != g {
				// Already fired at full width; nothing to do.
				b.mu.Unlock()
				return
			}
			delete(b.groups, snap)
			b.mu.Unlock()
			s.runGroup(g)
		})
	}
	g.entries = append(g.entries, e)
	if len(g.entries) >= b.width {
		delete(b.groups, snap)
		g.timer.Stop()
		b.mu.Unlock()
		go s.runGroup(g)
		return e
	}
	b.mu.Unlock()
	return e
}

// runGroup evaluates one fired group and finishes every entry exactly once.
func (s *Server) runGroup(g *spmmGroup) {
	entries := g.entries
	if len(entries) == 1 {
		e := entries[0]
		var tr queryTrace
		e.body, e.err = s.computeScalar(g.snap, e.q, e.k, &tr)
		e.stats.PMPNIters = tr.pmpnIters
		for name, d := range tr.phases {
			switch name {
			case "pmpn":
				e.stats.PMPNElapsed = d
			case "decide":
				e.stats.DecideElapsed = d
			case "fallback":
				e.stats.FallbackElapsed = d
			}
		}
		close(e.done)
		return
	}
	s.m.spmmGroups.Inc()
	s.m.spmmBatched.Add(uint64(len(entries)))
	qs := make([]graph.NodeID, len(entries))
	ks := make([]int, len(entries))
	for i, e := range entries {
		qs[i], ks[i] = e.q, e.k
	}
	// The group's share of the worker budget is its members' combined
	// per-query share at fire time (clamped to the whole budget): the slab
	// sweep is one computation doing the work of len(entries) queries.
	active := int(s.active.Load())
	if active < 1 {
		active = 1
	}
	workers := s.budget * len(entries) / active
	if workers < 1 {
		workers = 1
	}
	if workers > s.budget {
		workers = s.budget
	}
	err := g.snap.View.QueryMulti(qs, ks, workers, func(i int, answer []graph.NodeID, qstats core.QueryStats, qerr error) {
		e := entries[i]
		if gate := s.testDeliverGate; gate != nil {
			gate(e.q)
		}
		e.stats = qstats
		if qerr != nil {
			e.err = qerr
			close(e.done)
			return
		}
		if answer == nil {
			answer = []graph.NodeID{}
		}
		s.m.computed.With("exact").Inc()
		e.body, e.err = json.Marshal(QueryResponse{
			Query:   e.q,
			K:       e.k,
			Epoch:   g.snap.Epoch,
			Count:   len(answer),
			Results: answer,
		})
		close(e.done)
	})
	if err != nil {
		// Batch-wide validation failure: QueryMulti delivered nothing, so
		// every entry is still open. Cannot happen for parameters that
		// passed ValidateQueryParams; handled so no request can hang.
		for _, e := range entries {
			e.err = err
			close(e.done)
		}
	}
}
