package serve

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// This file is the serving layer's observability wiring: the metric
// catalog every Server registers, the per-request trace the compute paths
// fill, and the request-ID plumbing that correlates one query across the
// fan-out topology. The /v1/stats JSON keeps its exact shape — it is now a
// view over the registry — while /metrics exposes the same state (plus
// histograms the JSON never carried) in Prometheus text format.

// RequestIDHeader carries a query's correlation ID across the serving
// topology: the fan-out coordinator stamps it on every proxied shard call,
// shard daemons echo it, and each hop's structured log line repeats it.
const RequestIDHeader = "X-RTK-Request-ID"

// ensureRequestID returns the request's correlation ID — propagated from
// the incoming header when a coordinator already stamped one, freshly
// minted otherwise — and echoes it on the response.
func ensureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(RequestIDHeader)
	if id == "" {
		id = obs.NewRequestID()
	}
	w.Header().Set(RequestIDHeader, id)
	return id
}

// DefaultSlowLogCapacity is the slow-query ring size when
// Config.SlowLogCapacity is 0.
const DefaultSlowLogCapacity = 256

// DefaultSlowLogThreshold is the slow-query recording threshold when
// Config.SlowLogThreshold is 0.
const DefaultSlowLogThreshold = 250 * time.Millisecond

// phaseBuckets resolve the query phase histograms: phases run from
// sub-millisecond screens to multi-second SpMM slabs.
var phaseBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metrics is the Server's instrument set, all registered on one Registry.
type metrics struct {
	served   *obs.CounterVec // rtk_queries_served_total{mode}
	computed *obs.CounterVec // rtk_queries_computed_total{mode}
	cacheRes *obs.CounterVec // rtk_query_cache_total{status}
	rejected *obs.Counter
	failures *obs.Counter

	epochSwaps    *obs.Counter
	spmmGroups    *obs.Counter
	spmmBatched   *obs.Counter
	approxRounds  *obs.Counter
	approxMCWalks *obs.Counter

	maintErrors *obs.Counter
	compactions *obs.Counter
	nodesGrown  *obs.Counter
	checkpoints *obs.Counter

	writeDrops *obs.CounterVec // rtk_http_write_drops_total{handler}
	httpErrors *obs.CounterVec // rtk_http_errors_total{handler,status}

	queryDur *obs.HistogramVec // rtk_query_duration_seconds{mode}
	phaseDur *obs.HistogramVec // rtk_query_phase_seconds{phase}
	maintDur *obs.Histogram
	walDur   *obs.Histogram
	walBytes *obs.Counter
	ckptDur  *obs.Histogram
}

// newMetrics registers the counter and histogram families. Gauge families
// close over live server state and are registered separately once the
// Server struct exists (registerGauges).
func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		served:   reg.NewCounterVec("rtk_queries_served_total", "Queries answered, by mode.", "mode"),
		computed: reg.NewCounterVec("rtk_queries_computed_total", "Queries that ran an engine computation (cache hits and coalesced waiters excluded), by mode.", "mode"),
		cacheRes: reg.NewCounterVec("rtk_query_cache_total", "Result cache outcomes per query.", "status"),
		rejected: reg.NewCounter("rtk_queries_rejected_total", "Queries rejected by admission control (503)."),
		failures: reg.NewCounter("rtk_query_failures_total", "Queries that failed inside the engine (500)."),

		epochSwaps:    reg.NewCounter("rtk_epoch_swaps_total", "Snapshot publishes (maintenance epoch bumps)."),
		spmmGroups:    reg.NewCounter("rtk_spmm_groups_total", "SpMM groups fired at width >= 2."),
		spmmBatched:   reg.NewCounter("rtk_spmm_batched_queries_total", "Queries served through an SpMM group."),
		approxRounds:  reg.NewCounter("rtk_approx_rounds_total", "Anytime screen rounds across approx computations."),
		approxMCWalks: reg.NewCounter("rtk_approx_mc_walks_total", "Monte Carlo walks spent by the anytime refinement stage."),

		maintErrors: reg.NewCounter("rtk_maint_errors_total", "Maintenance pipeline failures (rejected batches, compaction and checkpoint errors)."),
		compactions: reg.NewCounter("rtk_compactions_total", "Overlay compactions folded back into a fresh CSR."),
		nodesGrown:  reg.NewCounter("rtk_nodes_grown_total", "Nodes added to the graph by edit batches."),
		checkpoints: reg.NewCounter("rtk_checkpoints_total", "Committed checkpoints."),

		writeDrops: reg.NewCounterVec("rtk_http_write_drops_total", "Response bodies the client connection refused after the status was committed.", "handler"),
		httpErrors: reg.NewCounterVec("rtk_http_errors_total", "Error responses, by handler and status code.", "handler", "status"),

		queryDur: reg.NewHistogramVec("rtk_query_duration_seconds", "End-to-end query latency, by mode.", nil, "mode"),
		phaseDur: reg.NewHistogramVec("rtk_query_phase_seconds", "Per-query phase wall clock: pmpn, decide, fallback, mc.", phaseBuckets, "phase"),
		maintDur: reg.NewHistogram("rtk_maint_duration_seconds", "Maintenance batch wall clock (apply + refresh + publish).", nil),
		walDur:   reg.NewHistogram("rtk_wal_append_seconds", "WAL record write+fsync wall clock.", phaseBuckets),
		walBytes: reg.NewCounter("rtk_wal_appended_bytes_total", "Bytes appended to the write-ahead journal."),
		ckptDur:  reg.NewHistogram("rtk_checkpoint_duration_seconds", "Checkpoint wall clock (compact + save + commit + truncate).", nil),
	}
}

// registerGauges registers the families that read live server state. They
// run on the scrape goroutine: everything they touch is an atomic, a
// self-locking accessor, or an immutable field. s.journal is set before
// the handler is ever mounted and never reassigned, so the nil check is
// race-free.
func (s *Server) registerGauges(reg *obs.Registry) {
	reg.NewGaugeFunc("rtk_epoch", "Currently served snapshot epoch.", func() float64 {
		return float64(s.store.Current().Epoch)
	})
	reg.NewGaugeFunc("rtk_nodes", "Nodes in the served graph.", func() float64 {
		return float64(s.store.Current().View.N())
	})
	reg.NewGaugeFunc("rtk_inflight", "Engine computations currently running.", func() float64 {
		return float64(s.active.Load())
	})
	reg.NewGaugeFunc("rtk_worker_budget", "Intra-query worker budget shared by concurrent computations.", func() float64 {
		return float64(s.budget)
	})
	reg.NewGaugeFunc("rtk_draining", "1 while the server is draining, else 0.", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	reg.NewGaugeFunc("rtk_uptime_seconds", "Seconds since the server started.", func() float64 {
		return time.Since(s.start).Seconds()
	})
	reg.NewGaugeFunc("rtk_cache_bytes", "Accounted bytes of completed cache entries.", func() float64 {
		return float64(s.cache.Bytes())
	})
	reg.NewGaugeFunc("rtk_cache_entries", "Completed cache entries.", func() float64 {
		return float64(s.cache.Len())
	})
	reg.NewGaugeFunc("rtk_cache_cap_bytes", "Configured cache byte budget.", func() float64 {
		return float64(s.cache.Cap())
	})
	reg.NewCounterFuncs("rtk_cache_evictions_total", "Cache entries removed or refused, by cause.", "cause",
		map[string]func() float64{
			"capacity": func() float64 { return float64(s.cache.evictedCapacity.Load()) },
			"epoch":    func() float64 { return float64(s.cache.droppedEpoch.Load()) },
			"oversize": func() float64 { return float64(s.cache.skippedOversize.Load()) },
		})
	reg.NewGaugeFunc("rtk_maint_queue_depth", "Edit batches acknowledged but not yet applied (queue length).", func() float64 {
		s.mu.Lock()
		depth := len(s.queue)
		s.mu.Unlock()
		return float64(depth)
	})
	reg.NewGaugeFunc("rtk_enqueued_watermark", "Watermark of the newest acknowledged edit batch.", func() float64 {
		return float64(s.enqueuedWM.Load())
	})
	reg.NewGaugeFunc("rtk_applied_watermark", "Watermark of the newest fully applied edit batch.", func() float64 {
		return float64(s.appliedWM.Load())
	})
	reg.NewGaugeFunc("rtk_overlay_delta_edges", "Patched adjacency entries in the newest overlay (compaction trigger input).", func() float64 {
		return float64(s.overlay.Load().DeltaEdges())
	})
	reg.NewGaugeFunc("rtk_journal_bytes", "Write-ahead journal size (0 on a volatile server).", func() float64 {
		if s.journal == nil {
			return 0
		}
		return float64(s.journal.Size())
	})
	reg.NewGaugeFunc("rtk_journal_batches", "Records in the write-ahead journal (0 on a volatile server).", func() float64 {
		if s.journal == nil {
			return 0
		}
		return float64(s.journal.Batches())
	})
	reg.NewGaugeFunc("rtk_checkpoint_watermark", "Watermark of the last committed checkpoint.", func() float64 {
		return float64(s.lastCkptWM.Load())
	})
	reg.NewGaugeFunc("rtk_checkpoint_age_seconds", "Seconds since the last committed checkpoint (0 before the first).", func() float64 {
		ns := s.lastCkptNS.Load()
		if ns == 0 {
			return 0
		}
		return time.Since(time.Unix(0, ns)).Seconds()
	})
	reg.NewGaugeFunc("rtk_replayed_batches", "Journal records replayed at startup.", func() float64 {
		return float64(s.replayed)
	})
}

// queryTrace is one request's phase record, filled by the computation that
// actually ran (empty for cache hits and coalesced waiters — their work
// happened under another request's trace).
type queryTrace struct {
	computed  bool
	phases    map[string]time.Duration
	pmpnIters int
	rounds    int
}

// setPhases installs a non-empty phase map.
func (t *queryTrace) setPhases(p map[string]time.Duration) {
	if len(p) > 0 {
		t.phases = p
	}
}

// observeQuery records one answered query's latency, phases, structured
// log line and slow-log entry. code is the HTTP status actually sent.
func (s *Server) observeQuery(id, mode string, q, k int, epoch uint64, cacheStatus CacheStatus, code int, elapsed time.Duration, tr *queryTrace) {
	s.m.queryDur.With(mode).Observe(elapsed.Seconds())
	phasesMS := make(map[string]float64, len(tr.phases))
	for name, d := range tr.phases {
		s.m.phaseDur.With(name).Observe(d.Seconds())
		phasesMS[name] = float64(d) / float64(time.Millisecond)
	}
	if s.logger != nil {
		s.logger.Info("query",
			"request_id", id,
			"mode", mode,
			"q", q,
			"k", k,
			"epoch", epoch,
			"cache", cacheStatus.String(),
			"status", code,
			"duration_ms", float64(elapsed)/float64(time.Millisecond),
			"pmpn_iters", tr.pmpnIters,
			"rounds", tr.rounds,
		)
	}
	if len(phasesMS) == 0 {
		phasesMS = nil
	}
	s.slow.Record(obs.SlowEntry{
		Time:      time.Now(),
		RequestID: id,
		Route:     "reverse-topk",
		Detail:    fmt.Sprintf("q=%d k=%d mode=%s cache=%s", q, k, mode, cacheStatus),
		PhasesMS:  phasesMS,
		Duration:  elapsed,
	})
}

// httpError writes an error response through the unified error account:
// one counter family, labeled by handler and status, covers every
// non-success response the daemon produces.
func (s *Server) httpError(w http.ResponseWriter, handler string, status int, format string, args ...any) {
	s.m.httpErrors.With(handler, strconv.Itoa(status)).Inc()
	writeError(w, status, format, args...)
}

// writeBody writes an already-committed 200 body, counting a client
// connection that refuses it.
func (s *Server) writeBody(w http.ResponseWriter, handler string, body []byte) {
	if _, err := w.Write(body); err != nil {
		s.m.writeDrops.With(handler).Inc()
	}
}

// Registry returns the server's metric registry (the /metrics source).
func (s *Server) Registry() *obs.Registry { return s.reg }

// SlowLog returns the server's slow-query ring.
func (s *Server) SlowLog() *obs.SlowLog { return s.slow }
