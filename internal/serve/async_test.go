package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/evolve"
	"repro/internal/graph"
)

func postEdits(t *testing.T, url string, req EditsRequest) (*http.Response, EditsResponse, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/edits", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var er EditsResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &er); err != nil {
			t.Fatalf("bad edits response %q: %v", raw, err)
		}
	}
	return resp, er, raw
}

func fetchStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, body := get(t, url+"/v1/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}
	var st StatsResponse
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitWatermark(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.AppliedWatermark() < want {
		if time.Now().After(deadline) {
			t.Fatalf("watermark %d not applied within deadline (at %d)", want, s.AppliedWatermark())
		}
		time.Sleep(time.Millisecond)
	}
}

// findInserts returns `count` distinct non-edges of v.
func findInserts(t *testing.T, v graph.View, count int) []EditJSON {
	t.Helper()
	var edits []EditJSON
	for u := graph.NodeID(0); len(edits) < count && int(u) < v.N(); u++ {
		for w := graph.NodeID(0); len(edits) < count && int(w) < v.N(); w++ {
			if u != w && !v.HasEdge(u, w) {
				edits = append(edits, EditJSON{From: u, To: w})
			}
		}
	}
	if len(edits) < count {
		t.Fatalf("graph too dense to find %d non-edges", count)
	}
	return edits
}

// TestServeAsyncEditsDontBlockQueries holds a maintenance pass open at the
// gate and checks that (a) the POST came back 202 with a watermark without
// waiting, (b) queries keep being served from the pre-edit epoch while
// maintenance is in flight, and (c) after release the new epoch's answers
// match the edited graph's oracle.
func TestServeAsyncEditsDontBlockQueries(t *testing.T) {
	g := testGraph(t, 31, 40)
	idx := testIndex(t, g, 6)
	s, err := New(g, idx, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	gateEntered := make(chan struct{}, 4)
	gateRelease := make(chan struct{})
	s.testMaintGate = func() {
		gateEntered <- struct{}{}
		<-gateRelease
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	edits := findInserts(t, g, 2)
	resp, er, raw := postEdits(t, ts.URL, EditsRequest{Edits: edits})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async edits: status %d body %s, want 202", resp.StatusCode, raw)
	}
	if er.Watermark != 1 || er.Epoch != 0 {
		t.Fatalf("async response %+v, want watermark 1 and no epoch", er)
	}
	<-gateEntered // maintenance now holding the batch open

	// Queries flow against epoch 1 while the batch is mid-flight.
	orc := newOracle(t, g)
	for _, q := range []int{0, 9, 33} {
		r, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=4", ts.URL, q))
		if r.StatusCode != http.StatusOK {
			t.Fatalf("query during maintenance: %d %s", r.StatusCode, body)
		}
		qr := decodeQuery(t, body)
		if qr.Epoch != 1 {
			t.Fatalf("query during maintenance served epoch %d, want 1", qr.Epoch)
		}
		if want := orc.answer(graph.NodeID(q), 4); !sameNodes(qr.Results, want) {
			t.Fatalf("q=%d mid-maintenance answer %v, oracle %v", q, qr.Results, want)
		}
	}
	if st := fetchStats(t, ts.URL); st.PendingEdits != 1 || st.EnqueuedWatermark != 1 || st.AppliedWatermark != 0 {
		t.Fatalf("mid-flight stats %+v, want pending=1", st)
	}

	close(gateRelease)
	waitWatermark(t, s, 1)

	// Post-apply: answers match the edited graph's oracle at epoch 2.
	var evEdits []evolve.Edit
	for _, e := range edits {
		evEdits = append(evEdits, evolve.Edit{From: e.From, To: e.To})
	}
	g2, err := evolve.ApplyEdits(g, evEdits, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	orc2 := newOracle(t, g2)
	for _, q := range []int{0, 9, 33} {
		r, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=4", ts.URL, q))
		if r.StatusCode != http.StatusOK {
			t.Fatalf("post-apply query: %d %s", r.StatusCode, body)
		}
		qr := decodeQuery(t, body)
		if qr.Epoch != 2 {
			t.Fatalf("post-apply epoch %d, want 2", qr.Epoch)
		}
		if want := orc2.answer(graph.NodeID(q), 4); !sameNodes(qr.Results, want) {
			t.Fatalf("q=%d post-apply answer %v, oracle %v", q, qr.Results, want)
		}
	}
	if st := fetchStats(t, ts.URL); st.PendingEdits != 0 || st.AppliedWatermark != 1 || st.LastAffectedOrigins == 0 {
		t.Fatalf("post-apply stats %+v", st)
	}
}

// TestServeAsyncInvalidBatch: an invalid batch posted asynchronously is
// still accepted (202), then surfaces through the maintenance error
// counters without publishing an epoch.
func TestServeAsyncInvalidBatch(t *testing.T) {
	g := testGraph(t, 32, 30)
	idx := testIndex(t, g, 5)
	s, ts := newTestServer(t, g, idx, Config{})

	var u, v graph.NodeID
outer:
	for u = 0; int(u) < g.N(); u++ {
		for v = 0; int(v) < g.N(); v++ {
			if u != v && !g.HasEdge(u, v) {
				break outer
			}
		}
	}
	resp, er, raw := postEdits(t, ts.URL, EditsRequest{Edits: []EditJSON{{From: u, To: v, Remove: true}}})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async invalid batch: status %d body %s, want 202", resp.StatusCode, raw)
	}
	waitWatermark(t, s, er.Watermark)
	st := fetchStats(t, ts.URL)
	if st.MaintErrors != 1 || st.LastMaintError == "" {
		t.Fatalf("stats after failed batch: %+v, want maint_errors=1 with message", st)
	}
	if st.Epoch != 1 || st.EpochSwaps != 0 {
		t.Fatalf("failed batch published an epoch: %+v", st)
	}
}

// TestServeNodeGrowth posts an edit batch that grows the graph and checks
// the index is padded with fresh origins: the new epoch serves queries for
// the new nodes with oracle-exact answers.
func TestServeNodeGrowth(t *testing.T) {
	g := testGraph(t, 33, 36)
	idx := testIndex(t, g, 6)
	s, ts := newTestServer(t, g, idx, Config{})

	n := graph.NodeID(g.N())
	evEdits := []evolve.Edit{
		{From: 4, To: n},     // edge into new node n
		{From: n, To: 9},     // new node n links back
		{From: n + 1, To: 2}, // second new node
	}
	var edits []EditJSON
	for _, e := range evEdits {
		edits = append(edits, EditJSON{From: e.From, To: e.To})
	}
	resp, er, raw := postEdits(t, ts.URL, EditsRequest{Edits: edits, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("growing edits: status %d body %s", resp.StatusCode, raw)
	}
	if er.Epoch != 2 {
		t.Fatalf("growing edits published epoch %d, want 2", er.Epoch)
	}

	g2, err := evolve.ApplyEdits(g, evEdits, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Store().Current().View.N(); got != g2.N() {
		t.Fatalf("snapshot has %d nodes, want %d", got, g2.N())
	}
	st := fetchStats(t, ts.URL)
	if st.Nodes != g2.N() || st.NodesGrown != int64(g2.N()-g.N()) {
		t.Fatalf("growth stats %+v, want nodes=%d grown=%d", st, g2.N(), g2.N()-g.N())
	}

	orc2 := newOracle(t, g2)
	for _, q := range []int{int(n), int(n) + 1, 0, 4, 9} {
		r, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=4", ts.URL, q))
		if r.StatusCode != http.StatusOK {
			t.Fatalf("q=%d on grown graph: %d %s", q, r.StatusCode, body)
		}
		qr := decodeQuery(t, body)
		if want := orc2.answer(graph.NodeID(q), 4); !sameNodes(qr.Results, want) {
			t.Fatalf("q=%d grown-graph answer %v, oracle %v", q, qr.Results, want)
		}
	}

	// The index clone must still satisfy its invariants after padding.
	if err := s.Store().Current().View.Index().CheckInvariants(); err != nil {
		t.Fatalf("grown index: %v", err)
	}

	// Growth beyond the per-batch bound is rejected cleanly.
	resp, _, raw = postEdits(t, ts.URL, EditsRequest{
		Edits: []EditJSON{{From: 0, To: graph.NodeID(g2.N() + 1000)}},
		Wait:  true,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized growth: status %d body %s, want 400", resp.StatusCode, raw)
	}
}

// TestServeCompaction forces compaction after every batch and checks it is
// epoch-invisible: same epoch, cache intact, identical answers, and the
// overlay delta reset.
func TestServeCompaction(t *testing.T) {
	g := testGraph(t, 34, 36)
	idx := testIndex(t, g, 6)
	s, ts := newTestServer(t, g, idx, Config{CompactAfter: 1})

	edits := findInserts(t, g, 2)
	resp, er, raw := postEdits(t, ts.URL, EditsRequest{Edits: edits, Wait: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edits: %d %s", resp.StatusCode, raw)
	}

	// Warm the cache at epoch 2, then wait out the background compaction
	// that the batch scheduled (it runs right after the publish).
	url := fmt.Sprintf("%s/v1/reverse-topk?q=3&k=4", ts.URL)
	_, body1 := get(t, url)
	deadline := time.Now().Add(30 * time.Second)
	for fetchStats(t, ts.URL).Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("compaction never ran")
		}
		time.Sleep(time.Millisecond)
	}
	st := fetchStats(t, ts.URL)
	if st.Epoch != er.Epoch {
		t.Fatalf("compaction bumped the epoch: %d → %d", er.Epoch, st.Epoch)
	}
	if st.OverlayDeltaEdges != 0 || st.OverlayPatchedNodes != 0 {
		t.Fatalf("compaction left a delta: %+v", st)
	}
	// Compaction republishes a pure CSR view, restoring the fastest
	// matvec path until the next edit batch.
	if _, ok := s.Store().Current().View.Graph().(*graph.Graph); !ok {
		t.Fatalf("compacted snapshot serves %T, want *graph.Graph", s.Store().Current().View.Graph())
	}

	// Cached answers survive the republish (same epoch, same semantics)...
	r2, body2 := get(t, url)
	if r2.Header.Get("X-Cache") != "HIT" || !bytes.Equal(body1, body2) {
		t.Fatalf("cache lost across compaction: %s %q vs %q", r2.Header.Get("X-Cache"), body1, body2)
	}
	// ...and fresh computations on the compacted CSR agree with the
	// edited graph's oracle.
	var evEdits []evolve.Edit
	for _, e := range edits {
		evEdits = append(evEdits, evolve.Edit{From: e.From, To: e.To})
	}
	g2, err := evolve.ApplyEdits(g, evEdits, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	orc2 := newOracle(t, g2)
	for _, q := range []int{1, 17, 35} {
		r, body := get(t, fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=5", ts.URL, q))
		if r.StatusCode != http.StatusOK {
			t.Fatalf("post-compaction q=%d: %d %s", q, r.StatusCode, body)
		}
		qr := decodeQuery(t, body)
		if want := orc2.answer(graph.NodeID(q), 5); !sameNodes(qr.Results, want) {
			t.Fatalf("post-compaction q=%d answer %v, oracle %v", q, qr.Results, want)
		}
	}
}
