package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/evolve"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Fanout is the HTTP transport of the sharded query layer: a coordinator
// daemon that owns no graph and no index, only the base URLs of P stock
// rtkserve shard daemons, each loaded with one shard-slice index file.
// A query fans out to every shard — each computes its own PMPN against its
// replicated graph and decides only the candidates its partition owns —
// and the disjoint per-shard answers merge into the exact global answer.
// Edits broadcast to every shard (the graph is replicated), and each shard
// re-indexes only the affected rows it owns (see Server.runBatch), so one
// POST fans the refresh cost out P ways too.
//
// The in-process transport (internal/shard.Coordinator) additionally
// shares one PMPN across shards and exchanges pruning bounds between
// rounds; over HTTP the shards are deliberately kept stock — the
// coordinator needs nothing from them beyond the ordinary serving API.
//
// Every proxied call carries the originating request's correlation ID in
// RequestIDHeader, so one client query can be traced through the
// coordinator's log line and every shard's log line by a single ID.
type Fanout struct {
	shards []string
	client *http.Client
	start  time.Time
	logger *slog.Logger

	reg     *obs.Registry
	fanouts *obs.Counter
	served  *obs.Counter
	edits   *obs.Counter

	shardErrors *obs.CounterVec   // rtk_fanout_shard_errors_total{shard}
	shardDur    *obs.HistogramVec // rtk_fanout_shard_seconds{shard}

	// lastErrID[i] is the request ID of shard i's most recent failed call,
	// surfaced in /v1/stats so an operator can go straight from "shard 2 is
	// erroring" to the matching log lines on both daemons.
	lastErrID []atomic.Pointer[string]
}

// FanoutConfig parameterizes NewFanout.
type FanoutConfig struct {
	// Shards lists the shard daemons' base URLs, in shard order.
	Shards []string
	// Timeout bounds each proxied shard call; 0 selects 30s.
	Timeout time.Duration
	// Logger receives one structured line per coordinator request. Nil
	// disables request logging.
	Logger *slog.Logger
}

// NewFanout builds the coordinator. Shard reachability is not probed here —
// /healthz reports it live.
func NewFanout(cfg FanoutConfig) (*Fanout, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("serve: fan-out coordinator needs at least one shard URL")
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	shards := make([]string, len(cfg.Shards))
	for i, s := range cfg.Shards {
		s = strings.TrimRight(strings.TrimSpace(s), "/")
		if s == "" {
			return nil, fmt.Errorf("serve: empty shard URL at position %d", i)
		}
		if !strings.Contains(s, "://") {
			s = "http://" + s
		}
		shards[i] = s
	}
	reg := obs.NewRegistry()
	f := &Fanout{
		shards:      shards,
		client:      &http.Client{Timeout: timeout},
		start:       time.Now(),
		logger:      cfg.Logger,
		reg:         reg,
		fanouts:     reg.NewCounter("rtk_fanouts_total", "Queries fanned out to the shard set."),
		served:      reg.NewCounter("rtk_fanout_served_total", "Queries answered with a merged shard result."),
		edits:       reg.NewCounter("rtk_fanout_edits_total", "Edit batches broadcast to every shard."),
		shardErrors: reg.NewCounterVec("rtk_fanout_shard_errors_total", "Failed proxied shard calls (unreachable, non-success status, or malformed body), by shard index.", "shard"),
		shardDur:    reg.NewHistogramVec("rtk_fanout_shard_seconds", "Proxied shard call latency, by shard index.", phaseBuckets, "shard"),
		lastErrID:   make([]atomic.Pointer[string], len(shards)),
	}
	reg.NewGaugeFunc("rtk_fanout_shards", "Configured shard count.", func() float64 {
		return float64(len(f.shards))
	})
	reg.NewGaugeFunc("rtk_fanout_uptime_seconds", "Seconds since the coordinator started.", func() float64 {
		return time.Since(f.start).Seconds()
	})
	return f, nil
}

// Shards returns the shard base URLs, normalized.
func (f *Fanout) Shards() []string { return f.shards }

// Registry returns the coordinator's metric registry (the /metrics source).
func (f *Fanout) Registry() *obs.Registry { return f.reg }

// Handler returns the coordinator's route table — the same paths a stock
// daemon serves, so clients and load balancers cannot tell the difference:
//
//	GET  /v1/reverse-topk?q=<node>&k=<k>  — fan out, merge the shard answers
//	GET  /v1/stats                        — coordinator counters + every shard's stats
//	GET  /healthz                         — 200 only when every shard is healthy
//	GET  /metrics                         — coordinator metrics, Prometheus text format
//	POST /v1/edits                        — broadcast the batch to every shard
func (f *Fanout) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/reverse-topk", f.handleQuery)
	mux.HandleFunc("GET /v1/stats", f.handleStats)
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	mux.Handle("GET /metrics", f.reg.Handler())
	mux.HandleFunc("POST /v1/edits", f.handleEdits)
	return mux
}

// shardReply is one shard's response to a fanned-out call.
type shardReply struct {
	status int
	body   []byte
	err    error
}

// recordShardError charges one failed proxied call to shard i and remembers
// the request ID it failed under.
func (f *Fanout) recordShardError(i int, reqID string) {
	f.shardErrors.With(strconv.Itoa(i)).Inc()
	if reqID != "" {
		f.lastErrID[i].Store(&reqID)
	}
}

// fanGet issues one GET per shard concurrently, stamping each with the
// originating request's correlation ID and timing each call.
func (f *Fanout) fanGet(path, reqID string) []shardReply {
	replies := make([]shardReply, len(f.shards))
	var wg sync.WaitGroup
	for i, base := range f.shards {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			replies[i] = f.timedDo(i, http.MethodGet, url, nil, reqID)
		}(i, base+path)
	}
	wg.Wait()
	return replies
}

// timedDo proxies one call to shard i, observing its latency.
func (f *Fanout) timedDo(i int, method, url string, body []byte, reqID string) shardReply {
	start := time.Now()
	rep := f.do(method, url, body, reqID)
	f.shardDur.With(strconv.Itoa(i)).Observe(time.Since(start).Seconds())
	return rep
}

func (f *Fanout) do(method, url string, body []byte, reqID string) shardReply {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return shardReply{err: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if reqID != "" {
		req.Header.Set(RequestIDHeader, reqID)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return shardReply{err: err}
	}
	defer resp.Body.Close()
	// Query responses scale with the answer-set size, so the cap is a
	// generous backstop against a misbehaving peer, not the tiny edits-body
	// bound — and overflow is an explicit error, never a silent truncation
	// that would surface as a confusing parse failure.
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxShardReply+1))
	if err != nil {
		return shardReply{err: err}
	}
	if len(b) > maxShardReply {
		return shardReply{err: fmt.Errorf("response exceeds %d bytes", maxShardReply)}
	}
	return shardReply{status: resp.StatusCode, body: b}
}

// maxShardReply bounds one proxied shard response. Far above any plausible
// answer (it fits a ~hundred-million-node result list) while still bounding
// coordinator memory per call.
const maxShardReply = 1 << 30

// relayFailure maps fanned-out shard replies onto one coordinator response
// when any shard did not return want: a shard-reported 4xx is the client's
// fault and is relayed verbatim (every shard validates identically, so the
// first one speaks for all); anything else is a 502 naming the shard. Every
// failing shard is charged an error — not just the one whose failure is
// relayed — so the per-shard counters stay truthful under partial outages.
func (f *Fanout) relayFailure(w http.ResponseWriter, replies []shardReply, want int, reqID string) bool {
	first := -1
	for i, r := range replies {
		if r.err == nil && r.status == want {
			continue
		}
		f.recordShardError(i, reqID)
		if first < 0 {
			first = i
		}
	}
	if first < 0 {
		return false
	}
	r := replies[first]
	if r.err != nil {
		writeError(w, http.StatusBadGateway, "shard %d (%s) unreachable: %v", first, f.shards[first], r.err)
		return true
	}
	if r.status >= 400 && r.status < 500 {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(r.status)
		w.Write(r.body)
		return true
	}
	writeError(w, http.StatusBadGateway, "shard %d (%s) returned %d: %s", first, f.shards[first], r.status, r.body)
	return true
}

// logRequest emits the coordinator's one structured line per request.
func (f *Fanout) logRequest(route, reqID string, status int, elapsed time.Duration, extra ...any) {
	if f.logger == nil {
		return
	}
	args := append([]any{
		"request_id", reqID,
		"shards", len(f.shards),
		"status", status,
		"duration_ms", float64(elapsed) / float64(time.Millisecond),
	}, extra...)
	f.logger.Info(route, args...)
}

func (f *Fanout) handleQuery(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	reqID := ensureRequestID(w, r)
	f.fanouts.Inc()
	replies := f.fanGet("/v1/reverse-topk?"+r.URL.RawQuery, reqID)
	if f.relayFailure(w, replies, http.StatusOK, reqID) {
		f.logRequest("fanout_query", reqID, http.StatusBadGateway, time.Since(begin), "query", r.URL.RawQuery)
		return
	}
	if r.URL.Query().Get("mode") == ModeApprox {
		f.mergeApprox(w, replies, reqID)
		f.logRequest("fanout_query", reqID, http.StatusOK, time.Since(begin), "query", r.URL.RawQuery, "mode", ModeApprox)
		return
	}
	merged := QueryResponse{}
	var maxEpoch uint64
	for i, rep := range replies {
		var qr QueryResponse
		if err := json.Unmarshal(rep.body, &qr); err != nil {
			f.recordShardError(i, reqID)
			writeError(w, http.StatusBadGateway, "shard %d returned malformed body: %v", i, err)
			f.logRequest("fanout_query", reqID, http.StatusBadGateway, time.Since(begin), "query", r.URL.RawQuery)
			return
		}
		merged.Query, merged.K = qr.Query, qr.K
		if qr.Epoch > maxEpoch {
			maxEpoch = qr.Epoch
		}
		merged.Results = append(merged.Results, qr.Results...)
	}
	// Partitions are disjoint, so the union is a plain merge; sort restores
	// the global ascending order the single-engine answer uses.
	sort.Slice(merged.Results, func(i, j int) bool { return merged.Results[i] < merged.Results[j] })
	if merged.Results == nil {
		merged.Results = []graph.NodeID{}
	}
	merged.Count = len(merged.Results)
	merged.Epoch = maxEpoch
	f.served.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Shards", fmt.Sprintf("%d", len(f.shards)))
	body, _ := json.Marshal(merged)
	w.Write(body)
	f.logRequest("fanout_query", reqID, http.StatusOK, time.Since(begin), "query", r.URL.RawQuery)
}

// mergeApprox merges per-shard anytime answers. Partitions are disjoint, so
// guaranteed and maybe sets union by plain concatenation; the achieved ε is
// recomputed from the merged counts (each shard reports its local fraction,
// which does not average), and rounds/iteration diagnostics report the
// slowest shard — the fan-out's critical path.
func (f *Fanout) mergeApprox(w http.ResponseWriter, replies []shardReply, reqID string) {
	merged := ApproxQueryResponse{}
	var maxEpoch uint64
	converged := true
	for i, rep := range replies {
		var ar ApproxQueryResponse
		if err := json.Unmarshal(rep.body, &ar); err != nil {
			f.recordShardError(i, reqID)
			writeError(w, http.StatusBadGateway, "shard %d returned malformed body: %v", i, err)
			return
		}
		merged.Query, merged.K = ar.Query, ar.K
		merged.Mode, merged.Eps, merged.Delta = ar.Mode, ar.Eps, ar.Delta
		if ar.Epoch > maxEpoch {
			maxEpoch = ar.Epoch
		}
		if ar.Rounds > merged.Rounds {
			merged.Rounds = ar.Rounds
		}
		if ar.PMPNIters > merged.PMPNIters {
			merged.PMPNIters = ar.PMPNIters
		}
		converged = converged && ar.Converged
		merged.Results = append(merged.Results, ar.Results...)
		merged.Maybe = append(merged.Maybe, ar.Maybe...)
	}
	sort.Slice(merged.Results, func(i, j int) bool { return merged.Results[i] < merged.Results[j] })
	sort.Slice(merged.Maybe, func(i, j int) bool { return merged.Maybe[i] < merged.Maybe[j] })
	if merged.Results == nil {
		merged.Results = []graph.NodeID{}
	}
	if merged.Maybe == nil {
		merged.Maybe = []graph.NodeID{}
	}
	merged.Count = len(merged.Results)
	merged.Epoch = maxEpoch
	merged.Converged = converged
	if len(merged.Maybe) > 0 {
		merged.EpsAchieved = float64(len(merged.Maybe)) / float64(len(merged.Results)+len(merged.Maybe))
	}
	f.served.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Shards", fmt.Sprintf("%d", len(f.shards)))
	body, _ := json.Marshal(merged)
	w.Write(body)
}

// FanoutShardSummary is one shard's health line in the coordinator's
// /v1/stats: proxied-call latency quantiles and error accounting, with the
// request ID of the most recent failure for cross-daemon log correlation.
type FanoutShardSummary struct {
	URL      string  `json:"url"`
	Requests int64   `json:"requests"`
	P50Ms    float64 `json:"p50_ms"`
	P90Ms    float64 `json:"p90_ms"`
	P99Ms    float64 `json:"p99_ms"`
	Errors   int64   `json:"errors"`
	// LastErrorRequestID is "" until the shard's first failed call.
	LastErrorRequestID string `json:"last_error_request_id"`
}

// FanoutStatsResponse is the JSON body of the coordinator's /v1/stats.
type FanoutStatsResponse struct {
	Shards        int     `json:"shards"`
	Fanouts       int64   `json:"fanouts"`
	Served        int64   `json:"served"`
	ShardErrors   int64   `json:"shard_errors"`
	EditsFanned   int64   `json:"edits_fanned"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// ShardSummaries reports each shard's proxied-call latency quantiles
	// and error counts, in shard order.
	ShardSummaries []FanoutShardSummary `json:"shard_summaries"`
	// ShardStats carries each shard's own /v1/stats body verbatim (null
	// for an unreachable shard).
	ShardStats []json.RawMessage `json:"shard_stats"`
}

// shardSummaries builds the per-shard health lines from the live metrics.
func (f *Fanout) shardSummaries() []FanoutShardSummary {
	out := make([]FanoutShardSummary, len(f.shards))
	for i, url := range f.shards {
		label := strconv.Itoa(i)
		h := f.shardDur.With(label)
		s := FanoutShardSummary{
			URL:      url,
			Requests: int64(h.Count()),
			Errors:   int64(f.shardErrors.With(label).Value()),
		}
		if s.Requests > 0 {
			s.P50Ms = h.Quantile(0.5) * 1000
			s.P90Ms = h.Quantile(0.9) * 1000
			s.P99Ms = h.Quantile(0.99) * 1000
		}
		if id := f.lastErrID[i].Load(); id != nil {
			s.LastErrorRequestID = *id
		}
		out[i] = s
	}
	return out
}

func (f *Fanout) handleStats(w http.ResponseWriter, r *http.Request) {
	reqID := ensureRequestID(w, r)
	replies := f.fanGet("/v1/stats", reqID)
	resp := FanoutStatsResponse{
		Shards:         len(f.shards),
		Fanouts:        int64(f.fanouts.Value()),
		Served:         int64(f.served.Value()),
		ShardErrors:    int64(f.shardErrors.Total()),
		EditsFanned:    int64(f.edits.Value()),
		UptimeSeconds:  time.Since(f.start).Seconds(),
		ShardSummaries: f.shardSummaries(),
		ShardStats:     make([]json.RawMessage, len(f.shards)),
	}
	for i, rep := range replies {
		if rep.err == nil && rep.status == http.StatusOK && json.Valid(rep.body) {
			resp.ShardStats[i] = rep.body
		} else {
			resp.ShardStats[i] = json.RawMessage("null")
		}
	}
	w.Header().Set("Content-Type", "application/json")
	body, _ := json.Marshal(resp)
	w.Write(body)
}

func (f *Fanout) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reqID := ensureRequestID(w, r)
	replies := f.fanGet("/healthz", reqID)
	var down []string
	for i, rep := range replies {
		if rep.err != nil || rep.status != http.StatusOK {
			down = append(down, f.shards[i])
		}
	}
	if len(down) > 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "shards down: %s\n", strings.Join(down, ", "))
		return
	}
	w.Write([]byte("ok\n"))
}

// handleEdits broadcasts the batch: every shard holds the full (replicated)
// graph, so each must apply the adjacency change, while the index refresh
// each performs is routed to its owned rows only — the batch's total
// re-indexing work is split P ways, not duplicated P times.
func (f *Fanout) handleEdits(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	reqID := ensureRequestID(w, r)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEditsBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading edits body: %v", err)
		return
	}
	var req EditsRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed edits body: %v", err)
		return
	}
	// Validate before broadcasting — the same helper the shard daemons run,
	// so a bad batch is rejected here with the same message instead of
	// fanning out P doomed requests (and shards never see it).
	edits := make([]evolve.Edit, len(req.Edits))
	for i, e := range req.Edits {
		edits[i] = evolve.Edit{From: e.From, To: e.To, Weight: e.Weight, Remove: e.Remove}
	}
	if err := ValidateEdits(edits, req.Theta); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	f.edits.Inc()
	replies := make([]shardReply, len(f.shards))
	var wg sync.WaitGroup
	for i, base := range f.shards {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			replies[i] = f.timedDo(i, http.MethodPost, url, body, reqID)
		}(i, base+"/v1/edits")
	}
	wg.Wait()
	want := http.StatusAccepted
	if req.Wait {
		want = http.StatusOK
	}
	if f.relayFailure(w, replies, want, reqID) {
		f.logRequest("fanout_edits", reqID, http.StatusBadGateway, time.Since(begin), "edits", len(req.Edits))
		return
	}
	perShard := make([]EditsResponse, len(replies))
	for i, rep := range replies {
		if err := json.Unmarshal(rep.body, &perShard[i]); err != nil {
			f.recordShardError(i, reqID)
			writeError(w, http.StatusBadGateway, "shard %d returned malformed body: %v", i, err)
			f.logRequest("fanout_edits", reqID, http.StatusBadGateway, time.Since(begin), "edits", len(req.Edits))
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(want)
	out, _ := json.Marshal(struct {
		Shards []EditsResponse `json:"shards"`
	}{perShard})
	w.Write(out)
	f.logRequest("fanout_edits", reqID, want, time.Since(begin), "edits", len(req.Edits))
}
