package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/evolve"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/partition"
)

// fanoutFixture spins up P shard daemons over slices of one index plus a
// coordinator in front of them, and returns everything needed to compare
// against the unsharded oracle.
type fanoutFixture struct {
	g        *graph.Graph
	idx      *lbindex.Index
	shards   []*Server
	shardSrv []*httptest.Server
	fan      *Fanout
	fanSrv   *httptest.Server
}

func newFanoutFixture(t *testing.T, p int, strategy string) *fanoutFixture {
	t.Helper()
	g, err := gen.WebGraph(220, 13)
	if err != nil {
		t.Fatal(err)
	}
	opts := lbindex.DefaultOptions()
	opts.K = 20
	opts.HubBudget = 6
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var pm *partition.Map
	switch strategy {
	case "hash":
		pm, err = partition.NewHash(g.N(), p, 31)
	case "balanced":
		pm, err = partition.NewBalanced(g, p)
	default:
		pm, err = partition.NewRange(g.N(), p)
	}
	if err != nil {
		t.Fatal(err)
	}
	fx := &fanoutFixture{g: g, idx: idx}
	urls := make([]string, p)
	for s := 0; s < p; s++ {
		slice, err := idx.ShardSlice(pm, s)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(g, slice, Config{})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(srv.Handler())
		fx.shards = append(fx.shards, srv)
		fx.shardSrv = append(fx.shardSrv, hs)
		urls[s] = hs.URL
	}
	fan, err := NewFanout(FanoutConfig{Shards: urls})
	if err != nil {
		t.Fatal(err)
	}
	fx.fan = fan
	fx.fanSrv = httptest.NewServer(fan.Handler())
	t.Cleanup(func() {
		fx.fanSrv.Close()
		for i := range fx.shards {
			fx.shardSrv[i].Close()
			fx.shards[i].Close()
		}
	})
	return fx
}

func (fx *fanoutFixture) query(t *testing.T, q, k int) ([]graph.NodeID, *http.Response) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=%d", fx.fanSrv.URL, q, k))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator query q=%d k=%d: %d %s", q, k, resp.StatusCode, body)
	}
	var qr QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("malformed coordinator body: %v", err)
	}
	return qr.Results, resp
}

// TestFanoutMatchesSingleEngine: the HTTP transport's oracle check across
// P ∈ {1, 2, 4} and partition strategies.
func TestFanoutMatchesSingleEngine(t *testing.T) {
	for _, tc := range []struct {
		p        int
		strategy string
	}{{1, "range"}, {2, "hash"}, {4, "balanced"}} {
		fx := newFanoutFixture(t, tc.p, tc.strategy)
		eng, err := core.NewEngine(fx.g, fx.idx, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []int{0, 3, 77, 219} {
			for _, k := range []int{1, 10} {
				want, _, err := eng.Query(graph.NodeID(q), k)
				if err != nil {
					t.Fatal(err)
				}
				got, _ := fx.query(t, q, k)
				if len(got) != len(want) {
					t.Fatalf("P=%d %s q=%d k=%d: got %v want %v", tc.p, tc.strategy, q, k, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("P=%d %s q=%d k=%d: got %v want %v", tc.p, tc.strategy, q, k, got, want)
					}
				}
			}
		}
	}
}

// TestFanoutApprox: mode=approx through the fan-out coordinator merges the
// per-shard anytime answers into one two-part response that still brackets
// the exact answer, across P and partition strategies; parameter errors
// relay the shard's 400.
func TestFanoutApprox(t *testing.T) {
	for _, tc := range []struct {
		p        int
		strategy string
	}{{1, "range"}, {3, "hash"}} {
		fx := newFanoutFixture(t, tc.p, tc.strategy)
		eng, err := core.NewEngine(fx.g, fx.idx, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []int{0, 42, 219} {
			resp, err := http.Get(fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=10&mode=approx&eps=0.2", fx.fanSrv.URL, q))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("P=%d %s q=%d: %d %s", tc.p, tc.strategy, q, resp.StatusCode, body)
			}
			var ar ApproxQueryResponse
			if err := json.Unmarshal(body, &ar); err != nil {
				t.Fatalf("malformed merged approx body %q: %v", body, err)
			}
			if ar.Mode != ModeApprox || ar.Eps != 0.2 || ar.Count != len(ar.Results) {
				t.Fatalf("inconsistent merged envelope %+v", ar)
			}
			want, _, err := eng.Query(graph.NodeID(q), 10)
			if err != nil {
				t.Fatal(err)
			}
			inExact := map[graph.NodeID]bool{}
			for _, u := range want {
				inExact[u] = true
			}
			cover := map[graph.NodeID]bool{}
			for _, u := range ar.Results {
				if !inExact[u] {
					t.Fatalf("P=%d %s q=%d: merged guaranteed %d not in exact %v", tc.p, tc.strategy, q, u, want)
				}
				cover[u] = true
			}
			for _, u := range ar.Maybe {
				cover[u] = true
			}
			for _, u := range want {
				if !cover[u] {
					t.Fatalf("P=%d %s q=%d: exact node %d uncovered by merged answer %s", tc.p, tc.strategy, q, u, body)
				}
			}
		}
		resp, err := http.Get(fx.fanSrv.URL + "/v1/reverse-topk?q=1&k=5&mode=approx&eps=2")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("eps=2 through coordinator gave %d, want 400", resp.StatusCode)
		}
	}
}

// TestFanoutEditsBroadcast: one POST to the coordinator must land the same
// semantic change on every shard, with each shard re-indexing only its own
// rows; post-edit answers must match a full server given the same batch.
func TestFanoutEditsBroadcast(t *testing.T) {
	fx := newFanoutFixture(t, 2, "range")

	// The unsharded oracle server receives the identical batch.
	oracle, err := New(fx.g, fx.idx.Clone(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	edits := []evolve.Edit{{From: 5, To: 140}, {From: 77, To: 3}}
	if _, _, err := oracle.ApplyEdits(edits, 0); err != nil {
		t.Fatal(err)
	}

	req := EditsRequest{Theta: 0, Wait: true}
	for _, e := range edits {
		req.Edits = append(req.Edits, EditJSON{From: e.From, To: e.To})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(fx.fanSrv.URL+"/v1/edits", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator edits: %d %s", resp.StatusCode, raw)
	}
	var out struct {
		Shards []EditsResponse `json:"shards"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Shards) != 2 {
		t.Fatalf("edit response covers %d shards", len(out.Shards))
	}
	affectedTotal := 0
	for i, sh := range out.Shards {
		if sh.Epoch != 2 {
			t.Errorf("shard %d epoch %d after first batch", i, sh.Epoch)
		}
		affectedTotal += sh.Affected
	}
	// Each shard refreshes only its owned origins: together they must do
	// ≈ one full refresh's work, and no single shard all of it (the edit
	// touches origins on both halves of a 220-node range split).
	oracleStats := oracle.Stats()
	if oracleStats.Epoch != 2 {
		t.Fatalf("oracle epoch %d", oracleStats.Epoch)
	}
	for i, sh := range out.Shards {
		if sh.Affected == affectedTotal && affectedTotal > 1 {
			t.Errorf("shard %d refreshed every affected origin (%d); routing to owner failed", i, sh.Affected)
		}
	}

	snap := oracle.Store().Current()
	for _, q := range []int{5, 77, 140} {
		want, _, err := snap.View.Query(graph.NodeID(q), 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := fx.query(t, q, 10)
		if len(got) != len(want) {
			t.Fatalf("post-edit q=%d: got %v want %v", q, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("post-edit q=%d: got %v want %v", q, got, want)
			}
		}
	}
}

// TestFanoutErrorPaths: parameter errors relay the shard's 4xx; a dead
// shard turns queries into 502 and /healthz into 503.
func TestFanoutErrorPaths(t *testing.T) {
	fx := newFanoutFixture(t, 2, "range")

	resp, err := http.Get(fx.fanSrv.URL + "/v1/reverse-topk?q=99999&k=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("out-of-range q relayed as %d", resp.StatusCode)
	}

	resp, err = http.Get(fx.fanSrv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st FanoutStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Shards != 2 || len(st.ShardStats) != 2 {
		t.Fatalf("stats cover %d shards, raw %d", st.Shards, len(st.ShardStats))
	}
	var shardStats StatsResponse
	if err := json.Unmarshal(st.ShardStats[1], &shardStats); err != nil {
		t.Fatal(err)
	}
	if shardStats.ShardID == nil || *shardStats.ShardID != 1 || shardStats.ShardCount != 2 {
		t.Fatalf("shard 1 stats lack shard identity: %+v", shardStats)
	}

	// Kill shard 1: queries must fail loudly, health must go red.
	fx.shardSrv[1].Close()
	resp, err = http.Get(fx.fanSrv.URL + "/v1/reverse-topk?q=1&k=5")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead shard produced %d, want 502", resp.StatusCode)
	}
	resp, err = http.Get(fx.fanSrv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz with dead shard: %d, want 503", resp.StatusCode)
	}
}
