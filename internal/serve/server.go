package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/evolve"
	"repro/internal/graph"
	"repro/internal/lbindex"
)

// Config parameterizes a Server. The zero value selects defaults.
type Config struct {
	// CacheSize bounds the result cache in entries; 0 selects the default,
	// negative disables caching and single-flight deduplication.
	CacheSize int
	// MaxInflight bounds concurrent engine computations (admission
	// control). Cache hits and coalesced waiters are not counted — they
	// cost no engine work. Excess computations are rejected with 503.
	// 0 selects 4×GOMAXPROCS.
	MaxInflight int
	// WorkerBudget is the total intra-query worker budget shared by
	// concurrent computations, dealt the same way core.QueryBatch deals its
	// budget: each active computation runs with budget/active workers
	// (min 1), so a lone query spreads over all cores while a saturated
	// server runs one goroutine per query. 0 selects GOMAXPROCS.
	WorkerBudget int
}

// DefaultCacheSize is the result-cache bound when Config.CacheSize is 0.
const DefaultCacheSize = 4096

var errSaturated = errors.New("serve: too many in-flight queries")

// Server is the HTTP serving layer: one snapshot store, one result cache,
// admission control, and counters. Create with New, mount Handler.
type Server struct {
	store  *Store
	cache  *Cache
	budget int
	maxInflight int64
	// active counts currently running engine computations (admitted work,
	// not raw connections).
	active   atomic.Int64
	draining atomic.Bool
	// maintMu serializes maintenance passes (snapshot production + publish).
	maintMu sync.Mutex
	start   time.Time

	served     atomic.Int64
	computed   atomic.Int64
	cacheHits  atomic.Int64
	coalesced  atomic.Int64
	rejected   atomic.Int64
	errored    atomic.Int64
	epochSwaps atomic.Int64

	// testComputeGate, when set by tests, runs inside every admitted
	// computation — used to hold computations open deterministically.
	testComputeGate func()
}

// New creates a server over an initial (graph, index) pair, published as
// epoch 1.
func New(g *graph.Graph, idx *lbindex.Index, cfg Config) (*Server, error) {
	store, err := NewStore(g, idx)
	if err != nil {
		return nil, err
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	return &Server{
		store:       store,
		cache:       NewCache(cfg.CacheSize),
		budget:      cfg.WorkerBudget,
		maxInflight: int64(cfg.MaxInflight),
		start:       time.Now(),
	}, nil
}

// Store returns the server's snapshot store.
func (s *Server) Store() *Store { return s.store }

// Cache returns the server's result cache.
func (s *Server) Cache() *Cache { return s.cache }

// StartDrain flips the server into draining mode: /healthz turns 503 so
// load balancers stop routing here, while in-flight and follow-up requests
// keep being served until the listener shuts down (http.Server.Shutdown).
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the daemon's route table:
//
//	GET  /v1/reverse-topk?q=<node>&k=<k>  — answer a query
//	GET  /v1/stats                        — serving counters
//	GET  /healthz                         — liveness (503 when draining)
//	POST /v1/edits                        — apply graph edits, publish a new snapshot
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/reverse-topk", s.handleQuery)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/edits", s.handleEdits)
	return mux
}

// QueryResponse is the JSON body of /v1/reverse-topk. Bodies are cached
// verbatim, so a cached response is byte-identical to the fresh one.
type QueryResponse struct {
	Query   graph.NodeID   `json:"query"`
	K       int            `json:"k"`
	Epoch   uint64         `json:"epoch"`
	Count   int            `json:"count"`
	Results []graph.NodeID `json:"results"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(body)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	qStr, kStr := params.Get("q"), params.Get("k")
	if qStr == "" || kStr == "" {
		writeError(w, http.StatusBadRequest, "q and k query parameters are required")
		return
	}
	q, err := strconv.Atoi(qStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed q=%q: %v", qStr, err)
		return
	}
	k, err := strconv.Atoi(kStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "malformed k=%q: %v", kStr, err)
		return
	}

	// One snapshot per request: every read below — validation bounds, the
	// cache key epoch, and the engine computation — uses this one pair, so
	// a concurrent snapshot swap cannot tear a response.
	snap := s.store.Current()
	if q < 0 || q >= snap.View.N() {
		writeError(w, http.StatusNotFound, "unknown node %d (graph has %d nodes)", q, snap.View.N())
		return
	}
	if k < 1 || k > snap.View.MaxK() {
		writeError(w, http.StatusBadRequest, "k=%d outside [1,%d] supported by the index", k, snap.View.MaxK())
		return
	}

	key := CacheKey{Q: graph.NodeID(q), K: k, Epoch: snap.Epoch}
	body, status, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
		return s.compute(snap, graph.NodeID(q), k)
	})
	if err != nil {
		if errors.Is(err, errSaturated) {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "server saturated: %d computations in flight", s.maxInflight)
			return
		}
		s.errored.Add(1)
		writeError(w, http.StatusInternalServerError, "query failed: %v", err)
		return
	}
	switch status {
	case StatusHit:
		s.cacheHits.Add(1)
	case StatusCoalesced:
		s.coalesced.Add(1)
	}
	s.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", status.String())
	w.Header().Set("X-Epoch", strconv.FormatUint(snap.Epoch, 10))
	w.Write(body)
}

// compute runs one admitted engine computation against a pinned snapshot
// and serializes the response body. Admission happens here — after the
// cache — so cache hits and coalesced waiters are never rejected, only
// work that would actually occupy an engine.
func (s *Server) compute(snap *Snapshot, q graph.NodeID, k int) ([]byte, error) {
	active := s.active.Add(1)
	defer s.active.Add(-1)
	if active > s.maxInflight {
		return nil, errSaturated
	}
	if gate := s.testComputeGate; gate != nil {
		gate()
	}
	// Deal the worker budget across active computations, mirroring
	// core.QueryBatch: a lone query gets the whole budget, a busy server
	// runs sequential engines.
	workers := s.budget / int(active)
	if workers < 1 {
		workers = 1
	}
	results, _, err := snap.View.Query(q, k, workers)
	if err != nil {
		return nil, err
	}
	if results == nil {
		results = []graph.NodeID{}
	}
	s.computed.Add(1)
	return json.Marshal(QueryResponse{
		Query:   q,
		K:       k,
		Epoch:   snap.Epoch,
		Count:   len(results),
		Results: results,
	})
}

// StatsResponse is the JSON body of /v1/stats.
type StatsResponse struct {
	Epoch         uint64  `json:"epoch"`
	Nodes         int     `json:"nodes"`
	MaxK          int     `json:"max_k"`
	Served        int64   `json:"served"`
	Computed      int64   `json:"computed"`
	CacheHits     int64   `json:"cache_hits"`
	Coalesced     int64   `json:"coalesced"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	EpochSwaps    int64   `json:"epoch_swaps"`
	CacheLen      int     `json:"cache_len"`
	CacheCap      int     `json:"cache_cap"`
	Inflight      int64   `json:"inflight"`
	WorkerBudget  int     `json:"worker_budget"`
	Draining      bool    `json:"draining"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// Stats snapshots the serving counters.
func (s *Server) Stats() StatsResponse {
	snap := s.store.Current()
	return StatsResponse{
		Epoch:         snap.Epoch,
		Nodes:         snap.View.N(),
		MaxK:          snap.View.MaxK(),
		Served:        s.served.Load(),
		Computed:      s.computed.Load(),
		CacheHits:     s.cacheHits.Load(),
		Coalesced:     s.coalesced.Load(),
		Rejected:      s.rejected.Load(),
		Errors:        s.errored.Load(),
		EpochSwaps:    s.epochSwaps.Load(),
		CacheLen:      s.cache.Len(),
		CacheCap:      s.cache.Cap(),
		Inflight:      s.active.Load(),
		WorkerBudget:  s.budget,
		Draining:      s.draining.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	body, _ := json.Marshal(s.Stats())
	w.Write(body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

// EditJSON is the wire form of one evolve.Edit.
type EditJSON struct {
	From   graph.NodeID `json:"from"`
	To     graph.NodeID `json:"to"`
	Weight float64      `json:"weight,omitempty"`
	Remove bool         `json:"remove,omitempty"`
}

// EditsRequest is the JSON body of POST /v1/edits.
type EditsRequest struct {
	Edits []EditJSON `json:"edits"`
	// Theta is the evolve staleness threshold; 0 refreshes every origin
	// that reaches an edited source (equivalent to a full rebuild).
	Theta float64 `json:"theta"`
}

// EditsResponse reports a completed maintenance pass.
type EditsResponse struct {
	Epoch       uint64 `json:"epoch"`
	Affected    int    `json:"affected"`
	HubsRebuilt int    `json:"hubs_rebuilt"`
	ElapsedMS   int64  `json:"elapsed_ms"`
}

// maxEditsBody caps the POST /v1/edits request body: edits are ~tens of
// bytes each, so even a graph-wide batch fits comfortably, and an unbounded
// decode would let one client grow the heap arbitrarily.
const maxEditsBody = 8 << 20

func (s *Server) handleEdits(w http.ResponseWriter, r *http.Request) {
	var req EditsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEditsBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "malformed edits body: %v", err)
		return
	}
	if len(req.Edits) == 0 {
		writeError(w, http.StatusBadRequest, "no edits given")
		return
	}
	edits := make([]evolve.Edit, len(req.Edits))
	for i, e := range req.Edits {
		edits[i] = evolve.Edit{From: e.From, To: e.To, Weight: e.Weight, Remove: e.Remove}
	}
	stats, epoch, err := s.ApplyEdits(edits, req.Theta)
	if err != nil {
		// Edit validation errors (unknown edge, duplicate insert, node
		// growth) are the caller's fault; anything else is internal.
		status := http.StatusBadRequest
		if !errors.Is(err, errBadEdits) {
			status = http.StatusInternalServerError
		}
		writeError(w, status, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	body, _ := json.Marshal(EditsResponse{
		Epoch:       epoch,
		Affected:    stats.Affected,
		HubsRebuilt: stats.HubsRebuilt,
		ElapsedMS:   stats.Elapsed.Milliseconds(),
	})
	w.Write(body)
}

var errBadEdits = errors.New("serve: invalid edits")

// ApplyEdits runs one full maintenance pass: apply the edits to the current
// snapshot's graph, compute the affected origins at staleness threshold
// theta, refresh a clone of the current index (RefreshSnapshot — readers
// are untouched), publish the new pair as the next epoch, and drop
// stale-epoch cache entries. Maintenance passes are serialized; queries
// keep flowing against the old snapshot until the publish.
func (s *Server) ApplyEdits(edits []evolve.Edit, theta float64) (evolve.Stats, uint64, error) {
	s.maintMu.Lock()
	defer s.maintMu.Unlock()

	snap := s.store.Current()
	g := snap.View.Graph()
	g2, err := evolve.ApplyEdits(g, edits, graph.DanglingSelfLoop)
	if err != nil {
		return evolve.Stats{}, 0, fmt.Errorf("%w: %v", errBadEdits, err)
	}
	if g2.N() != g.N() {
		return evolve.Stats{}, 0, fmt.Errorf("%w: edits grow the graph from %d to %d nodes (rebuild and restart instead)", errBadEdits, g.N(), g2.N())
	}
	opts := snap.View.Index().Options()
	affected, err := evolve.AffectedOrigins(g2, evolve.Sources(edits), theta, opts.RWR)
	if err != nil {
		return evolve.Stats{}, 0, err
	}
	next, stats, err := evolve.RefreshSnapshot(g2, snap.View.Index(), affected)
	if err != nil {
		return evolve.Stats{}, 0, err
	}
	published, err := s.store.Publish(g2, next)
	if err != nil {
		return evolve.Stats{}, 0, err
	}
	s.cache.DropOtherEpochs(published.Epoch)
	s.epochSwaps.Add(1)
	return stats, published.Epoch, nil
}
