package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/evolve"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Config parameterizes a Server. The zero value selects defaults.
type Config struct {
	// CacheBytes bounds the result cache by accounted payload bytes (value
	// length plus per-entry overhead), so large-k responses are charged
	// what they actually weigh; 0 selects the default, negative disables
	// caching and single-flight deduplication.
	CacheBytes int64
	// MaxInflight bounds concurrent engine computations (admission
	// control). Cache hits and coalesced waiters are not counted — they
	// cost no engine work. Excess computations are rejected with 503.
	// 0 selects 4×GOMAXPROCS.
	MaxInflight int
	// WorkerBudget is the total intra-query worker budget shared by
	// concurrent computations, dealt the same way core.QueryBatch deals its
	// budget: each active computation runs with budget/active workers
	// (min 1), so a lone query spreads over all cores while a saturated
	// server runs one goroutine per query. 0 selects GOMAXPROCS.
	WorkerBudget int
	// CompactAfter is the overlay delta size (patched adjacency entries)
	// past which the maintenance goroutine folds the overlay back into a
	// fresh CSR after a batch. 0 selects max(4096, M/8) of the initial
	// graph; negative disables compaction.
	CompactAfter int
	// SpMMBatch caps how many concurrently admitted queries coalesce into
	// one SpMM group (their PMPN columns advance in a shared slab — see
	// spmmBatcher). 0 selects DefaultSpMMBatch; 1 or negative disables
	// batching and every query computes scalar.
	SpMMBatch int
	// SpMMWindow is how long an under-width group waits for more queries
	// before firing anyway — the latency bound a lone query pays for the
	// chance to share a slab. 0 selects DefaultSpMMWindow; negative fires
	// groups immediately (batching only captures truly simultaneous
	// arrivals).
	SpMMWindow time.Duration
	// Logger, when set, receives one structured line per query request
	// (request id, mode, cache status, latency, phase counters). Nil
	// disables request logging; metrics and the slow log still record.
	Logger *slog.Logger
	// SlowLogCapacity bounds the slow-query ring. 0 selects
	// DefaultSlowLogCapacity; negative disables slow-query capture.
	SlowLogCapacity int
	// SlowLogThreshold is the duration at which a query enters the slow
	// log. 0 selects DefaultSlowLogThreshold; negative records every
	// query.
	SlowLogThreshold time.Duration
}

// DefaultCacheBytes is the result-cache byte budget when Config.CacheBytes
// is 0.
const DefaultCacheBytes = 8 << 20

// DefaultSpMMBatch is the SpMM group width when Config.SpMMBatch is 0 —
// the knee of the batch-width sweep in BENCH_spmm.json.
const DefaultSpMMBatch = 16

// DefaultSpMMWindow is the group coalescing window when Config.SpMMWindow
// is 0.
const DefaultSpMMWindow = time.Millisecond

var (
	errSaturated = errors.New("serve: too many in-flight queries")
	errBadEdits  = errors.New("serve: invalid edits")
	// ErrClosed is reported by edit batches still queued when the server
	// shuts down.
	ErrClosed = errors.New("serve: server closed")
)

// maxGrowthPerEdit bounds how many fresh node identifiers one edit may
// introduce: each edit names two endpoints, so a valid growing batch never
// needs more than 2·len(edits) new ids. Batches jumping further (e.g. one
// edit naming node 10⁹ on a 10⁴-node graph) are rejected cleanly instead
// of allocating the id range.
const maxGrowthPerEdit = 2

// Server is the HTTP serving layer: one snapshot store, one result cache,
// admission control, an asynchronous maintenance pipeline, and counters.
// Create with New, mount Handler, and Close when done (stops the
// maintenance goroutine).
type Server struct {
	store       *Store
	cache       *Cache
	budget      int
	maxInflight int64
	// batcher coalesces admitted computations into SpMM groups; nil when
	// batching is disabled (Config.SpMMBatch ≤ 1 after defaulting).
	batcher *spmmBatcher
	// active counts currently running engine computations (admitted work,
	// not raw connections).
	active   atomic.Int64
	draining atomic.Bool
	start    time.Time

	// Maintenance pipeline: POST /v1/edits enqueues a journaled batch and
	// returns a watermark; the single maintenance goroutine drains the
	// queue, applies each batch to the overlay (O(edits)), refreshes only
	// the affected origins and hubs on an index clone, publishes the new
	// epoch, and compacts the overlay once its delta crosses the
	// threshold. Queries never wait on any of this.
	mu     sync.Mutex
	queue  []*editBatch  // guarded by mu
	closed bool          // guarded by mu
	wake   chan struct{} // cap-1 doorbell for the maintenance goroutine
	stop   chan struct{}
	done   chan struct{}
	// overlay is the graph state of the NEWEST published epoch (readers
	// use their snapshot's own view; this pointer is for the maintenance
	// goroutine and the stats endpoint).
	overlay      atomic.Pointer[graph.Overlay]
	compactAfter int

	enqueuedWM atomic.Uint64
	appliedWM  atomic.Uint64

	// Durability (nil/zero on a volatile server — see NewDurable): the
	// write-ahead journal every accepted batch is fsync'd to before its
	// watermark is acknowledged, and the checkpoint policy that bounds how
	// much of it a recovery must replay.
	journal     *wal.Log
	ckptDir     string
	ckptBytes   int64
	ckptBatches int
	lastCkptWM  atomic.Uint64
	lastCkptNS  atomic.Int64
	replayed    int
	replayDrop  int64

	// Observability: every monotone counter lives on the registry (the
	// /metrics source; /v1/stats reads the same instruments), the slow
	// log captures outlier queries, and logger emits one structured line
	// per request when configured.
	reg    *obs.Registry
	m      *metrics
	slow   *obs.SlowLog
	logger *slog.Logger

	lastRejectedWM atomic.Uint64
	lastMaintNS    atomic.Int64
	lastAffOrigins atomic.Int64
	lastAffHubs    atomic.Int64
	lastMaintError atomic.Pointer[string]

	// testComputeGate, when set by tests, runs inside every admitted
	// computation — used to hold computations open deterministically.
	testComputeGate func()
	// testMaintGate, when set by tests, runs at the start of every
	// maintenance batch — used to hold a maintenance pass open while
	// queries flow.
	testMaintGate func()
	// testDeliverGate, when set by tests, runs inside a batched group's
	// deliver callback before the entry is finished — used to hold one
	// member of a group open while the others complete.
	testDeliverGate func(q graph.NodeID)
}

// editBatch is one journaled maintenance unit: an edit batch with its
// staleness threshold, the watermark it was enqueued at, and the outcome
// fields the maintenance goroutine fills before closing done.
type editBatch struct {
	edits     []evolve.Edit
	theta     float64
	watermark uint64
	done      chan struct{}

	stats evolve.Stats
	epoch uint64
	err   error
}

// Pending is the caller's handle on an enqueued edit batch.
type Pending struct {
	// Watermark identifies the batch in the maintenance journal; the
	// /v1/stats applied_watermark reaches it when the batch has been
	// applied (or rejected).
	Watermark uint64
	b         *editBatch
}

// Done returns a channel closed when the batch has been fully processed.
func (p *Pending) Done() <-chan struct{} { return p.b.done }

// Wait blocks until the batch is processed and returns its outcome: the
// refresh stats and published epoch, or the validation/internal error.
func (p *Pending) Wait() (evolve.Stats, uint64, error) {
	<-p.b.done
	return p.b.stats, p.b.epoch, p.b.err
}

// New creates a server over an initial (graph, index) pair, published as
// epoch 1, and starts its maintenance goroutine. Callers must Close the
// server to stop it. The server is volatile: acknowledged edit batches
// live only in memory until applied — use NewDurable for a journaled one.
func New(g *graph.Graph, idx *lbindex.Index, cfg Config) (*Server, error) {
	s, err := newServer(g, idx, cfg)
	if err != nil {
		return nil, err
	}
	go s.maintLoop()
	return s, nil
}

// newServer builds a fully wired server WITHOUT starting its maintenance
// goroutine, so NewDurable can replay the journal synchronously first.
func newServer(g *graph.Graph, idx *lbindex.Index, cfg Config) (*Server, error) {
	store, err := NewStore(g, idx)
	if err != nil {
		return nil, err
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if cfg.WorkerBudget <= 0 {
		cfg.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if cfg.CompactAfter == 0 {
		cfg.CompactAfter = 4096
		if m := g.M() / 8; m > cfg.CompactAfter {
			cfg.CompactAfter = m
		}
	}
	if cfg.SpMMBatch == 0 {
		cfg.SpMMBatch = DefaultSpMMBatch
	}
	if cfg.SpMMWindow == 0 {
		cfg.SpMMWindow = DefaultSpMMWindow
	}
	if cfg.SpMMWindow < 0 {
		cfg.SpMMWindow = 0
	}
	slowCap := cfg.SlowLogCapacity
	if slowCap == 0 {
		slowCap = DefaultSlowLogCapacity
	}
	slowThresh := cfg.SlowLogThreshold
	if slowThresh == 0 {
		slowThresh = DefaultSlowLogThreshold
	}
	reg := obs.NewRegistry()
	s := &Server{
		store:        store,
		cache:        NewCache(cfg.CacheBytes),
		budget:       cfg.WorkerBudget,
		maxInflight:  int64(cfg.MaxInflight),
		wake:         make(chan struct{}, 1),
		stop:         make(chan struct{}),
		done:         make(chan struct{}),
		compactAfter: cfg.CompactAfter,
		start:        time.Now(),
		reg:          reg,
		m:            newMetrics(reg),
		slow:         obs.NewSlowLog(slowCap, slowThresh),
		logger:       cfg.Logger,
	}
	if cfg.SpMMBatch > 1 {
		s.batcher = newSpmmBatcher(cfg.SpMMBatch, cfg.SpMMWindow)
	}
	store.AttachCache(s.cache)
	s.registerGauges(reg)
	s.overlay.Store(graph.NewOverlay(g))
	// Index watermarks start where the loaded image left off; a freshly
	// built index is watermark 0. Enqueues continue from there.
	s.enqueuedWM.Store(idx.Watermark())
	s.appliedWM.Store(idx.Watermark())
	return s, nil
}

// Close stops accepting new batches, DRAINS every batch already
// acknowledged (their 202 watermarks were returned to callers — a graceful
// shutdown must honor them; only a hard crash may leave batches behind,
// and those are replayed from the journal), then stops the maintenance
// goroutine and closes the journal. Safe to call more than once.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stop)
	}
	s.mu.Unlock()
	<-s.done
	if s.journal != nil {
		// Close has no error return (it must be safe in defers), so a
		// failed final sync surfaces through the maintenance counters
		// like any other durability fault.
		if err := s.journal.Close(); err != nil {
			s.m.maintErrors.Inc()
			msg := fmt.Sprintf("journal close failed: %v", err)
			s.lastMaintError.Store(&msg)
		}
	}
}

// Store returns the server's snapshot store.
func (s *Server) Store() *Store { return s.store }

// Cache returns the server's result cache.
func (s *Server) Cache() *Cache { return s.cache }

// Overlay returns the graph overlay of the newest published epoch.
func (s *Server) Overlay() *graph.Overlay { return s.overlay.Load() }

// AppliedWatermark returns the journal watermark of the last fully
// processed edit batch.
func (s *Server) AppliedWatermark() uint64 { return s.appliedWM.Load() }

// StartDrain flips the server into draining mode: /healthz turns 503 so
// load balancers stop routing here, while in-flight and follow-up requests
// keep being served until the listener shuts down (http.Server.Shutdown).
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain was called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Handler returns the daemon's route table:
//
//	GET  /v1/reverse-topk?q=<node>&k=<k>  — answer a query exactly
//	     (&mode=approx&eps=<ε>&delta=<δ>   — anytime approximate tier)
//	GET  /v1/stats                        — serving + maintenance counters
//	GET  /metrics                         — Prometheus text exposition
//	GET  /debug/slowlog                   — slow-query ring (?threshold= filters)
//	GET  /healthz                         — liveness (503 when draining)
//	POST /v1/edits                        — enqueue graph edits (202 + watermark; "wait":true blocks)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/reverse-topk", s.handleQuery)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.Handle("GET /metrics", s.reg.Handler())
	mux.Handle("GET /debug/slowlog", s.slow.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/edits", s.handleEdits)
	return mux
}

// QueryResponse is the JSON body of /v1/reverse-topk. Bodies are cached
// verbatim, so a cached response is byte-identical to the fresh one.
type QueryResponse struct {
	Query   graph.NodeID   `json:"query"`
	K       int            `json:"k"`
	Epoch   uint64         `json:"epoch"`
	Count   int            `json:"count"`
	Results []graph.NodeID `json:"results"`
}

// ApproxQueryResponse is the JSON body of /v1/reverse-topk?mode=approx: the
// two-part anytime answer. Results holds the guaranteed members (Count its
// size); Maybe the candidates still undecided at the achieved ε. Like exact
// bodies, approx bodies are cached verbatim under their own
// (mode, eps, delta)-aware key, and the Monte Carlo seed is derived from
// (q, k, epoch), so a cached response is byte-identical to the fresh one.
type ApproxQueryResponse struct {
	Query       graph.NodeID   `json:"query"`
	K           int            `json:"k"`
	Mode        string         `json:"mode"`
	Eps         float64        `json:"eps"`
	Delta       float64        `json:"delta,omitempty"`
	EpsAchieved float64        `json:"eps_achieved"`
	Converged   bool           `json:"converged"`
	Rounds      int            `json:"rounds"`
	PMPNIters   int            `json:"pmpn_iters"`
	Epoch       uint64         `json:"epoch"`
	Count       int            `json:"count"`
	Results     []graph.NodeID `json:"results"`
	Maybe       []graph.NodeID `json:"maybe"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": fmt.Sprintf(format, args...)})
	w.Write(body)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	id := ensureRequestID(w, r)
	params := r.URL.Query()
	qStr, kStr := params.Get("q"), params.Get("k")
	if qStr == "" || kStr == "" {
		s.httpError(w, "query", http.StatusBadRequest, "q and k query parameters are required")
		return
	}
	q, err := strconv.Atoi(qStr)
	if err != nil {
		s.httpError(w, "query", http.StatusBadRequest, "malformed q=%q: %v", qStr, err)
		return
	}
	k, err := strconv.Atoi(kStr)
	if err != nil {
		s.httpError(w, "query", http.StatusBadRequest, "malformed k=%q: %v", kStr, err)
		return
	}

	approx, eps, delta, perr := ParseApproxParams(params.Get("mode"), params.Get("eps"), params.Get("delta"))
	if perr != nil {
		s.httpError(w, "query", perr.Status, "%s", perr.Error())
		return
	}
	mode := "exact"
	if approx {
		mode = ModeApprox
	}

	// One snapshot per request: every read below — validation bounds, the
	// cache key epoch, and the engine computation — uses this one pair, so
	// a concurrent snapshot swap cannot tear a response. Validation is the
	// same helper cmd/rtkquery uses, so CLI and HTTP reject identically.
	snap := s.store.Current()
	if perr := ValidateQueryParams(q, k, snap.View.N(), snap.View.MaxK()); perr != nil {
		s.httpError(w, "query", perr.Status, "%s", perr.Error())
		return
	}

	key := CacheKey{Q: graph.NodeID(q), K: k, Epoch: snap.Epoch}
	if approx {
		key.Mode, key.Eps, key.Delta = ModeApprox, eps, delta
	}
	// The trace is written only by the computation THIS request runs (a
	// hit or coalesced wait leaves it empty — that work was traced by the
	// request that computed it), so no synchronization is needed.
	tr := &queryTrace{}
	body, status, err := s.cache.GetOrCompute(key, func() ([]byte, error) {
		if approx {
			return s.computeApprox(snap, graph.NodeID(q), k, eps, delta, tr)
		}
		return s.compute(snap, graph.NodeID(q), k, tr)
	})
	if err != nil {
		if errors.Is(err, errSaturated) {
			s.m.rejected.Inc()
			w.Header().Set("Retry-After", "1")
			s.httpError(w, "query", http.StatusServiceUnavailable, "server saturated: %d computations in flight", s.maxInflight)
			return
		}
		s.m.failures.Inc()
		s.httpError(w, "query", http.StatusInternalServerError, "query failed: %v", err)
		s.observeQuery(id, mode, q, k, snap.Epoch, status, http.StatusInternalServerError, time.Since(begin), tr)
		return
	}
	s.m.cacheRes.With(cacheLabel(status)).Inc()
	s.m.served.With(mode).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", status.String())
	w.Header().Set("X-Epoch", strconv.FormatUint(snap.Epoch, 10))
	s.writeBody(w, "query", body)
	s.observeQuery(id, mode, q, k, snap.Epoch, status, http.StatusOK, time.Since(begin), tr)
}

// cacheLabel maps a cache status onto its metric label.
func cacheLabel(st CacheStatus) string {
	switch st {
	case StatusHit:
		return "hit"
	case StatusCoalesced:
		return "coalesced"
	case StatusBypass:
		return "bypass"
	default:
		return "miss"
	}
}

// compute runs one admitted computation against a pinned snapshot and
// serializes the response body. Admission happens here — after the cache —
// so cache hits and coalesced waiters are never rejected, only work that
// would actually occupy an engine. With SpMM batching enabled the admitted
// query joins its snapshot's group and blocks until ITS result delivers:
// the admission slot is per query and frees as soon as this query is
// answered, even while the rest of the group is still computing.
func (s *Server) compute(snap *Snapshot, q graph.NodeID, k int, tr *queryTrace) ([]byte, error) {
	active := s.active.Add(1)
	defer s.active.Add(-1)
	if active > s.maxInflight {
		return nil, errSaturated
	}
	if gate := s.testComputeGate; gate != nil {
		gate()
	}
	if s.batcher != nil {
		e := s.joinGroup(snap, q, k)
		<-e.done
		// The deliver callback filled e.stats before closing done, so the
		// channel receive orders this read after that write.
		tr.computed = true
		tr.pmpnIters = e.stats.PMPNIters
		tr.setPhases(e.stats.Phases())
		return e.body, e.err
	}
	return s.computeScalar(snap, q, k, tr)
}

// computeScalar is the unbatched computation: one engine query with this
// computation's dealt share of the worker budget, mirroring
// core.QueryBatch — a lone query gets the whole budget, a busy server runs
// sequential engines.
func (s *Server) computeScalar(snap *Snapshot, q graph.NodeID, k int, tr *queryTrace) ([]byte, error) {
	workers := s.budget / int(max(s.active.Load(), 1))
	if workers < 1 {
		workers = 1
	}
	results, stats, err := snap.View.Query(q, k, workers)
	if err != nil {
		return nil, err
	}
	if results == nil {
		results = []graph.NodeID{}
	}
	s.m.computed.With("exact").Inc()
	if tr != nil {
		tr.computed = true
		tr.pmpnIters = stats.PMPNIters
		tr.setPhases(stats.Phases())
	}
	return json.Marshal(QueryResponse{
		Query:   q,
		K:       k,
		Epoch:   snap.Epoch,
		Count:   len(results),
		Results: results,
	})
}

// computeApprox is the anytime tier's computation: admission-controlled
// exactly like compute (the slot counts against the same MaxInflight and
// the worker budget is dealt the same way), but always scalar — the anytime
// round loop interleaves screens with iteration blocks, which the SpMM slab
// cannot host. The Monte Carlo seed is a pure function of (epoch, q, k), so
// recomputing a dropped cache entry reproduces the evicted body bytes.
func (s *Server) computeApprox(snap *Snapshot, q graph.NodeID, k int, eps, delta float64, tr *queryTrace) ([]byte, error) {
	active := s.active.Add(1)
	defer s.active.Add(-1)
	if active > s.maxInflight {
		return nil, errSaturated
	}
	if gate := s.testComputeGate; gate != nil {
		gate()
	}
	workers := s.budget / int(max(s.active.Load(), 1))
	if workers < 1 {
		workers = 1
	}
	opts := core.AnytimeOptions{Eps: eps, Delta: delta, Seed: approxSeed(snap.Epoch, q, k)}
	res, err := snap.View.QueryAnytime(q, k, opts, workers)
	if err != nil {
		return nil, err
	}
	guaranteed, maybe := res.Guaranteed, res.Maybe
	if guaranteed == nil {
		guaranteed = []graph.NodeID{}
	}
	if maybe == nil {
		maybe = []graph.NodeID{}
	}
	s.m.computed.With(ModeApprox).Inc()
	s.m.approxRounds.Add(uint64(res.Stats.Rounds))
	s.m.approxMCWalks.Add(uint64(res.Stats.MCWalks))
	if tr != nil {
		tr.computed = true
		tr.pmpnIters = res.Stats.PMPNIters
		tr.rounds = res.Stats.Rounds
		phases := map[string]time.Duration{}
		if res.Stats.PMPNElapsed > 0 {
			phases["pmpn"] = res.Stats.PMPNElapsed
		}
		if res.Stats.MCElapsed > 0 {
			phases["mc"] = res.Stats.MCElapsed
		}
		tr.setPhases(phases)
	}
	return json.Marshal(ApproxQueryResponse{
		Query:       q,
		K:           k,
		Mode:        ModeApprox,
		Eps:         eps,
		Delta:       delta,
		EpsAchieved: res.Stats.EpsAchieved,
		Converged:   res.Stats.Converged,
		Rounds:      res.Stats.Rounds,
		PMPNIters:   res.Stats.PMPNIters,
		Epoch:       snap.Epoch,
		Count:       len(guaranteed),
		Results:     guaranteed,
		Maybe:       maybe,
	})
}

// approxSeed derives the deterministic Monte Carlo seed for one
// (epoch, q, k) triple.
func approxSeed(epoch uint64, q graph.NodeID, k int) int64 {
	return int64(epoch)<<40 ^ int64(q)<<8 ^ int64(k)
}

// StatsResponse is the JSON body of /v1/stats.
type StatsResponse struct {
	Epoch         uint64  `json:"epoch"`
	Nodes         int     `json:"nodes"`
	MaxK          int     `json:"max_k"`
	Served        int64   `json:"served"`
	Computed      int64   `json:"computed"`
	CacheHits     int64   `json:"cache_hits"`
	Coalesced     int64   `json:"coalesced"`
	Rejected      int64   `json:"rejected"`
	Errors        int64   `json:"errors"`
	EpochSwaps    int64   `json:"epoch_swaps"`
	CacheLen      int     `json:"cache_len"`
	CacheBytes    int64   `json:"cache_bytes"`
	CacheCapBytes int64   `json:"cache_cap_bytes"`
	Inflight      int64   `json:"inflight"`
	WorkerBudget  int     `json:"worker_budget"`
	Draining      bool    `json:"draining"`
	UptimeSeconds float64 `json:"uptime_seconds"`

	// SpMM batching: groups fired at width ≥ 2 and the queries they served
	// (zero when batching is disabled).
	SpMMGroups         int64 `json:"spmm_groups"`
	SpMMBatchedQueries int64 `json:"spmm_batched_queries"`

	// Anytime tier: mode=approx computations actually run (cache hits and
	// coalesced waiters excluded), the screen rounds they took, and the
	// Monte Carlo walks their δ-budgeted refinement stage spent.
	ApproxComputed int64 `json:"approx_computed"`
	ApproxRounds   int64 `json:"approx_rounds"`
	ApproxMCWalks  int64 `json:"approx_mc_walks"`

	// Shard-slice identity (set when the daemon serves one shard of a
	// partitioned index; absent on a full index).
	ShardID           *int   `json:"shard_id,omitempty"`
	ShardCount        int    `json:"shard_count,omitempty"`
	PartitionStrategy string `json:"partition_strategy,omitempty"`
	OwnedNodes        int    `json:"owned_nodes,omitempty"`

	// Maintenance pipeline observability.
	EnqueuedWatermark   uint64 `json:"enqueued_watermark"`
	AppliedWatermark    uint64 `json:"applied_watermark"`
	PendingEdits        uint64 `json:"pending_edits"`
	OverlayPatchedNodes int    `json:"overlay_patched_nodes"`
	OverlayDeltaEdges   int    `json:"overlay_delta_edges"`
	OverlayGeneration   int    `json:"overlay_generation"`
	Compactions         int64  `json:"compactions"`
	MaintErrors         int64  `json:"maint_errors"`
	LastRejectedWM      uint64 `json:"last_rejected_watermark,omitempty"`
	LastMaintMS         int64  `json:"last_maint_ms"`
	LastAffectedOrigins int64  `json:"last_affected_origins"`
	LastAffectedHubs    int64  `json:"last_affected_hubs"`
	LastMaintError      string `json:"last_maint_error,omitempty"`
	NodesGrown          int64  `json:"nodes_grown"`

	// Durability (set only when the server runs a write-ahead journal).
	Durable                 bool   `json:"durable,omitempty"`
	JournalBytes            int64  `json:"journal_bytes,omitempty"`
	JournalBatches          int    `json:"journal_batches,omitempty"`
	Checkpoints             int64  `json:"checkpoints,omitempty"`
	LastCheckpointWatermark uint64 `json:"last_checkpoint_watermark,omitempty"`
	ReplayedBatches         int    `json:"replayed_batches,omitempty"`
	RecoveryDroppedBytes    int64  `json:"recovery_dropped_bytes,omitempty"`

	// ResponseWriteDrops counts response bodies the client connection
	// refused to accept (w.Write failed after the status was committed).
	ResponseWriteDrops int64 `json:"response_write_drops,omitempty"`
}

// Stats snapshots the serving counters.
func (s *Server) Stats() StatsResponse {
	snap := s.store.Current()
	ov := s.overlay.Load()
	// applied is loaded FIRST: a batch enqueued+applied between the two
	// loads then only inflates enq, keeping the unsigned pending count
	// from underflowing.
	app := s.appliedWM.Load()
	enq := s.enqueuedWM.Load()
	if enq < app {
		enq = app
	}
	resp := StatsResponse{
		Epoch:         snap.Epoch,
		Nodes:         snap.View.N(),
		MaxK:          snap.View.MaxK(),
		Served:        int64(s.m.served.Total()),
		Computed:      int64(s.m.computed.With("exact").Value()),
		CacheHits:     int64(s.m.cacheRes.With("hit").Value()),
		Coalesced:     int64(s.m.cacheRes.With("coalesced").Value()),
		Rejected:      int64(s.m.rejected.Value()),
		Errors:        int64(s.m.failures.Value()),
		EpochSwaps:    int64(s.m.epochSwaps.Value()),
		CacheLen:      s.cache.Len(),
		CacheBytes:    s.cache.Bytes(),
		CacheCapBytes: s.cache.Cap(),
		Inflight:      s.active.Load(),
		WorkerBudget:  s.budget,
		Draining:      s.draining.Load(),
		UptimeSeconds: time.Since(s.start).Seconds(),

		SpMMGroups:         int64(s.m.spmmGroups.Value()),
		SpMMBatchedQueries: int64(s.m.spmmBatched.Value()),

		ApproxComputed: int64(s.m.computed.With(ModeApprox).Value()),
		ApproxRounds:   int64(s.m.approxRounds.Value()),
		ApproxMCWalks:  int64(s.m.approxMCWalks.Value()),

		EnqueuedWatermark:   enq,
		AppliedWatermark:    app,
		PendingEdits:        enq - app,
		OverlayPatchedNodes: ov.PatchedNodes(),
		OverlayDeltaEdges:   ov.DeltaEdges(),
		OverlayGeneration:   ov.Generation(),
		Compactions:         int64(s.m.compactions.Value()),
		MaintErrors:         int64(s.m.maintErrors.Value()),
		LastRejectedWM:      s.lastRejectedWM.Load(),
		LastMaintMS:         s.lastMaintNS.Load() / 1e6,
		LastAffectedOrigins: s.lastAffOrigins.Load(),
		LastAffectedHubs:    s.lastAffHubs.Load(),
		NodesGrown:          int64(s.m.nodesGrown.Value()),
	}
	if msg := s.lastMaintError.Load(); msg != nil {
		resp.LastMaintError = *msg
	}
	resp.ResponseWriteDrops = int64(s.m.writeDrops.Total())
	if s.journal != nil {
		resp.Durable = true
		resp.JournalBytes = s.journal.Size()
		resp.JournalBatches = s.journal.Batches()
		resp.Checkpoints = int64(s.m.checkpoints.Value())
		resp.LastCheckpointWatermark = s.lastCkptWM.Load()
		resp.ReplayedBatches = s.replayed
		resp.RecoveryDroppedBytes = s.replayDrop
	}
	if pm, shard, ok := snap.View.Index().Shard(); ok {
		sh := shard
		resp.ShardID = &sh
		resp.ShardCount = pm.P()
		resp.PartitionStrategy = pm.Strategy().String()
		resp.OwnedNodes = len(snap.View.Index().OwnedNodes())
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	body, _ := json.Marshal(s.Stats())
	s.writeBody(w, "stats", body)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ok\n"))
}

// EditJSON is the wire form of one evolve.Edit.
type EditJSON struct {
	From   graph.NodeID `json:"from"`
	To     graph.NodeID `json:"to"`
	Weight float64      `json:"weight,omitempty"`
	Remove bool         `json:"remove,omitempty"`
}

// EditsRequest is the JSON body of POST /v1/edits.
type EditsRequest struct {
	Edits []EditJSON `json:"edits"`
	// Theta is the evolve staleness threshold; 0 refreshes every origin
	// that reaches an edited source (equivalent to a full rebuild).
	Theta float64 `json:"theta"`
	// Wait makes the request block until the batch is applied (or
	// rejected), restoring synchronous semantics: 200 with the full
	// EditsResponse, 400/500 on failure. Without it the request returns
	// 202 immediately with the journal watermark; poll /v1/stats until
	// applied_watermark reaches it to observe completion. A 202-accepted
	// batch can still FAIL validation when applied: the watermark advances
	// (it was processed), and the rejection is reported via maint_errors,
	// last_rejected_watermark and last_maint_error. Clients that need the
	// outcome per batch should use Wait.
	Wait bool `json:"wait,omitempty"`
}

// EditsResponse reports a completed maintenance pass (Wait=true), or the
// journal position of an accepted batch (202: only Watermark is set).
type EditsResponse struct {
	Watermark   uint64 `json:"watermark"`
	Epoch       uint64 `json:"epoch,omitempty"`
	Affected    int    `json:"affected,omitempty"`
	HubsRebuilt int    `json:"hubs_rebuilt,omitempty"`
	ElapsedMS   int64  `json:"elapsed_ms,omitempty"`
}

// maxEditsBody caps the POST /v1/edits request body: edits are ~tens of
// bytes each, so even a graph-wide batch fits comfortably, and an unbounded
// decode would let one client grow the heap arbitrarily.
const maxEditsBody = 8 << 20

func (s *Server) handleEdits(w http.ResponseWriter, r *http.Request) {
	id := ensureRequestID(w, r)
	var req EditsRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEditsBody)).Decode(&req); err != nil {
		s.httpError(w, "edits", http.StatusBadRequest, "malformed edits body: %v", err)
		return
	}
	edits := make([]evolve.Edit, len(req.Edits))
	for i, e := range req.Edits {
		edits[i] = evolve.Edit{From: e.From, To: e.To, Weight: e.Weight, Remove: e.Remove}
	}
	pending, err := s.EnqueueEdits(edits, req.Theta)
	if err != nil {
		status := http.StatusBadRequest
		if !errors.Is(err, errBadEdits) {
			status = http.StatusServiceUnavailable
		}
		s.httpError(w, "edits", status, "%v", err)
		return
	}
	if s.logger != nil {
		s.logger.Info("edits", "request_id", id, "watermark", pending.Watermark, "edits", len(edits), "wait", req.Wait)
	}
	if !req.Wait {
		body, _ := json.Marshal(EditsResponse{Watermark: pending.Watermark})
		s.writeJSON(w, "edits", http.StatusAccepted, body)
		return
	}
	stats, epoch, err := pending.Wait()
	if err != nil {
		// Edit validation errors (unknown edge, duplicate insert, growth
		// beyond the per-batch bound) are the caller's fault; anything
		// else is internal.
		status := http.StatusBadRequest
		if !errors.Is(err, errBadEdits) {
			status = http.StatusInternalServerError
		}
		s.httpError(w, "edits", status, "%v", err)
		return
	}
	body, _ := json.Marshal(EditsResponse{
		Watermark:   pending.Watermark,
		Epoch:       epoch,
		Affected:    stats.Affected,
		HubsRebuilt: stats.HubsRebuilt,
		ElapsedMS:   stats.Elapsed.Milliseconds(),
	})
	s.writeJSON(w, "edits", http.StatusOK, body)
}

// writeJSON commits status and body with the JSON content type. A failed
// body write cannot be retracted (the status line is already on the wire),
// but it is counted — a silently dropped 202 body would hide the watermark
// the client needs to track its batch.
func (s *Server) writeJSON(w http.ResponseWriter, handler string, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		s.m.writeDrops.With(handler).Inc()
	}
}

// EnqueueEdits appends an edit batch to the maintenance journal and
// returns immediately with its watermark handle. The single maintenance
// goroutine applies batches in watermark order; queries keep flowing
// against the current snapshot throughout.
//
// On a durable server the batch is framed, checksummed and fsync'd to the
// write-ahead journal BEFORE the watermark is assigned and returned: an
// acknowledgement therefore promises the batch survives process death and
// is replayed on restart. A batch the journal cannot persist is never
// acknowledged.
func (s *Server) EnqueueEdits(edits []evolve.Edit, theta float64) (*Pending, error) {
	if err := ValidateEdits(edits, theta); err != nil {
		return nil, err
	}
	b := &editBatch{edits: edits, theta: theta, done: make(chan struct{})}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	wm := s.enqueuedWM.Load() + 1
	if s.journal != nil {
		if err := s.journal.Append(wal.Record{Watermark: wm, Theta: theta, Edits: edits}); err != nil {
			s.mu.Unlock()
			return nil, fmt.Errorf("serve: journaling edit batch: %w", err)
		}
	}
	b.watermark = wm
	s.enqueuedWM.Store(wm)
	s.queue = append(s.queue, b)
	s.mu.Unlock()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	return &Pending{Watermark: b.watermark, b: b}, nil
}

// ApplyEdits runs one maintenance pass synchronously: it enqueues the
// batch and blocks until the maintenance goroutine has applied it and
// published the new epoch (or rejected it). Kept for callers that want
// edit-then-read semantics; the HTTP path is asynchronous by default.
func (s *Server) ApplyEdits(edits []evolve.Edit, theta float64) (evolve.Stats, uint64, error) {
	pending, err := s.EnqueueEdits(edits, theta)
	if err != nil {
		return evolve.Stats{}, 0, err
	}
	return pending.Wait()
}

// maintLoop is the single maintenance goroutine: it drains the journal in
// watermark order, runs each batch through the incremental pipeline, and
// compacts the overlay when its delta crosses the threshold. When Close is
// called it finishes every batch still queued — each was acknowledged with
// a watermark, so a graceful shutdown applies them all — and only then
// exits.
func (s *Server) maintLoop() {
	defer close(s.done)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 {
			if s.closed {
				s.mu.Unlock()
				return
			}
			s.mu.Unlock()
			select {
			case <-s.wake:
			case <-s.stop:
			}
			s.mu.Lock()
		}
		b := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()

		s.finishBatch(b)
		s.maybeCheckpoint()
	}
}

// finishBatch runs one batch and publishes its completion: compaction and
// the watermark stamp happen BEFORE the watermark is visible as applied,
// so once it is, every side effect the batch scheduled has settled. The
// stamp lands on the current snapshot's index whether the batch succeeded
// (the freshly published clone) or was rejected (the prior index — a
// rejection still consumes its watermark, and a replay re-rejects it
// deterministically), keeping saved images' embedded watermarks honest.
func (s *Server) finishBatch(b *editBatch) {
	s.runBatch(b)
	s.maybeCompact()
	s.store.Current().View.Index().SetWatermark(b.watermark)
	s.appliedWM.Store(b.watermark)
	close(b.done)
}

// runBatch executes one journaled batch end to end: O(edits) overlay
// apply, affected-set computation (one PMPN per edited source), partial
// refresh of an index clone (affected origins + affected hubs only, new
// origins included), and the epoch publish. Readers keep serving the old
// snapshot until the final pointer swap.
func (s *Server) runBatch(b *editBatch) {
	start := time.Now()
	fail := func(err error) {
		b.err = err
		s.m.maintErrors.Inc()
		s.lastRejectedWM.Store(b.watermark)
		msg := err.Error()
		s.lastMaintError.Store(&msg)
		elapsed := time.Since(start)
		s.lastMaintNS.Store(int64(elapsed))
		s.m.maintDur.Observe(elapsed.Seconds())
	}
	if gate := s.testMaintGate; gate != nil {
		gate()
	}
	cur := s.overlay.Load()

	// Translate edit endpoints into the internal label space the served
	// graph stores (free without a relabeling). The journal keeps the
	// external-id batch the client sent: replay re-translates against the
	// same permutation carried by the index image, deterministically. Ids
	// beyond the permutation — growth — keep identity labels in both
	// spaces.
	edits := b.edits
	if idx := s.store.Current().View.Index(); idx.Relabeling() != nil {
		edits = make([]evolve.Edit, len(b.edits))
		for i, e := range b.edits {
			edits[i] = evolve.Edit{From: idx.ToInternal(e.From), To: idx.ToInternal(e.To), Weight: e.Weight, Remove: e.Remove}
		}
	}

	// Bound node growth before applying: one edit introduces at most two
	// fresh identifiers, so anything larger is a fat-finger (or hostile)
	// id jump that would allocate the whole range. Mirror the overlay's
	// netting — an insert cancelled by a later remove of the same edge
	// never grows the graph.
	maxID := graph.NodeID(-1)
	live := make(map[[2]graph.NodeID]bool, len(edits))
	for _, e := range edits {
		if e.Remove {
			delete(live, [2]graph.NodeID{e.From, e.To})
			continue
		}
		live[[2]graph.NodeID{e.From, e.To}] = true
	}
	for k := range live {
		if k[0] > maxID {
			maxID = k[0]
		}
		if k[1] > maxID {
			maxID = k[1]
		}
	}
	if growth := int(maxID) + 1 - cur.N(); growth > maxGrowthPerEdit*len(edits) {
		fail(fmt.Errorf("%w: edits grow the graph by %d nodes (max %d for %d edits); add nodes in contiguous batches",
			errBadEdits, growth, maxGrowthPerEdit*len(edits), len(edits)))
		return
	}

	next, err := cur.Apply(edits)
	if err != nil {
		fail(fmt.Errorf("%w: %v", errBadEdits, err))
		return
	}

	snap := s.store.Current()
	idx := snap.View.Index()
	opts := idx.Options()
	affected, err := evolve.AffectedNodes(next, evolve.Sources(edits), b.theta, opts.RWR)
	if err != nil {
		fail(err)
		return
	}
	hm := idx.HubMatrix()
	// Grown graphs: pad the index (which also extends a shard slice's
	// partition map and owned set) before routing refresh work, so the
	// ownership test below covers the fresh ids too.
	var nextIdx *lbindex.Index
	if next.N() > idx.N() {
		nextIdx = idx.CloneGrown(next.N())
		s.m.nodesGrown.Add(uint64(next.N() - idx.N()))
	} else {
		nextIdx = idx.Clone()
	}
	// Route refresh work to the owning shard: on a shard-slice snapshot
	// only rows this shard materializes are re-indexed (the other shards
	// receive the same broadcast batch and refresh their own), while
	// affected HUBS refresh everywhere — the hub matrix is replicated.
	var origins, hubs []graph.NodeID
	for u, a := range affected {
		if !a {
			continue
		}
		id := graph.NodeID(u)
		if hm.IsHub(id) {
			hubs = append(hubs, id)
		} else if nextIdx.Owns(id) {
			origins = append(origins, id)
		}
	}
	// New origins are indexed whether or not they reach an edited source
	// (they have no entry at all yet) — again only the owned ones.
	for u := idx.N(); u < next.N(); u++ {
		if !affected[u] && nextIdx.Owns(graph.NodeID(u)) {
			origins = append(origins, graph.NodeID(u))
		}
	}
	stats, err := evolve.RefreshPartial(next, nextIdx, origins, hubs)
	if err != nil {
		fail(err)
		return
	}
	published, err := s.store.Publish(next, nextIdx)
	if err != nil {
		fail(err)
		return
	}
	// Publish already dropped every other epoch from the cache — eager
	// invalidation is the store's job, so it holds for ALL publishers.
	s.overlay.Store(next)
	s.m.epochSwaps.Inc()

	b.stats = stats
	b.epoch = published.Epoch
	s.lastAffOrigins.Store(int64(len(origins)))
	s.lastAffHubs.Store(int64(len(hubs)))
	elapsed := time.Since(start)
	s.lastMaintNS.Store(int64(elapsed))
	s.m.maintDur.Observe(elapsed.Seconds())
}

// maybeCompact folds the overlay back into a fresh CSR once its delta
// footprint crosses the threshold. The compacted graph is semantically
// identical, so it is republished at the SAME epoch (Store.Replace) and
// cached results stay valid; subsequent queries sweep pure CSR again.
func (s *Server) maybeCompact() {
	if s.compactAfter <= 0 {
		return
	}
	ov := s.overlay.Load()
	if ov.DeltaEdges() < s.compactAfter {
		return
	}
	g2, err := ov.Compact()
	if err != nil {
		s.m.maintErrors.Inc()
		msg := fmt.Sprintf("compaction failed: %v", err)
		s.lastMaintError.Store(&msg)
		return
	}
	snap := s.store.Current()
	if _, err := s.store.Replace(g2, snap.View.Index()); err != nil {
		s.m.maintErrors.Inc()
		msg := fmt.Sprintf("compaction republish failed: %v", err)
		s.lastMaintError.Store(&msg)
		return
	}
	s.overlay.Store(graph.NewOverlay(g2))
	s.m.compactions.Inc()
}
