package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckpointDirSyncFailureKeepsJournal is the regression test for the
// silent `d.Sync()` in the checkpoint's syncDir: the manifest rename is
// only a commit once the directory entry is persisted, so a directory
// fsync failure must fail the checkpoint BEFORE the journal is truncated.
// Truncating anyway would pair a checkpoint that can vanish on power loss
// with a journal that no longer holds the records to rebuild it.
func TestCheckpointDirSyncFailureKeepsJournal(t *testing.T) {
	dir := t.TempDir()
	g := testGraph(t, 47, 30)
	idx := testIndex(t, g, 4)
	s, _, err := NewDurable(g, idx, Config{}, DurabilityConfig{
		JournalPath:   filepath.Join(dir, "edits.wal"),
		CheckpointDir: filepath.Join(dir, "ckpt"),
		// Triggers disabled: the test drives checkpoint() directly so the
		// maintenance goroutine never races it.
		CheckpointBytes:   -1,
		CheckpointBatches: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	batches := durableBurst(t, s)

	prev := openDir
	openDir = func(dir string) (*os.File, error) {
		d, err := os.Open(dir)
		if err != nil {
			return nil, err
		}
		if err := d.Close(); err != nil {
			return nil, err
		}
		return d, nil // Sync on a closed handle fails
	}
	err = s.checkpoint()
	openDir = prev

	if err == nil {
		t.Fatal("checkpoint swallowed the directory-sync failure")
	}
	if !strings.Contains(err.Error(), "syncing checkpoint dir") {
		t.Fatalf("checkpoint error %q does not name the directory sync", err)
	}
	st := s.Stats()
	if st.JournalBatches != batches {
		t.Fatalf("journal truncated to %d batches after failed checkpoint, want %d kept", st.JournalBatches, batches)
	}
	if st.Checkpoints != 0 {
		t.Fatalf("failed checkpoint counted as committed: %d", st.Checkpoints)
	}

	// With the directory healthy again the same checkpoint commits, and
	// only then is the journal truncated.
	if err := s.checkpoint(); err != nil {
		t.Fatalf("checkpoint after fault cleared: %v", err)
	}
	st = s.Stats()
	if st.Checkpoints != 1 || st.JournalBatches != 0 {
		t.Fatalf("after retry: checkpoints=%d journal_batches=%d, want 1/0", st.Checkpoints, st.JournalBatches)
	}
}
