package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// TestCacheByteIdenticalProperty drives a randomized (q, k) stream through
// a caching server and a cache-disabled twin over the same snapshot: every
// cached response must be byte-identical to the fresh recomputation.
func TestCacheByteIdenticalProperty(t *testing.T) {
	g := testGraph(t, 31, 40)
	idx := testIndex(t, g, 6)
	_, cached := newTestServer(t, g, idx, Config{})
	_, fresh := newTestServer(t, g, idx, Config{CacheSize: -1})

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 120; i++ {
		q, k := rng.Intn(g.N()), 1+rng.Intn(6)
		path := fmt.Sprintf("/v1/reverse-topk?q=%d&k=%d", q, k)
		respC, bodyC := get(t, cached.URL+path)
		respF, bodyF := get(t, fresh.URL+path)
		if respC.StatusCode != http.StatusOK || respF.StatusCode != http.StatusOK {
			t.Fatalf("q=%d k=%d: statuses %d/%d", q, k, respC.StatusCode, respF.StatusCode)
		}
		if respF.Header.Get("X-Cache") != "BYPASS" {
			t.Fatalf("cache-disabled server reported X-Cache=%s", respF.Header.Get("X-Cache"))
		}
		if !bytes.Equal(bodyC, bodyF) {
			t.Fatalf("q=%d k=%d: cached body %s != fresh body %s (X-Cache=%s)",
				q, k, bodyC, bodyF, respC.Header.Get("X-Cache"))
		}
	}
}

// TestCacheLRUBound checks the LRU never exceeds its capacity, evicts the
// least recently used key, and recomputes evicted entries.
func TestCacheLRUBound(t *testing.T) {
	const capacity = 8
	c := NewCache(capacity)
	var computes atomic.Int64
	val := func(i int) []byte { return []byte(fmt.Sprintf("v%d", i)) }
	fetch := func(i int) CacheStatus {
		_, status, err := c.GetOrCompute(CacheKey{Q: graph.NodeID(i), K: 1, Epoch: 1}, func() ([]byte, error) {
			computes.Add(1)
			return val(i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return status
	}

	for i := 0; i < 50; i++ {
		fetch(i)
		if got := c.Len(); got > capacity {
			t.Fatalf("after %d inserts the cache holds %d entries, cap %d", i+1, got, capacity)
		}
	}
	if got := c.Len(); got != capacity {
		t.Fatalf("cache holds %d entries, want full at %d", got, capacity)
	}
	// The last `capacity` keys survived; everything older was evicted.
	for i := 50 - capacity; i < 50; i++ {
		if status := fetch(i); status != StatusHit {
			t.Errorf("key %d: status %v, want HIT", i, status)
		}
	}
	if status := fetch(0); status != StatusMiss {
		t.Errorf("evicted key 0 served with status %v, want MISS (recompute)", status)
	}

	// Cache now holds (oldest → newest) 43..49, 0. Touching the LRU entry
	// protects it: the next insert evicts 44 instead.
	if status := fetch(43); status != StatusHit {
		t.Fatalf("key 43: status %v, want HIT", status)
	}
	fetch(99)
	if status := fetch(43); status != StatusHit {
		t.Errorf("recently touched key 43 was evicted (status %v)", status)
	}
	if status := fetch(44); status != StatusMiss {
		t.Errorf("key 44 should have been the eviction victim (status %v)", status)
	}
}

// TestCacheEpochInvalidation checks that an epoch bump invalidates every
// prior entry: lookups at the new epoch recompute, and DropOtherEpochs
// empties the stale generation.
func TestCacheEpochInvalidation(t *testing.T) {
	c := NewCache(64)
	var computes atomic.Int64
	fetch := func(q, epoch int) CacheStatus {
		_, status, err := c.GetOrCompute(CacheKey{Q: graph.NodeID(q), K: 2, Epoch: uint64(epoch)}, func() ([]byte, error) {
			computes.Add(1)
			return []byte(fmt.Sprintf("e%dq%d", epoch, q)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return status
	}
	for q := 0; q < 10; q++ {
		fetch(q, 1)
	}
	if c.Len() != 10 || computes.Load() != 10 {
		t.Fatalf("warmup: len=%d computes=%d", c.Len(), computes.Load())
	}
	// Same queries at the next epoch: nothing may alias.
	for q := 0; q < 10; q++ {
		if status := fetch(q, 2); status != StatusMiss {
			t.Fatalf("q=%d at epoch 2 served with %v, want MISS", q, status)
		}
	}
	if computes.Load() != 20 {
		t.Fatalf("computes %d, want 20 (full recompute at the new epoch)", computes.Load())
	}
	if dropped := c.DropOtherEpochs(2); dropped != 10 {
		t.Fatalf("DropOtherEpochs removed %d, want the 10 stale entries", dropped)
	}
	if c.Len() != 10 {
		t.Fatalf("len %d after drop, want 10 live entries", c.Len())
	}
	for q := 0; q < 10; q++ {
		if status := fetch(q, 2); status != StatusHit {
			t.Fatalf("live entry q=%d lost by DropOtherEpochs (status %v)", q, status)
		}
	}

	// A compute that straggles past the drop (its request pinned the old
	// snapshot) still gets its answer but must NOT re-insert a dropped-epoch
	// entry: the key can never be looked up at that epoch again.
	if status := fetch(77, 1); status != StatusMiss {
		t.Fatalf("straggler compute status %v, want MISS", status)
	}
	if c.Len() != 10 {
		t.Fatalf("straggler compute re-inserted a dropped-epoch entry (len %d)", c.Len())
	}
	if status := fetch(77, 1); status != StatusMiss {
		t.Fatalf("dropped-epoch key was served from cache (status %v)", status)
	}
}

// TestCacheSingleFlight gates the compute function and checks N identical
// concurrent calls run it exactly once and all share its bytes.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(4)
	const waiters = 32
	var computes atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	key := CacheKey{Q: 7, K: 3, Epoch: 1}

	results := make([][]byte, waiters)
	statuses := make([]CacheStatus, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, status, err := c.GetOrCompute(key, func() ([]byte, error) {
				close(entered)
				<-release
				computes.Add(1)
				return []byte("answer"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], statuses[i] = val, status
		}(i)
	}
	<-entered // exactly one goroutine is computing; a second close would panic
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	misses := 0
	for i := range results {
		if string(results[i]) != "answer" {
			t.Fatalf("waiter %d got %q", i, results[i])
		}
		if statuses[i] == StatusMiss {
			misses++
		} else if statuses[i] != StatusCoalesced && statuses[i] != StatusHit {
			t.Fatalf("waiter %d status %v", i, statuses[i])
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1", misses)
	}
}

// TestCacheErrorsNotCached checks a failed compute leaves no entry and its
// error reaches coalesced waiters, while the next call retries.
func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	key := CacheKey{Q: 1, K: 1, Epoch: 1}
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(key, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed compute was cached")
	}
	val, status, err := c.GetOrCompute(key, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(val) != "ok" || status != StatusMiss {
		t.Fatalf("retry: %q %v %v", val, status, err)
	}
}

// TestCacheRandomizedStream is the cache property test at the HTTP layer:
// a random stream of queries, repeats, and epoch bumps, asserting byte
// identity between every response and an uncached recomputation AND that
// the LRU bound holds throughout.
func TestCacheRandomizedStream(t *testing.T) {
	g := testGraph(t, 33, 36)
	idx := testIndex(t, g, 5)
	s, err := New(g, idx, Config{CacheSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, fresh := newTestServer(t, g, idx, Config{CacheSize: -1})

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q, k := rng.Intn(g.N()), 1+rng.Intn(5)
		path := fmt.Sprintf("/v1/reverse-topk?q=%d&k=%d", q, k)
		_, body := get(t, ts.URL+path)
		_, want := get(t, fresh.URL+path)
		if !bytes.Equal(body, want) {
			t.Fatalf("q=%d k=%d: %s != fresh %s", q, k, body, want)
		}
		if got := s.Cache().Len(); got > 6 {
			t.Fatalf("cache exceeded its bound: %d > 6", got)
		}
	}
}
