package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// TestCacheByteIdenticalProperty drives a randomized (q, k) stream through
// a caching server and a cache-disabled twin over the same snapshot: every
// cached response must be byte-identical to the fresh recomputation.
func TestCacheByteIdenticalProperty(t *testing.T) {
	g := testGraph(t, 31, 40)
	idx := testIndex(t, g, 6)
	_, cached := newTestServer(t, g, idx, Config{})
	_, fresh := newTestServer(t, g, idx, Config{CacheBytes: -1})

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 120; i++ {
		q, k := rng.Intn(g.N()), 1+rng.Intn(6)
		path := fmt.Sprintf("/v1/reverse-topk?q=%d&k=%d", q, k)
		respC, bodyC := get(t, cached.URL+path)
		respF, bodyF := get(t, fresh.URL+path)
		if respC.StatusCode != http.StatusOK || respF.StatusCode != http.StatusOK {
			t.Fatalf("q=%d k=%d: statuses %d/%d", q, k, respC.StatusCode, respF.StatusCode)
		}
		if respF.Header.Get("X-Cache") != "BYPASS" {
			t.Fatalf("cache-disabled server reported X-Cache=%s", respF.Header.Get("X-Cache"))
		}
		if !bytes.Equal(bodyC, bodyF) {
			t.Fatalf("q=%d k=%d: cached body %s != fresh body %s (X-Cache=%s)",
				q, k, bodyC, bodyF, respC.Header.Get("X-Cache"))
		}
	}
}

// TestCacheLRUBound checks the byte-accounted LRU never exceeds its
// budget, evicts the least recently used key, and recomputes evicted
// entries. Values are fixed-length, so the budget admits exactly
// `capacity` of them.
func TestCacheLRUBound(t *testing.T) {
	const capacity = 8
	val := func(i int) []byte { return []byte(fmt.Sprintf("v%03d", i)) }
	perEntry := entryCost(val(0))
	c := NewCache(capacity * perEntry)
	var computes atomic.Int64
	fetch := func(i int) CacheStatus {
		_, status, err := c.GetOrCompute(CacheKey{Q: graph.NodeID(i), K: 1, Epoch: 1}, func() ([]byte, error) {
			computes.Add(1)
			return val(i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return status
	}

	for i := 0; i < 50; i++ {
		fetch(i)
		if got := c.Bytes(); got > c.Cap() {
			t.Fatalf("after %d inserts the cache holds %d bytes, cap %d", i+1, got, c.Cap())
		}
	}
	if got := c.Len(); got != capacity {
		t.Fatalf("cache holds %d entries, want full at %d", got, capacity)
	}
	if got := c.Bytes(); got != capacity*perEntry {
		t.Fatalf("cache accounts %d bytes, want %d", got, capacity*perEntry)
	}
	// The last `capacity` keys survived; everything older was evicted.
	for i := 50 - capacity; i < 50; i++ {
		if status := fetch(i); status != StatusHit {
			t.Errorf("key %d: status %v, want HIT", i, status)
		}
	}
	if status := fetch(0); status != StatusMiss {
		t.Errorf("evicted key 0 served with status %v, want MISS (recompute)", status)
	}

	// Cache now holds (oldest → newest) 43..49, 0. Touching the LRU entry
	// protects it: the next insert evicts 44 instead.
	if status := fetch(43); status != StatusHit {
		t.Fatalf("key 43: status %v, want HIT", status)
	}
	fetch(99)
	if status := fetch(43); status != StatusHit {
		t.Errorf("recently touched key 43 was evicted (status %v)", status)
	}
	if status := fetch(44); status != StatusMiss {
		t.Errorf("key 44 should have been the eviction victim (status %v)", status)
	}
}

// TestCacheEpochInvalidation checks that an epoch bump invalidates every
// prior entry: lookups at the new epoch recompute, and DropOtherEpochs
// empties the stale generation.
func TestCacheEpochInvalidation(t *testing.T) {
	c := NewCache(64 << 10)
	var computes atomic.Int64
	fetch := func(q, epoch int) CacheStatus {
		_, status, err := c.GetOrCompute(CacheKey{Q: graph.NodeID(q), K: 2, Epoch: uint64(epoch)}, func() ([]byte, error) {
			computes.Add(1)
			return []byte(fmt.Sprintf("e%dq%d", epoch, q)), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return status
	}
	for q := 0; q < 10; q++ {
		fetch(q, 1)
	}
	if c.Len() != 10 || computes.Load() != 10 {
		t.Fatalf("warmup: len=%d computes=%d", c.Len(), computes.Load())
	}
	// Same queries at the next epoch: nothing may alias.
	for q := 0; q < 10; q++ {
		if status := fetch(q, 2); status != StatusMiss {
			t.Fatalf("q=%d at epoch 2 served with %v, want MISS", q, status)
		}
	}
	if computes.Load() != 20 {
		t.Fatalf("computes %d, want 20 (full recompute at the new epoch)", computes.Load())
	}
	if dropped := c.DropOtherEpochs(2); dropped != 10 {
		t.Fatalf("DropOtherEpochs removed %d, want the 10 stale entries", dropped)
	}
	if c.Len() != 10 {
		t.Fatalf("len %d after drop, want 10 live entries", c.Len())
	}
	for q := 0; q < 10; q++ {
		if status := fetch(q, 2); status != StatusHit {
			t.Fatalf("live entry q=%d lost by DropOtherEpochs (status %v)", q, status)
		}
	}

	// A compute that straggles past the drop (its request pinned the old
	// snapshot) still gets its answer but must NOT re-insert a dropped-epoch
	// entry: the key can never be looked up at that epoch again.
	if status := fetch(77, 1); status != StatusMiss {
		t.Fatalf("straggler compute status %v, want MISS", status)
	}
	if c.Len() != 10 {
		t.Fatalf("straggler compute re-inserted a dropped-epoch entry (len %d)", c.Len())
	}
	if status := fetch(77, 1); status != StatusMiss {
		t.Fatalf("dropped-epoch key was served from cache (status %v)", status)
	}
}

// TestCacheSingleFlight gates the compute function and checks N identical
// concurrent calls run it exactly once and all share its bytes.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(4 << 10)
	const waiters = 32
	var computes atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	key := CacheKey{Q: 7, K: 3, Epoch: 1}

	results := make([][]byte, waiters)
	statuses := make([]CacheStatus, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			val, status, err := c.GetOrCompute(key, func() ([]byte, error) {
				close(entered)
				<-release
				computes.Add(1)
				return []byte("answer"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], statuses[i] = val, status
		}(i)
	}
	<-entered // exactly one goroutine is computing; a second close would panic
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	misses := 0
	for i := range results {
		if string(results[i]) != "answer" {
			t.Fatalf("waiter %d got %q", i, results[i])
		}
		if statuses[i] == StatusMiss {
			misses++
		} else if statuses[i] != StatusCoalesced && statuses[i] != StatusHit {
			t.Fatalf("waiter %d status %v", i, statuses[i])
		}
	}
	if misses != 1 {
		t.Fatalf("%d misses, want exactly 1", misses)
	}
}

// TestCacheErrorsNotCached checks a failed compute leaves no entry and its
// error reaches coalesced waiters, while the next call retries.
func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4 << 10)
	key := CacheKey{Q: 1, K: 1, Epoch: 1}
	boom := errors.New("boom")
	if _, _, err := c.GetOrCompute(key, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatal("failed compute was cached")
	}
	val, status, err := c.GetOrCompute(key, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(val) != "ok" || status != StatusMiss {
		t.Fatalf("retry: %q %v %v", val, status, err)
	}
}

// TestCacheRandomizedStream is the cache property test at the HTTP layer:
// a random stream of queries, repeats, and epoch bumps, asserting byte
// identity between every response and an uncached recomputation AND that
// the LRU bound holds throughout.
func TestCacheRandomizedStream(t *testing.T) {
	g := testGraph(t, 33, 36)
	idx := testIndex(t, g, 5)
	s, err := New(g, idx, Config{CacheBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	_, fresh := newTestServer(t, g, idx, Config{CacheBytes: -1})

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q, k := rng.Intn(g.N()), 1+rng.Intn(5)
		path := fmt.Sprintf("/v1/reverse-topk?q=%d&k=%d", q, k)
		_, body := get(t, ts.URL+path)
		_, want := get(t, fresh.URL+path)
		if !bytes.Equal(body, want) {
			t.Fatalf("q=%d k=%d: %s != fresh %s", q, k, body, want)
		}
		if got := s.Cache().Bytes(); got > 2048 {
			t.Fatalf("cache exceeded its byte budget: %d > 2048", got)
		}
	}
}

// TestCacheByteAccounting pins the motivating bug: an entry-counted bound
// charges a k=1000 result the same as a k=1 result, so large-k traffic
// grows memory unboundedly. Byte accounting charges what each value
// weighs: big values displace proportionally many small ones, and a value
// that cannot fit at all is simply not cached (rather than flushing the
// whole cache for nothing).
func TestCacheByteAccounting(t *testing.T) {
	small := bytes.Repeat([]byte("s"), 16)   // ~k=1-sized body
	large := bytes.Repeat([]byte("L"), 4096) // ~k=1000-sized body
	budget := 10 * entryCost(large)
	c := NewCache(budget)
	fetch := func(q int, body []byte) CacheStatus {
		_, status, err := c.GetOrCompute(CacheKey{Q: graph.NodeID(q), K: len(body), Epoch: 1}, func() ([]byte, error) {
			return body, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return status
	}

	// Many small entries fit...
	for q := 0; q < 200; q++ {
		fetch(q, small)
	}
	if c.Len() != 200 {
		t.Fatalf("%d small entries cached, want all 200 within the byte budget", c.Len())
	}
	// ...but the same COUNT of large entries must not: the budget holds
	// exactly 10, and each insert stays under it.
	for q := 200; q < 400; q++ {
		fetch(q, large)
		if got := c.Bytes(); got > budget {
			t.Fatalf("cache exceeded its budget: %d > %d", got, budget)
		}
	}
	if got := c.Len(); got != 10 {
		t.Fatalf("cache holds %d entries after the large-value flood, want 10", got)
	}

	// A value bigger than the whole budget is not cached and evicts nothing.
	before := c.Bytes()
	if status := fetch(999, bytes.Repeat([]byte("X"), int(budget))); status != StatusMiss {
		t.Fatalf("oversized value status %v, want MISS", status)
	}
	if c.Bytes() != before {
		t.Fatalf("oversized value disturbed the cache: %d → %d bytes", before, c.Bytes())
	}
	if status := fetch(999, bytes.Repeat([]byte("X"), int(budget))); status != StatusMiss {
		t.Fatalf("oversized value was cached (status %v)", status)
	}
}

// TestPublishDropsStaleEpochsEagerly pins the satellite fix: a snapshot
// publish must invalidate stale cache entries ON the epoch bump, not
// lazily when eviction happens to reach them — immediately after Publish,
// Len/Bytes count only current-epoch entries.
func TestPublishDropsStaleEpochsEagerly(t *testing.T) {
	g := testGraph(t, 41, 24)
	idx := testIndex(t, g, 4)
	store, err := NewStore(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(64 << 10)
	store.AttachCache(c)

	warm := func(epoch uint64, qs ...int) {
		for _, q := range qs {
			_, _, err := c.GetOrCompute(CacheKey{Q: graph.NodeID(q), K: 2, Epoch: epoch}, func() ([]byte, error) {
				return []byte(fmt.Sprintf("e%dq%d", epoch, q)), nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	warm(store.Current().Epoch, 0, 1, 2, 3, 4)
	if c.Len() != 5 {
		t.Fatalf("warmup cached %d entries, want 5", c.Len())
	}

	snap, err := store.Publish(g, idx.Clone())
	if err != nil {
		t.Fatal(err)
	}
	// No lookup has touched the cache since the bump: eager invalidation
	// must already have emptied the stale generation.
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("stale entries survived Publish: len=%d bytes=%d", c.Len(), c.Bytes())
	}

	// Mixed generations: entries at the new epoch survive the next bump's
	// drop only if current.
	warm(snap.Epoch, 7, 8)
	if c.Len() != 2 {
		t.Fatalf("post-publish warmup cached %d entries, want 2", c.Len())
	}
	if _, err := store.Publish(g, idx.Clone()); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("second Publish left %d stale entries", c.Len())
	}
}
