package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/wal"
)

// DurabilityConfig parameterizes NewDurable. JournalPath is required;
// everything else has working defaults.
type DurabilityConfig struct {
	// JournalPath is the write-ahead journal file. Created if absent;
	// recovered (torn tail truncated, intact records replayed) if present.
	JournalPath string
	// CheckpointDir, when set, enables background checkpointing: the served
	// (graph, index) pair is saved there and the journal truncated at the
	// checkpointed watermark, bounding replay time. Empty disables
	// checkpointing — the journal then grows without bound.
	CheckpointDir string
	// CheckpointBytes triggers a checkpoint once the journal exceeds this
	// many bytes. 0 selects DefaultCheckpointBytes; negative disables the
	// size trigger.
	CheckpointBytes int64
	// CheckpointBatches triggers a checkpoint once the journal holds this
	// many batches. 0 selects DefaultCheckpointBatches; negative disables
	// the count trigger.
	CheckpointBatches int
	// NoSync skips the per-append fsync (see wal.Options.NoSync). Only the
	// recovery benchmark should set it — it prices the fsync.
	NoSync bool
}

// Checkpoint trigger defaults: a 64 MiB journal replays in seconds, and
// 1024 batches bounds replay work even when batches are tiny.
const (
	DefaultCheckpointBytes   = 64 << 20
	DefaultCheckpointBatches = 1024
)

// RecoveryInfo reports what NewDurable found on startup.
type RecoveryInfo struct {
	// FromCheckpoint is true when the serving pair was loaded from the
	// checkpoint directory rather than the caller-provided one.
	FromCheckpoint bool
	// CheckpointWatermark is the watermark embedded in the loaded index
	// image (0 for a fresh pair).
	CheckpointWatermark uint64
	// Replayed counts journal records applied on top of the loaded pair.
	Replayed int
	// SkippedBelowCheckpoint counts journal records at or below the
	// checkpoint watermark (already reflected in the image — a crash
	// between checkpoint and journal truncation leaves some behind).
	SkippedBelowCheckpoint int
	// DroppedBytes is the torn/corrupt journal tail truncated away, and
	// TailError describes it ("" for a clean journal). A torn tail is the
	// expected residue of a crash mid-append: the half-written record was
	// never acknowledged, so dropping it loses nothing promised.
	DroppedBytes int64
	TailError    string
}

// manifest is the checkpoint directory's commit record: the one file whose
// atomic rename decides which (graph, index) pair is current. Both data
// files are fully written and fsync'd before the manifest names them, so a
// crash at any point leaves either the previous consistent pair or the new
// one — never a torn mix.
type manifest struct {
	Watermark uint64 `json:"watermark"`
	Graph     string `json:"graph"`
	Index     string `json:"index"`
}

const manifestName = "CHECKPOINT"

// NewDurable creates a journaled server. The given (graph, index) pair is
// the cold-start state; when the checkpoint directory holds a committed
// checkpoint, that pair is loaded instead. The journal is then opened
// (truncating any torn tail) and every record newer than the loaded
// image's embedded watermark is replayed through the ordinary maintenance
// pipeline — synchronously, before the server accepts any traffic — so the
// returned server has exactly the state of one that applied every
// acknowledged batch and never crashed.
func NewDurable(g *graph.Graph, idx *lbindex.Index, cfg Config, dcfg DurabilityConfig) (*Server, *RecoveryInfo, error) {
	if dcfg.JournalPath == "" {
		return nil, nil, fmt.Errorf("serve: durable server needs a journal path")
	}
	info := &RecoveryInfo{}
	if dcfg.CheckpointDir != "" {
		cg, cidx, ok, err := loadCheckpoint(dcfg.CheckpointDir)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: loading checkpoint: %w", err)
		}
		if ok {
			g, idx = cg, cidx
			info.FromCheckpoint = true
		}
	}
	base := idx.Watermark()
	info.CheckpointWatermark = base

	// The server (and its metric registry) is built first so the journal's
	// append hook can observe into it; the maintenance goroutine has not
	// started, so a journal-open failure leaks nothing.
	s, err := newServer(g, idx, cfg)
	if err != nil {
		return nil, nil, err
	}
	log, rec, err := wal.Open(dcfg.JournalPath, wal.Options{
		NoSync: dcfg.NoSync,
		OnAppend: func(bytes int, elapsed time.Duration) {
			s.m.walBytes.Add(uint64(bytes))
			s.m.walDur.Observe(elapsed.Seconds())
		},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("serve: opening journal: %w", err)
	}
	s.journal = log
	s.ckptDir = dcfg.CheckpointDir
	s.ckptBytes = dcfg.CheckpointBytes
	if s.ckptBytes == 0 {
		s.ckptBytes = DefaultCheckpointBytes
	}
	s.ckptBatches = dcfg.CheckpointBatches
	if s.ckptBatches == 0 {
		s.ckptBatches = DefaultCheckpointBatches
	}

	// Replay. Records at or below the image's watermark are already
	// reflected in it; everything newer runs through the same finishBatch
	// the live pipeline uses, including deterministic re-rejection of
	// batches that failed validation the first time (their watermarks were
	// consumed, so replay must consume them identically).
	info.DroppedBytes = rec.DroppedBytes
	if rec.TailError != nil {
		info.TailError = rec.TailError.Error()
	}
	wm := base
	for _, r := range rec.Records {
		if r.Watermark <= base {
			info.SkippedBelowCheckpoint++
			continue
		}
		b := &editBatch{edits: r.Edits, theta: r.Theta, watermark: r.Watermark, done: make(chan struct{})}
		s.finishBatch(b)
		info.Replayed++
		wm = r.Watermark
	}
	s.enqueuedWM.Store(wm)
	s.appliedWM.Store(wm)
	s.replayed = info.Replayed
	s.replayDrop = info.DroppedBytes

	go s.maintLoop()
	return s, info, nil
}

// maybeCheckpoint saves the served pair and truncates the journal once
// either trigger fires. It runs on the maintenance goroutine between
// batches, so the pair it captures is quiescent; queries keep flowing
// against the published snapshot throughout. Failures are reported through
// the maintenance counters and retried after the next batch — the journal
// keeps everything until a checkpoint actually commits.
func (s *Server) maybeCheckpoint() {
	if s.journal == nil || s.ckptDir == "" {
		return
	}
	sizeHit := s.ckptBytes > 0 && s.journal.Size() >= s.ckptBytes
	countHit := s.ckptBatches > 0 && s.journal.Batches() >= s.ckptBatches
	if !sizeHit && !countHit {
		return
	}
	start := time.Now()
	if err := s.checkpoint(); err != nil {
		s.m.maintErrors.Inc()
		msg := fmt.Sprintf("checkpoint failed: %v", err)
		s.lastMaintError.Store(&msg)
		return
	}
	s.m.ckptDur.Observe(time.Since(start).Seconds())
}

// checkpoint writes the current (graph, index) pair to the checkpoint
// directory, commits it via the manifest rename, truncates the journal at
// the checkpointed watermark, and deletes the files of the previous
// checkpoint. The order matters: data files first (fsync'd), manifest
// rename second (the commit point), journal truncation third (only drops
// what the committed image provably contains), cleanup last.
func (s *Server) checkpoint() error {
	if err := os.MkdirAll(s.ckptDir, 0o755); err != nil {
		return err
	}
	prev, _ := readManifest(s.ckptDir) // nil when none committed yet

	wm := s.appliedWM.Load()
	g, err := s.overlay.Load().Compact()
	if err != nil {
		return fmt.Errorf("compacting overlay: %w", err)
	}
	idx := s.store.Current().View.Index()

	m := manifest{
		Watermark: wm,
		Graph:     fmt.Sprintf("graph-%016x.edges", wm),
		Index:     fmt.Sprintf("index-%016x.rtk", wm),
	}
	if err := writeFileSynced(filepath.Join(s.ckptDir, m.Graph), func(f *os.File) error {
		return graph.WriteEdgeList(f, g)
	}); err != nil {
		return fmt.Errorf("writing checkpoint graph: %w", err)
	}
	if err := writeFileSynced(filepath.Join(s.ckptDir, m.Index), func(f *os.File) error {
		return idx.Save(f)
	}); err != nil {
		return fmt.Errorf("writing checkpoint index: %w", err)
	}
	mb, err := json.Marshal(m)
	if err != nil {
		return err
	}
	// The manifest rename inside writeFileSynced is the commit point.
	if err := writeFileSynced(filepath.Join(s.ckptDir, manifestName), func(f *os.File) error {
		_, werr := f.Write(mb)
		return werr
	}); err != nil {
		return fmt.Errorf("writing checkpoint manifest: %w", err)
	}
	// The manifest rename is only a commit once the directory entry is on
	// disk. Truncating the journal before that point could lose every
	// replayable record while the "committed" checkpoint is still free to
	// vanish on power loss — so a failed directory sync fails the
	// checkpoint, keeping the journal intact for retry.
	if err := syncDir(s.ckptDir); err != nil {
		return fmt.Errorf("syncing checkpoint dir: %w", err)
	}

	if err := s.journal.TruncateBelow(wm); err != nil {
		return fmt.Errorf("truncating journal at %d: %w", wm, err)
	}
	if prev != nil && prev.Graph != m.Graph {
		os.Remove(filepath.Join(s.ckptDir, prev.Graph))
		os.Remove(filepath.Join(s.ckptDir, prev.Index))
	}
	s.m.checkpoints.Inc()
	s.lastCkptWM.Store(wm)
	s.lastCkptNS.Store(time.Now().UnixNano())
	return nil
}

// readManifest returns the committed checkpoint manifest, or nil when the
// directory has none.
func readManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("serve: corrupt checkpoint manifest: %w", err)
	}
	if m.Graph == "" || m.Index == "" {
		return nil, fmt.Errorf("serve: checkpoint manifest names no files")
	}
	return &m, nil
}

// loadCheckpoint loads the committed (graph, index) pair, reporting
// ok=false when the directory holds no checkpoint.
func loadCheckpoint(dir string) (*graph.Graph, *lbindex.Index, bool, error) {
	m, err := readManifest(dir)
	if err != nil || m == nil {
		return nil, nil, false, err
	}
	gf, err := os.Open(filepath.Join(dir, m.Graph))
	if err != nil {
		return nil, nil, false, err
	}
	//rtklint:ignore syncerr read-only fd — close errors cannot lose data that was never written
	defer gf.Close()
	builder, err := graph.ReadEdgeList(gf)
	if err != nil {
		return nil, nil, false, fmt.Errorf("checkpoint graph: %w", err)
	}
	// The checkpointed graph came out of Overlay.Compact, which self-loops
	// every out-edge-less node, so the policy below never fires — it is the
	// same one the compactor used, kept for belt and braces.
	g, _, err := builder.Build(graph.DanglingSelfLoop)
	if err != nil {
		return nil, nil, false, fmt.Errorf("checkpoint graph: %w", err)
	}
	idx, err := lbindex.LoadFile(filepath.Join(dir, m.Index), lbindex.LoadOptions{})
	if err != nil {
		return nil, nil, false, fmt.Errorf("checkpoint index: %w", err)
	}
	if got := idx.Watermark(); got != m.Watermark {
		return nil, nil, false, fmt.Errorf("checkpoint index watermark %d, manifest says %d", got, m.Watermark)
	}
	return g, idx, true, nil
}

// writeFileSynced writes path via a temp sibling: fill, fsync, close,
// rename. The rename publishes only fully persisted bytes.
func writeFileSynced(path string, fill func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// openDir opens a directory for fsync. A variable so tests can inject a
// handle whose Sync fails and assert the checkpoint does not commit.
var openDir = os.Open

// syncDir fsyncs a directory, persisting renames within it, and reports
// failure — the checkpoint's commit point is the manifest rename, and a
// rename that is not in the directory's on-disk entry is not a commit.
// Filesystems that refuse directory fsync outright (EINVAL) are tolerated:
// there the rename is as durable as that filesystem makes anything.
func syncDir(dir string) error {
	d, err := openDir(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if err != nil && errors.Is(err, syscall.EINVAL) {
		err = nil
	}
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
