// Package serve turns the reverse top-k engine into a long-lived query
// daemon: a resident (graph, index) pair behind an HTTP API, with snapshot
// isolation between serving and maintenance, an asynchronous journaled
// edit pipeline, a byte-accounted LRU result cache with single-flight
// deduplication, admission control over engine work, SpMM batching of
// concurrent queries (admitted cache misses coalesce into multi-query
// proximity groups whose columns share every CSR traversal — see
// Config.SpMMBatch and the batcher in batcher.go), and graceful drain.
//
// Snapshot model: the daemon serves from an immutable Snapshot — an epoch
// number plus a core.View over one (graph view, index) pair — published
// behind an atomic pointer. Maintenance builds the NEXT snapshot entirely
// off to the side (graph.Overlay.Apply + evolve.RefreshPartial on an index
// clone) and publishes it with one pointer swap, so readers are never
// locked out and can never observe a half-refreshed index: a request grabs
// the current snapshot once and runs against it to completion, even if a
// swap lands mid-request. Cached results are keyed by epoch, so a swap
// invalidates the cache by key instead of by locking.
//
// Durability model: New builds a volatile server — edit acknowledgements
// (the 202 watermark) are promises that die with the process. NewDurable
// adds a write-ahead journal (internal/wal): each accepted batch is
// framed, checksummed and fsync'd BEFORE its watermark is returned, and on
// startup the journal suffix newer than the loaded index's embedded
// watermark is replayed through the same maintenance pipeline — including
// deterministic re-rejection of batches that fail at apply time — so a
// recovered server is bit-identical to one that never crashed. Background
// checkpoints (DurabilityConfig.CheckpointDir) save the served pair and
// truncate the journal, bounding replay time. Graceful Close drains the
// queue either way: every acknowledged batch is applied, never failed,
// on an orderly shutdown; the journal covers the disorderly ones.
package serve

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lbindex"
)

// Snapshot is one immutable published serving state. Epoch starts at 1 and
// increases by 1 per semantic change (edit batch); it is the cache-key
// component that makes results from different snapshots never alias.
// A background compaction republishes the SAME epoch over a compacted
// graph (Store.Replace): answers are identical, so cached results stay
// valid.
type Snapshot struct {
	Epoch uint64
	View  *core.View
}

// Store holds the current snapshot behind an atomic pointer. Reads
// (Current) are wait-free; Publish/Replace are lock-free but publishers
// must be serialized externally — the Server's single maintenance
// goroutine is the only publisher.
//
// When the initial index was loaded zero-copy from an mmap'd file, the
// store's snapshots take ownership of the mapping by reference: every
// published index descends from the loaded one via Clone and shares its
// backing, which stays mapped as long as any snapshot (or in-flight
// request pinning one) is reachable, and is unmapped by a GC cleanup once
// the last such reference is gone — see lbindex.Mapping.
type Store struct {
	cur atomic.Pointer[Snapshot]
	// cache, when attached, is invalidated eagerly on every epoch bump.
	// Stale-epoch entries can never be read again, so leaving them to
	// lazy eviction would only pin dead bytes in the budget.
	cache *Cache
}

// AttachCache registers the result cache whose stale epochs every Publish
// drops. Call before the first Publish; the Server wires its own cache.
func (s *Store) AttachCache(c *Cache) { s.cache = c }

// NewStore creates a store serving the given pair as epoch 1.
func NewStore(g graph.View, idx *lbindex.Index) (*Store, error) {
	v, err := core.NewView(g, idx)
	if err != nil {
		return nil, err
	}
	s := &Store{}
	s.cur.Store(&Snapshot{Epoch: 1, View: v})
	return s, nil
}

// Current returns the live snapshot. The caller should grab it once per
// request and use that one snapshot throughout.
func (s *Store) Current() *Snapshot {
	return s.cur.Load()
}

// Publish atomically replaces the current snapshot with a new one over the
// given pair, at the next epoch, and eagerly drops every other epoch from
// the attached cache. It returns the published snapshot.
func (s *Store) Publish(g graph.View, idx *lbindex.Index) (*Snapshot, error) {
	v, err := core.NewView(g, idx)
	if err != nil {
		return nil, err
	}
	for {
		old := s.cur.Load()
		next := &Snapshot{Epoch: old.Epoch + 1, View: v}
		if s.cur.CompareAndSwap(old, next) {
			s.cache.DropOtherEpochs(next.Epoch)
			return next, nil
		}
	}
}

// Replace swaps in a new view at the CURRENT epoch. Only valid when the
// new pair is semantically identical to the published one (same adjacency,
// same index rows — e.g. an overlay compacted back to CSR): the epoch is
// the cache key, so answers cached under it must remain correct.
func (s *Store) Replace(g graph.View, idx *lbindex.Index) (*Snapshot, error) {
	v, err := core.NewView(g, idx)
	if err != nil {
		return nil, err
	}
	for {
		old := s.cur.Load()
		next := &Snapshot{Epoch: old.Epoch, View: v}
		if s.cur.CompareAndSwap(old, next) {
			return next, nil
		}
	}
}
