// Package serve turns the reverse top-k engine into a long-lived query
// daemon: a resident (graph, index) pair behind an HTTP API, with snapshot
// isolation between serving and maintenance, a bounded result cache with
// single-flight deduplication, admission control over engine work, and
// graceful drain.
//
// Snapshot model: the daemon serves from an immutable Snapshot — an epoch
// number plus a core.View over one (graph, index) pair — published behind
// an atomic pointer. Maintenance (evolve.ApplyEdits + RefreshSnapshot)
// builds the NEXT snapshot entirely off to the side and publishes it with
// one pointer swap, so readers are never locked out and can never observe a
// half-refreshed index: a request grabs the current snapshot once and runs
// against it to completion, even if a swap lands mid-request. Cached
// results are keyed by epoch, so a swap invalidates the cache by key
// instead of by locking.
package serve

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lbindex"
)

// Snapshot is one immutable published serving state. Epoch starts at 1 and
// increases by 1 per publish; it is the cache-key component that makes
// results from different snapshots never alias.
type Snapshot struct {
	Epoch uint64
	View  *core.View
}

// Store holds the current snapshot behind an atomic pointer. Reads
// (Current) are wait-free; Publish is lock-free but publishers must be
// serialized externally — concurrent maintenance passes would otherwise
// race building successors of the same snapshot (Server serializes them
// with its maintenance mutex).
type Store struct {
	cur atomic.Pointer[Snapshot]
}

// NewStore creates a store serving the given pair as epoch 1.
func NewStore(g *graph.Graph, idx *lbindex.Index) (*Store, error) {
	v, err := core.NewView(g, idx)
	if err != nil {
		return nil, err
	}
	s := &Store{}
	s.cur.Store(&Snapshot{Epoch: 1, View: v})
	return s, nil
}

// Current returns the live snapshot. The caller should grab it once per
// request and use that one snapshot throughout.
func (s *Store) Current() *Snapshot {
	return s.cur.Load()
}

// Publish atomically replaces the current snapshot with a new one over the
// given pair, at the next epoch. It returns the published snapshot.
func (s *Store) Publish(g *graph.Graph, idx *lbindex.Index) (*Snapshot, error) {
	v, err := core.NewView(g, idx)
	if err != nil {
		return nil, err
	}
	for {
		old := s.cur.Load()
		next := &Snapshot{Epoch: old.Epoch + 1, View: v}
		if s.cur.CompareAndSwap(old, next) {
			return next, nil
		}
	}
}
