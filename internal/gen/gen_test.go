package gen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(99)) }

func TestErdosRenyi(t *testing.T) {
	g, err := ErdosRenyi(500, 2500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 500 {
		t.Fatalf("N = %d", g.N())
	}
	if g.M() < 2000 || g.M() > 3100 {
		t.Errorf("M = %d, want ≈2500 (+self-loops, −duplicates)", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}
	// Determinism.
	g2, err := ErdosRenyi(500, 2500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Error("not deterministic for equal seeds")
	}
	g3, err := ErdosRenyi(500, 2500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g3.M() == g.M() && sameEdges(g, g3) {
		t.Error("different seeds produced identical graphs")
	}
	if _, err := ErdosRenyi(0, 10, 1); err == nil {
		t.Error("want parameter error")
	}
}

func sameEdges(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for u := graph.NodeID(0); int(u) < a.N(); u++ {
		na, nb := a.OutNeighbors(u), b.OutNeighbors(u)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestPrefAttachHeavyTail(t *testing.T) {
	g, err := PrefAttach(2000, 5, 0.3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	// Preferential attachment concentrates in-degree: the max should far
	// exceed the mean and the Gini should be high.
	if float64(s.MaxInDegree) < 8*s.AvgOutDegree {
		t.Errorf("no heavy tail: max in-degree %d, avg %g", s.MaxInDegree, s.AvgOutDegree)
	}
	if s.InDegreeGini < 0.4 {
		t.Errorf("in-degree Gini %g too uniform for preferential attachment", s.InDegreeGini)
	}
	if _, err := PrefAttach(10, 0, 0.3, 1); err == nil {
		t.Error("want parameter error")
	}
	if _, err := PrefAttach(10, 2, 1.5, 1); err == nil {
		t.Error("want recip error")
	}
}

func TestCopyingPowerLaw(t *testing.T) {
	g, err := Copying(3000, 5, 0.75, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	beta := graph.PowerLawExponent(g, 3)
	if math.IsNaN(beta) || beta < 1.5 || beta > 4.5 {
		t.Errorf("in-degree tail exponent %g, want power-law range (≈2–3.5)", beta)
	}
	if _, err := Copying(1, 5, 0.5, 0.3, 1); err == nil {
		t.Error("want parameter error")
	}
}

func TestRMAT(t *testing.T) {
	g, err := RMAT(10, 8, 0.57, 0.19, 0.19, 0.05, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 1024 {
		t.Fatalf("N = %d, want 1024", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := graph.ComputeStats(g)
	if s.InDegreeGini < 0.4 {
		t.Errorf("RMAT skew too low: gini %g", s.InDegreeGini)
	}
	if _, err := RMAT(10, 8, 0.5, 0.5, 0.5, 0.5, 1); err == nil {
		t.Error("want probability-sum error")
	}
	if _, err := RMAT(0, 8, 0.57, 0.19, 0.19, 0.05, 1); err == nil {
		t.Error("want scale error")
	}
}

func TestWebAndSocialPresets(t *testing.T) {
	if _, err := WebGraph(800, 1); err != nil {
		t.Error(err)
	}
	if _, err := SocialGraph(800, 1); err != nil {
		t.Error(err)
	}
}

func TestSpamWebStructure(t *testing.T) {
	o := DefaultSpamWebOptions(1)
	g, labels, err := SpamWeb(o)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != o.Normal+o.Spam+o.Undecided {
		t.Fatalf("N = %d", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	var nNorm, nSpam, nUnd int
	for _, l := range labels {
		switch l {
		case LabelNormal:
			nNorm++
		case LabelSpam:
			nSpam++
		case LabelUndecided:
			nUnd++
		}
	}
	if nNorm != o.Normal || nSpam != o.Spam || nUnd != o.Undecided {
		t.Fatalf("label counts %d/%d/%d", nNorm, nSpam, nUnd)
	}
	// The core structural property: spam out-links overwhelmingly target
	// spam; normal out-links overwhelmingly target normal.
	spamToSpam, spamTotal := 0, 0
	normToNorm, normTotal := 0, 0
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		for _, v := range g.OutNeighbors(u) {
			switch labels[u] {
			case LabelSpam:
				spamTotal++
				if labels[v] == LabelSpam {
					spamToSpam++
				}
			case LabelNormal:
				normTotal++
				if labels[v] == LabelNormal {
					normToNorm++
				}
			}
		}
	}
	if ratio := float64(spamToSpam) / float64(spamTotal); ratio < 0.7 {
		t.Errorf("spam→spam ratio %g too low for link farms", ratio)
	}
	if ratio := float64(normToNorm) / float64(normTotal); ratio < 0.9 {
		t.Errorf("normal→normal ratio %g too low", ratio)
	}
	if _, _, err := SpamWeb(SpamWebOptions{}); err == nil {
		t.Error("want parameter error")
	}
	for _, l := range []Label{LabelNormal, LabelSpam, LabelUndecided, Label(7)} {
		if l.String() == "" {
			t.Error("empty label name")
		}
	}
}

func TestCoauthorStructure(t *testing.T) {
	o := DefaultCoauthorOptions(1)
	g, authors, err := Coauthor(o)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != o.Authors || len(authors) != o.Authors {
		t.Fatalf("N = %d, authors = %d", g.N(), len(authors))
	}
	if !g.Weighted() {
		t.Fatal("coauthor graph must be weighted")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Symmetric weights: w(i→j) == w(j→i).
	for u := graph.NodeID(0); int(u) < 50; u++ {
		for _, v := range g.OutNeighbors(u) {
			if u == v {
				continue
			}
			if g.EdgeWeight(u, v) != g.EdgeWeight(v, u) {
				t.Fatalf("asymmetric weight %d↔%d", u, v)
			}
		}
	}
	// Prolific authors have far more coauthors than the median author.
	var prolificMin, medianSum int
	prolificMin = 1 << 30
	for i, a := range authors {
		if a.Prolific {
			if a.Coauthors < prolificMin {
				prolificMin = a.Coauthors
			}
			if i >= o.Prolific {
				t.Errorf("prolific author at unexpected id %d", i)
			}
		} else {
			medianSum += a.Coauthors
		}
	}
	avg := float64(medianSum) / float64(len(authors)-o.Prolific)
	if float64(prolificMin) < 3*avg {
		t.Errorf("prolific min coauthors %d not ≫ average %g", prolificMin, avg)
	}
	if _, _, err := Coauthor(CoauthorOptions{}); err == nil {
		t.Error("want parameter error")
	}
}

func TestGeometricMean(t *testing.T) {
	rng := newTestRand()
	const mean, samples = 6.0, 200000
	var sum float64
	for i := 0; i < samples; i++ {
		sum += float64(geometric(rng, mean))
	}
	got := sum / samples
	if math.Abs(got-mean) > 0.2 {
		t.Errorf("geometric sample mean %g, want ≈ %g", got, mean)
	}
	if geometric(rng, 0) != 0 {
		t.Error("mean 0 should sample 0")
	}
}
