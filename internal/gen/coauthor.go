package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Author describes one node of the co-authorship network.
type Author struct {
	// Name is a synthetic stable identifier ("Author-00042").
	Name string
	// Publications is the author's total paper count (the w_j of §5.4's
	// weighted transition matrix).
	Publications int
	// Coauthors is the number of distinct collaborators (Table 3's third
	// column).
	Coauthors int
	// Prolific marks the community-spanning heavy collaborators the
	// generator plants — the ground truth for Table 3's "popular"
	// authors.
	Prolific bool
}

// CoauthorOptions parameterizes the co-authorship network generator.
type CoauthorOptions struct {
	// Authors is the total author count.
	Authors int
	// Communities is the number of research communities; collaboration
	// is mostly intra-community.
	Communities int
	// Prolific is the number of planted community-spanning collaborators
	// (the Philip S. Yu / Jiawei Han / Christos Faloutsos analogs).
	Prolific int
	// PapersPerAuthor is the mean of the (geometric-like) publication
	// count distribution.
	PapersPerAuthor int
	// CoauthorsPerPaper is the mean collaborator count per paper.
	CoauthorsPerPaper int
	Seed              int64
}

// DefaultCoauthorOptions returns a configuration shaped like the paper's
// DBLP extract (44528 authors) scaled by the given factor (scale=1 ⇒ ≈2000
// authors, tractable for tests).
func DefaultCoauthorOptions(scale int) CoauthorOptions {
	if scale <= 0 {
		scale = 1
	}
	return CoauthorOptions{
		Authors:           2000 * scale,
		Communities:       20 * scale,
		Prolific:          6,
		PapersPerAuthor:   8,
		CoauthorsPerPaper: 2,
		Seed:              7,
	}
}

// Coauthor generates a weighted co-authorship network following §5.4: each
// undirected collaboration (i,j) with w_{i,j} joint papers becomes the two
// directed edges i→j and j→i with weight w_{i,j}, and the RWR transition
// from j spreads proportionally to joint-paper counts. (The paper
// normalizes by total publications w_j; we normalize by Σ_i w_{i,j}, which
// keeps the chain stochastic and preserves the relative transition
// probabilities — see DESIGN.md.)
//
// Prolific authors publish an order of magnitude more papers, collaborate
// across communities, and are every junior collaborator's strongest tie —
// reproducing Table 3's reverse-top-k concentration.
func Coauthor(o CoauthorOptions) (*graph.Graph, []Author, error) {
	if o.Authors <= 10 || o.Communities <= 0 || o.Prolific < 0 || o.Prolific > o.Authors {
		return nil, nil, fmt.Errorf("gen: bad coauthor populations %+v", o)
	}
	if o.PapersPerAuthor <= 0 || o.CoauthorsPerPaper <= 0 {
		return nil, nil, fmt.Errorf("gen: bad coauthor rates %+v", o)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	n := o.Authors
	authors := make([]Author, n)
	community := make([]int, n)
	for i := range authors {
		authors[i] = Author{
			Name:         fmt.Sprintf("Author-%05d", i),
			Publications: 1 + geometric(rng, float64(o.PapersPerAuthor)),
		}
		community[i] = rng.Intn(o.Communities)
	}
	// Plant the prolific authors: ids 0..Prolific-1, very high output.
	for i := 0; i < o.Prolific; i++ {
		authors[i].Prolific = true
		authors[i].Publications = o.PapersPerAuthor * 40
	}

	// Community member lists for intra-community sampling.
	members := make([][]graph.NodeID, o.Communities)
	for i := 0; i < n; i++ {
		members[community[i]] = append(members[community[i]], graph.NodeID(i))
	}

	// Emit papers: author i writes Publications papers; each paper draws
	// coauthors mostly from i's community, and with probability rising in
	// seniority includes a prolific author. Joint-paper counts accumulate
	// into weights.
	weights := make(map[[2]graph.NodeID]float64)
	pair := func(a, b graph.NodeID) [2]graph.NodeID {
		if a > b {
			a, b = b, a
		}
		return [2]graph.NodeID{a, b}
	}
	for i := 0; i < n; i++ {
		papers := authors[i].Publications
		comm := members[community[i]]
		for p := 0; p < papers; p++ {
			k := 1 + geometric(rng, float64(o.CoauthorsPerPaper))
			for c := 0; c < k; c++ {
				var j graph.NodeID
				switch {
				case o.Prolific > 0 && rng.Float64() < 0.15:
					j = graph.NodeID(rng.Intn(o.Prolific))
				case rng.Float64() < 0.85:
					j = comm[rng.Intn(len(comm))]
				default:
					j = graph.NodeID(rng.Intn(n))
				}
				if j == graph.NodeID(i) {
					continue
				}
				weights[pair(graph.NodeID(i), j)]++
			}
		}
	}

	b := graph.NewBuilder(n)
	coauthors := make([]int, n)
	for pr, w := range weights {
		b.AddWeightedEdge(pr[0], pr[1], w)
		b.AddWeightedEdge(pr[1], pr[0], w)
		coauthors[pr[0]]++
		coauthors[pr[1]]++
	}
	for i := range authors {
		authors[i].Coauthors = coauthors[i]
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		return nil, nil, err
	}
	return g, authors, nil
}

// geometric samples a geometric-like count with the given mean.
func geometric(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	p := 1 / (mean + 1)
	u := rng.Float64()
	return int(math.Floor(math.Log(1-u) / math.Log(1-p)))
}
