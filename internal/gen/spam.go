package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Label classifies a web host in the spam-detection experiment (§5.4).
type Label uint8

const (
	// LabelNormal marks an ordinary host.
	LabelNormal Label = iota
	// LabelSpam marks a link-farm host.
	LabelSpam
	// LabelUndecided marks an unlabeled host (the Webspam corpus keeps
	// some hosts unjudged; we reproduce that).
	LabelUndecided
)

// String returns the label name.
func (l Label) String() string {
	switch l {
	case LabelNormal:
		return "normal"
	case LabelSpam:
		return "spam"
	case LabelUndecided:
		return "undecided"
	default:
		return fmt.Sprintf("Label(%d)", int(l))
	}
}

// SpamWebOptions parameterizes the labeled host-graph generator.
type SpamWebOptions struct {
	// Normal and Spam are the labeled population sizes; Undecided hosts
	// are added on top (the Webspam corpus is 8123 / 2113 / rest).
	Normal, Spam, Undecided int
	// Farms is the number of link farms the spam hosts split into.
	Farms int
	// FarmDensity is the number of intra-farm out-links per spam host.
	FarmDensity int
	// NormalOut is the number of out-links per normal host (copying
	// model among the normal population).
	NormalOut int
	// SpamToNormal is the per-spam-host count of camouflage links into
	// the normal population; NormalToSpam is the (small) per-normal-host
	// probability of a link into spam (hijacked or deceived pages).
	SpamToNormal int
	NormalToSpam float64
	Seed         int64
}

// DefaultSpamWebOptions mirrors the Webspam-uk2006 proportions at a
// configurable scale factor (scale=1 ⇒ ≈1140 hosts; the corpus is 10×).
func DefaultSpamWebOptions(scale int) SpamWebOptions {
	if scale <= 0 {
		scale = 1
	}
	return SpamWebOptions{
		Normal:       812 * scale,
		Spam:         211 * scale,
		Undecided:    117 * scale,
		Farms:        6 * scale,
		FarmDensity:  8,
		NormalOut:    6,
		SpamToNormal: 2,
		NormalToSpam: 0.02,
		Seed:         1,
	}
}

// SpamWeb generates a labeled web-host graph whose link structure carries
// the spam-detection signal of §5.4: link-farm members exchange the bulk of
// their PageRank contributions with other members of the same farm, while
// normal hosts link mostly among themselves. Node layout: normal hosts
// first, then spam, then undecided.
func SpamWeb(o SpamWebOptions) (*graph.Graph, []Label, error) {
	if o.Normal <= 1 || o.Spam <= 1 || o.Undecided < 0 || o.Farms <= 0 {
		return nil, nil, fmt.Errorf("gen: bad spam-web populations %+v", o)
	}
	if o.FarmDensity <= 0 || o.NormalOut <= 0 || o.SpamToNormal < 0 || o.NormalToSpam < 0 || o.NormalToSpam > 1 {
		return nil, nil, fmt.Errorf("gen: bad spam-web link parameters %+v", o)
	}
	rng := rand.New(rand.NewSource(o.Seed))
	n := o.Normal + o.Spam + o.Undecided
	labels := make([]Label, n)
	for i := o.Normal; i < o.Normal+o.Spam; i++ {
		labels[i] = LabelSpam
	}
	for i := o.Normal + o.Spam; i < n; i++ {
		labels[i] = LabelUndecided
	}
	b := graph.NewBuilder(n)

	// Normal hosts: copying model among themselves, occasional spam link.
	// A bootstrap ring keeps early hosts' reachable sets non-degenerate
	// (see gen.Copying).
	adj := make([][]graph.NodeID, o.Normal)
	seedCount := o.NormalOut + 1
	if seedCount > o.Normal {
		seedCount = o.Normal
	}
	for v := 0; v < seedCount; v++ {
		t := graph.NodeID((v + 1) % seedCount)
		b.AddEdge(graph.NodeID(v), t)
		adj[v] = []graph.NodeID{t}
	}
	for v := seedCount; v < o.Normal; v++ {
		proto := rng.Intn(v)
		deg := o.NormalOut
		links := make([]graph.NodeID, 0, deg)
		for e := 0; e < deg; e++ {
			var t graph.NodeID
			if rng.Float64() < o.NormalToSpam {
				t = graph.NodeID(o.Normal + rng.Intn(o.Spam))
			} else if rng.Float64() < 0.7 && e < len(adj[proto]) {
				t = adj[proto][e]
			} else {
				t = graph.NodeID(rng.Intn(v))
			}
			b.AddEdge(graph.NodeID(v), t)
			links = append(links, t)
		}
		adj[v] = links
	}

	// Spam hosts: assigned round-robin to farms; dense intra-farm links
	// plus a few camouflage links to normal hosts.
	farmOf := func(s int) int { return s % o.Farms }
	farmMembers := make([][]graph.NodeID, o.Farms)
	for s := 0; s < o.Spam; s++ {
		farmMembers[farmOf(s)] = append(farmMembers[farmOf(s)], graph.NodeID(o.Normal+s))
	}
	for s := 0; s < o.Spam; s++ {
		id := graph.NodeID(o.Normal + s)
		members := farmMembers[farmOf(s)]
		for e := 0; e < o.FarmDensity; e++ {
			t := members[rng.Intn(len(members))]
			if t == id && len(members) > 1 {
				t = members[rng.Intn(len(members))]
			}
			b.AddEdge(id, t)
		}
		for e := 0; e < o.SpamToNormal; e++ {
			b.AddEdge(id, graph.NodeID(rng.Intn(o.Normal)))
		}
	}

	// Undecided hosts: sparse links into both populations.
	for u := 0; u < o.Undecided; u++ {
		id := graph.NodeID(o.Normal + o.Spam + u)
		for e := 0; e < 3; e++ {
			if rng.Float64() < 0.8 {
				b.AddEdge(id, graph.NodeID(rng.Intn(o.Normal)))
			} else {
				b.AddEdge(id, graph.NodeID(o.Normal+rng.Intn(o.Spam)))
			}
		}
	}

	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		return nil, nil, err
	}
	return g, labels, nil
}
