// Package gen provides seeded, reproducible synthetic graph generators that
// stand in for the paper's datasets (see DESIGN.md "Substitutions"):
//
//   - ErdosRenyi: uniform random digraphs (calibration baseline).
//   - PrefAttach: directed preferential attachment — social-network analog
//     for Epinions (heavy-tailed in-degree, reciprocated edges).
//   - Copying: the copying model of web-graph formation — analog for the
//     Web-stanford / Web-google crawls (power-law in-degree, link locality).
//   - RMAT: recursive-matrix generator — large skewed web/social graphs.
//   - SpamWeb (spam.go): labeled host graph with link farms — analog for
//     Webspam-uk2006.
//   - Coauthor (coauthor.go): weighted co-authorship network with
//     publication counts — analog for the DBLP extract of §5.4.
//
// Every generator takes an explicit seed and returns identical graphs for
// identical inputs.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ErdosRenyi generates a digraph with n nodes and approximately m uniformly
// random directed edges (duplicates collapse, self-loops excluded).
func ErdosRenyi(n, m int, seed int64) (*graph.Graph, error) {
	if n <= 0 || m < 0 {
		return nil, fmt.Errorf("gen: bad ER parameters n=%d m=%d", n, m)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			v = (v + 1) % n
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	return g, err
}

// PrefAttach generates a directed preferential-attachment graph: nodes
// arrive one at a time and emit `out` edges to existing nodes chosen
// proportionally to (in-degree + 1); each new edge is reciprocated with
// probability `recip`, mimicking the mutual-trust edges of social networks
// like Epinions.
func PrefAttach(n, out int, recip float64, seed int64) (*graph.Graph, error) {
	if n <= 0 || out <= 0 || recip < 0 || recip > 1 {
		return nil, fmt.Errorf("gen: bad PA parameters n=%d out=%d recip=%g", n, out, recip)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// urn holds one entry per unit of (in-degree + 1) over nodes that
	// already exist; drawing uniformly from it realizes preferential
	// attachment with +1 smoothing. Only born nodes ever enter the urn.
	urn := make([]graph.NodeID, 0, n*(out+2))
	// Bootstrap ring over the first out+1 nodes (see Copying) so early
	// nodes have non-degenerate reachable sets.
	seedCount := out + 1
	if seedCount > n {
		seedCount = n
	}
	for v := 0; v < seedCount; v++ {
		b.AddEdge(graph.NodeID(v), graph.NodeID((v+1)%seedCount))
		urn = append(urn, graph.NodeID(v))
	}
	for v := seedCount; v < n; v++ {
		id := graph.NodeID(v)
		deg := out
		recipTo := make([]graph.NodeID, 0, deg)
		for e := 0; e < deg; e++ {
			t := urn[rng.Intn(len(urn))]
			b.AddEdge(id, t)
			urn = append(urn, t) // t gained one in-degree
			if rng.Float64() < recip {
				b.AddEdge(t, id)
				recipTo = append(recipTo, id)
			}
		}
		urn = append(urn, id) // v's smoothing entry: v is now born
		// Credit v's in-degree gained from reciprocation after birth.
		urn = append(urn, recipTo...)
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	return g, err
}

// Copying generates a web-like graph by the copying model: each new node v
// picks a random prototype p among existing nodes and emits `out` links;
// with probability `copyProb` link i copies p's i-th out-link, otherwise it
// goes to a uniform random existing node. Produces power-law in-degrees,
// matching the crawled web graphs of §5.1.
//
// Pure arrival-order copying yields an acyclic graph (every link points to
// an older node), which real crawls are not: web graphs have large
// strongly connected cores, and without cycles most nodes reach only a
// handful of others, degenerating top-k proximity sets. backProb controls
// cyclicity: each new node also attracts a link FROM a random older node
// with that probability (0.3 gives SCC structure resembling crawls).
func Copying(n, out int, copyProb, backProb float64, seed int64) (*graph.Graph, error) {
	if n <= 1 || out <= 0 || copyProb < 0 || copyProb > 1 || backProb < 0 || backProb > 1 {
		return nil, fmt.Errorf("gen: bad copying parameters n=%d out=%d p=%g back=%g", n, out, copyProb, backProb)
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// adjacency of already-generated nodes, for prototype copying.
	adj := make([][]graph.NodeID, n)
	// Bootstrap: the first out+1 nodes form a ring so that no early node
	// ends up with a degenerate (< k-node) reachable set, which would
	// place it in every reverse top-k answer.
	seedCount := out + 1
	if seedCount > n {
		seedCount = n
	}
	for v := 0; v < seedCount; v++ {
		t := graph.NodeID((v + 1) % seedCount)
		b.AddEdge(graph.NodeID(v), t)
		adj[v] = []graph.NodeID{t}
	}
	for v := seedCount; v < n; v++ {
		proto := rng.Intn(v)
		// Out-degree varies around `out` (uniform in [out/2, 3out/2]):
		// constant-degree copying mass-produces pages with IDENTICAL link
		// profiles, hence exactly tied proximity vectors, which real
		// crawls do not exhibit at that rate and which put spurious mass
		// on the reverse top-k decision boundary.
		deg := out/2 + rng.Intn(out+1)
		if deg < 1 {
			deg = 1
		}
		links := make([]graph.NodeID, 0, deg)
		for e := 0; e < deg; e++ {
			var t graph.NodeID
			if rng.Float64() < copyProb && e < len(adj[proto]) {
				t = adj[proto][e]
			} else {
				t = graph.NodeID(rng.Intn(v))
			}
			b.AddEdge(graph.NodeID(v), t)
			links = append(links, t)
		}
		adj[v] = links
		if rng.Float64() < backProb {
			// An older page discovers the new one and links to it,
			// closing cycles the pure copying process cannot form.
			b.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v))
		}
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	return g, err
}

// RMAT generates a graph with 2^scale nodes and edgeFactor·2^scale edges by
// the R-MAT recursive quadrant model with probabilities a, b, c, d (which
// must sum to 1). The canonical web-like setting is a=0.57, b=0.19, c=0.19,
// d=0.05.
func RMAT(scale, edgeFactor int, a, b, c, d float64, seed int64) (*graph.Graph, error) {
	if scale <= 0 || scale > 24 || edgeFactor <= 0 {
		return nil, fmt.Errorf("gen: bad RMAT parameters scale=%d edgeFactor=%d", scale, edgeFactor)
	}
	if diff := a + b + c + d - 1; diff > 1e-9 || diff < -1e-9 {
		return nil, fmt.Errorf("gen: RMAT probabilities sum to %g, want 1", a+b+c+d)
	}
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := edgeFactor * n
	bld := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		bld.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	g, _, err := bld.Build(graph.DanglingSelfLoop)
	return g, err
}

// WebGraph generates the default web-graph analog used by the experiment
// harness: a copying-model graph with the sparsity of the paper's crawls
// (m/n ≈ 4–8) and power-law in-degree.
func WebGraph(n int, seed int64) (*graph.Graph, error) {
	return Copying(n, 5, 0.75, 0.15, seed)
}

// SocialGraph generates the social-network analog (Epinions-like): denser
// preferential attachment with partial reciprocity.
func SocialGraph(n int, seed int64) (*graph.Graph, error) {
	return PrefAttach(n, 7, 0.3, seed)
}
