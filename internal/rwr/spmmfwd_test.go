package rwr

import (
	"testing"

	"repro/internal/graph"
)

// TestProximityVectorBatchBitIdentical is the forward tier's contract:
// every column of the SpMM-batched power method — vector, iteration count
// and residual — is bit-identical to a scalar ProximityVectorParallel run,
// across graph families, batch widths {1,2,4,16} and worker counts. This
// is what lets the engine batch its exact fallbacks without perturbing a
// single membership decision or committed exact state.
func TestProximityVectorBatchBitIdentical(t *testing.T) {
	for name, g := range spmmTestViews(t) {
		t.Run(name, func(t *testing.T) {
			p := DefaultParams()
			n := g.N()
			for _, width := range spmmWidths {
				origins := make([]graph.NodeID, width)
				for j := range origins {
					origins[j] = graph.NodeID((j*53 + 1) % n)
				}
				want := make([]Result, width)
				for j, u := range origins {
					res, err := ProximityVectorParallel(g, u, p, 1)
					if err != nil {
						t.Fatal(err)
					}
					want[j] = res
				}
				for _, workers := range []int{1, 3, 8} {
					got, err := ProximityVectorBatch(g, origins, p, workers)
					if err != nil {
						t.Fatalf("width=%d workers=%d: %v", width, workers, err)
					}
					for j := range origins {
						if got[j].Iterations != want[j].Iterations {
							t.Fatalf("width=%d workers=%d col=%d: %d iterations, scalar did %d",
								width, workers, j, got[j].Iterations, want[j].Iterations)
						}
						if got[j].Residual != want[j].Residual {
							t.Fatalf("width=%d workers=%d col=%d: residual %g, scalar %g",
								width, workers, j, got[j].Residual, want[j].Residual)
						}
						for u := range got[j].Vector {
							if got[j].Vector[u] != want[j].Vector[u] {
								t.Fatalf("width=%d workers=%d col=%d: vector differs at node %d: %g vs %g",
									width, workers, j, u, got[j].Vector[u], want[j].Vector[u])
							}
						}
					}
				}
			}
		})
	}
}

// TestProximityVectorBatchMatchesSolverTolerance: the batched forward
// vectors agree with the sequential scatter-form ProximityVector to within
// the solver tolerance (the gather and scatter forms associate additions
// differently — see MulTransitionRange).
func TestProximityVectorBatchMatchesSolverTolerance(t *testing.T) {
	for name, g := range spmmTestViews(t) {
		t.Run(name, func(t *testing.T) {
			p := DefaultParams()
			origins := []graph.NodeID{0, 1, graph.NodeID(g.N() / 2)}
			got, err := ProximityVectorBatch(g, origins, p, 4)
			if err != nil {
				t.Fatal(err)
			}
			for j, u := range origins {
				want, err := ProximityVector(g, u, p)
				if err != nil {
					t.Fatal(err)
				}
				for v := range want.Vector {
					d := got[j].Vector[v] - want.Vector[v]
					if d < -1e-8 || d > 1e-8 {
						t.Fatalf("origin %d: vector differs at node %d beyond tolerance: %g vs %g",
							u, v, got[j].Vector[v], want.Vector[v])
					}
				}
			}
		})
	}
}
