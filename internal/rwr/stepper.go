package rwr

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

// ToStepper is the round-driven form of ProximityToParallel: the same PMPN
// iteration (Algorithm 2), but advanced an explicit number of iterations at
// a time, exposing the current iterate and a rigorous elementwise error
// bound between rounds. The sharded-query coordinator (internal/shard)
// drives one of these, screening candidates on every shard against the
// partial iterate after each round and stopping the iteration early once
// every shard reports its candidates decided.
//
// The error bound is the tighter of two rigorous elementwise bounds:
//
// Analytic: starting from x⁰ = e_q, iteration t holds
//
//	x^t = α·Σ_{i<t} (1−α)^i (Aᵀ)^i e_q  +  (1−α)^t (Aᵀ)^t e_q,
//
// i.e. the converged vector's first t terms plus a correction. Aᵀ is
// row-stochastic (every node has out-edges under all dangling policies), so
// each entry of (Aᵀ)^i e_q lies in [0,1] and, elementwise,
// |x^t[u] − p_u(q)| ≤ (1−α)^t.
//
// Residual-based: successive deltas contract through the iteration map,
// x^{t+i} − x^{t+i−1} = ((1−α)Aᵀ)^i (x^t − x^{t−1}), and row-stochastic Aᵀ
// never grows the L∞ norm, so summing the geometric tail gives
// |x^t[u] − p_u(q)| ≤ ‖x^t − x^{t−1}‖∞·(1−α)/α ≤ r_t·(1−α)/α with r_t the
// L1 residual. This bound collapses as soon as the iteration actually
// settles — long before the worst-case (1−α)^t does on queries whose
// in-component is small — and reaches ≈ ε·(1−α)/α at convergence.
//
//	Tail() = min((1−α)^t, r_t·(1−α)/α)
//
// Consequently x^t[u] − Tail() is a valid lower bound and x^t[u] + Tail() a
// valid upper bound on p_u(q) at every t — the quantities the coordinator's
// cross-shard pruning exchanges.
//
// Bit-identity: each iteration shards the transposed matvec over the same
// block-aligned row ranges and reduces the convergence residual at the same
// fixed block granularity as ProximityToParallel, so after Step has reported
// convergence, Result().Vector is bit-identical to what ProximityToParallel
// returns — for every worker count on both sides. A coordinator that decides
// some candidates early and the rest against the converged vector therefore
// reproduces the single-engine answer set exactly.
//
// A ToStepper is single-use and not safe for concurrent use; Current()
// aliases internal state and is only valid until the next Step.
type ToStepper struct {
	p       Params
	q       graph.NodeID
	n       int
	x, next []float64
	segs    []vecmath.Range
	partial []float64
	step    func(cur, dst []float64, r vecmath.Range)

	iters     int
	tail      float64
	residual  float64
	converged bool

	// RoundHook, when set, observes every completed iteration: it is
	// called with the iteration count so far, the current L1 residual and
	// the tail error bound. Purely observational — it must not mutate the
	// stepper — and it runs on the Step caller's goroutine, so a cheap
	// hook adds no synchronization to the iteration itself.
	RoundHook func(iter int, residual, tail float64)
}

// NewToStepper prepares a stepped PMPN run for query node q. workers bounds
// the per-iteration matvec parallelism (≤ 0 selects GOMAXPROCS); the
// computed iterates are identical for every setting.
func NewToStepper[G graph.View](g G, q graph.NodeID, p Params, workers int) (*ToStepper, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if int(q) < 0 || int(q) >= g.N() {
		return nil, fmt.Errorf("rwr: node %d out of range [0,%d)", q, g.N())
	}
	n := g.N()
	s := &ToStepper{
		p:        p,
		q:        q,
		n:        n,
		x:        make([]float64, n),
		next:     make([]float64, n),
		segs:     blockSegments(n, normWorkers(workers)),
		partial:  make([]float64, (n+residualBlock-1)/residualBlock),
		tail:     1,
		residual: math.Inf(1),
	}
	s.x[q] = 1
	oneMinus := 1 - p.Alpha
	s.step = func(cur, dst []float64, r vecmath.Range) {
		MulTransitionTRange(g, cur, dst, r.Lo, r.Hi)
		for i := r.Lo; i < r.Hi; i++ {
			dst[i] *= oneMinus
		}
		if r.Lo <= int(q) && int(q) < r.Hi {
			dst[q] += p.Alpha
		}
	}
	return s, nil
}

// Step advances up to iters further PMPN iterations (at least one), stopping
// early if the iteration converges. It reports whether the run has
// converged; exceeding Params.MaxIters without converging is an error, as in
// the one-shot solvers.
func (s *ToStepper) Step(iters int) (bool, error) {
	if s.converged {
		return true, nil
	}
	if iters < 1 {
		iters = 1
	}
	for ; iters > 0; iters-- {
		if s.iters >= s.p.MaxIters {
			return false, fmt.Errorf("rwr: did not converge within %d iterations (residual %g)", s.p.MaxIters, s.residual)
		}
		s.iterateOnce()
		s.iters++
		s.tail *= 1 - s.p.Alpha
		if s.RoundHook != nil {
			s.RoundHook(s.iters, s.residual, s.tail)
		}
		if s.residual < s.p.Eps {
			s.converged = true
			return true, nil
		}
	}
	return false, nil
}

// iterateOnce runs one sharded iteration x → next and swaps the buffers,
// reducing the residual blockwise exactly like iterateParallel.
func (s *ToStepper) iterateOnce() {
	if len(s.segs) <= 1 {
		all := vecmath.Range{Lo: 0, Hi: s.n}
		s.step(s.x, s.next, all)
		blockReduce(s.x, s.next, all, s.partial)
	} else {
		var wg sync.WaitGroup
		for _, seg := range s.segs {
			wg.Add(1)
			go func(seg vecmath.Range) {
				defer wg.Done()
				s.step(s.x, s.next, seg)
				blockReduce(s.x, s.next, seg, s.partial)
			}(seg)
		}
		wg.Wait()
	}
	var res float64
	for _, d := range s.partial {
		res += d
	}
	s.residual = res
	s.x, s.next = s.next, s.x
}

// Current returns the present iterate x^t (x^0 = e_q before the first
// Step). The slice aliases internal state: it is valid until the next Step
// and must not be modified.
func (s *ToStepper) Current() []float64 { return s.x }

// Previous returns the prior iterate x^{t−1} (nil before the first Step).
// Together with Current it yields the last step's delta δ_t = x^t − x^{t−1},
// the seed of the Monte Carlo tail-correction estimator
// (ResidualWalkEstimate): the remaining error p − x^t equals
// Σ_{j≥1} ((1−α)Aᵀ)^j δ_t exactly. The slice aliases internal state (the
// swap buffer) and is valid until the next Step.
func (s *ToStepper) Previous() []float64 {
	if s.iters == 0 {
		return nil
	}
	return s.next
}

// Tail returns the current elementwise error bound
// |x^t[u] − p_u(q)| ≤ Tail(): the tighter of the analytic (1−α)^t and the
// residual-based r_t·(1−α)/α (see the type doc). 1 before any iteration.
func (s *ToStepper) Tail() float64 {
	if s.iters == 0 {
		return 1
	}
	oneMinus := 1 - s.p.Alpha
	if resBased := s.residual * oneMinus / s.p.Alpha; resBased < s.tail {
		return resBased
	}
	return s.tail
}

// Iterations returns the number of iterations performed so far.
func (s *ToStepper) Iterations() int { return s.iters }

// Residual returns the L1 change of the last iteration (inf before any).
func (s *ToStepper) Residual() float64 { return s.residual }

// Converged reports whether the residual has dropped below Params.Eps.
func (s *ToStepper) Converged() bool { return s.converged }

// Result packages the converged vector with its diagnostics, panicking if
// the run has not converged (callers gate on Step's return).
func (s *ToStepper) Result() Result {
	if !s.converged {
		panic("rwr: ToStepper.Result before convergence")
	}
	return Result{Vector: s.x, Iterations: s.iters, Residual: s.residual}
}
