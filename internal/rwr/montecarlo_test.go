package rwr

import (
	"math"
	"math/rand"
	"testing"
)

// TestResidualWalkEstimateBand is the statistical contract of the anytime
// tier's Monte Carlo stage: after a partial PMPN run, x[u] plus the walk
// estimate must land within the Hoeffding band of the true proximity, for
// every node, across graph shapes, partial depths and seeds. The band here
// is computed at a 1e-3 failure budget per node; with fixed seeds the test
// is a deterministic regression, not a flake.
func TestResidualWalkEstimateBand(t *testing.T) {
	for _, kind := range []string{"web", "social"} {
		g := stepperGraph(t, kind, 250)
		p := DefaultParams()
		exact, err := ProximityToParallel(g, 9, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, iters := range []int{2, 6, 20} {
			s, err := NewToStepper(g, 9, p, 2)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Step(iters); err != nil {
				t.Fatal(err)
			}
			cur, prev := s.Current(), s.Previous()
			if prev == nil {
				t.Fatal("no previous iterate after stepping")
			}
			var deltaInf float64
			for i := range cur {
				if d := math.Abs(cur[i] - prev[i]); d > deltaInf {
					deltaInf = d
				}
			}
			const walks, maxLen = 768, 64
			band := ResidualWalkBand(deltaInf, maxLen, walks, p.Alpha, 1e-3)
			if band <= 0 {
				t.Fatalf("%s iters=%d: band %g not positive (deltaInf=%g)", kind, iters, band, deltaInf)
			}
			for u := 0; u < g.N(); u += 7 {
				rng := rand.New(rand.NewSource(int64(1000*iters + u)))
				est := ResidualWalkEstimate(g, int32(u), cur, prev, maxLen, walks, p.Alpha, rng)
				if diff := math.Abs(cur[u] + est - exact.Vector[u]); diff > band {
					t.Fatalf("%s iters=%d u=%d: |x+est−p| = %g exceeds band %g", kind, iters, u, diff, band)
				}
			}
		}
	}
}

// TestResidualWalkBandShape pins the band's qualitative behavior: it
// shrinks with more walks, grows as the failure budget tightens, scales
// linearly in ‖δ‖∞, and vanishes when the residual is zero.
func TestResidualWalkBandShape(t *testing.T) {
	const alpha = 0.15
	b1 := ResidualWalkBand(1e-4, 64, 256, alpha, 1e-3)
	b2 := ResidualWalkBand(1e-4, 64, 1024, alpha, 1e-3)
	if !(b2 < b1) {
		t.Errorf("band did not shrink with walks: %g !< %g", b2, b1)
	}
	b3 := ResidualWalkBand(1e-4, 64, 256, alpha, 1e-9)
	if !(b3 > b1) {
		t.Errorf("band did not grow as failure budget tightened: %g !> %g", b3, b1)
	}
	b4 := ResidualWalkBand(2e-4, 64, 256, alpha, 1e-3)
	if math.Abs(b4-2*b1) > 1e-15 {
		t.Errorf("band not linear in deltaInf: %g vs 2·%g", b4, b1)
	}
	if b := ResidualWalkBand(0, 64, 256, alpha, 1e-3); b != 0 {
		t.Errorf("zero residual gave band %g", b)
	}
	// Infinite-length walks drop the truncation term to exactly the
	// geometric-series span; finite lengths must stay below that ceiling
	// plus their truncation debt.
	long := ResidualWalkBand(1e-4, 4096, 256, alpha, 1e-3)
	if !(long < b1) {
		t.Errorf("longer walks did not reduce the truncation term: %g !< %g", long, b1)
	}
}

// TestResidualWalkEstimateDeterministic: equal seeds replay equal walks.
func TestResidualWalkEstimateDeterministic(t *testing.T) {
	g := stepperGraph(t, "web", 120)
	p := DefaultParams()
	s, err := NewToStepper(g, 3, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(4); err != nil {
		t.Fatal(err)
	}
	cur, prev := s.Current(), s.Previous()
	a := ResidualWalkEstimate(g, 5, cur, prev, 32, 128, p.Alpha, rand.New(rand.NewSource(42)))
	b := ResidualWalkEstimate(g, 5, cur, prev, 32, 128, p.Alpha, rand.New(rand.NewSource(42)))
	if a != b {
		t.Fatalf("fixed-seed estimates differ: %g vs %g", a, b)
	}
}
