package rwr

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/vecmath"
)

// workerSweep covers the interesting parallelism shapes: sequential, even
// splits, odd splits, more workers than residual blocks, and more workers
// than nodes.
var workerSweep = []int{1, 2, 3, 8, 33}

// TestProximityToParallelBitIdentical is the bit-identity contract of the
// tentpole: the sharded PMPN must return the exact same vector, iteration
// count and residual as the sequential Algorithm 2 at EVERY worker count —
// each row is accumulated in the same order, and the convergence check
// reduces over fixed blocks.
func TestProximityToParallelBitIdentical(t *testing.T) {
	g, err := gen.WebGraph(700, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	for _, q := range []graph.NodeID{0, 17, 350, 699} {
		want, err := ProximityTo(g, q, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep {
			got, err := ProximityToParallel(g, q, p, w)
			if err != nil {
				t.Fatalf("q=%d workers=%d: %v", q, w, err)
			}
			if got.Iterations != want.Iterations {
				t.Fatalf("q=%d workers=%d: %d iterations, sequential did %d", q, w, got.Iterations, want.Iterations)
			}
			for u := range got.Vector {
				if got.Vector[u] != want.Vector[u] {
					t.Fatalf("q=%d workers=%d: vector differs at node %d: %g vs %g",
						q, w, u, got.Vector[u], want.Vector[u])
				}
			}
		}
	}
}

// TestProximityVectorParallelWorkerIndependent: the gather-form forward
// power method must return identical bits for every worker count (each
// output row is owned by one worker and accumulated in in-edge order), and
// agree with the sequential scatter-based solver to solver precision.
func TestProximityVectorParallelWorkerIndependent(t *testing.T) {
	g, err := gen.SocialGraph(400, 23)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	for _, u := range []graph.NodeID{0, 123, 399} {
		base, err := ProximityVectorParallel(g, u, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerSweep[1:] {
			got, err := ProximityVectorParallel(g, u, p, w)
			if err != nil {
				t.Fatalf("u=%d workers=%d: %v", u, w, err)
			}
			if got.Iterations != base.Iterations {
				t.Fatalf("u=%d workers=%d: %d iterations, 1-worker did %d", u, w, got.Iterations, base.Iterations)
			}
			for i := range got.Vector {
				if got.Vector[i] != base.Vector[i] {
					t.Fatalf("u=%d workers=%d: vector differs at node %d", u, w, i)
				}
			}
		}
		seq, err := ProximityVector(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		if d := vecmath.MaxAbsDiff(base.Vector, seq.Vector); d > 1e-9 {
			t.Errorf("u=%d: gather vs scatter solver differ by %g", u, d)
		}
	}
}

// TestMulTransitionTRangePartition: any disjoint cover of [0,n) reproduces
// the full sweep exactly.
func TestMulTransitionTRangePartition(t *testing.T) {
	g, err := gen.WebGraph(300, 9)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, g.N())
	for i := range x {
		x[i] = 1 / float64(i+1)
	}
	want := make([]float64, g.N())
	MulTransitionT(g, x, want)
	for _, parts := range []int{1, 2, 7, 300, 1000} {
		got := make([]float64, g.N())
		for _, seg := range vecmath.Split(g.N(), parts) {
			MulTransitionTRange(g, x, got, seg.Lo, seg.Hi)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("parts=%d: row %d differs: %g vs %g", parts, i, got[i], want[i])
			}
		}
	}
}

// TestMulTransitionRangeMatchesScatter: the in-adjacency gather computes the
// same operator as the out-edge scatter, up to reassociation noise.
func TestMulTransitionRangeMatchesScatter(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		b := graph.NewBuilder(6)
		add := func(u, v graph.NodeID, w float64) {
			if weighted {
				b.AddWeightedEdge(u, v, w)
			} else {
				b.AddEdge(u, v)
			}
		}
		add(0, 1, 2)
		add(0, 2, 1)
		add(1, 2, 3)
		add(2, 0, 1)
		add(3, 0, 0.5)
		add(4, 3, 1)
		add(5, 5, 1)
		g, _, err := b.Build(graph.DanglingSelfLoop)
		if err != nil {
			t.Fatal(err)
		}
		x := []float64{0.3, 0.1, 0.25, 0.05, 0.2, 0.1}
		want := make([]float64, g.N())
		MulTransition(g, x, want)
		got := make([]float64, g.N())
		MulTransitionRange(g, x, got, 0, g.N())
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-14 {
				t.Fatalf("weighted=%t: node %d: gather %g vs scatter %g", weighted, i, got[i], want[i])
			}
		}
	}
}

// TestParallelDegenerateGraphs exercises the shapes that break naive
// sharding: a single self-looped node, graphs with (self-loop-resolved)
// dangling nodes, graphs smaller than one residual block, and worker counts
// far beyond the node count.
func TestParallelDegenerateGraphs(t *testing.T) {
	p := DefaultParams()

	t.Run("single-node", func(t *testing.T) {
		b := graph.NewBuilder(1)
		b.EnsureNode(0)
		g, _, err := b.Build(graph.DanglingSelfLoop)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4} {
			res, err := ProximityToParallel(g, 0, p, w)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.Vector[0]-1) > 1e-9 {
				t.Errorf("workers=%d: self proximity %g, want 1", w, res.Vector[0])
			}
			fwd, err := ProximityVectorParallel(g, 0, p, w)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(fwd.Vector[0]-1) > 1e-9 {
				t.Errorf("workers=%d: forward self proximity %g, want 1", w, fwd.Vector[0])
			}
		}
	})

	t.Run("dangling-nodes", func(t *testing.T) {
		// Nodes 3 and 4 are dangling; the self-loop policy pins their walks.
		b := graph.NewBuilder(5)
		b.AddEdge(0, 1)
		b.AddEdge(1, 2)
		b.AddEdge(2, 0)
		b.AddEdge(0, 3)
		b.AddEdge(1, 4)
		g, _, err := b.Build(graph.DanglingSelfLoop)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []graph.NodeID{0, 3} {
			want, err := ProximityTo(g, q, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 9} {
				got, err := ProximityToParallel(g, q, p, w)
				if err != nil {
					t.Fatal(err)
				}
				for i := range got.Vector {
					if got.Vector[i] != want.Vector[i] {
						t.Fatalf("q=%d workers=%d: node %d differs", q, w, i)
					}
				}
			}
		}
	})

	t.Run("workers-exceed-nodes", func(t *testing.T) {
		g, err := gen.WebGraph(37, 3) // far below one residual block
		if err != nil {
			t.Fatal(err)
		}
		want, err := ProximityTo(g, 5, p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ProximityToParallel(g, 5, p, 512)
		if err != nil {
			t.Fatal(err)
		}
		if got.Iterations != want.Iterations {
			t.Fatalf("iterations %d vs %d", got.Iterations, want.Iterations)
		}
		for i := range got.Vector {
			if got.Vector[i] != want.Vector[i] {
				t.Fatalf("node %d differs", i)
			}
		}
	})
}

// TestBlockSegments pins the invariants the parallel driver relies on:
// segments are block-aligned, contiguous, non-empty, and cover [0, n).
func TestBlockSegments(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{1, 1}, {1, 8}, {255, 4}, {256, 4}, {257, 4}, {1024, 3}, {5000, 16}, {100000, 7},
	} {
		segs := blockSegments(tc.n, tc.workers)
		if len(segs) == 0 {
			t.Fatalf("n=%d workers=%d: no segments", tc.n, tc.workers)
		}
		prev := 0
		for i, s := range segs {
			if s.Lo != prev || s.Hi <= s.Lo {
				t.Fatalf("n=%d workers=%d: bad segment %d: %+v", tc.n, tc.workers, i, s)
			}
			if s.Lo%residualBlock != 0 {
				t.Fatalf("n=%d workers=%d: segment %d not block-aligned: %+v", tc.n, tc.workers, i, s)
			}
			prev = s.Hi
		}
		if prev != tc.n {
			t.Fatalf("n=%d workers=%d: segments cover [0,%d), want [0,%d)", tc.n, tc.workers, prev, tc.n)
		}
		if len(segs) > tc.workers {
			t.Fatalf("n=%d workers=%d: %d segments exceed worker count", tc.n, tc.workers, len(segs))
		}
	}
}
