package rwr

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// MaxMatrixNodes bounds the size of graphs for which ProximityMatrix will
// materialize the full n×n dense matrix. 46341² float64 ≈ 16GB; we stay far
// below that. Brute-force baselines only ever run on small graphs.
const MaxMatrixNodes = 20000

// ProximityMatrix computes the entire proximity matrix P column by column
// with the power method, parallelized over columns. Column u of the result
// is p_u. This is the heart of the brute-force baselines of §3 and Fig. 8
// and is deliberately expensive: O(n·m) per full build.
//
// workers ≤ 0 selects GOMAXPROCS.
func ProximityMatrix[G graph.View](g G, p Params, workers int) ([][]float64, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := g.N()
	if n > MaxMatrixNodes {
		return nil, fmt.Errorf("rwr: refusing to materialize %d×%d proximity matrix (limit %d nodes)", n, n, MaxMatrixNodes)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cols := make([][]float64, n)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	jobs := make(chan graph.NodeID)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range jobs {
				res, err := ProximityVector(g, u, p)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("rwr: column %d: %w", u, err)
					}
					mu.Unlock()
					continue
				}
				cols[u] = res.Vector
			}
		}()
	}
	for u := 0; u < n; u++ {
		jobs <- graph.NodeID(u)
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return cols, nil
}

// MatrixRow extracts row q of a column-major proximity matrix: the
// proximities from every node to q. Used in tests to cross-check PMPN
// (Theorem 2) against the direct definition.
func MatrixRow(cols [][]float64, q graph.NodeID) []float64 {
	row := make([]float64, len(cols))
	for u, col := range cols {
		row[u] = col[q]
	}
	return row
}
