package rwr

import (
	"repro/internal/graph"
)

// This file holds the concrete matvec loop bodies behind the generic
// transition operators. The exported kernels (MulTransition and friends)
// are generic over graph.View so every consumer — engines, the index
// builder, the maintenance pipeline — runs on a base CSR or an Overlay
// unchanged; but generic method calls on pointer-shaped type parameters go
// through a dictionary and defeat inlining, so the exported entry points
// type-switch to these devirtualized loops for the two in-tree view types.
// Each loop accumulates in exactly the same neighbor order, so CSR,
// overlay and generic paths produce bit-identical vectors.
//
// Normalization multiplies by the inverse out-weight instead of dividing:
// the CSR and Overlay precompute 1/TotalOutWeight at build/Apply time
// (rejecting subnormal weights, so the inverse is always finite — no NaN
// can enter a column), and the generic fallback computes the same exactly
// rounded 1/TotalOutWeight(u) inline, keeping all paths bit-identical.

func mulTransitionTRangeCSR(g *graph.Graph, x, dst []float64, lo, hi int) {
	for u := graph.NodeID(lo); int(u) < hi; u++ {
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		var acc float64
		if ws == nil {
			for _, v := range nbrs {
				acc += x[v]
			}
		} else {
			for i, v := range nbrs {
				acc += ws[i] * x[v]
			}
		}
		dst[u] = acc * g.InvTotalOutWeight(u)
	}
}

func mulTransitionTRangeOverlay(g *graph.Overlay, x, dst []float64, lo, hi int) {
	for u := graph.NodeID(lo); int(u) < hi; u++ {
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		var acc float64
		if ws == nil {
			for _, v := range nbrs {
				acc += x[v]
			}
		} else {
			for i, v := range nbrs {
				acc += ws[i] * x[v]
			}
		}
		dst[u] = acc * g.InvTotalOutWeight(u)
	}
}

func mulTransitionTRangeGeneric[G graph.View](g G, x, dst []float64, lo, hi int) {
	for u := graph.NodeID(lo); int(u) < hi; u++ {
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		var acc float64
		if ws == nil {
			for _, v := range nbrs {
				acc += x[v]
			}
		} else {
			for i, v := range nbrs {
				acc += ws[i] * x[v]
			}
		}
		dst[u] = acc * (1 / g.TotalOutWeight(u))
	}
}

func mulTransitionRangeCSR(g *graph.Graph, x, dst []float64, lo, hi int) {
	for v := graph.NodeID(lo); int(v) < hi; v++ {
		nbrs := g.InNeighbors(v)
		ws := g.InWeightsOf(v)
		var acc float64
		if ws == nil {
			for _, u := range nbrs {
				acc += x[u] * g.InvTotalOutWeight(u)
			}
		} else {
			for i, u := range nbrs {
				acc += ws[i] * (x[u] * g.InvTotalOutWeight(u))
			}
		}
		dst[v] = acc
	}
}

func mulTransitionRangeOverlay(g *graph.Overlay, x, dst []float64, lo, hi int) {
	for v := graph.NodeID(lo); int(v) < hi; v++ {
		nbrs := g.InNeighbors(v)
		ws := g.InWeightsOf(v)
		var acc float64
		if ws == nil {
			for _, u := range nbrs {
				acc += x[u] * g.InvTotalOutWeight(u)
			}
		} else {
			for i, u := range nbrs {
				acc += ws[i] * (x[u] * g.InvTotalOutWeight(u))
			}
		}
		dst[v] = acc
	}
}

func mulTransitionRangeGeneric[G graph.View](g G, x, dst []float64, lo, hi int) {
	for v := graph.NodeID(lo); int(v) < hi; v++ {
		nbrs := g.InNeighbors(v)
		ws := g.InWeightsOf(v)
		var acc float64
		if ws == nil {
			for _, u := range nbrs {
				acc += x[u] * (1 / g.TotalOutWeight(u))
			}
		} else {
			for i, u := range nbrs {
				acc += ws[i] * (x[u] * (1 / g.TotalOutWeight(u)))
			}
		}
		dst[v] = acc
	}
}

func mulTransitionCSR(g *graph.Graph, x, dst []float64) {
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		base := x[u]
		if base == 0 {
			continue
		}
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		if ws == nil {
			share := base * g.InvTotalOutWeight(u)
			for _, v := range nbrs {
				dst[v] += share
			}
		} else {
			inv := base * g.InvTotalOutWeight(u)
			for i, v := range nbrs {
				dst[v] += inv * ws[i]
			}
		}
	}
}

func mulTransitionOverlay(g *graph.Overlay, x, dst []float64) {
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		base := x[u]
		if base == 0 {
			continue
		}
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		if ws == nil {
			share := base * g.InvTotalOutWeight(u)
			for _, v := range nbrs {
				dst[v] += share
			}
		} else {
			inv := base * g.InvTotalOutWeight(u)
			for i, v := range nbrs {
				dst[v] += inv * ws[i]
			}
		}
	}
}

func mulTransitionGeneric[G graph.View](g G, x, dst []float64) {
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		base := x[u]
		if base == 0 {
			continue
		}
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		if ws == nil {
			share := base * (1 / g.TotalOutWeight(u))
			for _, v := range nbrs {
				dst[v] += share
			}
		} else {
			inv := base * (1 / g.TotalOutWeight(u))
			for i, v := range nbrs {
				dst[v] += inv * ws[i]
			}
		}
	}
}
