package rwr

import (
	"repro/internal/graph"
)

// This file holds the concrete matvec loop bodies behind the generic
// transition operators. The exported kernels (MulTransition and friends)
// are generic over graph.View so every consumer — engines, the index
// builder, the maintenance pipeline — runs on a base CSR or an Overlay
// unchanged; but generic method calls on pointer-shaped type parameters go
// through a dictionary and defeat inlining, so the exported entry points
// type-switch to these devirtualized loops for the two in-tree view types.
// Each loop accumulates in exactly the same neighbor order, so CSR,
// overlay and generic paths produce bit-identical vectors.

func mulTransitionTRangeCSR(g *graph.Graph, x, dst []float64, lo, hi int) {
	for u := graph.NodeID(lo); int(u) < hi; u++ {
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		var acc float64
		if ws == nil {
			for _, v := range nbrs {
				acc += x[v]
			}
			acc /= float64(len(nbrs))
		} else {
			for i, v := range nbrs {
				acc += ws[i] * x[v]
			}
			acc /= g.TotalOutWeight(u)
		}
		dst[u] = acc
	}
}

func mulTransitionTRangeOverlay(g *graph.Overlay, x, dst []float64, lo, hi int) {
	for u := graph.NodeID(lo); int(u) < hi; u++ {
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		var acc float64
		if ws == nil {
			for _, v := range nbrs {
				acc += x[v]
			}
			acc /= float64(len(nbrs))
		} else {
			for i, v := range nbrs {
				acc += ws[i] * x[v]
			}
			acc /= g.TotalOutWeight(u)
		}
		dst[u] = acc
	}
}

func mulTransitionTRangeGeneric[G graph.View](g G, x, dst []float64, lo, hi int) {
	for u := graph.NodeID(lo); int(u) < hi; u++ {
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		var acc float64
		if ws == nil {
			for _, v := range nbrs {
				acc += x[v]
			}
			acc /= float64(len(nbrs))
		} else {
			for i, v := range nbrs {
				acc += ws[i] * x[v]
			}
			acc /= g.TotalOutWeight(u)
		}
		dst[u] = acc
	}
}

func mulTransitionRangeCSR(g *graph.Graph, x, dst []float64, lo, hi int) {
	for v := graph.NodeID(lo); int(v) < hi; v++ {
		nbrs := g.InNeighbors(v)
		ws := g.InWeightsOf(v)
		var acc float64
		if ws == nil {
			for _, u := range nbrs {
				acc += x[u] / g.TotalOutWeight(u)
			}
		} else {
			for i, u := range nbrs {
				acc += ws[i] * x[u] / g.TotalOutWeight(u)
			}
		}
		dst[v] = acc
	}
}

func mulTransitionRangeOverlay(g *graph.Overlay, x, dst []float64, lo, hi int) {
	for v := graph.NodeID(lo); int(v) < hi; v++ {
		nbrs := g.InNeighbors(v)
		ws := g.InWeightsOf(v)
		var acc float64
		if ws == nil {
			for _, u := range nbrs {
				acc += x[u] / g.TotalOutWeight(u)
			}
		} else {
			for i, u := range nbrs {
				acc += ws[i] * x[u] / g.TotalOutWeight(u)
			}
		}
		dst[v] = acc
	}
}

func mulTransitionRangeGeneric[G graph.View](g G, x, dst []float64, lo, hi int) {
	for v := graph.NodeID(lo); int(v) < hi; v++ {
		nbrs := g.InNeighbors(v)
		ws := g.InWeightsOf(v)
		var acc float64
		if ws == nil {
			for _, u := range nbrs {
				acc += x[u] / g.TotalOutWeight(u)
			}
		} else {
			for i, u := range nbrs {
				acc += ws[i] * x[u] / g.TotalOutWeight(u)
			}
		}
		dst[v] = acc
	}
}

func mulTransitionCSR(g *graph.Graph, x, dst []float64) {
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		base := x[u]
		if base == 0 {
			continue
		}
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		if ws == nil {
			share := base / float64(len(nbrs))
			for _, v := range nbrs {
				dst[v] += share
			}
		} else {
			inv := base / g.TotalOutWeight(u)
			for i, v := range nbrs {
				dst[v] += inv * ws[i]
			}
		}
	}
}

func mulTransitionOverlay(g *graph.Overlay, x, dst []float64) {
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		base := x[u]
		if base == 0 {
			continue
		}
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		if ws == nil {
			share := base / float64(len(nbrs))
			for _, v := range nbrs {
				dst[v] += share
			}
		} else {
			inv := base / g.TotalOutWeight(u)
			for i, v := range nbrs {
				dst[v] += inv * ws[i]
			}
		}
	}
}

func mulTransitionGeneric[G graph.View](g G, x, dst []float64) {
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		base := x[u]
		if base == 0 {
			continue
		}
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		if ws == nil {
			share := base / float64(len(nbrs))
			for _, v := range nbrs {
				dst[v] += share
			}
		} else {
			inv := base / g.TotalOutWeight(u)
			for i, v := range nbrs {
				dst[v] += inv * ws[i]
			}
		}
	}
}
