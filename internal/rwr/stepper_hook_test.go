package rwr

import "testing"

// TestStepperRoundHook verifies the per-iteration observation hook: it
// must fire once per iteration with strictly ascending counts and a
// non-increasing tail bound, end exactly at Iterations(), and leave the
// computed vector untouched.
func TestStepperRoundHook(t *testing.T) {
	g := stepperGraph(t, "web", 300)
	p := DefaultParams()
	want, err := ProximityToParallel(g, 3, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewToStepper(g, 3, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	var iters []int
	lastTail := 2.0
	s.RoundHook = func(iter int, residual, tail float64) {
		iters = append(iters, iter)
		if tail > lastTail {
			t.Fatalf("iter %d: tail %g grew from %g", iter, tail, lastTail)
		}
		lastTail = tail
		if residual < 0 {
			t.Fatalf("iter %d: negative residual %g", iter, residual)
		}
	}
	for done := false; !done; {
		done, err = s.Step(7)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(iters) != s.Iterations() {
		t.Fatalf("hook fired %d times, stepper ran %d iterations", len(iters), s.Iterations())
	}
	for i, it := range iters {
		if it != i+1 {
			t.Fatalf("hook observation %d reported iter %d, want %d", i, it, i+1)
		}
	}
	got := s.Result()
	if got.Iterations != want.Iterations {
		t.Fatalf("hooked run took %d iterations, plain run %d", got.Iterations, want.Iterations)
	}
	for u := range want.Vector {
		if got.Vector[u] != want.Vector[u] {
			t.Fatalf("hook changed the iterate at %d: %g != %g", u, got.Vector[u], want.Vector[u])
		}
	}
}
