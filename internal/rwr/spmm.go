package rwr

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

// Multi-query SpMM tier of the PMPN power iteration: B concurrent queries'
// iterates live in one dense node-major slab (column j of query j at
// x[u*w+j]) and every round runs ONE sweep of the transition matrix over
// all of them, amortizing the CSR's memory traffic B ways — the serving
// bottleneck at production traffic, where each scalar query streams the
// whole matrix from RAM by itself.
//
// Bit-identity contract: per column, every floating-point operation — the
// neighbor-order accumulation, the multiply by the precomputed inverse
// normalizer, the (1−α) scale, the restart add, and the block-order
// residual reduction at residualBlock granularity — is the same operation
// sequence as ProximityToParallel, so each query's vector, residual and
// iteration count are bit-identical to a scalar run at any worker count
// and any batch width. A column that converges retires from the slab
// immediately (the survivors repack to a narrower stride) without
// stalling the rest of the batch.

// spmmTransitionTRangeCSR computes dst[u*w+j] = (Aᵀ·x_j)(u) for u ∈
// [lo, hi) and all w columns, accumulating each column in the same
// neighbor order as the scalar mulTransitionTRangeCSR.
func spmmTransitionTRangeCSR(g *graph.Graph, x, dst []float64, w, lo, hi int) {
	for u := lo; u < hi; u++ {
		nbrs := g.OutNeighbors(graph.NodeID(u))
		ws := g.OutWeightsOf(graph.NodeID(u))
		row := dst[u*w : u*w+w]
		for j := range row {
			row[j] = 0
		}
		if ws == nil {
			for _, v := range nbrs {
				xr := x[int(v)*w : int(v)*w+w]
				for j, xv := range xr {
					row[j] += xv
				}
			}
		} else {
			for i, v := range nbrs {
				wi := ws[i]
				xr := x[int(v)*w : int(v)*w+w]
				for j, xv := range xr {
					row[j] += wi * xv
				}
			}
		}
		inv := g.InvTotalOutWeight(graph.NodeID(u))
		for j := range row {
			row[j] *= inv
		}
	}
}

func spmmTransitionTRangeOverlay(g *graph.Overlay, x, dst []float64, w, lo, hi int) {
	for u := lo; u < hi; u++ {
		nbrs := g.OutNeighbors(graph.NodeID(u))
		ws := g.OutWeightsOf(graph.NodeID(u))
		row := dst[u*w : u*w+w]
		for j := range row {
			row[j] = 0
		}
		if ws == nil {
			for _, v := range nbrs {
				xr := x[int(v)*w : int(v)*w+w]
				for j, xv := range xr {
					row[j] += xv
				}
			}
		} else {
			for i, v := range nbrs {
				wi := ws[i]
				xr := x[int(v)*w : int(v)*w+w]
				for j, xv := range xr {
					row[j] += wi * xv
				}
			}
		}
		inv := g.InvTotalOutWeight(graph.NodeID(u))
		for j := range row {
			row[j] *= inv
		}
	}
}

func spmmTransitionTRangeGeneric[G graph.View](g G, x, dst []float64, w, lo, hi int) {
	for u := lo; u < hi; u++ {
		nbrs := g.OutNeighbors(graph.NodeID(u))
		ws := g.OutWeightsOf(graph.NodeID(u))
		row := dst[u*w : u*w+w]
		for j := range row {
			row[j] = 0
		}
		if ws == nil {
			for _, v := range nbrs {
				xr := x[int(v)*w : int(v)*w+w]
				for j, xv := range xr {
					row[j] += xv
				}
			}
		} else {
			for i, v := range nbrs {
				wi := ws[i]
				xr := x[int(v)*w : int(v)*w+w]
				for j, xv := range xr {
					row[j] += wi * xv
				}
			}
		}
		inv := 1 / g.TotalOutWeight(graph.NodeID(u))
		for j := range row {
			row[j] *= inv
		}
	}
}

// spmmTransitionTRange dispatches to the devirtualized loop for the two
// in-tree view types (mirroring MulTransitionTRange).
func spmmTransitionTRange[G graph.View](g G, x, dst []float64, w, lo, hi int) {
	switch cg := any(g).(type) {
	case *graph.Graph:
		spmmTransitionTRangeCSR(cg, x, dst, w, lo, hi)
	case *graph.Overlay:
		spmmTransitionTRangeOverlay(cg, x, dst, w, lo, hi)
	default:
		spmmTransitionTRangeGeneric(g, x, dst, w, lo, hi)
	}
}

// batchColumn tracks one live column of the slab.
type batchColumn struct {
	idx int          // caller's position in the queries slice
	q   graph.NodeID // restart node
}

// ProximityToBatchFunc runs the SpMM-batched PMPN iteration for all queries
// at once and invokes retire(i, res, err) — on the coordinating goroutine,
// between iterations — as each query's column converges (err == nil) or
// the iteration cap is hit (err != nil, matching ProximityToParallel's
// non-convergence error). Each retired Result is bit-identical to
// ProximityToParallel(g, queries[i], p, workers) — vector, residual and
// iteration count — and converged columns leave the slab without stalling
// the survivors. Validation failures return an error before any retire
// call.
func ProximityToBatchFunc[G graph.View](g G, queries []graph.NodeID, p Params, workers int, retire func(i int, res Result, err error)) error {
	return spmmBatch(g, queries, p, workers, spmmTransitionTRange[G], retire)
}

// spmmBatch is the shared slab driver behind ProximityToBatchFunc (the
// transposed PMPN iteration) and ProximityVectorBatchFunc (the forward
// power method, spmmfwd.go). Both iterations have the same shape —
// x ← (1−α)·M·x + α·e_origin with an L1 stopping rule — and differ only in
// the batched matvec kern, which must fill dst rows [lo, hi) of the
// node-major slab from x at the given column stride. Everything else (slab
// layout, restart add, blocked residual reduction, per-column retirement
// and repacking) is identical, so both entry points inherit the same
// bit-identity and worker-independence guarantees from one body.
func spmmBatch[G graph.View](g G, origins []graph.NodeID, p Params, workers int, kern func(g G, x, dst []float64, w, lo, hi int), retire func(i int, res Result, err error)) error {
	if err := p.Validate(); err != nil {
		return err
	}
	n := g.N()
	for _, q := range origins {
		if int(q) < 0 || int(q) >= n {
			return fmt.Errorf("rwr: node %d out of range [0,%d)", q, n)
		}
	}
	if len(origins) == 0 {
		return nil
	}
	workers = normWorkers(workers)

	w := len(origins)
	x := make([]float64, n*w)
	next := make([]float64, n*w)
	cols := make([]batchColumn, w)
	for j, q := range origins {
		cols[j] = batchColumn{idx: j, q: q}
		x[int(q)*w+j] = 1
	}
	nblocks := (n + residualBlock - 1) / residualBlock
	partial := make([]float64, nblocks*w)
	colRes := make([]float64, w)
	oneMinus := 1 - p.Alpha

	// Shared per-iteration state, published to the persistent workers by
	// the start-channel sends (iterateParallel's protocol).
	var cur, dst []float64
	width := w
	segs := blockSegments(n, workers)

	// runSeg is one worker's share of one iteration: the batched matvec for
	// seg's rows, the (1−α) scale, the per-column restart add, and the
	// per-(block, column) L1 residual partials (ascending row order within
	// a block — vecmath.L1DiffRange's order per column). partial is indexed
	// [block*width + j].
	runSeg := func(seg vecmath.Range) {
		kern(g, cur, dst, width, seg.Lo, seg.Hi)
		for i := seg.Lo * width; i < seg.Hi*width; i++ {
			dst[i] *= oneMinus
		}
		for j := 0; j < width; j++ {
			if q := int(cols[j].q); seg.Lo <= q && q < seg.Hi {
				dst[q*width+j] += p.Alpha
			}
		}
		for blo := seg.Lo; blo < seg.Hi; blo += residualBlock {
			bhi := blo + residualBlock
			if bhi > seg.Hi {
				bhi = seg.Hi
			}
			prow := partial[(blo/residualBlock)*width : (blo/residualBlock)*width+width]
			for j := range prow {
				prow[j] = 0
			}
			for i := blo; i < bhi; i++ {
				base := i * width
				for j := 0; j < width; j++ {
					prow[j] += math.Abs(cur[base+j] - dst[base+j])
				}
			}
		}
	}

	var start []chan struct{}
	var done chan struct{}
	if len(segs) > 1 {
		start = make([]chan struct{}, len(segs))
		for i := range start {
			start[i] = make(chan struct{})
		}
		done = make(chan struct{}, len(segs))
		for i, seg := range segs {
			go func(i int, seg vecmath.Range) {
				for range start[i] {
					runSeg(seg)
					done <- struct{}{}
				}
			}(i, seg)
		}
		defer func() {
			for _, ch := range start {
				close(ch)
			}
		}()
	}

	for t := 1; t <= p.MaxIters; t++ {
		cur, dst = x, next
		if len(segs) > 1 {
			for _, ch := range start {
				ch <- struct{}{}
			}
			for range segs {
				<-done
			}
		} else {
			runSeg(segs[0])
		}
		x, next = next, x // x now holds this iteration's output

		// Per-column residual, summed in ascending block order — the same
		// reduction order as the scalar path's reduce().
		for j := 0; j < width; j++ {
			var s float64
			for b := 0; b < nblocks; b++ {
				s += partial[b*width+j]
			}
			colRes[j] = s
		}

		retiring := 0
		for j := 0; j < width; j++ {
			if colRes[j] < p.Eps {
				retiring++
			}
		}
		if retiring == 0 {
			continue
		}
		keep := make([]int, 0, width-retiring)
		for j := 0; j < width; j++ {
			c := cols[j]
			if colRes[j] < p.Eps {
				vec := make([]float64, n)
				for i := 0; i < n; i++ {
					vec[i] = x[i*width+j]
				}
				retire(c.idx, Result{Vector: vec, Iterations: t, Residual: colRes[j]}, nil)
			} else {
				keep = append(keep, j)
			}
		}
		if len(keep) == 0 {
			return nil
		}
		// Repack the survivors to the narrower stride, in place. next's
		// contents are dead (every dst row is rewritten from scratch each
		// iteration), so only x needs the data moved.
		repackSlab(x, n, width, keep)
		for jj, j := range keep {
			cols[jj] = cols[j]
			colRes[jj] = colRes[j]
		}
		width = len(keep)
		cols = cols[:width]
		x = x[:n*width]
		next = next[:n*width]
	}

	// Iteration cap hit: the survivors fail exactly like the scalar path
	// (Iterations counts the cap overrun the same way iterate does).
	for j := 0; j < width; j++ {
		vec := make([]float64, n)
		for i := 0; i < n; i++ {
			vec[i] = x[i*width+j]
		}
		retire(cols[j].idx,
			Result{Vector: vec, Iterations: p.MaxIters + 1, Residual: colRes[j]},
			fmt.Errorf("rwr: did not converge within %d iterations (residual %g)", p.MaxIters, colRes[j]))
	}
	return nil
}

// ProximityToBatch is the collect-everything form of ProximityToBatchFunc:
// results[i] is bit-identical to ProximityToParallel(g, queries[i], p,
// workers). The returned error is a validation failure (no results) or the
// first per-column non-convergence (results still filled).
func ProximityToBatch[G graph.View](g G, queries []graph.NodeID, p Params, workers int) ([]Result, error) {
	results := make([]Result, len(queries))
	var colErr error
	if err := ProximityToBatchFunc(g, queries, p, workers, func(i int, res Result, err error) {
		results[i] = res
		if err != nil && colErr == nil {
			colErr = err
		}
	}); err != nil {
		return nil, err
	}
	return results, colErr
}

// repackSlab compacts the kept columns of an n×w node-major slab to stride
// len(keep), in place. keep must be ascending; every destination index is
// ≤ its source index, so a single forward pass never clobbers unread data.
func repackSlab(s []float64, n, w int, keep []int) {
	w2 := len(keep)
	for u := 0; u < n; u++ {
		src := u * w
		dstBase := u * w2
		for jj, j := range keep {
			s[dstBase+jj] = s[src+j]
		}
	}
}
