package rwr

import (
	"repro/internal/graph"
)

// Forward (gather-form) SpMM tier: B power-method columns — one per origin
// node, each the proximity vector p_u of ProximityVectorParallel — advance
// together in one node-major slab, sharing every in-adjacency traversal.
// This is the engine's exact-fallback batcher: a query whose refinement
// budget leaves several candidates undecided resolves them all with one
// slab sweep instead of streaming the CSR once per candidate.
//
// The kernels mirror mulTransitionRangeCSR/Overlay/Generic: each output
// row v gathers over v's in-neighbors in the same order, multiplying by
// the same (precomputed or inline-computed) inverse normalizer, so every
// column is bit-identical to its scalar run at any batch width and worker
// count.

// spmmTransitionRangeCSR computes dst[v*w+j] = (A·x_j)(v) for v ∈ [lo, hi)
// and all w columns, accumulating each column in the same in-neighbor
// order as the scalar mulTransitionRangeCSR.
func spmmTransitionRangeCSR(g *graph.Graph, x, dst []float64, w, lo, hi int) {
	for v := lo; v < hi; v++ {
		nbrs := g.InNeighbors(graph.NodeID(v))
		ws := g.InWeightsOf(graph.NodeID(v))
		row := dst[v*w : v*w+w]
		for j := range row {
			row[j] = 0
		}
		if ws == nil {
			for _, u := range nbrs {
				inv := g.InvTotalOutWeight(u)
				xr := x[int(u)*w : int(u)*w+w]
				for j, xv := range xr {
					row[j] += xv * inv
				}
			}
		} else {
			for i, u := range nbrs {
				wi := ws[i]
				inv := g.InvTotalOutWeight(u)
				xr := x[int(u)*w : int(u)*w+w]
				for j, xv := range xr {
					row[j] += wi * (xv * inv)
				}
			}
		}
	}
}

func spmmTransitionRangeOverlay(g *graph.Overlay, x, dst []float64, w, lo, hi int) {
	for v := lo; v < hi; v++ {
		nbrs := g.InNeighbors(graph.NodeID(v))
		ws := g.InWeightsOf(graph.NodeID(v))
		row := dst[v*w : v*w+w]
		for j := range row {
			row[j] = 0
		}
		if ws == nil {
			for _, u := range nbrs {
				inv := g.InvTotalOutWeight(u)
				xr := x[int(u)*w : int(u)*w+w]
				for j, xv := range xr {
					row[j] += xv * inv
				}
			}
		} else {
			for i, u := range nbrs {
				wi := ws[i]
				inv := g.InvTotalOutWeight(u)
				xr := x[int(u)*w : int(u)*w+w]
				for j, xv := range xr {
					row[j] += wi * (xv * inv)
				}
			}
		}
	}
}

func spmmTransitionRangeGeneric[G graph.View](g G, x, dst []float64, w, lo, hi int) {
	for v := lo; v < hi; v++ {
		nbrs := g.InNeighbors(graph.NodeID(v))
		ws := g.InWeightsOf(graph.NodeID(v))
		row := dst[v*w : v*w+w]
		for j := range row {
			row[j] = 0
		}
		if ws == nil {
			for _, u := range nbrs {
				inv := 1 / g.TotalOutWeight(u)
				xr := x[int(u)*w : int(u)*w+w]
				for j, xv := range xr {
					row[j] += xv * inv
				}
			}
		} else {
			for i, u := range nbrs {
				wi := ws[i]
				inv := 1 / g.TotalOutWeight(u)
				xr := x[int(u)*w : int(u)*w+w]
				for j, xv := range xr {
					row[j] += wi * (xv * inv)
				}
			}
		}
	}
}

// spmmTransitionRange dispatches to the devirtualized loop for the two
// in-tree view types (mirroring MulTransitionRange).
func spmmTransitionRange[G graph.View](g G, x, dst []float64, w, lo, hi int) {
	switch cg := any(g).(type) {
	case *graph.Graph:
		spmmTransitionRangeCSR(cg, x, dst, w, lo, hi)
	case *graph.Overlay:
		spmmTransitionRangeOverlay(cg, x, dst, w, lo, hi)
	default:
		spmmTransitionRangeGeneric(g, x, dst, w, lo, hi)
	}
}

// ProximityVectorBatchFunc runs the SpMM-batched forward power method for
// all origins at once and invokes retire(i, res, err) — on the
// coordinating goroutine, between iterations — as each origin's column
// converges (err == nil) or the iteration cap is hit (err != nil). Each
// retired Result is bit-identical to ProximityVectorParallel(g,
// origins[i], p, workers) — vector, residual and iteration count — at any
// batch width and worker count, and converged columns leave the slab
// without stalling the survivors. Validation failures return an error
// before any retire call.
func ProximityVectorBatchFunc[G graph.View](g G, origins []graph.NodeID, p Params, workers int, retire func(i int, res Result, err error)) error {
	return spmmBatch(g, origins, p, workers, spmmTransitionRange[G], retire)
}

// ProximityVectorBatch is the collect-everything form of
// ProximityVectorBatchFunc: results[i] is bit-identical to
// ProximityVectorParallel(g, origins[i], p, workers). The returned error
// is a validation failure (no results) or the first per-column
// non-convergence (results still filled).
func ProximityVectorBatch[G graph.View](g G, origins []graph.NodeID, p Params, workers int) ([]Result, error) {
	results := make([]Result, len(origins))
	var colErr error
	if err := ProximityVectorBatchFunc(g, origins, p, workers, func(i int, res Result, err error) {
		results[i] = res
		if err != nil && colErr == nil {
			colErr = err
		}
	}); err != nil {
		return nil, err
	}
	return results, colErr
}
