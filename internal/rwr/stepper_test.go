package rwr

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestStepperMatchesOneShot drives the stepper in uneven rounds and checks
// the converged vector, iteration count and residual are bit-identical to
// ProximityToParallel across worker counts.
func TestStepperMatchesOneShot(t *testing.T) {
	for _, kind := range []string{"web", "social"} {
		g := stepperGraph(t, kind, 400)
		p := DefaultParams()
		want, err := ProximityToParallel(g, 7, p, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 5} {
			s, err := NewToStepper(g, 7, p, workers)
			if err != nil {
				t.Fatal(err)
			}
			done := false
			for round := 1; !done; round++ {
				done, err = s.Step(round) // deliberately uneven round sizes
				if err != nil {
					t.Fatalf("%s workers=%d: %v", kind, workers, err)
				}
			}
			got := s.Result()
			if got.Iterations != want.Iterations {
				t.Errorf("%s workers=%d: %d iterations, one-shot took %d", kind, workers, got.Iterations, want.Iterations)
			}
			if got.Residual != want.Residual {
				t.Errorf("%s workers=%d: residual %g != %g", kind, workers, got.Residual, want.Residual)
			}
			for u := range want.Vector {
				if got.Vector[u] != want.Vector[u] {
					t.Fatalf("%s workers=%d: vector differs at %d: %g != %g", kind, workers, u, got.Vector[u], want.Vector[u])
				}
			}
		}
	}
}

// TestStepperTailBound verifies the elementwise error bound the coordinator
// prunes with: at every intermediate round, |x^t[u] − p_u(q)| ≤ Tail().
func TestStepperTailBound(t *testing.T) {
	g := stepperGraph(t, "web", 300)
	p := DefaultParams()
	exact, err := ProximityToParallel(g, 11, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewToStepper(g, 11, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for !s.Converged() {
		if _, err := s.Step(5); err != nil {
			t.Fatal(err)
		}
		tau := s.Tail()
		// Tail is the min of the analytic and residual-based bounds, so it
		// can never exceed the analytic one.
		if analytic := math.Pow(1-p.Alpha, float64(s.Iterations())); tau > analytic+1e-18 {
			t.Fatalf("tail %g above analytic bound %g at iteration %d", tau, analytic, s.Iterations())
		}
		x := s.Current()
		for u := range exact.Vector {
			if diff := math.Abs(x[u] - exact.Vector[u]); diff > tau+1e-15 {
				t.Fatalf("iteration %d: |x[%d]−p| = %g exceeds tail bound %g", s.Iterations(), u, diff, tau)
			}
		}
	}
}

func TestStepperErrors(t *testing.T) {
	g := stepperGraph(t, "web", 50)
	if _, err := NewToStepper(g, -1, DefaultParams(), 1); err == nil {
		t.Error("negative query node accepted")
	}
	if _, err := NewToStepper(g, 0, Params{}, 1); err == nil {
		t.Error("invalid params accepted")
	}
	p := DefaultParams()
	p.MaxIters = 2
	p.Eps = 1e-300
	s, err := NewToStepper(g, 0, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(10); err == nil {
		t.Error("MaxIters exhaustion not reported")
	}
}

func stepperGraph(t *testing.T, kind string, n int) *graph.Graph {
	t.Helper()
	var (
		g   *graph.Graph
		err error
	)
	switch kind {
	case "web":
		g, err = gen.WebGraph(n, 5)
	default:
		g, err = gen.SocialGraph(n, 5)
	}
	if err != nil {
		t.Fatal(err)
	}
	return g
}
