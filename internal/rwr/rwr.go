// Package rwr implements the random-walk-with-restart proximity machinery of
// the paper: the transition operator of §2.1 (never materialized as a
// matrix), the iterative Power Method for a node's proximity vector p_u
// (Eq. 1/12), the transposed power method PMPN of Algorithm 2 / Theorem 2
// for the proximities from all nodes TO a query node, full proximity-matrix
// construction for brute-force baselines, PageRank, and the Monte Carlo
// estimators discussed in §6. ProximityToBatch/ProximityToBatchFunc are the
// multi-query SpMM tier: the PMPN columns of a whole query batch advance in
// one node-major slab, sharing every CSR traversal, with per-column
// convergence and retirement — each column bit-identical to its scalar
// ProximityToParallel run. ProximityVectorBatch/ProximityVectorBatchFunc
// are the same slab machinery over the forward power method (one column
// per origin node's p_u), which the query engine uses to resolve all of a
// sweep's exact fallbacks at once.
package rwr

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

// Params bundles the RWR computation parameters used throughout the paper.
type Params struct {
	// Alpha is the restart probability (paper default 0.15).
	Alpha float64
	// Eps is the L1 convergence tolerance ε (paper default 1e-10).
	Eps float64
	// MaxIters caps iterations as a safety net; Theorem 2(c) predicts
	// convergence within log(ε/α)/log(1−α) iterations, so the default cap
	// of 10× that bound is never reached in practice.
	MaxIters int
}

// DefaultParams returns the parameter values used in the paper's evaluation
// (§5.2): α = 0.15, ε = 1e-10.
func DefaultParams() Params {
	return Params{Alpha: 0.15, Eps: 1e-10, MaxIters: 2000}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Alpha <= 0 || p.Alpha >= 1 {
		return fmt.Errorf("rwr: alpha must be in (0,1), got %g", p.Alpha)
	}
	if p.Eps <= 0 {
		return fmt.Errorf("rwr: eps must be positive, got %g", p.Eps)
	}
	if p.MaxIters <= 0 {
		return fmt.Errorf("rwr: max iterations must be positive, got %d", p.MaxIters)
	}
	return nil
}

// PredictedIters returns the iteration bound of Theorem 2(c):
// log(ε/α)/log(1−α), rounded up.
func (p Params) PredictedIters() int {
	// Solve (1−α)^i · α < ε.
	iters := 0
	v := p.Alpha
	for v >= p.Eps && iters < p.MaxIters {
		v *= 1 - p.Alpha
		iters++
	}
	return iters
}

// MulTransition computes dst = A·x where A is the column-stochastic
// transition matrix (a_{i,j} = w(j,i)/W(j) for edge j→i). dst is cleared
// first. Cost O(n+m). Generic over graph.View: base CSR graphs and
// overlays dispatch to devirtualized concrete loops (see kernels.go), so
// the pure-CSR hot path pays nothing for the abstraction.
func MulTransition[G graph.View](g G, x, dst []float64) {
	if len(x) != g.N() || len(dst) != g.N() {
		panic(fmt.Sprintf("rwr: MulTransition dimension mismatch: n=%d len(x)=%d len(dst)=%d", g.N(), len(x), len(dst)))
	}
	vecmath.Zero(dst)
	switch cg := any(g).(type) {
	case *graph.Graph:
		mulTransitionCSR(cg, x, dst)
	case *graph.Overlay:
		mulTransitionOverlay(cg, x, dst)
	default:
		mulTransitionGeneric(g, x, dst)
	}
}

// MulTransitionT computes dst = Aᵀ·x. Because (Aᵀx)(u) only needs u's own
// out-neighbors, this is a gather over out-adjacency: dst[u] =
// Σ_{v ∈ out(u)} w(u,v)/W(u) · x[v]. dst is cleared first. Cost O(n+m).
func MulTransitionT[G graph.View](g G, x, dst []float64) {
	if len(x) != g.N() || len(dst) != g.N() {
		panic(fmt.Sprintf("rwr: MulTransitionT dimension mismatch: n=%d len(x)=%d len(dst)=%d", g.N(), len(x), len(dst)))
	}
	MulTransitionTRange(g, x, dst, 0, g.N())
}

// Result carries a computed proximity vector together with convergence
// diagnostics.
type Result struct {
	// Vector is the converged proximity vector.
	Vector []float64
	// Iterations is the number of power iterations performed.
	Iterations int
	// Residual is the final L1 change between successive iterates.
	Residual float64
}

// ProximityVector computes p_u, the RWR proximity from u to every node, by
// the iterative Power Method of Eq. (12): x ← (1−α)·A·x + α·e_u, starting
// from e_u. The result is exact up to ε.
func ProximityVector[G graph.View](g G, u graph.NodeID, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if int(u) < 0 || int(u) >= g.N() {
		return Result{}, fmt.Errorf("rwr: node %d out of range [0,%d)", u, g.N())
	}
	x := make([]float64, g.N())
	next := make([]float64, g.N())
	x[u] = 1
	return iterate(x, next, p, func(cur, dst []float64) {
		MulTransition(g, cur, dst)
		vecmath.Scale(dst, 1-p.Alpha)
		dst[u] += p.Alpha
	}, nil)
}

// Personalized computes the personalized-PageRank vector P·v for an
// arbitrary preference distribution v (Eq. 3). v must be non-negative with
// L1 norm 1.
func Personalized[G graph.View](g G, v []float64, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if len(v) != g.N() {
		return Result{}, fmt.Errorf("rwr: preference vector has length %d, want %d", len(v), g.N())
	}
	var sum float64
	for _, w := range v {
		if w < 0 {
			return Result{}, errors.New("rwr: preference vector must be non-negative")
		}
		sum += w
	}
	if diff := sum - 1; diff > 1e-9 || diff < -1e-9 {
		return Result{}, fmt.Errorf("rwr: preference vector must sum to 1, got %g", sum)
	}
	x := vecmath.Clone(v)
	next := make([]float64, g.N())
	return iterate(x, next, p, func(cur, dst []float64) {
		MulTransition(g, cur, dst)
		for i := range dst {
			dst[i] = (1-p.Alpha)*dst[i] + p.Alpha*v[i]
		}
	}, nil)
}

// PageRank computes the global PageRank vector pr = (1/n)·P·e (Eq. 3).
func PageRank[G graph.View](g G, p Params) (Result, error) {
	if g.N() == 0 {
		return Result{}, errors.New("rwr: empty graph")
	}
	v := make([]float64, g.N())
	for i := range v {
		v[i] = 1 / float64(g.N())
	}
	return Personalized(g, v, p)
}

// ProximityTo implements Algorithm 2 (PMPN): it computes p_{q,*}, the exact
// RWR proximities from EVERY node to q, with the transposed iteration
// x ← (1−α)·Aᵀ·x + α·e_q of Eq. (13). Theorem 2 proves this converges to
// the q-th row of the proximity matrix at rate (1−α) from any start; we
// start from e_q. Cost O(m) per iteration — the same as computing a single
// proximity column, which is the paper's key enabling observation.
//
// The returned vector r satisfies r[u] = p_u(q).
func ProximityTo[G graph.View](g G, q graph.NodeID, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if int(q) < 0 || int(q) >= g.N() {
		return Result{}, fmt.Errorf("rwr: node %d out of range [0,%d)", q, g.N())
	}
	x := make([]float64, g.N())
	next := make([]float64, g.N())
	x[q] = 1
	return iterate(x, next, p, func(cur, dst []float64) {
		MulTransitionT(g, cur, dst)
		vecmath.Scale(dst, 1-p.Alpha)
		dst[q] += p.Alpha
	}, nil)
}

// PageRankContributions decomposes node q's PageRank into the per-node
// contributions that sum to it: contribution(u→q) = p_u(q)/n (Eq. 3 plus
// §1's observation that PageRank aggregates RWR proximities). This is the
// SpamRank-style module the paper highlights as a standalone application
// of Theorem 2: one PMPN run yields ALL contributions to q exactly.
//
// The returned vector c satisfies Σ_u c[u] = PageRank(q).
func PageRankContributions[G graph.View](g G, q graph.NodeID, p Params) (Result, error) {
	res, err := ProximityTo(g, q, p)
	if err != nil {
		return Result{}, err
	}
	vecmath.Scale(res.Vector, 1/float64(g.N()))
	return res, nil
}

// iterate runs the generic fixed-point loop with L1 stopping rule shared by
// all power-method variants. residual, called after each step, returns the
// L1 change of that step; nil selects the plain full-vector L1Diff. The
// parallel driver passes a block-reduced variant so that its single-segment
// fallback matches the multi-worker runs bit for bit.
func iterate(x, next []float64, p Params, step func(cur, dst []float64), residual func() float64) (Result, error) {
	var res Result
	for res.Iterations = 1; res.Iterations <= p.MaxIters; res.Iterations++ {
		step(x, next)
		if residual != nil {
			res.Residual = residual()
		} else {
			res.Residual = vecmath.L1Diff(x, next)
		}
		x, next = next, x
		if res.Residual < p.Eps {
			res.Vector = x
			return res, nil
		}
	}
	res.Vector = x
	return res, fmt.Errorf("rwr: did not converge within %d iterations (residual %g)", p.MaxIters, res.Residual)
}
