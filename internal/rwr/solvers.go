package rwr

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

// Alternative linear-system solvers for Eq. (1), p = (1−α)·A·p + α·e_u.
// The Power Method (ProximityVector) is the paper's reference; these give
// the classic iterative-solver menu of §6.1 ("Power Method and Jacobi
// algorithm have a lower complexity of O(Dm)") and serve as ablations: all
// must agree with PM to within ε.

// GaussSeidel solves the RWR system with Gauss–Seidel sweeps: within one
// sweep, updates of earlier nodes are visible to later ones, which roughly
// halves the iteration count on typical graphs relative to Jacobi/PM.
//
// The update for node v needs the in-neighbors of v (row v of the
// transition matrix): x(v) ← (1−α)·Σ_{w→v} a_{v,w}·x(w) + α·[v=u].
func GaussSeidel(g *graph.Graph, u graph.NodeID, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if int(u) < 0 || int(u) >= g.N() {
		return Result{}, fmt.Errorf("rwr: node %d out of range [0,%d)", u, g.N())
	}
	n := g.N()
	x := make([]float64, n)
	x[u] = 1
	// Self-loops put x_v on both sides of its own equation; true
	// Gauss-Seidel solves for it: x_v·(1 − (1−α)·a_{v,v}) = (1−α)·Σ_{w≠v}
	// a_{v,w}·x_w + α·[v=u]. Precompute the diagonal scalers.
	diagScale := make([]float64, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		diagScale[v] = 1 / (1 - (1-p.Alpha)*selfTransition(g, v))
	}
	var res Result
	for res.Iterations = 1; res.Iterations <= p.MaxIters; res.Iterations++ {
		var change float64
		for v := graph.NodeID(0); int(v) < n; v++ {
			var acc float64
			ins := g.InNeighbors(v)
			ws := g.InWeightsOf(v)
			if ws == nil {
				for _, w := range ins {
					if w != v {
						acc += x[w] / g.TotalOutWeight(w)
					}
				}
			} else {
				for i, w := range ins {
					if w != v {
						acc += ws[i] * x[w] / g.TotalOutWeight(w)
					}
				}
			}
			next := (1 - p.Alpha) * acc
			if v == u {
				next += p.Alpha
			}
			next *= diagScale[v]
			change += abs(next - x[v])
			x[v] = next
		}
		res.Residual = change
		if change < p.Eps {
			res.Vector = x
			return res, nil
		}
	}
	res.Vector = x
	return res, fmt.Errorf("rwr: Gauss-Seidel did not converge within %d iterations (residual %g)", p.MaxIters, res.Residual)
}

// ForwardPush solves the system with the local push method (the
// BCA/Andersen-style forward push without hubs, expressed directly in this
// package so solver comparisons need no bca dependency): residue above eps
// at any node is pushed until exhaustion. Unlike the global sweeps it only
// touches the neighborhood that carries mass, and its intermediate
// estimates are lower bounds.
//
// The pushEps parameter is the per-node residue threshold; the returned
// vector underestimates p_u by at most n·pushEps in L1.
func ForwardPush(g *graph.Graph, u graph.NodeID, alpha, pushEps float64, maxPushes int) (Result, error) {
	if alpha <= 0 || alpha >= 1 {
		return Result{}, fmt.Errorf("rwr: alpha must be in (0,1), got %g", alpha)
	}
	if pushEps <= 0 {
		return Result{}, fmt.Errorf("rwr: push threshold must be positive, got %g", pushEps)
	}
	if int(u) < 0 || int(u) >= g.N() {
		return Result{}, fmt.Errorf("rwr: node %d out of range [0,%d)", u, g.N())
	}
	n := g.N()
	estimate := make([]float64, n)
	residue := make([]float64, n)
	residue[u] = 1
	queue := []graph.NodeID{u}
	inQueue := make([]bool, n)
	inQueue[u] = true
	pushes := 0
	var res Result
	for len(queue) > 0 {
		if pushes >= maxPushes {
			res.Vector = estimate
			res.Iterations = pushes
			res.Residual = vecmath.L1Norm(residue)
			return res, fmt.Errorf("rwr: forward push exceeded %d pushes (residual %g)", maxPushes, res.Residual)
		}
		v := queue[0]
		queue = queue[1:]
		inQueue[v] = false
		r := residue[v]
		if r < pushEps {
			continue
		}
		residue[v] = 0
		estimate[v] += alpha * r
		spread := (1 - alpha) * r
		nbrs := g.OutNeighbors(v)
		ws := g.OutWeightsOf(v)
		push := func(t graph.NodeID, dr float64) {
			residue[t] += dr
			if residue[t] >= pushEps && !inQueue[t] {
				inQueue[t] = true
				queue = append(queue, t)
			}
		}
		if ws == nil {
			share := spread / float64(len(nbrs))
			for _, t := range nbrs {
				push(t, share)
			}
		} else {
			inv := spread / g.TotalOutWeight(v)
			for i, t := range nbrs {
				push(t, inv*ws[i])
			}
		}
		pushes++
	}
	res.Vector = estimate
	res.Iterations = pushes
	res.Residual = vecmath.L1Norm(residue)
	return res, nil
}

// selfTransition returns a_{v,v}: the transition probability of v's
// self-loop, or 0 if v has none.
func selfTransition(g *graph.Graph, v graph.NodeID) float64 {
	w := g.EdgeWeight(v, v)
	if w == 0 {
		return 0
	}
	return w / g.TotalOutWeight(v)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
