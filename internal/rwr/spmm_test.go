package rwr

import (
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// spmmWidths covers the batch shapes of the acceptance criteria.
var spmmWidths = []int{1, 2, 4, 16}

// weightedTestGraph builds a deterministic weighted graph: a WebGraph
// topology with pseudo-random positive weights.
func weightedTestGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	base, err := gen.WebGraph(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(base.N())
	rng := uint64(seed)*2862933555777941757 + 3037000493
	for u := graph.NodeID(0); int(u) < base.N(); u++ {
		for _, v := range base.OutNeighbors(u) {
			rng = rng*2862933555777941757 + 3037000493
			w := 0.25 + float64(rng>>40)/float64(1<<24)*4
			b.AddWeightedEdge(u, v, w)
		}
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// spmmTestViews returns the graph families × view types the batched path
// must hold bit-identity on: unweighted and weighted CSRs, and an Overlay
// with an applied edit batch (patched and unpatched nodes mixed).
func spmmTestViews(t *testing.T) map[string]graph.View {
	t.Helper()
	web, err := gen.WebGraph(700, 5)
	if err != nil {
		t.Fatal(err)
	}
	social, err := gen.SocialGraph(300, 23)
	if err != nil {
		t.Fatal(err)
	}
	weighted := weightedTestGraph(t, 400, 11)
	ov := graph.NewOverlay(social)
	ov, err = ov.Apply([]graph.EdgeEdit{
		{From: 0, To: 299},
		{From: 7, To: 3, Weight: 2.5},
		{From: 301, To: 5}, // grows the overlay beyond the base CSR
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]graph.View{
		"web-unweighted": web,
		"social":         social,
		"weighted":       weighted,
		"overlay":        ov,
	}
}

// TestProximityToBatchBitIdentical is the tentpole's contract: every column
// of the SpMM-batched PMPN — vector, iteration count and residual — is
// bit-identical to a scalar ProximityToParallel run, across graph families,
// batch widths {1,2,4,16} and worker counts.
func TestProximityToBatchBitIdentical(t *testing.T) {
	for name, g := range spmmTestViews(t) {
		t.Run(name, func(t *testing.T) {
			p := DefaultParams()
			n := g.N()
			for _, width := range spmmWidths {
				queries := make([]graph.NodeID, width)
				for j := range queries {
					queries[j] = graph.NodeID((j * 37) % n)
				}
				want := make([]Result, width)
				for j, q := range queries {
					res, err := ProximityToParallel(g, q, p, 1)
					if err != nil {
						t.Fatal(err)
					}
					want[j] = res
				}
				for _, workers := range []int{1, 3, 8} {
					got, err := ProximityToBatch(g, queries, p, workers)
					if err != nil {
						t.Fatalf("width=%d workers=%d: %v", width, workers, err)
					}
					for j := range queries {
						if got[j].Iterations != want[j].Iterations {
							t.Fatalf("width=%d workers=%d col=%d: %d iterations, scalar did %d",
								width, workers, j, got[j].Iterations, want[j].Iterations)
						}
						if got[j].Residual != want[j].Residual {
							t.Fatalf("width=%d workers=%d col=%d: residual %g, scalar %g",
								width, workers, j, got[j].Residual, want[j].Residual)
						}
						for u := range got[j].Vector {
							if got[j].Vector[u] != want[j].Vector[u] {
								t.Fatalf("width=%d workers=%d col=%d: vector differs at node %d: %g vs %g",
									width, workers, j, u, got[j].Vector[u], want[j].Vector[u])
							}
						}
					}
				}
			}
		})
	}
}

// TestProximityToBatchEarlyRetirement: columns retire in scalar-iteration
// order, each at exactly its scalar iteration count, while the batch keeps
// running — a fast query never waits for the slowest one.
func TestProximityToBatchEarlyRetirement(t *testing.T) {
	g, err := gen.WebGraph(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	queries := []graph.NodeID{0, 9, 250, 499, 123, 44, 318, 77}
	scalarIters := make([]int, len(queries))
	for j, q := range queries {
		res, err := ProximityToParallel(g, q, p, 1)
		if err != nil {
			t.Fatal(err)
		}
		scalarIters[j] = res.Iterations
	}
	lastIter := 0
	retired := make([]bool, len(queries))
	err = ProximityToBatchFunc(g, queries, p, 4, func(i int, res Result, err error) {
		if err != nil {
			t.Fatalf("col %d: %v", i, err)
		}
		if retired[i] {
			t.Fatalf("col %d retired twice", i)
		}
		retired[i] = true
		if res.Iterations != scalarIters[i] {
			t.Fatalf("col %d retired at iteration %d, scalar converged at %d", i, res.Iterations, scalarIters[i])
		}
		if res.Iterations < lastIter {
			t.Fatalf("col %d retired at iteration %d after a column retired at %d", i, res.Iterations, lastIter)
		}
		lastIter = res.Iterations
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range retired {
		if !ok {
			t.Fatalf("col %d never retired", i)
		}
	}
}

// TestProximityToBatchDuplicateQueries: the same restart node may occupy
// several columns; each retires independently with identical bits.
func TestProximityToBatchDuplicateQueries(t *testing.T) {
	g, err := gen.SocialGraph(200, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	queries := []graph.NodeID{42, 42, 7, 42}
	got, err := ProximityToBatch(g, queries, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for u := range got[0].Vector {
		if got[0].Vector[u] != got[1].Vector[u] || got[0].Vector[u] != got[3].Vector[u] {
			t.Fatalf("duplicate columns differ at node %d", u)
		}
	}
}

// TestProximityToBatchNonConvergence: columns that hit the iteration cap
// fail with the scalar path's exact error while converged columns still
// succeed.
func TestProximityToBatchNonConvergence(t *testing.T) {
	g, err := gen.WebGraph(300, 13)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.MaxIters = 3 // far below the ~140 iterations ε=1e-10 needs
	want, wantErr := ProximityToParallel(g, 5, p, 1)
	if wantErr == nil {
		t.Fatal("scalar run unexpectedly converged in 3 iterations")
	}
	results, err := ProximityToBatch(g, []graph.NodeID{5, 9}, p, 2)
	if err == nil {
		t.Fatal("batch run unexpectedly converged in 3 iterations")
	}
	if err.Error() != wantErr.Error() {
		t.Fatalf("batch error %q, scalar error %q", err, wantErr)
	}
	if results[0].Iterations != want.Iterations || results[0].Residual != want.Residual {
		t.Fatalf("failed column result (%d, %g) differs from scalar (%d, %g)",
			results[0].Iterations, results[0].Residual, want.Iterations, want.Residual)
	}
	for u := range results[0].Vector {
		if results[0].Vector[u] != want.Vector[u] {
			t.Fatalf("failed column vector differs at node %d", u)
		}
	}
}

// TestProximityToBatchValidation: parameter and range failures reject the
// whole batch before any retire call; an empty batch is a no-op.
func TestProximityToBatchValidation(t *testing.T) {
	g, err := gen.WebGraph(50, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	if err := ProximityToBatchFunc(g, []graph.NodeID{50}, p, 1, func(int, Result, error) {
		t.Fatal("retire called on validation failure")
	}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range query: got %v", err)
	}
	bad := p
	bad.Alpha = 1.5
	if err := ProximityToBatchFunc(g, []graph.NodeID{0}, bad, 1, func(int, Result, error) {
		t.Fatal("retire called on validation failure")
	}); err == nil {
		t.Fatal("bad alpha accepted")
	}
	if err := ProximityToBatchFunc(g, nil, p, 1, func(int, Result, error) {
		t.Fatal("retire called on empty batch")
	}); err != nil {
		t.Fatal(err)
	}
}
