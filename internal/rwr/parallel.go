package rwr

import (
	"fmt"
	"runtime"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

// MulTransitionTRange computes dst[u] = (Aᵀ·x)(u) for u ∈ [lo, hi) only.
// Entries outside the range are left untouched. Each row is a gather over
// u's own out-adjacency accumulated in the same order as MulTransitionT, so
// covering [0, n) with disjoint ranges — in any partition — reproduces
// MulTransitionT bit for bit. This is the unit of work of the parallel PMPN
// iteration.
func MulTransitionTRange[G graph.View](g G, x, dst []float64, lo, hi int) {
	if len(x) != g.N() || len(dst) != g.N() {
		panic(fmt.Sprintf("rwr: MulTransitionTRange dimension mismatch: n=%d len(x)=%d len(dst)=%d", g.N(), len(x), len(dst)))
	}
	if lo < 0 || hi > g.N() || lo > hi {
		panic(fmt.Sprintf("rwr: MulTransitionTRange range [%d,%d) outside [0,%d)", lo, hi, g.N()))
	}
	switch cg := any(g).(type) {
	case *graph.Graph:
		mulTransitionTRangeCSR(cg, x, dst, lo, hi)
	case *graph.Overlay:
		mulTransitionTRangeOverlay(cg, x, dst, lo, hi)
	default:
		mulTransitionTRangeGeneric(g, x, dst, lo, hi)
	}
}

// MulTransitionRange computes dst[v] = (A·x)(v) for v ∈ [lo, hi) as a gather
// over v's in-adjacency: dst[v] = Σ_{u ∈ in(v)} w(u,v)/W(u) · x[u]. Entries
// outside the range are untouched.
//
// Unlike MulTransition — a scatter over out-edges whose additions interleave
// across destinations — each output here is accumulated independently in
// in-edge order, so the result is deterministic and identical for ANY
// partition of [0, n), at the price of differing from the scatter result by
// a few ulps (the additions associate differently). The parallel power
// method builds on this form.
func MulTransitionRange[G graph.View](g G, x, dst []float64, lo, hi int) {
	if len(x) != g.N() || len(dst) != g.N() {
		panic(fmt.Sprintf("rwr: MulTransitionRange dimension mismatch: n=%d len(x)=%d len(dst)=%d", g.N(), len(x), len(dst)))
	}
	if lo < 0 || hi > g.N() || lo > hi {
		panic(fmt.Sprintf("rwr: MulTransitionRange range [%d,%d) outside [0,%d)", lo, hi, g.N()))
	}
	switch cg := any(g).(type) {
	case *graph.Graph:
		mulTransitionRangeCSR(cg, x, dst, lo, hi)
	case *graph.Overlay:
		mulTransitionRangeOverlay(cg, x, dst, lo, hi)
	default:
		mulTransitionRangeGeneric(g, x, dst, lo, hi)
	}
}

// residualBlock is the fixed granularity of the parallel convergence check:
// per-block L1 differences are reduced in block order, so the residual — and
// with it the iteration count and the converged vector — is bit-identical
// for every worker count. Worker segments are block-aligned so a block never
// straddles two workers. 256 rows (≈ a few thousand flops on typical
// degrees) amortizes the synchronization per block comfortably.
const residualBlock = 256

// blockSegments partitions [0, n) into at most workers block-aligned
// contiguous segments (the trailing segment may end off-alignment at n).
func blockSegments(n, workers int) []vecmath.Range {
	nblocks := (n + residualBlock - 1) / residualBlock
	bsegs := vecmath.Split(nblocks, workers)
	segs := make([]vecmath.Range, len(bsegs))
	for i, bs := range bsegs {
		lo := bs.Lo * residualBlock
		hi := bs.Hi * residualBlock
		if hi > n {
			hi = n
		}
		segs[i] = vecmath.Range{Lo: lo, Hi: hi}
	}
	return segs
}

// blockReduce computes per-block L1 differences for the blocks covered by
// seg, writing them into partial (indexed by block number).
func blockReduce(x, y []float64, seg vecmath.Range, partial []float64) {
	for lo := seg.Lo; lo < seg.Hi; lo += residualBlock {
		hi := lo + residualBlock
		if hi > seg.Hi {
			hi = seg.Hi
		}
		partial[lo/residualBlock] = vecmath.L1DiffRange(x, y, lo, hi)
	}
}

// iterateParallel runs the fixed-point loop of iterate with the per-iteration
// step sharded across block-aligned row segments, one per worker. The step
// callback must fill dst[r.Lo:r.Hi] from cur without touching other ranges.
// Workers persist across iterations (spawned once per call); buffers are
// allocated once and reused. The convergence residual is reduced per fixed
// block in block order, so the returned Result does not depend on workers.
func iterateParallel(x, next []float64, p Params, workers int, step func(cur, dst []float64, r vecmath.Range)) (Result, error) {
	n := len(x)
	segs := blockSegments(n, workers)
	partial := make([]float64, (n+residualBlock-1)/residualBlock)

	reduce := func() float64 {
		var s float64
		for _, d := range partial {
			s += d
		}
		return s
	}

	if len(segs) <= 1 {
		// Single segment: run inline, keeping the blocked reduction so the
		// residual matches the multi-worker runs bit for bit.
		all := vecmath.Range{Lo: 0, Hi: n}
		return iterate(x, next, p, func(cur, dst []float64) {
			step(cur, dst, all)
			blockReduce(cur, dst, all, partial)
		}, reduce)
	}

	// cur/dst are published to the workers by the start sends (the channel
	// send/recv pairs establish the happens-before edges; each worker writes
	// only its own dst range and partial blocks).
	var cur, dst []float64
	start := make([]chan struct{}, len(segs))
	for i := range start {
		start[i] = make(chan struct{})
	}
	done := make(chan struct{}, len(segs))
	for i, seg := range segs {
		go func(i int, seg vecmath.Range) {
			for range start[i] {
				step(cur, dst, seg)
				blockReduce(cur, dst, seg, partial)
				done <- struct{}{}
			}
		}(i, seg)
	}
	defer func() {
		for _, ch := range start {
			close(ch)
		}
	}()

	var res Result
	for res.Iterations = 1; res.Iterations <= p.MaxIters; res.Iterations++ {
		cur, dst = x, next
		for _, ch := range start {
			ch <- struct{}{}
		}
		for range segs {
			<-done
		}
		res.Residual = reduce()
		x, next = next, x
		if res.Residual < p.Eps {
			res.Vector = x
			return res, nil
		}
	}
	res.Vector = x
	return res, fmt.Errorf("rwr: did not converge within %d iterations (residual %g)", p.MaxIters, res.Residual)
}

// normWorkers maps the workers convention (≤ 0 selects GOMAXPROCS) shared by
// all parallel entry points.
func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ProximityToParallel is ProximityTo (Algorithm 2, PMPN) with the transposed
// matvec of each iteration sharded over block-aligned row ranges across
// workers (≤ 0 selects GOMAXPROCS). Every row is accumulated in the same
// order as the sequential sweep and the convergence residual is reduced at
// fixed block granularity, so the returned vector, residual and iteration
// count are identical for every worker count.
func ProximityToParallel[G graph.View](g G, q graph.NodeID, p Params, workers int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if int(q) < 0 || int(q) >= g.N() {
		return Result{}, fmt.Errorf("rwr: node %d out of range [0,%d)", q, g.N())
	}
	workers = normWorkers(workers)
	x := make([]float64, g.N())
	next := make([]float64, g.N())
	x[q] = 1
	oneMinus := 1 - p.Alpha
	return iterateParallel(x, next, p, workers, func(cur, dst []float64, r vecmath.Range) {
		MulTransitionTRange(g, cur, dst, r.Lo, r.Hi)
		for i := r.Lo; i < r.Hi; i++ {
			dst[i] *= oneMinus
		}
		if r.Lo <= int(q) && int(q) < r.Hi {
			dst[q] += p.Alpha
		}
	})
}

// ProximityVectorParallel is ProximityVector (the forward power method) with
// each iteration sharded across workers (≤ 0 selects GOMAXPROCS). The
// forward matvec is evaluated in gather form (MulTransitionRange) so each
// output row is owned by exactly one worker; the result is identical for
// every worker count, and agrees with the sequential scatter-based
// ProximityVector to within the solver tolerance (the additions associate
// differently, see MulTransitionRange).
func ProximityVectorParallel[G graph.View](g G, u graph.NodeID, p Params, workers int) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if int(u) < 0 || int(u) >= g.N() {
		return Result{}, fmt.Errorf("rwr: node %d out of range [0,%d)", u, g.N())
	}
	workers = normWorkers(workers)
	x := make([]float64, g.N())
	next := make([]float64, g.N())
	x[u] = 1
	oneMinus := 1 - p.Alpha
	return iterateParallel(x, next, p, workers, func(cur, dst []float64, r vecmath.Range) {
		MulTransitionRange(g, cur, dst, r.Lo, r.Hi)
		for i := r.Lo; i < r.Hi; i++ {
			dst[i] *= oneMinus
		}
		if r.Lo <= int(u) && int(u) < r.Hi {
			dst[u] += p.Alpha
		}
	})
}
