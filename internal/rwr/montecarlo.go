package rwr

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Monte Carlo proximity estimators (§6.2 of the paper, after Fogaras et al.
// and Avrachenkov et al.). They are faster but less accurate than the power
// method and — critically for the paper's framework — their estimates are
// NOT guaranteed lower bounds, which is why the index is built on BCA
// instead. They are provided as comparators, for the approximate top-k
// search ablations, and (ResidualWalkEstimate) as the probabilistic
// refinement stage of the anytime query tier.
//
// Every estimator takes its *rand.Rand explicitly — there is no global
// randomness anywhere in this package, so fixing the seed fixes the output.

// MonteCarloEndPoint estimates p_u by simulating `walks` random walks with
// restart from u and recording the node occupied when each restart fires:
// p_u(v) ≈ (#walks whose restart fired at v)/walks. Matches the "MC End
// Point" algorithm of [3].
func MonteCarloEndPoint[G graph.View](g G, u graph.NodeID, walks int, p Params, rng *rand.Rand) ([]float64, error) {
	if err := checkMC(g, u, walks, p); err != nil {
		return nil, err
	}
	counts := make([]float64, g.N())
	for w := 0; w < walks; w++ {
		cur := u
		for {
			if rng.Float64() < p.Alpha {
				counts[cur]++
				break
			}
			cur = stepNeighbor(g, cur, rng)
		}
	}
	inv := 1 / float64(walks)
	for i := range counts {
		counts[i] *= inv
	}
	return counts, nil
}

// MonteCarloCompletePath estimates p_u from full walk trajectories:
// p_u(v) ≈ α · (total visits to v across walks)/walks. Every visited node
// contributes, so the estimator has lower variance than MC End Point for
// the same number of walks ("MC Complete Path" of [3]).
func MonteCarloCompletePath[G graph.View](g G, u graph.NodeID, walks int, p Params, rng *rand.Rand) ([]float64, error) {
	if err := checkMC(g, u, walks, p); err != nil {
		return nil, err
	}
	visits := make([]float64, g.N())
	for w := 0; w < walks; w++ {
		cur := u
		for {
			visits[cur]++
			if rng.Float64() < p.Alpha {
				break
			}
			cur = stepNeighbor(g, cur, rng)
		}
	}
	scale := p.Alpha / float64(walks)
	for i := range visits {
		visits[i] *= scale
	}
	return visits, nil
}

// ResidualWalkEstimate estimates the remaining PMPN error at node u from
// the last iteration's delta. With x^t the current iterate and
// δ = x^t − x^{t−1}, the exact correction is
//
//	p_u(q) − x^t[u] = Σ_{j≥1} [((1−α)Aᵀ)^j δ]_u,
//
// and because row-stochastic Aᵀ averages over u's out-neighbors
// proportionally to edge weight, [(Aᵀ)^j δ]_u = E[δ(V_j)] where V_j is the
// j-th step of the weight-proportional out-edge walk from u. Each walk
// therefore contributes Z = Σ_{j=1..maxLen} (1−α)^j δ(V_j); the mean of Z
// over `walks` independent walks is returned. E[Z] equals the correction up
// to the truncation bias |bias| ≤ ‖δ‖∞·(1−α)^{maxLen+1}/α, and each Z lies
// in ±‖δ‖∞·((1−α) − (1−α)^{maxLen+1})/α, so ResidualWalkBand turns a walk
// budget into a rigorous two-sided confidence band via Hoeffding.
//
// cur and prev are the iterate pair (rwr.ToStepper Current/Previous); both
// must cover the full node space.
func ResidualWalkEstimate[G graph.View](g G, u graph.NodeID, cur, prev []float64, maxLen, walks int, alpha float64, rng *rand.Rand) float64 {
	oneMinus := 1 - alpha
	var sum float64
	for w := 0; w < walks; w++ {
		v := u
		wgt := 1.0
		var z float64
		for j := 0; j < maxLen; j++ {
			v = stepNeighbor(g, v, rng)
			wgt *= oneMinus
			z += wgt * (cur[v] - prev[v])
		}
		sum += z
	}
	return sum / float64(walks)
}

// ResidualWalkBand returns the half-width of a two-sided confidence band
// for ResidualWalkEstimate that holds with probability ≥ 1 − fail:
//
//	|estimate − (p_u(q) − x^t[u])| ≤ band
//
// whenever ‖x^t − x^{t−1}‖∞ ≤ deltaInf. The band is the Hoeffding deviation
// for `walks` i.i.d. terms each confined to an interval of width
// 2·deltaInf·((1−α) − (1−α)^{maxLen+1})/α, plus the deterministic
// truncation bias deltaInf·(1−α)^{maxLen+1}/α of stopping walks at maxLen
// steps. It shrinks with the residual, so the estimator tightens exactly
// when the deterministic band (ToStepper.Tail) does — but by a ‖δ‖∞ factor
// where Tail pays ‖δ‖₁, which is what lets it decide candidates rounds
// earlier on slowly-mixing queries.
func ResidualWalkBand(deltaInf float64, maxLen, walks int, alpha, fail float64) float64 {
	if deltaInf <= 0 {
		return 0
	}
	oneMinus := 1 - alpha
	tailPow := math.Pow(oneMinus, float64(maxLen+1))
	span := deltaInf * (oneMinus - tailPow) / alpha
	hoeff := 2 * span * math.Sqrt(math.Log(2/fail)/(2*float64(walks)))
	trunc := deltaInf * tailPow / alpha
	return hoeff + trunc
}

func checkMC[G graph.View](g G, u graph.NodeID, walks int, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if int(u) < 0 || int(u) >= g.N() {
		return fmt.Errorf("rwr: node %d out of range [0,%d)", u, g.N())
	}
	if walks <= 0 {
		return fmt.Errorf("rwr: walk count must be positive, got %d", walks)
	}
	return nil
}

// stepNeighbor samples the next node of a random walk currently at u,
// proportionally to out-edge weights.
func stepNeighbor[G graph.View](g G, u graph.NodeID, rng *rand.Rand) graph.NodeID {
	nbrs := g.OutNeighbors(u)
	ws := g.OutWeightsOf(u)
	if ws == nil {
		return nbrs[rng.Intn(len(nbrs))]
	}
	target := rng.Float64() * g.TotalOutWeight(u)
	var acc float64
	for i, v := range nbrs {
		acc += ws[i]
		if target < acc {
			return v
		}
	}
	return nbrs[len(nbrs)-1]
}
