package rwr

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Monte Carlo proximity estimators (§6.2 of the paper, after Fogaras et al.
// and Avrachenkov et al.). They are faster but less accurate than the power
// method and — critically for the paper's framework — their estimates are
// NOT guaranteed lower bounds, which is why the index is built on BCA
// instead. They are provided as comparators and for the approximate top-k
// search ablations.

// MonteCarloEndPoint estimates p_u by simulating `walks` random walks with
// restart from u and recording the node occupied when each restart fires:
// p_u(v) ≈ (#walks whose restart fired at v)/walks. Matches the "MC End
// Point" algorithm of [3].
func MonteCarloEndPoint(g *graph.Graph, u graph.NodeID, walks int, p Params, rng *rand.Rand) ([]float64, error) {
	if err := checkMC(g, u, walks, p); err != nil {
		return nil, err
	}
	counts := make([]float64, g.N())
	for w := 0; w < walks; w++ {
		cur := u
		for {
			if rng.Float64() < p.Alpha {
				counts[cur]++
				break
			}
			cur = stepNeighbor(g, cur, rng)
		}
	}
	inv := 1 / float64(walks)
	for i := range counts {
		counts[i] *= inv
	}
	return counts, nil
}

// MonteCarloCompletePath estimates p_u from full walk trajectories:
// p_u(v) ≈ α · (total visits to v across walks)/walks. Every visited node
// contributes, so the estimator has lower variance than MC End Point for
// the same number of walks ("MC Complete Path" of [3]).
func MonteCarloCompletePath(g *graph.Graph, u graph.NodeID, walks int, p Params, rng *rand.Rand) ([]float64, error) {
	if err := checkMC(g, u, walks, p); err != nil {
		return nil, err
	}
	visits := make([]float64, g.N())
	for w := 0; w < walks; w++ {
		cur := u
		for {
			visits[cur]++
			if rng.Float64() < p.Alpha {
				break
			}
			cur = stepNeighbor(g, cur, rng)
		}
	}
	scale := p.Alpha / float64(walks)
	for i := range visits {
		visits[i] *= scale
	}
	return visits, nil
}

func checkMC(g *graph.Graph, u graph.NodeID, walks int, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if int(u) < 0 || int(u) >= g.N() {
		return fmt.Errorf("rwr: node %d out of range [0,%d)", u, g.N())
	}
	if walks <= 0 {
		return fmt.Errorf("rwr: walk count must be positive, got %d", walks)
	}
	return nil
}

// stepNeighbor samples the next node of a random walk currently at u,
// proportionally to out-edge weights.
func stepNeighbor(g *graph.Graph, u graph.NodeID, rng *rand.Rand) graph.NodeID {
	nbrs := g.OutNeighbors(u)
	ws := g.OutWeightsOf(u)
	if ws == nil {
		return nbrs[rng.Intn(len(nbrs))]
	}
	target := rng.Float64() * g.TotalOutWeight(u)
	var acc float64
	for i, v := range nbrs {
		acc += ws[i]
		if target < acc {
			return v
		}
	}
	return nbrs[len(nbrs)-1]
}
