package rwr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

func TestGaussSeidelMatchesPowerMethod(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(30), rng.Intn(2) == 0)
		u := graph.NodeID(rng.Intn(g.N()))
		p := DefaultParams()
		pm, err := ProximityVector(g, u, p)
		if err != nil {
			return false
		}
		gs, err := GaussSeidel(g, u, p)
		if err != nil {
			return false
		}
		return vecmath.MaxAbsDiff(pm.Vector, gs.Vector) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGaussSeidelConvergesFasterThanPMOnCycle(t *testing.T) {
	// On a directed cycle the power method attains its worst-case rate
	// (1−α) exactly, while a Gauss-Seidel sweep in node order propagates
	// information around the whole cycle at once — far fewer sweeps.
	// (On arbitrary graphs, PM can cancel faster than GS's ordering
	// helps, so no general iteration-count comparison is asserted.)
	n := 50
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	g, _, err := b.Build(graph.DanglingReject)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	pm, err := ProximityVector(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := GaussSeidel(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Iterations*2 >= pm.Iterations {
		t.Errorf("Gauss-Seidel used %d sweeps, PM used %d iterations; expected ≤ half", gs.Iterations, pm.Iterations)
	}
	if vecmath.MaxAbsDiff(pm.Vector, gs.Vector) > 1e-7 {
		t.Error("solvers disagree on the cycle")
	}
}

func TestGaussSeidelValidation(t *testing.T) {
	g := toyGraph(t)
	if _, err := GaussSeidel(g, 99, DefaultParams()); err == nil {
		t.Error("want range error")
	}
	if _, err := GaussSeidel(g, 0, Params{}); err == nil {
		t.Error("want params error")
	}
}

func TestForwardPushIsLowerBoundAndConverges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 3+rng.Intn(25), false)
		u := graph.NodeID(rng.Intn(g.N()))
		exact, err := ProximityVector(g, u, DefaultParams())
		if err != nil {
			return false
		}
		fp, err := ForwardPush(g, u, 0.15, 1e-7, 1<<22)
		if err != nil {
			return false
		}
		for v := range fp.Vector {
			if fp.Vector[v] > exact.Vector[v]+1e-9 {
				return false // must be a lower bound entrywise
			}
		}
		// With a tiny threshold the estimate is essentially exact.
		return vecmath.L1Diff(fp.Vector, exact.Vector) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestForwardPushLocality(t *testing.T) {
	// On a long directed path, pushing from one end with a coarse
	// threshold must not touch the far end.
	n := 2000
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ForwardPush(g, 0, 0.15, 1e-4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Vector[n-1] != 0 {
		t.Errorf("far end received mass %g; push should stay local", fp.Vector[n-1])
	}
	if fp.Iterations > 200 {
		t.Errorf("push count %d too high for a local method", fp.Iterations)
	}
}

func TestForwardPushValidation(t *testing.T) {
	g := toyGraph(t)
	if _, err := ForwardPush(g, 0, 0, 1e-6, 100); err == nil {
		t.Error("want alpha error")
	}
	if _, err := ForwardPush(g, 0, 0.15, 0, 100); err == nil {
		t.Error("want threshold error")
	}
	if _, err := ForwardPush(g, -1, 0.15, 1e-6, 100); err == nil {
		t.Error("want range error")
	}
	// Push budget exhaustion is reported, with a usable partial result.
	res, err := ForwardPush(g, 0, 0.15, 1e-9, 3)
	if err == nil {
		t.Error("want budget error")
	}
	if vecmath.L1Norm(res.Vector)+res.Residual < 0.99 {
		t.Error("partial result does not conserve mass")
	}
}
