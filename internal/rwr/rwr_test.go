package rwr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

// toyGraph returns the 6-node digraph used as the running example
// throughout the tests (same node count as the paper's Figure 1 toy).
func toyGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(6, [][2]graph.NodeID{
		{0, 1}, {0, 3}, {1, 0}, {1, 2}, {2, 1}, {2, 2},
		{3, 0}, {3, 1}, {3, 4}, {4, 0}, {4, 1}, {4, 4}, {5, 1}, {5, 5},
	}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomGraph builds a random strongly-usable digraph for property tests.
func randomGraph(rng *rand.Rand, n int, weighted bool) *graph.Graph {
	b := graph.NewBuilder(n)
	m := n + rng.Intn(4*n)
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if weighted {
			b.AddWeightedEdge(u, v, 1+rng.Float64()*4)
		} else {
			b.AddEdge(u, v)
		}
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		panic(err)
	}
	return g
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Alpha: 0, Eps: 1e-10, MaxIters: 10},
		{Alpha: 1, Eps: 1e-10, MaxIters: 10},
		{Alpha: 0.15, Eps: 0, MaxIters: 10},
		{Alpha: 0.15, Eps: 1e-10, MaxIters: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestPredictedIters(t *testing.T) {
	p := DefaultParams()
	got := p.PredictedIters()
	// Theorem 2(c): i > log(ε/α)/log(1−α) ≈ log(1e-10/0.15)/log(0.85) ≈ 130.
	want := math.Log(p.Eps/p.Alpha) / math.Log(1-p.Alpha)
	if math.Abs(float64(got)-want) > 2 {
		t.Errorf("PredictedIters = %d, analytic %g", got, want)
	}
}

func TestMulTransitionStochastic(t *testing.T) {
	// A is column-stochastic, so ‖A·x‖1 = ‖x‖1 for non-negative x, under
	// every dangling policy and for weighted graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(30), rng.Intn(2) == 0)
		x := make([]float64, g.N())
		for i := range x {
			x[i] = rng.Float64()
		}
		dst := make([]float64, g.N())
		MulTransition(g, x, dst)
		return math.Abs(vecmath.L1Norm(dst)-vecmath.L1Norm(x)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMulTransitionTIsTranspose(t *testing.T) {
	// Property: ⟨A·x, y⟩ = ⟨x, Aᵀ·y⟩ for random vectors on random graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(25), rng.Intn(2) == 0)
		n := g.N()
		x := make([]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.Float64()
			y[i] = rng.Float64()
		}
		ax := make([]float64, n)
		aty := make([]float64, n)
		MulTransition(g, x, ax)
		MulTransitionT(g, y, aty)
		var lhs, rhs float64
		for i := 0; i < n; i++ {
			lhs += ax[i] * y[i]
			rhs += x[i] * aty[i]
		}
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestProximityVectorBasics(t *testing.T) {
	g := toyGraph(t)
	p := DefaultParams()
	res, err := ProximityVector(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	pu := res.Vector
	if math.Abs(vecmath.L1Norm(pu)-1) > 1e-8 {
		t.Errorf("‖p_u‖1 = %g, want 1", vecmath.L1Norm(pu))
	}
	for v, val := range pu {
		if val < 0 {
			t.Errorf("negative proximity p_0(%d) = %g", v, val)
		}
	}
	// The origin retains at least the restart mass.
	if pu[0] < p.Alpha {
		t.Errorf("p_0(0) = %g < alpha %g", pu[0], p.Alpha)
	}
	if res.Iterations <= 1 {
		t.Errorf("suspiciously fast convergence: %d iterations", res.Iterations)
	}
}

func TestProximityVectorSolvesLinearSystem(t *testing.T) {
	// p_u must satisfy p_u = (1−α)·A·p_u + α·e_u exactly (up to ε).
	g := toyGraph(t)
	p := DefaultParams()
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		res, err := ProximityVector(g, u, p)
		if err != nil {
			t.Fatal(err)
		}
		ap := make([]float64, g.N())
		MulTransition(g, res.Vector, ap)
		for v := range ap {
			want := (1-p.Alpha)*ap[v] + p.Alpha*boolToF(int(u) == v)
			if math.Abs(res.Vector[v]-want) > 1e-7 {
				t.Fatalf("fixed point violated at p_%d(%d): %g vs %g", u, v, res.Vector[v], want)
			}
		}
	}
}

func boolToF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func TestProximityToMatchesMatrixRow(t *testing.T) {
	// Theorem 2: PMPN converges to row q of P. Cross-check against the
	// column-by-column matrix on random graphs, weighted and unweighted.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(20), rng.Intn(2) == 0)
		p := Params{Alpha: 0.15, Eps: 1e-12, MaxIters: 5000}
		cols, err := ProximityMatrix(g, p, 2)
		if err != nil {
			return false
		}
		q := graph.NodeID(rng.Intn(g.N()))
		res, err := ProximityTo(g, q, p)
		if err != nil {
			return false
		}
		row := MatrixRow(cols, q)
		return vecmath.MaxAbsDiff(res.Vector, row) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// residualRatios runs the PMPN iteration on g with query q and returns the
// average ratio of successive L1 residuals after burn-in.
func residualRatios(g *graph.Graph, q graph.NodeID, alpha float64, iters int) float64 {
	n := g.N()
	x := make([]float64, n)
	next := make([]float64, n)
	x[q] = 1
	var prev float64
	var sum float64
	var count int
	for i := 0; i < iters; i++ {
		MulTransitionT(g, x, next)
		vecmath.Scale(next, 1-alpha)
		next[q] += alpha
		res := vecmath.L1Diff(x, next)
		x, next = next, x
		if i > 10 && prev > 1e-14 {
			sum += res / prev
			count++
		}
		prev = res
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

func TestProximityToConvergenceRate(t *testing.T) {
	alpha := 0.15
	// Theorem 2(b) gives (1−α) as the convergence rate; on a general
	// graph cancellation can only make the observed ratio smaller.
	if r := residualRatios(toyGraph(t), 2, alpha, 60); r > 1-alpha+1e-9 {
		t.Errorf("toy graph residual ratio %g exceeds theorem bound %g", r, 1-alpha)
	}
	// On a directed cycle, Aᵀ is a permutation and the L1 residual decays
	// by exactly (1−α) per step, attaining the bound.
	b := graph.NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%8))
	}
	cyc, _, err := b.Build(graph.DanglingReject)
	if err != nil {
		t.Fatal(err)
	}
	if r := residualRatios(cyc, 0, alpha, 60); math.Abs(r-(1-alpha)) > 1e-9 {
		t.Errorf("cycle residual ratio = %g, want exactly %g", r, 1-alpha)
	}
}

func TestProximityToArbitraryInit(t *testing.T) {
	// Theorem 2(a): the iteration converges to the same fixed point from
	// any initialization. Run it manually from a random start and compare
	// with ProximityTo's answer.
	g := toyGraph(t)
	p := DefaultParams()
	q := graph.NodeID(1)
	want, err := ProximityTo(g, q, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, g.N())
	for i := range x {
		x[i] = rng.Float64() * 3 // deliberately not a distribution
	}
	next := make([]float64, g.N())
	for i := 0; i < 400; i++ {
		MulTransitionT(g, x, next)
		vecmath.Scale(next, 1-p.Alpha)
		next[q] += p.Alpha
		x, next = next, x
	}
	if vecmath.MaxAbsDiff(x, want.Vector) > 1e-9 {
		t.Errorf("different fixed point from random init: max diff %g", vecmath.MaxAbsDiff(x, want.Vector))
	}
}

func TestProximityMatrixColumnsSumToOne(t *testing.T) {
	g := toyGraph(t)
	cols, err := ProximityMatrix(g, DefaultParams(), 0)
	if err != nil {
		t.Fatal(err)
	}
	for u, col := range cols {
		if math.Abs(vecmath.L1Norm(col)-1) > 1e-8 {
			t.Errorf("column %d sums to %g", u, vecmath.L1Norm(col))
		}
	}
}

func TestProximityMatrixTooLarge(t *testing.T) {
	b := graph.NewBuilder(MaxMatrixNodes + 1)
	b.AddEdge(0, 1)
	b.AddEdge(graph.NodeID(MaxMatrixNodes), 0)
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ProximityMatrix(g, DefaultParams(), 1); err == nil {
		t.Fatal("want size-limit error")
	}
}

func TestPageRankMatchesAverageColumn(t *testing.T) {
	// Eq. 3: pr = (1/n)·P·e = average of the proximity columns.
	g := toyGraph(t)
	p := DefaultParams()
	cols, err := ProximityMatrix(g, p, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, g.N())
	for _, col := range cols {
		vecmath.AddScaled(want, 1/float64(g.N()), col)
	}
	res, err := PageRank(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.MaxAbsDiff(res.Vector, want) > 1e-7 {
		t.Errorf("PageRank deviates from column average by %g", vecmath.MaxAbsDiff(res.Vector, want))
	}
}

func TestPersonalizedValidation(t *testing.T) {
	g := toyGraph(t)
	p := DefaultParams()
	if _, err := Personalized(g, []float64{1}, p); err == nil {
		t.Error("want length error")
	}
	bad := make([]float64, g.N())
	bad[0] = -1
	bad[1] = 2
	if _, err := Personalized(g, bad, p); err == nil {
		t.Error("want negativity error")
	}
	notSum := make([]float64, g.N())
	notSum[0] = 0.5
	if _, err := Personalized(g, notSum, p); err == nil {
		t.Error("want sum error")
	}
}

func TestPersonalizedEqualsProximityVectorOnUnitPreference(t *testing.T) {
	g := toyGraph(t)
	p := DefaultParams()
	v := make([]float64, g.N())
	v[3] = 1
	per, err := Personalized(g, v, p)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ProximityVector(g, 3, p)
	if err != nil {
		t.Fatal(err)
	}
	if vecmath.MaxAbsDiff(per.Vector, direct.Vector) > 1e-8 {
		t.Error("Personalized(e_u) != ProximityVector(u)")
	}
}

func TestOutOfRangeNodes(t *testing.T) {
	g := toyGraph(t)
	p := DefaultParams()
	if _, err := ProximityVector(g, -1, p); err == nil {
		t.Error("want range error")
	}
	if _, err := ProximityVector(g, 6, p); err == nil {
		t.Error("want range error")
	}
	if _, err := ProximityTo(g, 99, p); err == nil {
		t.Error("want range error")
	}
}

func TestPageRankContributionsSumToPageRank(t *testing.T) {
	// Σ_u contribution(u→q) must equal PageRank(q) for every q.
	g := toyGraph(t)
	p := DefaultParams()
	pr, err := PageRank(g, p)
	if err != nil {
		t.Fatal(err)
	}
	for q := graph.NodeID(0); int(q) < g.N(); q++ {
		contrib, err := PageRankContributions(g, q, p)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, c := range contrib.Vector {
			sum += c
		}
		if math.Abs(sum-pr.Vector[q]) > 1e-8 {
			t.Errorf("q=%d: contributions sum to %g, PageRank is %g", q, sum, pr.Vector[q])
		}
	}
}

func TestMulTransitionStochasticAllPolicies(t *testing.T) {
	// Column stochasticity must hold under every dangling policy.
	for _, policy := range []graph.DanglingPolicy{graph.DanglingSelfLoop, graph.DanglingSharedSink, graph.DanglingPrune} {
		rng := rand.New(rand.NewSource(9))
		b := graph.NewBuilder(30)
		for i := 0; i < 60; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(30)), graph.NodeID(rng.Intn(30)))
		}
		g, _, err := b.Build(policy)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() == 0 {
			continue
		}
		x := make([]float64, g.N())
		for i := range x {
			x[i] = rng.Float64()
		}
		dst := make([]float64, g.N())
		MulTransition(g, x, dst)
		if math.Abs(vecmath.L1Norm(dst)-vecmath.L1Norm(x)) > 1e-9 {
			t.Errorf("%v: mass not conserved: %g vs %g", policy, vecmath.L1Norm(dst), vecmath.L1Norm(x))
		}
	}
}

func TestMonteCarloApproximatesPowerMethod(t *testing.T) {
	g := toyGraph(t)
	p := DefaultParams()
	exact, err := ProximityVector(g, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	ep, err := MonteCarloEndPoint(g, 0, 200000, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := MonteCarloCompletePath(g, 0, 200000, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	if d := vecmath.MaxAbsDiff(ep, exact.Vector); d > 0.01 {
		t.Errorf("MC End Point deviates by %g", d)
	}
	if d := vecmath.MaxAbsDiff(cp, exact.Vector); d > 0.01 {
		t.Errorf("MC Complete Path deviates by %g", d)
	}
	// Complete Path should have lower error than End Point at equal walks
	// in aggregate (allow generous slack for randomness).
	if vecmath.L1Diff(cp, exact.Vector) > 2*vecmath.L1Diff(ep, exact.Vector)+0.01 {
		t.Errorf("Complete Path much worse than End Point: %g vs %g",
			vecmath.L1Diff(cp, exact.Vector), vecmath.L1Diff(ep, exact.Vector))
	}
}

func TestMonteCarloValidation(t *testing.T) {
	g := toyGraph(t)
	p := DefaultParams()
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarloEndPoint(g, 0, 0, p, rng); err == nil {
		t.Error("want walk-count error")
	}
	if _, err := MonteCarloCompletePath(g, -1, 10, p, rng); err == nil {
		t.Error("want range error")
	}
}

func TestWeightedProximityPrefersHeavyEdge(t *testing.T) {
	// Node 0 links to 1 (weight 9) and 2 (weight 1): proximity to 1 must
	// far exceed proximity to 2.
	b := graph.NewBuilder(3)
	b.AddWeightedEdge(0, 1, 9)
	b.AddWeightedEdge(0, 2, 1)
	b.AddWeightedEdge(1, 0, 1)
	b.AddWeightedEdge(2, 0, 1)
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ProximityVector(g, 0, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Vector[1] < 5*res.Vector[2] {
		t.Errorf("weighted transition ignored: p(1)=%g p(2)=%g", res.Vector[1], res.Vector[2])
	}
}
