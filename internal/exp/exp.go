// Package exp is the experiment harness: one driver per table and figure of
// the paper's evaluation (§5), each regenerating the same rows/series the
// paper reports, on the synthetic dataset analogs of package gen (see
// DESIGN.md for the substitution rationale and the expected shapes).
//
// Absolute numbers differ from the paper (their testbed was Matlab on a
// 500-core cluster; ours is a Go library on one machine) — the comparisons
// that must hold are relative: who wins, by what rough factor, and where
// the curves cross.
package exp

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
)

// GraphSpec names one evaluation graph (an analog of Table 2's datasets).
type GraphSpec struct {
	// Name is the dataset-analog label used in reports.
	Name string
	// Paper is the dataset the spec stands in for.
	Paper string
	// Nodes is the generated size.
	Nodes int
	// Kind selects the generator: "web" (copying model) or "social"
	// (preferential attachment).
	Kind string
	// Seed makes the graph reproducible.
	Seed int64
	// HubBudget is the per-graph B used when an experiment doesn't sweep
	// it (chosen like the paper: ≈1–2% of nodes for dense graphs, less
	// for sparse ones).
	HubBudget int
}

// Build generates the graph.
func (s GraphSpec) Build() (*graph.Graph, error) {
	switch s.Kind {
	case "web":
		return gen.WebGraph(s.Nodes, s.Seed)
	case "social":
		return gen.SocialGraph(s.Nodes, s.Seed)
	default:
		return nil, fmt.Errorf("exp: unknown graph kind %q", s.Kind)
	}
}

// DefaultGraphs returns the four dataset analogs at a size multiplier
// (scale=1 keeps every experiment comfortably inside a CI run; the paper's
// sizes correspond to scale ≈ 5–400).
func DefaultGraphs(scale int) []GraphSpec {
	if scale <= 0 {
		scale = 1
	}
	return []GraphSpec{
		{Name: "web-cs", Paper: "Web-stanford-cs", Nodes: 1000 * scale, Kind: "web", Seed: 11, HubBudget: 10 * scale},
		{Name: "social", Paper: "Epinions", Nodes: 1500 * scale, Kind: "social", Seed: 13, HubBudget: 20 * scale},
		{Name: "web-md", Paper: "Web-stanford", Nodes: 2500 * scale, Kind: "web", Seed: 17, HubBudget: 12 * scale},
		{Name: "web-lg", Paper: "Web-google", Nodes: 5000 * scale, Kind: "web", Seed: 19, HubBudget: 25 * scale},
	}
}

// indexOptions returns the paper-default index options with a harness K.
func indexOptions(k, hubBudget int, omega float64) lbindex.Options {
	o := lbindex.DefaultOptions()
	o.K = k
	o.HubBudget = hubBudget
	o.Omega = omega
	return o
}

// cloneIndex copies an index so that update/no-update comparisons start
// from identical bounds. Index.Clone is an O(n) pointer copy: committed
// rows and states are immutable, and update-mode commits on either copy
// replace pointers on that copy only.
func cloneIndex(idx *lbindex.Index) (*lbindex.Index, error) {
	return idx.Clone(), nil
}

// newTable returns a tabwriter for aligned report rendering.
func newTable(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// fmtBytes renders a byte count in human units.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
