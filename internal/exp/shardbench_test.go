package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunShardBenchShape runs the sharded-query experiment at toy scale:
// the oracle must agree at every P, the bound-exchange decisions must cover
// every (node, query) pair, and the JSON record must round-trip.
func TestRunShardBenchShape(t *testing.T) {
	cfg := DefaultShardBenchConfig(1)
	cfg.Nodes = 3000
	cfg.Queries = 3
	cfg.OracleQueries = 2
	res, err := RunShardBench(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Ps) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.Ps))
	}
	for _, r := range res.Rows {
		if !r.OracleAgree {
			t.Fatalf("P=%d: coordinator answers differ from the single engine", r.P)
		}
		decisions := r.PrunedByBound + r.ConfirmedByBound + r.Survivors
		if decisions != int64(res.GraphNodes)*int64(cfg.Queries) {
			t.Fatalf("P=%d: decisions cover %d of %d node-query pairs",
				r.P, decisions, int64(res.GraphNodes)*int64(cfg.Queries))
		}
		if r.PrunedByBound == 0 {
			t.Fatalf("P=%d: no cross-shard bound pruning recorded", r.P)
		}
		if r.QPS <= 0 || r.NaiveNSPerQuery <= 0 {
			t.Fatalf("P=%d: degenerate timings %+v", r.P, r)
		}
	}

	jsonPath := filepath.Join(t.TempDir(), "BENCH_shard.json")
	var buf bytes.Buffer
	if err := WriteShardBench(&buf, res, jsonPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pruned-by-bound") {
		t.Error("render missing pruning column")
	}
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var round ShardBenchResult
	if err := json.Unmarshal(blob, &round); err != nil {
		t.Fatal(err)
	}
	if round.GraphNodes != res.GraphNodes || len(round.Rows) != len(res.Rows) {
		t.Error("JSON record does not round-trip")
	}
}
