package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

// Fig7Point is the cost of one query in the sequential workload of Fig. 7.
type Fig7Point struct {
	QueryID  int
	Update   time.Duration
	NoUpdate time.Duration
}

// Fig7Config parameterizes the index-refinement effectiveness study.
type Fig7Config struct {
	Graph   GraphSpec
	K       int // query k (the paper uses 100)
	IndexK  int
	Queries int
	Omega   float64
	Seed    int64
}

// DefaultFig7Config mirrors §5.3 ("Effectiveness of Index Refinement") at
// harness scale: reverse top-100 queries on the Web-stanford analog.
func DefaultFig7Config(scale int) Fig7Config {
	graphs := DefaultGraphs(scale)
	return Fig7Config{
		Graph:   graphs[2], // web-md: the Web-stanford analog
		K:       100,
		IndexK:  100,
		Queries: 100,
		Omega:   1e-6,
		Seed:    303,
	}
}

// RunFigure7 runs the same query sequence against an updating index and a
// frozen one, recording per-query cost. The paper's observation: the gap
// widens with the query id, because later queries reuse earlier
// refinements.
func RunFigure7(cfg Fig7Config, progress io.Writer) ([]Fig7Point, error) {
	g, err := cfg.Graph.Build()
	if err != nil {
		return nil, err
	}
	built, _, err := lbindex.Build(g, indexOptions(cfg.IndexK, cfg.Graph.HubBudget, cfg.Omega))
	if err != nil {
		return nil, err
	}
	queries, err := workload.Queries(g.N(), cfg.Queries, cfg.Seed)
	if err != nil {
		return nil, err
	}

	points := make([]Fig7Point, len(queries))
	for _, update := range []bool{true, false} {
		idx, err := cloneIndex(built)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(g, idx, update)
		if err != nil {
			return nil, err
		}
		eng.SetPracticalDecisions(true) // paper-literal decisions; see Fig5
		for i, q := range queries {
			_, stats, err := eng.Query(q, cfg.K)
			if err != nil {
				return nil, err
			}
			points[i].QueryID = i
			if update {
				points[i].Update = stats.Elapsed
			} else {
				points[i].NoUpdate = stats.Elapsed
			}
		}
		if progress != nil {
			fmt.Fprintf(progress, "fig7: update=%t done\n", update)
		}
	}
	return points, nil
}

// WriteFigure7 renders the per-query cost series.
func WriteFigure7(w io.Writer, points []Fig7Point) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "query_id\tupdate\tno_update")
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%v\t%v\n", p.QueryID, p.Update.Round(time.Microsecond), p.NoUpdate.Round(time.Microsecond))
	}
	return tw.Flush()
}

// Fig8Point is one sampled point of the cumulative-cost curves of Fig. 8.
type Fig8Point struct {
	QueriesDone int
	Ours        time.Duration
	IBF         time.Duration
	FBF         time.Duration
}

// Fig8Config parameterizes the cumulative-cost study.
type Fig8Config struct {
	Graph  GraphSpec
	K      int // query k (paper: 10)
	IndexK int
	Omega  float64
	// SamplePoints bounds the number of emitted curve points.
	SamplePoints int
}

// DefaultFig8Config mirrors §5.3 ("Cumulative Cost"): every node of the
// Web-stanford-cs analog is a query, k=10.
func DefaultFig8Config(scale int) Fig8Config {
	graphs := DefaultGraphs(scale)
	return Fig8Config{
		Graph:        graphs[0], // web-cs analog
		K:            10,
		IndexK:       100,
		Omega:        1e-6,
		SamplePoints: 50,
	}
}

// RunFigure8 compares the cumulative cost of (a) our index + online
// queries with updates, (b) IBF: full P materialization then minimal
// per-query row scans, (c) FBF: exact top-K precomputation then PMPN per
// query. Build costs enter each curve at query 0.
//
// All three builds run single-threaded: the paper reports times summed
// over cores (§5), i.e. total CPU work, and wall-clock on one worker is
// the faithful analog. Queries are sequential in all three systems anyway.
func RunFigure8(cfg Fig8Config, progress io.Writer) ([]Fig8Point, error) {
	g, err := cfg.Graph.Build()
	if err != nil {
		return nil, err
	}
	queries := workload.AllNodes(g.N())

	// Ours.
	opts := indexOptions(cfg.IndexK, cfg.Graph.HubBudget, cfg.Omega)
	opts.Workers = 1
	buildStart := time.Now()
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		return nil, err
	}
	ourBuild := time.Since(buildStart)
	eng, err := core.NewEngine(g, idx, true)
	if err != nil {
		return nil, err
	}
	eng.SetPracticalDecisions(true) // paper-literal decisions; see Fig5

	// Brute-force baselines (exact, shared K ceiling), also single-core.
	ibf, err := baseline.BuildIBF(g, cfg.IndexK, idx.Options().RWR, 1)
	if err != nil {
		return nil, err
	}
	fbf, err := baseline.BuildFBF(g, cfg.IndexK, idx.Options().RWR, 1)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "fig8: builds done ours=%v ibf=%v fbf=%v\n",
			ourBuild.Round(time.Millisecond), ibf.BuildElapsed.Round(time.Millisecond), fbf.BuildElapsed.Round(time.Millisecond))
	}

	stride := len(queries) / cfg.SamplePoints
	if stride < 1 {
		stride = 1
	}
	cumOurs, cumIBF, cumFBF := ourBuild, ibf.BuildElapsed, fbf.BuildElapsed
	var points []Fig8Point
	points = append(points, Fig8Point{QueriesDone: 0, Ours: cumOurs, IBF: cumIBF, FBF: cumFBF})
	for i, q := range queries {
		_, stats, err := eng.Query(q, cfg.K)
		if err != nil {
			return nil, err
		}
		cumOurs += stats.Elapsed

		t0 := time.Now()
		if _, err := ibf.Query(q, cfg.K); err != nil {
			return nil, err
		}
		cumIBF += time.Since(t0)

		t0 = time.Now()
		if _, err := fbf.Query(q, cfg.K); err != nil {
			return nil, err
		}
		cumFBF += time.Since(t0)

		if (i+1)%stride == 0 || i == len(queries)-1 {
			points = append(points, Fig8Point{QueriesDone: i + 1, Ours: cumOurs, IBF: cumIBF, FBF: cumFBF})
		}
	}
	return points, nil
}

// WriteFigure8 renders the cumulative curves.
func WriteFigure8(w io.Writer, points []Fig8Point) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "queries\tours_cum\tibf_cum\tfbf_cum")
	for _, p := range points {
		fmt.Fprintf(tw, "%d\t%v\t%v\t%v\n", p.QueriesDone,
			p.Ours.Round(time.Millisecond), p.IBF.Round(time.Millisecond), p.FBF.Round(time.Millisecond))
	}
	return tw.Flush()
}
