package exp

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/lbindex"
	"repro/internal/serve"
	"repro/internal/workload"
)

// ServeRow is one phase of the HTTP serving smoke: a full drive of the
// workload against the daemon in a given cache/snapshot regime.
type ServeRow struct {
	Phase string
	Epoch uint64
	Stats workload.DriveStats
}

// ServeConfig parameterizes the serving smoke.
type ServeConfig struct {
	Graph GraphSpec
	// IndexK is the built index's K; K the served query k.
	IndexK, K int
	// Queries is the workload size; Concurrency the client parallelism.
	Queries, Concurrency int
	// CacheBytes, MaxInflight, WorkerBudget configure the daemon.
	CacheBytes                int64
	MaxInflight, WorkerBudget int
	// Edits is the size of the maintenance batch applied between the warm
	// and post-refresh phases.
	Edits int
	Seed  int64
}

// DefaultServeConfig exercises the daemon on the Web-stanford-cs analog:
// a cold sweep, a warm (fully cached) sweep, and a cold sweep after a
// snapshot refresh.
func DefaultServeConfig(scale int) ServeConfig {
	graphs := DefaultGraphs(scale)
	return ServeConfig{
		Graph:       graphs[0],
		IndexK:      50,
		K:           10,
		Queries:     300,
		Concurrency: 8,
		CacheBytes:  serve.DefaultCacheBytes,
		Edits:       10,
		Seed:        707,
	}
}

// RunServeSmoke builds the graph and index, starts an rtkserve daemon on a
// loopback port, and drives the workload through three phases: cold (every
// answer computed), warm (every answer cached), and post-refresh (a
// maintenance pass published a new snapshot, so the cache restarts cold at
// the next epoch).
func RunServeSmoke(cfg ServeConfig, progress io.Writer) ([]ServeRow, error) {
	g, err := cfg.Graph.Build()
	if err != nil {
		return nil, err
	}
	opts := indexOptions(cfg.IndexK, cfg.Graph.HubBudget, 1e-6)
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "serve: built %s index (n=%d)\n", cfg.Graph.Name, g.N())
	}

	srv, err := serve.New(g, idx, serve.Config{
		CacheBytes:   cfg.CacheBytes,
		MaxInflight:  cfg.MaxInflight,
		WorkerBudget: cfg.WorkerBudget,
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	queries, err := workload.Queries(g.N(), cfg.Queries, cfg.Seed)
	if err != nil {
		return nil, err
	}

	var rows []ServeRow
	drive := func(phase string) error {
		st, err := workload.DriveHTTP(base, queries, cfg.K, cfg.Concurrency)
		if err != nil {
			return fmt.Errorf("exp: %s phase: %w", phase, err)
		}
		epoch := srv.Store().Current().Epoch
		rows = append(rows, ServeRow{Phase: phase, Epoch: epoch, Stats: st})
		if progress != nil {
			fmt.Fprintf(progress, "serve: %s epoch=%d qps=%.0f p95=%v hits=%d\n",
				phase, epoch, st.QPS, st.P95Latency.Round(time.Microsecond), st.CacheHits)
		}
		return nil
	}
	if err := drive("cold"); err != nil {
		return nil, err
	}
	if err := drive("warm"); err != nil {
		return nil, err
	}

	edits := randomEdits(g, cfg.Edits, cfg.Seed+2)
	if _, _, err := srv.ApplyEdits(edits, 0); err != nil {
		return nil, err
	}
	if err := drive("post-refresh"); err != nil {
		return nil, err
	}
	// The smoke is also the exposition gate: the daemon that just served
	// real traffic must scrape cleanly with every required metric family.
	fams, err := ValidateExposition(base)
	if err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "serve: /metrics exposition valid (%d families)\n", fams)
	}
	return rows, nil
}

// WriteServeSmoke renders the per-phase serving numbers.
func WriteServeSmoke(w io.Writer, rows []ServeRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "phase\tepoch\trequests\tok\thits\tcoalesced\tcomputed\trejected\tqps\tmean\tp50\tp95\tmax")
	for _, r := range rows {
		s := r.Stats
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.0f\t%v\t%v\t%v\t%v\n",
			r.Phase, r.Epoch, s.Requests, s.OK, s.CacheHits, s.Coalesced, s.Computed, s.Rejected,
			s.QPS,
			s.MeanLatency.Round(time.Microsecond), s.P50Latency.Round(time.Microsecond),
			s.P95Latency.Round(time.Microsecond), s.MaxLatency.Round(time.Microsecond))
	}
	return tw.Flush()
}
