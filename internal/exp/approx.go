package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

// ApproxRow compares the approximate query mode (§5.3's suggested
// hits-only variant, core.QueryApproximate) against the exact engine for
// one k: recall, precision and speedup.
type ApproxRow struct {
	Graph        string
	K            int
	Recall       float64
	Precision    float64
	ExactAvgTime time.Duration
	ApproxAvg    time.Duration
	Queries      int
}

// ApproxConfig parameterizes the approximate-mode study.
type ApproxConfig struct {
	Graph   GraphSpec
	Ks      []int
	IndexK  int
	Queries int
	Omega   float64
	Seed    int64
}

// DefaultApproxConfig evaluates the hits-only approximation on the
// Web-stanford-cs analog — the graph where the paper observes hits ≈
// results.
func DefaultApproxConfig(scale int) ApproxConfig {
	graphs := DefaultGraphs(scale)
	return ApproxConfig{
		Graph:   graphs[0],
		Ks:      []int{5, 10, 20, 50, 100},
		IndexK:  100,
		Queries: 100,
		Omega:   1e-6,
		Seed:    505,
	}
}

// RunApproxStudy measures the accuracy/cost trade-off of the approximate
// query mode. The paper ties the approximation to the "hits ≈ results"
// observation of Fig. 6, which it measures on a PROGRESSIVELY REFINED
// index (update mode); we therefore warm each index copy with one
// update-mode pass of the workload before measuring, and then freeze it.
// Expectation: recall near 1 on web graphs with a solid speedup, since all
// candidate refinement is skipped. Every random choice here flows from
// cfg.Seed (the workload) — nothing in this study or the anytime tier it
// now rides on touches the global math/rand stream, so runs with equal
// configs are bit-identical. RunApprox (approxtier.go) is the eps/delta
// frontier companion to this fixed-budget study.
func RunApproxStudy(cfg ApproxConfig, progress io.Writer) ([]ApproxRow, error) {
	g, err := cfg.Graph.Build()
	if err != nil {
		return nil, err
	}
	idx, _, err := lbindex.Build(g, indexOptions(cfg.IndexK, cfg.Graph.HubBudget, cfg.Omega))
	if err != nil {
		return nil, err
	}
	queries, err := workload.Queries(g.N(), cfg.Queries, cfg.Seed)
	if err != nil {
		return nil, err
	}

	var rows []ApproxRow
	for _, k := range cfg.Ks {
		if k > cfg.IndexK {
			continue
		}
		// Fresh warmed engine per k, then frozen, so timings compare the
		// two query modes on identical bounds.
		idxCopy, err := cloneIndex(idx)
		if err != nil {
			return nil, err
		}
		warm, err := core.NewEngine(g, idxCopy, true)
		if err != nil {
			return nil, err
		}
		for _, q := range queries {
			if _, _, err := warm.Query(q, k); err != nil {
				return nil, err
			}
		}
		eng, err := core.NewEngine(g, idxCopy, false)
		if err != nil {
			return nil, err
		}
		row := ApproxRow{Graph: cfg.Graph.Name, K: k, Queries: len(queries)}
		var exactTime, approxTime time.Duration
		var interTotal, exactTotal, approxTotal int
		for _, q := range queries {
			approx, as, err := eng.QueryApproximate(q, k)
			if err != nil {
				return nil, err
			}
			exact, es, err := eng.Query(q, k)
			if err != nil {
				return nil, err
			}
			approxTime += as.Elapsed
			exactTime += es.Elapsed
			inExact := make(map[int32]bool, len(exact))
			for _, u := range exact {
				inExact[u] = true
			}
			for _, u := range approx {
				if inExact[u] {
					interTotal++
				}
			}
			exactTotal += len(exact)
			approxTotal += len(approx)
		}
		if exactTotal > 0 {
			row.Recall = float64(interTotal) / float64(exactTotal)
		} else {
			row.Recall = 1
		}
		if approxTotal > 0 {
			row.Precision = float64(interTotal) / float64(approxTotal)
		} else {
			row.Precision = 1
		}
		nq := float64(len(queries))
		row.ExactAvgTime = time.Duration(float64(exactTime) / nq)
		row.ApproxAvg = time.Duration(float64(approxTime) / nq)
		rows = append(rows, row)
		if progress != nil {
			fmt.Fprintf(progress, "approx: k=%d recall=%.3f precision=%.3f\n", k, row.Recall, row.Precision)
		}
	}
	return rows, nil
}

// WriteApproxStudy renders the study.
func WriteApproxStudy(w io.Writer, rows []ApproxRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "graph\tk\trecall\tprecision\texact_avg\tapprox_avg\tqueries")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%.4f\t%.4f\t%v\t%v\t%d\n",
			r.Graph, r.K, r.Recall, r.Precision,
			r.ExactAvgTime.Round(time.Microsecond), r.ApproxAvg.Round(time.Microsecond), r.Queries)
	}
	return tw.Flush()
}
