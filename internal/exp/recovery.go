package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/evolve"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/serve"
)

// RecoveryConfig parameterizes the durability benchmark: what one fsync'd
// acknowledgement costs against the unsynced and volatile alternatives,
// and how crash-recovery replay time scales with journal length.
type RecoveryConfig struct {
	Graph         GraphSpec
	IndexK        int
	EditsPerBatch int
	// AckBatches is the burst length for the acknowledgement-latency
	// comparison (each durability mode replays the same burst).
	AckBatches int
	// ReplayLengths is the journal-length sweep (in batches) for the
	// replay-time measurement.
	ReplayLengths []int
	// Theta keeps per-batch refresh work small so the journal, not the
	// maintenance pipeline, dominates what is being measured.
	Theta float64
	Seed  int64
}

// DefaultRecoveryConfig sizes the study to run in CI seconds.
func DefaultRecoveryConfig(scale int) RecoveryConfig {
	if scale < 1 {
		scale = 1
	}
	return RecoveryConfig{
		Graph:         GraphSpec{Name: "web-4k", Paper: "synthetic", Nodes: 4096, Kind: "web", Seed: 707, HubBudget: 16},
		IndexK:        16,
		EditsPerBatch: 8,
		AckBatches:    64 * scale,
		ReplayLengths: []int{16 * scale, 32 * scale, 64 * scale},
		Theta:         0.5,
		Seed:          707,
	}
}

// AckStats summarizes acknowledgement latency for one durability mode.
type AckStats struct {
	Mode    string `json:"mode"`
	Batches int    `json:"batches"`
	MeanNS  int64  `json:"mean_ns"`
	P50NS   int64  `json:"p50_ns"`
	P99NS   int64  `json:"p99_ns"`
}

// ReplayRow is one point of the replay-time-vs-journal-length curve.
type ReplayRow struct {
	Batches      int   `json:"batches"`
	JournalBytes int64 `json:"journal_bytes"`
	ReplayNS     int64 `json:"replay_ns"`
	PerBatchNS   int64 `json:"per_batch_ns"`
}

// RecoveryResult is the machine-readable record emitted as
// BENCH_recovery.json (rtkbench -exp recovery -json <path>): the price of
// the fsync behind every 202 acknowledgement, and how long a restart
// spends replaying a journal of a given length.
type RecoveryResult struct {
	GraphNodes    int        `json:"graph_nodes"`
	GraphEdges    int        `json:"graph_edges"`
	EditsPerBatch int        `json:"edits_per_batch"`
	Ack           []AckStats `json:"ack"`
	// FsyncOverheadX is fsync'd mean ack latency over the volatile mean —
	// the durability tax on the edit path.
	FsyncOverheadX float64     `json:"fsync_overhead_x"`
	Replay         []ReplayRow `json:"replay"`
}

// insertBatches precomputes `batches` disjoint batches of edits, each
// inserting `per` distinct non-edges — every batch valid against the base
// graph regardless of which earlier batches were applied.
func insertBatches(g *graph.Graph, batches, per int, seed int64) ([][]evolve.Edit, error) {
	rng := rand.New(rand.NewSource(seed))
	used := make(map[[2]graph.NodeID]bool)
	out := make([][]evolve.Edit, batches)
	for b := range out {
		batch := make([]evolve.Edit, 0, per)
		for tries := 0; len(batch) < per; tries++ {
			if tries > 1000*per {
				return nil, fmt.Errorf("exp: graph too dense to find %d disjoint non-edges", batches*per)
			}
			u := graph.NodeID(rng.Intn(g.N()))
			v := graph.NodeID(rng.Intn(g.N()))
			k := [2]graph.NodeID{u, v}
			if u == v || used[k] || g.HasEdge(u, v) {
				continue
			}
			used[k] = true
			batch = append(batch, evolve.Edit{From: u, To: v})
		}
		out[b] = batch
	}
	return out, nil
}

func ackStats(mode string, lat []time.Duration) AckStats {
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	pct := func(p float64) int64 {
		i := int(p * float64(len(lat)-1))
		return int64(lat[i])
	}
	return AckStats{
		Mode:    mode,
		Batches: len(lat),
		MeanNS:  int64(sum) / int64(len(lat)),
		P50NS:   pct(0.50),
		P99NS:   pct(0.99),
	}
}

// RunRecovery measures the durability tax and the replay curve.
func RunRecovery(cfg RecoveryConfig, progress io.Writer) (*RecoveryResult, error) {
	g, err := cfg.Graph.Build()
	if err != nil {
		return nil, err
	}
	opts := indexOptions(cfg.IndexK, cfg.Graph.HubBudget, 1e-5)
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		return nil, err
	}
	res := &RecoveryResult{
		GraphNodes:    g.N(),
		GraphEdges:    g.M(),
		EditsPerBatch: cfg.EditsPerBatch,
	}
	dir, err := os.MkdirTemp("", "rtk-recovery-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	batches, err := insertBatches(g, cfg.AckBatches, cfg.EditsPerBatch, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Acknowledgement latency per durability mode. Each mode gets a fresh
	// server and journal; the maintenance pipeline drains concurrently,
	// exactly as in production — what is timed is the enqueue path the
	// client's 202 waits on.
	modes := []struct {
		name   string
		durCfg *serve.DurabilityConfig
	}{
		{"fsync", &serve.DurabilityConfig{JournalPath: filepath.Join(dir, "ack-fsync.wal")}},
		{"nosync", &serve.DurabilityConfig{JournalPath: filepath.Join(dir, "ack-nosync.wal"), NoSync: true}},
		{"volatile", nil},
	}
	var volatileMean, fsyncMean int64
	for _, mode := range modes {
		var s *serve.Server
		if mode.durCfg == nil {
			s, err = serve.New(g, idx.Clone(), serve.Config{})
		} else {
			s, _, err = serve.NewDurable(g, idx.Clone(), serve.Config{}, *mode.durCfg)
		}
		if err != nil {
			return nil, err
		}
		lat := make([]time.Duration, 0, len(batches))
		var last *serve.Pending
		for _, edits := range batches {
			start := time.Now()
			p, err := s.EnqueueEdits(edits, cfg.Theta)
			if err != nil {
				s.Close()
				return nil, err
			}
			lat = append(lat, time.Since(start))
			last = p
		}
		if _, _, err := last.Wait(); err != nil {
			s.Close()
			return nil, err
		}
		s.Close()
		st := ackStats(mode.name, lat)
		res.Ack = append(res.Ack, st)
		switch mode.name {
		case "fsync":
			fsyncMean = st.MeanNS
		case "volatile":
			volatileMean = st.MeanNS
		}
		if progress != nil {
			fmt.Fprintf(progress, "recovery: ack[%s] mean=%v p99=%v over %d batches\n",
				mode.name, time.Duration(st.MeanNS).Round(time.Microsecond),
				time.Duration(st.P99NS).Round(time.Microsecond), st.Batches)
		}
	}
	if volatileMean > 0 {
		res.FsyncOverheadX = float64(fsyncMean) / float64(volatileMean)
	}

	// Replay time vs journal length: write a journal of L applied batches,
	// crash (no checkpoint), time the restart's synchronous replay.
	for _, length := range cfg.ReplayLengths {
		if length > len(batches) {
			length = len(batches)
		}
		jp := filepath.Join(dir, fmt.Sprintf("replay-%d.wal", length))
		s, _, err := serve.NewDurable(g, idx.Clone(), serve.Config{}, serve.DurabilityConfig{JournalPath: jp})
		if err != nil {
			return nil, err
		}
		for _, edits := range batches[:length] {
			if _, _, err := s.ApplyEdits(edits, cfg.Theta); err != nil {
				s.Close()
				return nil, err
			}
		}
		s.Close()
		fi, err := os.Stat(jp)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		s2, info, err := serve.NewDurable(g, idx.Clone(), serve.Config{}, serve.DurabilityConfig{JournalPath: jp})
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		s2.Close()
		if info.Replayed != length {
			return nil, fmt.Errorf("exp: replayed %d of %d journaled batches", info.Replayed, length)
		}
		row := ReplayRow{
			Batches:      length,
			JournalBytes: fi.Size(),
			ReplayNS:     int64(elapsed),
			PerBatchNS:   int64(elapsed) / int64(length),
		}
		res.Replay = append(res.Replay, row)
		if progress != nil {
			fmt.Fprintf(progress, "recovery: replay %d batches (%d B journal) in %v (%v/batch)\n",
				row.Batches, row.JournalBytes, elapsed.Round(time.Millisecond),
				time.Duration(row.PerBatchNS).Round(time.Microsecond))
		}
	}
	return res, nil
}

// WriteRecovery renders the study and writes the JSON record when jsonPath
// is non-empty.
func WriteRecovery(w io.Writer, res *RecoveryResult, jsonPath string) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "mode\tbatches\tack_mean\tack_p50\tack_p99")
	for _, a := range res.Ack {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\n", a.Mode, a.Batches,
			time.Duration(a.MeanNS).Round(time.Microsecond),
			time.Duration(a.P50NS).Round(time.Microsecond),
			time.Duration(a.P99NS).Round(time.Microsecond))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "fsync overhead: %.1fx over volatile acknowledgement\n\n", res.FsyncOverheadX)
	tw = newTable(w)
	fmt.Fprintln(tw, "journal_batches\tjournal_bytes\treplay_time\tper_batch")
	for _, r := range res.Replay {
		fmt.Fprintf(tw, "%d\t%d\t%v\t%v\n", r.Batches, r.JournalBytes,
			time.Duration(r.ReplayNS).Round(time.Millisecond),
			time.Duration(r.PerBatchNS).Round(time.Microsecond))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}
