package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/evolve"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/rwr"
	"repro/internal/workload"
)

// EvolveRow reports incremental index maintenance (the paper's §7 future
// work, implemented in package evolve) for one staleness threshold θ.
type EvolveRow struct {
	Theta float64 `json:"theta"`
	// Affected is the number of origins re-indexed at this θ.
	Affected int `json:"affected"`
	// RefreshTime is the incremental maintenance cost; RebuildTime the
	// from-scratch alternative.
	RefreshTime time.Duration `json:"refresh_ns"`
	RebuildTime time.Duration `json:"rebuild_ns"`
	// Jaccard compares post-refresh answers against a fresh rebuild.
	Jaccard float64 `json:"jaccard"`
	Queries int     `json:"queries"`
}

// EvolveConfig parameterizes the study.
type EvolveConfig struct {
	Graph   GraphSpec
	Edits   int
	Thetas  []float64
	K       int
	IndexK  int
	Queries int
	Omega   float64
	Seed    int64
}

// DefaultEvolveConfig applies a small batch of random edge insertions and
// deletions to the Web-stanford-cs analog and sweeps the staleness
// threshold.
func DefaultEvolveConfig(scale int) EvolveConfig {
	graphs := DefaultGraphs(scale)
	return EvolveConfig{
		Graph:   graphs[0],
		Edits:   20,
		Thetas:  []float64{0, 1e-5, 1e-4, 1e-3},
		K:       10,
		IndexK:  100,
		Queries: 40,
		Omega:   1e-6,
		Seed:    606,
	}
}

// randomEdits produces a valid mix of insertions and deletions.
func randomEdits(g graph.View, count int, seed int64) []evolve.Edit {
	rng := rand.New(rand.NewSource(seed))
	var edits []evolve.Edit
	touched := map[graph.NodeID]bool{}
	for len(edits) < count {
		u := graph.NodeID(rng.Intn(g.N()))
		if touched[u] {
			continue
		}
		if rng.Intn(2) == 0 && g.OutDegree(u) > 1 {
			nbrs := g.OutNeighbors(u)
			edits = append(edits, evolve.Edit{From: u, To: nbrs[rng.Intn(len(nbrs))], Remove: true})
		} else {
			v := graph.NodeID(rng.Intn(g.N()))
			if v == u || g.HasEdge(u, v) {
				continue
			}
			edits = append(edits, evolve.Edit{From: u, To: v})
		}
		touched[u] = true
	}
	return edits
}

// RunEvolveStudy measures incremental refresh against full rebuild across
// the staleness-threshold sweep. Expected shape: θ=0 matches the rebuild
// exactly; growing θ shrinks the affected set and the refresh time while
// answer similarity decays only marginally.
func RunEvolveStudy(cfg EvolveConfig, progress io.Writer) ([]EvolveRow, error) {
	g, err := cfg.Graph.Build()
	if err != nil {
		return nil, err
	}
	opts := indexOptions(cfg.IndexK, cfg.Graph.HubBudget, cfg.Omega)
	baseIdx, _, err := lbindex.Build(g, opts)
	if err != nil {
		return nil, err
	}

	edits := randomEdits(g, cfg.Edits, cfg.Seed)
	g2, err := evolve.ApplyEdits(g, edits, graph.DanglingSelfLoop)
	if err != nil {
		return nil, err
	}
	if g2.N() != g.N() {
		return nil, fmt.Errorf("exp: edits changed the node count")
	}

	// Reference: full rebuild on the edited graph.
	rebuildStart := time.Now()
	rebuiltIdx, _, err := lbindex.Build(g2, opts)
	if err != nil {
		return nil, err
	}
	rebuildTime := time.Since(rebuildStart)
	refEng, err := core.NewEngine(g2, rebuiltIdx, true)
	if err != nil {
		return nil, err
	}
	queries, err := workload.Queries(g2.N(), cfg.Queries, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	reference := make([][]graph.NodeID, len(queries))
	for i, q := range queries {
		reference[i], _, err = refEng.Query(q, cfg.K)
		if err != nil {
			return nil, err
		}
	}

	sources := evolve.Sources(edits)
	var rows []EvolveRow
	for _, theta := range cfg.Thetas {
		idx, err := cloneIndex(baseIdx)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		affected, err := evolve.AffectedOrigins(g2, sources, theta, opts.RWR)
		if err != nil {
			return nil, err
		}
		stats, err := evolve.Refresh(g2, idx, affected)
		if err != nil {
			return nil, err
		}
		refreshTime := time.Since(start)

		eng, err := core.NewEngine(g2, idx, true)
		if err != nil {
			return nil, err
		}
		var jSum float64
		for i, q := range queries {
			res, _, err := eng.Query(q, cfg.K)
			if err != nil {
				return nil, err
			}
			jSum += workload.Jaccard(res, reference[i])
		}
		rows = append(rows, EvolveRow{
			Theta:       theta,
			Affected:    stats.Affected,
			RefreshTime: refreshTime,
			RebuildTime: rebuildTime,
			Jaccard:     jSum / float64(len(queries)),
			Queries:     len(queries),
		})
		if progress != nil {
			fmt.Fprintf(progress, "evolve: θ=%g affected=%d refresh=%v jaccard=%.4f\n",
				theta, stats.Affected, refreshTime.Round(time.Millisecond), rows[len(rows)-1].Jaccard)
		}
	}
	return rows, nil
}

// WriteEvolveStudy renders the sweep.
func WriteEvolveStudy(w io.Writer, rows []EvolveRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "theta\taffected\trefresh_time\trebuild_time\tanswer_jaccard\tqueries")
	for _, r := range rows {
		fmt.Fprintf(tw, "%g\t%d\t%v\t%v\t%.4f\t%d\n",
			r.Theta, r.Affected, r.RefreshTime.Round(time.Millisecond), r.RebuildTime.Round(time.Millisecond), r.Jaccard, r.Queries)
	}
	return tw.Flush()
}

// EvolveBenchResult is the machine-readable edit-throughput record emitted
// as BENCH_evolve.json (rtkbench -exp evolve -json <path>), so the perf
// trajectory of the maintenance pipeline has durable data points: overlay
// apply vs full rebuild on a ≥100k-edge graph, compaction cost, and the
// staleness-threshold refresh sweep.
type EvolveBenchResult struct {
	GraphNodes int `json:"graph_nodes"`
	GraphEdges int `json:"graph_edges"`
	BatchEdits int `json:"batch_edits"`
	Batches    int `json:"batches"`
	// Per-batch apply costs.
	OverlayApplyNS int64   `json:"overlay_apply_ns"`
	RebuildNS      int64   `json:"rebuild_ns"`
	ApplySpeedup   float64 `json:"apply_speedup"`
	EditsPerSec    float64 `json:"edits_per_sec_overlay"`
	// CompactNS is one overlay→CSR fold after all batches.
	CompactNS int64 `json:"compact_ns"`
	// OracleEquivalent records the end-of-run check that the compacted
	// overlay chain equals the rebuild chain (adjacency + one bitwise
	// PMPN matvec).
	OracleEquivalent bool `json:"oracle_equivalent"`
	// Refresh is the incremental-refresh-vs-rebuild sweep on the study
	// graph (durations in nanoseconds).
	Refresh []EvolveRow `json:"refresh"`
}

// RunEvolveBench measures edit throughput of the overlay layer on an RMAT
// graph with ≥100k edges: it chains `Batches` batches of `BatchEdits`
// random edits through both the O(edits) overlay apply and the O(N+M)
// rebuild, timing each, verifies the two chains stay equivalent, and times
// one compaction. The refresh sweep rows come from RunEvolveStudy on the
// (smaller) study graph.
func RunEvolveBench(cfg EvolveConfig, progress io.Writer) (*EvolveBenchResult, error) {
	const (
		rmatScale  = 14 // 16384 nodes
		edgeFactor = 8  // ~131k edges before dedup
		batchEdits = 10
		batches    = 20
	)
	g, err := gen.RMAT(rmatScale, edgeFactor, 0.57, 0.19, 0.19, 0.05, 404)
	if err != nil {
		return nil, err
	}
	res := &EvolveBenchResult{
		GraphNodes: g.N(),
		GraphEdges: g.M(),
		BatchEdits: batchEdits,
		Batches:    batches,
	}

	// Chain the same batches through both implementations.
	ov := graph.NewOverlay(g)
	rebuilt := g
	var overlayNS, rebuildNS int64
	for i := 0; i < batches; i++ {
		edits := randomEdits(ov, batchEdits, 505+int64(i))
		start := time.Now()
		next, err := ov.Apply(edits)
		if err != nil {
			return nil, fmt.Errorf("exp: overlay batch %d: %w", i, err)
		}
		overlayNS += int64(time.Since(start))
		ov = next

		start = time.Now()
		rebuilt, err = evolve.ApplyEdits(rebuilt, edits, graph.DanglingSelfLoop)
		if err != nil {
			return nil, fmt.Errorf("exp: rebuild batch %d: %w", i, err)
		}
		rebuildNS += int64(time.Since(start))
	}
	res.OverlayApplyNS = overlayNS / batches
	res.RebuildNS = rebuildNS / batches
	if overlayNS > 0 {
		res.ApplySpeedup = float64(rebuildNS) / float64(overlayNS)
		res.EditsPerSec = float64(batches*batchEdits) / (float64(overlayNS) / 1e9)
	}

	start := time.Now()
	compacted, err := ov.Compact()
	if err != nil {
		return nil, err
	}
	res.CompactNS = int64(time.Since(start))
	res.OracleEquivalent = viewsAgree(rebuilt, ov) && viewsAgree(rebuilt, compacted)
	if !res.OracleEquivalent {
		return nil, fmt.Errorf("exp: overlay chain diverged from rebuild chain")
	}
	if progress != nil {
		fmt.Fprintf(progress, "evolve-bench: n=%d m=%d apply=%v rebuild=%v speedup=%.0fx compact=%v\n",
			res.GraphNodes, res.GraphEdges,
			time.Duration(res.OverlayApplyNS).Round(time.Microsecond),
			time.Duration(res.RebuildNS).Round(time.Microsecond),
			res.ApplySpeedup, time.Duration(res.CompactNS).Round(time.Millisecond))
	}

	rows, err := RunEvolveStudy(cfg, progress)
	if err != nil {
		return nil, err
	}
	res.Refresh = rows
	return res, nil
}

// viewsAgree checks adjacency equality on BOTH sides plus one bitwise
// matvec per kernel family (gather-over-out and gather-over-in) on a
// deterministic probe vector — cheap but sharp: any divergent edge,
// weight or normalizer on either adjacency side shifts some output
// coordinate.
func viewsAgree(a, b graph.View) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for u := graph.NodeID(0); int(u) < a.N(); u++ {
		ao, bo := a.OutNeighbors(u), b.OutNeighbors(u)
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
		if a.TotalOutWeight(u) != b.TotalOutWeight(u) {
			return false
		}
		ai, bi := a.InNeighbors(u), b.InNeighbors(u)
		if len(ai) != len(bi) {
			return false
		}
		for i := range ai {
			if ai[i] != bi[i] {
				return false
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, a.N())
	for i := range x {
		x[i] = rng.Float64()
	}
	da, db := make([]float64, a.N()), make([]float64, a.N())
	rwr.MulTransitionT(a, x, da)
	rwr.MulTransitionT(b, x, db)
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	rwr.MulTransitionRange(a, x, da, 0, a.N())
	rwr.MulTransitionRange(b, x, db, 0, b.N())
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// WriteEvolveBench renders the throughput numbers and writes the JSON
// record to jsonPath when non-empty.
func WriteEvolveBench(w io.Writer, res *EvolveBenchResult, jsonPath string) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "graph_nodes\tgraph_edges\tbatch\toverlay_apply\trebuild\tspeedup\tedits/sec\tcompact\toracle")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%v\t%v\t%.0fx\t%.0f\t%v\t%v\n",
		res.GraphNodes, res.GraphEdges, res.BatchEdits,
		time.Duration(res.OverlayApplyNS).Round(time.Microsecond),
		time.Duration(res.RebuildNS).Round(time.Microsecond),
		res.ApplySpeedup, res.EditsPerSec,
		time.Duration(res.CompactNS).Round(time.Millisecond),
		res.OracleEquivalent)
	if err := tw.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}
