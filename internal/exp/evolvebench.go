package exp

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/evolve"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

// EvolveRow reports incremental index maintenance (the paper's §7 future
// work, implemented in package evolve) for one staleness threshold θ.
type EvolveRow struct {
	Theta float64
	// Affected is the number of origins re-indexed at this θ.
	Affected int
	// RefreshTime is the incremental maintenance cost; RebuildTime the
	// from-scratch alternative.
	RefreshTime time.Duration
	RebuildTime time.Duration
	// Jaccard compares post-refresh answers against a fresh rebuild.
	Jaccard float64
	Queries int
}

// EvolveConfig parameterizes the study.
type EvolveConfig struct {
	Graph   GraphSpec
	Edits   int
	Thetas  []float64
	K       int
	IndexK  int
	Queries int
	Omega   float64
	Seed    int64
}

// DefaultEvolveConfig applies a small batch of random edge insertions and
// deletions to the Web-stanford-cs analog and sweeps the staleness
// threshold.
func DefaultEvolveConfig(scale int) EvolveConfig {
	graphs := DefaultGraphs(scale)
	return EvolveConfig{
		Graph:   graphs[0],
		Edits:   20,
		Thetas:  []float64{0, 1e-5, 1e-4, 1e-3},
		K:       10,
		IndexK:  100,
		Queries: 40,
		Omega:   1e-6,
		Seed:    606,
	}
}

// randomEdits produces a valid mix of insertions and deletions.
func randomEdits(g *graph.Graph, count int, seed int64) []evolve.Edit {
	rng := rand.New(rand.NewSource(seed))
	var edits []evolve.Edit
	touched := map[graph.NodeID]bool{}
	for len(edits) < count {
		u := graph.NodeID(rng.Intn(g.N()))
		if touched[u] {
			continue
		}
		if rng.Intn(2) == 0 && g.OutDegree(u) > 1 {
			nbrs := g.OutNeighbors(u)
			edits = append(edits, evolve.Edit{From: u, To: nbrs[rng.Intn(len(nbrs))], Remove: true})
		} else {
			v := graph.NodeID(rng.Intn(g.N()))
			if v == u || g.HasEdge(u, v) {
				continue
			}
			edits = append(edits, evolve.Edit{From: u, To: v})
		}
		touched[u] = true
	}
	return edits
}

// RunEvolveStudy measures incremental refresh against full rebuild across
// the staleness-threshold sweep. Expected shape: θ=0 matches the rebuild
// exactly; growing θ shrinks the affected set and the refresh time while
// answer similarity decays only marginally.
func RunEvolveStudy(cfg EvolveConfig, progress io.Writer) ([]EvolveRow, error) {
	g, err := cfg.Graph.Build()
	if err != nil {
		return nil, err
	}
	opts := indexOptions(cfg.IndexK, cfg.Graph.HubBudget, cfg.Omega)
	baseIdx, _, err := lbindex.Build(g, opts)
	if err != nil {
		return nil, err
	}

	edits := randomEdits(g, cfg.Edits, cfg.Seed)
	g2, err := evolve.ApplyEdits(g, edits, graph.DanglingSelfLoop)
	if err != nil {
		return nil, err
	}
	if g2.N() != g.N() {
		return nil, fmt.Errorf("exp: edits changed the node count")
	}

	// Reference: full rebuild on the edited graph.
	rebuildStart := time.Now()
	rebuiltIdx, _, err := lbindex.Build(g2, opts)
	if err != nil {
		return nil, err
	}
	rebuildTime := time.Since(rebuildStart)
	refEng, err := core.NewEngine(g2, rebuiltIdx, true)
	if err != nil {
		return nil, err
	}
	queries, err := workload.Queries(g2.N(), cfg.Queries, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	reference := make([][]graph.NodeID, len(queries))
	for i, q := range queries {
		reference[i], _, err = refEng.Query(q, cfg.K)
		if err != nil {
			return nil, err
		}
	}

	sources := evolve.Sources(edits)
	var rows []EvolveRow
	for _, theta := range cfg.Thetas {
		idx, err := cloneIndex(baseIdx)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		affected, err := evolve.AffectedOrigins(g2, sources, theta, opts.RWR)
		if err != nil {
			return nil, err
		}
		stats, err := evolve.Refresh(g2, idx, affected)
		if err != nil {
			return nil, err
		}
		refreshTime := time.Since(start)

		eng, err := core.NewEngine(g2, idx, true)
		if err != nil {
			return nil, err
		}
		var jSum float64
		for i, q := range queries {
			res, _, err := eng.Query(q, cfg.K)
			if err != nil {
				return nil, err
			}
			jSum += workload.Jaccard(res, reference[i])
		}
		rows = append(rows, EvolveRow{
			Theta:       theta,
			Affected:    stats.Affected,
			RefreshTime: refreshTime,
			RebuildTime: rebuildTime,
			Jaccard:     jSum / float64(len(queries)),
			Queries:     len(queries),
		})
		if progress != nil {
			fmt.Fprintf(progress, "evolve: θ=%g affected=%d refresh=%v jaccard=%.4f\n",
				theta, stats.Affected, refreshTime.Round(time.Millisecond), rows[len(rows)-1].Jaccard)
		}
	}
	return rows, nil
}

// WriteEvolveStudy renders the sweep.
func WriteEvolveStudy(w io.Writer, rows []EvolveRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "theta\taffected\trefresh_time\trebuild_time\tanswer_jaccard\tqueries")
	for _, r := range rows {
		fmt.Fprintf(tw, "%g\t%d\t%v\t%v\t%.4f\t%d\n",
			r.Theta, r.Affected, r.RefreshTime.Round(time.Millisecond), r.RebuildTime.Round(time.Millisecond), r.Jaccard, r.Queries)
	}
	return tw.Flush()
}
