package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

// SpMMBenchConfig parameterizes the multi-query batching experiment: the
// same 131k-node web graph as the shard bench, queried through the SpMM
// proximity tier at increasing batch widths. Width 1 is the scalar
// baseline; wider batches advance all columns in one slab sweep, amortizing
// every CSR traversal across the batch.
type SpMMBenchConfig struct {
	// Nodes sizes the bench graph.
	Nodes int
	// IndexK / HubBudget shape the index.
	IndexK, HubBudget int
	// K is the query k; Queries the workload size per batch width.
	K, Queries int
	// Widths lists the batch widths to sweep; the first entry must be 1
	// (the scalar-Query throughput baseline).
	Widths []int
	// Relabel names the cache-aware layout baked into the index before
	// the sweep: none|degree|rcm. The workload always speaks external
	// identifiers; the View translates at the boundary.
	Relabel string
	// OracleQueries answers are checked against the scalar engine (0
	// disables).
	OracleQueries int
	Seed          int64
}

// DefaultSpMMBenchConfig matches the acceptance setup: the 2^17 = 131072
// node bench graph, widths 1/2/4/16, degree-descending layout.
func DefaultSpMMBenchConfig(scale int) SpMMBenchConfig {
	n := 131072
	if scale > 1 {
		n *= scale
	}
	return SpMMBenchConfig{
		Nodes:         n,
		IndexK:        32,
		HubBudget:     48,
		K:             10,
		Queries:       32,
		Widths:        []int{1, 2, 4, 16},
		Relabel:       "degree",
		OracleQueries: 2,
		Seed:          1117,
	}
}

// SpMMBenchRow is one batch width's measurements.
type SpMMBenchRow struct {
	Width int `json:"width"`
	// NSPerQuery is mean wall clock per query over the whole workload
	// (batches run back to back); QPS its reciprocal — the aggregate
	// throughput a saturated daemon gets from this width.
	NSPerQuery int64   `json:"ns_per_query"`
	QPS        float64 `json:"qps"`
	// SpeedupVsScalar is QPS relative to the width-1 row: the pure
	// batching gain, measured at the same single-worker budget so no
	// parallelism is mixed into the comparison.
	SpeedupVsScalar float64 `json:"speedup_vs_scalar"`
	// PMPNIters totals the proximity iterations the workload consumed.
	PMPNIters int64 `json:"pmpn_iters"`
	// PMPNNS and FallbackNS total the wall clock the workload's queries
	// reported in the PMPN slabs and the deferred exact-fallback slabs
	// (shared time is charged to every participating query, so at wide
	// widths these overcount relative to the row wall clock — they are
	// phase-composition signals, not additive partitions). Fallbacks
	// totals QueryStats.ExactFallbacks.
	PMPNNS     int64 `json:"pmpn_ns"`
	FallbackNS int64 `json:"fallback_ns"`
	Fallbacks  int64 `json:"fallbacks"`
	// OracleAgree reports the answer-identity spot check against the
	// scalar engine.
	OracleAgree bool `json:"oracle_agree"`
}

// SpMMBenchResult is the machine-readable record emitted as
// BENCH_spmm.json.
type SpMMBenchResult struct {
	GraphNodes int    `json:"graph_nodes"`
	GraphEdges int    `json:"graph_edges"`
	IndexK     int    `json:"index_k"`
	Hubs       int    `json:"hubs"`
	BuildNS    int64  `json:"build_ns"`
	Layout     string `json:"layout"`
	K          int    `json:"k"`
	Queries    int    `json:"queries"`
	// Cores is runtime.NumCPU() where the record was taken. The sweep
	// pins one worker per width, so the speedup column is core-count
	// independent — it measures memory-traffic amortization, not
	// parallelism.
	Cores int            `json:"cores"`
	Rows  []SpMMBenchRow `json:"rows"`
}

// RunSpMMBench builds the bench index once (under the requested cache-aware
// layout) and drives the same query workload through View.Query at width 1
// and View.QueryMulti at every wider width, recording aggregate throughput.
func RunSpMMBench(cfg SpMMBenchConfig, progress io.Writer) (*SpMMBenchResult, error) {
	if len(cfg.Widths) == 0 || cfg.Widths[0] != 1 {
		return nil, fmt.Errorf("exp: spmm widths must start with the scalar baseline 1, got %v", cfg.Widths)
	}
	g, err := gen.WebGraph(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	var perm graph.Permutation
	switch cfg.Relabel {
	case "", "none":
	case "degree":
		perm = graph.DegreeOrderPermutation(g)
	case "rcm":
		perm = graph.RCMPermutation(g)
	default:
		return nil, fmt.Errorf("exp: unknown relabeling %q (none|degree|rcm)", cfg.Relabel)
	}
	layout := cfg.Relabel
	if layout == "" {
		layout = "none"
	}
	if perm != nil {
		if g, err = graph.ApplyPermutation(g, perm); err != nil {
			return nil, err
		}
	}

	opts := indexOptions(cfg.IndexK, cfg.HubBudget, 1e-6)
	if progress != nil {
		fmt.Fprintf(progress, "spmm: building index over n=%d m=%d (layout %s) ...\n", g.N(), g.M(), layout)
	}
	buildStart := time.Now()
	idx, bstats, err := lbindex.Build(g, opts)
	if err != nil {
		return nil, err
	}
	if perm != nil {
		if err := idx.SetRelabeling(perm); err != nil {
			return nil, err
		}
	}
	res := &SpMMBenchResult{
		GraphNodes: g.N(),
		GraphEdges: g.M(),
		IndexK:     cfg.IndexK,
		Hubs:       bstats.HubCount,
		BuildNS:    int64(time.Since(buildStart)),
		Layout:     layout,
		K:          cfg.K,
		Queries:    cfg.Queries,
		Cores:      runtime.NumCPU(),
	}
	v, err := core.NewView(g, idx)
	if err != nil {
		return nil, err
	}
	queries, err := workload.Queries(g.N(), cfg.Queries, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	// Oracle answers come from the scalar path; wider widths must
	// reproduce them node for node.
	oracle := map[int][]graph.NodeID{}
	for i := 0; i < cfg.OracleQueries && i < len(queries); i++ {
		ans, _, err := v.Query(queries[i], cfg.K, 1)
		if err != nil {
			return nil, err
		}
		oracle[int(queries[i])] = append([]graph.NodeID(nil), ans...)
	}

	for _, w := range cfg.Widths {
		if w < 1 {
			return nil, fmt.Errorf("exp: spmm width %d < 1", w)
		}
		if progress != nil {
			fmt.Fprintf(progress, "spmm: width=%d warming + measuring %d queries ...\n", w, len(queries))
		}
		// One warm-up pass over the first batch keeps one-time costs
		// (pool fills, page-in) out of the measurement.
		if err := runSpMMWidth(v, queries[:min(w, len(queries))], cfg.K, w, nil, nil); err != nil {
			return nil, err
		}
		row := SpMMBenchRow{Width: w, OracleAgree: true}
		start := time.Now()
		if err := runSpMMWidth(v, queries, cfg.K, w, oracle, &row); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		row.NSPerQuery = int64(elapsed) / int64(len(queries))
		row.QPS = float64(len(queries)) / elapsed.Seconds()
		if w == 1 {
			row.SpeedupVsScalar = 1
		} else {
			row.SpeedupVsScalar = row.QPS / res.Rows[0].QPS
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runSpMMWidth pushes the workload through the view at one batch width:
// sequential scalar queries at width 1, back-to-back QueryMulti slabs
// otherwise — always with a single worker, so widths compare batching
// alone. A non-nil row accumulates iteration counts and oracle agreement.
func runSpMMWidth(v *core.View, queries []graph.NodeID, k, w int, oracle map[int][]graph.NodeID, row *SpMMBenchRow) error {
	if w == 1 {
		for _, q := range queries {
			ans, st, err := v.Query(q, k, 1)
			if err != nil {
				return err
			}
			if row != nil {
				row.PMPNIters += int64(st.PMPNIters)
				row.PMPNNS += int64(st.PMPNElapsed)
				row.FallbackNS += int64(st.FallbackElapsed)
				row.Fallbacks += int64(st.ExactFallbacks)
				if want, ok := oracle[int(q)]; ok && !sameIDs(ans, want) {
					row.OracleAgree = false
				}
			}
		}
		return nil
	}
	ks := make([]int, w)
	for i := range ks {
		ks[i] = k
	}
	for lo := 0; lo < len(queries); lo += w {
		hi := min(lo+w, len(queries))
		chunk := queries[lo:hi]
		var (
			mu       sync.Mutex
			firstErr error
		)
		err := v.QueryMulti(chunk, ks[:len(chunk)], 1, func(i int, ans []graph.NodeID, st core.QueryStats, qerr error) {
			mu.Lock()
			defer mu.Unlock()
			if qerr != nil && firstErr == nil {
				firstErr = qerr
				return
			}
			if row != nil {
				row.PMPNIters += int64(st.PMPNIters)
				row.PMPNNS += int64(st.PMPNElapsed)
				row.FallbackNS += int64(st.FallbackElapsed)
				row.Fallbacks += int64(st.ExactFallbacks)
				if want, ok := oracle[int(chunk[i])]; ok && !sameIDs(ans, want) {
					row.OracleAgree = false
				}
			}
		})
		if err == nil {
			err = firstErr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteSpMMBench prints the sweep and records the JSON file when jsonPath
// is non-empty.
func WriteSpMMBench(w io.Writer, res *SpMMBenchResult, jsonPath string) error {
	fmt.Fprintf(w, "graph: n=%d m=%d; index K=%d, %d hubs, built in %v; %s layout, k=%d, %d queries, %d cores\n",
		res.GraphNodes, res.GraphEdges, res.IndexK, res.Hubs,
		time.Duration(res.BuildNS).Round(time.Millisecond), res.Layout, res.K, res.Queries, res.Cores)
	tw := newTable(w)
	fmt.Fprintln(tw, "width\tns/query\tqps\tvs-scalar\tpmpn-iters\tpmpn-ms\tfallback-ms\tfallbacks\toracle")
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2fx\t%d\t%d\t%d\t%d\t%v\n",
			r.Width, r.NSPerQuery, r.QPS, r.SpeedupVsScalar, r.PMPNIters,
			r.PMPNNS/1e6, r.FallbackNS/1e6, r.Fallbacks, r.OracleAgree)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}
