package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

// Table2Row is one row of the index-construction study: one graph at one
// hub budget B.
type Table2Row struct {
	Graph          string
	Nodes, Edges   int
	B              int
	HubCount       int
	BuildTime      time.Duration
	ActualBytes    int64
	UnroundedBytes int64
	PredictedBytes int64
	PhatBytes      int64
	// FullPTime is the cost of the brute-force alternative: computing the
	// entire proximity matrix (measured on a column sample and scaled).
	FullPTime time.Duration
	// FullPBytes is the n² storage the brute force would need.
	FullPBytes int64
}

// Table2Config parameterizes the study.
type Table2Config struct {
	Graphs []GraphSpec
	// BSweep lists the hub budgets per graph as fractions of n (the paper
	// sweeps absolute B per graph; fractions keep the sweep meaningful
	// across analog sizes).
	BFractions []float64
	K          int
	Omega      float64
	// SampleColumns bounds the full-P cost measurement: that many columns
	// are computed exactly and the total is scaled to n. 0 means 64.
	SampleColumns int
}

// DefaultTable2Config mirrors §5.2 at harness scale.
func DefaultTable2Config(scale int) Table2Config {
	return Table2Config{
		Graphs:        DefaultGraphs(scale),
		BFractions:    []float64{0.005, 0.01, 0.02, 0.03},
		K:             100,
		Omega:         1e-6,
		SampleColumns: 64,
	}
}

// RunTable2 builds the index for every (graph, B) pair and reports
// construction time and storage against the full-matrix brute force.
// Index builds run single-threaded so that BuildTime and FullPTime use the
// same accounting — the paper likewise reports per-core time sums, with
// wall clock being the reported time divided by the core count (§5).
func RunTable2(cfg Table2Config, progress io.Writer) ([]Table2Row, error) {
	var rows []Table2Row
	for _, spec := range cfg.Graphs {
		g, err := spec.Build()
		if err != nil {
			return nil, err
		}
		fullPTime, err := measureFullPTime(g, cfg.SampleColumns)
		if err != nil {
			return nil, err
		}
		for _, frac := range cfg.BFractions {
			b := int(frac * float64(g.N()))
			if b < 1 {
				b = 1
			}
			opts := indexOptions(cfg.K, b, cfg.Omega)
			opts.Workers = 1
			_, stats, err := lbindex.Build(g, opts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{
				Graph:          spec.Name,
				Nodes:          g.N(),
				Edges:          g.M(),
				B:              b,
				HubCount:       stats.HubCount,
				BuildTime:      stats.TotalElapsed,
				ActualBytes:    stats.Bytes,
				UnroundedBytes: stats.UnroundedBytes,
				PredictedBytes: stats.PredictedBytes,
				PhatBytes:      stats.PhatBytes,
				FullPTime:      fullPTime,
				FullPBytes:     int64(g.N()) * int64(g.N()) * 8,
			})
			if progress != nil {
				fmt.Fprintf(progress, "table2: %s B=%d done (%v)\n", spec.Name, b, stats.TotalElapsed.Round(time.Millisecond))
			}
		}
	}
	return rows, nil
}

// measureFullPTime times `sample` exact proximity-vector computations and
// scales to all n columns — the cost of materializing P (§3's brute force).
func measureFullPTime(g *graph.Graph, sample int) (time.Duration, error) {
	if sample <= 0 {
		sample = 64
	}
	if sample > g.N() {
		sample = g.N()
	}
	p := rwr.DefaultParams()
	start := time.Now()
	step := g.N() / sample
	if step < 1 {
		step = 1
	}
	count := 0
	for u := 0; u < g.N() && count < sample; u += step {
		res, err := rwr.ProximityVector(g, graph.NodeID(u), p)
		if err != nil {
			return 0, err
		}
		// Include the per-column top-K ranking the brute force also needs.
		_ = vecmath.TopKValues(res.Vector, 100)
		count++
	}
	elapsed := time.Since(start)
	return time.Duration(float64(elapsed) * float64(g.N()) / float64(count)), nil
}

// WriteTable2 renders the rows in the layout of Table 2.
func WriteTable2(w io.Writer, rows []Table2Row) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "graph\tn\tm\tB\t|H|\tindex_time\tfullP_time\tactual\tno_round\tpredicted\tphat_only\tfullP_size")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%v\t%v\t%s\t%s\t%s\t%s\t%s\n",
			r.Graph, r.Nodes, r.Edges, r.B, r.HubCount,
			r.BuildTime.Round(time.Millisecond), r.FullPTime.Round(time.Millisecond),
			fmtBytes(r.ActualBytes), fmtBytes(r.UnroundedBytes), fmtBytes(r.PredictedBytes),
			fmtBytes(r.PhatBytes), fmtBytes(r.FullPBytes))
	}
	return tw.Flush()
}
