package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

// The approxtier experiment records the anytime tier's accuracy/latency
// frontier: an eps sweep per graph family, each row measuring median wall
// time against the exact engine on the same view, plus the recall /
// precision / maybe-set geometry of the two-part answers. It is the
// machine-readable record behind BENCH_approx.json and the CI gate that
// fails the build if eps=0.1 approx throughput ever drops below exact.

// ApproxTierFamily names one bench graph family.
type ApproxTierFamily struct {
	Name string `json:"name"`
	// Kind selects the generator (web | social).
	Kind  string `json:"kind"`
	Nodes int    `json:"nodes"`
	Seed  int64  `json:"seed"`
}

// ApproxTierConfig parameterizes the experiment.
type ApproxTierConfig struct {
	Families          []ApproxTierFamily
	IndexK, HubBudget int
	// K is the query k; Queries the workload size per family.
	K, Queries int
	// EpsList is the budget sweep; 0 means "iterate to convergence, report
	// the pre-refinement survivors".
	EpsList []float64
	// Delta is the Monte Carlo failure budget applied to every row (0
	// disables the MC stage).
	Delta float64
	// Seed drives the workload; MCSeed the Monte Carlo streams.
	Seed   int64
	MCSeed int64
}

// DefaultApproxTierConfig matches the acceptance setup: the 2^17-node web
// graph the shard/spmm benches use (scaled by scale), plus a smaller social
// family for a second graph shape.
func DefaultApproxTierConfig(scale int) ApproxTierConfig {
	n := 131072
	if scale > 1 {
		n *= scale
	}
	return ApproxTierConfig{
		Families: []ApproxTierFamily{
			{Name: "web", Kind: "web", Nodes: n, Seed: 909},
			{Name: "social", Kind: "social", Nodes: 16384, Seed: 13},
		},
		IndexK:    32,
		HubBudget: 48,
		K:         10,
		Queries:   8,
		EpsList:   []float64{0.3, 0.1, 0.03, 0},
		Delta:     1e-4,
		Seed:      909,
		MCSeed:    4242,
	}
}

// ApproxTierFamilyInfo records one family's build and exact baseline.
type ApproxTierFamilyInfo struct {
	Name    string `json:"name"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
	Hubs    int    `json:"hubs"`
	BuildNS int64  `json:"build_ns"`
	// Exact baseline over the same workload on the same view (full worker
	// parallelism on both sides, so the ratio isolates the algorithm).
	MedianExactNS int64   `json:"median_exact_ns"`
	ExactQPS      float64 `json:"exact_qps"`
	// MeanExactResults sizes the exact answers the recall columns divide by.
	MeanExactResults float64 `json:"mean_exact_results"`
}

// ApproxTierRow is one (family, eps) measurement.
type ApproxTierRow struct {
	Family string  `json:"family"`
	Eps    float64 `json:"eps"`
	Delta  float64 `json:"delta"`
	// Latency medians and ratios against the family's exact baseline.
	MedianApproxNS int64   `json:"median_approx_ns"`
	SpeedupVsExact float64 `json:"speedup_vs_exact"`
	ApproxQPS      float64 `json:"approx_qps"`
	// Accuracy of the two-part answer against the exact answer set:
	// RecallGuaranteed = |guaranteed ∩ exact| / |exact|,
	// RecallWithMaybe  = |(guaranteed ∪ maybe) ∩ exact| / |exact|,
	// PrecisionGuaranteed = |guaranteed ∩ exact| / |guaranteed|
	// (1.0 when the respective denominator is empty), averaged over queries.
	RecallGuaranteed    float64 `json:"recall_guaranteed"`
	RecallWithMaybe     float64 `json:"recall_with_maybe"`
	PrecisionGuaranteed float64 `json:"precision_guaranteed"`
	// Containment reports guaranteed ⊆ exact ⊆ guaranteed ∪ maybe on EVERY
	// query of the row (with δ > 0 this holds w.p. ≥ 1−δ per query).
	Containment bool `json:"containment"`
	// Answer geometry and work, averaged over queries.
	MeanGuaranteed  float64 `json:"mean_guaranteed"`
	MeanMaybe       float64 `json:"mean_maybe"`
	MeanRounds      float64 `json:"mean_rounds"`
	MeanPMPNIters   float64 `json:"mean_pmpn_iters"`
	EpsAchievedMean float64 `json:"eps_achieved_mean"`
	Converged       int     `json:"converged"`
	MCConfirmed     int64   `json:"mc_confirmed"`
	MCPruned        int64   `json:"mc_pruned"`
	MCWalks         int64   `json:"mc_walks"`
}

// ApproxTierResult is the machine-readable record emitted as
// BENCH_approx.json.
type ApproxTierResult struct {
	IndexK    int                    `json:"index_k"`
	HubBudget int                    `json:"hub_budget"`
	K         int                    `json:"k"`
	Queries   int                    `json:"queries"`
	Delta     float64                `json:"delta"`
	Cores     int                    `json:"cores"`
	Families  []ApproxTierFamilyInfo `json:"families"`
	Rows      []ApproxTierRow        `json:"rows"`
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// RunApprox builds each family's index once, measures the exact baseline,
// then sweeps the eps budgets through View.QueryAnytime over the same
// workload.
func RunApprox(cfg ApproxTierConfig, progress io.Writer) (*ApproxTierResult, error) {
	res := &ApproxTierResult{
		IndexK:    cfg.IndexK,
		HubBudget: cfg.HubBudget,
		K:         cfg.K,
		Queries:   cfg.Queries,
		Delta:     cfg.Delta,
		Cores:     runtime.NumCPU(),
	}
	for _, fam := range cfg.Families {
		var g *graph.Graph
		var err error
		switch fam.Kind {
		case "web":
			g, err = gen.WebGraph(fam.Nodes, fam.Seed)
		case "social":
			g, err = gen.SocialGraph(fam.Nodes, fam.Seed)
		default:
			err = fmt.Errorf("exp: unknown family kind %q", fam.Kind)
		}
		if err != nil {
			return nil, err
		}
		if progress != nil {
			fmt.Fprintf(progress, "approxtier: %s: building index over n=%d m=%d ...\n", fam.Name, g.N(), g.M())
		}
		buildStart := time.Now()
		idx, bstats, err := lbindex.Build(g, indexOptions(cfg.IndexK, cfg.HubBudget, 1e-6))
		if err != nil {
			return nil, err
		}
		view, err := core.NewView(g, idx)
		if err != nil {
			return nil, err
		}
		info := ApproxTierFamilyInfo{
			Name:    fam.Name,
			Nodes:   g.N(),
			Edges:   g.M(),
			Hubs:    bstats.HubCount,
			BuildNS: int64(time.Since(buildStart)),
		}
		queries, err := workload.Queries(g.N(), cfg.Queries, cfg.Seed+1)
		if err != nil {
			return nil, err
		}

		// Exact baseline: same view, full worker parallelism, one warm-up.
		if _, _, err := view.Query(queries[0], cfg.K, 0); err != nil {
			return nil, err
		}
		exact := make(map[graph.NodeID]map[graph.NodeID]bool, len(queries))
		exactSizes := 0
		var exactLat []time.Duration
		exactStart := time.Now()
		for _, q := range queries {
			t0 := time.Now()
			ans, _, err := view.Query(q, cfg.K, 0)
			if err != nil {
				return nil, err
			}
			exactLat = append(exactLat, time.Since(t0))
			set := make(map[graph.NodeID]bool, len(ans))
			for _, u := range ans {
				set[u] = true
			}
			exact[q] = set
			exactSizes += len(ans)
		}
		exactElapsed := time.Since(exactStart)
		info.MedianExactNS = int64(median(exactLat))
		info.ExactQPS = float64(len(queries)) / exactElapsed.Seconds()
		info.MeanExactResults = float64(exactSizes) / float64(len(queries))
		res.Families = append(res.Families, info)

		for _, eps := range cfg.EpsList {
			if progress != nil {
				fmt.Fprintf(progress, "approxtier: %s: eps=%g over %d queries ...\n", fam.Name, eps, len(queries))
			}
			opts := core.AnytimeOptions{Eps: eps, Delta: cfg.Delta, Seed: cfg.MCSeed}
			if _, err := view.QueryAnytime(queries[0], cfg.K, opts, 0); err != nil {
				return nil, err
			}
			row := ApproxTierRow{Family: fam.Name, Eps: eps, Delta: cfg.Delta, Containment: true}
			var lat []time.Duration
			var recallG, recallM, precG float64
			start := time.Now()
			for _, q := range queries {
				t0 := time.Now()
				r, err := view.QueryAnytime(q, cfg.K, opts, 0)
				if err != nil {
					return nil, err
				}
				lat = append(lat, time.Since(t0))
				want := exact[q]
				inG, inM := 0, 0
				maybeSet := make(map[graph.NodeID]bool, len(r.Maybe))
				for _, u := range r.Maybe {
					maybeSet[u] = true
				}
				for _, u := range r.Guaranteed {
					if want[u] {
						inG++
					} else {
						row.Containment = false
					}
				}
				for u := range want {
					if maybeSet[u] {
						inM++
					}
				}
				covered := inG + inM
				if covered < len(want) {
					row.Containment = false
				}
				if len(want) > 0 {
					recallG += float64(inG) / float64(len(want))
					recallM += float64(covered) / float64(len(want))
				} else {
					recallG++
					recallM++
				}
				if len(r.Guaranteed) > 0 {
					precG += float64(inG) / float64(len(r.Guaranteed))
				} else {
					precG++
				}
				row.MeanGuaranteed += float64(len(r.Guaranteed))
				row.MeanMaybe += float64(len(r.Maybe))
				row.MeanRounds += float64(r.Stats.Rounds)
				row.MeanPMPNIters += float64(r.Stats.PMPNIters)
				row.EpsAchievedMean += r.Stats.EpsAchieved
				if r.Stats.Converged {
					row.Converged++
				}
				row.MCConfirmed += int64(r.Stats.MCConfirmed)
				row.MCPruned += int64(r.Stats.MCPruned)
				row.MCWalks += r.Stats.MCWalks
			}
			elapsed := time.Since(start)
			nq := float64(len(queries))
			row.MedianApproxNS = int64(median(lat))
			row.SpeedupVsExact = float64(info.MedianExactNS) / float64(row.MedianApproxNS)
			row.ApproxQPS = nq / elapsed.Seconds()
			row.RecallGuaranteed = recallG / nq
			row.RecallWithMaybe = recallM / nq
			row.PrecisionGuaranteed = precG / nq
			row.MeanGuaranteed /= nq
			row.MeanMaybe /= nq
			row.MeanRounds /= nq
			row.MeanPMPNIters /= nq
			row.EpsAchievedMean /= nq
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// WriteApprox prints the frontier and records the JSON file when jsonPath
// is non-empty.
func WriteApprox(w io.Writer, res *ApproxTierResult, jsonPath string) error {
	for _, f := range res.Families {
		fmt.Fprintf(w, "%s: n=%d m=%d, %d hubs, built in %v; exact median %v (%.2f qps), mean |exact|=%.1f\n",
			f.Name, f.Nodes, f.Edges, f.Hubs, time.Duration(f.BuildNS).Round(time.Millisecond),
			time.Duration(f.MedianExactNS).Round(time.Microsecond), f.ExactQPS, f.MeanExactResults)
	}
	tw := newTable(w)
	fmt.Fprintln(tw, "family\teps\tmedian-ns\tvs-exact\tqps\trecall-g\trecall-g+maybe\tprec-g\t|maybe|\trounds\titers\teps-achieved\tmc-in/out\tcontain")
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%s\t%g\t%d\t%.2fx\t%.2f\t%.3f\t%.3f\t%.3f\t%.1f\t%.1f\t%.1f\t%.3f\t%d/%d\t%v\n",
			r.Family, r.Eps, r.MedianApproxNS, r.SpeedupVsExact, r.ApproxQPS,
			r.RecallGuaranteed, r.RecallWithMaybe, r.PrecisionGuaranteed,
			r.MeanMaybe, r.MeanRounds, r.MeanPMPNIters, r.EpsAchievedMean,
			r.MCConfirmed, r.MCPruned, r.Containment)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}
