package exp

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

// Fig9Row reports the average result similarity between a rounded index
// and the exact reference for one (ω, k) cell of Figure 9, under both
// decision policies of the engine.
type Fig9Row struct {
	Omega float64
	K     int
	// ExactJaccard uses the default engine, whose exact fallback makes
	// answers independent of ω (the rounding slack is tracked in the
	// bounds); it certifies the slack accounting rather than measuring ω.
	ExactJaccard float64
	// PracticalJaccard uses the paper-literal decision mode, where
	// rounding CAN perturb answers — the counterpart of the paper's
	// measurement.
	PracticalJaccard float64
	Queries          int
}

// Fig9Config parameterizes the rounding-effect study.
type Fig9Config struct {
	Graph   GraphSpec
	Omegas  []float64
	Ks      []int
	IndexK  int
	Queries int
	Seed    int64
}

// DefaultFig9Config mirrors §5.3 ("Rounding Effect"): ω ∈ {1e-4, 1e-5,
// 1e-6} on the Web-stanford-cs analog across the k sweep.
func DefaultFig9Config(scale int) Fig9Config {
	graphs := DefaultGraphs(scale)
	return Fig9Config{
		Graph:   graphs[0],
		Omegas:  []float64{1e-4, 1e-5, 1e-6},
		Ks:      []int{5, 10, 20, 50, 100},
		IndexK:  100,
		Queries: 50,
		Seed:    404,
	}
}

// RunFigure9 compares query answers from rounded indexes against the
// exact (ω=0) reference. The paper's shape: ω ≤ 1e-5 indistinguishable
// from exact, ω = 1e-4 loses about 1% — visible in the practical-mode
// column; the exact-mode column stays at 1.0 because the engine's
// slack-aware bounds compensate for rounding.
func RunFigure9(cfg Fig9Config, progress io.Writer) ([]Fig9Row, error) {
	g, err := cfg.Graph.Build()
	if err != nil {
		return nil, err
	}
	queries, err := workload.Queries(g.N(), cfg.Queries, cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Reference answers from the exact-mode engine on the ω=0 index.
	exactIdx, _, err := lbindex.Build(g, indexOptions(cfg.IndexK, cfg.Graph.HubBudget, 0))
	if err != nil {
		return nil, err
	}
	refEng, err := core.NewEngine(g, exactIdx, true)
	if err != nil {
		return nil, err
	}
	reference := make(map[int][][]graph.NodeID)
	for _, k := range cfg.Ks {
		if k > cfg.IndexK {
			continue
		}
		for _, q := range queries {
			res, _, err := refEng.Query(q, k)
			if err != nil {
				return nil, err
			}
			reference[k] = append(reference[k], res)
		}
	}

	var rows []Fig9Row
	for _, omega := range cfg.Omegas {
		built, _, err := lbindex.Build(g, indexOptions(cfg.IndexK, cfg.Graph.HubBudget, omega))
		if err != nil {
			return nil, err
		}
		for _, k := range cfg.Ks {
			if k > cfg.IndexK {
				continue
			}
			row := Fig9Row{Omega: omega, K: k, Queries: len(queries)}
			for _, practical := range []bool{false, true} {
				idx, err := cloneIndex(built)
				if err != nil {
					return nil, err
				}
				eng, err := core.NewEngine(g, idx, true)
				if err != nil {
					return nil, err
				}
				eng.SetPracticalDecisions(practical)
				var sum float64
				for qi, q := range queries {
					res, _, err := eng.Query(q, k)
					if err != nil {
						return nil, err
					}
					sum += workload.Jaccard(res, reference[k][qi])
				}
				avg := sum / float64(len(queries))
				if practical {
					row.PracticalJaccard = avg
				} else {
					row.ExactJaccard = avg
				}
			}
			rows = append(rows, row)
			if progress != nil {
				fmt.Fprintf(progress, "fig9: ω=%g k=%d exact=%.4f practical=%.4f\n",
					omega, k, row.ExactJaccard, row.PracticalJaccard)
			}
		}
	}
	return rows, nil
}

// WriteFigure9 renders the similarity table.
func WriteFigure9(w io.Writer, rows []Fig9Row) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "omega\tk\texact_jaccard\tpractical_jaccard\tqueries")
	for _, r := range rows {
		fmt.Fprintf(tw, "%g\t%d\t%.4f\t%.4f\t%d\n", r.Omega, r.K, r.ExactJaccard, r.PracticalJaccard, r.Queries)
	}
	return tw.Flush()
}
