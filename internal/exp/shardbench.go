package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/lbindex"
	"repro/internal/partition"
	"repro/internal/shard"
	"repro/internal/workload"
)

// ShardBenchConfig parameterizes the sharded-query experiment: a
// 131k-node web graph (the copying model of the paper's web datasets — an
// RMAT graph would flood the decide phase with its thousands of dangling
// tie-at-zero nodes), queried through the in-process scatter-gather
// coordinator at increasing shard counts.
type ShardBenchConfig struct {
	// Nodes sizes the bench graph.
	Nodes int
	// IndexK / HubBudget shape the index.
	IndexK, HubBudget int
	// K is the query k; Queries the workload size per shard count.
	K, Queries int
	// Ps lists the shard counts to sweep; the first entry is the
	// single-shard throughput baseline.
	Ps []int
	// Strategy names the partitioner (hash | range | balanced).
	Strategy string
	// OracleQueries answers are cross-checked against the single engine
	// bit for bit (0 disables).
	OracleQueries int
	Seed          int64
}

// DefaultShardBenchConfig matches the acceptance setup: the 2^17 = 131072
// node bench graph, P ∈ {1, 2, 4}, the balance-aware partitioner.
func DefaultShardBenchConfig(scale int) ShardBenchConfig {
	n := 131072
	if scale > 1 {
		n *= scale
	}
	return ShardBenchConfig{
		Nodes:         n,
		IndexK:        32,
		HubBudget:     48,
		K:             10,
		Queries:       8,
		Ps:            []int{1, 2, 4},
		Strategy:      "balanced",
		OracleQueries: 2,
		Seed:          909,
	}
}

// ShardBenchRow is one shard count's measurements.
type ShardBenchRow struct {
	P int `json:"p"`
	// NSPerQuery is mean wall clock per query; QPS its reciprocal.
	NSPerQuery int64   `json:"ns_per_query"`
	QPS        float64 `json:"qps"`
	// Speedup is QPS relative to the P = Ps[0] baseline. It reflects the
	// machine: P shard engines plus the shared PMPN spread over P workers,
	// so it needs P cores to show the deployment's parallel gain (see the
	// top-level Cores field; on a 1-core box it is ≈ 1.0 by construction).
	Speedup float64 `json:"speedup_vs_p1"`
	// NaiveNSPerQuery measures the redundant-PMPN federation at the same
	// P — every shard computing its own PMPN before deciding its owned
	// nodes, exactly the work profile of the stock-HTTP transport — under
	// the same parallelism. SpeedupVsNaive = naive/coordinator time: the
	// architectural gain of sharing one PMPN and exchanging bounds,
	// visible on any core count.
	NaiveNSPerQuery int64   `json:"naive_ns_per_query"`
	SpeedupVsNaive  float64 `json:"speedup_vs_naive"`
	// Cross-shard bound-exchange pruning totals over the workload:
	// candidates decided from partial-iterate bounds (pruned out /
	// confirmed in) versus survivors left to the exact decide pass.
	PrunedByBound    int64 `json:"pruned_by_bound"`
	ConfirmedByBound int64 `json:"confirmed_by_bound"`
	Survivors        int64 `json:"survivors"`
	// PruneFraction = PrunedByBound / (nodes × queries).
	PruneFraction float64 `json:"prune_fraction"`
	// Rounds / PMPNIters are totals over the workload; EarlyStops counts
	// queries whose PMPN was abandoned before convergence.
	Rounds     int64 `json:"rounds"`
	PMPNIters  int64 `json:"pmpn_iters"`
	EarlyStops int64 `json:"early_stops"`
	// OracleAgree reports the bit-identity spot check against the
	// single-engine answer.
	OracleAgree bool `json:"oracle_agree"`
}

// ShardBenchResult is the machine-readable record emitted as
// BENCH_shard.json.
type ShardBenchResult struct {
	GraphNodes int    `json:"graph_nodes"`
	GraphEdges int    `json:"graph_edges"`
	IndexK     int    `json:"index_k"`
	Hubs       int    `json:"hubs"`
	BuildNS    int64  `json:"build_ns"`
	Strategy   string `json:"strategy"`
	K          int    `json:"k"`
	Queries    int    `json:"queries"`
	// Cores is runtime.NumCPU() where the record was taken — the context
	// for the speedup_vs_p1 column.
	Cores int             `json:"cores"`
	Rows  []ShardBenchRow `json:"rows"`
}

// RunShardBench builds the bench index once, slices it per shard count and
// drives the same query workload through the in-process coordinator,
// recording throughput and cross-shard pruning statistics.
func RunShardBench(cfg ShardBenchConfig, progress io.Writer) (*ShardBenchResult, error) {
	g, err := gen.WebGraph(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// Paper-default BCA thresholds: unlike the coldstart bench (which only
	// parses files and loosens them for build speed), this experiment RUNS
	// queries, and loose bounds would flood the decide phase with
	// candidates that never arise in a production-shaped index.
	opts := indexOptions(cfg.IndexK, cfg.HubBudget, 1e-6)
	if progress != nil {
		fmt.Fprintf(progress, "shard: building index over n=%d m=%d ...\n", g.N(), g.M())
	}
	buildStart := time.Now()
	idx, bstats, err := lbindex.Build(g, opts)
	if err != nil {
		return nil, err
	}
	res := &ShardBenchResult{
		GraphNodes: g.N(),
		GraphEdges: g.M(),
		IndexK:     cfg.IndexK,
		Hubs:       bstats.HubCount,
		BuildNS:    int64(time.Since(buildStart)),
		Strategy:   cfg.Strategy,
		K:          cfg.K,
		Queries:    cfg.Queries,
		Cores:      runtime.NumCPU(),
	}
	queries, err := workload.Queries(g.N(), cfg.Queries, cfg.Seed+1)
	if err != nil {
		return nil, err
	}

	var oracle map[int][]int32
	if cfg.OracleQueries > 0 {
		eng, err := core.NewEngine(g, idx, false)
		if err != nil {
			return nil, err
		}
		oracle = map[int][]int32{}
		for i := 0; i < cfg.OracleQueries && i < len(queries); i++ {
			ans, _, err := eng.Query(queries[i], cfg.K)
			if err != nil {
				return nil, err
			}
			oracle[int(queries[i])] = ans
		}
	}

	strategy, err := partition.ParseStrategy(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	for _, p := range cfg.Ps {
		pm, err := partition.New(strategy, g, g.N(), p, uint64(cfg.Seed))
		if err != nil {
			return nil, err
		}
		// The coordinator's worker budget scales with the shard count:
		// this is the deployment comparison the experiment is about — one
		// engine on one core versus P shard engines on P cores sharing
		// one PMPN — not an intra-query SetWorkers sweep.
		c, err := shard.NewFromFull(g, idx, pm, shard.Config{Workers: p})
		if err != nil {
			return nil, err
		}
		row := ShardBenchRow{P: p, OracleAgree: true}
		if progress != nil {
			fmt.Fprintf(progress, "shard: P=%d warming + measuring %d queries ...\n", p, len(queries))
		}
		// One warm-up query keeps one-time costs (page-in, pool fills)
		// out of the measurement.
		if _, _, err := c.Query(queries[0], cfg.K); err != nil {
			return nil, err
		}
		start := time.Now()
		for _, q := range queries {
			ans, st, err := c.Query(q, cfg.K)
			if err != nil {
				return nil, err
			}
			row.PrunedByBound += int64(st.PrunedByBound)
			row.ConfirmedByBound += int64(st.ConfirmedByBound)
			row.Survivors += int64(st.Survivors)
			row.Rounds += int64(st.Rounds)
			row.PMPNIters += int64(st.PMPNIters)
			if st.EarlyStop {
				row.EarlyStops++
			}
			if want, ok := oracle[int(q)]; ok && !sameIDs(ans, want) {
				row.OracleAgree = false
			}
		}
		elapsed := time.Since(start)
		row.NSPerQuery = int64(elapsed) / int64(len(queries))
		row.QPS = float64(len(queries)) / elapsed.Seconds()
		row.PruneFraction = float64(row.PrunedByBound) / (float64(g.N()) * float64(len(queries)))

		// Naive-federation baseline at the same P: every shard answers the
		// whole query against its slice (own PMPN + owned decisions, i.e.
		// a stock daemon), shards running concurrently, latency = the
		// slowest shard. The coordinator's shared PMPN and bound exchange
		// must beat this on total work.
		naiveStart := time.Now()
		for _, q := range queries {
			var wg sync.WaitGroup
			errs := make([]error, len(c.Views()))
			for si, v := range c.Views() {
				wg.Add(1)
				go func(si int, v *core.View) {
					defer wg.Done()
					_, _, errs[si] = v.Query(q, cfg.K, 1)
				}(si, v)
			}
			wg.Wait()
			for _, err := range errs {
				if err != nil {
					return nil, err
				}
			}
		}
		naive := time.Since(naiveStart)
		row.NaiveNSPerQuery = int64(naive) / int64(len(queries))
		row.SpeedupVsNaive = float64(row.NaiveNSPerQuery) / float64(row.NSPerQuery)
		res.Rows = append(res.Rows, row)
	}
	base := res.Rows[0].QPS
	for i := range res.Rows {
		res.Rows[i].Speedup = res.Rows[i].QPS / base
	}
	return res, nil
}

func sameIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteShardBench prints the sweep and records the JSON file when jsonPath
// is non-empty.
func WriteShardBench(w io.Writer, res *ShardBenchResult, jsonPath string) error {
	fmt.Fprintf(w, "graph: n=%d m=%d; index K=%d, %d hubs, built in %v; %s partition, k=%d, %d queries, %d cores\n",
		res.GraphNodes, res.GraphEdges, res.IndexK, res.Hubs,
		time.Duration(res.BuildNS).Round(time.Millisecond), res.Strategy, res.K, res.Queries, res.Cores)
	tw := newTable(w)
	fmt.Fprintln(tw, "P\tns/query\tqps\tvs-P1\tnaive-ns/query\tvs-naive\tpruned-by-bound\tconfirmed\tsurvivors\tprune-frac\trounds\tearly-stops\toracle")
	for _, r := range res.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.2f\t%.2fx\t%d\t%.2fx\t%d\t%d\t%d\t%.3f\t%d\t%d\t%v\n",
			r.P, r.NSPerQuery, r.QPS, r.Speedup, r.NaiveNSPerQuery, r.SpeedupVsNaive,
			r.PrunedByBound, r.ConfirmedByBound,
			r.Survivors, r.PruneFraction, r.Rounds, r.EarlyStops, r.OracleAgree)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}
