package exp

import (
	"fmt"
	"io"
	"math"

	"repro/internal/graph"
)

// DatasetRow summarizes one evaluation-graph analog, in the spirit of the
// dataset descriptions of §5.1: shape statistics plus the structural
// properties the algorithms rely on (power-law in-degree for Theorem 1,
// a large strongly connected core for non-degenerate top-k sets).
type DatasetRow struct {
	Name      string
	Paper     string
	Nodes     int
	Edges     int
	AvgOut    float64
	MaxIn     int
	GiniIn    float64
	PowerBeta float64
	// LargestSCCFrac is the fraction of nodes in the largest strongly
	// connected component (web crawls: the bow-tie core).
	LargestSCCFrac float64
	// DegenerateAtK100 counts nodes unable to reach 100 others — nodes
	// whose k=100 proximity set is trivially everything.
	DegenerateAtK100 int
}

// RunDatasets builds every analog and reports its statistics.
func RunDatasets(specs []GraphSpec, progress io.Writer) ([]DatasetRow, error) {
	var rows []DatasetRow
	for _, spec := range specs {
		g, err := spec.Build()
		if err != nil {
			return nil, err
		}
		s := graph.ComputeStats(g)
		row := DatasetRow{
			Name:             spec.Name,
			Paper:            spec.Paper,
			Nodes:            s.Nodes,
			Edges:            s.Edges,
			AvgOut:           s.AvgOutDegree,
			MaxIn:            s.MaxInDegree,
			GiniIn:           s.InDegreeGini,
			PowerBeta:        graph.PowerLawExponent(g, 3),
			LargestSCCFrac:   float64(graph.LargestSCCSize(g)) / float64(g.N()),
			DegenerateAtK100: len(graph.DegenerateNodes(g, 100)),
		}
		rows = append(rows, row)
		if progress != nil {
			fmt.Fprintf(progress, "datasets: %s done\n", spec.Name)
		}
	}
	return rows, nil
}

// WriteDatasets renders the table.
func WriteDatasets(w io.Writer, rows []DatasetRow) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "graph\tstands_for\tn\tm\tavg_out\tmax_in\tgini_in\tbeta\tscc_frac\tdegenerate@k100")
	for _, r := range rows {
		beta := "n/a"
		if !math.IsNaN(r.PowerBeta) {
			beta = fmt.Sprintf("%.2f", r.PowerBeta)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.2f\t%d\t%.3f\t%s\t%.0f%%\t%d\n",
			r.Name, r.Paper, r.Nodes, r.Edges, r.AvgOut, r.MaxIn, r.GiniIn, beta,
			100*r.LargestSCCFrac, r.DegenerateAtK100)
	}
	return tw.Flush()
}
