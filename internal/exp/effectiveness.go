package exp

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
)

// SpamResult aggregates the spam-detection study of §5.4.
type SpamResult struct {
	Hosts, SpamHosts, NormalHosts int
	// SpamQuerySpamRatio is the average fraction of spam hosts in the
	// reverse top-k answers of spam queries (paper: 96.1%); similarly
	// NormalQueryNormalRatio (paper: 97.4%).
	SpamQuerySpamRatio     float64
	NormalQueryNormalRatio float64
	QueriesRun             int
}

// SpamConfig parameterizes the study.
type SpamConfig struct {
	Options gen.SpamWebOptions
	K       int
	IndexK  int
	// MaxQueriesPerClass bounds the number of labeled hosts queried per
	// class (0 = all, as in the paper).
	MaxQueriesPerClass int
	HubBudget          int
	Omega              float64
}

// DefaultSpamConfig mirrors §5.4 at the given scale (reverse top-5 from
// every labeled host).
func DefaultSpamConfig(scale int) SpamConfig {
	return SpamConfig{
		Options:            gen.DefaultSpamWebOptions(scale),
		K:                  5,
		IndexK:             50,
		MaxQueriesPerClass: 0,
		HubBudget:          10 * scale,
		Omega:              1e-6,
	}
}

// RunSpamDetection applies reverse top-k search to every labeled host and
// measures the label purity of the answer sets — the paper's evidence that
// reverse RWR top-k flags link farms.
func RunSpamDetection(cfg SpamConfig, progress io.Writer) (SpamResult, error) {
	g, labels, err := gen.SpamWeb(cfg.Options)
	if err != nil {
		return SpamResult{}, err
	}
	idx, _, err := lbindex.Build(g, indexOptions(cfg.IndexK, cfg.HubBudget, cfg.Omega))
	if err != nil {
		return SpamResult{}, err
	}
	eng, err := core.NewEngine(g, idx, true)
	if err != nil {
		return SpamResult{}, err
	}

	res := SpamResult{Hosts: g.N()}
	var spamRatioSum, normRatioSum float64
	var spamQueries, normQueries int
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		label := labels[u]
		switch label {
		case gen.LabelSpam:
			res.SpamHosts++
		case gen.LabelNormal:
			res.NormalHosts++
		default:
			continue
		}
		if cfg.MaxQueriesPerClass > 0 {
			if label == gen.LabelSpam && spamQueries >= cfg.MaxQueriesPerClass {
				continue
			}
			if label == gen.LabelNormal && normQueries >= cfg.MaxQueriesPerClass {
				continue
			}
		}
		answer, _, err := eng.Query(u, cfg.K)
		if err != nil {
			return SpamResult{}, err
		}
		if len(answer) == 0 {
			continue
		}
		same := 0
		for _, v := range answer {
			if labels[v] == label {
				same++
			}
		}
		ratio := float64(same) / float64(len(answer))
		if label == gen.LabelSpam {
			spamRatioSum += ratio
			spamQueries++
		} else {
			normRatioSum += ratio
			normQueries++
		}
		res.QueriesRun++
	}
	if spamQueries > 0 {
		res.SpamQuerySpamRatio = spamRatioSum / float64(spamQueries)
	}
	if normQueries > 0 {
		res.NormalQueryNormalRatio = normRatioSum / float64(normQueries)
	}
	if progress != nil {
		fmt.Fprintf(progress, "spam: %d queries, spam purity %.3f, normal purity %.3f\n",
			res.QueriesRun, res.SpamQuerySpamRatio, res.NormalQueryNormalRatio)
	}
	return res, nil
}

// WriteSpamResult renders the study summary.
func WriteSpamResult(w io.Writer, r SpamResult) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "hosts\tspam\tnormal\tqueries\tspam_query_spam_ratio\tnormal_query_normal_ratio")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.1f%%\t%.1f%%\n",
		r.Hosts, r.SpamHosts, r.NormalHosts, r.QueriesRun,
		100*r.SpamQuerySpamRatio, 100*r.NormalQueryNormalRatio)
	return tw.Flush()
}

// Table3Row is one author of the popularity ranking of Table 3.
type Table3Row struct {
	Name           string
	ReverseTopKLen int
	Coauthors      int
	Prolific       bool
}

// Table3Config parameterizes the co-authorship study.
type Table3Config struct {
	Options   gen.CoauthorOptions
	K         int
	IndexK    int
	TopN      int
	HubBudget int
	Omega     float64
}

// DefaultTable3Config mirrors §5.4: reverse top-5 search from every author,
// ranked by answer-set size, top 10 reported. Queries hitting the planted
// prolific authors have thousand-node answers, so this is the slowest
// harness experiment (≈1–2 min at scale 1); it measures effectiveness, not
// speed, exactly like the paper's §5.4.
func DefaultTable3Config(scale int) Table3Config {
	if scale <= 0 {
		scale = 1
	}
	opts := gen.DefaultCoauthorOptions(scale)
	opts.Authors = 1000 * scale
	opts.Communities = 12 * scale
	return Table3Config{
		Options:   opts,
		K:         5,
		IndexK:    50,
		TopN:      10,
		HubBudget: 15 * scale,
		Omega:     1e-6,
	}
}

// RunTable3 carries out reverse top-k search from all authors of the
// co-authorship analog and returns the TopN authors by reverse top-k list
// size — the paper's popularity indicator.
func RunTable3(cfg Table3Config, progress io.Writer) ([]Table3Row, error) {
	g, authors, err := gen.Coauthor(cfg.Options)
	if err != nil {
		return nil, err
	}
	idx, _, err := lbindex.Build(g, indexOptions(cfg.IndexK, cfg.HubBudget, cfg.Omega))
	if err != nil {
		return nil, err
	}
	eng, err := core.NewEngine(g, idx, true)
	if err != nil {
		return nil, err
	}
	sizes := make([]int, g.N())
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		answer, _, err := eng.Query(u, cfg.K)
		if err != nil {
			return nil, err
		}
		sizes[u] = len(answer)
		if progress != nil && int(u)%500 == 499 {
			fmt.Fprintf(progress, "table3: %d/%d authors done\n", u+1, g.N())
		}
	}
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if sizes[order[a]] != sizes[order[b]] {
			return sizes[order[a]] > sizes[order[b]]
		}
		return order[a] < order[b]
	})
	topN := cfg.TopN
	if topN > len(order) {
		topN = len(order)
	}
	rows := make([]Table3Row, 0, topN)
	for _, i := range order[:topN] {
		rows = append(rows, Table3Row{
			Name:           authors[i].Name,
			ReverseTopKLen: sizes[i],
			Coauthors:      authors[i].Coauthors,
			Prolific:       authors[i].Prolific,
		})
	}
	return rows, nil
}

// WriteTable3 renders the ranking in the layout of Table 3.
func WriteTable3(w io.Writer, rows []Table3Row) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "author\treverse_top5_size\tcoauthors\tplanted_prolific")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%t\n", r.Name, r.ReverseTopKLen, r.Coauthors, r.Prolific)
	}
	return tw.Flush()
}
