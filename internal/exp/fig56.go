package exp

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

// Fig5Row reports average query performance for one (graph, k, mode)
// cell of Figure 5, with the candidate/hit/result counts of Figure 6
// collected from the same runs.
type Fig5Row struct {
	Graph   string
	K       int
	Update  bool
	Queries int
	AvgTime time.Duration
	// Figure 6 series (averaged per query).
	AvgCandidates float64
	AvgHits       float64
	AvgResults    float64
	// AvgRefineSteps is the average BCA refinement work per query.
	AvgRefineSteps float64
}

// Fig5Config parameterizes the query-performance sweep.
type Fig5Config struct {
	Graphs  []GraphSpec
	Ks      []int
	Queries int
	K       int // index K (max supported query k)
	Omega   float64
	Seed    int64
	// Workers is the intra-query parallelism of the measured engine
	// (Engine.SetWorkers); 0 or 1 reproduces the paper's single-threaded
	// setting. Answers are identical at any value, only timings change.
	Workers int
}

// DefaultFig5Config mirrors §5.3: k ∈ {5,10,20,50,100}, 500 queries (the
// harness default trims the workload; the cmd flag restores 500).
func DefaultFig5Config(scale int) Fig5Config {
	return Fig5Config{
		Graphs:  DefaultGraphs(scale),
		Ks:      []int{5, 10, 20, 50, 100},
		Queries: 100,
		K:       100,
		Omega:   1e-6,
		Seed:    101,
	}
}

// RunFigure5And6 runs the query workload per graph and k in both index
// modes. Each (k, mode) cell starts from a fresh copy of the built index so
// that update-mode refinements cannot leak across cells.
func RunFigure5And6(cfg Fig5Config, progress io.Writer) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, spec := range cfg.Graphs {
		g, err := spec.Build()
		if err != nil {
			return nil, err
		}
		opts := indexOptions(cfg.K, spec.HubBudget, cfg.Omega)
		built, _, err := lbindex.Build(g, opts)
		if err != nil {
			return nil, err
		}
		queries, err := workload.Queries(g.N(), cfg.Queries, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, k := range cfg.Ks {
			if k > cfg.K {
				continue
			}
			for _, update := range []bool{true, false} {
				idx, err := cloneIndex(built)
				if err != nil {
					return nil, err
				}
				eng, err := core.NewEngine(g, idx, update)
				if err != nil {
					return nil, err
				}
				// Timing experiments use the paper-literal decision rule
				// (see core.SetPracticalDecisions): the paper's loop has
				// no exact-fallback escape, so its reported costs
				// correspond to this mode.
				eng.SetPracticalDecisions(true)
				if cfg.Workers > 1 {
					eng.SetWorkers(cfg.Workers)
				}
				row := Fig5Row{Graph: spec.Name, K: k, Update: update, Queries: len(queries)}
				var total time.Duration
				for _, q := range queries {
					_, stats, err := eng.Query(q, k)
					if err != nil {
						return nil, err
					}
					total += stats.Elapsed
					row.AvgCandidates += float64(stats.Candidates)
					row.AvgHits += float64(stats.Hits)
					row.AvgResults += float64(stats.Results)
					row.AvgRefineSteps += float64(stats.RefineSteps)
				}
				nq := float64(len(queries))
				row.AvgTime = time.Duration(float64(total) / nq)
				row.AvgCandidates /= nq
				row.AvgHits /= nq
				row.AvgResults /= nq
				row.AvgRefineSteps /= nq
				rows = append(rows, row)
				if progress != nil {
					fmt.Fprintf(progress, "fig5/6: %s k=%d update=%t avg=%v\n", spec.Name, k, update, row.AvgTime.Round(time.Microsecond))
				}
			}
		}
	}
	return rows, nil
}

// WriteFigure5 renders the query-time series of Figure 5.
func WriteFigure5(w io.Writer, rows []Fig5Row) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "graph\tk\tmode\tqueries\tavg_query_time\tavg_refine_steps")
	for _, r := range rows {
		mode := "no-update"
		if r.Update {
			mode = "update"
		}
		fmt.Fprintf(tw, "%s\t%d\t%s\t%d\t%v\t%.1f\n",
			r.Graph, r.K, mode, r.Queries, r.AvgTime.Round(time.Microsecond), r.AvgRefineSteps)
	}
	return tw.Flush()
}

// WriteFigure6 renders the candidates/hits/results series of Figure 6
// (update mode only, matching the paper).
func WriteFigure6(w io.Writer, rows []Fig5Row) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "graph\tk\tcand\thits\tresult")
	for _, r := range rows {
		if !r.Update {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.1f\n", r.Graph, r.K, r.AvgCandidates, r.AvgHits, r.AvgResults)
	}
	return tw.Flush()
}
