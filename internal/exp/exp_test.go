package exp

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
)

// tinyGraphs returns down-scaled specs so the harness tests stay fast.
func tinyGraphs() []GraphSpec {
	return []GraphSpec{
		{Name: "web-tiny", Paper: "Web-stanford-cs", Nodes: 300, Kind: "web", Seed: 11, HubBudget: 5},
		{Name: "social-tiny", Paper: "Epinions", Nodes: 300, Kind: "social", Seed: 13, HubBudget: 6},
	}
}

func TestGraphSpecBuild(t *testing.T) {
	for _, spec := range DefaultGraphs(1) {
		g, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if g.N() != spec.Nodes {
			t.Errorf("%s: n=%d, want %d", spec.Name, g.N(), spec.Nodes)
		}
	}
	bad := GraphSpec{Kind: "nope", Nodes: 10}
	if _, err := bad.Build(); err == nil {
		t.Error("want kind error")
	}
}

func TestRunTable2Shape(t *testing.T) {
	cfg := Table2Config{
		Graphs:        tinyGraphs()[:1],
		BFractions:    []float64{0.01, 0.03},
		K:             20,
		Omega:         1e-6,
		SampleColumns: 16,
	}
	rows, err := RunTable2(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.BuildTime <= 0 || r.FullPTime <= 0 {
			t.Errorf("non-positive times: %+v", r)
		}
		if r.ActualBytes <= 0 || r.PhatBytes <= 0 {
			t.Errorf("non-positive sizes: %+v", r)
		}
		// The headline shape of Table 2: building the index costs far
		// less than materializing P, and stores far less than P.
		if r.BuildTime > r.FullPTime {
			t.Errorf("%s B=%d: index build %v slower than full P %v", r.Graph, r.B, r.BuildTime, r.FullPTime)
		}
		if r.ActualBytes >= r.FullPBytes {
			t.Errorf("%s B=%d: index %d B not below full P %d B", r.Graph, r.B, r.ActualBytes, r.FullPBytes)
		}
	}
	var buf bytes.Buffer
	if err := WriteTable2(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "web-tiny") {
		t.Error("rendered table missing graph name")
	}
}

func TestRunFigure5And6Shape(t *testing.T) {
	cfg := Fig5Config{
		Graphs:  tinyGraphs()[:1],
		Ks:      []int{5, 10},
		Queries: 10,
		K:       20,
		Omega:   1e-6,
		Seed:    1,
	}
	rows, err := RunFigure5And6(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 ks × 2 modes
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.AvgTime <= 0 {
			t.Errorf("non-positive avg time: %+v", r)
		}
		if r.AvgHits > r.AvgCandidates+1e-9 {
			t.Errorf("hits exceed candidates: %+v", r)
		}
		if r.AvgResults > r.AvgCandidates+1e-9 {
			t.Errorf("results exceed candidates: %+v", r)
		}
		// Fig. 6's shape: candidates are in the order of k, not n.
		if r.AvgCandidates > float64(cfg.Graphs[0].Nodes)/2 {
			t.Errorf("pruning ineffective: %g candidates of %d nodes", r.AvgCandidates, cfg.Graphs[0].Nodes)
		}
	}
	var buf bytes.Buffer
	if err := WriteFigure5(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if err := WriteFigure6(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cand") {
		t.Error("figure 6 header missing")
	}
}

func TestRunFigure7Shape(t *testing.T) {
	cfg := Fig7Config{
		Graph:   tinyGraphs()[0],
		K:       10,
		IndexK:  20,
		Queries: 8,
		Omega:   1e-6,
		Seed:    2,
	}
	points, err := RunFigure7(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 8 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		if p.QueryID != i || p.Update <= 0 || p.NoUpdate <= 0 {
			t.Errorf("bad point %d: %+v", i, p)
		}
	}
	var buf bytes.Buffer
	if err := WriteFigure7(&buf, points); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure8Shape(t *testing.T) {
	// n=500 is the smallest scale at which build costs dominate enough
	// for the paper's curve ordering to emerge; see EXPERIMENTS.md.
	cfg := Fig8Config{
		Graph:        GraphSpec{Name: "web-f8", Paper: "Web-stanford-cs", Nodes: 500, Kind: "web", Seed: 11, HubBudget: 10},
		K:            10,
		IndexK:       50,
		Omega:        1e-6,
		SamplePoints: 10,
	}
	points, err := RunFigure8(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatalf("points = %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if first.QueriesDone != 0 {
		t.Errorf("first point should be the build cost, got %+v", first)
	}
	// Fig. 8's shapes: our build is far cheaper than both brute-force
	// builds, and our cumulative cost stays below FBF's throughout.
	if first.Ours >= first.FBF {
		t.Errorf("our build %v not below FBF build %v", first.Ours, first.FBF)
	}
	if last.Ours >= last.FBF {
		t.Errorf("our cumulative %v not below FBF %v", last.Ours, last.FBF)
	}
	// Cumulative curves are non-decreasing.
	for i := 1; i < len(points); i++ {
		if points[i].Ours < points[i-1].Ours || points[i].IBF < points[i-1].IBF || points[i].FBF < points[i-1].FBF {
			t.Errorf("non-monotone cumulative at %d", i)
		}
	}
	var buf bytes.Buffer
	if err := WriteFigure8(&buf, points); err != nil {
		t.Fatal(err)
	}
}

func TestRunFigure9Shape(t *testing.T) {
	cfg := Fig9Config{
		Graph:   tinyGraphs()[0],
		Omegas:  []float64{1e-3, 1e-6},
		Ks:      []int{5, 10},
		IndexK:  20,
		Queries: 8,
		Seed:    3,
	}
	rows, err := RunFigure9(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	smallPractical := 0.0
	for _, r := range rows {
		if r.ExactJaccard < 0 || r.ExactJaccard > 1 || r.PracticalJaccard < 0 || r.PracticalJaccard > 1 {
			t.Errorf("jaccard out of range: %+v", r)
		}
		// Exact mode is rounding-immune: the slack-aware bounds plus the
		// exact fallback reproduce the reference at EVERY ω.
		if r.ExactJaccard < 1.0-1e-9 {
			t.Errorf("exact-mode jaccard %.4f below 1 at ω=%g k=%d", r.ExactJaccard, r.Omega, r.K)
		}
		if r.Omega == 1e-6 {
			smallPractical += r.PracticalJaccard
		}
	}
	// ω=1e-6 drops almost nothing on a 300-node graph, so even the
	// bounds-only practical mode agrees with the reference.
	if smallPractical/2 < 0.95 {
		t.Errorf("ω=1e-6 practical jaccard %g, want ≈1", smallPractical/2)
	}
	var buf bytes.Buffer
	if err := WriteFigure9(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestRunApproxStudyShape(t *testing.T) {
	cfg := ApproxConfig{
		Graph:   tinyGraphs()[0],
		Ks:      []int{5, 10},
		IndexK:  20,
		Queries: 10,
		Omega:   1e-6,
		Seed:    6,
	}
	rows, err := RunApproxStudy(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// On a 300-node graph the δ=0.1 bounds are loose, so hits-only
		// recall is modest; the paper-scale run (EXPERIMENTS.md) shows
		// the web-graph recall. Here we only pin the shape.
		if r.Recall <= 0.2 || r.Recall > 1 {
			t.Errorf("recall out of expected range: %+v", r)
		}
		if r.Precision < 0.9 || r.Precision > 1 {
			// Approximate answers are hits; apart from boundary noise
			// they are a subset of the exact answer.
			t.Errorf("precision out of expected range: %+v", r)
		}
		// At this scale both modes cost microseconds, so allow generous
		// noise; the approximate mode must merely not be systematically
		// slower (it does strictly less work). The ratio alone is not a
		// stable signal down here — exact mode's batched fallbacks made
		// it fast enough that scheduler jitter on a loaded machine can
		// exceed any fixed multiple — so the bound carries an absolute
		// noise floor too.
		if r.ApproxAvg > 2*r.ExactAvgTime+time.Millisecond {
			t.Errorf("approximate mode much slower than exact: %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := WriteApproxStudy(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestRunSpamDetectionShape(t *testing.T) {
	o := gen.SpamWebOptions{
		Normal: 200, Spam: 60, Undecided: 20,
		Farms: 3, FarmDensity: 6, NormalOut: 5,
		SpamToNormal: 1, NormalToSpam: 0.02, Seed: 5,
	}
	cfg := SpamConfig{
		Options: o, K: 5, IndexK: 20,
		MaxQueriesPerClass: 40, HubBudget: 5, Omega: 1e-6,
	}
	res, err := RunSpamDetection(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesRun == 0 {
		t.Fatal("no queries ran")
	}
	// §5.4's signal: reverse top-k answers are label-pure. The paper
	// reports 96%/97% on the real corpus; the synthetic analog should
	// comfortably clear a 75% bar.
	if res.SpamQuerySpamRatio < 0.75 {
		t.Errorf("spam purity %g too low", res.SpamQuerySpamRatio)
	}
	if res.NormalQueryNormalRatio < 0.75 {
		t.Errorf("normal purity %g too low", res.NormalQueryNormalRatio)
	}
	var buf bytes.Buffer
	if err := WriteSpamResult(&buf, res); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable3Shape(t *testing.T) {
	o := gen.CoauthorOptions{
		Authors: 400, Communities: 8, Prolific: 3,
		PapersPerAuthor: 6, CoauthorsPerPaper: 2, Seed: 7,
	}
	cfg := Table3Config{
		Options: o, K: 5, IndexK: 20, TopN: 5, HubBudget: 6, Omega: 1e-6,
	}
	rows, err := RunTable3(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Table 3's phenomenon: the planted prolific authors dominate the
	// ranking and their reverse top-k lists exceed their coauthor counts.
	prolificInTop := 0
	for _, r := range rows[:3] {
		if r.Prolific {
			prolificInTop++
		}
	}
	if prolificInTop < 2 {
		t.Errorf("only %d planted prolific authors in the top 3: %+v", prolificInTop, rows)
	}
	if rows[0].ReverseTopKLen <= rows[0].Coauthors {
		t.Errorf("top author's reverse list (%d) not above coauthor count (%d)",
			rows[0].ReverseTopKLen, rows[0].Coauthors)
	}
	var buf bytes.Buffer
	if err := WriteTable3(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestRunEvolveStudyShape(t *testing.T) {
	cfg := EvolveConfig{
		Graph:   tinyGraphs()[0],
		Edits:   5,
		Thetas:  []float64{0, 1e-3},
		K:       5,
		IndexK:  20,
		Queries: 8,
		Omega:   1e-6,
		Seed:    9,
	}
	rows, err := RunEvolveStudy(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// θ=0 must reproduce the rebuilt index's answers exactly.
	if rows[0].Theta != 0 || rows[0].Jaccard < 1.0-1e-9 {
		t.Errorf("θ=0 refresh not equivalent to rebuild: %+v", rows[0])
	}
	// Larger θ refreshes no more origins and stays accurate.
	if rows[1].Affected > rows[0].Affected {
		t.Errorf("θ>0 refreshed more origins than θ=0: %+v vs %+v", rows[1], rows[0])
	}
	if rows[1].Jaccard < 0.9 {
		t.Errorf("thresholded refresh too inaccurate: %+v", rows[1])
	}
	var buf bytes.Buffer
	if err := WriteEvolveStudy(&buf, rows); err != nil {
		t.Fatal(err)
	}
}

func TestRunDatasetsShape(t *testing.T) {
	rows, err := RunDatasets(tinyGraphs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Nodes <= 0 || r.Edges <= 0 {
			t.Errorf("bad shape: %+v", r)
		}
		if r.LargestSCCFrac <= 0 || r.LargestSCCFrac > 1 {
			t.Errorf("scc fraction out of range: %+v", r)
		}
	}
	var buf bytes.Buffer
	if err := WriteDatasets(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "web-tiny") {
		t.Error("render missing graph")
	}
}
