package exp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSpMMBenchShape runs the batching experiment at toy scale: every
// width must reproduce the scalar oracle answers, timings must be sane, and
// the JSON record must round-trip.
func TestRunSpMMBenchShape(t *testing.T) {
	cfg := DefaultSpMMBenchConfig(1)
	cfg.Nodes = 3000
	cfg.Queries = 8
	cfg.Widths = []int{1, 4}
	cfg.OracleQueries = 4
	res, err := RunSpMMBench(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.Widths) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.Widths))
	}
	if res.Layout != "degree" {
		t.Fatalf("layout = %q, want degree", res.Layout)
	}
	for _, r := range res.Rows {
		if !r.OracleAgree {
			t.Fatalf("width=%d: batched answers differ from the scalar engine", r.Width)
		}
		if r.QPS <= 0 || r.NSPerQuery <= 0 || r.PMPNIters <= 0 {
			t.Fatalf("width=%d: degenerate timings %+v", r.Width, r)
		}
	}
	if res.Rows[0].SpeedupVsScalar != 1 {
		t.Fatalf("scalar row speedup = %v, want 1", res.Rows[0].SpeedupVsScalar)
	}

	jsonPath := filepath.Join(t.TempDir(), "BENCH_spmm.json")
	var buf bytes.Buffer
	if err := WriteSpMMBench(&buf, res, jsonPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vs-scalar") {
		t.Fatalf("table output missing header:\n%s", buf.String())
	}
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var back SpMMBenchResult
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.GraphNodes != res.GraphNodes || len(back.Rows) != len(res.Rows) {
		t.Fatalf("JSON round-trip mismatch: %+v vs %+v", back, res)
	}
}

// TestRunSpMMBenchRejectsBadWidths: the sweep must anchor on the scalar
// baseline.
func TestRunSpMMBenchRejectsBadWidths(t *testing.T) {
	cfg := DefaultSpMMBenchConfig(1)
	cfg.Nodes = 500
	cfg.Widths = []int{2, 4}
	if _, err := RunSpMMBench(cfg, nil); err == nil {
		t.Fatal("accepted a width sweep without the scalar baseline")
	}
}
