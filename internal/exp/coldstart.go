package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
)

// ColdstartConfig parameterizes the cold-start experiment: how fast a
// daemon can go from "index file on disk" to "serving state in memory".
type ColdstartConfig struct {
	// RMATScale/EdgeFactor size the bench graph (2^RMATScale nodes).
	RMATScale, EdgeFactor int
	// IndexK is the built index's K.
	IndexK int
	// HubBudget is the hub selection budget B.
	HubBudget int
	// Reps is how many times each loader runs; the minimum is reported.
	Reps int
	// SampleRows is how many per-node rows the cross-loader identity check
	// compares bit for bit (hub columns are always compared in full).
	SampleRows int
	Seed       int64
}

// DefaultColdstartConfig benches the ~100k-node index the acceptance
// criterion names (2^17 = 131072 nodes). The BCA thresholds are loose: the
// experiment measures (de)serialization, not bound quality, and a looser
// index builds far faster at the same on-disk shape.
func DefaultColdstartConfig(scale int) ColdstartConfig {
	s := 17
	if scale > 1 {
		s += scale - 1
	}
	return ColdstartConfig{
		RMATScale:  s,
		EdgeFactor: 8,
		IndexK:     32,
		HubBudget:  32,
		Reps:       3,
		SampleRows: 2000,
		Seed:       909,
	}
}

// ColdstartResult is the machine-readable record emitted as
// BENCH_coldstart.json: file sizes and load times per loader generation,
// with the mmap speedup over the v1 parse as the headline number.
type ColdstartResult struct {
	GraphNodes int   `json:"graph_nodes"`
	GraphEdges int   `json:"graph_edges"`
	IndexK     int   `json:"index_k"`
	Hubs       int   `json:"hubs"`
	BuildNS    int64 `json:"build_ns"`
	V1Bytes    int64 `json:"v1_bytes"`
	V2Bytes    int64 `json:"v2_bytes"`
	// Best-of-Reps load times per loader.
	V1LoadNS     int64 `json:"v1_load_ns"`
	V2HeapLoadNS int64 `json:"v2_heap_load_ns"`
	V2MmapLoadNS int64 `json:"v2_mmap_load_ns"`
	// Speedups are relative to the v1 parse.
	SpeedupHeap float64 `json:"speedup_v2_heap"`
	SpeedupMmap float64 `json:"speedup_v2_mmap"`
	// MmapBacked records whether the mmap loader actually mapped (false on
	// platforms where it falls back to the heap).
	MmapBacked bool `json:"mmap_backed"`
	// LoadersAgree is the cross-loader identity check: hub matrix and a
	// row sample compared bit for bit across v1-heap/v2-heap/v2-mmap.
	RowsChecked  int  `json:"rows_checked"`
	LoadersAgree bool `json:"loaders_agree"`
}

// RunColdstart builds the bench index once, saves it in both formats, and
// measures every loader generation against the same files.
func RunColdstart(cfg ColdstartConfig, progress io.Writer) (*ColdstartResult, error) {
	g, err := gen.RMAT(cfg.RMATScale, cfg.EdgeFactor, 0.57, 0.19, 0.19, 0.05, cfg.Seed)
	if err != nil {
		return nil, err
	}
	opts := indexOptions(cfg.IndexK, cfg.HubBudget, 1e-6)
	// Loose thresholds (the Figure 2 early-termination setting): the
	// experiment measures load cost, not bound tightness, and a generous
	// hub set keeps the resumable states compact (ink parks at hubs within
	// a couple of hops), which is also the realistic index shape — p̂ and
	// the hub columns dominating, not half-drained residue matrices.
	opts.BCA.Delta = 0.8
	opts.BCA.Eta = 1e-2
	if progress != nil {
		fmt.Fprintf(progress, "coldstart: building index over n=%d m=%d ...\n", g.N(), g.M())
	}
	buildStart := time.Now()
	idx, stats, err := lbindex.Build(g, opts)
	if err != nil {
		return nil, err
	}
	res := &ColdstartResult{
		GraphNodes: g.N(),
		GraphEdges: g.M(),
		IndexK:     cfg.IndexK,
		Hubs:       stats.HubCount,
		BuildNS:    int64(time.Since(buildStart)),
	}

	dir, err := os.MkdirTemp("", "rtk-coldstart")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	v1Path, v2Path := filepath.Join(dir, "bench.idx1"), filepath.Join(dir, "bench.idx2")
	if res.V1Bytes, err = saveIndex(v1Path, idx.SaveV1); err != nil {
		return nil, err
	}
	if res.V2Bytes, err = saveIndex(v2Path, idx.Save); err != nil {
		return nil, err
	}
	if progress != nil {
		fmt.Fprintf(progress, "coldstart: built in %v; v1=%d B v2=%d B\n",
			time.Duration(res.BuildNS).Round(time.Millisecond), res.V1Bytes, res.V2Bytes)
	}

	loaders := []struct {
		name string
		path string
		opts lbindex.LoadOptions
		ns   *int64
	}{
		{"v1-heap", v1Path, lbindex.LoadOptions{}, &res.V1LoadNS},
		{"v2-heap", v2Path, lbindex.LoadOptions{}, &res.V2HeapLoadNS},
		{"v2-mmap", v2Path, lbindex.LoadOptions{Mmap: true}, &res.V2MmapLoadNS},
	}
	loaded := make([]*lbindex.Index, len(loaders))
	for i, l := range loaders {
		best := int64(math.MaxInt64)
		for rep := 0; rep < max(cfg.Reps, 1); rep++ {
			start := time.Now()
			li, err := lbindex.LoadFile(l.path, l.opts)
			if err != nil {
				return nil, fmt.Errorf("exp: %s load: %w", l.name, err)
			}
			if ns := int64(time.Since(start)); ns < best {
				best = ns
			}
			loaded[i] = li
		}
		*l.ns = best
		if progress != nil {
			fmt.Fprintf(progress, "coldstart: %s load %v (mmap=%v)\n",
				l.name, time.Duration(best).Round(time.Microsecond), loaded[i].MmapBacked())
		}
	}
	res.MmapBacked = loaded[2].MmapBacked()
	if res.V2HeapLoadNS > 0 {
		res.SpeedupHeap = float64(res.V1LoadNS) / float64(res.V2HeapLoadNS)
	}
	if res.V2MmapLoadNS > 0 {
		res.SpeedupMmap = float64(res.V1LoadNS) / float64(res.V2MmapLoadNS)
	}

	res.RowsChecked, res.LoadersAgree = indexesAgree(loaded[0], loaded[1], loaded[2], cfg.SampleRows)
	if !res.LoadersAgree {
		return nil, fmt.Errorf("exp: loaders disagree on index content")
	}
	return res, nil
}

func saveIndex(path string, save func(io.Writer) error) (int64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	if err := save(f); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	st, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// indexesAgree compares the three loaded indexes bit for bit: the full hub
// matrix, plus an evenly spaced sample of per-node rows (p̂ column, residue
// norm, resumable state). Query answers are a pure function of exactly
// this data, so bitwise agreement here implies byte-identical answers; the
// engine-level cross-loader test lives in internal/core.
func indexesAgree(a, b, c *lbindex.Index, sample int) (int, bool) {
	for _, o := range []*lbindex.Index{b, c} {
		if a.N() != o.N() || a.K() != o.K() || a.Refinements() != o.Refinements() {
			return 0, false
		}
		an, ah, acols, atop, adrop, aom := a.HubMatrix().Parts()
		on, oh, ocols, otop, odrop, oom := o.HubMatrix().Parts()
		if an != on || aom != oom || len(ah) != len(oh) {
			return 0, false
		}
		for i := range ah {
			if ah[i] != oh[i] || math.Float64bits(adrop[i]) != math.Float64bits(odrop[i]) ||
				!floatsEqualBits(atop[i], otop[i]) ||
				!int32sEqual(acols[i].Idx, ocols[i].Idx) || !floatsEqualBits(acols[i].Val, ocols[i].Val) {
				return 0, false
			}
		}
	}
	step := a.N() / sample
	if step < 1 {
		step = 1
	}
	checked := 0
	for u := 0; u < a.N(); u += step {
		id := graph.NodeID(u)
		for _, o := range []*lbindex.Index{b, c} {
			if !floatsEqualBits(a.PHatRow(id), o.PHatRow(id)) ||
				math.Float64bits(a.ResidueNorm(id)) != math.Float64bits(o.ResidueNorm(id)) {
				return checked, false
			}
			as, os := a.StateSnapshot(id), o.StateSnapshot(id)
			if (as == nil) != (os == nil) {
				return checked, false
			}
			if as != nil {
				if as.T != os.T ||
					!int32sEqual(as.R.Idx, os.R.Idx) || !floatsEqualBits(as.R.Val, os.R.Val) ||
					!int32sEqual(as.W.Idx, os.W.Idx) || !floatsEqualBits(as.W.Val, os.W.Val) ||
					!int32sEqual(as.S.Idx, os.S.Idx) || !floatsEqualBits(as.S.Val, os.S.Val) {
					return checked, false
				}
			}
		}
		checked++
	}
	return checked, true
}

func floatsEqualBits(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteColdstart renders the experiment and writes the JSON record when
// jsonPath is non-empty.
func WriteColdstart(w io.Writer, res *ColdstartResult, jsonPath string) error {
	tw := newTable(w)
	fmt.Fprintln(tw, "graph_nodes\tgraph_edges\tK\thubs\tv1_bytes\tv2_bytes\tv1_load\tv2_heap_load\tv2_mmap_load\tspeedup_mmap\tmmap\tagree")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\t%v\t%v\t%v\t%.1fx\t%v\t%v\n",
		res.GraphNodes, res.GraphEdges, res.IndexK, res.Hubs, res.V1Bytes, res.V2Bytes,
		time.Duration(res.V1LoadNS).Round(time.Microsecond),
		time.Duration(res.V2HeapLoadNS).Round(time.Microsecond),
		time.Duration(res.V2MmapLoadNS).Round(time.Microsecond),
		res.SpeedupMmap, res.MmapBacked, res.LoadersAgree)
	if err := tw.Flush(); err != nil {
		return err
	}
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}
