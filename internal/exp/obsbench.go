package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/gen"
	"repro/internal/lbindex"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/workload"
)

// ObsBenchConfig parameterizes the observability-overhead experiment: the
// same query workload driven through two daemons over one index — one with
// the full instrumentation stack active (structured request logging and a
// record-everything slow-query ring on top of the always-on registry), one
// with logging and the slow log disabled — interleaved query by query so
// machine drift cancels. The gate is that full observability costs under a
// small fraction of median query latency.
type ObsBenchConfig struct {
	// Nodes sizes the bench graph; IndexK / HubBudget shape the index.
	Nodes, IndexK, HubBudget int
	// K is the query k; Queries the workload size per daemon.
	K, Queries int
	Seed       int64
}

// DefaultObsBenchConfig keeps the experiment CI-sized: a 20k-node web
// graph is large enough that queries do real PMPN work (so the overhead
// ratio is measured against realistic latencies) while the whole run stays
// under a minute.
func DefaultObsBenchConfig(scale int) ObsBenchConfig {
	n := 20000
	if scale > 1 {
		n *= scale
	}
	return ObsBenchConfig{
		Nodes:     n,
		IndexK:    24,
		HubBudget: 24,
		K:         10,
		Queries:   240,
		Seed:      2339,
	}
}

// ObsBenchResult is the machine-readable record emitted as BENCH_obs.json.
type ObsBenchResult struct {
	GraphNodes int `json:"graph_nodes"`
	GraphEdges int `json:"graph_edges"`
	K          int `json:"k"`
	Queries    int `json:"queries"`
	Cores      int `json:"cores"`
	// BaselineMedianNS / InstrumentedMedianNS are the per-query median
	// end-to-end HTTP latencies of the two daemons; OverheadPct is the
	// instrumented median's excess over the baseline in percent (negative
	// when noise favors the instrumented run).
	BaselineMedianNS     int64   `json:"baseline_median_ns"`
	InstrumentedMedianNS int64   `json:"instrumented_median_ns"`
	OverheadPct          float64 `json:"overhead_pct"`
	// Families counts the metric families the instrumented daemon's
	// /metrics exposition carried; ExpositionValid is true when the
	// exposition parsed cleanly and every required family was present.
	Families        int  `json:"families"`
	ExpositionValid bool `json:"exposition_valid"`
	// SlowLogEntries is the number of entries the record-everything ring
	// held after the run (bounded by its capacity).
	SlowLogEntries int `json:"slowlog_entries"`
}

// requiredFamilies is the exposition contract the serve-smoke CI step and
// this experiment both enforce: a scrape missing any of these families is
// a broken dashboard, not a style issue.
var requiredFamilies = []string{
	"rtk_queries_served_total",
	"rtk_queries_computed_total",
	"rtk_query_cache_total",
	"rtk_queries_rejected_total",
	"rtk_query_failures_total",
	"rtk_query_duration_seconds",
	"rtk_query_phase_seconds",
	"rtk_cache_bytes",
	"rtk_cache_evictions_total",
	"rtk_epoch",
	"rtk_nodes",
	"rtk_inflight",
	"rtk_maint_queue_depth",
	"rtk_maint_duration_seconds",
	"rtk_maint_errors_total",
	"rtk_compactions_total",
	"rtk_epoch_swaps_total",
	"rtk_uptime_seconds",
}

// ValidateExposition scrapes baseURL/metrics, parses it with the strict
// text-format parser and checks the required family set, returning the
// family count. Shared by this experiment and any smoke harness.
func ValidateExposition(baseURL string) (int, error) {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("exp: /metrics returned %d", resp.StatusCode)
	}
	fams, err := obs.ParseText(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("exp: malformed exposition: %w", err)
	}
	for _, name := range requiredFamilies {
		if fams[name] == nil {
			return len(fams), fmt.Errorf("exp: exposition missing required family %s", name)
		}
	}
	return len(fams), nil
}

// obsBenchServer starts one daemon on a loopback listener and returns its
// base URL plus a shutdown func.
func obsBenchServer(s *serve.Server) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	stop := func() {
		httpSrv.Close()
		s.Close()
	}
	return "http://" + ln.Addr().String(), stop, nil
}

// RunObsBench builds one index, serves it from a baseline and an
// instrumented daemon, and interleaves the same query workload through
// both, recording median latencies and validating the instrumented
// daemon's exposition.
func RunObsBench(cfg ObsBenchConfig, progress io.Writer) (*ObsBenchResult, error) {
	g, err := gen.WebGraph(cfg.Nodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	opts := indexOptions(cfg.IndexK, cfg.HubBudget, 1e-6)
	if progress != nil {
		fmt.Fprintf(progress, "obs: building index over n=%d m=%d ...\n", g.N(), g.M())
	}
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		return nil, err
	}

	// Both daemons serve with the cache disabled so every request runs the
	// engine: the interesting overhead is on the compute path, and a warm
	// cache would otherwise reduce the comparison to cache-hit dispatch.
	base := serve.Config{CacheBytes: -1, WorkerBudget: 1, SpMMBatch: 1}
	baseline, err := serve.New(g, idx, base)
	if err != nil {
		return nil, err
	}
	instCfg := base
	// The instrumented daemon runs the full stack: one structured log line
	// per request (serialized, then discarded — the writer is not the cost
	// being measured) and a record-everything slow-query ring.
	instCfg.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	instCfg.SlowLogThreshold = -1
	instrumented, err := serve.New(g, idx, instCfg)
	if err != nil {
		baseline.Close()
		return nil, err
	}

	baseURL, stopBase, err := obsBenchServer(baseline)
	if err != nil {
		instrumented.Close()
		baseline.Close()
		return nil, err
	}
	defer stopBase()
	instURL, stopInst, err := obsBenchServer(instrumented)
	if err != nil {
		instrumented.Close()
		return nil, err
	}
	defer stopInst()

	queries, err := workload.Queries(g.N(), cfg.Queries, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 60 * time.Second}
	fetch := func(base string, q int) (time.Duration, error) {
		url := fmt.Sprintf("%s/v1/reverse-topk?q=%d&k=%d", base, q, cfg.K)
		start := time.Now()
		resp, err := client.Get(url)
		if err != nil {
			return 0, err
		}
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("exp: query %d returned %d", q, resp.StatusCode)
		}
		return time.Since(start), nil
	}

	// Warm both daemons (page-in, pools) before measuring.
	for i := 0; i < 8 && i < len(queries); i++ {
		if _, err := fetch(baseURL, int(queries[i])); err != nil {
			return nil, err
		}
		if _, err := fetch(instURL, int(queries[i])); err != nil {
			return nil, err
		}
	}

	if progress != nil {
		fmt.Fprintf(progress, "obs: interleaving %d queries through baseline and instrumented daemons ...\n", len(queries))
	}
	baseNS := make([]int64, 0, len(queries))
	instNS := make([]int64, 0, len(queries))
	for i, q := range queries {
		// Alternate which daemon goes first so ordering effects cancel too.
		first, second := baseURL, instURL
		firstNS, secondNS := &baseNS, &instNS
		if i%2 == 1 {
			first, second = instURL, baseURL
			firstNS, secondNS = &instNS, &baseNS
		}
		d1, err := fetch(first, int(q))
		if err != nil {
			return nil, err
		}
		d2, err := fetch(second, int(q))
		if err != nil {
			return nil, err
		}
		*firstNS = append(*firstNS, int64(d1))
		*secondNS = append(*secondNS, int64(d2))
	}

	res := &ObsBenchResult{
		GraphNodes:           g.N(),
		GraphEdges:           g.M(),
		K:                    cfg.K,
		Queries:              len(queries),
		Cores:                runtime.NumCPU(),
		BaselineMedianNS:     medianInt64(baseNS),
		InstrumentedMedianNS: medianInt64(instNS),
	}
	res.OverheadPct = 100 * (float64(res.InstrumentedMedianNS) - float64(res.BaselineMedianNS)) / float64(res.BaselineMedianNS)
	res.SlowLogEntries = len(instrumented.SlowLog().Snapshot(0))

	fams, err := ValidateExposition(instURL)
	res.Families = fams
	res.ExpositionValid = err == nil
	if err != nil {
		return res, err
	}
	return res, nil
}

func medianInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]int64(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// WriteObsBench renders the result and optionally writes BENCH_obs.json.
func WriteObsBench(w io.Writer, res *ObsBenchResult, jsonPath string) error {
	fmt.Fprintf(w, "graph: n=%d m=%d; k=%d, %d queries, %d cores\n",
		res.GraphNodes, res.GraphEdges, res.K, res.Queries, res.Cores)
	fmt.Fprintf(w, "median latency: baseline %v, instrumented %v (overhead %+.2f%%)\n",
		time.Duration(res.BaselineMedianNS).Round(time.Microsecond),
		time.Duration(res.InstrumentedMedianNS).Round(time.Microsecond),
		res.OverheadPct)
	fmt.Fprintf(w, "exposition: %d families, valid=%v; slowlog held %d entries\n",
		res.Families, res.ExpositionValid, res.SlowLogEntries)
	if jsonPath == "" {
		return nil
	}
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", jsonPath)
	return nil
}
