package lbindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"runtime"
	"sync/atomic"
	"unsafe"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/partition"
	"repro/internal/vecmath"
)

// Index format v2 ("RTKLBIX2"). Little-endian throughout, designed so a
// loader can serve every large array zero-copy out of an mmap'd file:
//
//	preamble (32 B):
//	  0  magic    "RTKLBIX2"
//	  8  fileSize u64   total image length
//	  16 nsec     u32   number of sections (= v2NumSections)
//	  20 tableCRC u32   CRC32C of the section table
//	  24 fileCRC  u32   CRC32C of the whole image except this field
//	  28 pad      u32   zero
//	section table (nsec × 24 B at offset 32):
//	  id u32, crc u32 (CRC32C of the payload), off u64, len u64
//	payload sections, in table order, each starting 8-byte aligned.
//
// Sections are flat slabs: per-hub and per-state sparse vectors are
// concatenated into one index slab + one value slab, with a u64 prefix-sum
// offset table giving each row's boundaries; p̂ is one dense [n×K]f64 slab.
// Node tags are implicit: a node is a state node iff it is not a hub.
//
// SHARD SLICES use the same container with three extra sections (nsec =
// v2NumSectionsSharded): the partition-map fields (strategy, P, shard id,
// hash seed, range bounds) and the explicit ascending owned-row list. In a
// shard image the meta node count n stays GLOBAL and the hub sections still
// describe the full hub matrix (every shard refines against it), but the
// state slabs cover only the owned non-hub rows and the p̂ slab only the
// owned rows, in owned order — a P-way sharding therefore costs ≈ 1× the
// full index on disk in total, not P×. Full images are written exactly as
// before, bit for bit.
//
// Indexes carrying a cache-aware relabeling append one more trailing section
// (secPerm; nsec = 20 full, 23 sharded) holding the external→internal node
// permutation, so the translation boundary survives a save/load round trip.
//
// Every byte of the image except the fileCRC field itself is covered by
// fileCRC, so any single-byte corruption is detected (the fileCRC field is
// self-checking: corrupting it breaks the comparison). Per-section CRCs
// exist to localize the damage in error messages and are all covered by
// fileCRC too.
const indexMagicV2 = "RTKLBIX2"

// Section identifiers, in file order.
const (
	secMeta = iota
	secHubIDs
	secHubTopK
	secHubDropped
	secHubColOff
	secHubColIdx
	secHubColVal
	secStateT
	secStateRNorm
	secStateROff
	secStateRIdx
	secStateRVal
	secStateWOff
	secStateWIdx
	secStateWVal
	secStateSOff
	secStateSIdx
	secStateSVal
	secPhat
	v2NumSections
)

// Shard-slice sections, appended after the full set.
const (
	secPartMeta = v2NumSections + iota
	secPartBounds
	secPartRows
	v2NumSectionsSharded
)

// secPerm stores the build-time cache-aware node relabeling: one u32
// internal id per external id (see Index.SetRelabeling). The section is
// OPTIONAL — indexes without a relabeling write exactly the old images, bit
// for bit — and when present always occupies the LAST table position, with
// this fixed id in both full (nsec = v2NumSectionsPerm) and shard-slice
// (nsec = v2NumSectionsShardedPerm) images; sectionID maps table positions
// to ids. The payload may cover fewer nodes than n when the image was saved
// after node growth (grown ids keep identity labels) and must be a bijection
// on its own length, which every loader verifies.
const secPerm = v2NumSectionsSharded

const (
	v2NumSectionsPerm        = v2NumSections + 1
	v2NumSectionsShardedPerm = v2NumSectionsSharded + 1
	// v2MaxSections sizes the by-section-id offset/length tables.
	v2MaxSections = secPerm + 1
)

// hasPermSection reports whether a section count implies a trailing
// relabeling section.
func hasPermSection(nsec int) bool {
	return nsec == v2NumSectionsPerm || nsec == v2NumSectionsShardedPerm
}

// validNsec reports whether nsec is one of the four section counts a v2
// image can carry.
func validNsec(nsec int) bool {
	return nsec == v2NumSections || nsec == v2NumSectionsSharded || hasPermSection(nsec)
}

// shardedNsec reports whether nsec implies the shard-slice sections.
func shardedNsec(nsec int) bool {
	return nsec == v2NumSectionsSharded || nsec == v2NumSectionsShardedPerm
}

// sectionID maps a table position to its section id: the identity, except
// that the last position of a perm-carrying image holds secPerm.
func sectionID(nsec, pos int) int {
	if hasPermSection(nsec) && pos == nsec-1 {
		return secPerm
	}
	return pos
}

const (
	v2PreambleSize = 32
	v2TableEntry   = 24
	v2HeaderEnd    = v2PreambleSize + v2NumSections*v2TableEntry
	// v2MetaSize is the current meta-section length: the original 104-byte
	// block plus the u64 edit-journal watermark at [104,112). Images
	// written before the watermark existed carry v2MetaSizeLegacy bytes and
	// load with watermark 0 — the section table already delimits meta, so
	// growing it is a compatible extension, not a new format.
	v2MetaSize       = 112
	v2MetaSizeLegacy = 104
	v2PartMetaSize   = 24
	// maxV2FileSize bounds the image length a loader will believe; anything
	// larger is corruption (and would be rejected by the CRC anyway, but the
	// bound keeps speculative work proportional to plausible input).
	maxV2FileSize = 1 << 40
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// v2HeaderEndOf returns the first payload offset of an image with nsec
// sections (v2HeaderEnd for full images, larger for shard slices).
func v2HeaderEndOf(nsec int) int { return v2PreambleSize + nsec*v2TableEntry }

// hostLittleEndian reports whether float64/int32 slabs can be aliased
// directly; on a big-endian host the loaders fall back to copying decode.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// alignUp8 rounds an offset up to the next 8-byte boundary.
func alignUp8(x int) int { return (x + 7) &^ 7 }

// alignedBytes allocates a byte slice whose backing array is 8-byte
// aligned, so float64 slabs at 8-aligned offsets can be aliased in place.
func alignedBytes(n int) []byte {
	if n == 0 {
		return nil
	}
	words := make([]uint64, (n+7)/8)
	return unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), n)
}

// Mapping owns one mmap'd index image. Every Index sharing the mapping
// (the loaded index and all its Clones) holds a reference; the final
// release — triggered by a GC cleanup when the last such Index becomes
// unreachable, e.g. when the serving snapshot store drops its last snapshot
// over the file — unmaps the image.
type Mapping struct {
	data []byte
	refs atomic.Int64
}

func (m *Mapping) retain() { m.refs.Add(1) }

func (m *Mapping) release() {
	if m.refs.Add(-1) == 0 {
		m.unmap()
	}
}

// setBacking records the mapping an index's rows alias and arranges for the
// reference to be dropped when the index is garbage collected.
func (idx *Index) setBacking(m *Mapping) {
	if m == nil {
		return
	}
	idx.backing = m
	m.retain()
	runtime.AddCleanup(idx, func(mm *Mapping) { mm.release() }, m)
}

// MmapBacked reports whether this index serves its rows zero-copy from an
// mmap'd file. Mmap-backed rows are read-only: every mutation path
// (Commit, CommitHub, hub rebuilds) replaces row pointers wholesale, which
// is the same copy-on-write discipline Clone relies on.
func (idx *Index) MmapBacked() bool { return idx.backing != nil }

// LoadOptions configures LoadFile.
type LoadOptions struct {
	// Mmap serves v2 images zero-copy from the mapped file. Off (or on an
	// unsupported platform / big-endian host) the file is read into the
	// heap instead — the portable escape hatch behind the CLIs' -mmap=off.
	Mmap bool
}

// ParseMmapMode decodes the CLIs' -mmap escape-hatch flag ("on" or "off")
// into the LoadOptions.Mmap value, so every front end accepts the same
// values with the same error.
func ParseMmapMode(mode string) (bool, error) {
	switch mode {
	case "on":
		return true, nil
	case "off":
		return false, nil
	default:
		return false, fmt.Errorf("-mmap must be on or off, got %q", mode)
	}
}

// LoadFile opens an index file by path. Format v2 files load via mmap when
// opts.Mmap is set (falling back to a heap read where mmap is unavailable);
// v1 files and heap loads go through Load. The mmap fast path verifies the
// header, table and whole-file CRC32C plus all structural invariants
// (section bounds, offset-table monotonicity, sparse index ranges) but
// skips the per-value scans (finiteness, ordering, ink conservation) that
// the heap loader performs — the checksum already guarantees the bytes are
// exactly what Save wrote. Load files from untrusted sources with Mmap off.
func LoadFile(path string, opts LoadOptions) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if !opts.Mmap || !mmapSupported || !hostLittleEndian {
		return Load(f)
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || string(magic[:]) != indexMagicV2 {
		// v1 (or too short to tell): the stream loader gives the real error.
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return Load(f)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() > maxV2FileSize || st.Size() > math.MaxInt {
		return nil, fmt.Errorf("lbindex: index file %s is implausibly large (%d bytes)", path, st.Size())
	}
	m, err := mmapFile(f, int(st.Size()))
	if err != nil {
		// mmap refused (exotic filesystem, empty file): portable fallback.
		if _, serr := f.Seek(0, io.SeekStart); serr != nil {
			return nil, serr
		}
		return Load(f)
	}
	idx, err := parseV2(m.data, false)
	if err != nil {
		m.unmap()
		return nil, err
	}
	idx.setBacking(m)
	return idx, nil
}

// Save writes the index in format v2, streaming: memory stays O(buffer)
// regardless of index size. The checksums in the preamble cover the whole
// payload, so the body is generated three times — once per section for the
// section CRCs, once for the file CRC, once into w — which trades a little
// encode CPU for never materializing a file-sized image. All lock stripes
// are held for the duration, so the snapshot is consistent even against
// concurrent refinement commits. (It is NOT atomic against an in-place
// evolve.Refresh — see the Index doc.)
func (idx *Index) Save(w io.Writer) error {
	idx.lockAll()
	defer idx.unlockAll()
	e, err := idx.newV2EmitterLocked()
	if err != nil {
		return err
	}
	secCRC := make([]uint32, e.nsec)
	for s := 0; s < e.nsec; s++ {
		h := crc32.New(castagnoli)
		bw := &binWriter{w: bufio.NewWriterSize(h, 1<<16)}
		e.emitSection(sectionID(e.nsec, s), bw)
		if bw.err != nil {
			return bw.err
		}
		if err := bw.w.Flush(); err != nil {
			return err
		}
		secCRC[s] = h.Sum32()
	}
	header := e.buildHeader(secCRC)
	fh := crc32.New(castagnoli)
	fh.Write(header[:24])
	fh.Write(header[28:])
	if err := e.emitBody(fh); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(header[24:28], fh.Sum32())
	if _, err := w.Write(header); err != nil {
		return err
	}
	return e.emitBody(w)
}

// SaveFile writes the index to path atomically: the image goes to a
// sibling temp file first and lands by rename. The rename discipline is
// load-bearing for mmap serving — rewriting an index file in place would
// mutate live read-only mappings of the old image.
func (idx *Index) SaveFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := idx.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// v2emitter holds the precomputed layout of one consistent index snapshot
// and can stream any section (or the whole post-header body) repeatedly.
// Caller holds all stripes for the emitter's lifetime.
type v2emitter struct {
	idx     *Index
	hubIDs  []graph.NodeID
	cols    []vecmath.Sparse
	topK    [][]float64
	dropped []float64
	// nsec is v2NumSections for full images, v2NumSectionsSharded for
	// shard slices; rows is the owned-row list (nil = all of [0, n)) and
	// numStates the count of serialized states (rows that are not hubs).
	nsec      int
	rows      []graph.NodeID
	numStates int
	// watermark is snapshotted once at emitter construction: the body is
	// streamed three times (section CRCs, file CRC, output), and a value
	// read per pass could change between passes and tear the checksums.
	watermark uint64
	lens      [v2MaxSections]int
	offs      [v2MaxSections]int
	fileSize  int
}

// rowCount returns how many p̂ rows the image stores.
func (e *v2emitter) rowCount() int {
	if e.rows != nil {
		return len(e.rows)
	}
	return e.idx.n
}

// eachRow visits the stored rows in serialization order.
func (e *v2emitter) eachRow(f func(u graph.NodeID)) {
	if e.rows != nil {
		for _, u := range e.rows {
			f(u)
		}
		return
	}
	for u := 0; u < e.idx.n; u++ {
		f(graph.NodeID(u))
	}
}

func (idx *Index) newV2EmitterLocked() (*v2emitter, error) {
	hm := idx.HubMatrix()
	n, hubIDs, cols, topK, dropped, omega := hm.Parts()
	if n != idx.n {
		return nil, fmt.Errorf("lbindex: hub matrix sized for %d nodes, index has %d", n, idx.n)
	}
	if omega != idx.opts.Omega {
		// The options block is what Load rebuilds the matrix from.
		return nil, fmt.Errorf("lbindex: hub matrix omega %g != options omega %g", omega, idx.opts.Omega)
	}
	o := idx.opts
	hubCount := len(hubIDs)

	e := &v2emitter{idx: idx, hubIDs: hubIDs, cols: cols, topK: topK, dropped: dropped, nsec: v2NumSections, watermark: idx.watermark.Load()}
	var partBounds []int32
	if idx.part != nil {
		e.nsec = v2NumSectionsSharded
		e.rows = idx.owned
		_, _, _, _, partBounds = idx.part.Parts()
	}
	if idx.perm != nil {
		e.nsec++ // the trailing secPerm section
	}

	var colNNZ, rNNZ, wNNZ, sNNZ int
	for _, c := range cols {
		colNNZ += c.NNZ()
	}
	var rowErr error
	e.eachRow(func(u graph.NodeID) {
		if rowErr != nil {
			return
		}
		//rtklint:ignore lockguard the Locked suffix is the contract — SaveV2 holds every stripe for the emitter's lifetime
		st, phatU := idx.states[u], idx.phat[u]
		if st == nil {
			if !hm.IsHub(u) {
				rowErr = fmt.Errorf("lbindex: node %d has no committed state (commit new origins before saving)", u)
			} else if phatU == nil {
				rowErr = fmt.Errorf("lbindex: hub node %d has no p̂ column", u)
			}
			return
		}
		if len(phatU) != o.K {
			rowErr = fmt.Errorf("lbindex: node %d p̂ column has %d entries, want K=%d", u, len(phatU), o.K)
			return
		}
		e.numStates++
		rNNZ += st.R.NNZ()
		wNNZ += st.W.NNZ()
		sNNZ += st.S.NNZ()
	})
	if rowErr != nil {
		return nil, rowErr
	}
	numStates := e.numStates

	e.lens = [v2MaxSections]int{
		secMeta:       v2MetaSize,
		secHubIDs:     4 * hubCount,
		secHubTopK:    8 * hubCount * o.K,
		secHubDropped: 8 * hubCount,
		secHubColOff:  8 * (hubCount + 1),
		secHubColIdx:  4 * colNNZ,
		secHubColVal:  8 * colNNZ,
		secStateT:     4 * numStates,
		secStateRNorm: 8 * numStates,
		secStateROff:  8 * (numStates + 1),
		secStateRIdx:  4 * rNNZ,
		secStateRVal:  8 * rNNZ,
		secStateWOff:  8 * (numStates + 1),
		secStateWIdx:  4 * wNNZ,
		secStateWVal:  8 * wNNZ,
		secStateSOff:  8 * (numStates + 1),
		secStateSIdx:  4 * sNNZ,
		secStateSVal:  8 * sNNZ,
		secPhat:       8 * e.rowCount() * o.K,
	}
	if idx.part != nil {
		e.lens[secPartMeta] = v2PartMetaSize
		e.lens[secPartBounds] = 4 * len(partBounds)
		e.lens[secPartRows] = 4 * len(e.rows)
	}
	if idx.perm != nil {
		e.lens[secPerm] = 4 * len(idx.perm)
	}
	pos := v2HeaderEndOf(e.nsec)
	for s := 0; s < e.nsec; s++ {
		id := sectionID(e.nsec, s)
		pos = alignUp8(pos)
		e.offs[id] = pos
		pos += e.lens[id]
	}
	e.fileSize = alignUp8(pos)
	return e, nil
}

// eachState visits the committed states in ascending node order (owned
// order for shard slices) — exactly the order every state-slab section
// serializes them in.
func (e *v2emitter) eachState(f func(st *bca.State)) {
	e.eachRow(func(u graph.NodeID) {
		//rtklint:ignore lockguard emitters only exist inside SaveV2, which holds every stripe
		if st := e.idx.states[u]; st != nil {
			f(st)
		}
	})
}

// emitSection streams the payload of section s (exactly lens[s] bytes).
func (e *v2emitter) emitSection(s int, bw *binWriter) {
	o := e.idx.opts
	switch s {
	case secMeta:
		bw.u64(uint64(e.idx.n))
		bw.u32(uint32(o.K))
		bw.u32(uint32(o.HubBudget))
		bw.u32(uint32(o.HubScheme))
		bw.u32(uint32(o.BCA.MaxIters))
		bw.u32(uint32(o.RWR.MaxIters))
		bw.u32(uint32(len(e.hubIDs)))
		bw.u32(uint32(e.numStates))
		bw.u32(0) // pad to the 8-aligned i64/f64 block
		bw.i64(o.GreedySeed)
		bw.f64(o.Omega)
		bw.f64(o.BCA.Alpha)
		bw.f64(o.BCA.Eta)
		bw.f64(o.BCA.Delta)
		bw.f64(o.RWR.Alpha)
		bw.f64(o.RWR.Eps)
		bw.i64(e.idx.refinements.Load())
		bw.u64(e.watermark)
	case secHubIDs:
		for _, h := range e.hubIDs {
			bw.u32(uint32(h))
		}
	case secHubTopK:
		for i := range e.hubIDs {
			bw.floats(e.topK[i])
		}
	case secHubDropped:
		bw.floats(e.dropped)
	case secHubColOff:
		nnz := 0
		bw.u64(0)
		for _, c := range e.cols {
			nnz += c.NNZ()
			bw.u64(uint64(nnz))
		}
	case secHubColIdx:
		for _, c := range e.cols {
			for _, v := range c.Idx {
				bw.u32(uint32(v))
			}
		}
	case secHubColVal:
		for _, c := range e.cols {
			bw.floats(c.Val)
		}
	case secStateT:
		e.eachState(func(st *bca.State) { bw.u32(uint32(st.T)) })
	case secStateRNorm:
		e.eachState(func(st *bca.State) { bw.f64(st.RNorm) })
	case secStateROff, secStateWOff, secStateSOff:
		nnz := 0
		bw.u64(0)
		e.eachState(func(st *bca.State) {
			nnz += e.stateVec(st, s).NNZ()
			bw.u64(uint64(nnz))
		})
	case secStateRIdx, secStateWIdx, secStateSIdx:
		e.eachState(func(st *bca.State) {
			for _, v := range e.stateVec(st, s).Idx {
				bw.u32(uint32(v))
			}
		})
	case secStateRVal, secStateWVal, secStateSVal:
		e.eachState(func(st *bca.State) { bw.floats(e.stateVec(st, s).Val) })
	case secPhat:
		//rtklint:ignore lockguard emitters only exist inside SaveV2, which holds every stripe
		e.eachRow(func(u graph.NodeID) { bw.floats(e.idx.phat[u]) })
	case secPartMeta:
		strategy, _, p, seed, _ := e.idx.part.Parts()
		bw.u32(uint32(strategy))
		bw.u32(uint32(p))
		bw.u32(uint32(e.idx.shardID))
		bw.u32(0) // pad to the 8-aligned seed
		bw.u64(seed)
	case secPartBounds:
		_, _, _, _, bounds := e.idx.part.Parts()
		for _, b := range bounds {
			bw.u32(uint32(b))
		}
	case secPartRows:
		for _, u := range e.rows {
			bw.u32(uint32(u))
		}
	case secPerm:
		for _, in := range e.idx.perm {
			bw.u32(uint32(in))
		}
	}
}

// stateVec maps a R/W/S section id to the state's matching sparse vector.
func (e *v2emitter) stateVec(st *bca.State, s int) vecmath.Sparse {
	switch s {
	case secStateROff, secStateRIdx, secStateRVal:
		return st.R
	case secStateWOff, secStateWIdx, secStateWVal:
		return st.W
	default:
		return st.S
	}
}

// emitBody streams everything after the header — inter-section alignment
// padding and every section in order — ending exactly at fileSize.
func (e *v2emitter) emitBody(w io.Writer) error {
	bw := &binWriter{w: bufio.NewWriterSize(w, 1<<20)}
	pos := v2HeaderEndOf(e.nsec)
	for s := 0; s < e.nsec; s++ {
		id := sectionID(e.nsec, s)
		for ; pos < e.offs[id]; pos++ {
			bw.u8(0)
		}
		e.emitSection(id, bw)
		pos += e.lens[id]
	}
	for ; pos < e.fileSize; pos++ {
		bw.u8(0)
	}
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// buildHeader assembles the preamble and section table; the fileCRC field
// (bytes 24:28) is filled by Save once the body checksum is known.
func (e *v2emitter) buildHeader(secCRC []uint32) []byte {
	header := make([]byte, v2HeaderEndOf(e.nsec))
	copy(header, indexMagicV2)
	binary.LittleEndian.PutUint64(header[8:], uint64(e.fileSize))
	binary.LittleEndian.PutUint32(header[16:], uint32(e.nsec))
	for s := 0; s < e.nsec; s++ {
		id := sectionID(e.nsec, s)
		entry := header[v2PreambleSize+s*v2TableEntry:]
		binary.LittleEndian.PutUint32(entry[0:], uint32(id))
		binary.LittleEndian.PutUint32(entry[4:], secCRC[s])
		binary.LittleEndian.PutUint64(entry[8:], uint64(e.offs[id]))
		binary.LittleEndian.PutUint64(entry[16:], uint64(e.lens[id]))
	}
	binary.LittleEndian.PutUint32(header[20:], crc32.Checksum(header[v2PreambleSize:], castagnoli))
	return header
}

// loadV2Stream reads a v2 image from a reader (the heap path): the whole
// image is buffered (aligned, so slabs alias it in place on little-endian
// hosts) and parsed with full semantic validation.
func loadV2Stream(br *bufio.Reader) (*Index, error) {
	var pre [v2PreambleSize]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return nil, fmt.Errorf("lbindex: reading v2 preamble: %w", err)
	}
	fileSize := binary.LittleEndian.Uint64(pre[8:16])
	// The math.MaxInt bound matters on 32-bit platforms, where a u64 size
	// would otherwise wrap negative through int and panic in make.
	if fileSize < v2HeaderEnd || fileSize > maxV2FileSize || fileSize > math.MaxInt {
		return nil, fmt.Errorf("lbindex: implausible v2 image size %d", fileSize)
	}
	data, err := readAligned(br, pre[:], int(fileSize))
	if err != nil {
		return nil, err
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("lbindex: trailing data after %d-byte v2 image", fileSize)
	}
	return parseV2(data, true)
}

// readAligned reads the remainder of an n-byte image (whose first bytes,
// pre, were already consumed) into one 8-aligned buffer. The buffer grows
// geometrically as data actually arrives, so a corrupt size field cannot
// trigger a huge up-front make, while a genuine large image pays ~one
// extra copy total instead of the ReadAll-then-realign double copy.
func readAligned(r io.Reader, pre []byte, n int) ([]byte, error) {
	size := n
	if size > 1<<20 {
		size = 1 << 20
	}
	buf := alignedBytes(size)
	copy(buf, pre)
	read := len(pre)
	for read < n {
		if read == len(buf) {
			size = len(buf) * 2
			if size > n {
				size = n
			}
			next := alignedBytes(size)
			copy(next, buf)
			buf = next
		}
		m, err := r.Read(buf[read:])
		read += m
		if err == io.EOF && read < n {
			return nil, fmt.Errorf("lbindex: v2 image truncated: header claims %d bytes, got %d", n, read)
		}
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("lbindex: reading v2 image: %w", err)
		}
	}
	return buf[:n], nil
}

// v2parser decodes slabs out of one verified image, either aliasing them in
// place (mmap / aligned heap buffer on little-endian hosts) or copying.
type v2parser struct {
	data  []byte
	nsec  int
	offs  [v2MaxSections]int
	lens  [v2MaxSections]int
	alias bool
}

func (p *v2parser) bytes(s int) []byte { return p.data[p.offs[s] : p.offs[s]+p.lens[s]] }

func (p *v2parser) f64s(s int) []float64 {
	b := p.bytes(s)
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if p.alias {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func (p *v2parser) i32s(s int) []int32 {
	b := p.bytes(s)
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if p.alias {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// u64at reads entry i of a u64 offset-table section without materializing
// the table.
func (p *v2parser) u64at(s, i int) uint64 {
	return binary.LittleEndian.Uint64(p.bytes(s)[8*i:])
}

// checkOffsets validates a prefix-sum offset table: entry 0 is zero, the
// sequence is non-decreasing, and the final entry equals nnz.
func (p *v2parser) checkOffsets(s int, rows, nnz int, what string) error {
	if p.u64at(s, 0) != 0 {
		return fmt.Errorf("lbindex: %s offset table does not start at 0", what)
	}
	prev := uint64(0)
	for i := 1; i <= rows; i++ {
		v := p.u64at(s, i)
		if v < prev || v > uint64(nnz) {
			return fmt.Errorf("lbindex: %s offset table entry %d = %d outside [%d,%d]", what, i, v, prev, nnz)
		}
		prev = v
	}
	if prev != uint64(nnz) {
		return fmt.Errorf("lbindex: %s offset table ends at %d, slab holds %d entries", what, prev, nnz)
	}
	return nil
}

// checkSparse validates one decoded sparse row structurally: indices
// strictly ascending and in [0,n). This guards every scatter in the query
// path, so it runs in BOTH load modes; value-level checks (finiteness,
// non-negativity) are deep-mode only.
func checkSparse(s vecmath.Sparse, n int, deep bool, what string, row int) error {
	prev := int32(-1)
	for _, v := range s.Idx {
		if v <= prev || int(v) >= n {
			return fmt.Errorf("lbindex: %s of state %d: sparse index %d out of order or outside [0,%d)", what, row, v, n)
		}
		prev = v
	}
	if deep {
		for _, x := range s.Val {
			if !(x >= 0) || math.IsInf(x, 0) {
				return fmt.Errorf("lbindex: %s of state %d: value %g not a finite non-negative", what, row, x)
			}
		}
	}
	return nil
}

// parseV2 decodes one complete v2 image. deep selects full semantic
// validation (heap loads of possibly hand-crafted files); the mmap path
// runs structural validation only, trusting the verified checksums for
// byte integrity. Never panics on any input.
func parseV2(data []byte, deep bool) (*Index, error) {
	if len(data) < v2PreambleSize {
		return nil, fmt.Errorf("lbindex: v2 image shorter (%d B) than its preamble", len(data))
	}
	if string(data[:8]) != indexMagicV2 {
		return nil, fmt.Errorf("lbindex: bad magic %q", data[:8])
	}
	if got := binary.LittleEndian.Uint64(data[8:16]); got != uint64(len(data)) {
		return nil, fmt.Errorf("lbindex: v2 header claims %d bytes, image has %d", got, len(data))
	}
	nsec := int(binary.LittleEndian.Uint32(data[16:20]))
	if !validNsec(nsec) {
		return nil, fmt.Errorf("lbindex: v2 image has %d sections, want %d/%d (full) or %d/%d (shard slice), the larger with a relabeling",
			nsec, v2NumSections, v2NumSectionsPerm, v2NumSectionsSharded, v2NumSectionsShardedPerm)
	}
	headerEnd := v2HeaderEndOf(nsec)
	if len(data) < headerEnd {
		return nil, fmt.Errorf("lbindex: v2 image shorter (%d B) than its %d-section header", len(data), nsec)
	}
	if got := crc32.Checksum(data[v2PreambleSize:headerEnd], castagnoli); got != binary.LittleEndian.Uint32(data[20:24]) {
		return nil, fmt.Errorf("lbindex: section table checksum mismatch (corrupt header)")
	}
	fileCRC := crc32.Update(crc32.Checksum(data[:24], castagnoli), castagnoli, data[28:])
	if fileCRC != binary.LittleEndian.Uint32(data[24:28]) {
		return nil, fmt.Errorf("lbindex: image checksum mismatch: %s", localizeV2Corruption(data))
	}

	// Aliasing requires a little-endian host and an 8-aligned image base
	// (mmap is page-aligned, the stream loader allocates aligned; arbitrary
	// test slices may not be) — otherwise fall back to copying decode.
	p := &v2parser{data: data, nsec: nsec, alias: hostLittleEndian && uintptr(unsafe.Pointer(&data[0]))%8 == 0}
	for s := 0; s < nsec; s++ {
		e := data[v2PreambleSize+s*v2TableEntry:]
		want := sectionID(nsec, s)
		if id := binary.LittleEndian.Uint32(e[0:]); id != uint32(want) {
			return nil, fmt.Errorf("lbindex: section at position %d has id %d, want %d", s, id, want)
		}
		off, ln := binary.LittleEndian.Uint64(e[8:]), binary.LittleEndian.Uint64(e[16:])
		if off%8 != 0 || off < uint64(headerEnd) || ln > uint64(len(data)) || off > uint64(len(data))-ln {
			return nil, fmt.Errorf("lbindex: section %d spans [%d,%d) outside the %d-byte image", want, off, off+ln, len(data))
		}
		p.offs[want], p.lens[want] = int(off), int(ln)
	}

	// Meta. Legacy-length blocks predate the journal watermark and imply
	// watermark 0.
	if p.lens[secMeta] != v2MetaSize && p.lens[secMeta] != v2MetaSizeLegacy {
		return nil, fmt.Errorf("lbindex: meta section has %d bytes, want %d (or legacy %d)", p.lens[secMeta], v2MetaSize, v2MetaSizeLegacy)
	}
	mb := p.bytes(secMeta)
	n := int(int64(binary.LittleEndian.Uint64(mb[0:])))
	var o Options
	o.K = int(int32(binary.LittleEndian.Uint32(mb[8:])))
	o.HubBudget = int(int32(binary.LittleEndian.Uint32(mb[12:])))
	o.HubScheme = HubSelection(int32(binary.LittleEndian.Uint32(mb[16:])))
	o.BCA.MaxIters = int(int32(binary.LittleEndian.Uint32(mb[20:])))
	o.RWR.MaxIters = int(int32(binary.LittleEndian.Uint32(mb[24:])))
	hubCount := int(int32(binary.LittleEndian.Uint32(mb[28:])))
	numStates := int(int32(binary.LittleEndian.Uint32(mb[32:])))
	o.GreedySeed = int64(binary.LittleEndian.Uint64(mb[40:]))
	o.Omega = math.Float64frombits(binary.LittleEndian.Uint64(mb[48:]))
	o.BCA.Alpha = math.Float64frombits(binary.LittleEndian.Uint64(mb[56:]))
	o.BCA.Eta = math.Float64frombits(binary.LittleEndian.Uint64(mb[64:]))
	o.BCA.Delta = math.Float64frombits(binary.LittleEndian.Uint64(mb[72:]))
	o.RWR.Alpha = math.Float64frombits(binary.LittleEndian.Uint64(mb[80:]))
	o.RWR.Eps = math.Float64frombits(binary.LittleEndian.Uint64(mb[88:]))
	refinements := int64(binary.LittleEndian.Uint64(mb[96:]))
	var watermark uint64
	if p.lens[secMeta] >= v2MetaSize {
		watermark = binary.LittleEndian.Uint64(mb[104:])
	}
	if n <= 0 || n > 1<<31 || o.K <= 0 || o.K > maxPlausibleK {
		return nil, fmt.Errorf("lbindex: implausible header n=%d K=%d", n, o.K)
	}
	if hubCount < 0 || hubCount > n || numStates < 0 || numStates > n-hubCount {
		return nil, fmt.Errorf("lbindex: implausible hub/state counts %d/%d for n=%d", hubCount, numStates, n)
	}
	if !shardedNsec(nsec) && numStates != n-hubCount {
		return nil, fmt.Errorf("lbindex: full image stores %d states, graph has %d non-hub nodes", numStates, n-hubCount)
	}
	if refinements < 0 {
		return nil, fmt.Errorf("lbindex: negative refinement counter %d", refinements)
	}
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("lbindex: corrupt header options: %w", err)
	}

	// Shard slices: reconstruct the partition map and the owned-row list
	// before sizing the row-indexed slabs.
	var pm *partition.Map
	shardID := 0
	var rows []graph.NodeID
	rowCount := n
	if shardedNsec(nsec) {
		if p.lens[secPartMeta] != v2PartMetaSize {
			return nil, fmt.Errorf("lbindex: partition meta section has %d bytes, want %d", p.lens[secPartMeta], v2PartMetaSize)
		}
		pb := p.bytes(secPartMeta)
		strategy := partition.Strategy(int32(binary.LittleEndian.Uint32(pb[0:])))
		shards := int(int32(binary.LittleEndian.Uint32(pb[4:])))
		shardID = int(int32(binary.LittleEndian.Uint32(pb[8:])))
		seed := binary.LittleEndian.Uint64(pb[16:])
		var err error
		pm, err = partition.FromParts(strategy, n, shards, seed, p.i32s(secPartBounds))
		if err != nil {
			return nil, err
		}
		if shardID < 0 || shardID >= shards {
			return nil, fmt.Errorf("lbindex: shard id %d outside [0,%d)", shardID, shards)
		}
		rows = p.i32s(secPartRows)
		rowCount = len(rows)
		if rowCount != pm.OwnedCount(shardID) {
			return nil, fmt.Errorf("lbindex: image stores %d rows, shard %d owns %d", rowCount, shardID, pm.OwnedCount(shardID))
		}
		prev := graph.NodeID(-1)
		for _, u := range rows {
			if u <= prev || int(u) >= n {
				return nil, fmt.Errorf("lbindex: owned-row list not strictly ascending within [0,%d) at %d", n, u)
			}
			if pm.Owner(u) != shardID {
				return nil, fmt.Errorf("lbindex: row %d not owned by shard %d", u, shardID)
			}
			prev = u
		}
	}

	// Expected section lengths, from the validated counts.
	colNNZ := p.lens[secHubColIdx] / 4
	rNNZ, wNNZ, sNNZ := p.lens[secStateRIdx]/4, p.lens[secStateWIdx]/4, p.lens[secStateSIdx]/4
	want := [v2MaxSections]int{
		secMeta:       p.lens[secMeta], // already validated: current or legacy size
		secHubIDs:     4 * hubCount,
		secHubTopK:    8 * hubCount * o.K,
		secHubDropped: 8 * hubCount,
		secHubColOff:  8 * (hubCount + 1),
		secHubColIdx:  4 * colNNZ,
		secHubColVal:  8 * colNNZ,
		secStateT:     4 * numStates,
		secStateRNorm: 8 * numStates,
		secStateROff:  8 * (numStates + 1),
		secStateRIdx:  4 * rNNZ,
		secStateRVal:  8 * rNNZ,
		secStateWOff:  8 * (numStates + 1),
		secStateWIdx:  4 * wNNZ,
		secStateWVal:  8 * wNNZ,
		secStateSOff:  8 * (numStates + 1),
		secStateSIdx:  4 * sNNZ,
		secStateSVal:  8 * sNNZ,
		secPhat:       8 * rowCount * o.K,
	}
	if shardedNsec(nsec) {
		want[secPartMeta] = p.lens[secPartMeta]
		want[secPartBounds] = p.lens[secPartBounds]
		want[secPartRows] = p.lens[secPartRows]
	}
	if hasPermSection(nsec) {
		// The relabeling's length is self-describing (bounds-checked when it
		// is decoded below); only 4-byte granularity is structural.
		if p.lens[secPerm]%4 != 0 {
			return nil, fmt.Errorf("lbindex: relabeling section holds %d bytes, not a multiple of 4", p.lens[secPerm])
		}
		want[secPerm] = p.lens[secPerm]
	}
	for s := 0; s < nsec; s++ {
		id := sectionID(nsec, s)
		if p.lens[id] != want[id] {
			return nil, fmt.Errorf("lbindex: section %d holds %d bytes, want %d", id, p.lens[id], want[id])
		}
	}

	// Hub matrix: FromParts validates hub ids and column structure.
	hubIDs := p.i32s(secHubIDs)
	colIdx, colVal := p.i32s(secHubColIdx), p.f64s(secHubColVal)
	if err := p.checkOffsets(secHubColOff, hubCount, colNNZ, "hub column"); err != nil {
		return nil, err
	}
	cols := make([]vecmath.Sparse, hubCount)
	topKSlab := p.f64s(secHubTopK)
	topK := make([][]float64, hubCount)
	for i := 0; i < hubCount; i++ {
		a, b := p.u64at(secHubColOff, i), p.u64at(secHubColOff, i+1)
		cols[i] = vecmath.Sparse{Idx: colIdx[a:b:b], Val: colVal[a:b:b]}
		topK[i] = topKSlab[i*o.K : (i+1)*o.K : (i+1)*o.K]
	}
	dropped := p.f64s(secHubDropped)
	if deep {
		for i, d := range dropped {
			if !(d >= 0) || math.IsInf(d, 0) {
				return nil, fmt.Errorf("lbindex: hub %d dropped mass %g not a finite non-negative", i, d)
			}
		}
		for i := range topK {
			if err := checkProximities(topK[i], fmt.Sprintf("hub %d top-K", i)); err != nil {
				return nil, err
			}
		}
	}
	hm, err := hub.FromParts(n, hubIDs, cols, topK, dropped, o.Omega)
	if err != nil {
		return nil, err
	}

	// Per-node states and p̂ columns.
	for _, s := range [][2]int{{secStateROff, rNNZ}, {secStateWOff, wNNZ}, {secStateSOff, sNNZ}} {
		if err := p.checkOffsets(s[0], numStates, s[1], "state"); err != nil {
			return nil, err
		}
	}
	tSlab := p.i32s(secStateT)
	rnorm := p.f64s(secStateRNorm)
	rIdx, rVal := p.i32s(secStateRIdx), p.f64s(secStateRVal)
	wIdx, wVal := p.i32s(secStateWIdx), p.f64s(secStateWVal)
	sIdx, sVal := p.i32s(secStateSIdx), p.f64s(secStateSVal)
	phatSlab := p.f64s(secPhat)
	stateArr := make([]bca.State, numStates)
	states := make([]*bca.State, n)
	phat := make([][]float64, n)
	i := 0
	for r := 0; r < rowCount; r++ {
		u := r
		if rows != nil {
			u = int(rows[r])
		}
		phat[u] = phatSlab[r*o.K : (r+1)*o.K : (r+1)*o.K]
		if deep {
			if err := checkProximities(phat[u], fmt.Sprintf("p̂ of node %d", u)); err != nil {
				return nil, err
			}
		}
		if hm.IsHub(graph.NodeID(u)) {
			continue
		}
		if i >= numStates {
			return nil, fmt.Errorf("lbindex: image stores %d states but node %d is the %d-th non-hub row", numStates, u, i+1)
		}
		st := &stateArr[i]
		st.Origin = graph.NodeID(u)
		st.T = int(tSlab[i])
		st.RNorm = rnorm[i]
		if st.T < 0 || !(st.RNorm >= 0) || math.IsInf(st.RNorm, 0) {
			return nil, fmt.Errorf("lbindex: state of node %d has T=%d RNorm=%g", u, st.T, st.RNorm)
		}
		a, b := p.u64at(secStateROff, i), p.u64at(secStateROff, i+1)
		st.R = vecmath.Sparse{Idx: rIdx[a:b:b], Val: rVal[a:b:b]}
		a, b = p.u64at(secStateWOff, i), p.u64at(secStateWOff, i+1)
		st.W = vecmath.Sparse{Idx: wIdx[a:b:b], Val: wVal[a:b:b]}
		a, b = p.u64at(secStateSOff, i), p.u64at(secStateSOff, i+1)
		st.S = vecmath.Sparse{Idx: sIdx[a:b:b], Val: sVal[a:b:b]}
		if err := checkSparse(st.R, n, deep, "R", u); err != nil {
			return nil, err
		}
		if err := checkSparse(st.W, n, deep, "W", u); err != nil {
			return nil, err
		}
		if err := checkSparse(st.S, n, deep, "S", u); err != nil {
			return nil, err
		}
		// S holds ink parked at hubs; a non-hub index would be read out of
		// the hub matrix's dropped-mass and column arrays at query time.
		for _, h := range st.S.Idx {
			if !hm.IsHub(graph.NodeID(h)) {
				return nil, fmt.Errorf("lbindex: node %d parks ink at non-hub %d", u, h)
			}
		}
		states[u] = st
		i++
	}
	if i != numStates {
		return nil, fmt.Errorf("lbindex: image stores %d states, rows list has %d non-hub nodes", numStates, i)
	}

	idx := &Index{opts: o, n: n, hubs: hm, phat: phat, states: states, part: pm, shardID: shardID, owned: rows}
	idx.refinements.Store(refinements)
	idx.watermark.Store(watermark)
	if hasPermSection(nsec) {
		// Bijection-validated in BOTH load modes: a permutation that is not a
		// bijection would silently misroute every translated query.
		if err := idx.loadRelabeling(p.i32s(secPerm)); err != nil {
			return nil, err
		}
	}
	if deep {
		if err := idx.CheckInvariants(); err != nil {
			return nil, err
		}
	}
	return idx, nil
}

// checkProximities validates one descending proximity column: every value a
// finite probability mass in [0, 1+tol], ordered descending.
func checkProximities(xs []float64, what string) error {
	for i, x := range xs {
		if !(x >= 0) || x > 1+1e-6 {
			return fmt.Errorf("lbindex: %s: proximity %g at position %d outside [0,1]", what, x, i)
		}
		if i > 0 && x > xs[i-1] {
			return fmt.Errorf("lbindex: %s: not descending at position %d", what, i)
		}
	}
	return nil
}

// localizeV2Corruption names the first section whose own CRC fails, for the
// whole-file checksum error message.
func localizeV2Corruption(data []byte) string {
	nsec := int(binary.LittleEndian.Uint32(data[16:20]))
	if !validNsec(nsec) {
		return fmt.Sprintf("implausible section count %d", nsec)
	}
	if len(data) < v2HeaderEndOf(nsec) {
		return "header truncated"
	}
	for s := 0; s < nsec; s++ {
		e := data[v2PreambleSize+s*v2TableEntry:]
		crc := binary.LittleEndian.Uint32(e[4:])
		off, ln := binary.LittleEndian.Uint64(e[8:]), binary.LittleEndian.Uint64(e[16:])
		if off > uint64(len(data)) || ln > uint64(len(data))-off {
			return fmt.Sprintf("section %d table entry out of bounds", sectionID(nsec, s))
		}
		if crc32.Checksum(data[off:off+ln], castagnoli) != crc {
			return fmt.Sprintf("section %d payload corrupt", sectionID(nsec, s))
		}
	}
	return "preamble, table or padding corrupt"
}
