//go:build linux

package lbindex

import "syscall"

// MAP_POPULATE prefaults the image during the mmap call: the loader reads
// every page once anyway (checksum verification + structural validation),
// and kernel-side population is far cheaper than taking hundreds of
// thousands of minor faults one at a time on that first pass.
const mmapFlags = syscall.MAP_SHARED | syscall.MAP_POPULATE
