package lbindex

import (
	"fmt"

	"repro/internal/graph"
)

// SetRelabeling records the cache-aware node relabeling the index's graph
// was built under: perm[external] = internal (see graph.Permutation). The
// permutation must be a bijection on exactly the current node count; a nil
// or identity permutation clears the relabeling. Set once at build (or load)
// time, before the index serves queries — the translation boundary (package
// core) reads it on every query, so it must not change underneath.
func (idx *Index) SetRelabeling(p graph.Permutation) error {
	if len(p) == 0 || p.IsIdentity() {
		idx.perm, idx.permInv = nil, nil
		return nil
	}
	if err := p.Validate(idx.n); err != nil {
		return err
	}
	idx.perm = append(graph.Permutation(nil), p...)
	idx.permInv = idx.perm.Inverse()
	return nil
}

// Relabeling returns the stored relabeling, or nil when the index uses the
// external identifier space directly. The slice is internal storage and must
// not be modified; it may cover fewer nodes than N() after growth (grown
// nodes keep identity labels).
func (idx *Index) Relabeling() graph.Permutation { return idx.perm }

// ToInternal translates an external node identifier to the internal storage
// identifier. Identifiers beyond the permutation — nodes added after build,
// which keep identity labels, and every id under an identity relabeling —
// map to themselves, as do out-of-range ids (the caller's validation reports
// those against the external space).
func (idx *Index) ToInternal(u graph.NodeID) graph.NodeID {
	if u >= 0 && int(u) < len(idx.perm) {
		return idx.perm[u]
	}
	return u
}

// ToExternal translates an internal storage identifier back to the external
// identifier callers speak.
func (idx *Index) ToExternal(u graph.NodeID) graph.NodeID {
	if u >= 0 && int(u) < len(idx.permInv) {
		return idx.permInv[u]
	}
	return u
}

// loadRelabeling installs a permutation decoded from a v2 image: a bijection
// on its own length, which may be shorter than n when the image was saved
// after growth (grown ids keep identity labels).
func (idx *Index) loadRelabeling(raw []int32) error {
	if len(raw) == 0 || len(raw) > idx.n {
		return fmt.Errorf("lbindex: relabeling covers %d nodes, index has %d", len(raw), idx.n)
	}
	perm := make(graph.Permutation, len(raw))
	for i, v := range raw {
		perm[i] = graph.NodeID(v)
	}
	if err := perm.Validate(len(perm)); err != nil {
		return err
	}
	idx.perm = perm
	idx.permInv = perm.Inverse()
	return nil
}
