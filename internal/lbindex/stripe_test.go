package lbindex

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/bca"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestStripeOfCoversAllStripes pins the stripe map: contiguous ranges, in
// bounds, non-decreasing, and using every stripe when n ≥ lockStripes.
func TestStripeOfCoversAllStripes(t *testing.T) {
	for _, n := range []int{1, 3, lockStripes - 1, lockStripes, 1000} {
		idx := &Index{n: n}
		prev := 0
		seen := map[int]bool{}
		for u := 0; u < n; u++ {
			s := idx.stripeOf(graph.NodeID(u))
			if s < 0 || s >= lockStripes {
				t.Fatalf("n=%d u=%d: stripe %d out of range", n, u, s)
			}
			if s < prev {
				t.Fatalf("n=%d u=%d: stripe %d below previous %d (not contiguous ranges)", n, u, s, prev)
			}
			prev = s
			seen[s] = true
		}
		if n >= lockStripes && len(seen) != lockStripes {
			t.Errorf("n=%d: only %d of %d stripes used", n, len(seen), lockStripes)
		}
	}
}

// TestConcurrentCommitsAndGlobalOps hammers the striped index from three
// sides at once — per-node commits, per-node reads, and whole-index
// operations (Save, SizeBytes, CheckInvariants) — to prove the stripes
// compose without deadlock or torn state. Run with -race.
func TestConcurrentCommitsAndGlobalOps(t *testing.T) {
	g, err := gen.WebGraph(400, 3)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.K = 10
	opts.HubBudget = 4
	opts.Workers = 2
	idx, _, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	var nonHub []graph.NodeID
	for u := 0; u < g.N(); u++ {
		if !idx.IsHub(graph.NodeID(u)) {
			nonHub = append(nonHub, graph.NodeID(u))
		}
	}

	var wg sync.WaitGroup
	// Committers: refine states one BCA step and commit them back, spread
	// over the whole node range (and thus over all stripes).
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := bca.NewWorkspace(g.N())
			hm := idx.HubMatrix()
			cfg := idx.Options().BCA
			for i := w; i < len(nonHub); i += 3 {
				u := nonHub[i]
				st := idx.StateSnapshot(u)
				if st == nil {
					continue
				}
				bca.Step(g, st, hm, cfg, ws)
				idx.Commit(u, st, bca.TopK(st, hm, ws, idx.K()))
			}
		}(w)
	}
	// Readers: per-node accessors across every stripe.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				for u := 0; u < g.N(); u++ {
					id := graph.NodeID(u)
					_ = idx.KthLowerBound(id, 5)
					_ = idx.ResidueNorm(id)
					_ = idx.RoundingSlack(id)
				}
			}
		}()
	}
	// Whole-index operations interleaved with the commits.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for round := 0; round < 3; round++ {
			if err := idx.CheckInvariants(); err != nil {
				t.Error(err)
				return
			}
			_ = idx.SizeBytes()
			var buf bytes.Buffer
			if err := idx.Save(&buf); err != nil {
				t.Error(err)
				return
			}
			if _, err := Load(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if idx.Refinements() == 0 {
		t.Error("no refinements recorded despite commits")
	}
}
