package lbindex

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

func toyGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(6, [][2]graph.NodeID{
		{0, 1}, {0, 3}, {1, 0}, {1, 2}, {2, 1}, {2, 2},
		{3, 0}, {3, 1}, {3, 4}, {4, 0}, {4, 1}, {4, 4}, {5, 1}, {5, 5},
	}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(seed int64, n int) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		panic(err)
	}
	return g
}

func testOptions(k int) Options {
	o := DefaultOptions()
	o.K = k
	o.HubBudget = 1
	o.Workers = 2
	return o
}

func TestBuildToyIndex(t *testing.T) {
	g := toyGraph(t)
	opts := testOptions(3)
	// Match the Figure 2 setting: δ=0.8 terminates BCA very early.
	opts.BCA.Delta = 0.8
	idx, stats, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if idx.N() != 6 || idx.K() != 3 {
		t.Fatalf("shape wrong: n=%d K=%d", idx.N(), idx.K())
	}
	if stats.HubCount != 2 {
		t.Errorf("hub count = %d, want 2 (B=1 union)", stats.HubCount)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Hubs carry exact values and zero residue.
	for u := graph.NodeID(0); int(u) < 6; u++ {
		if idx.IsHub(u) {
			if idx.ResidueNorm(u) != 0 {
				t.Errorf("hub %d has residue %g", u, idx.ResidueNorm(u))
			}
			if idx.StateSnapshot(u) != nil {
				t.Errorf("hub %d has a BCA state", u)
			}
		} else if idx.StateSnapshot(u) == nil {
			t.Errorf("non-hub %d missing state", u)
		}
		if !vecmath.IsSortedDescending(idx.PHatRow(u)) {
			t.Errorf("p̂ of %d not descending", u)
		}
	}
	if stats.Bytes <= 0 || stats.PhatBytes != 6*3*8 {
		t.Errorf("size accounting wrong: %+v", stats)
	}
	if stats.TotalIters == 0 {
		t.Error("no BCA iterations recorded")
	}
}

func TestLowerBoundsAreSound(t *testing.T) {
	// Proposition 2 at the index level: for every node u and k ≤ K,
	// p̂_u(k) ≤ pkmax_u computed exactly by the power method.
	f := func(seed int64) bool {
		size := int(seed % 7)
		if size < 0 {
			size = -size
		}
		g := randomGraph(seed, 40+size*10)
		opts := testOptions(5)
		opts.HubBudget = 2
		idx, _, err := Build(g, opts)
		if err != nil {
			return false
		}
		p := rwr.DefaultParams()
		for u := graph.NodeID(0); int(u) < g.N(); u++ {
			exact, err := rwr.ProximityVector(g, u, p)
			if err != nil {
				return false
			}
			for k := 1; k <= 5; k++ {
				if idx.KthLowerBound(u, k) > vecmath.KthLargest(exact.Vector, k)+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestHubEntriesAreExactTopK(t *testing.T) {
	g := toyGraph(t)
	idx, _, err := Build(g, testOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	p := rwr.DefaultParams()
	for _, h := range idx.HubMatrix().Hubs() {
		exact, err := rwr.ProximityVector(g, h, p)
		if err != nil {
			t.Fatal(err)
		}
		want := vecmath.TopKValues(exact.Vector, 3)
		got := idx.PHatRow(h)
		for i := range want {
			if diff := want[i] - got[i]; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("hub %d p̂[%d] = %g, want %g", h, i, got[i], want[i])
			}
		}
	}
}

func TestCommitAndRefinements(t *testing.T) {
	g := toyGraph(t)
	idx, _, err := Build(g, testOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	var u graph.NodeID = -1
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if !idx.IsHub(v) {
			u = v
			break
		}
	}
	if u < 0 {
		t.Skip("all nodes are hubs")
	}
	st := idx.StateSnapshot(u)
	ws := bca.NewWorkspace(g.N())
	bca.Step(g, st, idx.HubMatrix(), idx.Options().BCA, ws)
	phat := bca.TopK(st, idx.HubMatrix(), ws, idx.K())
	before := idx.KthLowerBound(u, 3)
	idx.Commit(u, st, phat)
	if idx.Refinements() != 1 {
		t.Errorf("Refinements = %d, want 1", idx.Refinements())
	}
	if idx.KthLowerBound(u, 3) < before {
		t.Error("commit loosened the bound")
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCommitWrongLengthPanics(t *testing.T) {
	g := toyGraph(t)
	idx, _, err := Build(g, testOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	idx.Commit(0, nil, []float64{1})
}

func TestSaveLoadRoundTrip(t *testing.T) {
	g := randomGraph(9, 60)
	opts := testOptions(4)
	opts.HubBudget = 3
	idx, _, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != idx.N() || loaded.K() != idx.K() {
		t.Fatalf("shape changed: %d/%d vs %d/%d", loaded.N(), loaded.K(), idx.N(), idx.K())
	}
	wantOpts := idx.Options()
	wantOpts.Workers = 0 // runtime-only knob, deliberately not serialized
	if loaded.Options() != wantOpts {
		t.Errorf("options changed: %+v vs %+v", loaded.Options(), wantOpts)
	}
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		a, b := idx.PHatRow(u), loaded.PHatRow(u)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("p̂ of %d changed at %d: %g vs %g", u, i, a[i], b[i])
			}
		}
		if idx.ResidueNorm(u) != loaded.ResidueNorm(u) {
			// RNorm is recomputed from R on load; equality must still
			// hold bit-for-bit since R round-trips exactly.
			if diff := idx.ResidueNorm(u) - loaded.ResidueNorm(u); diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("residue of %d changed: %g vs %g", u, idx.ResidueNorm(u), loaded.ResidueNorm(u))
			}
		}
		sa, sb := idx.StateSnapshot(u), loaded.StateSnapshot(u)
		if (sa == nil) != (sb == nil) {
			t.Fatalf("state presence of %d changed", u)
		}
		if sa != nil {
			if sa.T != sb.T || sa.R.NNZ() != sb.R.NNZ() || sa.W.NNZ() != sb.W.NNZ() || sa.S.NNZ() != sb.S.NNZ() {
				t.Fatalf("state of %d changed", u)
			}
		}
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not an index"))); err == nil {
		t.Error("want magic error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("want EOF error")
	}
	// Truncated valid prefix.
	g := toyGraph(t)
	idx, _, err := Build(g, testOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := Load(bytes.NewReader(trunc)); err == nil {
		t.Error("want truncation error")
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []func(*Options){
		func(o *Options) { o.K = 0 },
		func(o *Options) { o.HubBudget = -1 },
		func(o *Options) { o.Omega = -1 },
		func(o *Options) { o.BCA.Alpha = 0 },
		func(o *Options) { o.RWR.Eps = 0 },
		func(o *Options) { o.RWR.Alpha = 0.5 }, // mismatch with BCA alpha
	}
	for i, mutate := range cases {
		o := DefaultOptions()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	if err := DefaultOptions().Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildEmptyGraphFails(t *testing.T) {
	g, _, err := graph.NewBuilder(0).Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Build(g, testOptions(3)); err == nil {
		t.Error("want empty-graph error")
	}
}

func TestHubSchemes(t *testing.T) {
	g := randomGraph(4, 50)
	for _, scheme := range []HubSelection{HubsByDegree, HubsGreedy, HubsNone} {
		opts := testOptions(3)
		opts.HubScheme = scheme
		opts.HubBudget = 2
		// Hub-free runs need a few more iterations to drain the residue.
		opts.BCA.Delta = 0.3
		idx, stats, err := Build(g, opts)
		if err != nil {
			t.Fatalf("%v: %v", scheme, err)
		}
		if scheme == HubsNone && stats.HubCount != 0 {
			t.Errorf("HubsNone selected %d hubs", stats.HubCount)
		}
		if scheme != HubsNone && stats.HubCount == 0 {
			t.Errorf("%v selected no hubs", scheme)
		}
		if err := idx.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", scheme, err)
		}
		if scheme.String() == "" {
			t.Errorf("empty scheme name")
		}
	}
}

func TestStatsBytesOrdering(t *testing.T) {
	// Rounded actual size must not exceed the unrounded estimate, and the
	// P̂-only size is a lower bound for the total.
	g := randomGraph(13, 200)
	opts := testOptions(10)
	opts.HubBudget = 5
	// ω above the typical ≈1/n proximity so that rounding drops most hub
	// entries — the regime where sparse storage beats dense (the paper's
	// large-graph setting).
	opts.Omega = 1e-2
	_, stats, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes > stats.UnroundedBytes {
		t.Errorf("actual %d > unrounded %d", stats.Bytes, stats.UnroundedBytes)
	}
	if stats.PhatBytes > stats.Bytes {
		t.Errorf("P̂ alone %d > total %d", stats.PhatBytes, stats.Bytes)
	}
}
