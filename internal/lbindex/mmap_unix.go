//go:build linux || darwin

package lbindex

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy loader; platforms without it fall back
// to the portable heap read in LoadFile.
const mmapSupported = true

// mmapFile maps size bytes of f read-only. The mapping is shared: rewrite
// index files by rename (as rtkquery -save does), never in place, or live
// readers would observe the mutation.
func mmapFile(f *os.File, size int) (*Mapping, error) {
	if size <= 0 {
		return nil, fmt.Errorf("lbindex: cannot mmap %d-byte file", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, mmapFlags)
	if err != nil {
		return nil, fmt.Errorf("lbindex: mmap: %w", err)
	}
	return &Mapping{data: data}, nil
}

func (m *Mapping) unmap() {
	if m.data == nil {
		return
	}
	data := m.data
	m.data = nil
	_ = syscall.Munmap(data)
}
