package lbindex

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

// reversePerm is a deterministic non-identity bijection for tests.
func reversePerm(n int) graph.Permutation {
	p := make(graph.Permutation, n)
	for i := range p {
		p[i] = graph.NodeID(n - 1 - i)
	}
	return p
}

// TestRelabelingRoundTrip: an index carrying a relabeling survives a v2
// save/load in both load modes, with the permutation, its translation
// methods and every other field intact; clones and grown clones inherit it.
func TestRelabelingRoundTrip(t *testing.T) {
	idx := refinedIndex(t, 17, 30, 4)
	perm := reversePerm(idx.N())
	if err := idx.SetRelabeling(perm); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "perm.idx")
	if err := idx.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	for _, mmap := range []bool{false, true} {
		loaded, err := LoadFile(path, LoadOptions{Mmap: mmap})
		if err != nil {
			t.Fatalf("mmap=%v: %v", mmap, err)
		}
		requireIndexEqual(t, idx, loaded)
		for u := graph.NodeID(0); int(u) < idx.N(); u++ {
			if got := loaded.ToInternal(u); got != perm[u] {
				t.Fatalf("mmap=%v: ToInternal(%d) = %d, want %d", mmap, u, got, perm[u])
			}
			if got := loaded.ToExternal(loaded.ToInternal(u)); got != u {
				t.Fatalf("mmap=%v: translation round trip of %d gives %d", mmap, u, got)
			}
		}
		// Growth beyond the permutation keeps identity labels.
		grown := loaded.CloneGrown(idx.N() + 3)
		if got := grown.ToInternal(graph.NodeID(idx.N() + 1)); int(got) != idx.N()+1 {
			t.Fatalf("grown node translated to %d, want identity", got)
		}
		if got := grown.Relabeling(); len(got) != idx.N() {
			t.Fatalf("grown clone relabeling covers %d nodes, want %d", len(got), idx.N())
		}
	}
	if c := idx.Clone(); c.ToInternal(0) != perm[0] {
		t.Fatal("Clone dropped the relabeling")
	}
}

// TestRelabelingIdentityNotStored: a nil or identity relabeling writes
// exactly the image an index without one writes — bit for bit, with the
// original section count.
func TestRelabelingIdentityNotStored(t *testing.T) {
	idx := refinedIndex(t, 23, 20, 3)
	var before bytes.Buffer
	if err := idx.Save(&before); err != nil {
		t.Fatal(err)
	}
	if err := idx.SetRelabeling(graph.IdentityPermutation(idx.N())); err != nil {
		t.Fatal(err)
	}
	if idx.Relabeling() != nil {
		t.Fatal("identity relabeling was stored")
	}
	var after bytes.Buffer
	if err := idx.Save(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("identity relabeling changed the saved image")
	}
	if nsec := binary.LittleEndian.Uint32(after.Bytes()[16:20]); nsec != v2NumSections {
		t.Fatalf("image has %d sections, want %d", nsec, v2NumSections)
	}
}

// TestSetRelabelingRejectsBadPermutations: wrong length and non-bijections
// are refused, leaving any previously installed relabeling in place.
func TestSetRelabelingRejectsBadPermutations(t *testing.T) {
	idx := refinedIndex(t, 31, 12, 3)
	good := reversePerm(idx.N())
	if err := idx.SetRelabeling(good); err != nil {
		t.Fatal(err)
	}
	if err := idx.SetRelabeling(reversePerm(idx.N() - 1)); err == nil {
		t.Fatal("short permutation accepted")
	}
	dup := reversePerm(idx.N())
	dup[1] = dup[0]
	if err := idx.SetRelabeling(dup); err == nil {
		t.Fatal("non-bijection accepted")
	}
	if got := idx.ToInternal(0); got != good[0] {
		t.Fatalf("failed SetRelabeling clobbered the installed permutation: ToInternal(0) = %d", got)
	}
}

// TestRelabelingCorruptionRejected: every single-byte flip of a
// perm-carrying image is rejected (the checksum net covers the new
// section), and a payload whose CHECKSUMS are valid but whose permutation
// is not a bijection is rejected by the structural validation — corruption
// of the mapping cannot hide behind a recomputed CRC.
func TestRelabelingCorruptionRejected(t *testing.T) {
	idx := refinedIndex(t, 41, 16, 3)
	if err := idx.SetRelabeling(reversePerm(idx.N())); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	corrupt := alignedBytes(len(valid))
	for off := 0; off < len(valid); off++ {
		copy(corrupt, valid)
		corrupt[off] ^= 0xFF
		if _, err := Load(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("deep loader accepted a flip at offset %d/%d", off, len(valid))
		}
		if _, err := parseV2(corrupt, false); err == nil {
			t.Fatalf("structural parser accepted a flip at offset %d/%d", off, len(valid))
		}
	}

	// Forge a duplicate entry in the perm payload and re-seal all three
	// checksum layers; only the bijection check can catch this now.
	forged := alignedBytes(len(valid))
	copy(forged, valid)
	nsec := int(binary.LittleEndian.Uint32(forged[16:20]))
	entry := forged[v2PreambleSize+(nsec-1)*v2TableEntry:]
	off := binary.LittleEndian.Uint64(entry[8:])
	ln := binary.LittleEndian.Uint64(entry[16:])
	copy(forged[off:], forged[off+4:off+8]) // perm[0] = perm[1]
	binary.LittleEndian.PutUint32(entry[4:], crc32.Checksum(forged[off:off+ln], castagnoli))
	headerEnd := v2HeaderEndOf(nsec)
	binary.LittleEndian.PutUint32(forged[20:24], crc32.Checksum(forged[v2PreambleSize:headerEnd], castagnoli))
	fileCRC := crc32.Update(crc32.Checksum(forged[:24], castagnoli), castagnoli, forged[28:])
	binary.LittleEndian.PutUint32(forged[24:28], fileCRC)
	for _, deep := range []bool{true, false} {
		if _, err := parseV2(forged, deep); err == nil {
			t.Fatalf("deep=%v: non-bijection permutation with valid checksums accepted", deep)
		}
	}
}

// TestShardSliceRelabeling: slices inherit the full index's relabeling and
// carry it through the sharded image format.
func TestShardSliceRelabeling(t *testing.T) {
	g, idx := shardTestIndex(t)
	perm := reversePerm(idx.N())
	if err := idx.SetRelabeling(perm); err != nil {
		t.Fatal(err)
	}
	pm := shardMaps(t, g, 3)["range"]
	slice, err := idx.ShardSlice(pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if slice.ToInternal(2) != perm[2] {
		t.Fatal("slice dropped the relabeling")
	}
	path := filepath.Join(t.TempDir(), "slice.idx")
	if err := slice.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	for _, mmap := range []bool{false, true} {
		loaded, err := LoadFile(path, LoadOptions{Mmap: mmap})
		if err != nil {
			t.Fatalf("mmap=%v: %v", mmap, err)
		}
		_, shard, ok := loaded.Shard()
		if !ok || shard != 1 {
			t.Fatalf("mmap=%v: shard info lost", mmap)
		}
		for u := graph.NodeID(0); int(u) < idx.N(); u += 13 {
			if loaded.ToInternal(u) != perm[u] {
				t.Fatalf("mmap=%v: slice relabeling differs at %d", mmap, u)
			}
		}
	}
}
