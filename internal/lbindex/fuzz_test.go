package lbindex

import (
	"bytes"
	"math"
	"testing"
)

// FuzzLoad feeds arbitrary bytes (seeded with a valid v1 index image and
// mutations of it) into the deserializer: it must either return a valid
// index or an error — never panic, never hang, never return an index that
// fails its invariants. FuzzLoadV2 is the format-v2 counterpart.
func FuzzLoad(f *testing.F) {
	g := randomGraph(3, 40)
	opts := testOptions(4)
	idx, _, err := Build(g, opts)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.SaveV1(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("RTKLBIX1"))
	// Save→truncate→Load: prefixes that cut the image inside each section
	// (header, hub matrix, node states, trailer).
	for _, cut := range []int{
		len(valid) / 5, len(valid) / 3, len(valid) / 2,
		2 * len(valid) / 3, 4 * len(valid) / 5, len(valid) - 9, len(valid) - 1,
	} {
		if cut > 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// Deterministic corruptions of the valid image: bit-flips spread across
	// sections, plus length-field inflation near the front (the classic
	// allocation-bomb shape).
	for _, pos := range []int{8, 12, 16, 20, 64, 100, len(valid) / 4, len(valid) / 2, 3 * len(valid) / 4, len(valid) - 9} {
		if pos < len(valid) {
			c := append([]byte(nil), valid...)
			c[pos] ^= 0xFF
			f.Add(c)
		}
	}
	for _, pos := range []int{8, 16, 90} {
		if pos+4 <= len(valid) {
			c := append([]byte(nil), valid...)
			c[pos], c[pos+1], c[pos+2], c[pos+3] = 0xFF, 0xFF, 0xFF, 0x7F
			f.Add(c)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected, fine
		}
		if err := idx.CheckInvariants(); err != nil {
			t.Fatalf("Load accepted an index that fails invariants: %v", err)
		}
	})
}

// FuzzLoadV2 mirrors FuzzLoad for the checksummed format: arbitrary bytes
// (seeded with a valid v2 image, truncated prefixes, flips and inflated
// size/length fields) must load as a valid index or fail with an error in
// BOTH the deep loader and the mmap-structural parser — never panic, never
// hang, never yield an index violating its invariants.
func FuzzLoadV2(f *testing.F) {
	g := randomGraph(3, 40)
	idx, _, err := Build(g, testOptions(4))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte(indexMagicV2))
	for _, cut := range []int{
		16, 31, 32, v2HeaderEnd - 1, v2HeaderEnd,
		len(valid) / 4, len(valid) / 2, 3 * len(valid) / 4, len(valid) - 9, len(valid) - 1,
	} {
		if cut > 0 && cut < len(valid) {
			f.Add(valid[:cut])
		}
	}
	// Flips across the preamble, section table, and every section's span,
	// plus size/offset/length-field inflation (the allocation-bomb shape).
	for _, pos := range []int{8, 16, 20, 24, 40, 44, 48, 56, v2HeaderEnd, v2HeaderEnd + 64, len(valid) / 3, len(valid) / 2, len(valid) - 9} {
		if pos < len(valid) {
			c := append([]byte(nil), valid...)
			c[pos] ^= 0xFF
			f.Add(c)
		}
	}
	for _, pos := range []int{8, 40, 48, 56, 64} {
		if pos+8 <= len(valid) {
			c := append([]byte(nil), valid...)
			for i := 0; i < 7; i++ {
				c[pos+i] = 0xFF
			}
			f.Add(c)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if idx, err := Load(bytes.NewReader(data)); err == nil {
			if err := idx.CheckInvariants(); err != nil {
				t.Fatalf("deep Load accepted an index that fails invariants: %v", err)
			}
		}
		if len(data) >= v2HeaderEnd {
			// The structural parser (the mmap path) must never panic either;
			// it may accept semantically-odd values, but only behind a valid
			// checksum, which fuzzed mutations essentially never produce.
			aligned := alignedBytes(len(data))
			copy(aligned, data)
			_, _ = parseV2(aligned, false)
		}
	})
}

// TestLoadTruncatedPrefixes runs Load on EVERY prefix of a valid v1 image:
// each must either round-trip (the full image) or return an error — no
// prefix may panic or be accepted as valid.
func TestLoadTruncatedPrefixes(t *testing.T) {
	g := randomGraph(5, 12)
	opts := testOptions(3)
	idx, _, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.SaveV1(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for cut := 0; cut < len(valid); cut++ {
		if _, err := Load(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("Load accepted a %d/%d-byte truncation", cut, len(valid))
		}
	}
	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("Load rejected the untruncated image: %v", err)
	}
}

// corruptIndex builds a small index, applies mutate to its in-memory form,
// saves it, and returns the serialized image of the corrupted index.
func corruptIndex(t *testing.T, mutate func(idx *Index, stateNode int)) []byte {
	t.Helper()
	g := randomGraph(7, 30)
	idx, _, err := Build(g, testOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	// Find a non-hub node whose state parks ink at a hub (S non-empty).
	stateNode := -1
	for u := range idx.states {
		if idx.states[u] != nil && idx.states[u].S.NNZ() > 0 {
			stateNode = u
			break
		}
	}
	if stateNode < 0 {
		t.Fatal("no node with hub-parked ink; enlarge the test graph")
	}
	mutate(idx, stateNode)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsCorruptPayloads writes deliberately inconsistent indexes
// and asserts Load refuses each: these are exactly the corruptions that
// used to surface as panics deep inside query processing (out-of-range
// scatter, dropped-mass lookup of a non-hub, NaN in the bound staircase).
func TestLoadRejectsCorruptPayloads(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(idx *Index, stateNode int)
	}{
		{"state S parks ink at a non-hub", func(idx *Index, u int) {
			// Redirect the hub ink to a node that is not a hub: DroppedMass
			// would index pos[-1] at query time.
			for v := int32(0); int(v) < idx.n; v++ {
				if idx.states[int(v)] != nil && v > idx.states[u].S.Idx[idx.states[u].S.NNZ()-1] {
					idx.states[u].S.Idx[idx.states[u].S.NNZ()-1] = v
					return
				}
			}
			panic("no replacement node found")
		}},
		{"state R index out of range", func(idx *Index, u int) {
			if idx.states[u].R.NNZ() == 0 {
				idx.states[u].R.Idx = append(idx.states[u].R.Idx, int32(idx.n+5))
				idx.states[u].R.Val = append(idx.states[u].R.Val, 0)
			} else {
				idx.states[u].R.Idx[idx.states[u].R.NNZ()-1] = int32(idx.n + 5)
			}
		}},
		{"negative ink value", func(idx *Index, u int) {
			idx.states[u].S.Val[0] = -idx.states[u].S.Val[0]
		}},
		{"NaN in phat column", func(idx *Index, u int) {
			idx.phat[u][0] = math.NaN()
		}},
		{"phat above proximity range", func(idx *Index, u int) {
			idx.phat[u][0] = 2.5
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := corruptIndex(t, tc.mutate)
			if _, err := Load(bytes.NewReader(img)); err == nil {
				t.Fatal("Load accepted a corrupt image")
			} else {
				t.Logf("rejected as expected: %v", err)
			}
		})
	}
}
