package lbindex

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes (seeded with a valid index image and
// mutations of it) into the deserializer: it must either return a valid
// index or an error — never panic, never hang, never return an index that
// fails its invariants.
func FuzzLoad(f *testing.F) {
	g := randomGraph(3, 40)
	opts := testOptions(4)
	idx, _, err := Build(g, opts)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("RTKLBIX1"))
	f.Add(valid[:len(valid)/3])
	// A few deterministic corruptions of the valid image.
	for _, pos := range []int{8, 20, 64, len(valid) / 2, len(valid) - 9} {
		if pos < len(valid) {
			c := append([]byte(nil), valid...)
			c[pos] ^= 0xFF
			f.Add(c)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected, fine
		}
		if err := idx.CheckInvariants(); err != nil {
			t.Fatalf("Load accepted an index that fails invariants: %v", err)
		}
	})
}
