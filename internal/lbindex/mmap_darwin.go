//go:build darwin

package lbindex

import "syscall"

// Darwin has no MAP_POPULATE; the verification pass faults pages in.
const mmapFlags = syscall.MAP_SHARED
