package lbindex

import (
	"bufio"
	"bytes"
	"io"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/partition"
)

func shardTestIndex(t *testing.T) (*graph.Graph, *Index) {
	t.Helper()
	g, err := gen.WebGraph(200, 9)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.K = 16
	opts.HubBudget = 6
	idx, _, err := Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, idx
}

func shardMaps(t *testing.T, g *graph.Graph, p int) map[string]*partition.Map {
	t.Helper()
	hash, err := partition.NewHash(g.N(), p, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := partition.NewRange(g.N(), p)
	if err != nil {
		t.Fatal(err)
	}
	bal, err := partition.NewBalanced(g, p)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*partition.Map{"hash": hash, "range": rng, "balanced": bal}
}

// TestShardSliceSharesRows checks a slice exposes exactly the owned rows,
// aliasing the full index's columns bit for bit, and panics on foreign rows.
func TestShardSliceSharesRows(t *testing.T) {
	g, idx := shardTestIndex(t)
	for name, pm := range shardMaps(t, g, 3) {
		covered := 0
		for s := 0; s < pm.P(); s++ {
			slice, err := idx.ShardSlice(pm, s)
			if err != nil {
				t.Fatalf("%s: ShardSlice(%d): %v", name, s, err)
			}
			if slice.N() != idx.N() || slice.K() != idx.K() {
				t.Fatalf("%s: slice shape n=%d K=%d", name, slice.N(), slice.K())
			}
			gotPM, gotShard, ok := slice.Shard()
			if !ok || gotShard != s || !gotPM.Equal(pm) {
				t.Fatalf("%s: slice shard info wrong", name)
			}
			if err := slice.CheckInvariants(); err != nil {
				t.Fatalf("%s shard %d: invariants: %v", name, s, err)
			}
			owned := slice.OwnedNodes()
			covered += len(owned)
			for _, u := range owned {
				if !slice.Owns(u) {
					t.Fatalf("%s: Owns(%d) false for owned node", name, u)
				}
				want := idx.PHatRow(u)
				got := slice.PHatRow(u)
				if !bytes.Equal(floatBytes(want), floatBytes(got)) {
					t.Fatalf("%s shard %d: p̂ row %d differs from full index", name, s, u)
				}
				if idx.ResidueNorm(u) != slice.ResidueNorm(u) {
					t.Fatalf("%s shard %d: residue of %d differs", name, s, u)
				}
			}
		}
		if covered != g.N() {
			t.Fatalf("%s: slices cover %d of %d nodes", name, covered, g.N())
		}
		// Reading a row the shard does not own must panic with a clear
		// message, not misbehave silently.
		slice, err := idx.ShardSlice(pm, 0)
		if err != nil {
			t.Fatal(err)
		}
		var foreign graph.NodeID = -1
		for u := graph.NodeID(0); int(u) < g.N(); u++ {
			if !slice.Owns(u) {
				foreign = u
				break
			}
		}
		if foreign >= 0 {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s: foreign-row read did not panic", name)
					}
				}()
				slice.KthLowerBound(foreign, 1)
			}()
		}
		if _, err := slice.ShardSlice(pm, 0); err == nil {
			t.Errorf("%s: re-slicing a slice accepted", name)
		}
	}
}

// TestShardSliceSaveLoad round-trips slices through the sharded v2 format in
// both load modes and checks every owned row survives bit for bit, with the
// partition map reconstructed.
func TestShardSliceSaveLoad(t *testing.T) {
	g, idx := shardTestIndex(t)
	dir := t.TempDir()
	for name, pm := range shardMaps(t, g, 4) {
		for s := 0; s < pm.P(); s++ {
			slice, err := idx.ShardSlice(pm, s)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, name+".idx")
			if err := slice.SaveFile(path); err != nil {
				t.Fatalf("%s shard %d: SaveFile: %v", name, s, err)
			}
			for _, mmap := range []bool{false, true} {
				loaded, err := LoadFile(path, LoadOptions{Mmap: mmap})
				if err != nil {
					t.Fatalf("%s shard %d mmap=%v: LoadFile: %v", name, s, mmap, err)
				}
				pm2, shard2, ok := loaded.Shard()
				if !ok || shard2 != s || !pm2.Equal(pm) {
					t.Fatalf("%s shard %d mmap=%v: partition map not reconstructed", name, s, mmap)
				}
				if err := loaded.CheckInvariants(); err != nil {
					t.Fatalf("%s shard %d mmap=%v: invariants: %v", name, s, mmap, err)
				}
				if got, want := loaded.OwnedNodes(), slice.OwnedNodes(); len(got) != len(want) {
					t.Fatalf("%s shard %d: %d owned rows, want %d", name, s, len(got), len(want))
				}
				for _, u := range slice.OwnedNodes() {
					if !bytes.Equal(floatBytes(loaded.PHatRow(u)), floatBytes(slice.PHatRow(u))) {
						t.Fatalf("%s shard %d mmap=%v: p̂ row %d differs after reload", name, s, mmap, u)
					}
					st, st2 := slice.StateSnapshot(u), loaded.StateSnapshot(u)
					if (st == nil) != (st2 == nil) {
						t.Fatalf("%s shard %d: state presence of %d differs", name, s, u)
					}
					if st != nil && (st.RNorm != st2.RNorm || st.T != st2.T || st.R.NNZ() != st2.R.NNZ()) {
						t.Fatalf("%s shard %d: state of %d differs after reload", name, s, u)
					}
				}
			}
		}
	}
}

// TestShardSliceCorruptionRejected flips bytes across a sharded image and
// requires every single-byte corruption to be rejected, exactly like the
// full-format guarantee.
func TestShardSliceCorruptionRejected(t *testing.T) {
	g, idx := shardTestIndex(t)
	pm, err := partition.NewHash(g.N(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	slice, err := idx.ShardSlice(pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := slice.Save(&buf); err != nil {
		t.Fatal(err)
	}
	img := buf.Bytes()
	if _, err := parseV2(append([]byte(nil), img...), true); err != nil {
		t.Fatalf("pristine sharded image rejected: %v", err)
	}
	stride := len(img)/971 + 1
	for pos := 0; pos < len(img); pos += stride {
		corrupt := append([]byte(nil), img...)
		corrupt[pos] ^= 0x40
		if _, err := parseV2(corrupt, true); err == nil {
			t.Fatalf("flipped byte at %d accepted", pos)
		}
	}
}

// TestShardSliceV1Refused: the v1 container has no partition section, so
// writing a slice through it must fail loudly instead of silently dropping
// the shard identity.
func TestShardSliceV1Refused(t *testing.T) {
	g, idx := shardTestIndex(t)
	pm, err := partition.NewRange(g.N(), 2)
	if err != nil {
		t.Fatal(err)
	}
	slice, err := idx.ShardSlice(pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := slice.SaveV1(io.Discard); err == nil {
		t.Fatal("SaveV1 accepted a shard slice")
	}
}

// TestShardCloneGrown: growth extends the owned list with the new ids the
// shard owns and never migrates existing nodes.
func TestShardCloneGrown(t *testing.T) {
	g, idx := shardTestIndex(t)
	for name, pm := range shardMaps(t, g, 2) {
		for s := 0; s < 2; s++ {
			slice, err := idx.ShardSlice(pm, s)
			if err != nil {
				t.Fatal(err)
			}
			grown := slice.CloneGrown(g.N() + 10)
			pm2, _, ok := grown.Shard()
			if !ok || pm2.N() != g.N()+10 {
				t.Fatalf("%s shard %d: grown partition covers %d", name, s, pm2.N())
			}
			before := len(slice.OwnedNodes())
			var newOwned int
			for u := graph.NodeID(g.N()); int(u) < g.N()+10; u++ {
				if pm2.Owner(u) == s {
					newOwned++
					if !grown.Owns(u) {
						t.Fatalf("%s shard %d: grown slice does not own new node %d", name, s, u)
					}
				}
			}
			if got := len(grown.OwnedNodes()); got != before+newOwned {
				t.Fatalf("%s shard %d: grown owned list has %d entries, want %d", name, s, got, before+newOwned)
			}
		}
	}
}

func floatBytes(xs []float64) []byte {
	var buf bytes.Buffer
	bw := &binWriter{w: bufio.NewWriter(&buf)}
	bw.floats(xs)
	bw.w.Flush()
	return buf.Bytes()
}
