// Package lbindex implements the paper's offline graph index (§4.1,
// Algorithm 1 "Lower Bound Indexing"): for every node a descending list of
// the K largest lower-bound proximities p̂^t_u(1:K) obtained by partially
// executing the batch-propagation BCA, together with the resumable residue
// state (the R, W, S matrices) and the rounded hub proximity matrix P_H.
//
// The index is dynamically refinable: the online query algorithm (package
// core) advances individual nodes' BCA runs and commits the refined state
// back, tightening the bounds for future queries (§4.2.3).
package lbindex

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/partition"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

// HubSelection names the hub selection scheme used at build time.
type HubSelection int

const (
	// HubsByDegree is the paper's scheme (§4.1.1): the union of top-B
	// in-degree and top-B out-degree nodes.
	HubsByDegree HubSelection = iota
	// HubsGreedy is Berkhin's BCA-driven scheme [7]; kept as an ablation.
	HubsGreedy
	// HubsNone builds the index without hubs (pure BCA); slow to converge
	// on hub-heavy graphs but useful as a baseline.
	HubsNone
)

// String returns the scheme name.
func (h HubSelection) String() string {
	switch h {
	case HubsByDegree:
		return "degree"
	case HubsGreedy:
		return "greedy"
	case HubsNone:
		return "none"
	default:
		return fmt.Sprintf("HubSelection(%d)", int(h))
	}
}

// Options configures index construction. The defaults mirror §5.2.
type Options struct {
	// K is the maximum supported query k (paper: 200).
	K int
	// HubBudget is the B of §4.1.1; the hub set is the union of top-B
	// in-degree and top-B out-degree nodes, so |H| ≤ 2B.
	HubBudget int
	// HubScheme selects the hub selection algorithm.
	HubScheme HubSelection
	// GreedySeed seeds the greedy selector (HubsGreedy only).
	GreedySeed int64
	// Omega is the hub-vector rounding threshold ω of §4.1.3.
	Omega float64
	// BCA carries α, η, δ for the per-node partial BCA runs.
	BCA bca.Config
	// RWR carries the power-method parameters for exact hub vectors;
	// Alpha must equal BCA.Alpha.
	RWR rwr.Params
	// Workers bounds build parallelism; ≤0 selects GOMAXPROCS.
	Workers int
}

// DefaultOptions returns the paper's indexing parameters (§5.2): K=200,
// η=1e-4, δ=0.1, ω=1e-6, α=0.15, ε=1e-10.
func DefaultOptions() Options {
	return Options{
		K:         200,
		HubBudget: 50,
		HubScheme: HubsByDegree,
		Omega:     1e-6,
		BCA:       bca.DefaultConfig(),
		RWR:       rwr.DefaultParams(),
	}
}

// Validate reports whether the options are usable.
func (o Options) Validate() error {
	if o.K <= 0 {
		return fmt.Errorf("lbindex: K must be positive, got %d", o.K)
	}
	if o.HubBudget < 0 {
		return fmt.Errorf("lbindex: hub budget must be non-negative, got %d", o.HubBudget)
	}
	if o.Omega < 0 {
		return fmt.Errorf("lbindex: omega must be non-negative, got %g", o.Omega)
	}
	if err := o.BCA.Validate(); err != nil {
		return err
	}
	if err := o.RWR.Validate(); err != nil {
		return err
	}
	if o.BCA.Alpha != o.RWR.Alpha {
		return fmt.Errorf("lbindex: BCA alpha %g != RWR alpha %g", o.BCA.Alpha, o.RWR.Alpha)
	}
	return nil
}

// lockStripes is the number of node-range lock stripes of an Index. The
// intra-query decision shards and concurrent batch engines commit to
// disjoint or well-spread node ranges, so with contiguous-range striping a
// commit contends only with accesses to its own ~n/64 neighborhood instead
// of serializing against every reader of the index.
const lockStripes = 64

// Index is the paper's graph index I = (P̂, R, W, S, P_H). Safe for
// concurrent use: per-node reads and refinement commits synchronize on the
// lock stripe covering that node's range, the hub matrix pointer has its own
// lock, and whole-index operations take every stripe.
//
// Lock ordering: stripes are only ever acquired in ascending order, and the
// hub lock is never held while acquiring a stripe.
//
// One operation sits outside this safety net: an IN-PLACE evolve.Refresh
// (hub-matrix swap followed by many commits) is not atomic as a whole, so a
// concurrent Save/Clone could pair the new hub matrix with not-yet-refreshed
// rows. Run in-place refreshes with whole-index operations quiesced, or use
// evolve.RefreshSnapshot, which refreshes a Clone and leaves this index
// untouched — the serving daemon does the latter.
type Index struct {
	opts Options
	n    int
	// hubMu guards the hubs pointer (swapped by SetHubMatrix); the Matrix
	// itself is immutable once built.
	hubMu sync.RWMutex
	hubs  *hub.Matrix // guarded by hubMu
	// stripes[s] guards phat[u] and states[u] for every node u with
	// stripeOf(u) == s (contiguous node ranges of ≈ n/lockStripes).
	stripes [lockStripes]sync.RWMutex
	// phat[u] is p̂^t_u(1:K): the K largest lower-bound proximities from
	// u, descending. For hub nodes these are exact top-K values.
	// Guarded by stripes.
	phat [][]float64
	// states[u] is the resumable BCA state of non-hub u; nil for hubs.
	// Guarded by stripes.
	states []*bca.State
	// refinements counts committed post-build refinement steps (a
	// diagnostic for the Fig. 7 experiment).
	refinements atomic.Int64
	// watermark is the edit-journal watermark this index's state reflects:
	// every journaled batch with watermark ≤ this value has been applied
	// (or deterministically rejected). Persisted in the v2 image, it is
	// what crash recovery replays the journal suffix against. 0 for a
	// freshly built index.
	watermark atomic.Uint64
	// backing is the mmap'd image this index's rows alias, or nil for
	// heap-resident indexes. Mapped rows are read-only; every writer
	// replaces per-node pointers wholesale (the same immutable-once-
	// committed discipline Clone relies on), so refinement, evolve
	// refreshes and hub rebuilds work unchanged over a mapping.
	backing *Mapping

	// Shard-slice fields (nil/zero for a full index). A slice covers the
	// SAME node-id space as the full index (n is global) but materializes
	// p̂ columns and states only for the nodes its shard owns — plus the
	// full hub matrix, which every shard needs to refine any of its own
	// candidates. part is the deterministic assignment, shardID this
	// slice's shard, and owned the ascending materialized owned-node list.
	part    *partition.Map
	shardID int
	owned   []graph.NodeID

	// perm is the build-time cache-aware relabeling this index's graph is
	// stored under (perm[external] = internal), nil for identity; permInv is
	// its inverse. Both are immutable once set (SetRelabeling copies), so
	// clones and shard slices share them. Nodes added after build (id ≥
	// len(perm)) keep identity labels. Persisted as a checksummed v2 section.
	perm    graph.Permutation
	permInv graph.Permutation
}

// Shard returns the slice's partition map and shard id; ok is false for a
// full (unsharded) index.
func (idx *Index) Shard() (pm *partition.Map, shard int, ok bool) {
	return idx.part, idx.shardID, idx.part != nil
}

// OwnedNodes returns the ascending list of nodes this index materializes
// rows for, or nil when the index is full (every node present). The slice
// aliases internal storage and must not be modified.
func (idx *Index) OwnedNodes() []graph.NodeID {
	return idx.owned
}

// Owns reports whether this index materializes node u's row. Always true
// for a full index.
func (idx *Index) Owns(u graph.NodeID) bool {
	return idx.part == nil || idx.part.Owner(u) == idx.shardID
}

// ShardSlice returns the shard's view of this full index: an index over the
// same (global) node-id space sharing the hub matrix and exactly the owned
// nodes' p̂ columns and states. The slice is an O(owned) pointer copy — rows
// are shared with the receiver under the usual immutable-once-committed
// discipline. Reading a non-owned row panics; the query engine iterates
// OwnedNodes, so shard-local queries never do.
func (idx *Index) ShardSlice(pm *partition.Map, shard int) (*Index, error) {
	if idx.part != nil {
		return nil, fmt.Errorf("lbindex: cannot re-slice a shard slice (shard %d)", idx.shardID)
	}
	if pm.N() != idx.n {
		return nil, fmt.Errorf("lbindex: partition covers %d nodes, index has %d", pm.N(), idx.n)
	}
	if shard < 0 || shard >= pm.P() {
		return nil, fmt.Errorf("lbindex: shard %d outside [0,%d)", shard, pm.P())
	}
	idx.lockAll()
	defer idx.unlockAll()
	owned := pm.Owned(shard)
	s := &Index{
		opts:    idx.opts,
		n:       idx.n,
		hubs:    idx.HubMatrix(),
		phat:    make([][]float64, idx.n),
		states:  make([]*bca.State, idx.n),
		part:    pm,
		shardID: shard,
		owned:   owned,
		perm:    idx.perm,
		permInv: idx.permInv,
	}
	for _, u := range owned {
		s.phat[u] = idx.phat[u]
		s.states[u] = idx.states[u]
	}
	s.setBacking(idx.backing)
	s.refinements.Store(idx.refinements.Load())
	s.watermark.Store(idx.watermark.Load())
	return s, nil
}

// stripeOf maps a node to its lock stripe: contiguous node ranges, aligned
// with how decideSharded partitions the node space, so each decision shard
// mostly stays within its own stripes.
func (idx *Index) stripeOf(u graph.NodeID) int {
	return int(int64(u) * lockStripes / int64(idx.n))
}

// lockAll/unlockAll bracket whole-index operations (serialization, size and
// invariant scans). Stripes are acquired in ascending order.
func (idx *Index) lockAll() {
	for i := range idx.stripes {
		idx.stripes[i].RLock()
	}
}

func (idx *Index) unlockAll() {
	for i := range idx.stripes {
		idx.stripes[i].RUnlock()
	}
}

// BuildStats reports construction cost, mirroring Table 2's columns.
type BuildStats struct {
	HubCount     int
	HubElapsed   time.Duration
	TotalElapsed time.Duration
	// TotalIters sums BCA iterations over all non-hub nodes.
	TotalIters int64
	// Bytes is the serialized-payload size estimate of the built index.
	Bytes int64
	// UnroundedBytes estimates the size without §4.1.3 rounding (hub
	// vectors dense).
	UnroundedBytes int64
	// PredictedBytes is Theorem 1's estimate at β = 0.76.
	PredictedBytes int64
	// PhatBytes is the lower-bound matrix alone — Table 2's
	// "minimum possible cost" (value in parentheses).
	PhatBytes int64
}

// Build runs Algorithm 1: select hubs, compute their exact proximity
// vectors, then run partial batch-BCA from every non-hub node, keeping the
// top-K lower bounds and the resumable state.
func Build[G graph.View](g G, opts Options) (*Index, BuildStats, error) {
	if err := opts.Validate(); err != nil {
		return nil, BuildStats{}, err
	}
	if g.N() == 0 {
		return nil, BuildStats{}, fmt.Errorf("lbindex: empty graph")
	}
	start := time.Now()

	var hubIDs []graph.NodeID
	switch opts.HubScheme {
	case HubsByDegree:
		hubIDs = hub.SelectByDegree(g, opts.HubBudget)
	case HubsGreedy:
		var err error
		hubIDs, err = hub.SelectGreedy(g, 2*opts.HubBudget, opts.BCA, opts.GreedySeed)
		if err != nil {
			return nil, BuildStats{}, err
		}
	case HubsNone:
		hubIDs = nil
	default:
		return nil, BuildStats{}, fmt.Errorf("lbindex: unknown hub scheme %v", opts.HubScheme)
	}

	var hm *hub.Matrix
	var err error
	hm, err = hub.Build(g, hubIDs, hub.BuildOptions{
		Omega:   opts.Omega,
		RWR:     opts.RWR,
		TopK:    opts.K,
		Workers: opts.Workers,
	})
	if err != nil {
		return nil, BuildStats{}, err
	}
	hubElapsed := time.Since(start)

	idx := &Index{
		opts:   opts,
		n:      g.N(),
		hubs:   hm,
		phat:   make([][]float64, g.N()),
		states: make([]*bca.State, g.N()),
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var totalIters int64
	jobs := make(chan graph.NodeID)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := bca.NewWorkspace(g.N())
			var iters int64
			for u := range jobs {
				if hm.IsHub(u) {
					idx.phat[u] = hm.ExactTopK(u)
					continue
				}
				st, err := bca.Run(g, u, hm, opts.BCA, ws)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("lbindex: node %d: %w", u, err)
					}
					mu.Unlock()
					continue
				}
				iters += int64(st.T)
				idx.phat[u] = bca.TopK(st, hm, ws, opts.K)
				idx.states[u] = st
			}
			mu.Lock()
			totalIters += iters
			mu.Unlock()
		}()
	}
	for u := 0; u < g.N(); u++ {
		jobs <- graph.NodeID(u)
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, BuildStats{}, firstErr
	}

	stats := BuildStats{
		HubCount:     hm.NumHubs(),
		HubElapsed:   hubElapsed,
		TotalElapsed: time.Since(start),
		TotalIters:   totalIters,
	}
	stats.PhatBytes = int64(g.N()) * int64(opts.K) * 8
	stats.Bytes = idx.SizeBytes()
	stats.UnroundedBytes = stats.Bytes - hm.Bytes() + hm.UnroundedBytes()
	stats.PredictedBytes = hub.PredictIndexBytes(g.N(), opts.K, hm.NumHubs(), opts.Omega, 0.76)
	return idx, stats, nil
}

// N returns the number of indexed nodes.
func (idx *Index) N() int { return idx.n }

// K returns the maximum supported query k.
func (idx *Index) K() int { return idx.opts.K }

// Options returns the build options.
func (idx *Index) Options() Options { return idx.opts }

// HubMatrix returns the rounded hub proximity matrix.
func (idx *Index) HubMatrix() *hub.Matrix {
	idx.hubMu.RLock()
	defer idx.hubMu.RUnlock()
	return idx.hubs
}

// IsHub reports whether u is a hub (its index entry is exact).
func (idx *Index) IsHub(u graph.NodeID) bool { return idx.HubMatrix().IsHub(u) }

// KthLowerBound returns p̂^t_u(k), the indexed lower bound of u's k-th
// largest proximity (1-based k ≤ K).
func (idx *Index) KthLowerBound(u graph.NodeID, k int) float64 {
	s := &idx.stripes[idx.stripeOf(u)]
	s.RLock()
	defer s.RUnlock()
	if idx.phat[u] == nil {
		panic(fmt.Sprintf("lbindex: node %d not materialized (shard %d does not own it)", u, idx.shardID))
	}
	return idx.phat[u][k-1]
}

// PHatRow copies the current p̂ column of node u (length K, descending).
func (idx *Index) PHatRow(u graph.NodeID) []float64 {
	s := &idx.stripes[idx.stripeOf(u)]
	s.RLock()
	defer s.RUnlock()
	return vecmath.Clone(idx.phat[u])
}

// ResidueNorm returns ‖r^t_u‖₁, the undistributed ink of u's partial BCA
// run; 0 for hubs (their proximities are exact).
func (idx *Index) ResidueNorm(u graph.NodeID) float64 {
	s := &idx.stripes[idx.stripeOf(u)]
	s.RLock()
	defer s.RUnlock()
	if idx.states[u] == nil {
		return 0
	}
	return idx.states[u].RNorm
}

// RoundingSlack returns the proximity mass that §4.1.3's rounding removed
// from u's materialized lower bound: Σ_h s_u(h)·dropped(h). Rounding keeps
// p̂ a valid lower bound, but a drained state (‖r‖=0) is only exact up to
// this slack, and any sound upper bound must pour it back onto the
// staircase along with the residue. Zero when ω = 0 and for hub nodes
// (their top-K columns are taken from the unrounded vectors).
func (idx *Index) RoundingSlack(u graph.NodeID) float64 {
	hm := idx.HubMatrix()
	s := &idx.stripes[idx.stripeOf(u)]
	s.RLock()
	defer s.RUnlock()
	st := idx.states[u]
	if st == nil {
		return 0
	}
	return stateSlack(st, hm)
}

func stateSlack(st *bca.State, hm *hub.Matrix) float64 {
	var slack float64
	for i, h := range st.S.Idx {
		slack += st.S.Val[i] * hm.DroppedMass(graph.NodeID(h))
	}
	return slack
}

// StateSlack computes the rounding slack of an engine-local (refined copy)
// state against this index's hub matrix.
func (idx *Index) StateSlack(st *bca.State) float64 {
	return stateSlack(st, idx.HubMatrix())
}

// StateSnapshot returns a deep copy of u's resumable BCA state, or nil for
// hub nodes. Copies are what the query engine refines in no-update mode.
func (idx *Index) StateSnapshot(u graph.NodeID) *bca.State {
	s := &idx.stripes[idx.stripeOf(u)]
	s.RLock()
	defer s.RUnlock()
	if idx.states[u] == nil {
		return nil
	}
	return idx.states[u].Clone()
}

// Commit stores a refined state and its recomputed p̂ column for node u
// (§4.2.3 dynamic index update). The caller passes ownership of both.
// Commits to different node ranges synchronize on different stripes, so
// concurrent shard workers do not serialize against each other here.
func (idx *Index) Commit(u graph.NodeID, st *bca.State, phat []float64) {
	if len(phat) != idx.opts.K {
		panic(fmt.Sprintf("lbindex: Commit phat length %d, want %d", len(phat), idx.opts.K))
	}
	s := &idx.stripes[idx.stripeOf(u)]
	s.Lock()
	idx.states[u] = st
	idx.phat[u] = phat
	// Counted before the stripe is released so a Save holding all stripes
	// never serializes a committed state the counter doesn't yet reflect.
	idx.refinements.Add(1)
	s.Unlock()
}

// SetHubMatrix replaces the hub proximity matrix with one recomputed on an
// edited graph. The replacement must cover the same node count and the
// SAME hub membership: per-node states park ink at the current hubs, so a
// membership change would orphan that ink (rebuild the index to re-select
// hubs). Used by the evolve package.
func (idx *Index) SetHubMatrix(hm *hub.Matrix) error {
	n, newHubs, _, _, _, _ := hm.Parts()
	if n != idx.n {
		return fmt.Errorf("lbindex: replacement hub matrix covers %d nodes, index has %d", n, idx.n)
	}
	oldHubs := idx.HubMatrix().Hubs()
	if len(newHubs) != len(oldHubs) {
		return fmt.Errorf("lbindex: replacement changes hub count %d → %d", len(oldHubs), len(newHubs))
	}
	for i := range newHubs {
		if newHubs[i] != oldHubs[i] {
			return fmt.Errorf("lbindex: replacement changes hub membership at position %d: %d → %d", i, oldHubs[i], newHubs[i])
		}
	}
	idx.hubMu.Lock()
	defer idx.hubMu.Unlock()
	idx.hubs = hm
	return nil
}

// CommitHub refreshes the exact top-K column of a hub node (whose state is
// always nil). Used by the evolve package after hub vectors change.
func (idx *Index) CommitHub(u graph.NodeID, phat []float64) {
	if len(phat) != idx.opts.K {
		panic(fmt.Sprintf("lbindex: CommitHub phat length %d, want %d", len(phat), idx.opts.K))
	}
	if !idx.IsHub(u) {
		panic(fmt.Sprintf("lbindex: CommitHub on non-hub node %d", u))
	}
	s := &idx.stripes[idx.stripeOf(u)]
	s.Lock()
	defer s.Unlock()
	idx.states[u] = nil
	idx.phat[u] = phat
}

// Clone returns an independent index sharing this index's committed rows.
// The copy is O(n) pointers, not a deep copy: p̂ columns and BCA states are
// immutable once committed — every writer (Commit, CommitHub, the refresh
// path in package evolve) replaces the per-node pointers wholesale and the
// query engine refines deep copies (StateSnapshot), never the stored
// objects — so sharing them is safe. Commits to the clone replace only the
// clone's pointers, leaving the original untouched, which is what makes
// snapshot isolation cheap: a maintenance pass refreshes a clone off to the
// side while readers keep serving from the original.
func (idx *Index) Clone() *Index {
	// Stripes first, hub pointer second: with every row frozen, the pair
	// (rows, hub matrix) can only disagree if an in-place evolve.Refresh is
	// running concurrently — which whole-index operations do not support
	// (see the Index doc); snapshot maintenance uses RefreshSnapshot on a
	// Clone instead, which never mutates this index at all.
	idx.lockAll()
	defer idx.unlockAll()
	hm := idx.HubMatrix()
	c := &Index{
		opts:    idx.opts,
		n:       idx.n,
		hubs:    hm,
		phat:    append([][]float64(nil), idx.phat...),
		states:  append([]*bca.State(nil), idx.states...),
		part:    idx.part,
		shardID: idx.shardID,
		owned:   idx.owned,
		perm:    idx.perm,
		permInv: idx.permInv,
	}
	c.setBacking(idx.backing)
	c.refinements.Store(idx.refinements.Load())
	c.watermark.Store(idx.watermark.Load())
	return c
}

// CloneGrown returns a Clone extended to cover n2 ≥ N() nodes: the new
// origins' p̂ columns and states are unset and MUST be committed (via
// Commit, typically through an evolve refresh that lists every new node as
// affected) before the clone serves queries — reading an uncommitted new
// row panics. Node growth never changes hub membership: new nodes are
// plain origins with fresh BCA runs.
func (idx *Index) CloneGrown(n2 int) *Index {
	if n2 < idx.n {
		panic(fmt.Sprintf("lbindex: CloneGrown shrinking %d → %d nodes", idx.n, n2))
	}
	idx.lockAll()
	defer idx.unlockAll()
	hm := idx.HubMatrix()
	phat := make([][]float64, n2)
	copy(phat, idx.phat)
	states := make([]*bca.State, n2)
	copy(states, idx.states)
	c := &Index{
		opts:    idx.opts,
		n:       n2,
		hubs:    hm,
		phat:    phat,
		states:  states,
		perm:    idx.perm,
		permInv: idx.permInv,
	}
	if idx.part != nil {
		// Extend the assignment: existing nodes never migrate (see
		// partition.Map.Grow), and the fresh ids this shard owns join its
		// owned list — their rows, like every grown row, must be committed
		// before the clone serves queries.
		pm2, err := idx.part.Grow(n2)
		if err != nil {
			panic(fmt.Sprintf("lbindex: CloneGrown: %v", err))
		}
		c.part = pm2
		c.shardID = idx.shardID
		c.owned = idx.owned
		for u := idx.n; u < n2; u++ {
			if pm2.Owner(graph.NodeID(u)) == idx.shardID {
				if len(c.owned) == len(idx.owned) {
					c.owned = append([]graph.NodeID(nil), idx.owned...)
				}
				c.owned = append(c.owned, graph.NodeID(u))
			}
		}
	}
	c.setBacking(idx.backing)
	c.refinements.Store(idx.refinements.Load())
	c.watermark.Store(idx.watermark.Load())
	return c
}

// Refinements returns the number of committed refinement steps since build.
func (idx *Index) Refinements() int64 {
	return idx.refinements.Load()
}

// Watermark returns the edit-journal watermark embedded in this index: the
// highest journaled batch reflected in its state (0 for a fresh build).
// Crash recovery replays only journal records above it.
func (idx *Index) Watermark() uint64 { return idx.watermark.Load() }

// SetWatermark records that every journaled batch with watermark ≤ wm is
// reflected in this index's state. The serving maintenance goroutine stamps
// each published index with the batch watermark that produced it, so a
// checkpointed image always names the journal suffix recovery must replay.
func (idx *Index) SetWatermark(wm uint64) { idx.watermark.Store(wm) }

// SizeBytes returns the approximate payload footprint of the index: the
// lower-bound matrix, all resumable states, and the rounded hub matrix.
func (idx *Index) SizeBytes() int64 {
	idx.lockAll()
	defer idx.unlockAll()
	hm := idx.HubMatrix()
	var rows int64
	for _, col := range idx.phat {
		if col != nil {
			rows++
		}
	}
	total := rows * int64(idx.opts.K) * 8
	for _, st := range idx.states {
		if st != nil {
			total += st.Bytes()
		}
	}
	total += hm.Bytes()
	return total
}

// CheckInvariants verifies every stored state conserves ink and every p̂
// column is descending — used by tests and after deserialization.
func (idx *Index) CheckInvariants() error {
	idx.lockAll()
	defer idx.unlockAll()
	hm := idx.HubMatrix()
	for u := 0; u < idx.n; u++ {
		if idx.phat[u] == nil {
			// Shard slices materialize owned rows only; a missing row is an
			// invariant violation only when this index should own it.
			if idx.Owns(graph.NodeID(u)) {
				return fmt.Errorf("lbindex: owned node %d has no p̂ column", u)
			}
			continue
		}
		if !vecmath.IsSortedDescending(idx.phat[u]) {
			return fmt.Errorf("lbindex: p̂ column of node %d not descending", u)
		}
		st := idx.states[u]
		if st == nil {
			if !hm.IsHub(graph.NodeID(u)) && idx.Owns(graph.NodeID(u)) {
				return fmt.Errorf("lbindex: non-hub node %d has no state", u)
			}
			continue
		}
		if err := st.CheckInvariant(1e-6); err != nil {
			return fmt.Errorf("lbindex: node %d: %w", u, err)
		}
	}
	return nil
}
