package lbindex

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/vecmath"
)

// refinedIndex builds a small index and commits a few refinements so the
// refinement counter and some re-committed rows are exercised by the
// round-trip tests.
func refinedIndex(t testing.TB, seed int64, n, k int) *Index {
	t.Helper()
	idx, _, err := Build(randomGraph(seed, n), testOptions(k))
	if err != nil {
		t.Fatal(err)
	}
	committed := 0
	for u := 0; u < idx.N() && committed < 3; u++ {
		if st := idx.StateSnapshot(graph.NodeID(u)); st != nil {
			idx.Commit(graph.NodeID(u), st, idx.PHatRow(graph.NodeID(u)))
			committed++
		}
	}
	return idx
}

func requireFloatsEqual(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", what, len(a), len(b))
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("%s: value %d: %g vs %g", what, i, a[i], b[i])
		}
	}
}

func requireSparseEqual(t *testing.T, what string, a, b vecmath.Sparse) {
	t.Helper()
	if a.NNZ() != b.NNZ() {
		t.Fatalf("%s: nnz %d vs %d", what, a.NNZ(), b.NNZ())
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] {
			t.Fatalf("%s: index %d: %d vs %d", what, i, a.Idx[i], b.Idx[i])
		}
	}
	requireFloatsEqual(t, what, a.Val, b.Val)
}

// requireIndexEqual asserts two indexes are value-identical: options,
// refinement counter, hub matrix parts, every state and every p̂ column,
// with float64s compared bit for bit.
func requireIndexEqual(t *testing.T, a, b *Index) {
	t.Helper()
	// Workers is a runtime knob, not part of the persisted format.
	ao, bo := a.opts, b.opts
	ao.Workers, bo.Workers = 0, 0
	if a.n != b.n || ao != bo {
		t.Fatalf("shape/options differ: n %d/%d, opts %+v vs %+v", a.n, b.n, ao, bo)
	}
	if a.Refinements() != b.Refinements() {
		t.Fatalf("refinements %d vs %d", a.Refinements(), b.Refinements())
	}
	if a.Watermark() != b.Watermark() {
		t.Fatalf("watermark %d vs %d", a.Watermark(), b.Watermark())
	}
	an, ahubs, acols, atopk, adrop, aomega := a.HubMatrix().Parts()
	bn, bhubs, bcols, btopk, bdrop, bomega := b.HubMatrix().Parts()
	if an != bn || aomega != bomega || len(ahubs) != len(bhubs) {
		t.Fatalf("hub matrix shape differs: n %d/%d omega %g/%g hubs %d/%d", an, bn, aomega, bomega, len(ahubs), len(bhubs))
	}
	requireFloatsEqual(t, "hub dropped", adrop, bdrop)
	for i := range ahubs {
		if ahubs[i] != bhubs[i] {
			t.Fatalf("hub %d: id %d vs %d", i, ahubs[i], bhubs[i])
		}
		requireFloatsEqual(t, "hub topK", atopk[i], btopk[i])
		requireSparseEqual(t, "hub col", acols[i], bcols[i])
	}
	for u := 0; u < a.n; u++ {
		requireFloatsEqual(t, "phat", a.phat[u], b.phat[u])
		as, bs := a.states[u], b.states[u]
		if (as == nil) != (bs == nil) {
			t.Fatalf("node %d: state nil-ness differs", u)
		}
		if as == nil {
			continue
		}
		if as.Origin != bs.Origin || as.T != bs.T || math.Float64bits(as.RNorm) != math.Float64bits(bs.RNorm) {
			t.Fatalf("node %d: state header differs", u)
		}
		requireSparseEqual(t, "R", as.R, bs.R)
		requireSparseEqual(t, "W", as.W, bs.W)
		requireSparseEqual(t, "S", as.S, bs.S)
	}
	if len(a.perm) != len(b.perm) {
		t.Fatalf("relabeling covers %d vs %d nodes", len(a.perm), len(b.perm))
	}
	for i := range a.perm {
		if a.perm[i] != b.perm[i] {
			t.Fatalf("relabeling differs at %d: %d vs %d", i, a.perm[i], b.perm[i])
		}
	}
}

// TestV2RoundTripProperty is the migration property test: a v1 image loads,
// re-saves as v2, and the v2 load is value-identical to the v1 load —
// options, refinement counter, hub columns, states and p̂ all included.
// It also checks Save is deterministic (two saves, identical bytes).
func TestV2RoundTripProperty(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		idx := refinedIndex(t, seed, 40, 4)

		var v1 bytes.Buffer
		if err := idx.SaveV1(&v1); err != nil {
			t.Fatal(err)
		}
		fromV1, err := Load(bytes.NewReader(v1.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: v1 load: %v", seed, err)
		}
		requireIndexEqual(t, idx, fromV1)

		var v2a, v2b bytes.Buffer
		if err := fromV1.Save(&v2a); err != nil {
			t.Fatal(err)
		}
		if err := fromV1.Save(&v2b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(v2a.Bytes(), v2b.Bytes()) {
			t.Fatalf("seed %d: Save is not deterministic", seed)
		}
		fromV2, err := Load(bytes.NewReader(v2a.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: v2 load: %v", seed, err)
		}
		requireIndexEqual(t, fromV1, fromV2)

		// And the mmap-structural parser agrees with the deep loader.
		aligned := alignedBytes(v2a.Len())
		copy(aligned, v2a.Bytes())
		mapped, err := parseV2(aligned, false)
		if err != nil {
			t.Fatalf("seed %d: structural parse: %v", seed, err)
		}
		requireIndexEqual(t, fromV2, mapped)
	}
}

// TestV2FlipEveryByteRejected is the corruption acceptance test for the
// checksummed format: flipping ANY single byte of a valid v2 image must
// make both the deep loader and the mmap-structural parser reject it —
// there is no offset at which corruption loads silently.
func TestV2FlipEveryByteRejected(t *testing.T) {
	idx := refinedIndex(t, 7, 24, 3)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	corrupt := alignedBytes(len(valid))
	for off := 0; off < len(valid); off++ {
		copy(corrupt, valid)
		corrupt[off] ^= 0xFF
		if _, err := Load(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("deep loader accepted a flip at offset %d/%d", off, len(valid))
		}
		if _, err := parseV2(corrupt, false); err == nil {
			t.Fatalf("structural parser accepted a flip at offset %d/%d", off, len(valid))
		}
	}
}

// TestV1FlipSilentLoads documents WHY v2 exists: v1 has no checksum, so
// some single-byte flips inside plausible bounds load without any error.
// The loader must still never panic, and what it accepts must at least
// pass the best-effort invariant re-check.
func TestV1FlipSilentLoads(t *testing.T) {
	idx := refinedIndex(t, 7, 24, 3)
	var buf bytes.Buffer
	if err := idx.SaveV1(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	silent := 0
	corrupt := make([]byte, len(valid))
	for off := 0; off < len(valid); off++ {
		copy(corrupt, valid)
		corrupt[off] ^= 0x01 // low bit: stays within plausible ranges most often
		loaded, err := Load(bytes.NewReader(corrupt))
		if err != nil {
			continue
		}
		silent++
		if err := loaded.CheckInvariants(); err != nil {
			t.Fatalf("v1 load at flipped offset %d accepted an index failing invariants: %v", off, err)
		}
	}
	t.Logf("v1: %d/%d single-bit flips loaded silently (v2 rejects all)", silent, len(valid))
}

// TestV2TruncatedPrefixes runs Load on every prefix of a valid v2 image:
// each must return an error, never panic or be accepted.
func TestV2TruncatedPrefixes(t *testing.T) {
	idx := refinedIndex(t, 5, 12, 3)
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	for cut := 0; cut < len(valid); cut++ {
		if _, err := Load(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("Load accepted a %d/%d-byte v2 truncation", cut, len(valid))
		}
	}
	if _, err := Load(bytes.NewReader(valid)); err != nil {
		t.Fatalf("Load rejected the untruncated v2 image: %v", err)
	}
	// Trailing garbage after a complete image is corruption too.
	if _, err := Load(bytes.NewReader(append(append([]byte(nil), valid...), 0))); err == nil {
		t.Fatal("Load accepted a v2 image with trailing data")
	}
}

// TestLoadFileMmap exercises the zero-copy loader end to end: map, verify,
// query-relevant reads, copy-on-write refinement, deterministic re-save,
// and the v1/mmap-off fallbacks.
func TestLoadFileMmap(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	idx := refinedIndex(t, 13, 40, 4)
	dir := t.TempDir()
	v2path := filepath.Join(dir, "index.v2")
	v1path := filepath.Join(dir, "index.v1")
	writeIndex(t, v2path, idx.Save)
	writeIndex(t, v1path, idx.SaveV1)

	mapped, err := LoadFile(v2path, LoadOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if !mapped.MmapBacked() {
		t.Fatal("LoadFile(Mmap) returned a heap index")
	}
	requireIndexEqual(t, idx, mapped)

	heap2, err := LoadFile(v2path, LoadOptions{Mmap: false})
	if err != nil {
		t.Fatal(err)
	}
	if heap2.MmapBacked() {
		t.Fatal("LoadFile(Mmap:false) returned an mmap-backed index")
	}
	requireIndexEqual(t, mapped, heap2)

	fromV1, err := LoadFile(v1path, LoadOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	if fromV1.MmapBacked() {
		t.Fatal("v1 file must fall back to the heap loader")
	}
	requireIndexEqual(t, mapped, fromV1)

	// Clone shares the mapping; commits into the clone are copy-on-write
	// (fresh heap rows replace the mapped pointers) and never leak back.
	clone := mapped.Clone()
	if clone.backing != mapped.backing || !clone.MmapBacked() {
		t.Fatal("Clone does not share the mapping")
	}
	var target graph.NodeID = -1
	for u := 0; u < clone.N(); u++ {
		if clone.states[u] != nil {
			target = graph.NodeID(u)
			break
		}
	}
	st := clone.StateSnapshot(target)
	st.T++
	clone.Commit(target, st, clone.PHatRow(target))
	if mapped.states[target].T == st.T {
		t.Fatal("commit to clone mutated the mapped original")
	}

	// A re-save of the (unmodified) mapped index reproduces the image bit
	// for bit — Save reads straight out of the mapping.
	var resaved bytes.Buffer
	if err := mapped.Save(&resaved); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(v2path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resaved.Bytes(), onDisk) {
		t.Fatal("re-save of an mmap-backed index is not bit-identical to its file")
	}
}

// TestMappingRefcount pins the unmap discipline: the mapping survives
// however many retains are outstanding and unmaps exactly when the last
// reference is released.
func TestMappingRefcount(t *testing.T) {
	if !mmapSupported {
		t.Skip("mmap unsupported on this platform")
	}
	path := filepath.Join(t.TempDir(), "img")
	if err := os.WriteFile(path, bytes.Repeat([]byte("x"), 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := mmapFile(f, 4096)
	if err != nil {
		t.Fatal(err)
	}
	m.retain()
	m.retain()
	m.release()
	if m.data == nil {
		t.Fatal("mapping released while a reference was outstanding")
	}
	m.release()
	if m.data != nil {
		t.Fatal("mapping not released at refcount zero")
	}
}

func writeIndex(t *testing.T, path string, save func(w io.Writer) error) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := save(f); err != nil {
		f.Close()
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestV2WatermarkRoundTrip checks the edit-journal watermark embedded in
// the meta block survives save/load through every loader, and that a
// pre-watermark image (104-byte legacy meta block) still loads — with
// watermark 0 and everything else intact.
func TestV2WatermarkRoundTrip(t *testing.T) {
	idx := refinedIndex(t, 13, 30, 3)
	const wm = 987654321
	idx.SetWatermark(wm)
	if c := idx.Clone(); c.Watermark() != wm {
		t.Fatalf("Clone watermark %d, want %d", c.Watermark(), wm)
	}
	if c := idx.CloneGrown(idx.N() + 2); c.Watermark() != wm {
		t.Fatalf("CloneGrown watermark %d, want %d", c.Watermark(), wm)
	}

	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	deep, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if deep.Watermark() != wm {
		t.Fatalf("deep load watermark %d, want %d", deep.Watermark(), wm)
	}
	aligned := alignedBytes(buf.Len())
	copy(aligned, buf.Bytes())
	structural, err := parseV2(aligned, false)
	if err != nil {
		t.Fatal(err)
	}
	if structural.Watermark() != wm {
		t.Fatalf("structural parse watermark %d, want %d", structural.Watermark(), wm)
	}

	legacy := stripWatermarkSection(t, buf.Bytes())
	old, err := Load(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy meta block refused: %v", err)
	}
	if old.Watermark() != 0 {
		t.Fatalf("legacy image loaded watermark %d, want 0", old.Watermark())
	}
	idx.SetWatermark(0)
	requireIndexEqual(t, idx, old)
}

// stripWatermarkSection rewrites a current v2 image into its pre-watermark
// form: the meta section shrinks back to v2MetaSizeLegacy bytes, every
// later section slides forward 8 bytes, and all checksums are recomputed —
// byte for byte what the previous release's Save emitted.
func stripWatermarkSection(t *testing.T, data []byte) []byte {
	t.Helper()
	nsec := int(binary.LittleEndian.Uint32(data[16:20]))
	headerEnd := v2HeaderEndOf(nsec)
	out := make([]byte, len(data)-8)
	copy(out, data[:headerEnd])
	binary.LittleEndian.PutUint64(out[8:], uint64(len(out)))
	for s := 0; s < nsec; s++ {
		entry := out[v2PreambleSize+s*v2TableEntry:]
		off := binary.LittleEndian.Uint64(entry[8:])
		ln := binary.LittleEndian.Uint64(entry[16:])
		newOff, newLn := off, ln
		if s == secMeta {
			newLn = v2MetaSizeLegacy
		} else {
			newOff = off - 8
		}
		binary.LittleEndian.PutUint64(entry[8:], newOff)
		binary.LittleEndian.PutUint64(entry[16:], newLn)
		copy(out[newOff:newOff+newLn], data[off:off+ln])
		binary.LittleEndian.PutUint32(entry[4:], crc32.Checksum(out[newOff:newOff+newLn], castagnoli))
	}
	binary.LittleEndian.PutUint32(out[20:], crc32.Checksum(out[v2PreambleSize:headerEnd], castagnoli))
	fileCRC := crc32.Update(crc32.Checksum(out[:24], castagnoli), castagnoli, out[28:])
	binary.LittleEndian.PutUint32(out[24:28], fileCRC)
	return out
}
