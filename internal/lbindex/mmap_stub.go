//go:build !(linux || darwin)

package lbindex

import (
	"fmt"
	"os"
)

const mmapSupported = false

func mmapFile(f *os.File, size int) (*Mapping, error) {
	return nil, fmt.Errorf("lbindex: mmap unsupported on this platform")
}

func (m *Mapping) unmap() { m.data = nil }
