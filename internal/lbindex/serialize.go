package lbindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/vecmath"
)

// Binary index format. Little-endian throughout.
//
//	magic "RTKLBIX1"
//	n u64, K u32
//	options: hubBudget u32, hubScheme u8, greedySeed i64, omega f64,
//	         bca{alpha,eta,delta f64, maxIters u32},
//	         rwr{alpha,eps f64, maxIters u32}
//	hub matrix: count u32, ids []i32,
//	            per hub: dropped f64, exactTopK [K]f64, sparse col
//	per node: tag u8 (0 hub, 1 state), state nodes: T u32, sparse R,W,S,
//	          phat [K]f64
//	refinements i64
//
// Sparse vectors serialize as nnz u32, idx []i32, val []f64.
const indexMagic = "RTKLBIX1"

type binWriter struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

func (b *binWriter) u8(v uint8) {
	if b.err != nil {
		return
	}
	b.err = b.w.WriteByte(v)
}

func (b *binWriter) u32(v uint32) {
	if b.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(b.buf[:4], v)
	_, b.err = b.w.Write(b.buf[:4])
}

func (b *binWriter) u64(v uint64) {
	if b.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(b.buf[:8], v)
	_, b.err = b.w.Write(b.buf[:8])
}

func (b *binWriter) i64(v int64)   { b.u64(uint64(v)) }
func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }

func (b *binWriter) sparse(s vecmath.Sparse) {
	b.u32(uint32(s.NNZ()))
	for _, i := range s.Idx {
		b.u32(uint32(i))
	}
	for _, v := range s.Val {
		b.f64(v)
	}
}

func (b *binWriter) floats(xs []float64) {
	for _, v := range xs {
		b.f64(v)
	}
}

type binReader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

func (b *binReader) u8() uint8 {
	if b.err != nil {
		return 0
	}
	v, err := b.r.ReadByte()
	b.err = err
	return v
}

func (b *binReader) u32() uint32 {
	if b.err != nil {
		return 0
	}
	_, b.err = io.ReadFull(b.r, b.buf[:4])
	return binary.LittleEndian.Uint32(b.buf[:4])
}

func (b *binReader) u64() uint64 {
	if b.err != nil {
		return 0
	}
	_, b.err = io.ReadFull(b.r, b.buf[:8])
	return binary.LittleEndian.Uint64(b.buf[:8])
}

func (b *binReader) i64() int64   { return int64(b.u64()) }
func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }

func (b *binReader) sparse() vecmath.Sparse {
	nnz := int(b.u32())
	if b.err != nil || nnz < 0 {
		return vecmath.Sparse{}
	}
	s := vecmath.Sparse{Idx: make([]int32, nnz), Val: make([]float64, nnz)}
	for i := range s.Idx {
		s.Idx[i] = int32(b.u32())
	}
	for i := range s.Val {
		s.Val[i] = b.f64()
	}
	return s
}

func (b *binReader) floats(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = b.f64()
	}
	return xs
}

// Save writes the index in the binary format above. All lock stripes are
// held for the duration, so the snapshot is consistent even against
// concurrent refinement commits.
func (idx *Index) Save(w io.Writer) error {
	hm := idx.HubMatrix()
	idx.lockAll()
	defer idx.unlockAll()

	bw := &binWriter{w: bufio.NewWriterSize(w, 1<<20)}
	if _, err := bw.w.WriteString(indexMagic); err != nil {
		return err
	}
	o := idx.opts
	bw.u64(uint64(idx.n))
	bw.u32(uint32(o.K))
	bw.u32(uint32(o.HubBudget))
	bw.u8(uint8(o.HubScheme))
	bw.i64(o.GreedySeed)
	bw.f64(o.Omega)
	bw.f64(o.BCA.Alpha)
	bw.f64(o.BCA.Eta)
	bw.f64(o.BCA.Delta)
	bw.u32(uint32(o.BCA.MaxIters))
	bw.f64(o.RWR.Alpha)
	bw.f64(o.RWR.Eps)
	bw.u32(uint32(o.RWR.MaxIters))

	n, hubIDs, cols, topK, dropped, _ := hm.Parts()
	if n != idx.n {
		return fmt.Errorf("lbindex: hub matrix sized for %d nodes, index has %d", n, idx.n)
	}
	bw.u32(uint32(len(hubIDs)))
	for _, h := range hubIDs {
		bw.u32(uint32(h))
	}
	for i := range hubIDs {
		bw.f64(dropped[i])
		bw.floats(topK[i])
		bw.sparse(cols[i])
	}

	for u := 0; u < idx.n; u++ {
		st := idx.states[u]
		if st == nil {
			bw.u8(0)
		} else {
			bw.u8(1)
			bw.u32(uint32(st.T))
			bw.sparse(st.R)
			bw.sparse(st.W)
			bw.sparse(st.S)
		}
		bw.floats(idx.phat[u])
	}
	bw.i64(idx.refinements.Load())
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// Load reads an index previously written by Save.
func Load(r io.Reader) (*Index, error) {
	br := &binReader{r: bufio.NewReaderSize(r, 1<<20)}
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br.r, magic); err != nil {
		return nil, fmt.Errorf("lbindex: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("lbindex: bad magic %q", magic)
	}
	n := int(br.u64())
	var o Options
	o.K = int(br.u32())
	o.HubBudget = int(br.u32())
	o.HubScheme = HubSelection(br.u8())
	o.GreedySeed = br.i64()
	o.Omega = br.f64()
	o.BCA.Alpha = br.f64()
	o.BCA.Eta = br.f64()
	o.BCA.Delta = br.f64()
	o.BCA.MaxIters = int(br.u32())
	o.RWR.Alpha = br.f64()
	o.RWR.Eps = br.f64()
	o.RWR.MaxIters = int(br.u32())
	if br.err != nil {
		return nil, fmt.Errorf("lbindex: reading header: %w", br.err)
	}
	if n <= 0 || o.K <= 0 || n > 1<<31 {
		return nil, fmt.Errorf("lbindex: implausible header n=%d K=%d", n, o.K)
	}

	hubCount := int(br.u32())
	if hubCount < 0 || hubCount > n {
		return nil, fmt.Errorf("lbindex: implausible hub count %d", hubCount)
	}
	hubIDs := make([]graph.NodeID, hubCount)
	for i := range hubIDs {
		hubIDs[i] = graph.NodeID(br.u32())
	}
	cols := make([]vecmath.Sparse, hubCount)
	topK := make([][]float64, hubCount)
	dropped := make([]float64, hubCount)
	for i := 0; i < hubCount; i++ {
		dropped[i] = br.f64()
		topK[i] = br.floats(o.K)
		cols[i] = br.sparse()
	}
	if br.err != nil {
		return nil, fmt.Errorf("lbindex: reading hub matrix: %w", br.err)
	}
	hm, err := hub.FromParts(n, hubIDs, cols, topK, dropped, o.Omega)
	if err != nil {
		return nil, err
	}

	idx := &Index{
		opts:   o,
		n:      n,
		hubs:   hm,
		phat:   make([][]float64, n),
		states: make([]*bca.State, n),
	}
	for u := 0; u < n; u++ {
		tag := br.u8()
		switch tag {
		case 0:
			if !hm.IsHub(graph.NodeID(u)) {
				return nil, fmt.Errorf("lbindex: node %d tagged hub but absent from hub matrix", u)
			}
		case 1:
			st := &bca.State{Origin: graph.NodeID(u), T: int(br.u32())}
			st.R = br.sparse()
			st.W = br.sparse()
			st.S = br.sparse()
			st.RNorm = st.R.L1()
			idx.states[u] = st
		default:
			return nil, fmt.Errorf("lbindex: node %d has unknown tag %d", u, tag)
		}
		idx.phat[u] = br.floats(o.K)
	}
	idx.refinements.Store(br.i64())
	if br.err != nil {
		return nil, fmt.Errorf("lbindex: reading nodes: %w", br.err)
	}
	if err := idx.CheckInvariants(); err != nil {
		return nil, err
	}
	return idx, nil
}
