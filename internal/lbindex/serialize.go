package lbindex

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/vecmath"
)

// Legacy binary index format v1. Little-endian throughout.
//
//	magic "RTKLBIX1"
//	n u64, K u32
//	options: hubBudget u32, hubScheme u8, greedySeed i64, omega f64,
//	         bca{alpha,eta,delta f64, maxIters u32},
//	         rwr{alpha,eps f64, maxIters u32}
//	hub matrix: count u32, ids []i32,
//	            per hub: dropped f64, exactTopK [K]f64, sparse col
//	per node: tag u8 (0 hub, 1 state), state nodes: T u32, sparse R,W,S,
//	          phat [K]f64
//	refinements i64
//
// Sparse vectors serialize as nnz u32, idx []i32, val []f64.
//
// v1 carries NO checksum: corruption that stays within plausible bounds
// loads silently. Save now writes the checksummed, mmap-able format v2
// (see format2.go); the v1 reader and writer are kept for backward
// compatibility and migration (rtkindex -rewrite).
const indexMagic = "RTKLBIX1"

type binWriter struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

func (b *binWriter) u8(v uint8) {
	if b.err != nil {
		return
	}
	b.err = b.w.WriteByte(v)
}

func (b *binWriter) u32(v uint32) {
	if b.err != nil {
		return
	}
	binary.LittleEndian.PutUint32(b.buf[:4], v)
	_, b.err = b.w.Write(b.buf[:4])
}

func (b *binWriter) u64(v uint64) {
	if b.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(b.buf[:8], v)
	_, b.err = b.w.Write(b.buf[:8])
}

func (b *binWriter) i64(v int64)   { b.u64(uint64(v)) }
func (b *binWriter) f64(v float64) { b.u64(math.Float64bits(v)) }

func (b *binWriter) sparse(s vecmath.Sparse) {
	b.u32(uint32(s.NNZ()))
	for _, i := range s.Idx {
		b.u32(uint32(i))
	}
	for _, v := range s.Val {
		b.f64(v)
	}
}

func (b *binWriter) floats(xs []float64) {
	for _, v := range xs {
		b.f64(v)
	}
}

type binReader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

// fail records the first decoding error; all subsequent reads short-circuit.
func (b *binReader) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

func (b *binReader) u8() uint8 {
	if b.err != nil {
		return 0
	}
	v, err := b.r.ReadByte()
	b.err = err
	return v
}

func (b *binReader) u32() uint32 {
	if b.err != nil {
		return 0
	}
	_, b.err = io.ReadFull(b.r, b.buf[:4])
	return binary.LittleEndian.Uint32(b.buf[:4])
}

func (b *binReader) u64() uint64 {
	if b.err != nil {
		return 0
	}
	_, b.err = io.ReadFull(b.r, b.buf[:8])
	return binary.LittleEndian.Uint64(b.buf[:8])
}

func (b *binReader) i64() int64   { return int64(b.u64()) }
func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }

// growCap bounds speculative slice pre-allocation: claimed element counts in
// a corrupt header can be enormous, so slices grow by append (memory stays
// proportional to input actually consumed) with at most this much reserved
// up front.
const growCap = 1 << 12

// sparse decodes a sparse vector over n nodes. Corrupt input must fail
// here, not panic downstream: indices are required in [0,n) and strictly
// increasing (so nnz ≤ n), and values finite and non-negative — every
// consumer scatters by index into length-n arrays and treats values as ink
// mass.
func (b *binReader) sparse(n int, what string) vecmath.Sparse {
	nnz := int(b.u32())
	if b.err != nil {
		return vecmath.Sparse{}
	}
	if nnz < 0 || nnz > n {
		b.fail("lbindex: %s: sparse nnz %d outside [0,%d]", what, nnz, n)
		return vecmath.Sparse{}
	}
	s := vecmath.Sparse{Idx: make([]int32, 0, min(nnz, growCap))}
	prev := int32(-1)
	for i := 0; i < nnz; i++ {
		v := int32(b.u32())
		if b.err != nil {
			return vecmath.Sparse{}
		}
		if v < 0 || int(v) >= n || v <= prev {
			b.fail("lbindex: %s: sparse index %d at position %d (n=%d, previous %d)", what, v, i, n, prev)
			return vecmath.Sparse{}
		}
		prev = v
		s.Idx = append(s.Idx, v)
	}
	s.Val = make([]float64, 0, len(s.Idx))
	for i := 0; i < nnz; i++ {
		x := b.f64()
		if b.err != nil {
			return vecmath.Sparse{}
		}
		if !(x >= 0) || math.IsInf(x, 0) {
			b.fail("lbindex: %s: sparse value %g at position %d not a finite non-negative", what, x, i)
			return vecmath.Sparse{}
		}
		s.Val = append(s.Val, x)
	}
	return s
}

// floats decodes n proximity values, requiring each to be a finite
// probability-mass value in [0, 1+tol].
func (b *binReader) floats(n int, what string) []float64 {
	xs := make([]float64, 0, min(n, growCap))
	for i := 0; i < n; i++ {
		x := b.f64()
		if b.err != nil {
			return nil
		}
		if !(x >= 0) || x > 1+1e-6 {
			b.fail("lbindex: %s: proximity %g at position %d outside [0,1]", what, x, i)
			return nil
		}
		xs = append(xs, x)
	}
	return xs
}

// SaveV1 writes the index in the legacy v1 format above. New images should
// use Save (format v2: checksummed, mmap-able); SaveV1 exists so tests and
// benchmarks can produce v1 images and so downgrades remain possible. The
// same locking discipline as Save applies.
func (idx *Index) SaveV1(w io.Writer) error {
	if idx.part != nil {
		return fmt.Errorf("lbindex: format v1 cannot represent a shard slice (shard %d); use Save", idx.shardID)
	}
	idx.lockAll()
	defer idx.unlockAll()
	hm := idx.HubMatrix()

	bw := &binWriter{w: bufio.NewWriterSize(w, 1<<20)}
	if _, err := bw.w.WriteString(indexMagic); err != nil {
		return err
	}
	o := idx.opts
	bw.u64(uint64(idx.n))
	bw.u32(uint32(o.K))
	bw.u32(uint32(o.HubBudget))
	bw.u8(uint8(o.HubScheme))
	bw.i64(o.GreedySeed)
	bw.f64(o.Omega)
	bw.f64(o.BCA.Alpha)
	bw.f64(o.BCA.Eta)
	bw.f64(o.BCA.Delta)
	bw.u32(uint32(o.BCA.MaxIters))
	bw.f64(o.RWR.Alpha)
	bw.f64(o.RWR.Eps)
	bw.u32(uint32(o.RWR.MaxIters))

	n, hubIDs, cols, topK, dropped, _ := hm.Parts()
	if n != idx.n {
		return fmt.Errorf("lbindex: hub matrix sized for %d nodes, index has %d", n, idx.n)
	}
	bw.u32(uint32(len(hubIDs)))
	for _, h := range hubIDs {
		bw.u32(uint32(h))
	}
	for i := range hubIDs {
		bw.f64(dropped[i])
		bw.floats(topK[i])
		bw.sparse(cols[i])
	}

	for u := 0; u < idx.n; u++ {
		st := idx.states[u]
		if st == nil {
			bw.u8(0)
		} else {
			bw.u8(1)
			bw.u32(uint32(st.T))
			bw.sparse(st.R)
			bw.sparse(st.W)
			bw.sparse(st.S)
		}
		bw.floats(idx.phat[u])
	}
	bw.i64(idx.refinements.Load())
	if bw.err != nil {
		return bw.err
	}
	return bw.w.Flush()
}

// maxPlausibleK bounds the K a Load will accept. The paper's K is 200; a
// larger claim in a header is far more likely corruption than a real index,
// and rejecting it keeps the per-node read bounded.
const maxPlausibleK = 1 << 20

// Load reads an index previously written by Save or SaveV1, dispatching on
// the magic string (v1 and v2 images both load). It is safe on truncated
// or corrupt input: every quantity that later code indexes with is
// bounds-checked, and allocation stays proportional to the input actually
// consumed (claimed element counts are never trusted with a large up-front
// make), so a bad image yields an error — never a panic, a hang, or an
// index that violates its invariants. v2 images additionally fail fast on
// any checksum mismatch; v1 images have no checksum, so only a best-effort
// finite/bounds re-check stands between a bit-flip and a silently wrong
// index — rewrite old files with rtkindex -rewrite.
func Load(r io.Reader) (*Index, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(8)
	if err != nil || len(magic) < 8 {
		return nil, fmt.Errorf("lbindex: reading magic: %w", err)
	}
	switch string(magic) {
	case indexMagic:
		return loadV1(br)
	case indexMagicV2:
		return loadV2Stream(br)
	default:
		return nil, fmt.Errorf("lbindex: bad magic %q", magic)
	}
}

// loadV1 reads the legacy v1 image whose magic br is positioned at.
func loadV1(r *bufio.Reader) (*Index, error) {
	br := &binReader{r: r}
	if _, err := r.Discard(len(indexMagic)); err != nil {
		return nil, err
	}
	n := int(br.u64())
	var o Options
	o.K = int(br.u32())
	o.HubBudget = int(br.u32())
	o.HubScheme = HubSelection(br.u8())
	o.GreedySeed = br.i64()
	o.Omega = br.f64()
	o.BCA.Alpha = br.f64()
	o.BCA.Eta = br.f64()
	o.BCA.Delta = br.f64()
	o.BCA.MaxIters = int(br.u32())
	o.RWR.Alpha = br.f64()
	o.RWR.Eps = br.f64()
	o.RWR.MaxIters = int(br.u32())
	if br.err != nil {
		return nil, fmt.Errorf("lbindex: reading header: %w", br.err)
	}
	if n <= 0 || n > 1<<31 || o.K <= 0 || o.K > maxPlausibleK {
		return nil, fmt.Errorf("lbindex: implausible header n=%d K=%d", n, o.K)
	}
	// A saved index was built from validated options; a header that fails
	// validation (NaN thresholds, mismatched alphas, …) is corruption.
	if err := o.Validate(); err != nil {
		return nil, fmt.Errorf("lbindex: corrupt header options: %w", err)
	}

	hubCount := int(br.u32())
	if br.err != nil {
		return nil, fmt.Errorf("lbindex: reading hub count: %w", br.err)
	}
	if hubCount < 0 || hubCount > n {
		return nil, fmt.Errorf("lbindex: implausible hub count %d", hubCount)
	}
	hubIDs := make([]graph.NodeID, 0, min(hubCount, growCap))
	isHub := make(map[graph.NodeID]bool, min(hubCount, growCap))
	for i := 0; i < hubCount; i++ {
		h := graph.NodeID(br.u32())
		if br.err != nil {
			return nil, fmt.Errorf("lbindex: reading hub ids: %w", br.err)
		}
		if int(h) < 0 || int(h) >= n {
			return nil, fmt.Errorf("lbindex: hub id %d out of range [0,%d)", h, n)
		}
		if i > 0 && h <= hubIDs[i-1] {
			return nil, fmt.Errorf("lbindex: hub ids not strictly ascending at position %d", i)
		}
		hubIDs = append(hubIDs, h)
		isHub[h] = true
	}
	cols := make([]vecmath.Sparse, 0, min(hubCount, growCap))
	topK := make([][]float64, 0, min(hubCount, growCap))
	dropped := make([]float64, 0, min(hubCount, growCap))
	for i := 0; i < hubCount; i++ {
		d := br.f64()
		if !(d >= 0) || math.IsInf(d, 0) {
			br.fail("lbindex: hub %d dropped mass %g not a finite non-negative", i, d)
		}
		dropped = append(dropped, d)
		topK = append(topK, br.floats(o.K, "hub top-K"))
		cols = append(cols, br.sparse(n, "hub column"))
		if br.err != nil {
			return nil, fmt.Errorf("lbindex: reading hub matrix: %w", br.err)
		}
	}

	phat := make([][]float64, 0, min(n, growCap))
	states := make([]*bca.State, 0, min(n, growCap))
	for u := 0; u < n; u++ {
		tag := br.u8()
		switch tag {
		case 0:
			if br.err == nil && !isHub[graph.NodeID(u)] {
				return nil, fmt.Errorf("lbindex: node %d tagged hub but absent from hub matrix", u)
			}
			states = append(states, nil)
		case 1:
			st := &bca.State{Origin: graph.NodeID(u), T: int(br.u32())}
			st.R = br.sparse(n, "state R")
			st.W = br.sparse(n, "state W")
			st.S = br.sparse(n, "state S")
			st.RNorm = st.R.L1()
			// S holds ink parked at hubs; a non-hub index would be read out
			// of the hub matrix's dropped-mass and column arrays downstream.
			for _, h := range st.S.Idx {
				if !isHub[graph.NodeID(h)] {
					br.fail("lbindex: node %d parks ink at non-hub %d", u, h)
					break
				}
			}
			states = append(states, st)
		default:
			if br.err == nil {
				return nil, fmt.Errorf("lbindex: node %d has unknown tag %d", u, tag)
			}
		}
		phat = append(phat, br.floats(o.K, "phat"))
		if br.err != nil {
			return nil, fmt.Errorf("lbindex: reading nodes: %w", br.err)
		}
	}
	refinements := br.i64()
	if br.err != nil {
		return nil, fmt.Errorf("lbindex: reading nodes: %w", br.err)
	}

	hm, err := hub.FromParts(n, hubIDs, cols, topK, dropped, o.Omega)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		opts:   o,
		n:      n,
		hubs:   hm,
		phat:   phat,
		states: states,
	}
	idx.refinements.Store(refinements)
	// Best effort: v1 has no checksum, so this re-check (together with the
	// finite/bounds validation above) is all that stands between in-bounds
	// corruption and silently wrong answers.
	if err := idx.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("lbindex: v1 image fails invariant re-check (v1 has no checksum; the file is likely corrupt — rewrite with rtkindex -rewrite): %w", err)
	}
	return idx, nil
}
