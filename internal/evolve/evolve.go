// Package evolve implements the paper's stated future work (§7): reverse
// top-k search on evolving graphs. "The key challenge is how to maintain
// the index incrementally" — this package provides that maintenance:
//
//  1. ApplyEdits rebuilds the (immutable) graph with edge insertions,
//     deletions and weight changes.
//  2. AffectedOrigins bounds the blast radius of an edit: changing the
//     out-edges of source node s changes column s of the transition
//     matrix, and the proximity vector p_w of origin w changes only in
//     proportion to how much random-walk mass w sends through s — i.e.
//     p_w(s). One PMPN run per edited source (Theorem 2) yields these
//     quantities for ALL origins exactly, and origins with p_w(s) below a
//     staleness threshold θ keep their (slightly stale) index entries.
//  3. Refresh recomputes the hub proximity matrix on the new graph and
//     re-runs the indexing BCA for every affected origin, committing the
//     results into the existing index.
//
// With θ = 0 the refresh is equivalent to a full rebuild (every origin
// that can reach an edited source is refreshed); θ > 0 trades accuracy on
// far-away origins for speed, with the error vanishing as p_w(s) → 0.
package evolve

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/lbindex"
	"repro/internal/rwr"
)

// Edit describes one edge mutation. Weight is used for insertions into
// weighted graphs (1 if zero); Remove deletes the edge if present.
type Edit struct {
	From, To graph.NodeID
	Weight   float64
	Remove   bool
}

// ApplyEdits rebuilds the graph with the edits applied, in order. Node
// identifiers are preserved (the node count can grow if an edit names a
// new node). The dangling policy handles sources whose last out-edge was
// removed. Removing a non-existent edge is an error, as is inserting a
// duplicate.
func ApplyEdits(g *graph.Graph, edits []Edit, policy graph.DanglingPolicy) (*graph.Graph, error) {
	type key struct{ u, v graph.NodeID }
	removed := make(map[key]bool)
	added := make(map[key]float64)
	for _, e := range edits {
		k := key{e.From, e.To}
		if e.Remove {
			if added[k] != 0 {
				delete(added, k)
				continue
			}
			if int(e.From) >= g.N() || g.EdgeWeight(e.From, e.To) == 0 || removed[k] {
				return nil, fmt.Errorf("evolve: removing non-existent edge %d→%d", e.From, e.To)
			}
			removed[k] = true
			continue
		}
		w := e.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return nil, fmt.Errorf("evolve: negative weight on edge %d→%d", e.From, e.To)
		}
		exists := int(e.From) < g.N() && int(e.To) < g.N() && g.EdgeWeight(e.From, e.To) != 0
		if exists && !removed[k] {
			return nil, fmt.Errorf("evolve: inserting duplicate edge %d→%d (remove it first to change its weight)", e.From, e.To)
		}
		// Note: a prior removal of the same edge stays in force — the
		// original edge is skipped during the rebuild and the new weight
		// inserted — which is exactly how weight changes are expressed.
		added[k] = w
	}

	b := graph.NewBuilder(g.N())
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		for i, v := range nbrs {
			if removed[key{u, v}] {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			b.AddWeightedEdge(u, v, w)
		}
	}
	for k, w := range added {
		b.AddWeightedEdge(k.u, k.v, w)
	}
	g2, _, err := b.Build(policy)
	return g2, err
}

// Sources returns the distinct source nodes whose transition-matrix column
// the edits change, sorted ascending.
func Sources(edits []Edit) []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, e := range edits {
		if !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AffectedOrigins returns every origin w with p_w(s) ≥ θ for at least one
// edited source s, computed exactly on the NEW graph with one PMPN run per
// source. θ = 0 returns every origin that reaches any edited source.
func AffectedOrigins(g2 *graph.Graph, sources []graph.NodeID, theta float64, p rwr.Params) ([]graph.NodeID, error) {
	if theta < 0 {
		return nil, fmt.Errorf("evolve: negative staleness threshold %g", theta)
	}
	affected := make([]bool, g2.N())
	for _, s := range sources {
		if int(s) < 0 || int(s) >= g2.N() {
			return nil, fmt.Errorf("evolve: source %d out of range [0,%d)", s, g2.N())
		}
		res, err := rwr.ProximityTo(g2, s, p)
		if err != nil {
			return nil, err
		}
		for w, v := range res.Vector {
			if v > theta || (theta == 0 && v > 0) {
				affected[w] = true
			}
		}
	}
	var out []graph.NodeID
	for w, a := range affected {
		if a {
			out = append(out, graph.NodeID(w))
		}
	}
	return out, nil
}

// Stats reports what a Refresh did.
type Stats struct {
	// Affected is the number of origins re-indexed.
	Affected int
	// HubsRebuilt is the hub count of the rebuilt hub matrix.
	HubsRebuilt int
	// Elapsed is total wall-clock time.
	Elapsed time.Duration
}

// RefreshSnapshot is the snapshot-isolated variant of Refresh: instead of
// committing refreshed origins into idx, it clones the index (an O(n)
// pointer copy — see lbindex.Index.Clone), refreshes the clone against the
// edited graph and returns it, leaving idx untouched. Readers keep serving
// from the old (graph, index) pair for the whole maintenance pass; the
// caller publishes the returned index (paired with g2) atomically when it
// is complete. The serving daemon (internal/serve) builds its epoch-swap
// layer on exactly this call.
func RefreshSnapshot(g2 *graph.Graph, idx *lbindex.Index, affected []graph.NodeID) (*lbindex.Index, Stats, error) {
	if g2.N() != idx.N() {
		return nil, Stats{}, fmt.Errorf("evolve: index built for %d nodes, edited graph has %d (rebuild instead)", idx.N(), g2.N())
	}
	next := idx.Clone()
	stats, err := Refresh(g2, next, affected)
	if err != nil {
		return nil, Stats{}, err
	}
	return next, stats, nil
}

// Refresh brings an index up to date with an edited graph: it recomputes
// the hub proximity vectors on the new graph (hub vectors are global
// quantities; with |H| ≪ n this is the cheap part) and re-runs the
// indexing BCA for every affected origin, committing results in place.
// Unaffected origins keep their states — exactly stale by less than the
// refresh threshold used to compute `affected`.
//
// Hub IDENTITY is preserved: existing per-node states park ink at the
// current hubs, so swapping hub membership would orphan that ink. Any node
// set is a valid hub set (hubs are merely nodes with exact precomputed
// vectors), so keeping the old set is sound; re-optimizing the selection
// for a drifted degree distribution requires a full rebuild.
//
// The index must have been built for a graph with the same node count.
func Refresh(g2 *graph.Graph, idx *lbindex.Index, affected []graph.NodeID) (Stats, error) {
	start := time.Now()
	if g2.N() != idx.N() {
		return Stats{}, fmt.Errorf("evolve: index built for %d nodes, edited graph has %d (rebuild instead)", idx.N(), g2.N())
	}
	opts := idx.Options()
	hubIDs := idx.HubMatrix().Hubs()
	hm, err := hub.Build(g2, hubIDs, hub.BuildOptions{
		Omega:   opts.Omega,
		RWR:     opts.RWR,
		TopK:    opts.K,
		Workers: opts.Workers,
	})
	if err != nil {
		return Stats{}, err
	}
	if err := idx.SetHubMatrix(hm); err != nil {
		return Stats{}, err
	}
	// Hub vectors changed, so every hub's exact top-K column is refreshed
	// unconditionally (|H| ≪ n keeps this cheap).
	for _, h := range hubIDs {
		idx.CommitHub(h, hm.ExactTopK(h))
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	jobs := make(chan graph.NodeID)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := bca.NewWorkspace(g2.N())
			for u := range jobs {
				if hm.IsHub(u) {
					continue // hub columns were refreshed above
				}
				st, err := bca.Run(g2, u, hm, opts.BCA, ws)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("evolve: origin %d: %w", u, err)
					}
					mu.Unlock()
					continue
				}
				idx.Commit(u, st, bca.TopK(st, hm, ws, opts.K))
			}
		}()
	}
	for _, u := range affected {
		jobs <- u
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return Stats{}, firstErr
	}
	return Stats{
		Affected:    len(affected),
		HubsRebuilt: hm.NumHubs(),
		Elapsed:     time.Since(start),
	}, nil
}
