// Package evolve implements the paper's stated future work (§7): reverse
// top-k search on evolving graphs. "The key challenge is how to maintain
// the index incrementally" — this package provides that maintenance, at
// two granularities:
//
//  1. Graph: ApplyEdits rebuilds the immutable CSR from scratch (O(N+M),
//     the reference semantics), while graph.Overlay.Apply realizes the
//     same edit batch as a delta in O(edits). The differential tests in
//     this package hold the two equal.
//  2. Index: AffectedNodes bounds the blast radius of an edit batch:
//     changing the out-edges of source node s changes column s of the
//     transition matrix, and the proximity vector p_w of origin w changes
//     only in proportion to how much random-walk mass w sends through s —
//     i.e. p_w(s). One PMPN run per edited source (Theorem 2) yields these
//     quantities for ALL origins exactly; origins with p_w(s) below a
//     staleness threshold θ keep their (slightly stale) index entries.
//     The same quantity classifies hubs: a hub vector p_h changes only if
//     p_h(s) > 0 for some edited source, so RefreshPartial recomputes only
//     the affected hubs' proximity vectors and reuses the rest bit for
//     bit.
//
// With θ = 0 a refresh is equivalent to a full rebuild (every origin that
// can reach an edited source is refreshed); θ > 0 trades accuracy on
// far-away origins for speed, with the error vanishing as p_w(s) → 0.
// The serving daemon (internal/serve) composes these pieces into its
// asynchronous maintenance pipeline: overlay apply → affected-set
// computation → partial refresh of an index clone → epoch publish.
package evolve

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/hub"
	"repro/internal/lbindex"
	"repro/internal/rwr"
)

// Edit describes one edge mutation. Weight is used for insertions into
// weighted graphs (1 if zero); Remove deletes the edge if present. It is
// an alias of graph.EdgeEdit so batches flow between the rebuild path here
// and graph.Overlay.Apply without conversion.
type Edit = graph.EdgeEdit

// ApplyEdits rebuilds the graph with the edits applied, in order. Node
// identifiers are preserved (the node count can grow if an edit names a
// new node). The dangling policy handles sources whose last out-edge was
// removed. Removing a non-existent edge is an error, as is inserting a
// duplicate.
//
// This is the O(N+M) reference implementation; graph.Overlay.Apply applies
// the same batch as an O(edits) delta with identical semantics (under the
// self-loop policy) and is what the serving pipeline uses.
func ApplyEdits(g *graph.Graph, edits []Edit, policy graph.DanglingPolicy) (*graph.Graph, error) {
	type key struct{ u, v graph.NodeID }
	removed := make(map[key]bool)
	added := make(map[key]float64)
	for _, e := range edits {
		k := key{e.From, e.To}
		if e.Remove {
			if added[k] != 0 {
				delete(added, k)
				continue
			}
			if int(e.From) >= g.N() || g.EdgeWeight(e.From, e.To) == 0 || removed[k] {
				return nil, fmt.Errorf("evolve: removing non-existent edge %d→%d", e.From, e.To)
			}
			removed[k] = true
			continue
		}
		w := e.Weight
		if w == 0 {
			w = 1
		}
		if w < 0 {
			return nil, fmt.Errorf("evolve: negative weight on edge %d→%d", e.From, e.To)
		}
		if w < graph.MinNormalWeight {
			// Mirror graph.Overlay.Apply (and graph.Builder): a subnormal
			// weight can sum into a subnormal out-weight normalizer whose
			// reciprocal overflows to +Inf and NaN-poisons proximity scores.
			return nil, fmt.Errorf("evolve: subnormal weight %g on edge %d→%d (minimum %g)", w, e.From, e.To, graph.MinNormalWeight)
		}
		exists := int(e.From) < g.N() && int(e.To) < g.N() && g.EdgeWeight(e.From, e.To) != 0
		if exists && !removed[k] {
			return nil, fmt.Errorf("evolve: inserting duplicate edge %d→%d (remove it first to change its weight)", e.From, e.To)
		}
		// Note: a prior removal of the same edge stays in force — the
		// original edge is skipped during the rebuild and the new weight
		// inserted — which is exactly how weight changes are expressed.
		added[k] = w
	}

	b := graph.NewBuilder(g.N())
	for u := graph.NodeID(0); int(u) < g.N(); u++ {
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		for i, v := range nbrs {
			if removed[key{u, v}] {
				continue
			}
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			b.AddWeightedEdge(u, v, w)
		}
	}
	for k, w := range added {
		b.AddWeightedEdge(k.u, k.v, w)
	}
	g2, _, err := b.Build(policy)
	return g2, err
}

// Sources returns the distinct source nodes whose transition-matrix column
// the edits change, sorted ascending.
func Sources(edits []Edit) []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	var out []graph.NodeID
	for _, e := range edits {
		if !seen[e.From] {
			seen[e.From] = true
			out = append(out, e.From)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AffectedNodes returns, for every node w of the NEW graph, whether
// p_w(s) ≥ θ for at least one edited source s — computed exactly with one
// PMPN run per source. θ = 0 flags every node that reaches any edited
// source. The returned mask drives both origin refreshes (every flagged
// non-hub origin is re-indexed) and partial hub refreshes (every flagged
// hub's proximity vector is recomputed); unflagged nodes keep their index
// entries and hub vectors untouched.
func AffectedNodes[G graph.View](g2 G, sources []graph.NodeID, theta float64, p rwr.Params) ([]bool, error) {
	if theta < 0 {
		return nil, fmt.Errorf("evolve: negative staleness threshold %g", theta)
	}
	affected := make([]bool, g2.N())
	for _, s := range sources {
		if int(s) < 0 || int(s) >= g2.N() {
			return nil, fmt.Errorf("evolve: source %d out of range [0,%d)", s, g2.N())
		}
		res, err := rwr.ProximityTo(g2, s, p)
		if err != nil {
			return nil, err
		}
		for w, v := range res.Vector {
			if v > theta || (theta == 0 && v > 0) {
				affected[w] = true
			}
		}
	}
	return affected, nil
}

// AffectedOrigins returns every origin w with p_w(s) ≥ θ for at least one
// edited source s, sorted ascending. See AffectedNodes.
func AffectedOrigins[G graph.View](g2 G, sources []graph.NodeID, theta float64, p rwr.Params) ([]graph.NodeID, error) {
	affected, err := AffectedNodes(g2, sources, theta, p)
	if err != nil {
		return nil, err
	}
	var out []graph.NodeID
	for w, a := range affected {
		if a {
			out = append(out, graph.NodeID(w))
		}
	}
	return out, nil
}

// Stats reports what a refresh did.
type Stats struct {
	// Affected is the number of origins re-indexed.
	Affected int
	// HubsRebuilt is the number of hub proximity vectors recomputed —
	// every hub for a full Refresh, only the affected ones for
	// RefreshPartial.
	HubsRebuilt int
	// Elapsed is total wall-clock time.
	Elapsed time.Duration
}

// RefreshSnapshot is the snapshot-isolated variant of Refresh: instead of
// committing refreshed origins into idx, it clones the index (an O(n)
// pointer copy — see lbindex.Index.Clone), refreshes the clone against the
// edited graph and returns it, leaving idx untouched. Readers keep serving
// from the old (graph, index) pair for the whole maintenance pass; the
// caller publishes the returned index (paired with g2) atomically when it
// is complete. The serving daemon (internal/serve) builds its epoch-swap
// layer on exactly this call (with RefreshPartial underneath).
func RefreshSnapshot[G graph.View](g2 G, idx *lbindex.Index, affected []graph.NodeID) (*lbindex.Index, Stats, error) {
	if g2.N() != idx.N() {
		return nil, Stats{}, fmt.Errorf("evolve: index built for %d nodes, edited graph has %d (rebuild instead)", idx.N(), g2.N())
	}
	next := idx.Clone()
	stats, err := Refresh(g2, next, affected)
	if err != nil {
		return nil, Stats{}, err
	}
	return next, stats, nil
}

// Refresh brings an index up to date with an edited graph: it recomputes
// EVERY hub proximity vector on the new graph and re-runs the indexing BCA
// for every affected origin, committing results in place. Unaffected
// origins keep their states — exactly stale by less than the refresh
// threshold used to compute `affected`. RefreshPartial is the cheaper
// variant that also restricts the hub recomputation to affected hubs.
//
// Hub IDENTITY is preserved: existing per-node states park ink at the
// current hubs, so swapping hub membership would orphan that ink. Any node
// set is a valid hub set (hubs are merely nodes with exact precomputed
// vectors), so keeping the old set is sound; re-optimizing the selection
// for a drifted degree distribution requires a full rebuild.
//
// The index must have been built for a graph with the same node count.
func Refresh[G graph.View](g2 G, idx *lbindex.Index, affected []graph.NodeID) (Stats, error) {
	return RefreshPartial(g2, idx, affected, idx.HubMatrix().Hubs())
}

// RefreshPartial is Refresh restricted to a known blast radius on the hub
// side as well: only the proximity vectors of affectedHubs are recomputed
// (and only their exact top-K columns re-committed); every other hub's
// rounded column is reused bit for bit (see hub.Rebuild for why that is
// sound). affectedHubs must be hub nodes; affected origins that are hubs
// are skipped as before.
//
// Unlike Refresh, the graph may have GROWN relative to the index: pass an
// index pre-sized with lbindex.CloneGrown and list every new node in
// `affected` so its fresh BCA state is committed here.
func RefreshPartial[G graph.View](g2 G, idx *lbindex.Index, affected, affectedHubs []graph.NodeID) (Stats, error) {
	start := time.Now()
	if g2.N() != idx.N() {
		return Stats{}, fmt.Errorf("evolve: index built for %d nodes, edited graph has %d (grow the clone first)", idx.N(), g2.N())
	}
	opts := idx.Options()
	hm, err := hub.Rebuild(g2, idx.HubMatrix(), affectedHubs, hub.BuildOptions{
		Omega:   opts.Omega,
		RWR:     opts.RWR,
		TopK:    opts.K,
		Workers: opts.Workers,
	})
	if err != nil {
		return Stats{}, err
	}
	if err := idx.SetHubMatrix(hm); err != nil {
		return Stats{}, err
	}
	// Only recomputed hub vectors can change their exact top-K column.
	for _, h := range affectedHubs {
		idx.CommitHub(h, hm.ExactTopK(h))
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	jobs := make(chan graph.NodeID)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := bca.NewWorkspace(g2.N())
			for u := range jobs {
				if hm.IsHub(u) {
					continue // hub columns were refreshed above
				}
				if !idx.Owns(u) {
					// Shard slices refresh only the rows they own; the
					// same batch reaches every shard, and each re-indexes
					// its own partition (hubs, replicated, refresh
					// everywhere via affectedHubs above).
					continue
				}
				st, err := bca.Run(g2, u, hm, opts.BCA, ws)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("evolve: origin %d: %w", u, err)
					}
					mu.Unlock()
					continue
				}
				idx.Commit(u, st, bca.TopK(st, hm, ws, opts.K))
			}
		}()
	}
	for _, u := range affected {
		jobs <- u
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return Stats{}, firstErr
	}
	return Stats{
		Affected:    len(affected),
		HubsRebuilt: len(affectedHubs),
		Elapsed:     time.Since(start),
	}, nil
}
