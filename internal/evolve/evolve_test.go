package evolve

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/rwr"
	"repro/internal/workload"
)

func buildWeb(t *testing.T, n int) *graph.Graph {
	t.Helper()
	g, err := gen.WebGraph(n, 19)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func buildIdx(t *testing.T, g *graph.Graph) *lbindex.Index {
	t.Helper()
	opts := lbindex.DefaultOptions()
	opts.K = 10
	opts.HubBudget = 5
	opts.Omega = 0
	opts.Workers = 2
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestApplyEditsAddRemove(t *testing.T) {
	g, err := graph.FromEdges(4, [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 0}, {3, 0}}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := ApplyEdits(g, []Edit{
		{From: 0, To: 2},               // add
		{From: 1, To: 2, Remove: true}, // remove
	}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasEdge(0, 2) {
		t.Error("added edge missing")
	}
	if g2.HasEdge(1, 2) {
		t.Error("removed edge still present")
	}
	// Node 1 lost its only out-edge → self-loop policy kicks in.
	if !g2.HasEdge(1, 1) {
		t.Error("dangling policy not applied after removal")
	}
	if err := g2.Validate(); err != nil {
		t.Error(err)
	}
}

func TestApplyEditsErrors(t *testing.T) {
	g, err := graph.FromEdges(3, [][2]graph.NodeID{{0, 1}, {1, 0}, {2, 0}}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyEdits(g, []Edit{{From: 0, To: 2, Remove: true}}, graph.DanglingSelfLoop); err == nil {
		t.Error("want error removing absent edge")
	}
	if _, err := ApplyEdits(g, []Edit{{From: 0, To: 1}}, graph.DanglingSelfLoop); err == nil {
		t.Error("want error adding duplicate edge")
	}
	if _, err := ApplyEdits(g, []Edit{{From: 0, To: 2, Weight: -1}}, graph.DanglingSelfLoop); err == nil {
		t.Error("want error for negative weight")
	}
	// Remove-then-add changes a weight legally.
	g2, err := ApplyEdits(g, []Edit{
		{From: 0, To: 1, Remove: true},
		{From: 0, To: 1, Weight: 3},
	}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if w := g2.EdgeWeight(0, 1); w != 3 {
		t.Errorf("weight change failed: %g", w)
	}
}

func TestSources(t *testing.T) {
	edits := []Edit{{From: 5, To: 1}, {From: 2, To: 3}, {From: 5, To: 9, Remove: true}}
	got := Sources(edits)
	if !reflect.DeepEqual(got, []graph.NodeID{2, 5}) {
		t.Errorf("Sources = %v", got)
	}
}

func TestAffectedOriginsThreshold(t *testing.T) {
	g := buildWeb(t, 200)
	p := rwr.DefaultParams()
	all, err := AffectedOrigins(g, []graph.NodeID{7}, 0, p)
	if err != nil {
		t.Fatal(err)
	}
	some, err := AffectedOrigins(g, []graph.NodeID{7}, 1e-3, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(some) > len(all) {
		t.Errorf("threshold grew the affected set: %d > %d", len(some), len(all))
	}
	if len(some) == 0 {
		t.Error("no origins above threshold; node 7 should matter to someone")
	}
	if _, err := AffectedOrigins(g, []graph.NodeID{7}, -1, p); err == nil {
		t.Error("want threshold error")
	}
	if _, err := AffectedOrigins(g, []graph.NodeID{999}, 0, p); err == nil {
		t.Error("want range error")
	}
}

// TestRefreshTheta0MatchesRebuild is the central correctness property:
// after edits, a θ=0 refresh must answer queries exactly like an index
// built from scratch on the edited graph (both equal brute force).
func TestRefreshTheta0MatchesRebuild(t *testing.T) {
	g := buildWeb(t, 150)
	idx := buildIdx(t, g)

	edits := []Edit{
		{From: 3, To: 140},
		{From: 77, To: 5},
		{From: g.OutNeighbors(10)[0], To: 10, Remove: false},
	}
	// Make the last edit valid: add an edge that does not exist yet.
	edits[2] = Edit{From: 10, To: findMissingTarget(g, 10)}

	g2, err := ApplyEdits(g, edits, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	affected, err := AffectedOrigins(g2, Sources(edits), 0, idx.Options().RWR)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Refresh(g2, idx, affected)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Affected != len(affected) || stats.HubsRebuilt == 0 {
		t.Errorf("stats wrong: %+v", stats)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	eng, err := core.NewEngine(g2, idx, true)
	if err != nil {
		t.Fatal(err)
	}
	p := idx.Options().RWR
	queries, err := workload.Queries(g2.N(), 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		got, _, err := eng.Query(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.BruteForce(g2, q, 5, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("q=%d: refreshed index answers %v, brute force %v", q, got, want)
		}
	}
}

// TestRefreshSnapshotIsolation checks the snapshot-producing refresh:
// the returned index answers brute-force-exact queries on the edited
// graph, while the ORIGINAL index is bit-for-bit untouched — same hub
// matrix, same p̂ rows, same refinement counter, same answers on the old
// graph — which is the property the serving daemon's epoch swap relies on.
func TestRefreshSnapshotIsolation(t *testing.T) {
	g := buildWeb(t, 150)
	idx := buildIdx(t, g)

	edits := []Edit{
		{From: 3, To: findMissingTarget(g, 3)},
		{From: 77, To: findMissingTarget(g, 77)},
	}
	g2, err := ApplyEdits(g, edits, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	affected, err := AffectedOrigins(g2, Sources(edits), 0, idx.Options().RWR)
	if err != nil {
		t.Fatal(err)
	}
	if len(affected) == 0 {
		t.Fatal("edits affected no origins; test is vacuous")
	}

	// Fingerprint the original index.
	queries, err := workload.Queries(g.N(), 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	engOld, err := core.NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	oldAnswers := make([][]graph.NodeID, len(queries))
	for i, q := range queries {
		oldAnswers[i], _, err = engOld.Query(q, 5)
		if err != nil {
			t.Fatal(err)
		}
	}
	oldHub := idx.HubMatrix()
	oldRefinements := idx.Refinements()
	oldRows := make([][]float64, len(affected))
	for i, u := range affected {
		oldRows[i] = idx.PHatRow(u)
	}

	next, stats, err := RefreshSnapshot(g2, idx, affected)
	if err != nil {
		t.Fatal(err)
	}
	if next == idx {
		t.Fatal("RefreshSnapshot returned the input index")
	}
	if stats.Affected != len(affected) {
		t.Errorf("stats report %d affected, want %d", stats.Affected, len(affected))
	}

	// The original is untouched.
	if idx.HubMatrix() != oldHub {
		t.Error("RefreshSnapshot swapped the original's hub matrix")
	}
	if got := idx.Refinements(); got != oldRefinements {
		t.Errorf("original's refinement counter moved %d → %d", oldRefinements, got)
	}
	for i, u := range affected {
		if !reflect.DeepEqual(idx.PHatRow(u), oldRows[i]) {
			t.Fatalf("p̂ row of affected node %d changed in the original", u)
		}
	}
	for i, q := range queries {
		ans, _, err := engOld.Query(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ans, oldAnswers[i]) {
			t.Fatalf("old pair's answer for q=%d changed after RefreshSnapshot", q)
		}
	}

	// The new pair is brute-force exact on the edited graph.
	if err := next.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	engNew, err := core.NewEngine(g2, next, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		got, _, err := engNew.Query(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.BruteForce(g2, q, 5, next.Options().RWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("q=%d: snapshot index answers %v, brute force %v", q, got, want)
		}
	}
}

func findMissingTarget(g *graph.Graph, u graph.NodeID) graph.NodeID {
	for v := graph.NodeID(0); int(v) < g.N(); v++ {
		if v != u && !g.HasEdge(u, v) {
			return v
		}
	}
	panic("node has edges to everyone")
}

func TestRefreshThresholdedStaysAccurate(t *testing.T) {
	g := buildWeb(t, 150)
	idx := buildIdx(t, g)
	edits := []Edit{{From: 42, To: findMissingTarget(g, 42)}}
	g2, err := ApplyEdits(g, edits, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	// Refresh only origins that send ≥ 1e-5 of their walk mass through
	// the edited source.
	affected, err := AffectedOrigins(g2, Sources(edits), 1e-5, idx.Options().RWR)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refresh(g2, idx, affected); err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(g2, idx, true)
	if err != nil {
		t.Fatal(err)
	}
	p := idx.Options().RWR
	var jSum float64
	queries, err := workload.Queries(g2.N(), 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		got, _, err := eng.Query(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.BruteForce(g2, q, 5, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		jSum += workload.Jaccard(got, want)
	}
	if avg := jSum / 10; avg < 0.95 {
		t.Errorf("thresholded refresh too inaccurate: avg Jaccard %.3f", avg)
	}
}

func TestRefreshRejectsGrownGraph(t *testing.T) {
	g := buildWeb(t, 100)
	idx := buildIdx(t, g)
	g2, err := ApplyEdits(g, []Edit{{From: 0, To: 100}}, graph.DanglingSelfLoop) // new node
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Refresh(g2, idx, nil); err == nil {
		t.Error("want node-count error")
	}
}

// TestRefreshOverMmapBackedIndex runs the full maintenance pipeline over an
// index served zero-copy from an mmap'd (read-only) file: the partial
// refresh must replace rows copy-on-write — any in-place write into a
// mapped slab would fault — and the refreshed clone must answer exactly
// like a refresh of the same index loaded onto the heap.
func TestRefreshOverMmapBackedIndex(t *testing.T) {
	g := buildWeb(t, 120)
	idx := buildIdx(t, g)
	path := filepath.Join(t.TempDir(), "index.v2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Save(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	mapped, err := lbindex.LoadFile(path, lbindex.LoadOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	heap, err := lbindex.LoadFile(path, lbindex.LoadOptions{Mmap: false})
	if err != nil {
		t.Fatal(err)
	}
	if mapped.MmapBacked() == heap.MmapBacked() {
		t.Skip("mmap unavailable; nothing to compare")
	}

	edits := []Edit{{From: 3, To: 7}, {From: 40, To: 2}}
	if nbrs := g.OutNeighbors(7); len(nbrs) > 1 {
		edits = append(edits, Edit{From: 7, To: nbrs[0], Remove: true})
	}
	g2, err := ApplyEdits(g, edits, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	sources := Sources(edits)
	for _, base := range []*lbindex.Index{mapped, heap} {
		affected, err := AffectedNodes(g2, sources, 0, base.Options().RWR)
		if err != nil {
			t.Fatal(err)
		}
		hm := base.HubMatrix()
		var origins, hubs []graph.NodeID
		for u, a := range affected {
			if !a {
				continue
			}
			if hm.IsHub(graph.NodeID(u)) {
				hubs = append(hubs, graph.NodeID(u))
			} else {
				origins = append(origins, graph.NodeID(u))
			}
		}
		next := base.Clone()
		if _, err := RefreshPartial(g2, next, origins, hubs); err != nil {
			t.Fatal(err)
		}
		if err := next.CheckInvariants(); err != nil {
			t.Fatalf("refreshed clone fails invariants: %v", err)
		}
		eng, err := core.NewEngine(g2, next, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []graph.NodeID{0, 3, 7, 40, 99} {
			res, _, err := eng.Query(q, 5)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.BruteForce(g2, q, 5, base.Options().RWR, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res, want) {
				t.Fatalf("post-refresh q=%d (mmap=%v): got %v want %v", q, base.MmapBacked(), res, want)
			}
		}
	}
	// The mapped base index itself must be untouched by the refresh.
	if err := mapped.CheckInvariants(); err != nil {
		t.Fatalf("mapped base index mutated by snapshot refresh: %v", err)
	}
}
