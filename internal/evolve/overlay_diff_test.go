package evolve

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/rwr"
)

// This file holds the differential suite between the two edit-application
// implementations: the O(N+M) rebuild (ApplyEdits, the reference
// semantics) and the O(edits) delta (graph.Overlay.Apply, what the serving
// pipeline uses). Over random graphs and random edit sequences the two
// must agree on every observable: adjacency, weights, normalizers, error
// behavior, the transition operators bit for bit, and the CSR produced by
// compaction.

// canonicalDump renders a view as a deterministic text form — one line per
// node with out/in adjacency and weights, plus header counts. Two views
// with equal dumps are byte-equivalent for every consumer in this
// repository (all access flows through the View surface).
func canonicalDump(v graph.View) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d\n", v.N(), v.M())
	for u := graph.NodeID(0); int(u) < v.N(); u++ {
		fmt.Fprintf(&b, "%d tw=%b out", u, v.TotalOutWeight(u))
		ws := v.OutWeightsOf(u)
		for i, x := range v.OutNeighbors(u) {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			fmt.Fprintf(&b, " %d:%b", x, w)
		}
		b.WriteString(" in")
		iws := v.InWeightsOf(u)
		for i, x := range v.InNeighbors(u) {
			w := 1.0
			if iws != nil {
				w = iws[i]
			}
			fmt.Fprintf(&b, " %d:%b", x, w)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func diffTestGraph(t testing.TB, n int, seed int64, weighted bool) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		u, v := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
		if weighted {
			b.AddWeightedEdge(u, v, 0.5+rng.Float64()*3)
		} else {
			b.AddEdge(u, v)
		}
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomBatch draws a batch of edits against the current view: removals of
// existing edges, inserts of missing edges (sometimes weighted, sometimes
// growing the node set), plus remove+insert weight changes. About one
// batch in eight is deliberately INVALID (removing a missing edge or
// inserting a duplicate) to exercise error parity.
func randomBatch(rng *rand.Rand, v graph.View, size int) []Edit {
	var edits []Edit
	seen := map[[2]graph.NodeID]int{} // 1 removed, 2 added
	n := v.N()
	for len(edits) < size {
		switch rng.Intn(8) {
		case 0, 1, 2: // remove an existing edge
			u := graph.NodeID(rng.Intn(n))
			if v.OutDegree(u) == 0 {
				continue
			}
			nbrs := v.OutNeighbors(u)
			to := nbrs[rng.Intn(len(nbrs))]
			if seen[[2]graph.NodeID{u, to}] != 0 {
				continue
			}
			seen[[2]graph.NodeID{u, to}] = 1
			edits = append(edits, Edit{From: u, To: to, Remove: true})
		case 3, 4, 5: // insert a missing edge
			u, to := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if v.HasEdge(u, to) || seen[[2]graph.NodeID{u, to}] != 0 {
				continue
			}
			var w float64
			if rng.Intn(2) == 0 {
				w = 0.25 + rng.Float64()*4
			}
			seen[[2]graph.NodeID{u, to}] = 2
			edits = append(edits, Edit{From: u, To: to, Weight: w})
		case 6: // weight change: remove + insert
			u := graph.NodeID(rng.Intn(n))
			if v.OutDegree(u) == 0 {
				continue
			}
			nbrs := v.OutNeighbors(u)
			to := nbrs[rng.Intn(len(nbrs))]
			if seen[[2]graph.NodeID{u, to}] != 0 {
				continue
			}
			seen[[2]graph.NodeID{u, to}] = 2
			edits = append(edits,
				Edit{From: u, To: to, Remove: true},
				Edit{From: u, To: to, Weight: 1 + rng.Float64()*2})
		case 7: // grow the graph by an edge touching a new node
			u := graph.NodeID(rng.Intn(n))
			to := graph.NodeID(n + rng.Intn(3))
			if seen[[2]graph.NodeID{u, to}] != 0 {
				continue
			}
			seen[[2]graph.NodeID{u, to}] = 2
			if rng.Intn(2) == 0 {
				u, to = to, u
			}
			edits = append(edits, Edit{From: u, To: to})
		}
	}
	return edits
}

// invalidBatch produces a batch that must fail on both implementations.
func invalidBatch(rng *rand.Rand, v graph.View) []Edit {
	n := v.N()
	if rng.Intn(2) == 0 {
		// Remove a missing edge.
		for tries := 0; tries < 100; tries++ {
			u, to := graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n))
			if !v.HasEdge(u, to) {
				return []Edit{{From: u, To: to, Remove: true}}
			}
		}
	}
	// Duplicate insert of an existing edge.
	for tries := 0; tries < 100; tries++ {
		u := graph.NodeID(rng.Intn(n))
		if v.OutDegree(u) > 0 {
			nbrs := v.OutNeighbors(u)
			return []Edit{{From: u, To: nbrs[rng.Intn(len(nbrs))]}}
		}
	}
	return []Edit{{From: 0, To: 0, Weight: -1}}
}

// mulBitwiseEqual checks the three transition kernels agree bit for bit
// between two views on a shared probe vector.
func mulBitwiseEqual(t *testing.T, a, b graph.View, seed int64) {
	t.Helper()
	n := a.N()
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64()
	}
	da, db := make([]float64, n), make([]float64, n)
	rwr.MulTransition(a, x, da)
	rwr.MulTransition(b, x, db)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("MulTransition differs at %d: %b vs %b", i, da[i], db[i])
		}
	}
	rwr.MulTransitionT(a, x, da)
	rwr.MulTransitionT(b, x, db)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("MulTransitionT differs at %d: %b vs %b", i, da[i], db[i])
		}
	}
	rwr.MulTransitionRange(a, x, da, 0, n)
	rwr.MulTransitionRange(b, x, db, 0, n)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("MulTransitionRange differs at %d: %b vs %b", i, da[i], db[i])
		}
	}
}

// TestOverlayMatchesApplyEdits is the main differential check: random edit
// batches chained through both implementations stay canonically equal at
// every step, transition operators agree bitwise, errors coincide, and the
// final compacted CSR equals the rebuilt CSR byte for byte (canonical
// form).
func TestOverlayMatchesApplyEdits(t *testing.T) {
	for _, tc := range []struct {
		name     string
		n        int
		seed     int64
		weighted bool
	}{
		{"unweighted-small", 25, 1, false},
		{"unweighted-mid", 80, 2, false},
		{"weighted-small", 25, 3, true},
		{"weighted-mid", 60, 4, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := diffTestGraph(t, tc.n, tc.seed, tc.weighted)
			rebuilt := g
			ov := graph.NewOverlay(g)
			rng := rand.New(rand.NewSource(tc.seed * 77))
			for batch := 0; batch < 12; batch++ {
				if rng.Intn(8) == 0 {
					bad := invalidBatch(rng, ov)
					_, errA := ApplyEdits(rebuilt, bad, graph.DanglingSelfLoop)
					ov2, errB := ov.Apply(bad)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("batch %d: error parity broken: rebuild=%v overlay=%v (edits %v)", batch, errA, errB, bad)
					}
					if errB == nil {
						t.Fatalf("batch %d: invalid batch accepted", batch)
					}
					_ = ov2
					continue
				}
				edits := randomBatch(rng, ov, 3+rng.Intn(5))
				g2, errA := ApplyEdits(rebuilt, edits, graph.DanglingSelfLoop)
				ov2, errB := ov.Apply(edits)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("batch %d: error parity broken: rebuild=%v overlay=%v (edits %v)", batch, errA, errB, edits)
				}
				if errA != nil {
					continue
				}
				rebuilt, ov = g2, ov2
				if da, db := canonicalDump(rebuilt), canonicalDump(ov); da != db {
					t.Fatalf("batch %d (edits %v): overlay diverged from rebuild:\n--- rebuild\n%s--- overlay\n%s", batch, edits, da, db)
				}
				mulBitwiseEqual(t, rebuilt, ov, tc.seed+int64(batch))
			}

			// Compaction byte-stability: the folded CSR must match the
			// chain-rebuilt CSR canonically and keep the kernels bitwise
			// identical, and a fresh overlay over it must round-trip.
			compacted, err := ov.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if err := compacted.Validate(); err != nil {
				t.Fatalf("compacted CSR invalid: %v", err)
			}
			if da, db := canonicalDump(rebuilt), canonicalDump(compacted); da != db {
				t.Fatalf("compacted CSR diverged from rebuilt CSR:\n--- rebuild\n%s--- compacted\n%s", da, db)
			}
			mulBitwiseEqual(t, rebuilt, compacted, tc.seed+999)
			if da, db := canonicalDump(ov), canonicalDump(graph.NewOverlay(compacted)); da != db {
				t.Fatalf("overlay round-trip through compaction diverged")
			}
		})
	}
}

// TestOverlayPMPNMatchesRebuild runs the full PMPN solver on both
// representations and demands bit-identical proximity vectors — the
// operator the online query algorithm depends on.
func TestOverlayPMPNMatchesRebuild(t *testing.T) {
	g := diffTestGraph(t, 50, 9, true)
	ov := graph.NewOverlay(g)
	rng := rand.New(rand.NewSource(42))
	rebuilt := g
	for batch := 0; batch < 4; batch++ {
		edits := randomBatch(rng, ov, 4)
		g2, errA := ApplyEdits(rebuilt, edits, graph.DanglingSelfLoop)
		ov2, errB := ov.Apply(edits)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error parity broken: %v vs %v", errA, errB)
		}
		if errA != nil {
			continue
		}
		rebuilt, ov = g2, ov2
	}
	p := rwr.DefaultParams()
	for _, q := range []graph.NodeID{0, 7, graph.NodeID(rebuilt.N() - 1)} {
		for _, workers := range []int{1, 3} {
			ra, err := rwr.ProximityToParallel(rebuilt, q, p, workers)
			if err != nil {
				t.Fatal(err)
			}
			rb, err := rwr.ProximityToParallel(ov, q, p, workers)
			if err != nil {
				t.Fatal(err)
			}
			if ra.Iterations != rb.Iterations || ra.Residual != rb.Residual {
				t.Fatalf("q=%d workers=%d: convergence differs: (%d,%g) vs (%d,%g)",
					q, workers, ra.Iterations, ra.Residual, rb.Iterations, rb.Residual)
			}
			for i := range ra.Vector {
				if ra.Vector[i] != rb.Vector[i] {
					t.Fatalf("q=%d workers=%d: PMPN vector differs at %d: %b vs %b", q, workers, i, ra.Vector[i], rb.Vector[i])
				}
			}
		}
	}
}

// FuzzOverlayApply drives the differential check from fuzzer-chosen bytes:
// each byte pair encodes one edit against a small fixed graph, applied
// both ways.
func FuzzOverlayApply(f *testing.F) {
	f.Add([]byte{0x01, 0x23, 0x45, 0x67})
	f.Add([]byte{0xff, 0x00, 0x10, 0x81, 0x22, 0x9c})
	f.Add([]byte{0x07, 0x70, 0x33, 0x33, 0x12, 0x21, 0x44, 0x99})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, _ := graph.FromEdges(8, [][2]graph.NodeID{
			{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}, {0, 4}, {5, 1},
		}, graph.DanglingSelfLoop)
		rebuilt := g
		ov := graph.NewOverlay(g)
		for i := 0; i+1 < len(data); i += 2 {
			b0, b1 := data[i], data[i+1]
			e := Edit{
				From:   graph.NodeID(b0 & 0x0f),
				To:     graph.NodeID(b0 >> 4),
				Remove: b1&1 == 1,
				Weight: float64(b1>>1) / 16,
			}
			edits := []Edit{e}
			g2, errA := ApplyEdits(rebuilt, edits, graph.DanglingSelfLoop)
			ov2, errB := ov.Apply(edits)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("error parity broken on %+v: rebuild=%v overlay=%v", e, errA, errB)
			}
			if errA != nil {
				continue
			}
			rebuilt, ov = g2, ov2
			if da, db := canonicalDump(rebuilt), canonicalDump(ov); da != db {
				t.Fatalf("divergence after %+v:\n--- rebuild\n%s--- overlay\n%s", e, da, db)
			}
		}
		compacted, err := ov.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if da, db := canonicalDump(rebuilt), canonicalDump(compacted); da != db {
			t.Fatalf("compaction divergence:\n--- rebuild\n%s--- compacted\n%s", da, db)
		}
	})
}
