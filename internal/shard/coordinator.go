// Package shard distributes one reverse top-k query across P shard
// engines, each owning a partition of the node set (internal/partition)
// over a shard slice of the lower-bound index (lbindex.ShardSlice) and a
// replicated graph + hub matrix.
//
// The decomposition follows the paper's own structure: the only global
// computation in Algorithm 4 is the PMPN vector p_·(q); every subsequent
// per-candidate decision touches one node's index row. The coordinator
// therefore computes the PMPN ONCE (where a naive federation would compute
// it P times), and scatters per-round partial iterates to the shards, which
// prune or confirm their own candidates with the paper's bounds — the k-th
// lower bound p̂_u(k) on one side and the Algorithm-3 staircase upper bound
// on the other — evaluated against the iterate's rigorous error band
// (rwr.ToStepper). Between rounds the shards' bound summaries (undecided
// counts and the tightest open k-th-score lower-bound gap) are gathered and
// folded into a global bound that sizes the next round and stops the PMPN
// outright once every shard reports its candidates decided. Candidates
// still open when the PMPN converges are decided exactly against the
// converged vector (core.View.DecideList), so the merged answer is
// bit-identical to the single-engine answer — see core.Screen for the
// monotonicity argument.
//
// This file is the in-process transport: P core.Views in one address
// space. The HTTP transport — stock rtkserve daemons each loaded with one
// shard-slice file, fanned out to by a coordinator daemon — lives in
// internal/serve (Fanout).
package shard

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/partition"
	"repro/internal/rwr"
)

// Config tunes a Coordinator. The zero value selects defaults.
type Config struct {
	// Workers is the coordinator's parallelism budget: the shared PMPN
	// matvec uses all of it, and the final decide phase deals it across
	// the shard engines (≥ 1 each). 0 selects the shard count.
	Workers int
	// RoundIters is the base number of PMPN iterations between screen
	// rounds; the coordinator stretches later rounds adaptively using the
	// gathered global bound. 0 selects DefaultRoundIters.
	RoundIters int
}

// DefaultRoundIters is the base screen-round length. At α = 0.15 the error
// band τ shrinks 8 iterations ≈ 3.7× per round — coarse enough that
// screens stay a small fraction of matvec cost, fine enough that pruning
// starts long before convergence (≈ 140 iterations at ε = 1e-10).
const DefaultRoundIters = 8

// maxRoundIters caps adaptive round stretching so a misestimated gap can
// not postpone the next exchange indefinitely.
const maxRoundIters = 64

// QueryStats reports one distributed query's execution profile.
type QueryStats struct {
	Query graph.NodeID
	K     int
	// PMPNIters is the number of power iterations actually run; with
	// EarlyStop they are fewer than single-engine convergence needs.
	PMPNIters int
	// Rounds is the number of scatter-gather bound exchanges.
	Rounds int
	// EarlyStop records that every shard decided all its candidates from
	// bounds alone, so the PMPN was abandoned before convergence.
	EarlyStop bool
	// PrunedByBound / ConfirmedByBound count nodes decided during bound
	// exchange rounds (τ > 0) — the cross-shard pruning the final exact
	// pass never had to look at.
	PrunedByBound    int
	ConfirmedByBound int
	// Survivors is the number of candidates left to the exact decide pass
	// (for QueryAnytime: the size of the returned maybe set).
	Survivors int
	// EpsAchieved is QueryAnytime's final undecided fraction (0 for Query).
	EpsAchieved float64
	// Results is the answer-set size.
	Results int
	// PerShard carries the final decide pass's per-shard engine stats
	// (zero-valued when EarlyStop skipped that pass).
	PerShard []core.QueryStats
	// Elapsed is total wall clock; PMPNElapsed the share spent inside
	// power iterations.
	Elapsed     time.Duration
	PMPNElapsed time.Duration
}

// Coordinator fans reverse top-k queries out over in-process shard
// engines. Safe for concurrent use: per-query state lives on the stack and
// the shard views are themselves concurrency-safe.
type Coordinator struct {
	g      graph.View
	pm     *partition.Map
	views  []*core.View
	params rwr.Params
	maxK   int

	workers    int
	roundIters int

	// RoundObserver, when set, watches the shared PMPN iteration of every
	// query this coordinator runs: it is wired to rwr.ToStepper.RoundHook
	// and receives (iteration, L1 residual, tail error bound) after each
	// power iteration. Observational only; it runs on the query
	// goroutine, so set it before serving and keep it cheap.
	RoundObserver func(iter int, residual, tail float64)
}

// NewInProc builds a coordinator over one shard slice per shard, in shard
// order. Every slice must carry the same partition map (slice i owning
// shard i) and be built over the given graph's node space.
func NewInProc(g graph.View, slices []*lbindex.Index, cfg Config) (*Coordinator, error) {
	if len(slices) == 0 {
		return nil, fmt.Errorf("shard: no shard slices given")
	}
	var pm *partition.Map
	views := make([]*core.View, len(slices))
	for i, idx := range slices {
		ipm, shardID, ok := idx.Shard()
		if !ok {
			if len(slices) == 1 {
				// A single full index is a valid 1-shard deployment; give
				// it the trivial partition.
				var err error
				ipm, err = partition.NewRange(idx.N(), 1)
				if err != nil {
					return nil, err
				}
				var serr error
				idx, serr = idx.ShardSlice(ipm, 0)
				if serr != nil {
					return nil, serr
				}
			} else {
				return nil, fmt.Errorf("shard: index %d is not a shard slice", i)
			}
		}
		if shardID != i {
			return nil, fmt.Errorf("shard: slice at position %d is shard %d (order slices by shard id)", i, shardID)
		}
		if pm == nil {
			pm = ipm
			if pm.P() != len(slices) {
				return nil, fmt.Errorf("shard: partition has %d shards, %d slices given", pm.P(), len(slices))
			}
		} else if !pm.Equal(ipm) {
			return nil, fmt.Errorf("shard: slice %d carries a different partition map", i)
		}
		v, err := core.NewView(g, idx)
		if err != nil {
			return nil, fmt.Errorf("shard: slice %d: %w", i, err)
		}
		views[i] = v
	}
	// Every slice must agree on the cache-aware relabeling (all descend
	// from one full index): the coordinator translates at its own query
	// boundary, so a slice speaking a different internal space would
	// silently decide the wrong rows.
	base := views[0].Index().Relabeling()
	for i := 1; i < len(views); i++ {
		other := views[i].Index().Relabeling()
		if len(other) != len(base) {
			return nil, fmt.Errorf("shard: slice %d carries a different relabeling (%d nodes, shard 0 has %d)", i, len(other), len(base))
		}
		for j := range base {
			if base[j] != other[j] {
				return nil, fmt.Errorf("shard: slice %d carries a different relabeling (differs at node %d)", i, j)
			}
		}
	}
	c := &Coordinator{
		g:          g,
		pm:         pm,
		views:      views,
		params:     views[0].Index().Options().RWR,
		maxK:       views[0].Index().K(),
		workers:    cfg.Workers,
		roundIters: cfg.RoundIters,
	}
	for i := 1; i < len(views); i++ {
		if k := views[i].Index().K(); k < c.maxK {
			c.maxK = k
		}
	}
	if c.workers <= 0 {
		c.workers = len(slices)
	}
	if c.roundIters <= 0 {
		c.roundIters = DefaultRoundIters
	}
	return c, nil
}

// NewFromFull slices a full index P ways under pm and builds the in-process
// coordinator over the slices — the one-process deployment shape, and what
// rtkbench -exp shard measures.
func NewFromFull(g graph.View, idx *lbindex.Index, pm *partition.Map, cfg Config) (*Coordinator, error) {
	slices := make([]*lbindex.Index, pm.P())
	for s := range slices {
		sl, err := idx.ShardSlice(pm, s)
		if err != nil {
			return nil, err
		}
		slices[s] = sl
	}
	return NewInProc(g, slices, cfg)
}

// P returns the shard count.
func (c *Coordinator) P() int { return len(c.views) }

// N returns the node count of the shared graph.
func (c *Coordinator) N() int { return c.g.N() }

// MaxK returns the largest k every shard's index supports.
func (c *Coordinator) MaxK() int { return c.maxK }

// Partition returns the shared partition map.
func (c *Coordinator) Partition() *partition.Map { return c.pm }

// Views returns the per-shard query views, in shard order.
func (c *Coordinator) Views() []*core.View { return c.views }

// Query answers one reverse top-k query by scatter-gather over the shards.
// The answer set is bit-identical to core.Engine.Query on the unsharded
// index, in ascending node order. Like core.View, the coordinator is a
// relabeling translation boundary: q and the answer are external ids,
// translated to and from the internal space the slices store (free when no
// relabeling is installed).
func (c *Coordinator) Query(q graph.NodeID, k int) ([]graph.NodeID, QueryStats, error) {
	stats := QueryStats{Query: q, K: k}
	if int(q) < 0 || int(q) >= c.g.N() {
		return nil, stats, fmt.Errorf("shard: query node %d out of range [0,%d)", q, c.g.N())
	}
	if k <= 0 || k > c.maxK {
		return nil, stats, fmt.Errorf("shard: k=%d outside [1,%d] supported by every shard", k, c.maxK)
	}
	start := time.Now()
	q = c.views[0].Index().ToInternal(q)

	screens := make([]*core.Screen, len(c.views))
	for i, v := range c.views {
		s, err := v.NewScreen(k)
		if err != nil {
			return nil, stats, err
		}
		screens[i] = s
	}
	stepper, err := rwr.NewToStepper(c.g, q, c.params, c.workers)
	if err != nil {
		return nil, stats, err
	}
	stepper.RoundHook = c.RoundObserver

	// Scatter-gather rounds: advance the shared PMPN, broadcast the
	// iterate + error band, gather each shard's round report. The first
	// exchange is deferred until τ can fire at all — while τ exceeds the
	// global max k-th lower bound, no shard can prune anything (and
	// confirmations need plo ≥ UB ≥ that same bound's scale), so earlier
	// rounds would be pure overhead.
	oneMinus := 1 - c.params.Alpha
	undecided := math.MaxInt
	roundLen := c.roundIters
	maxLB := 0.0
	for _, s := range screens {
		if lb := s.MaxLowerBound(); lb > maxLB {
			maxLB = lb
		}
	}
	if maxLB > 0 && maxLB < 1 {
		if warm := int(math.Ceil(math.Log(maxLB) / math.Log(oneMinus))); warm > roundLen {
			roundLen = warm
		}
	}
	converged := false
	var pmpnElapsed time.Duration
	for !converged && undecided > 0 {
		t0 := time.Now()
		converged, err = stepper.Step(roundLen)
		pmpnElapsed += time.Since(t0)
		if err != nil {
			return nil, stats, err
		}
		x, tau := stepper.Current(), stepper.Tail()
		reports := make([]core.RoundReport, len(screens))
		var wg sync.WaitGroup
		for i, s := range screens {
			wg.Add(1)
			go func(i int, s *core.Screen) {
				defer wg.Done()
				reports[i] = s.Advance(x, tau)
			}(i, s)
		}
		wg.Wait()
		stats.Rounds++
		undecided = 0
		minGap := math.Inf(1)
		for _, rep := range reports {
			undecided += rep.Undecided
			stats.PrunedByBound += rep.Pruned
			stats.ConfirmedByBound += len(rep.NewHits)
			if rep.MinPruneGap < minGap {
				minGap = rep.MinPruneGap
			}
		}
		// The exchanged global bound sizes the next round: τ must fall
		// under the tightest open lower-bound gap before the pruning test
		// can fire anywhere, which takes log(τ/gap)/log(1/(1−α))
		// iterations — no point gathering sooner.
		roundLen = c.roundIters
		if undecided > 0 && !math.IsInf(minGap, 1) && minGap < tau {
			need := int(math.Ceil(math.Log(minGap/tau) / math.Log(oneMinus)))
			if need > roundLen {
				roundLen = need
			}
			if roundLen > maxRoundIters {
				roundLen = maxRoundIters
			}
		}
	}
	stats.PMPNIters = stepper.Iterations()
	stats.PMPNElapsed = pmpnElapsed
	stats.EarlyStop = !converged

	// Final exact pass for candidates the bounds could not decide; the
	// converged vector is bit-identical to the single engine's PMPN, so
	// these decisions (refinement and all) match it exactly.
	var results []graph.NodeID
	if undecided > 0 {
		pq := stepper.Result().Vector
		decideWorkers := c.workers / len(c.views)
		if decideWorkers < 1 {
			decideWorkers = 1
		}
		type out struct {
			res   []graph.NodeID
			stats core.QueryStats
			err   error
		}
		outs := make([]out, len(c.views))
		var wg sync.WaitGroup
		for i, v := range c.views {
			wg.Add(1)
			go func(i int, v *core.View) {
				defer wg.Done()
				o := &outs[i]
				o.res, o.stats, o.err = v.DecideList(pq, k, screens[i].Survivors(), decideWorkers)
			}(i, v)
		}
		wg.Wait()
		stats.PerShard = make([]core.QueryStats, len(outs))
		for i := range outs {
			if outs[i].err != nil {
				return nil, stats, fmt.Errorf("shard %d: %w", i, outs[i].err)
			}
			stats.Survivors += len(screens[i].Survivors())
			stats.PerShard[i] = outs[i].stats
			results = append(results, outs[i].res...)
		}
	}
	for _, s := range screens {
		results = append(results, s.Hits()...)
	}
	if idx := c.views[0].Index(); idx.Relabeling() != nil {
		for i := range results {
			results[i] = idx.ToExternal(results[i])
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i] < results[j] })
	stats.Results = len(results)
	stats.Elapsed = time.Since(start)
	return results, stats, nil
}
