package shard

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rwr"
)

// QueryAnytime is the sharded form of core.View.QueryAnytime: the same
// scatter-gather bound exchange as Query, but the loop terminates as soon
// as the global undecided fraction meets the ε budget — the shards' gathered
// reports ARE the budget check, so no extra exchange is needed. The answer
// comes back in two parts, both ascending external ids:
//
//   - guaranteed: nodes some shard's monotone-safe bound tests confirmed;
//   - maybe: nodes still undecided when the exchange stopped.
//
// Every decision is deterministic (the cross-shard tier runs no Monte Carlo
// stage), so guaranteed ⊆ exact ⊆ guaranteed ∪ maybe unconditionally, and
// with identical round configuration the two parts equal the unsharded
// View.QueryAnytime's at δ = 0 — shards decide exactly the nodes the full
// screen would, just partitioned. If the PMPN converges before the budget
// is met the exchange stops at the exact-pq screen and reports the achieved
// ε honestly (Stats.EpsAchieved > eps, EarlyStop = false); the maybe set is
// then precisely the exact path's refinement candidates. The full
// refinement pass — the dominant share of exact latency — never runs.
func (c *Coordinator) QueryAnytime(q graph.NodeID, k int, eps float64) (guaranteed, maybe []graph.NodeID, stats QueryStats, err error) {
	stats = QueryStats{Query: q, K: k}
	if math.IsNaN(eps) || eps < 0 || eps >= 1 {
		return nil, nil, stats, fmt.Errorf("shard: eps=%v outside [0,1)", eps)
	}
	if int(q) < 0 || int(q) >= c.g.N() {
		return nil, nil, stats, fmt.Errorf("shard: query node %d out of range [0,%d)", q, c.g.N())
	}
	if k <= 0 || k > c.maxK {
		return nil, nil, stats, fmt.Errorf("shard: k=%d outside [1,%d] supported by every shard", k, c.maxK)
	}
	start := time.Now()
	q = c.views[0].Index().ToInternal(q)

	screens := make([]*core.Screen, len(c.views))
	for i, v := range c.views {
		s, serr := v.NewScreen(k)
		if serr != nil {
			return nil, nil, stats, serr
		}
		screens[i] = s
	}
	stepper, err := rwr.NewToStepper(c.g, q, c.params, c.workers)
	if err != nil {
		return nil, nil, stats, err
	}
	stepper.RoundHook = c.RoundObserver

	oneMinus := 1 - c.params.Alpha
	roundLen := c.roundIters
	maxLB := 0.0
	for _, s := range screens {
		if lb := s.MaxLowerBound(); lb > maxLB {
			maxLB = lb
		}
	}
	if maxLB > 0 && maxLB < 1 {
		if warm := int(math.Ceil(math.Log(maxLB) / math.Log(oneMinus))); warm > roundLen {
			roundLen = warm
		}
	}
	converged := false
	frac := 1.0
	var pmpnElapsed time.Duration
	for {
		t0 := time.Now()
		converged, err = stepper.Step(roundLen)
		pmpnElapsed += time.Since(t0)
		if err != nil {
			return nil, nil, stats, err
		}
		x, tau := stepper.Current(), stepper.Tail()
		if converged {
			// Run the final screens at the exact-pq band so the maybe set is
			// exactly the refinement candidate set.
			tau = 0
		}
		reports := make([]core.RoundReport, len(screens))
		var wg sync.WaitGroup
		for i, s := range screens {
			wg.Add(1)
			go func(i int, s *core.Screen) {
				defer wg.Done()
				reports[i] = s.Advance(x, tau)
			}(i, s)
		}
		wg.Wait()
		stats.Rounds++
		undecided := 0
		minGap := math.Inf(1)
		for _, rep := range reports {
			undecided += rep.Undecided
			stats.PrunedByBound += rep.Pruned
			stats.ConfirmedByBound += len(rep.NewHits)
			if rep.MinPruneGap < minGap {
				minGap = rep.MinPruneGap
			}
		}
		confirmed := 0
		for _, s := range screens {
			confirmed += s.Confirmed()
		}
		frac = 0
		if undecided > 0 {
			frac = float64(undecided) / float64(confirmed+undecided)
		}
		if frac <= eps || converged {
			break
		}
		roundLen = c.roundIters
		if !math.IsInf(minGap, 1) && minGap < tau {
			need := int(math.Ceil(math.Log(minGap/tau) / math.Log(oneMinus)))
			if need > roundLen {
				roundLen = need
			}
			if roundLen > maxRoundIters {
				roundLen = maxRoundIters
			}
		}
	}
	stats.PMPNIters = stepper.Iterations()
	stats.PMPNElapsed = pmpnElapsed
	stats.EarlyStop = !converged
	stats.EpsAchieved = frac

	for _, s := range screens {
		guaranteed = append(guaranteed, s.Hits()...)
		maybe = append(maybe, s.Survivors()...)
	}
	if idx := c.views[0].Index(); idx.Relabeling() != nil {
		for i := range guaranteed {
			guaranteed[i] = idx.ToExternal(guaranteed[i])
		}
		for i := range maybe {
			maybe[i] = idx.ToExternal(maybe[i])
		}
	}
	sort.Slice(guaranteed, func(i, j int) bool { return guaranteed[i] < guaranteed[j] })
	sort.Slice(maybe, func(i, j int) bool { return maybe[i] < maybe[j] })
	stats.Survivors = len(maybe)
	stats.Results = len(guaranteed)
	stats.Elapsed = time.Since(start)
	return guaranteed, maybe, stats, nil
}
