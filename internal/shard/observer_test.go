package shard

import (
	"testing"

	"repro/internal/lbindex"
)

// TestRoundObserver wires the coordinator's PMPN observation hook and
// checks it sees every iteration the query stats report, without changing
// the answer.
func TestRoundObserver(t *testing.T) {
	g, idx := buildCase(t, "web", 300)
	plain, err := NewInProc(g, []*lbindex.Index{idx}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := plain.Query(7, 10)
	if err != nil {
		t.Fatal(err)
	}

	c, err := NewInProc(g, []*lbindex.Index{idx}, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	lastIter := 0
	c.RoundObserver = func(iter int, residual, tail float64) {
		if iter != lastIter+1 {
			t.Fatalf("observer saw iter %d after %d", iter, lastIter)
		}
		lastIter = iter
	}
	got, stats, err := c.Query(7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if lastIter != stats.PMPNIters {
		t.Fatalf("observer saw %d iterations, stats report %d", lastIter, stats.PMPNIters)
	}
	if len(got) != len(want) {
		t.Fatalf("observed query returned %d nodes, plain %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("answer differs at %d: %d != %d", i, got[i], want[i])
		}
	}
}
