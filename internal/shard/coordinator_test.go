package shard

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/partition"
	"repro/internal/workload"
)

func buildCase(t *testing.T, kind string, n int) (*graph.Graph, *lbindex.Index) {
	t.Helper()
	var (
		g   *graph.Graph
		err error
	)
	switch kind {
	case "web":
		g, err = gen.WebGraph(n, 17)
	case "social":
		g, err = gen.SocialGraph(n, 17)
	default:
		t.Fatalf("unknown kind %q", kind)
	}
	if err != nil {
		t.Fatal(err)
	}
	opts := lbindex.DefaultOptions()
	opts.K = 24
	opts.HubBudget = 8
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g, idx
}

func partitions(t *testing.T, g *graph.Graph, p int) map[string]*partition.Map {
	t.Helper()
	out := map[string]*partition.Map{}
	var err error
	if out["hash"], err = partition.NewHash(g.N(), p, 99); err != nil {
		t.Fatal(err)
	}
	if out["range"], err = partition.NewRange(g.N(), p); err != nil {
		t.Fatal(err)
	}
	if out["balanced"], err = partition.NewBalanced(g, p); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCoordinatorMatchesSingleEngine is the distributed-correctness oracle:
// for every graph family × k × P × strategy × worker count, the merged
// coordinator answer must equal the single-engine answer node for node.
func TestCoordinatorMatchesSingleEngine(t *testing.T) {
	for _, kind := range []string{"web", "social"} {
		g, idx := buildCase(t, kind, 350)
		single, err := core.NewEngine(g, idx, false)
		if err != nil {
			t.Fatal(err)
		}
		queries, err := workload.Queries(g.N(), 12, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 5, 20} {
			want := map[graph.NodeID][]graph.NodeID{}
			for _, q := range queries {
				ans, _, err := single.Query(q, k)
				if err != nil {
					t.Fatal(err)
				}
				want[q] = ans
			}
			for _, p := range []int{1, 2, 4} {
				for strat, pm := range partitions(t, g, p) {
					for _, workers := range []int{1, 4} {
						c, err := NewFromFull(g, idx, pm, Config{Workers: workers})
						if err != nil {
							t.Fatalf("%s k=%d P=%d %s: %v", kind, k, p, strat, err)
						}
						for _, q := range queries {
							got, stats, err := c.Query(q, k)
							if err != nil {
								t.Fatalf("%s k=%d P=%d %s w=%d q=%d: %v", kind, k, p, strat, workers, q, err)
							}
							if !equalIDs(got, want[q]) {
								t.Fatalf("%s k=%d P=%d %s w=%d q=%d: got %v want %v (stats %+v)",
									kind, k, p, strat, workers, q, got, want[q], stats)
							}
							if stats.PrunedByBound+stats.ConfirmedByBound+stats.Survivors != g.N() {
								t.Fatalf("%s k=%d P=%d %s q=%d: decisions cover %d of %d nodes",
									kind, k, p, strat, q,
									stats.PrunedByBound+stats.ConfirmedByBound+stats.Survivors, g.N())
							}
							if stats.Results != len(got) {
								t.Fatalf("stats.Results=%d, answer has %d", stats.Results, len(got))
							}
						}
					}
				}
			}
		}
	}
}

// TestCoordinatorMatchesBruteForce anchors the whole stack to the paper's
// §3 brute-force definition on one configuration.
func TestCoordinatorMatchesBruteForce(t *testing.T) {
	g, idx := buildCase(t, "web", 250)
	pm, err := partition.NewHash(g.N(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewFromFull(g, idx, pm, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []graph.NodeID{0, 17, 249} {
		want, err := core.BruteForce(g, q, 10, idx.Options().RWR, 2)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := c.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(got, want) {
			t.Fatalf("q=%d: coordinator %v, brute force %v", q, got, want)
		}
	}
}

// TestCoordinatorBoundPruning checks the cross-shard exchange does real
// work: on a reasonable graph most of the node set must be pruned or
// confirmed by partial-iterate bounds, not by the final exact pass.
func TestCoordinatorBoundPruning(t *testing.T) {
	g, idx := buildCase(t, "web", 400)
	pm, err := partition.NewRange(g.N(), 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewFromFull(g, idx, pm, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	totalPruned, multiRound := 0, 0
	for q := graph.NodeID(0); q < 20; q++ {
		_, stats, err := c.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		totalPruned += stats.PrunedByBound
		if stats.Rounds >= 2 {
			multiRound++
		}
	}
	if totalPruned == 0 {
		t.Fatal("no candidates pruned by cross-shard bound exchange")
	}
	if multiRound == 0 {
		t.Fatal("no query ran more than one bound-exchange round")
	}
}

// TestCoordinatorValidation covers the constructor and query guard rails.
func TestCoordinatorValidation(t *testing.T) {
	g, idx := buildCase(t, "web", 120)
	pm, err := partition.NewRange(g.N(), 2)
	if err != nil {
		t.Fatal(err)
	}
	s0, err := idx.ShardSlice(pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := idx.ShardSlice(pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInProc(g, []*lbindex.Index{s1, s0}, Config{}); err == nil {
		t.Error("out-of-order slices accepted")
	}
	if _, err := NewInProc(g, []*lbindex.Index{s0, idx}, Config{}); err == nil {
		t.Error("full index in a 2-slice set accepted")
	}
	other, err := partition.NewHash(g.N(), 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	o1, err := idx.ShardSlice(other, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInProc(g, []*lbindex.Index{s0, o1}, Config{}); err == nil {
		t.Error("mismatched partition maps accepted")
	}
	c, err := NewInProc(g, []*lbindex.Index{s0, s1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Query(-1, 5); err == nil {
		t.Error("negative query node accepted")
	}
	if _, _, err := c.Query(0, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := c.Query(0, idx.K()+1); err == nil {
		t.Error("k beyond index K accepted")
	}
	// A full index alone is a legal single-shard deployment.
	if _, err := NewInProc(g, []*lbindex.Index{idx}, Config{}); err != nil {
		t.Errorf("single full index rejected: %v", err)
	}
}

func equalIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
