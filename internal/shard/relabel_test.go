package shard

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/partition"
)

// TestCoordinatorRelabeledMatchesIdentity: a coordinator over shard slices
// of a cache-aware relabeled index answers every query with exactly the
// node set the identity-labeled single engine produces — the coordinator's
// boundary translation composes with scatter-gather across strategies and
// shard counts.
func TestCoordinatorRelabeledMatchesIdentity(t *testing.T) {
	g, idx := buildCase(t, "web", 220)
	eng, err := core.NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}

	perm := graph.DegreeOrderPermutation(g)
	if perm.IsIdentity() {
		t.Fatal("test graph degenerated to an identity degree order")
	}
	pg, err := graph.ApplyPermutation(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	opts := lbindex.DefaultOptions()
	opts.K = 24
	opts.HubBudget = 8
	pidx, _, err := lbindex.Build(pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := pidx.SetRelabeling(perm); err != nil {
		t.Fatal(err)
	}

	for _, P := range []int{2, 3} {
		for name, pm := range partitions(t, pg, P) {
			c, err := NewFromFull(pg, pidx, pm, Config{Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			for q := graph.NodeID(1); int(q) < g.N(); q += 31 {
				for _, k := range []int{1, 8, 24} {
					want, _, err := eng.Query(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := c.Query(q, k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s P=%d q=%d k=%d: coordinator %v, identity engine %v", name, P, q, k, got, want)
					}
				}
			}
		}
	}
}

// TestCoordinatorRejectsMixedRelabelings: slices from indexes with
// different relabelings cannot form one coordinator.
func TestCoordinatorRejectsMixedRelabelings(t *testing.T) {
	g, idx := buildCase(t, "web", 80)
	pm, err := partition.NewRange(g.N(), 2)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := idx.ShardSlice(pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	relabeled := idx.Clone()
	perm := graph.DegreeOrderPermutation(g)
	if err := relabeled.SetRelabeling(perm); err != nil {
		t.Fatal(err)
	}
	other, err := relabeled.ShardSlice(pm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInProc(g, []*lbindex.Index{plain, other}, Config{}); err == nil {
		t.Fatal("coordinator accepted slices with mismatched relabelings")
	}
}
