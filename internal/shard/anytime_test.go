package shard

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/workload"
)

// TestShardedAnytimeMatchesUnsharded: with δ = 0 and the same round
// configuration, the sharded anytime answer must EQUAL the unsharded
// View.QueryAnytime's — the shards decide exactly the nodes the full screen
// would, just partitioned. Checked across P, partition strategies and the
// eps sweep.
func TestShardedAnytimeMatchesUnsharded(t *testing.T) {
	for _, kind := range []string{"web", "social"} {
		g, idx := buildCase(t, kind, 350)
		view, err := core.NewView(g, idx)
		if err != nil {
			t.Fatal(err)
		}
		queries, err := workload.Queries(g.N(), 8, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, eps := range []float64{0.4, 0.1, 0} {
			type part struct{ g, m []graph.NodeID }
			want := map[graph.NodeID]part{}
			for _, q := range queries {
				res, err := view.QueryAnytime(q, 10, core.AnytimeOptions{Eps: eps}, 2)
				if err != nil {
					t.Fatal(err)
				}
				want[q] = part{res.Guaranteed, res.Maybe}
			}
			for _, p := range []int{1, 3} {
				for strat, pm := range partitions(t, g, p) {
					c, err := NewFromFull(g, idx, pm, Config{Workers: 2})
					if err != nil {
						t.Fatal(err)
					}
					for _, q := range queries {
						guaranteed, maybe, stats, err := c.QueryAnytime(q, 10, eps)
						if err != nil {
							t.Fatalf("%s eps=%g P=%d %s q=%d: %v", kind, eps, p, strat, q, err)
						}
						w := want[q]
						if len(w.g) == 0 {
							w.g = nil
						}
						if len(w.m) == 0 {
							w.m = nil
						}
						if !reflect.DeepEqual(guaranteed, w.g) || !reflect.DeepEqual(maybe, w.m) {
							t.Fatalf("%s eps=%g P=%d %s q=%d: sharded %v/%v, unsharded %v/%v",
								kind, eps, p, strat, q, guaranteed, maybe, w.g, w.m)
						}
						if stats.Results != len(guaranteed) || stats.Survivors != len(maybe) {
							t.Fatalf("stats sizes %d/%d, answer %d/%d",
								stats.Results, stats.Survivors, len(guaranteed), len(maybe))
						}
					}
				}
			}
		}
	}
}

// TestShardedAnytimeContainment brackets the sharded anytime answer with
// the exact coordinator answer on the same deployment.
func TestShardedAnytimeContainment(t *testing.T) {
	g, idx := buildCase(t, "web", 300)
	pm, err := partition.NewHash(g.N(), 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewFromFull(g, idx, pm, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := workload.Queries(g.N(), 10, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		exact, _, err := c.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		inExact := map[graph.NodeID]bool{}
		for _, u := range exact {
			inExact[u] = true
		}
		guaranteed, maybe, stats, err := c.QueryAnytime(q, 10, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		cover := map[graph.NodeID]bool{}
		for _, u := range guaranteed {
			if !inExact[u] {
				t.Fatalf("q=%d: guaranteed %d not in exact %v", q, u, exact)
			}
			cover[u] = true
		}
		for _, u := range maybe {
			cover[u] = true
		}
		for _, u := range exact {
			if !cover[u] {
				t.Fatalf("q=%d: exact node %d missing from guaranteed∪maybe", q, u)
			}
		}
		if stats.EarlyStop && stats.EpsAchieved > 0.25 {
			t.Fatalf("q=%d: early stop with achieved eps %g over budget", q, stats.EpsAchieved)
		}
	}
}

// TestShardedAnytimeValidation covers the eps/parameter guard rails.
func TestShardedAnytimeValidation(t *testing.T) {
	g, idx := buildCase(t, "web", 120)
	pm, err := partition.NewRange(g.N(), 2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewFromFull(g, idx, pm, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.QueryAnytime(0, 5, 1); err == nil {
		t.Error("eps=1 accepted")
	}
	if _, _, _, err := c.QueryAnytime(0, 5, -0.1); err == nil {
		t.Error("negative eps accepted")
	}
	if _, _, _, err := c.QueryAnytime(-1, 5, 0.1); err == nil {
		t.Error("negative query node accepted")
	}
	if _, _, _, err := c.QueryAnytime(0, 0, 0.1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, _, err := c.QueryAnytime(0, idx.K()+1, 0.1); err == nil {
		t.Error("k beyond index K accepted")
	}
}
