package vecmath

import (
	"math"
	"math/rand"
	"testing"
)

func TestSplitCoversAndBalances(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 1}, {1, 8}, {5, 2}, {7, 3}, {100, 7}, {64, 64}, {10, 100},
	} {
		segs := Split(tc.n, tc.parts)
		if tc.n == 0 {
			if segs != nil {
				t.Fatalf("Split(0,%d) = %v, want nil", tc.parts, segs)
			}
			continue
		}
		if len(segs) > tc.parts || len(segs) > tc.n {
			t.Fatalf("Split(%d,%d) returned %d segments", tc.n, tc.parts, len(segs))
		}
		prev, min, max := 0, math.MaxInt, 0
		for _, s := range segs {
			if s.Lo != prev || s.Len() <= 0 {
				t.Fatalf("Split(%d,%d): bad segment %+v after %d", tc.n, tc.parts, s, prev)
			}
			prev = s.Hi
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
		}
		if prev != tc.n {
			t.Fatalf("Split(%d,%d) covers [0,%d)", tc.n, tc.parts, prev)
		}
		if max-min > 1 {
			t.Fatalf("Split(%d,%d): segment sizes range %d..%d, want near-equal", tc.n, tc.parts, min, max)
		}
	}
}

func TestL1DiffRangeSumsToL1Diff(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := make([]float64, 137)
	y := make([]float64, 137)
	for i := range x {
		x[i], y[i] = rng.Float64(), rng.Float64()
	}
	want := L1Diff(x, y)
	for _, parts := range []int{1, 2, 5, 137} {
		var got float64
		for _, s := range Split(len(x), parts) {
			got += L1DiffRange(x, y, s.Lo, s.Hi)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("parts=%d: segmented sum %g, full sweep %g", parts, got, want)
		}
	}
	if d := L1DiffRange(x, y, 0, len(x)); d != want {
		t.Errorf("full-range L1DiffRange %g != L1Diff %g", d, want)
	}
	if d := L1DiffRange(x, y, 10, 10); d != 0 {
		t.Errorf("empty range gave %g, want 0", d)
	}
}

func TestL1DiffRangePanics(t *testing.T) {
	x := make([]float64, 4)
	for _, tc := range [][2]int{{-1, 2}, {0, 5}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("range %v: want panic", tc)
				}
			}()
			L1DiffRange(x, x, tc[0], tc[1])
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch: want panic")
		}
	}()
	L1DiffRange(x, make([]float64, 3), 0, 3)
}
