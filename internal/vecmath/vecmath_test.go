package vecmath

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestL1Norm(t *testing.T) {
	if got := L1Norm([]float64{1, -2, 3}); got != 6 {
		t.Errorf("L1Norm = %g, want 6", got)
	}
	if got := L1Norm(nil); got != 0 {
		t.Errorf("L1Norm(nil) = %g, want 0", got)
	}
}

func TestL1Diff(t *testing.T) {
	if got := L1Diff([]float64{1, 2}, []float64{0, 4}); got != 3 {
		t.Errorf("L1Diff = %g, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("want panic on length mismatch")
		}
	}()
	L1Diff([]float64{1}, []float64{1, 2})
}

func TestMaxAbsDiff(t *testing.T) {
	if got := MaxAbsDiff([]float64{1, 5, 2}, []float64{1, 2, 4}); got != 3 {
		t.Errorf("MaxAbsDiff = %g, want 3", got)
	}
}

func TestZeroScaleClone(t *testing.T) {
	x := []float64{1, 2, 3}
	c := Clone(x)
	Scale(x, 2)
	if !reflect.DeepEqual(x, []float64{2, 4, 6}) {
		t.Errorf("Scale: %v", x)
	}
	if !reflect.DeepEqual(c, []float64{1, 2, 3}) {
		t.Errorf("Clone aliased: %v", c)
	}
	Zero(x)
	if L1Norm(x) != 0 {
		t.Errorf("Zero failed: %v", x)
	}
}

func TestAddScaled(t *testing.T) {
	dst := []float64{1, 1}
	AddScaled(dst, 2, []float64{3, 4})
	if !reflect.DeepEqual(dst, []float64{7, 9}) {
		t.Errorf("AddScaled = %v", dst)
	}
}

func TestTopKValues(t *testing.T) {
	x := []float64{0.1, 0.5, 0.3, 0.2}
	if got := TopKValues(x, 2); !reflect.DeepEqual(got, []float64{0.5, 0.3}) {
		t.Errorf("TopKValues = %v", got)
	}
	// Padding when k > len(x).
	if got := TopKValues([]float64{0.7}, 3); !reflect.DeepEqual(got, []float64{0.7, 0, 0}) {
		t.Errorf("TopKValues pad = %v", got)
	}
	if got := TopKValues(x, 0); got != nil {
		t.Errorf("TopKValues(0) = %v", got)
	}
}

func TestTopKValuesAgainstSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64()
		}
		got := TopKValues(x, k)
		sorted := Clone(x)
		sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
		for i := 0; i < k; i++ {
			want := 0.0
			if i < n {
				want = sorted[i]
			}
			if got[i] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestTopKEntries(t *testing.T) {
	x := []float64{0.1, 0.5, 0.3, 0.5, 0}
	got := TopKEntries(x, 3)
	want := []Entry{{1, 0.5}, {3, 0.5}, {2, 0.3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TopKEntries = %v, want %v", got, want)
	}
	// Zeros excluded; result can be shorter than k.
	got = TopKEntries([]float64{0, 0, 0.2}, 3)
	if len(got) != 1 || got[0].Index != 2 {
		t.Errorf("TopKEntries zeros = %v", got)
	}
}

func TestTopKEntriesDeterministicTieBreak(t *testing.T) {
	x := []float64{0.5, 0.5, 0.5, 0.5}
	got := TopKEntries(x, 2)
	if got[0].Index != 0 || got[1].Index != 1 {
		t.Errorf("tie break wrong: %v", got)
	}
}

func TestKthLargest(t *testing.T) {
	x := []float64{0.4, 0.1, 0.9, 0.6}
	cases := []struct {
		k    int
		want float64
	}{{1, 0.9}, {2, 0.6}, {3, 0.4}, {4, 0.1}, {5, 0}}
	for _, c := range cases {
		if got := KthLargest(x, c.k); got != c.want {
			t.Errorf("KthLargest(k=%d) = %g, want %g", c.k, got, c.want)
		}
	}
	if !math.IsInf(KthLargest(x, 0), 1) {
		t.Error("KthLargest(0) should be +Inf")
	}
}

func TestIsSortedDescending(t *testing.T) {
	if !IsSortedDescending([]float64{3, 2, 2, 1}) {
		t.Error("want true")
	}
	if IsSortedDescending([]float64{1, 2}) {
		t.Error("want false")
	}
	if !IsSortedDescending(nil) {
		t.Error("empty is sorted")
	}
}

func TestSparseBasics(t *testing.T) {
	s := Sparse{Idx: []int32{1, 4, 9}, Val: []float64{0.5, -0.25, 0.125}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.NNZ() != 3 {
		t.Errorf("NNZ = %d", s.NNZ())
	}
	if got := s.L1(); got != 0.875 {
		t.Errorf("L1 = %g", got)
	}
	if s.Get(4) != -0.25 || s.Get(5) != 0 {
		t.Errorf("Get wrong: %g %g", s.Get(4), s.Get(5))
	}
	c := s.Clone()
	c.Val[0] = 99
	if s.Val[0] == 99 {
		t.Error("Clone aliases storage")
	}
}

func TestSparseValidateErrors(t *testing.T) {
	if err := (Sparse{Idx: []int32{1}, Val: nil}).Validate(); err == nil {
		t.Error("want length mismatch error")
	}
	if err := (Sparse{Idx: []int32{2, 2}, Val: []float64{1, 1}}).Validate(); err == nil {
		t.Error("want ordering error")
	}
}

func TestSparseCompact(t *testing.T) {
	s := Sparse{Idx: []int32{0, 1, 2}, Val: []float64{1e-9, 0.5, -1e-9}}
	c := s.Compact(1e-6)
	if c.NNZ() != 1 || c.Idx[0] != 1 {
		t.Errorf("Compact = %+v", c)
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		x := make([]float64, n)
		for i := range x {
			if rng.Float64() < 0.3 {
				x[i] = rng.Float64()
			}
		}
		s := GatherSparse(x, 0)
		if s.Validate() != nil {
			return false
		}
		back := make([]float64, n)
		s.CopyInto(back)
		return L1Diff(x, back) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScatterIntoScaled(t *testing.T) {
	s := Sparse{Idx: []int32{0, 2}, Val: []float64{1, 2}}
	dst := []float64{1, 1, 1}
	s.ScatterInto(dst, 0.5)
	if !reflect.DeepEqual(dst, []float64{1.5, 1, 2}) {
		t.Errorf("ScatterInto = %v", dst)
	}
}

func TestGatherSparseIndices(t *testing.T) {
	x := []float64{0.5, 0, 0.25, 0}
	s := GatherSparseIndices(x, []int32{0, 1, 2}, 0)
	if s.NNZ() != 2 || s.Get(0) != 0.5 || s.Get(2) != 0.25 {
		t.Errorf("GatherSparseIndices = %+v", s)
	}
}

func TestSparseBytes(t *testing.T) {
	s := Sparse{Idx: []int32{1, 2}, Val: []float64{1, 2}}
	if got := s.Bytes(); got != 24 {
		t.Errorf("Bytes = %d, want 24", got)
	}
}
