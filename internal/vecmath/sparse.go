package vecmath

import (
	"fmt"
	"sort"
)

// Sparse is a sparse vector: parallel slices of strictly increasing indices
// and their values. The zero value is the empty vector. Sparse vectors are
// the storage format for rounded hub proximity columns (§4.1.3) and for the
// resumable per-node BCA state (R, W, S matrices of the index).
type Sparse struct {
	Idx []int32
	Val []float64
}

// NNZ returns the number of stored entries.
func (s Sparse) NNZ() int { return len(s.Idx) }

// L1 returns the sum of absolute values of stored entries.
func (s Sparse) L1() float64 {
	var sum float64
	for _, v := range s.Val {
		if v < 0 {
			sum -= v
		} else {
			sum += v
		}
	}
	return sum
}

// Get returns the value at index i (0 when absent) using binary search.
func (s Sparse) Get(i int32) float64 {
	pos := sort.Search(len(s.Idx), func(j int) bool { return s.Idx[j] >= i })
	if pos < len(s.Idx) && s.Idx[pos] == i {
		return s.Val[pos]
	}
	return 0
}

// Clone returns a deep copy.
func (s Sparse) Clone() Sparse {
	out := Sparse{Idx: make([]int32, len(s.Idx)), Val: make([]float64, len(s.Val))}
	copy(out.Idx, s.Idx)
	copy(out.Val, s.Val)
	return out
}

// Validate checks the strict index ordering invariant.
func (s Sparse) Validate() error {
	if len(s.Idx) != len(s.Val) {
		return fmt.Errorf("vecmath: sparse idx/val length mismatch: %d vs %d", len(s.Idx), len(s.Val))
	}
	for i := 1; i < len(s.Idx); i++ {
		if s.Idx[i] <= s.Idx[i-1] {
			return fmt.Errorf("vecmath: sparse indices not strictly increasing at %d", i)
		}
	}
	return nil
}

// Compact returns a copy of s without entries whose absolute value is below
// or equal to threshold. With threshold 0 it drops exact zeros only.
func (s Sparse) Compact(threshold float64) Sparse {
	out := Sparse{}
	for i, v := range s.Val {
		if v > threshold || v < -threshold {
			out.Idx = append(out.Idx, s.Idx[i])
			out.Val = append(out.Val, v)
		}
	}
	return out
}

// ScatterInto adds scale·s into the dense vector dst.
func (s Sparse) ScatterInto(dst []float64, scale float64) {
	for i, idx := range s.Idx {
		dst[idx] += scale * s.Val[i]
	}
}

// CopyInto writes the sparse entries into dst (dst is not cleared first).
func (s Sparse) CopyInto(dst []float64) {
	for i, idx := range s.Idx {
		dst[idx] = s.Val[i]
	}
}

// GatherSparse extracts the non-zero entries of a dense vector, skipping
// values with |v| ≤ threshold, producing a Sparse in index order.
func GatherSparse(x []float64, threshold float64) Sparse {
	var s Sparse
	for i, v := range x {
		if v > threshold || v < -threshold {
			s.Idx = append(s.Idx, int32(i))
			s.Val = append(s.Val, v)
		}
	}
	return s
}

// GatherSparseIndices extracts entries of the dense vector x at the given
// positions (which must be sorted ascending), skipping zeros. This is faster
// than GatherSparse when the caller tracked touched positions.
func GatherSparseIndices(x []float64, positions []int32, threshold float64) Sparse {
	var s Sparse
	for _, i := range positions {
		v := x[i]
		if v > threshold || v < -threshold {
			s.Idx = append(s.Idx, i)
			s.Val = append(s.Val, v)
		}
	}
	return s
}

// Bytes returns the approximate in-memory footprint of the sparse vector
// (payload only: 4 bytes per index + 8 bytes per value). Used for the index
// size accounting of Table 2.
func (s Sparse) Bytes() int64 {
	return int64(len(s.Idx))*4 + int64(len(s.Val))*8
}
