// Package vecmath provides the dense- and sparse-vector primitives shared by
// the RWR engines, the BCA ink-propagation code and the lower-bound index:
// L1 arithmetic, top-k selection, and a compact sorted sparse-vector type
// used for rounded hub proximity columns and resumable BCA state.
package vecmath

import (
	"fmt"
	"math"
	"sort"
)

// L1Norm returns Σ|x_i|.
func L1Norm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// L1Diff returns Σ|x_i − y_i|. The slices must have equal length.
func L1Diff(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: L1Diff length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += math.Abs(x[i] - y[i])
	}
	return s
}

// L1DiffRange returns Σ|x_i − y_i| over i ∈ [lo, hi), accumulating in index
// order. Summing per-range results in range order yields a deterministic
// total for any fixed partition of the vector (the parallel power method
// reduces over fixed-size blocks so its residual does not depend on the
// worker count; note the blocked total may differ from the single-sweep
// L1Diff by a few ulps, since the additions associate differently).
func L1DiffRange(x, y []float64, lo, hi int) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: L1DiffRange length mismatch %d vs %d", len(x), len(y)))
	}
	if lo < 0 || hi > len(x) || lo > hi {
		panic(fmt.Sprintf("vecmath: L1DiffRange range [%d,%d) outside [0,%d)", lo, hi, len(x)))
	}
	var s float64
	for i := lo; i < hi; i++ {
		s += math.Abs(x[i] - y[i])
	}
	return s
}

// Range is a half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions [0, n) into at most parts contiguous, non-empty ranges of
// near-equal length (sizes differ by at most one). Fewer than parts ranges
// are returned when n < parts; zero ranges when n == 0. Workers iterating the
// returned segments in order visit every index exactly once, in order.
func Split(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	if parts <= 1 {
		return []Range{{0, n}}
	}
	segs := make([]Range, 0, parts)
	size, rem := n/parts, n%parts
	lo := 0
	for p := 0; p < parts; p++ {
		hi := lo + size
		if p < rem {
			hi++
		}
		segs = append(segs, Range{lo, hi})
		lo = hi
	}
	return segs
}

// MaxAbsDiff returns max_i |x_i − y_i|.
func MaxAbsDiff(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: MaxAbsDiff length mismatch %d vs %d", len(x), len(y)))
	}
	var m float64
	for i := range x {
		if d := math.Abs(x[i] - y[i]); d > m {
			m = d
		}
	}
	return m
}

// Zero sets every entry of x to 0 (in place).
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Scale multiplies every entry of x by a (in place).
func Scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

// AddScaled computes dst += a·src (in place). The slices must have equal
// length.
func AddScaled(dst []float64, a float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("vecmath: AddScaled length mismatch %d vs %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] += a * src[i]
	}
}

// TopKValues returns the k largest values of x in descending order. If x has
// fewer than k entries the result is padded with zeros so that callers can
// index position k−1 unconditionally (matching the paper's p̂(1:K) vectors,
// where absent proximities are 0).
func TopKValues(x []float64, k int) []float64 {
	if k <= 0 {
		return nil
	}
	out := make([]float64, k)
	// Selection with a min-heap of size k over the values.
	h := newMinHeap(k)
	for _, v := range x {
		h.offer(v)
	}
	vals := h.drainDescending()
	copy(out, vals)
	return out
}

// Entry pairs a node index with a value; used for ranked proximity lists.
type Entry struct {
	Index int32
	Value float64
}

// TopKEntries returns the k largest entries of x in descending value order,
// ties broken by smaller index (a deterministic total order, so reverse
// top-k answers are reproducible). If x has fewer than k positive entries
// the missing slots are simply absent (the result may be shorter than k).
// Zero entries are excluded: a node with zero proximity is never a
// meaningful top-k member.
func TopKEntries(x []float64, k int) []Entry {
	if k <= 0 {
		return nil
	}
	entries := make([]Entry, 0, k+1)
	// Maintain entries as a small sorted-descending slice; for the k ≪ n
	// regime this is competitive with a heap and keeps the deterministic
	// tie-break simple.
	worse := func(a, b Entry) bool { // a ranks worse than b
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.Index > b.Index
	}
	for i, v := range x {
		if v <= 0 {
			continue
		}
		e := Entry{Index: int32(i), Value: v}
		if len(entries) == k && worse(e, entries[k-1]) {
			continue
		}
		pos := sort.Search(len(entries), func(j int) bool { return worse(entries[j], e) })
		entries = append(entries, Entry{})
		copy(entries[pos+1:], entries[pos:])
		entries[pos] = e
		if len(entries) > k {
			entries = entries[:k]
		}
	}
	return entries
}

// KthLargest returns the k-th largest value of x (1-based), or 0 if x has
// fewer than k entries. This is the paper's pkmax when applied to a
// proximity vector.
func KthLargest(x []float64, k int) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	h := newMinHeap(k)
	for _, v := range x {
		h.offer(v)
	}
	if h.size < k {
		return 0
	}
	return h.data[0]
}

// minHeap is a fixed-capacity min-heap used for top-k selection.
type minHeap struct {
	data []float64
	size int
}

func newMinHeap(k int) *minHeap {
	return &minHeap{data: make([]float64, k)}
}

func (h *minHeap) offer(v float64) {
	if h.size < len(h.data) {
		h.data[h.size] = v
		h.size++
		h.siftUp(h.size - 1)
		return
	}
	if v <= h.data[0] {
		return
	}
	h.data[0] = v
	h.siftDown(0)
}

func (h *minHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.data[parent] <= h.data[i] {
			return
		}
		h.data[parent], h.data[i] = h.data[i], h.data[parent]
		i = parent
	}
}

func (h *minHeap) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < h.size && h.data[l] < h.data[smallest] {
			smallest = l
		}
		if r < h.size && h.data[r] < h.data[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.data[i], h.data[smallest] = h.data[smallest], h.data[i]
		i = smallest
	}
}

// drainDescending empties the heap, returning its contents sorted
// descending.
func (h *minHeap) drainDescending() []float64 {
	out := make([]float64, h.size)
	copy(out, h.data[:h.size])
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// IsSortedDescending reports whether x is non-increasing.
func IsSortedDescending(x []float64) bool {
	for i := 1; i < len(x); i++ {
		if x[i] > x[i-1] {
			return false
		}
	}
	return true
}
