// Package topk implements top-k RWR proximity search — the *forward*
// problem the paper builds on (§6.2): given a source node u, find the k
// nodes with the largest proximity from u. Three engines are provided:
//
//   - Exact: power method + selection (the reference).
//   - Push: a bound-driven push search in the spirit of BPA (Gupta et al.
//     [11]) — run BCA and stop as soon as the residue can no longer change
//     the top-k membership.
//   - MonteCarlo: sampling-based approximate search (Avrachenkov et al. [3]).
//
// The reverse top-k engine never calls these at query time (that is the
// whole point of the paper), but they serve as comparators, as ablation
// baselines, and to sanity-check the index.
package topk

import (
	"fmt"
	"math/rand"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

// Result is a ranked proximity list.
type Result struct {
	// Entries are the top-k nodes in descending proximity order.
	Entries []vecmath.Entry
	// Iterations is engine-specific work: power iterations, BCA
	// iterations, or random walks.
	Iterations int
	// Exact reports whether the values are exact (up to solver ε) or
	// approximate.
	Exact bool
}

// Exact computes the top-k proximity set of u with the power method.
func Exact(g *graph.Graph, u graph.NodeID, k int, p rwr.Params) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	res, err := rwr.ProximityVector(g, u, p)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Entries:    vecmath.TopKEntries(res.Vector, k),
		Iterations: res.Iterations,
		Exact:      true,
	}, nil
}

// Push runs a BPA-style bound-driven search: it advances batch BCA from u
// and terminates as soon as the upper bound on the (k+1)-th largest
// proximity (current (k+1)-th lower bound plus the whole residue) cannot
// displace the current k-th candidate — the stopping rule of [11] adapted
// to batch propagation. The returned ranking is exact in membership when
// the gap condition fires with a clean margin; values are lower bounds.
func Push(g *graph.Graph, u graph.NodeID, k int, cfg bca.Config, ws *bca.Workspace) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if int(u) < 0 || int(u) >= g.N() {
		return Result{}, fmt.Errorf("topk: node %d out of range [0,%d)", u, g.N())
	}
	if ws == nil {
		ws = bca.NewWorkspace(g.N())
	}
	st := bca.Start(u, bca.NoHubs)
	iters := 0
	for {
		// Candidate membership is settled when even giving ALL residue to
		// the single best outsider cannot lift it past the k-th insider.
		pt := bca.MaterializePt(st, bca.NoHubs, ws)
		entries := vecmath.TopKEntries(pt, k+1)
		if len(entries) > k {
			kth := entries[k-1].Value
			challenger := entries[k].Value + st.RNorm
			if challenger < kth {
				return Result{Entries: entries[:k], Iterations: iters, Exact: false}, nil
			}
		} else if st.RNorm == 0 {
			return Result{Entries: entries, Iterations: iters, Exact: true}, nil
		} else if len(entries) > 0 && st.RNorm < entries[len(entries)-1].Value {
			// Fewer than k+1 touched nodes but the residue cannot create
			// a competitive newcomer either.
			return Result{Entries: entries, Iterations: iters, Exact: false}, nil
		}
		if iters >= cfg.MaxIters {
			return Result{Entries: entries[:min(k, len(entries))], Iterations: iters, Exact: false},
				fmt.Errorf("topk: push search did not settle within %d iterations", cfg.MaxIters)
		}
		if bca.Step(g, st, bca.NoHubs, cfg, ws) == 0 {
			// Residue stuck below η: shrink η to keep draining.
			c := cfg
			for c.Eta > 1e-15 {
				c.Eta /= 10
				if bca.Step(g, st, bca.NoHubs, c, ws) > 0 {
					break
				}
			}
			if st.RNorm > 0 && c.Eta <= 1e-15 {
				return Result{Entries: entries[:min(k, len(entries))], Iterations: iters, Exact: false}, nil
			}
		}
		iters++
	}
}

// MonteCarlo estimates the top-k set from `walks` complete-path samples.
// Membership near the boundary may be wrong; see [3] for error analysis.
func MonteCarlo(g *graph.Graph, u graph.NodeID, k, walks int, p rwr.Params, rng *rand.Rand) (Result, error) {
	if k <= 0 {
		return Result{}, fmt.Errorf("topk: k must be positive, got %d", k)
	}
	est, err := rwr.MonteCarloCompletePath(g, u, walks, p, rng)
	if err != nil {
		return Result{}, err
	}
	return Result{Entries: vecmath.TopKEntries(est, k), Iterations: walks, Exact: false}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
