package topk

import (
	"math/rand"
	"testing"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/rwr"
)

func testGraph(t testing.TB, seed int64, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddWeightedEdge(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64())
	}
	for i := 0; i < 4*n; i++ {
		b.AddWeightedEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), 1+rng.Float64()*3)
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestExactBasic(t *testing.T) {
	g := testGraph(t, 1, 50)
	res, err := Exact(g, 0, 5, rwr.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 5 || !res.Exact {
		t.Fatalf("bad result: %+v", res)
	}
	for i := 1; i < len(res.Entries); i++ {
		if res.Entries[i].Value > res.Entries[i-1].Value {
			t.Error("entries not descending")
		}
	}
	// The source itself holds the restart mass and tops its own list on
	// this well-connected graph.
	if res.Entries[0].Index != 0 {
		t.Errorf("top entry is %d, want source 0", res.Entries[0].Index)
	}
}

func TestExactValidation(t *testing.T) {
	g := testGraph(t, 1, 10)
	if _, err := Exact(g, 0, 0, rwr.DefaultParams()); err == nil {
		t.Error("want k error")
	}
	if _, err := Exact(g, 99, 3, rwr.DefaultParams()); err == nil {
		t.Error("want range error")
	}
}

func TestPushMatchesExactMembership(t *testing.T) {
	g := testGraph(t, 7, 80)
	p := rwr.DefaultParams()
	cfg := bca.Config{Alpha: 0.15, Eta: 1e-6, Delta: 0.1, MaxIters: 100000}
	ws := bca.NewWorkspace(g.N())
	for _, u := range []graph.NodeID{0, 13, 42} {
		exact, err := Exact(g, u, 5, p)
		if err != nil {
			t.Fatal(err)
		}
		push, err := Push(g, u, 5, cfg, ws)
		if err != nil {
			t.Fatal(err)
		}
		want := map[int32]bool{}
		for _, e := range exact.Entries {
			want[e.Index] = true
		}
		for _, e := range push.Entries {
			if !want[e.Index] {
				t.Errorf("u=%d: push returned %d, not in exact top-5 %v", u, e.Index, exact.Entries)
			}
		}
		if len(push.Entries) != len(exact.Entries) {
			t.Errorf("u=%d: push returned %d entries, want %d", u, len(push.Entries), len(exact.Entries))
		}
	}
}

func TestPushNilWorkspace(t *testing.T) {
	g := testGraph(t, 2, 30)
	if _, err := Push(g, 0, 3, bca.DefaultConfig(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestPushValidation(t *testing.T) {
	g := testGraph(t, 2, 20)
	ws := bca.NewWorkspace(g.N())
	if _, err := Push(g, 0, 0, bca.DefaultConfig(), ws); err == nil {
		t.Error("want k error")
	}
	if _, err := Push(g, -2, 3, bca.DefaultConfig(), ws); err == nil {
		t.Error("want range error")
	}
	if _, err := Push(g, 0, 3, bca.Config{}, ws); err == nil {
		t.Error("want config error")
	}
}

func TestMonteCarloRecallIsHigh(t *testing.T) {
	g := testGraph(t, 9, 40)
	p := rwr.DefaultParams()
	rng := rand.New(rand.NewSource(11))
	exact, err := Exact(g, 3, 5, p)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarlo(g, 3, 5, 100000, p, rng)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int32]bool{}
	for _, e := range exact.Entries {
		want[e.Index] = true
	}
	overlap := 0
	for _, e := range mc.Entries {
		if want[e.Index] {
			overlap++
		}
	}
	if overlap < 4 {
		t.Errorf("MC recall %d/5 too low; exact %v, mc %v", overlap, exact.Entries, mc.Entries)
	}
}

func TestMonteCarloValidation(t *testing.T) {
	g := testGraph(t, 2, 20)
	rng := rand.New(rand.NewSource(1))
	if _, err := MonteCarlo(g, 0, 0, 100, rwr.DefaultParams(), rng); err == nil {
		t.Error("want k error")
	}
	if _, err := MonteCarlo(g, 0, 3, 0, rwr.DefaultParams(), rng); err == nil {
		t.Error("want walks error")
	}
}

func TestPushCheaperThanExactIterationsTimesEdges(t *testing.T) {
	// The point of push search: it touches a local neighbourhood instead
	// of iterating over the whole graph; its iteration count should be
	// modest. (Coarse sanity check, not a microbenchmark.)
	g := testGraph(t, 4, 500)
	cfg := bca.Config{Alpha: 0.15, Eta: 1e-5, Delta: 0.1, MaxIters: 100000}
	res, err := Push(g, 7, 5, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 200 {
		t.Errorf("push used %d iterations; expected a local, quick search", res.Iterations)
	}
}
