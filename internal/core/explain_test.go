package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestExplainMatchesQuery(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	eng, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	for q := graph.NodeID(0); int(q) < g.N(); q++ {
		ex, err := eng.Explain(q, 2, true)
		if err != nil {
			t.Fatal(err)
		}
		var fromExplain []graph.NodeID
		for _, d := range ex.Decisions {
			if d.InAnswer {
				fromExplain = append(fromExplain, d.Node)
			}
		}
		want, _, err := eng.Query(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fromExplain, want) {
			t.Errorf("q=%d: explain answers %v, query answers %v", q, fromExplain, want)
		}
		// With includePruned, every node gets a decision.
		if len(ex.Decisions) != g.N() {
			t.Errorf("q=%d: %d decisions, want %d", q, len(ex.Decisions), g.N())
		}
	}
}

func TestExplainExcludesPrunedByDefault(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	eng, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := eng.Explain(0, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ex.Decisions {
		if d.Outcome == OutcomePruned {
			t.Errorf("pruned decision present without includePruned: %+v", d)
		}
	}
}

func TestExplainReadOnly(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	eng, err := NewEngine(g, idx, true) // update mode on purpose
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Explain(1, 2, false); err != nil {
		t.Fatal(err)
	}
	if idx.Refinements() != 0 {
		t.Errorf("Explain committed %d refinements", idx.Refinements())
	}
}

func TestExplainValidationAndRender(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	eng, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Explain(-1, 2, false); err == nil {
		t.Error("want range error")
	}
	if _, err := eng.Explain(0, 9, false); err == nil {
		t.Error("want k error")
	}
	ex, err := eng.Explain(1, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteExplanation(&buf, ex); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "reverse top-2 of node 1") {
		t.Errorf("render missing header: %q", out)
	}
	for _, o := range []Outcome{OutcomePruned, OutcomeExactHit, OutcomeUpperBoundHit, OutcomeRefinedIn, OutcomeRefinedOut, OutcomeFallback, Outcome(99)} {
		if o.String() == "" {
			t.Error("empty outcome name")
		}
	}
}
