package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/rwr"
)

// BatchResult pairs one query of a batch with its answer.
type BatchResult struct {
	Query  graph.NodeID
	Answer []graph.NodeID
	Stats  QueryStats
	Err    error
}

// spmmChunkWidth caps how many proximity columns share one SpMM slab. The
// slab costs 2·n·width float64s, so an unbounded batch on a large graph
// would trade the cache-residency the batching exists for against slab
// size; 16 columns keeps the working set tight while amortizing the CSR
// traffic 16 ways (the knee of the batch-width sweep in BENCH_spmm.json).
const spmmChunkWidth = 16

// QueryBatch evaluates many reverse top-k queries concurrently against one
// shared index (which is safe for concurrent use). Results arrive in input
// order. In update mode, refinements from concurrent queries all land in the
// shared index — later queries in the batch benefit, exactly like a
// sequential update-mode workload, just without a deterministic refinement
// order.
//
// Two or more valid queries take the SpMM tier: their PMPN proximity
// columns advance together in chunked slabs (rwr.ProximityToBatchFunc),
// amortizing the transition matrix's memory traffic across the chunk, and
// each query's candidate-decision step is dealt to a worker engine the
// moment its column converges — decisions overlap the remaining columns'
// iterations. Candidates whose refinement budget stalls are deferred past
// the sweep and resolved for the WHOLE batch at once: their exact vectors
// depend only on the candidate, so duplicates across queries are solved in
// one shared forward SpMM slab set (rwr.ProximityVectorBatchFunc) and each
// query just compares its own p_u(q) against the shared exact threshold. A
// single valid query falls back to the scalar path. Answers are identical
// either way: the batched proximity vectors are bit-identical to scalar
// runs, and each decision depends only on its own vector.
//
// Queries and answers are in the EXTERNAL identifier space; when the index
// carries a cache-aware relabeling (lbindex.Index.Relabeling) translation
// happens here, so callers never see internal storage labels.
//
// workers is the TOTAL parallelism budget (≤ 0 selects GOMAXPROCS). The
// SpMM tier gives the full budget to the shared slab sweep; decision jobs
// run on as many engines as there are queries to keep busy (inter-query),
// each dealt ⌊workers/inter⌋ intra-query workers plus a remainder share, so
// no core sits idle in either phase.
//
// An out-of-range query is reported in its own BatchResult.Err; only
// malformed batch-wide inputs (bad k, mismatched graph/index) error the
// whole call.
//
// practical toggles the paper-literal decision mode on every worker engine.
func QueryBatch(g graph.View, idx *lbindex.Index, queries []graph.NodeID, k, workers int, update, practical bool) ([]BatchResult, error) {
	if k <= 0 || k > idx.K() {
		return nil, fmt.Errorf("core: k=%d outside [1,%d] supported by the index", k, idx.K())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	inter := workers
	if inter > len(queries) {
		inter = len(queries)
	}
	// Deal the budget: every engine gets ⌊workers/inter⌋ intra-query
	// workers, and the remainder is distributed one extra each to the first
	// engines so no core sits idle (8 workers over 5 queries → 2+2+2+1+1,
	// not 5×1 with 3 parked).
	intra, extra := 1, 0
	if inter > 0 {
		intra, extra = workers/inter, workers%inter
	}
	// Engines are constructed before any goroutine starts: a construction
	// error (graph/index mismatch) must surface as an error, not leave the
	// jobs channel without receivers and deadlock the send loop.
	engines := make([]*Engine, inter)
	for w := range engines {
		eng, err := NewEngine(g, idx, update)
		if err != nil {
			return nil, err
		}
		eng.SetPracticalDecisions(practical)
		engineIntra := intra
		if w < extra {
			engineIntra++
		}
		eng.SetWorkers(engineIntra)
		engines[w] = eng
	}

	// Range-check every query up front: a bad query gets its own result
	// error (never a batch error), and the SpMM slab carries only valid
	// columns.
	results := make([]BatchResult, len(queries))
	valid := make([]int, 0, len(queries))
	for i, q := range queries {
		if int(q) < 0 || int(q) >= g.N() {
			err := fmt.Errorf("core: query node %d out of range [0,%d)", q, g.N())
			results[i] = BatchResult{Query: q, Stats: QueryStats{Query: q, K: k}, Err: err}
			continue
		}
		valid = append(valid, i)
	}

	if len(valid) <= 1 {
		// Scalar fallback: one column gains nothing from a slab.
		for _, i := range valid {
			q := queries[i]
			answer, stats, err := engines[0].Query(idx.ToInternal(q), k)
			stats.Query = q
			results[i] = BatchResult{Query: q, Answer: externalAnswer(idx, answer), Stats: stats, Err: err}
		}
		return results, nil
	}

	// SpMM tier. The coordinator iterates the chunked slabs; retired columns
	// become decision jobs the worker engines drain concurrently. The jobs
	// channel is buffered for the whole batch so the slab sweep never stalls
	// behind a slow decision. Each worker runs only the DEFERRED decision
	// sweep (bounds and refinement); candidates that stall are parked in
	// per-query pending lists and resolved once for the whole batch below.
	type decideJob struct {
		i         int // index into queries/results
		vec       []float64
		iters     int
		pmElapsed time.Duration
	}
	// decided is one query's sweep outcome awaiting fallback resolution.
	// Workers write disjoint entries (indexed by query position).
	type decided struct {
		partial []graph.NodeID // bound-decided members, internal ids
		pend    []pendingFallback
		stats   QueryStats
		err     error
	}
	state := make([]decided, len(queries))
	jobs := make(chan decideJob, len(valid))
	var wg sync.WaitGroup
	for _, eng := range engines {
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			for jb := range jobs {
				st := &state[jb.i]
				st.stats = QueryStats{Query: queries[jb.i], K: k}
				start := time.Now()
				st.partial, st.pend, st.err = eng.decideSetDeferred(jb.vec, k, idx.OwnedNodes(), &st.stats)
				st.stats.PMPNIters = jb.iters
				st.stats.PMPNElapsed = jb.pmElapsed
				st.stats.Elapsed = jb.pmElapsed + time.Since(start)
			}
		}(eng)
	}
	var batchErr error
	for lo := 0; lo < len(valid) && batchErr == nil; lo += spmmChunkWidth {
		hi := min(lo+spmmChunkWidth, len(valid))
		chunk := valid[lo:hi]
		internal := make([]graph.NodeID, len(chunk))
		for j, i := range chunk {
			internal[j] = idx.ToInternal(queries[i])
		}
		chunkStart := time.Now()
		batchErr = rwr.ProximityToBatchFunc(g, internal, idx.Options().RWR, workers, func(j int, res rwr.Result, rerr error) {
			i := chunk[j]
			if rerr != nil {
				results[i] = BatchResult{
					Query: queries[i],
					Stats: QueryStats{Query: queries[i], K: k, PMPNIters: res.Iterations, PMPNElapsed: time.Since(chunkStart)},
					Err:   rerr,
				}
				return
			}
			jobs <- decideJob{i: i, vec: res.Vector, iters: res.Iterations, pmElapsed: time.Since(chunkStart)}
		})
	}
	close(jobs)
	wg.Wait()
	if batchErr != nil {
		// Unreachable after the up-front range check (Params validated at
		// index build); surfaced defensively as a batch error.
		return nil, batchErr
	}

	// Cross-query fallback resolution. A deferred candidate's exact vector
	// depends only on the candidate — never on the query — so the whole
	// batch's stalls dedupe into ONE set of forward SpMM slabs: each unique
	// node is solved (and, in update mode, committed) once, then every
	// query that deferred it decides membership against its own p_u(q).
	// Per-query inline resolution would re-stream the matrix once per
	// query; here B queries stalling on overlapping hub-adjacent candidates
	// pay for the solve once.
	colOf := make(map[graph.NodeID]int)
	var unique []pendingFallback
	var firstQ []int // unique column → query position that deferred it first
	for _, i := range valid {
		for _, pf := range state[i].pend {
			if _, ok := colOf[pf.u]; !ok {
				colOf[pf.u] = len(unique)
				unique = append(unique, pf)
				firstQ = append(firstQ, i)
			}
		}
	}
	if len(unique) > 0 {
		resolveStart := time.Now()
		th, rerr := engines[0].exactThresholds(unique, k, workers, func(col int) {
			state[firstQ[col]].stats.Committed++
		})
		resolveElapsed := time.Since(resolveStart)
		tieTol := engines[0].tieTol
		for _, i := range valid {
			st := &state[i]
			if len(st.pend) == 0 || st.err != nil {
				continue
			}
			if rerr != nil {
				st.err = rerr
				continue
			}
			for _, pf := range st.pend {
				if pf.puq >= th[colOf[pf.u]]-tieTol {
					st.partial = append(st.partial, pf.u)
				}
			}
			// The shared resolution benefits every pending query; charging
			// each one the full wall time keeps per-query Elapsed an upper
			// bound, matching the shared-PMPN accounting above.
			st.stats.Elapsed += resolveElapsed
			st.stats.FallbackElapsed += resolveElapsed
		}
	}

	// Finalize in input order (PMPN-failed columns reported their own
	// results above and have no sweep state).
	for _, i := range valid {
		if results[i].Err != nil {
			continue
		}
		st := &state[i]
		if st.err != nil {
			results[i] = BatchResult{Query: queries[i], Stats: st.stats, Err: st.err}
			continue
		}
		sort.Slice(st.partial, func(a, b int) bool { return st.partial[a] < st.partial[b] })
		st.stats.Results = len(st.partial)
		results[i] = BatchResult{Query: queries[i], Answer: externalAnswer(idx, st.partial), Stats: st.stats}
	}
	return results, nil
}
