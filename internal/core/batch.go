package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/lbindex"
)

// BatchResult pairs one query of a batch with its answer.
type BatchResult struct {
	Query  graph.NodeID
	Answer []graph.NodeID
	Stats  QueryStats
	Err    error
}

// QueryBatch evaluates many reverse top-k queries concurrently against one
// shared index, one engine per worker (engines are single-goroutine; the
// index itself is safe for concurrent use). Results arrive in input order.
// In update mode, refinements from concurrent queries all land in the
// shared index — later queries in the batch benefit, exactly like a
// sequential update-mode workload, just without a deterministic refinement
// order.
//
// workers ≤ 0 selects GOMAXPROCS. practical toggles the paper-literal
// decision mode on every worker engine.
func QueryBatch(g *graph.Graph, idx *lbindex.Index, queries []graph.NodeID, k, workers int, update, practical bool) ([]BatchResult, error) {
	if k <= 0 || k > idx.K() {
		return nil, fmt.Errorf("core: k=%d outside [1,%d] supported by the index", k, idx.K())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	results := make([]BatchResult, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var initErr error
	var initMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng, err := NewEngine(g, idx, update)
			if err != nil {
				initMu.Lock()
				if initErr == nil {
					initErr = err
				}
				initMu.Unlock()
				return
			}
			eng.SetPracticalDecisions(practical)
			for i := range jobs {
				q := queries[i]
				answer, stats, err := eng.Query(q, k)
				results[i] = BatchResult{Query: q, Answer: answer, Stats: stats, Err: err}
			}
		}()
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if initErr != nil {
		return nil, initErr
	}
	return results, nil
}
