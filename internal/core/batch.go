package core

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/lbindex"
)

// BatchResult pairs one query of a batch with its answer.
type BatchResult struct {
	Query  graph.NodeID
	Answer []graph.NodeID
	Stats  QueryStats
	Err    error
}

// QueryBatch evaluates many reverse top-k queries concurrently against one
// shared index (which is safe for concurrent use). Results arrive in input
// order. In update mode, refinements from concurrent queries all land in the
// shared index — later queries in the batch benefit, exactly like a
// sequential update-mode workload, just without a deterministic refinement
// order.
//
// workers is the TOTAL parallelism budget (≤ 0 selects GOMAXPROCS), composed
// across the two levels: as many single-goroutine engines as there are
// queries to keep busy (inter-query), and the leftover budget dealt to each
// engine as intra-query workers (Engine.SetWorkers). A long batch therefore
// runs one sequential engine per core — the throughput-optimal shape — while
// a short batch (fewer queries than cores, the latency-sensitive case)
// splits each query across the idle cores instead of leaving them parked.
//
// practical toggles the paper-literal decision mode on every worker engine.
func QueryBatch(g graph.View, idx *lbindex.Index, queries []graph.NodeID, k, workers int, update, practical bool) ([]BatchResult, error) {
	if k <= 0 || k > idx.K() {
		return nil, fmt.Errorf("core: k=%d outside [1,%d] supported by the index", k, idx.K())
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	inter := workers
	if inter > len(queries) {
		inter = len(queries)
	}
	// Deal the budget: every engine gets ⌊workers/inter⌋ intra-query
	// workers, and the remainder is distributed one extra each to the first
	// engines so no core sits idle (8 workers over 5 queries → 2+2+2+1+1,
	// not 5×1 with 3 parked).
	intra, extra := 1, 0
	if inter > 0 {
		intra, extra = workers/inter, workers%inter
	}
	// Engines are constructed before any goroutine starts: a construction
	// error (graph/index mismatch) must surface as an error, not leave the
	// unbuffered jobs channel without receivers and deadlock the send loop.
	engines := make([]*Engine, inter)
	for w := range engines {
		eng, err := NewEngine(g, idx, update)
		if err != nil {
			return nil, err
		}
		eng.SetPracticalDecisions(practical)
		engineIntra := intra
		if w < extra {
			engineIntra++
		}
		eng.SetWorkers(engineIntra)
		engines[w] = eng
	}
	results := make([]BatchResult, len(queries))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for _, eng := range engines {
		wg.Add(1)
		go func(eng *Engine) {
			defer wg.Done()
			for i := range jobs {
				q := queries[i]
				answer, stats, err := eng.Query(q, k)
				results[i] = BatchResult{Query: q, Answer: answer, Stats: stats, Err: err}
			}
		}(eng)
	}
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, nil
}
