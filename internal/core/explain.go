package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

// stepWithEtaShrink advances one BCA step, shrinking η when stalled (in
// exact mode only, matching decide()'s behaviour).
func stepWithEtaShrink(e *Engine, ws *bca.Workspace, st *bca.State, cfg bca.Config, hm bca.HubProximities) int {
	if n := bca.Step(e.g, st, hm, cfg, ws); n > 0 {
		return n
	}
	if e.practical {
		return 0
	}
	for eta := cfg.Eta / 10; eta >= e.etaFloor; eta /= 10 {
		c := cfg
		c.Eta = eta
		if n := bca.Step(e.g, st, hm, c, ws); n > 0 {
			return n
		}
	}
	return 0
}

func kthLargest(x []float64, k int) float64 { return vecmath.KthLargest(x, k) }

// Outcome classifies how the engine decided one node during a query.
type Outcome uint8

const (
	// OutcomePruned: the indexed lower bound alone excluded the node.
	OutcomePruned Outcome = iota
	// OutcomeExactHit: zero effective residue made the lower bound exact
	// and it admitted the node.
	OutcomeExactHit
	// OutcomeUpperBoundHit: the first staircase upper bound admitted the
	// node without refinement.
	OutcomeUpperBoundHit
	// OutcomeRefinedIn / OutcomeRefinedOut: refinement tightened the
	// bounds until they admitted / excluded the node.
	OutcomeRefinedIn
	OutcomeRefinedOut
	// OutcomeFallback: the refinement budget ran out and an exact
	// power-method computation decided.
	OutcomeFallback
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomePruned:
		return "pruned"
	case OutcomeExactHit:
		return "exact-hit"
	case OutcomeUpperBoundHit:
		return "ub-hit"
	case OutcomeRefinedIn:
		return "refined-in"
	case OutcomeRefinedOut:
		return "refined-out"
	case OutcomeFallback:
		return "fallback"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Decision explains how one node was classified.
type Decision struct {
	Node graph.NodeID
	// Proximity is p_u(q), the exact proximity from the node to the query.
	Proximity float64
	// LowerBound is the indexed p̂_u(k) at the time of the decision.
	LowerBound float64
	// Residue is the node's effective undecided mass (BCA residue plus
	// rounding slack) before any refinement.
	Residue float64
	Outcome Outcome
	// InAnswer reports the final classification.
	InAnswer bool
	// RefineSteps is how many BCA steps this node consumed.
	RefineSteps int
}

// Explanation is a full per-node account of one reverse top-k query —
// the debugging/observability counterpart of Engine.Query. Decisions are
// ordered by node id and include pruned nodes only when requested.
type Explanation struct {
	Query     graph.NodeID
	K         int
	Decisions []Decision
	Stats     QueryStats
}

// Explain runs a reverse top-k query like Query but records the decision
// path of every candidate (and, with includePruned, of pruned nodes too).
// It never modifies the index, independent of the engine's update mode, so
// an explanation reflects the index state as-is.
func (e *Engine) Explain(q graph.NodeID, k int, includePruned bool) (*Explanation, error) {
	stats := QueryStats{Query: q, K: k}
	if int(q) < 0 || int(q) >= e.g.N() {
		return nil, fmt.Errorf("core: query node %d out of range [0,%d)", q, e.g.N())
	}
	if k <= 0 || k > e.idx.K() {
		return nil, fmt.Errorf("core: k=%d outside [1,%d] supported by the index", k, e.idx.K())
	}
	pmpn, err := rwr.ProximityToParallel(e.g, q, e.idx.Options().RWR, e.workers)
	if err != nil {
		return nil, err
	}
	stats.PMPNIters = pmpn.Iterations

	ex := &Explanation{Query: q, K: k}
	ws := e.wsPool.Get()
	defer e.wsPool.Put(ws)
	for u := range e.eachIndexed() {
		d, err := e.explainNode(ws, u, k, pmpn.Vector[u], &stats)
		if err != nil {
			return nil, err
		}
		if d.Outcome == OutcomePruned && !includePruned {
			continue
		}
		ex.Decisions = append(ex.Decisions, d)
	}
	sort.Slice(ex.Decisions, func(i, j int) bool { return ex.Decisions[i].Node < ex.Decisions[j].Node })
	for _, d := range ex.Decisions {
		if d.InAnswer {
			stats.Results++
		}
	}
	ex.Stats = stats
	return ex, nil
}

// explainNode mirrors decide() but on a throwaway state and with outcome
// recording.
func (e *Engine) explainNode(ws *bca.Workspace, u graph.NodeID, k int, puq float64, stats *QueryStats) (Decision, error) {
	d := Decision{
		Node:       u,
		Proximity:  puq,
		LowerBound: e.idx.KthLowerBound(u, k),
		Residue:    e.idx.ResidueNorm(u) + e.idx.RoundingSlack(u),
	}
	if puq < d.LowerBound-e.tieTol {
		d.Outcome = OutcomePruned
		return d, nil
	}
	stats.Candidates++
	if d.Residue == 0 {
		stats.Hits++
		d.Outcome = OutcomeExactHit
		d.InAnswer = true
		return d, nil
	}
	phat := e.idx.PHatRow(u)
	if puq >= UpperBound(phat, k, d.Residue)-e.tieTol {
		stats.Hits++
		d.Outcome = OutcomeUpperBoundHit
		d.InAnswer = true
		return d, nil
	}

	st := e.idx.StateSnapshot(u)
	if st == nil {
		return d, fmt.Errorf("core: node %d has residue but no state", u)
	}
	cfg := e.idx.Options().BCA
	hm := e.idx.HubMatrix()
	for {
		if puq < phat[k-1]-e.tieTol {
			d.Outcome = OutcomeRefinedOut
			return d, nil
		}
		slack := e.idx.StateSlack(st)
		if st.RNorm+slack == 0 || puq >= UpperBound(phat, k, st.RNorm+slack)-e.tieTol {
			d.Outcome = OutcomeRefinedIn
			d.InAnswer = true
			return d, nil
		}
		if d.RefineSteps >= e.maxRefine {
			break
		}
		if stepWithEtaShrink(e, ws, st, cfg, hm) == 0 {
			break
		}
		d.RefineSteps++
		stats.RefineSteps++
		phat = bca.TopK(st, hm, ws, k)
	}

	if e.practical {
		// Mirror Query's practical-mode resolution: the node is still
		// inside the while loop, so it stays in the answer.
		d.Outcome = OutcomeRefinedIn
		d.InAnswer = true
		return d, nil
	}

	// Exact resolution (never committed: Explain is read-only).
	stats.ExactFallbacks++
	res, err := rwr.ProximityVector(e.g, u, e.idx.Options().RWR)
	if err != nil {
		return d, err
	}
	d.Outcome = OutcomeFallback
	d.InAnswer = puq >= kthLargest(res.Vector, k)-e.tieTol
	return d, nil
}

// WriteExplanation renders an explanation as an aligned table.
func WriteExplanation(w io.Writer, ex *Explanation) error {
	if _, err := fmt.Fprintf(w, "reverse top-%d of node %d: %d results, %d candidates\n",
		ex.K, ex.Query, ex.Stats.Results, ex.Stats.Candidates); err != nil {
		return err
	}
	for _, d := range ex.Decisions {
		mark := " "
		if d.InAnswer {
			mark = "*"
		}
		if _, err := fmt.Fprintf(w, "%s node %-8d p_u(q)=%.6g lb=%.6g residue=%.3g %-12s refines=%d\n",
			mark, d.Node, d.Proximity, d.LowerBound, d.Residue, d.Outcome, d.RefineSteps); err != nil {
			return err
		}
	}
	return nil
}
