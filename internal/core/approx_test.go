package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

func TestQueryApproximateSubsetAndRecall(t *testing.T) {
	g, err := gen.WebGraph(600, 21)
	if err != nil {
		t.Fatal(err)
	}
	opts := lbindex.DefaultOptions()
	opts.K = 20
	opts.HubBudget = 8
	opts.Omega = 0
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := workload.Queries(g.N(), 25, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the index with one update-mode pass (the paper ties the
	// hits-only approximation to the refined-index regime of Fig. 6);
	// then freeze it for the comparison.
	warm, err := NewEngine(g, idx, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, _, err := warm.Query(q, 10); err != nil {
			t.Fatal(err)
		}
	}
	eng, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	var exactTotal, approxTotal, inter int
	for _, q := range queries {
		approx, as, err := eng.QueryApproximate(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		exact, es, err := eng.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if as.Hits != as.Results {
			t.Errorf("approximate results must all be hits: %+v", as)
		}
		if as.RefineSteps != 0 || as.Committed != 0 {
			t.Errorf("approximate query refined or committed: %+v", as)
		}
		inExact := map[graph.NodeID]bool{}
		for _, u := range exact {
			inExact[u] = true
		}
		for _, u := range approx {
			if !inExact[u] {
				t.Errorf("q=%d: approximate answer %d not in exact answer", q, u)
			} else {
				inter++
			}
		}
		exactTotal += len(exact)
		approxTotal += len(approx)
		_ = es
	}
	// §5.3's observation on web graphs: hits ≈ results, so recall is high.
	recall := float64(inter) / float64(exactTotal)
	if recall < 0.6 {
		t.Errorf("approximate recall %.2f too low (hits %d of %d exact)", recall, approxTotal, exactTotal)
	}
}

func TestQueryApproximateValidation(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	eng, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.QueryApproximate(-1, 2); err == nil {
		t.Error("want range error")
	}
	if _, _, err := eng.QueryApproximate(0, 99); err == nil {
		t.Error("want k error")
	}
}

func TestQueryApproximateDoesNotTouchIndex(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	eng, err := NewEngine(g, idx, true) // even in update mode
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.QueryApproximate(1, 2); err != nil {
		t.Fatal(err)
	}
	if idx.Refinements() != 0 {
		t.Errorf("approximate query committed %d refinements", idx.Refinements())
	}
}
