package core

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

func TestQueryBatchMatchesSequential(t *testing.T) {
	g, err := gen.WebGraph(300, 17)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildIndexFromGraph(t, g, 10, 5)
	queries, err := workload.Queries(g.N(), 20, 2)
	if err != nil {
		t.Fatal(err)
	}

	results, err := QueryBatch(g, idx, queries, 5, 4, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("results = %d", len(results))
	}
	// Sequential reference on a fresh identical index.
	refIdx := buildIndexFromGraph(t, g, 10, 5)
	eng, err := NewEngine(g, refIdx, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", i, r.Err)
		}
		if r.Query != queries[i] {
			t.Errorf("result %d out of order", i)
		}
		want, _, err := eng.Query(queries[i], 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Answer, want) {
			t.Errorf("q=%d: batch %v, sequential %v", queries[i], r.Answer, want)
		}
	}
}

func TestQueryBatchValidation(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	if _, err := QueryBatch(g, idx, []graph.NodeID{0}, 0, 2, false, false); err == nil {
		t.Error("want k error")
	}
	// Out-of-range query is reported per result, not as a batch error.
	results, err := QueryBatch(g, idx, []graph.NodeID{0, 99}, 2, 2, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Errorf("valid query errored: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Error("out-of-range query should carry an error")
	}

	// A graph/index node-count mismatch must surface as an error — this
	// used to leave the jobs channel without receivers and deadlock.
	bigger, err := gen.WebGraph(g.N()+5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := QueryBatch(bigger, idx, []graph.NodeID{0}, 2, 2, false, false); err == nil {
		t.Error("want engine-construction error for mismatched graph/index")
	}
}

// buildIndexFromGraph mirrors buildIndex but for an arbitrary graph.
func buildIndexFromGraph(t testing.TB, g *graph.Graph, k, hubBudget int) *lbindex.Index {
	t.Helper()
	opts := lbindex.DefaultOptions()
	opts.K = k
	opts.HubBudget = hubBudget
	opts.Omega = 0
	opts.Workers = 2
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}
