package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/rwr"
)

// The anytime approximate query tier. Where Engine.Query runs the PMPN power
// iteration to convergence and then refines every undecided candidate to an
// exact answer, QueryAnytime drives the same iteration round by round
// through a Screen and stops as soon as the caller's ε budget is met,
// returning a two-part answer:
//
//   - guaranteed: nodes the monotone-safe bound tests (or, with δ > 0, the
//     Monte Carlo stage) confirmed into the answer;
//   - maybe: nodes still undecided when the run stopped.
//
// With δ = 0 every decision is deterministic, so
//
//	guaranteed ⊆ exact ⊆ guaranteed ∪ maybe
//
// holds unconditionally, and the stop rule |maybe| ≤ ε·(|guaranteed| +
// |maybe|) bounds how much of the exact answer can hide in the maybe set.
// With δ > 0 the Monte Carlo refinement may move nodes out of maybe on
// probabilistic evidence; all of its decisions over one query are wrong
// with probability at most δ (a union bound over every interval it tests),
// so the containment holds with probability ≥ 1 − δ.
//
// The tier never runs candidate refinement — the phase that dominates exact
// latency — which is what makes it the sub-exact serving path. If the
// deterministic band converges before the budget is met, the run stops
// anyway (iterating further cannot decide anything new; the remaining
// indecision lives in the index rows, not the iterate) and reports the
// achieved ε honestly. Escalate hands the partial state to the exact path:
// the warm-started stepper resumes from the current iterate instead of
// restarting from e_q, and only the still-undecided candidates pay for
// refinement.

// DefaultAnytimeRoundIters is the PMPN iteration block between screen
// advances when AnytimeOptions.RoundIters is unset, mirroring the sharded
// coordinator's default exchange cadence.
const DefaultAnytimeRoundIters = 8

const (
	maxAnytimeRoundIters   = 64
	defaultMCWalks         = 512
	defaultMCMaxLen        = 64
	defaultMCMaxCandidates = 2048
	anytimeSeedMix         = int64(0x5851F42D4C957F2D)
)

// AnytimeOptions configures one anytime query.
type AnytimeOptions struct {
	// Eps is the undecided-fraction budget in [0,1): the run stops once
	// |maybe| ≤ Eps·(|guaranteed| + |maybe|). Eps = 0 demands every node
	// decided by bounds, i.e. the run iterates to convergence and stops at
	// the exact path's pre-refinement screen.
	Eps float64
	// Delta, when positive, enables the residual-seeded Monte Carlo
	// refinement: per query, all probabilistic decisions are jointly valid
	// with probability ≥ 1 − Delta. Delta = 0 keeps the run fully
	// deterministic. At most 0.5.
	Delta float64
	// RoundIters is the PMPN iteration block between screen advances
	// (0 selects DefaultAnytimeRoundIters). Rounds self-extend when the
	// screen reports no decision can fire before the band tightens further.
	RoundIters int
	// Seed fixes the Monte Carlo random streams; runs with equal options and
	// seed are byte-identical. Ignored when Delta = 0.
	Seed int64
	// MCWalks is the walk budget per undecided node per engagement
	// (0 selects 512).
	MCWalks int
	// MCMaxLen truncates each walk (0 selects 64); the truncation bias is
	// folded into the confidence band.
	MCMaxLen int
	// MCMaxCandidates gates the Monte Carlo stage until the undecided set
	// has shrunk to at most this many nodes (0 selects 2048), so walk time
	// is only spent once the deterministic screen has done the bulk pruning.
	MCMaxCandidates int
}

func (o AnytimeOptions) resolve() (AnytimeOptions, error) {
	if math.IsNaN(o.Eps) || o.Eps < 0 || o.Eps >= 1 {
		return o, fmt.Errorf("core: eps=%v outside [0,1)", o.Eps)
	}
	if math.IsNaN(o.Delta) || o.Delta < 0 || o.Delta > 0.5 {
		return o, fmt.Errorf("core: delta=%v outside [0,0.5]", o.Delta)
	}
	if o.RoundIters < 0 || o.MCWalks < 0 || o.MCMaxLen < 0 || o.MCMaxCandidates < 0 {
		return o, fmt.Errorf("core: negative anytime option")
	}
	if o.RoundIters == 0 {
		o.RoundIters = DefaultAnytimeRoundIters
	}
	if o.MCWalks == 0 {
		o.MCWalks = defaultMCWalks
	}
	if o.MCMaxLen == 0 {
		o.MCMaxLen = defaultMCMaxLen
	}
	if o.MCMaxCandidates == 0 {
		o.MCMaxCandidates = defaultMCMaxCandidates
	}
	return o, nil
}

// AnytimeStats carries the diagnostics of one anytime run.
type AnytimeStats struct {
	Query graph.NodeID
	K     int
	// Eps and Delta echo the request.
	Eps, Delta float64
	// EpsAchieved is the final undecided fraction |maybe|/(|guaranteed| +
	// |maybe|). It is ≤ Eps when the budget was met, and may exceed Eps only
	// when the deterministic band converged first (Converged = true) — the
	// caller can Escalate to resolve the remainder exactly.
	EpsAchieved float64
	// TauAchieved is the elementwise PMPN error bound at stop (0 after the
	// exact-pq final screen).
	TauAchieved float64
	// Rounds counts screen advances; PMPNIters the underlying iterations.
	Rounds    int
	PMPNIters int
	// Converged reports whether the power iteration ran to residual
	// convergence before the run stopped.
	Converged bool
	// Deterministic and Monte Carlo decision tallies.
	ConfirmedByBound int
	PrunedByBound    int
	MCConfirmed      int
	MCPruned         int
	MCWalks          int64
	// Guaranteed and Maybe are the answer-part sizes.
	Guaranteed int
	Maybe      int

	Elapsed     time.Duration
	PMPNElapsed time.Duration
	MCElapsed   time.Duration
}

// AnytimeResult is the two-part anytime answer, in the external identifier
// space, each part ascending. A result additionally retains the partial
// solver state so the exact path can warm-start from it; see Escalate.
type AnytimeResult struct {
	Guaranteed []graph.NodeID
	Maybe      []graph.NodeID
	Stats      AnytimeStats

	v         *View
	k         int
	params    rwr.Params
	st        *anytimeState
	escalated bool
}

// anytimeState is the solver state shared by the round loop, the Monte
// Carlo stage, and Escalate.
type anytimeState struct {
	stepper *rwr.ToStepper
	screen  *Screen
	// mcIn/mcOut record Monte Carlo decisions for nodes the deterministic
	// screen still holds alive. Deterministic decisions always win: a node
	// the screen later confirms or prunes simply drops out of Survivors and
	// its Monte Carlo verdict becomes irrelevant.
	mcIn, mcOut map[graph.NodeID]bool
	engagements int
}

func (st *anytimeState) effectiveCounts() (conf, und int) {
	conf = st.screen.Confirmed()
	und = len(st.screen.Survivors())
	if len(st.mcIn)+len(st.mcOut) == 0 {
		return conf, und
	}
	for _, u := range st.screen.Survivors() {
		if st.mcIn[u] {
			conf++
			und--
		} else if st.mcOut[u] {
			und--
		}
	}
	return conf, und
}

func undecidedFrac(conf, und int) float64 {
	if und == 0 {
		return 0
	}
	return float64(und) / float64(conf+und)
}

// QueryAnytime answers one reverse top-k query approximately under the
// given (ε,δ) budget, with the given intra-query worker count (≤ 0 selects
// GOMAXPROCS). q and the answer parts are in the external identifier space,
// like Query. Safe for concurrent use; with Delta = 0, or with a fixed
// Seed, answers are deterministic at any worker setting.
func (v *View) QueryAnytime(q graph.NodeID, k int, opts AnytimeOptions, workers int) (*AnytimeResult, error) {
	if int(q) < 0 || int(q) >= v.g.N() {
		return nil, fmt.Errorf("core: query node %d out of range [0,%d)", q, v.g.N())
	}
	if k <= 0 || k > v.idx.K() {
		return nil, fmt.Errorf("core: k=%d outside [1,%d] supported by the index", k, v.idx.K())
	}
	o, err := opts.resolve()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	stats := AnytimeStats{Query: q, K: k, Eps: o.Eps, Delta: o.Delta}
	st, err := runAnytime(v.g, v.idx, v.idx.ToInternal(q), k, o, workers, &stats)
	if err != nil {
		return nil, err
	}
	guaranteed, maybe := st.assemble()
	stats.Guaranteed = len(guaranteed)
	stats.Maybe = len(maybe)
	stats.Elapsed = time.Since(start)
	return &AnytimeResult{
		Guaranteed: externalAnswer(v.idx, guaranteed),
		Maybe:      externalAnswer(v.idx, maybe),
		Stats:      stats,
		v:          v,
		k:          k,
		params:     v.idx.Options().RWR,
		st:         st,
	}, nil
}

// runAnytime is the round loop shared by View.QueryAnytime and the
// Engine.QueryApproximate wrapper. qi is in the internal label space; the
// returned state's hits/survivors are too.
func runAnytime(g graph.View, idx *lbindex.Index, qi graph.NodeID, k int, o AnytimeOptions, workers int, stats *AnytimeStats) (*anytimeState, error) {
	params := idx.Options().RWR
	stepper, err := rwr.NewToStepper(g, qi, params, workers)
	if err != nil {
		return nil, err
	}
	screen, err := newScreen(g.N(), idx, k)
	if err != nil {
		return nil, err
	}
	st := &anytimeState{stepper: stepper, screen: screen}
	oneMinus := 1 - params.Alpha

	// Warm skip: while τ exceeds the largest k-th lower bound no node
	// anywhere can be decided, so the first round jumps straight past that
	// region (the sharded coordinator's scheduling rule).
	roundLen := o.RoundIters
	if maxLB := screen.MaxLowerBound(); maxLB > 0 && maxLB < 1 {
		if warm := int(math.Ceil(math.Log(maxLB) / math.Log(oneMinus))); warm > roundLen {
			roundLen = warm
		}
	}
	for {
		stepStart := time.Now()
		converged, err := stepper.Step(roundLen)
		stats.PMPNElapsed += time.Since(stepStart)
		if err != nil {
			return nil, err
		}
		tau := stepper.Tail()
		x := stepper.Current()
		rep := screen.Advance(x, tau)
		stats.Rounds++
		if converged && rep.Undecided > 0 {
			// The band has collapsed: run the exact-pq screen so the final
			// alive set is precisely the exact path's refinement candidates.
			rep = screen.Advance(x, 0)
			tau = 0
		}
		conf, und := st.effectiveCounts()
		frac := undecidedFrac(conf, und)
		if frac > o.Eps && !converged && o.Delta > 0 && und > 0 && und <= o.MCMaxCandidates {
			st.engageMC(g, o, params.Alpha, tau, stats)
			conf, und = st.effectiveCounts()
			frac = undecidedFrac(conf, und)
		}
		if frac <= o.Eps || converged {
			stats.EpsAchieved = frac
			stats.TauAchieved = tau
			break
		}
		// Size the next round: if every open node is waiting on the prune
		// test, jump the band below the smallest open gap in one block.
		roundLen = o.RoundIters
		if gap := rep.MinPruneGap; !math.IsInf(gap, 1) && gap > 0 && tau > gap {
			if need := int(math.Ceil(math.Log(gap/tau) / math.Log(oneMinus))); need > roundLen {
				roundLen = min(need, maxAnytimeRoundIters)
			}
		}
	}
	stats.PMPNIters = stepper.Iterations()
	stats.Converged = stepper.Converged()
	stats.ConfirmedByBound = screen.Confirmed()
	stats.PrunedByBound = screen.Pruned()
	return st, nil
}

// engageMC runs one Monte Carlo refinement pass over the still-undecided
// nodes. For each node it estimates the remaining PMPN error from the last
// iteration's delta (rwr.ResidualWalkEstimate), intersects the resulting
// confidence interval for p_u(q) with the deterministic band, and applies
// the screen's own confirm/prune comparisons to the tightened interval.
// Failure probability is budgeted δ/2^e across engagements e = 1,2,…, split
// evenly over the nodes tested in each, so all decisions of one query are
// jointly valid with probability ≥ 1 − δ.
func (st *anytimeState) engageMC(g graph.View, o AnytimeOptions, alpha, tau float64, stats *AnytimeStats) {
	cur, prev := st.stepper.Current(), st.stepper.Previous()
	if prev == nil {
		return
	}
	var deltaInf float64
	for i := range cur {
		if d := math.Abs(cur[i] - prev[i]); d > deltaInf {
			deltaInf = d
		}
	}
	if deltaInf == 0 {
		return
	}
	surv := st.screen.Survivors()
	m := 0
	for _, u := range surv {
		if !st.mcIn[u] && !st.mcOut[u] {
			m++
		}
	}
	if m == 0 {
		return
	}
	st.engagements++
	fail := o.Delta / (float64(m) * math.Pow(2, float64(st.engagements)))
	band := rwr.ResidualWalkBand(deltaInf, o.MCMaxLen, o.MCWalks, alpha, fail)
	if band >= tau {
		// The walk budget cannot beat the deterministic band this round;
		// don't pay for walks that decide nothing.
		return
	}
	mcStart := time.Now()
	for i, u := range surv {
		if st.mcIn[u] || st.mcOut[u] {
			continue
		}
		lb, ub := st.screen.survivorBounds(i)
		rng := rand.New(rand.NewSource(o.Seed ^ (int64(u)+1)*anytimeSeedMix ^ int64(st.engagements)<<48))
		est := rwr.ResidualWalkEstimate(g, u, cur, prev, o.MCMaxLen, o.MCWalks, alpha, rng)
		stats.MCWalks += int64(o.MCWalks)
		xv := cur[u]
		lo := math.Max(xv+est-band, xv-tau)
		hi := math.Min(xv+est+band, xv+tau)
		if hi < lb-st.screen.tol {
			if st.mcOut == nil {
				st.mcOut = make(map[graph.NodeID]bool)
			}
			st.mcOut[u] = true
			stats.MCPruned++
			continue
		}
		if lo >= ub-st.screen.tol {
			if st.mcIn == nil {
				st.mcIn = make(map[graph.NodeID]bool)
			}
			st.mcIn[u] = true
			stats.MCConfirmed++
		}
	}
	stats.MCElapsed += time.Since(mcStart)
}

// assemble splits the final alive set into the answer parts, in the
// internal label space. Deterministic hits come first-hand from the screen;
// Monte Carlo verdicts only apply to nodes the screen never decided.
func (st *anytimeState) assemble() (guaranteed, maybe []graph.NodeID) {
	guaranteed = append([]graph.NodeID(nil), st.screen.Hits()...)
	for _, u := range st.screen.Survivors() {
		switch {
		case st.mcIn[u]:
			guaranteed = append(guaranteed, u)
		case st.mcOut[u]:
		default:
			maybe = append(maybe, u)
		}
	}
	sort.Slice(guaranteed, func(i, j int) bool { return guaranteed[i] < guaranteed[j] })
	sort.Slice(maybe, func(i, j int) bool { return maybe[i] < maybe[j] })
	return guaranteed, maybe
}

// Escalate resolves the result exactly, reusing the partial iterate as a
// warm start: the retained stepper resumes from x^t (never from e_q),
// and only the nodes the anytime run left undecided pay for the
// refinement/fallback phase. Monte Carlo verdicts are discarded — the
// returned answer is bit-identical to a cold View.Query at any worker
// count. Single-use, and not concurrently with other uses of the result.
func (r *AnytimeResult) Escalate(workers int) ([]graph.NodeID, QueryStats, error) {
	if r.v == nil || r.st == nil {
		return nil, QueryStats{}, fmt.Errorf("core: Escalate on a detached AnytimeResult")
	}
	if r.escalated {
		return nil, QueryStats{}, fmt.Errorf("core: AnytimeResult escalated twice")
	}
	r.escalated = true
	start := time.Now()
	stepper := r.st.stepper
	if !stepper.Converged() {
		if _, err := stepper.Step(r.params.MaxIters); err != nil {
			return nil, QueryStats{}, err
		}
	}
	x := stepper.Current()
	// Idempotent when the run already screened at τ = 0; decisive otherwise.
	r.st.screen.Advance(x, 0)
	e := r.v.engines.Get().(*Engine)
	defer r.v.engines.Put(e)
	e.SetWorkers(workers)
	answer, stats, err := e.DecideList(x, r.k, r.st.screen.Survivors())
	if err != nil {
		return nil, stats, err
	}
	answer = append(answer, r.st.screen.Hits()...)
	sort.Slice(answer, func(i, j int) bool { return answer[i] < answer[j] })
	stats.Query = r.Stats.Query
	stats.K = r.k
	stats.PMPNIters = stepper.Iterations()
	stats.Results = len(answer)
	stats.Elapsed = time.Since(start)
	return externalAnswer(r.v.idx, answer), stats, nil
}
