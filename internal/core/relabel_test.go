package core

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/partition"
	"repro/internal/rwr"
)

// relabeledPair builds the permuted twin of (g, idx): the graph relabeled by
// perm, indexed under the same options, with the relabeling installed so the
// index translates at the API boundary.
func relabeledPair(t *testing.T, g *graph.Graph, perm graph.Permutation, k, hubBudget int) (*graph.Graph, *lbindex.Index) {
	t.Helper()
	pg, err := graph.ApplyPermutation(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	pidx := buildIndex(t, pg, k, hubBudget)
	if err := pidx.SetRelabeling(perm); err != nil {
		t.Fatal(err)
	}
	return pg, pidx
}

func relabelFamilies(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	web, err := gen.WebGraph(240, 13)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"web":      web,
		"random":   randomGraph(71, 160, false),
		"weighted": randomGraph(72, 150, true),
	}
}

func relabelings(g *graph.Graph) map[string]graph.Permutation {
	return map[string]graph.Permutation{
		"degree": graph.DegreeOrderPermutation(g),
		"rcm":    graph.RCMPermutation(g),
	}
}

// TestRelabeledViewMatchesIdentity: a view over a degree-ordered or RCM
// relabeled (graph, index) pair answers every query — scalar and batched —
// with exactly the node set the identity-labeled pair produces, across graph
// families and k. External callers cannot tell the layouts apart.
func TestRelabeledViewMatchesIdentity(t *testing.T) {
	for fam, g := range relabelFamilies(t) {
		idx := buildIndex(t, g, 8, 3)
		v, err := NewView(g, idx)
		if err != nil {
			t.Fatal(err)
		}
		for pname, perm := range relabelings(g) {
			if perm.IsIdentity() {
				t.Fatalf("%s/%s: test permutation degenerated to identity", fam, pname)
			}
			pg, pidx := relabeledPair(t, g, perm, 8, 3)
			pv, err := NewView(pg, pidx)
			if err != nil {
				t.Fatal(err)
			}
			var qs []graph.NodeID
			var ks []int
			for q := graph.NodeID(0); int(q) < g.N(); q += 17 {
				for _, k := range []int{1, 4, 8} {
					want, _, err := v.Query(q, k, 2)
					if err != nil {
						t.Fatal(err)
					}
					got, _, err := pv.Query(q, k, 2)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s/%s q=%d k=%d: relabeled %v, identity %v", fam, pname, q, k, got, want)
					}
					qs = append(qs, q)
					ks = append(ks, k)
				}
			}
			// The batched path through the relabeled pair agrees too.
			results, err := QueryBatch(pg, pidx, qs, 4, 3, false, false)
			if err != nil {
				t.Fatal(err)
			}
			for i, r := range results {
				if r.Err != nil {
					t.Fatalf("%s/%s batch q=%d: %v", fam, pname, qs[i], r.Err)
				}
				want, _, err := v.Query(qs[i], 4, 2)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(r.Answer, want) {
					t.Errorf("%s/%s batch q=%d: relabeled %v, identity %v", fam, pname, qs[i], r.Answer, want)
				}
			}
		}
	}
}

// TestRelabeledExplainMatchesIdentity: explanations translate node ids back
// to the external space — same node sequence, same membership, proximities
// equal up to labeling-order rounding — so debugging output is comparable
// across layouts. Outcome labels may differ (hub tie-breaks are id-order
// dependent), membership may not.
func TestRelabeledExplainMatchesIdentity(t *testing.T) {
	g := relabelFamilies(t)["web"]
	idx := buildIndex(t, g, 6, 3)
	v, err := NewView(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	for pname, perm := range relabelings(g) {
		pg, pidx := relabeledPair(t, g, perm, 6, 3)
		pv, err := NewView(pg, pidx)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []graph.NodeID{0, 7, 101} {
			ex, err := v.Explain(q, 6, true, 2)
			if err != nil {
				t.Fatal(err)
			}
			pex, err := pv.Explain(q, 6, true, 2)
			if err != nil {
				t.Fatal(err)
			}
			if pex.Query != q || pex.Stats.Query != q {
				t.Fatalf("%s q=%d: explanation echoes internal query id %d", pname, q, pex.Query)
			}
			if len(pex.Decisions) != len(ex.Decisions) {
				t.Fatalf("%s q=%d: %d decisions, identity has %d", pname, q, len(pex.Decisions), len(ex.Decisions))
			}
			for i, d := range pex.Decisions {
				ref := ex.Decisions[i]
				if d.Node != ref.Node {
					t.Fatalf("%s q=%d decision %d: node %d, identity %d", pname, q, i, d.Node, ref.Node)
				}
				if d.InAnswer != ref.InAnswer {
					t.Errorf("%s q=%d node %d: InAnswer=%v, identity %v", pname, q, d.Node, d.InAnswer, ref.InAnswer)
				}
				if diff := math.Abs(d.Proximity - ref.Proximity); diff > 1e-9 {
					t.Errorf("%s q=%d node %d: proximity %g vs %g", pname, q, d.Node, d.Proximity, ref.Proximity)
				}
			}
		}
	}
}

// TestRelabeledShardUnionMatchesIdentity: shard slices of a relabeled index
// partition the node set exactly (their translated owned sets are a disjoint
// cover of the external space), and the scatter-gather answer — per-shard
// DecideList unioned across shards, translated back — equals the identity
// pair's full answer for every strategy × P × k. This is the property the
// distributed coordinator depends on.
func TestRelabeledShardUnionMatchesIdentity(t *testing.T) {
	g := relabelFamilies(t)["web"]
	idx := buildIndex(t, g, 6, 3)
	v, err := NewView(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	perm := relabelings(g)["degree"]
	pg, pidx := relabeledPair(t, g, perm, 6, 3)
	for _, strategy := range []partition.Strategy{partition.Hash, partition.Range, partition.Balanced} {
		for _, P := range []int{2, 3} {
			pm, err := partition.New(strategy, pg, pg.N(), P, 42)
			if err != nil {
				t.Fatal(err)
			}
			slices := make([]*lbindex.Index, P)
			covered := make([]bool, g.N())
			for s := 0; s < P; s++ {
				slice, err := pidx.ShardSlice(pm, s)
				if err != nil {
					t.Fatal(err)
				}
				slices[s] = slice
				for _, u := range slice.OwnedNodes() {
					ext := slice.ToExternal(u)
					if covered[ext] {
						t.Fatalf("%v P=%d: external node %d owned by two shards", strategy, P, ext)
					}
					covered[ext] = true
				}
			}
			for u, ok := range covered {
				if !ok {
					t.Fatalf("%v P=%d: external node %d owned by no shard", strategy, P, u)
				}
			}
			for _, q := range []graph.NodeID{3, 50, 211} {
				for _, k := range []int{1, 6} {
					want, _, err := v.Query(q, k, 2)
					if err != nil {
						t.Fatal(err)
					}
					// One PMPN on the relabeled graph, decisions fanned out to
					// the slices — the coordinator's shape.
					pq, err := rwr.ProximityToParallel(pg, pidx.ToInternal(q), pidx.Options().RWR, 2)
					if err != nil {
						t.Fatal(err)
					}
					var union []graph.NodeID
					for s := 0; s < P; s++ {
						eng, err := NewEngine(pg, slices[s], false)
						if err != nil {
							t.Fatal(err)
						}
						part, _, err := eng.DecideList(pq.Vector, k, slices[s].OwnedNodes())
						if err != nil {
							t.Fatal(err)
						}
						union = append(union, externalAnswer(slices[s], part)...)
					}
					sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
					if len(union) == 0 {
						union = nil
					}
					if !reflect.DeepEqual(union, want) {
						t.Errorf("%v P=%d q=%d k=%d: shard union %v, identity %v", strategy, P, q, k, union, want)
					}
				}
			}
		}
	}
}
