// Package core implements the paper's primary contribution: the online
// reverse top-k RWR query algorithm (§4.2). A query runs in two steps:
//
//  1. Compute the exact proximities from every node TO the query node with
//     the transposed power method (Algorithm 2 / Theorem 2, package rwr).
//  2. Screen every node u against the indexed lower bound p̂_u(k): nodes
//     with p̂_u(k) > p_u(q) can never rank q in their top-k and are pruned;
//     the survivors ("candidates") are confirmed with the staircase upper
//     bound of Algorithm 3 or refined step-by-step (Algorithm 1's loop)
//     until their lower or upper bound decides membership (Algorithm 4).
//
// In update mode, refinement results are committed back to the index
// (§4.2.3), tightening bounds for later queries.
package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

// UpperBound implements Algorithm 3 (UBC): given the descending lower-bound
// list p̂^t_u(1:K), a query size k and the undistributed residue ink ‖r‖₁,
// it returns the tightest upper bound on pkmax_u obtainable by "pouring"
// the residue onto the top-k staircase (Eq. 16–18). Runs in O(k).
func UpperBound(phat []float64, k int, rnorm float64) float64 {
	if k <= 0 || k > len(phat) {
		panic(fmt.Sprintf("core: UpperBound k=%d outside [1,%d]", k, len(phat)))
	}
	if rnorm <= 0 {
		// No residue: the lower bound is already exact.
		return phat[k-1]
	}
	// z_j is the ink needed to raise the level to step k−j (Eq. 17).
	z := 0.0
	for j := 1; j <= k-1; j++ {
		// ∆_{k−j} = p̂(k−j) − p̂(k−j+1), Eq. 16 (0-based shift).
		delta := phat[k-j-1] - phat[k-j]
		zj := z + float64(j)*delta
		if z < rnorm && rnorm <= zj {
			// First line of Eq. 18: the ink levels out below step k−j.
			return phat[k-j-1] - (zj-rnorm)/float64(j)
		}
		z = zj
	}
	// Second line of Eq. 18: the whole staircase is submerged.
	return phat[0] + (rnorm-z)/float64(k)
}

// QueryStats reports the per-query counters behind Figures 5–7.
type QueryStats struct {
	// Query and K echo the inputs.
	Query graph.NodeID
	K     int
	// PMPNIters is the iteration count of the exact proximity-to-query
	// computation (Algorithm 2).
	PMPNIters int
	// Candidates counts nodes that survived the initial lower-bound
	// screen (they entered Algorithm 4's while loop).
	Candidates int
	// Hits counts candidates confirmed as results before any refinement
	// (exact-lower-bound or first upper-bound check) — Fig. 6's "hits".
	Hits int
	// Results is the size of the answer set.
	Results int
	// RefineSteps is the total number of BCA refinement iterations spent
	// across all candidates.
	RefineSteps int
	// ExactFallbacks counts candidates that had to be decided by an exact
	// power-method computation because bound refinement stalled (residue
	// trapped below the propagation threshold). Rare by construction; a
	// sweep's fallbacks are batch-resolved through one forward SpMM slab
	// (resolveFallbacks), but each still counts individually here.
	ExactFallbacks int
	// Committed counts refined states written back to the index (update
	// mode only).
	Committed int
	// Elapsed is total wall-clock time, PMPNElapsed the part spent in
	// step 1.
	Elapsed     time.Duration
	PMPNElapsed time.Duration
	// FallbackElapsed is the part of Elapsed spent resolving deferred
	// exact fallbacks through forward SpMM slabs (resolveFallbacks).
	// Under QueryBatch the resolution is shared across the whole batch
	// and each pending query is charged the full shared wall time.
	FallbackElapsed time.Duration
	// DecideElapsed is the part of Elapsed spent in the candidate
	// decision sweep (Algorithm 4's screen + bound refinement),
	// excluding the deferred-fallback resolution counted separately in
	// FallbackElapsed.
	DecideElapsed time.Duration
}

// Phases breaks the query wall clock into named phases for tracing; only
// phases that actually ran appear. Keys: "pmpn", "decide", "fallback".
func (s *QueryStats) Phases() map[string]time.Duration {
	p := make(map[string]time.Duration, 3)
	if s.PMPNElapsed > 0 {
		p["pmpn"] = s.PMPNElapsed
	}
	if s.DecideElapsed > 0 {
		p["decide"] = s.DecideElapsed
	}
	if s.FallbackElapsed > 0 {
		p["fallback"] = s.FallbackElapsed
	}
	return p
}

// Engine evaluates reverse top-k queries against a graph and its index.
// An Engine is NOT safe for concurrent use (its workspace pool is, but the
// query state is not); create one engine per goroutine sharing the same
// index. Within a single query the engine can itself use multiple cores —
// see SetWorkers — without changing its answers.
type Engine struct {
	g      graph.View
	idx    *lbindex.Index
	update bool
	// workers is the intra-query parallelism degree: the PMPN power
	// iteration is sharded over row ranges and the candidate-decision loop
	// over node ranges, each shard drawing a workspace from wsPool. The
	// sequential path draws one workspace per query from the same pool, so
	// engines cost no dense scratch until their first query.
	workers int
	wsPool  *bca.Pool
	// etaFloor bounds how far stalled refinement may shrink the
	// propagation threshold before falling back to an exact computation.
	etaFloor float64
	// tieTol absorbs floating-point noise on the membership boundary.
	// Whenever q is exactly the k-th ranked node of u — which holds for
	// every rank-k member of the answer — p_u(q) equals pkmax_u in real
	// arithmetic, and the PMPN estimate of p_u(q) differs from the
	// power-method pkmax by up to ≈ε. Comparisons therefore treat values
	// within tieTol as equal; gaps below tieTol are beneath the solvers'
	// own precision.
	tieTol float64
	// maxRefine caps the BCA refinement steps spent on one candidate
	// before switching to the exact power-method decision. A refinement
	// step costs about as much as a power-method iteration plus the
	// materialization of p^t, so past a handful of steps the exact
	// fallback — whose result is committed to the index as a permanently
	// drained state — is strictly cheaper. Empirically 8 balances the two
	// paths across graph families (see the budget sweep in EXPERIMENTS.md).
	maxRefine int
	// practical selects the paper's literal decision rule for stalled
	// candidates; see SetPracticalDecisions.
	practical bool
}

// SetPracticalDecisions toggles the paper-literal decision mode.
//
// Algorithm 4 as printed has no exit for a candidate whose membership is an
// exact tie (p_u(q) = pkmax_u): the lower bound converges to p_u(q) from
// below and the upper bound from above, so neither branch of the loop ever
// fires before BCA fully drains — and once no node holds ≥ η residue the
// paper's refinement step is a no-op. Any implementation must therefore
// break the loop somehow. This engine offers two policies:
//
//   - exact (default): decide stalled candidates with one power-method
//     computation (and commit the now-exact state to the index). Answers
//     equal brute force unconditionally.
//   - practical: decide stalled or budget-exhausted candidates by the
//     standing while-loop condition — p_u(q) ≥ p̂^t_u(k) means u stays in
//     the answer. This is the only reading under which the paper's
//     reported per-candidate refinement costs are attainable, and it can
//     only ever ADD near-boundary nodes (whose gap is below the bound
//     tightness reachable at η) to the exact answer.
func (e *Engine) SetPracticalDecisions(on bool) { e.practical = on }

// DefaultMaxRefineSteps is the per-candidate refinement budget before the
// engine switches to the exact fallback.
const DefaultMaxRefineSteps = 8

// SetMaxRefineSteps overrides the per-candidate refinement budget
// (0 restores DefaultMaxRefineSteps).
func (e *Engine) SetMaxRefineSteps(n int) {
	if n <= 0 {
		n = DefaultMaxRefineSteps
	}
	e.maxRefine = n
}

// NewEngine creates a query engine. update selects whether refinements are
// committed back to the index (§4.2.3) — the "update" series of Fig. 5/7.
func NewEngine(g graph.View, idx *lbindex.Index, update bool) (*Engine, error) {
	if g.N() != idx.N() {
		return nil, fmt.Errorf("core: index built for %d nodes, graph has %d", idx.N(), g.N())
	}
	return &Engine{
		g:         g,
		idx:       idx,
		update:    update,
		workers:   1,
		wsPool:    bca.NewPool(g.N()),
		etaFloor:  1e-12,
		tieTol:    defaultTieTol,
		maxRefine: DefaultMaxRefineSteps,
	}, nil
}

// SetWorkers sets the intra-query parallelism degree: how many goroutines
// one Query spreads its PMPN power iteration and its candidate-decision loop
// across (≤ 0 selects GOMAXPROCS; the default is 1, fully sequential).
//
// The answer set is identical for every worker count: the sharded PMPN
// computes every row in the same accumulation order and reduces its
// convergence check at a fixed block granularity, and each candidate's
// decision depends only on that candidate's own index entry, never on what
// another shard decided.
func (e *Engine) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.workers = n
}

// Workers returns the configured intra-query parallelism degree.
func (e *Engine) Workers() int { return e.workers }

// UpdatesIndex reports whether the engine commits refinements.
func (e *Engine) UpdatesIndex() bool { return e.update }

// Index returns the engine's index.
func (e *Engine) Index() *lbindex.Index { return e.idx }

// Query runs Algorithm 4 (OQ): it returns every node u with
// p_u(q) ≥ pkmax_u, in ascending node order, plus the per-query statistics.
func (e *Engine) Query(q graph.NodeID, k int) ([]graph.NodeID, QueryStats, error) {
	stats := QueryStats{Query: q, K: k}
	if int(q) < 0 || int(q) >= e.g.N() {
		return nil, stats, fmt.Errorf("core: query node %d out of range [0,%d)", q, e.g.N())
	}
	if k <= 0 || k > e.idx.K() {
		return nil, stats, fmt.Errorf("core: k=%d outside [1,%d] supported by the index", k, e.idx.K())
	}
	start := time.Now()

	// Step 1 (Algorithm 4 line 1): exact proximities to q via PMPN, sharded
	// over row ranges across the engine's workers.
	opts := e.idx.Options()
	pmpn, err := rwr.ProximityToParallel(e.g, q, opts.RWR, e.workers)
	if err != nil {
		return nil, stats, err
	}
	pq := pmpn.Vector // pq[u] = p_u(q)
	stats.PMPNIters = pmpn.Iterations
	stats.PMPNElapsed = time.Since(start)

	// Step 2: screen every materialized node — all of them on a full
	// index, the owned subset on a shard slice (see lbindex.ShardSlice).
	// Decisions are independent across nodes (decide(u) touches only u's
	// own index entry), so the set shards cleanly across workers.
	decideStart := time.Now()
	results, err := e.decideSet(pq, k, e.idx.OwnedNodes(), &stats)
	stats.DecideElapsed = time.Since(decideStart) - stats.FallbackElapsed
	if err != nil {
		return nil, stats, err
	}
	stats.Results = len(results)
	stats.Elapsed = time.Since(start)
	sort.Slice(results, func(i, j int) bool { return results[i] < results[j] })
	return results, stats, nil
}

// DecideList is the shard-local candidate decision entry point: given the
// exact proximities-to-query vector pq (full length, typically computed
// once by a scatter-gather coordinator and shared across shards), it runs
// Algorithm 4's per-candidate decision for exactly the listed nodes and
// returns the members, ascending. Every listed node's row must be
// materialized in the engine's index. The answer for each node is the one
// Query itself would produce — DecideList(pq, k, all nodes) ≡ Query(q, k).
func (e *Engine) DecideList(pq []float64, k int, nodes []graph.NodeID) ([]graph.NodeID, QueryStats, error) {
	stats := QueryStats{Query: -1, K: k}
	if len(pq) != e.g.N() {
		return nil, stats, fmt.Errorf("core: proximity vector has %d entries, graph has %d", len(pq), e.g.N())
	}
	if k <= 0 || k > e.idx.K() {
		return nil, stats, fmt.Errorf("core: k=%d outside [1,%d] supported by the index", k, e.idx.K())
	}
	start := time.Now()
	results, err := e.decideSet(pq, k, nodes, &stats)
	stats.DecideElapsed = time.Since(start) - stats.FallbackElapsed
	if err != nil {
		return nil, stats, err
	}
	stats.Results = len(results)
	stats.Elapsed = time.Since(start)
	sort.Slice(results, func(i, j int) bool { return results[i] < results[j] })
	return results, stats, nil
}

// decideSet runs the decision loop over a node set — `list`, or all of
// [0, n) when list is nil — sequentially or sharded across the engine's
// workers. Outcomes are identical either way: each shard runs the
// sequential loop over its segment with a private workspace and counters,
// answers concatenate in segment order and counters merge by addition;
// commits land in the shared index under its own striped locking. On error
// the lowest-segment error is reported, and committed refinements from
// other segments remain in the index — exactly as a sequential sweep would
// have left every node decided before the failure.
//
// Candidates whose refinement budget runs out are deferred by the sweep
// (per shard, in segment order) and resolved afterwards in one pass of
// SpMM-batched exact solves on the coordinating goroutine — same pending
// list, same order, whatever the worker count, so the sequential and
// sharded engines still make bit-identical decisions and commits.
func (e *Engine) decideSet(pq []float64, k int, list []graph.NodeID, stats *QueryStats) ([]graph.NodeID, error) {
	results, pend, err := e.decideSetDeferred(pq, k, list, stats)
	if err != nil {
		return nil, err
	}
	if len(pend) > 0 {
		fbStart := time.Now()
		fb, err := e.resolveFallbacks(pend, k, stats)
		stats.FallbackElapsed += time.Since(fbStart)
		if err != nil {
			return nil, err
		}
		results = append(results, fb...)
	}
	return results, nil
}

// decideSetDeferred is decideSet's sweep without the fallback resolution:
// it returns the nodes the bounds decided plus the deferred candidates, in
// list order whatever the worker count. QueryBatch uses it directly so a
// whole query batch's fallbacks can be deduplicated and resolved in shared
// slabs instead of per query.
func (e *Engine) decideSetDeferred(pq []float64, k int, list []graph.NodeID, stats *QueryStats) ([]graph.NodeID, []pendingFallback, error) {
	count := e.g.N()
	if list != nil {
		count = len(list)
	}
	nodeAt := func(i int) graph.NodeID {
		if list != nil {
			return list[i]
		}
		return graph.NodeID(i)
	}
	var results []graph.NodeID
	var pend []pendingFallback
	if e.workers <= 1 {
		ws := e.wsPool.Get()
		defer e.wsPool.Put(ws)
		for i := 0; i < count; i++ {
			u := nodeAt(i)
			added, err := e.decide(ws, u, k, pq[u], stats, &pend)
			if err != nil {
				return nil, nil, err
			}
			if added {
				results = append(results, u)
			}
		}
	} else {
		type shard struct {
			results []graph.NodeID
			pend    []pendingFallback
			stats   QueryStats
			err     error
		}
		segs := vecmath.Split(count, e.workers)
		shards := make([]shard, len(segs))
		var wg sync.WaitGroup
		for si, seg := range segs {
			wg.Add(1)
			go func(sh *shard, seg vecmath.Range) {
				defer wg.Done()
				ws := e.wsPool.Get()
				defer e.wsPool.Put(ws)
				for i := seg.Lo; i < seg.Hi; i++ {
					u := nodeAt(i)
					added, err := e.decide(ws, u, k, pq[u], &sh.stats, &sh.pend)
					if err != nil {
						sh.err = err
						return
					}
					if added {
						sh.results = append(sh.results, u)
					}
				}
			}(&shards[si], seg)
		}
		wg.Wait()
		for si := range shards {
			sh := &shards[si]
			if sh.err != nil {
				return nil, nil, sh.err
			}
			results = append(results, sh.results...)
			pend = append(pend, sh.pend...)
			stats.Candidates += sh.stats.Candidates
			stats.Hits += sh.stats.Hits
			stats.RefineSteps += sh.stats.RefineSteps
			stats.ExactFallbacks += sh.stats.ExactFallbacks
			stats.Committed += sh.stats.Committed
		}
	}
	return results, pend, nil
}

// eachIndexed iterates the nodes whose index rows this engine
// materializes: all of [0, n) for a full index, the owned subset for a
// shard slice.
func (e *Engine) eachIndexed() func(yield func(graph.NodeID) bool) {
	return func(yield func(graph.NodeID) bool) {
		if owned := e.idx.OwnedNodes(); owned != nil {
			for _, u := range owned {
				if !yield(u) {
					return
				}
			}
			return
		}
		for u := graph.NodeID(0); int(u) < e.g.N(); u++ {
			if !yield(u) {
				return
			}
		}
	}
}

// decide implements the inner while loop of Algorithm 4 for one node u:
// it returns whether u belongs to the reverse top-k set of the query,
// given puq = p_u(q). ws is the BCA scratch to refine with — one pooled
// workspace for the whole sweep on the sequential path, a per-shard one
// under decideSharded (stats must likewise be private to the calling
// shard). A candidate whose refinement budget runs out is NOT decided
// here: it is appended to *pend for the caller to batch-resolve with
// exact vectors after the sweep (resolveFallbacks), and reported as not
// added.
func (e *Engine) decide(ws *bca.Workspace, u graph.NodeID, k int, puq float64, stats *QueryStats, pend *[]pendingFallback) (bool, error) {
	lb := e.idx.KthLowerBound(u, k)
	if puq < lb-e.tieTol {
		return false, nil // pruned immediately (never becomes a candidate)
	}
	stats.Candidates++

	// The effective undecided mass is the BCA residue plus the proximity
	// mass §4.1.3's rounding removed (tracked per state): a drained state
	// is exact only when both are zero.
	rnorm := e.idx.ResidueNorm(u) + e.idx.RoundingSlack(u)
	if rnorm == 0 {
		// Lower bound is the exact pkmax (hub node or fully drained BCA):
		// puq ≥ lb decides membership outright.
		stats.Hits++
		return true, nil
	}
	phat := e.idx.PHatRow(u)
	if ub := UpperBound(phat, k, rnorm); puq >= ub-e.tieTol {
		stats.Hits++ // confirmed by the first upper-bound check
		return true, nil
	}

	// Refinement loop: advance this node's BCA run until a bound decides.
	st := e.idx.StateSnapshot(u)
	if st == nil {
		// Hubs always have rnorm == 0, so this cannot happen; guard for
		// corrupted indexes.
		return false, fmt.Errorf("core: node %d has residue but no state", u)
	}
	cfg := e.idx.Options().BCA
	hm := e.idx.HubMatrix()
	dirty := false
	decided, isResult := false, false
	localSteps := 0
	for {
		if puq < phat[k-1]-e.tieTol {
			decided, isResult = true, false
			break
		}
		slack := e.idx.StateSlack(st)
		if st.RNorm+slack == 0 {
			decided, isResult = true, true
			break
		}
		if ub := UpperBound(phat, k, st.RNorm+slack); puq >= ub-e.tieTol {
			decided, isResult = true, true
			break
		}
		if localSteps >= e.maxRefine || localSteps >= cfg.MaxIters {
			break // budget exhausted; resolve below
		}
		if bca.Step(e.g, st, hm, cfg, ws) == 0 {
			if e.practical {
				break // stalled at η: resolve by the standing condition
			}
			// All residue sits below η: shrink η for this node until
			// progress resumes or the floor is hit.
			progressed := false
			for eta := cfg.Eta / 10; eta >= e.etaFloor; eta /= 10 {
				c := cfg
				c.Eta = eta
				if bca.Step(e.g, st, hm, c, ws) > 0 {
					progressed = true
					break
				}
			}
			if !progressed {
				break // residue is numerically stuck; decide exactly
			}
		}
		dirty = true
		localSteps++
		stats.RefineSteps++
		// Only the first k entries feed the bound checks; the full-K
		// column is recomputed once at commit time.
		phat = bca.TopK(st, hm, ws, k)
	}

	if !decided && e.practical {
		// Paper-literal resolution: the candidate is still inside the
		// while loop (p_u(q) ≥ p̂^t_u(k)), so it stays in the answer.
		decided, isResult = true, true
	}
	if !decided {
		// Exact fallback: the node needs p_u in full, compared against its
		// own exact pkmax. The vector depends only on u — not on the query
		// — and each one is a whole power method, so the sweep DEFERS it:
		// the caller collects every stalled candidate and resolves them
		// together through one forward SpMM slab (resolveFallbacks), where
		// B columns share each CSR traversal instead of streaming the
		// matrix from RAM B separate times. The batched columns are
		// bit-identical to the per-candidate solves, so deferral changes
		// no decision and no committed state. The refined st is NOT
		// committed here even in update mode: resolution commits the
		// strictly better exact state instead, exactly as the inline
		// fallback did.
		stats.ExactFallbacks++
		*pend = append(*pend, pendingFallback{u: u, puq: puq, nextT: st.T + 1})
		return false, nil
	}

	if dirty && e.update {
		e.idx.Commit(u, st, bca.TopK(st, hm, ws, e.idx.K()))
		stats.Committed++
	}
	return isResult, nil
}

// pendingFallback is one candidate whose refinement budget ran out before
// a bound decided: u must be resolved by the exact power method. puq and
// the would-be next BCA iteration number are captured at deferral time so
// resolution needs nothing but the exact vector.
type pendingFallback struct {
	u     graph.NodeID
	puq   float64
	nextT int
}

// resolveFallbacks decides every deferred candidate with exact proximity
// vectors computed in SpMM batches, returning the members. Each column is
// bit-identical to the scalar ProximityVectorParallel solve the inline
// fallback used to run, at any worker count, so the decisions — and, in
// update mode, the committed exact states — match the unbatched engine's
// exactly. Runs on the coordinating goroutine after the decision sweep, so
// it can use the engine's full worker budget without oversubscribing the
// shards.
func (e *Engine) resolveFallbacks(pend []pendingFallback, k int, stats *QueryStats) ([]graph.NodeID, error) {
	th, err := e.exactThresholds(pend, k, e.workers, func(int) { stats.Committed++ })
	if err != nil {
		return nil, err
	}
	var results []graph.NodeID
	for i, pf := range pend {
		if pf.puq >= th[i]-e.tieTol {
			results = append(results, pf.u)
		}
	}
	return results, nil
}

// exactThresholds computes each deferred candidate's exact decision
// threshold pkmax(u) — the k-th largest entry of u's exact proximity
// vector — through forward SpMM slabs of at most spmmChunkWidth columns,
// with the given worker budget. In update mode each solved vector is also
// committed as a fully drained exact state (all ink retained, zero
// residue) so no future query ever spends work on that node again — this
// is what makes the update curve of Fig. 7/8 flatten: the index converges
// to exactness on the nodes queries care about. onCommit is invoked once
// per committed column (for the caller's stats attribution).
func (e *Engine) exactThresholds(pend []pendingFallback, k, workers int, onCommit func(col int)) ([]float64, error) {
	th := make([]float64, len(pend))
	for lo := 0; lo < len(pend); lo += spmmChunkWidth {
		hi := min(lo+spmmChunkWidth, len(pend))
		chunk := pend[lo:hi]
		origins := make([]graph.NodeID, len(chunk))
		for i, pf := range chunk {
			origins[i] = pf.u
		}
		var colErr error
		err := rwr.ProximityVectorBatchFunc(e.g, origins, e.idx.Options().RWR, workers, func(i int, res rwr.Result, rerr error) {
			if rerr != nil {
				if colErr == nil {
					colErr = rerr
				}
				return
			}
			pf := chunk[i]
			th[lo+i] = vecmath.KthLargest(res.Vector, k)
			if e.update {
				exact := &bca.State{
					Origin: pf.u,
					T:      pf.nextT,
					RNorm:  0,
					W:      vecmath.GatherSparse(res.Vector, 0),
				}
				e.idx.Commit(pf.u, exact, vecmath.TopKValues(res.Vector, e.idx.K()))
				onCommit(lo + i)
			}
		})
		if err != nil {
			return nil, err
		}
		if colErr != nil {
			return nil, colErr
		}
	}
	return th, nil
}

// BruteForce answers a reverse top-k query by computing the exact proximity
// vector of every node (the BF method of §3). It is the correctness oracle
// for the engine and the cost yardstick of Fig. 8. workers ≤ 0 selects
// GOMAXPROCS.
func BruteForce(g graph.View, q graph.NodeID, k int, p rwr.Params, workers int) ([]graph.NodeID, error) {
	if int(q) < 0 || int(q) >= g.N() {
		return nil, fmt.Errorf("core: query node %d out of range [0,%d)", q, g.N())
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: k must be positive, got %d", k)
	}
	cols, err := rwr.ProximityMatrix(g, p, workers)
	if err != nil {
		return nil, err
	}
	var results []graph.NodeID
	for u := 0; u < g.N(); u++ {
		if cols[u][q] >= vecmath.KthLargest(cols[u], k) {
			results = append(results, graph.NodeID(u))
		}
	}
	return results, nil
}
