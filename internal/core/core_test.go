package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/bca"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/rwr"
	"repro/internal/vecmath"
)

func toyGraph(t testing.TB) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(6, [][2]graph.NodeID{
		{0, 1}, {0, 3}, {1, 0}, {1, 2}, {2, 1}, {2, 2},
		{3, 0}, {3, 1}, {3, 4}, {4, 0}, {4, 1}, {4, 4}, {5, 1}, {5, 5},
	}, graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomGraph(seed int64, n int, weighted bool) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		if weighted {
			b.AddWeightedEdge(u, v, 1+rng.Float64()*4)
		} else {
			b.AddEdge(u, v)
		}
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		panic(err)
	}
	return g
}

// buildIndex builds an UNROUNDED index (ω=0). Rounding deliberately trades
// exactness for space (§4.1.3, Fig. 9), so the tests that require
// engine ≡ brute-force equality must disable it; the rounding trade-off
// has its own test below.
func buildIndex(t testing.TB, g *graph.Graph, k, hubBudget int) *lbindex.Index {
	t.Helper()
	opts := lbindex.DefaultOptions()
	opts.K = k
	opts.HubBudget = hubBudget
	opts.Omega = 0
	opts.Workers = 2
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return idx
}

func TestUpperBoundNoResidue(t *testing.T) {
	phat := []float64{0.5, 0.3, 0.2}
	if got := UpperBound(phat, 2, 0); got != 0.3 {
		t.Errorf("UpperBound = %g, want exact lower bound 0.3", got)
	}
}

func TestUpperBoundKOne(t *testing.T) {
	// k=1: all residue could land on the single top step.
	phat := []float64{0.5, 0.3}
	if got := UpperBound(phat, 1, 0.2); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("UpperBound = %g, want 0.7", got)
	}
}

func TestUpperBoundPartialFill(t *testing.T) {
	// Staircase 0.5, 0.4, 0.3, 0.2, 0.1 with k=5.
	// z_1 = 1·(0.2−0.1) = 0.1; z_2 = 0.1 + 2·(0.3−0.2) = 0.3.
	// ‖r‖=0.2 lands in (z_1, z_2]: ub = p̂(3) − (z_2 − 0.2)/2 = 0.3 − 0.05.
	phat := []float64{0.5, 0.4, 0.3, 0.2, 0.1}
	if got := UpperBound(phat, 5, 0.2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("UpperBound = %g, want 0.25", got)
	}
}

func TestUpperBoundOverflow(t *testing.T) {
	// Same staircase; z_4 = 0.3 + 3·0.1 + 4·0.1 = 1.0. ‖r‖=1.4 submerges
	// everything: ub = p̂(1) + (1.4 − 1.0)/5 = 0.5 + 0.08.
	phat := []float64{0.5, 0.4, 0.3, 0.2, 0.1}
	if got := UpperBound(phat, 5, 1.4); math.Abs(got-0.58) > 1e-12 {
		t.Errorf("UpperBound = %g, want 0.58", got)
	}
}

func TestUpperBoundExactBoundary(t *testing.T) {
	// ‖r‖ exactly equal to z_j uses the first line with level at step k−j.
	phat := []float64{0.5, 0.4, 0.3, 0.2, 0.1}
	// z_1 = 0.1: level reaches step 4 exactly → ub = p̂(4) = 0.2.
	if got := UpperBound(phat, 5, 0.1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("UpperBound = %g, want 0.2", got)
	}
}

func TestUpperBoundPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic")
		}
	}()
	UpperBound([]float64{0.5}, 2, 0.1)
}

// pourSimulation computes the best-possible k-th value by greedily
// simulating Figures 3/4: raise the lowest of the top-k steps first,
// spending `ink` to level them up — an independent re-derivation of
// Algorithm 3 used as its oracle.
func pourSimulation(phat []float64, k int, ink float64) float64 {
	steps := make([]float64, k)
	copy(steps, phat[:k])
	// Level-up loop: find the current minimum level among the k steps,
	// and the next-higher distinct level; fill the gap across all steps
	// at the minimum.
	for ink > 1e-15 {
		min := steps[0]
		for _, s := range steps {
			if s < min {
				min = s
			}
		}
		// Count steps at the minimum and find the next level above.
		count := 0
		next := math.Inf(1)
		for _, s := range steps {
			if s == min {
				count++
			} else if s < next {
				next = s
			}
		}
		var raise float64
		if math.IsInf(next, 1) {
			raise = ink / float64(count) // all equal: distribute the rest
		} else {
			raise = next - min
			if needed := raise * float64(count); needed > ink {
				raise = ink / float64(count)
			}
		}
		for i := range steps {
			if steps[i] == min {
				steps[i] += raise
			}
		}
		ink -= raise * float64(count)
		if raise == 0 {
			break
		}
	}
	min := steps[0]
	for _, s := range steps {
		if s < min {
			min = s
		}
	}
	return min
}

func TestUpperBoundMatchesPourSimulation(t *testing.T) {
	// Algorithm 3's closed form must equal the greedy pouring simulation
	// on random staircases.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(8)
		phat := make([]float64, k+rng.Intn(4))
		v := rng.Float64()
		for i := range phat {
			phat[i] = v
			v *= 0.3 + 0.7*rng.Float64()
		}
		ink := rng.Float64() * 2
		got := UpperBound(phat, k, ink)
		want := pourSimulation(phat, k, ink)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProposition4UpperBoundSoundAndMonotone(t *testing.T) {
	// ub^t ≥ pkmax always, and ub^t is non-increasing as BCA refines.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(seed, 20+rng.Intn(30), false)
		u := graph.NodeID(rng.Intn(g.N()))
		k := 1 + rng.Intn(5)
		exact, err := rwr.ProximityVector(g, u, rwr.DefaultParams())
		if err != nil {
			return false
		}
		pkmax := vecmath.KthLargest(exact.Vector, k)
		ws := bca.NewWorkspace(g.N())
		cfg := bca.Config{Alpha: 0.15, Eta: 1e-7, Delta: 0, MaxIters: 200}
		st := bca.Start(u, bca.NoHubs)
		prevUB := math.Inf(1)
		for it := 0; it < 25; it++ {
			if bca.Step(g, st, bca.NoHubs, cfg, ws) == 0 {
				break
			}
			phat := bca.TopK(st, bca.NoHubs, ws, k)
			ub := UpperBound(phat, k, st.RNorm)
			if ub < pkmax-1e-9 {
				return false // not an upper bound
			}
			if ub > prevUB+1e-9 {
				return false // not monotone
			}
			prevUB = ub
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEngineMatchesBruteForceToy(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	eng, err := NewEngine(g, idx, true)
	if err != nil {
		t.Fatal(err)
	}
	p := rwr.DefaultParams()
	for q := graph.NodeID(0); int(q) < g.N(); q++ {
		for k := 1; k <= 3; k++ {
			got, stats, err := eng.Query(q, k)
			if err != nil {
				t.Fatal(err)
			}
			want, err := BruteForce(g, q, k, p, 2)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("q=%d k=%d: engine %v, brute force %v", q, k, got, want)
			}
			if stats.Results != len(got) {
				t.Errorf("stats.Results = %d, len = %d", stats.Results, len(got))
			}
		}
	}
}

func TestEngineMatchesBruteForceRandom(t *testing.T) {
	// The central end-to-end property: OQ ≡ BF on random graphs, both
	// update modes, weighted and unweighted.
	p := rwr.DefaultParams()
	for seed := int64(1); seed <= 6; seed++ {
		weighted := seed%2 == 0
		g := randomGraph(seed, 60, weighted)
		idx := buildIndex(t, g, 10, 3)
		for _, update := range []bool{false, true} {
			eng, err := NewEngine(g, idx, update)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed + 100))
			for trial := 0; trial < 4; trial++ {
				q := graph.NodeID(rng.Intn(g.N()))
				k := 1 + rng.Intn(10)
				got, stats, err := eng.Query(q, k)
				if err != nil {
					t.Fatal(err)
				}
				want, err := BruteForce(g, q, k, p, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d update=%t q=%d k=%d: engine %v, BF %v", seed, update, q, k, got, want)
				}
				if stats.Hits > stats.Candidates || stats.Results > stats.Candidates {
					t.Errorf("inconsistent stats: %+v", stats)
				}
				if !update && stats.Committed != 0 {
					t.Errorf("no-update engine committed %d states", stats.Committed)
				}
			}
		}
	}
}

func TestEngineMatchesBruteForceAllDanglingPolicies(t *testing.T) {
	// The engine must be exact regardless of how dangling nodes were
	// resolved at graph construction (footnote 1 of the paper).
	p := rwr.DefaultParams()
	for _, policy := range []graph.DanglingPolicy{graph.DanglingSelfLoop, graph.DanglingSharedSink, graph.DanglingPrune} {
		rng := rand.New(rand.NewSource(77))
		b := graph.NewBuilder(50)
		for i := 0; i < 150; i++ {
			b.AddEdge(graph.NodeID(rng.Intn(50)), graph.NodeID(rng.Intn(50)))
		}
		g, _, err := b.Build(policy)
		if err != nil {
			t.Fatal(err)
		}
		if g.N() == 0 {
			continue
		}
		idx := buildIndex(t, g, 5, 2)
		eng, err := NewEngine(g, idx, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []graph.NodeID{0, graph.NodeID(g.N() / 2), graph.NodeID(g.N() - 1)} {
			got, _, err := eng.Query(q, 5)
			if err != nil {
				t.Fatalf("%v: %v", policy, err)
			}
			want, err := BruteForce(g, q, 5, p, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%v q=%d: engine %v, BF %v", policy, q, got, want)
			}
		}
	}
}

func TestUpdateModeCommitsAndHelps(t *testing.T) {
	g := randomGraph(42, 120, false)
	idx := buildIndex(t, g, 10, 3)
	eng, err := NewEngine(g, idx, true)
	if err != nil {
		t.Fatal(err)
	}
	q := graph.NodeID(7)
	_, s1, err := eng.Query(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Re-running the same query against the refined index must not need
	// more refinement than the first run.
	res2, s2, err := eng.Query(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s2.RefineSteps > s1.RefineSteps {
		t.Errorf("refined index needed MORE steps: %d then %d", s1.RefineSteps, s2.RefineSteps)
	}
	if s1.Committed > 0 && idx.Refinements() == 0 {
		t.Error("commits not recorded in the index")
	}
	// Results stay identical across refinement.
	res1, _, _ := eng.Query(q, 10)
	if !reflect.DeepEqual(res1, res2) {
		t.Error("refinement changed the answer")
	}
}

func TestQueryValidation(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	eng, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Query(-1, 2); err == nil {
		t.Error("want range error")
	}
	if _, _, err := eng.Query(0, 0); err == nil {
		t.Error("want k error")
	}
	if _, _, err := eng.Query(0, 4); err == nil {
		t.Error("want k > K error")
	}
}

func TestNewEngineDimensionMismatch(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	other := randomGraph(1, 10, false)
	if _, err := NewEngine(other, idx, false); err == nil {
		t.Error("want dimension error")
	}
}

func TestBruteForceValidation(t *testing.T) {
	g := toyGraph(t)
	p := rwr.DefaultParams()
	if _, err := BruteForce(g, 99, 2, p, 1); err == nil {
		t.Error("want range error")
	}
	if _, err := BruteForce(g, 0, 0, p, 1); err == nil {
		t.Error("want k error")
	}
}

func TestExpectedResultSizeIsAboutK(t *testing.T) {
	// §3 observation: the expected reverse top-k answer size is k, since
	// each of the n top-k lists contains k entries spread over n nodes.
	// This requires every node to have ≥ k reachable nodes (else its
	// pkmax is 0 and it joins every answer) and no exact proximity ties
	// (else top-k lists exceed k under the ≥ rule): a Hamiltonian cycle
	// plus random weighted edges gives both.
	rng := rand.New(rand.NewSource(3))
	n := 100
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddWeightedEdge(graph.NodeID(i), graph.NodeID((i+1)%n), 1+rng.Float64())
	}
	for i := 0; i < 3*n; i++ {
		b.AddWeightedEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)), 1+rng.Float64()*4)
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	idx := buildIndex(t, g, 5, 3)
	eng, err := NewEngine(g, idx, true)
	if err != nil {
		t.Fatal(err)
	}
	k := 5
	var total int
	for q := graph.NodeID(0); int(q) < g.N(); q++ {
		res, _, err := eng.Query(q, k)
		if err != nil {
			t.Fatal(err)
		}
		total += len(res)
	}
	avg := float64(total) / float64(g.N())
	if avg < float64(k)*0.9 || avg > float64(k)*1.1 {
		t.Errorf("average answer size %g, want ≈ %d", avg, k)
	}
}

func TestRoundedIndexHighJaccard(t *testing.T) {
	// With a small ω the rounded index returns nearly the same answers as
	// the exact one (Fig. 9: ω ≤ 1e-5 gives Jaccard 1.0 on real graphs).
	g := randomGraph(8, 100, true)
	opts := lbindex.DefaultOptions()
	opts.K = 5
	opts.HubBudget = 3
	opts.Omega = 1e-7
	opts.Workers = 2
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	p := rwr.DefaultParams()
	var inter, union int
	for q := graph.NodeID(0); int(q) < 20; q++ {
		got, _, err := eng.Query(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForce(g, q, 5, p, 0)
		if err != nil {
			t.Fatal(err)
		}
		set := map[graph.NodeID]bool{}
		for _, u := range got {
			set[u] = true
		}
		union += len(got)
		for _, u := range want {
			if set[u] {
				inter++
			} else {
				union++
			}
		}
	}
	jaccard := float64(inter) / float64(union)
	if jaccard < 0.97 {
		t.Errorf("rounded-index Jaccard = %g, want ≥ 0.97", jaccard)
	}
}

func TestQueryNodeUsuallyInOwnResult(t *testing.T) {
	// p_q(q) is almost always among q's own top-k (it holds the restart
	// mass), so q should appear in its own reverse top-k answer.
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	eng, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := eng.Query(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range res {
		if u == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("query node not in its own reverse top-3: %v", res)
	}
}

// TestBatchedFallbacksMatchBruteForce pins the deferred-fallback path:
// with the refinement budget squeezed to one step, most candidates stall
// and must be resolved by the SpMM-batched exact solver. The answers must
// still equal brute force, sequential and sharded engines must agree, and
// in update mode the committed exact states must make a repeat query need
// zero fallbacks.
func TestBatchedFallbacksMatchBruteForce(t *testing.T) {
	p := rwr.DefaultParams()
	for _, seed := range []int64{3, 8} {
		g := randomGraph(seed, 150, seed%2 == 0)
		rng := rand.New(rand.NewSource(seed + 7))
		queries := make([]graph.NodeID, 3)
		for i := range queries {
			queries[i] = graph.NodeID(rng.Intn(g.N()))
		}

		fallbacks := 0
		var seqAnswers [][]graph.NodeID
		{
			idx := buildIndex(t, g, 10, 2)
			eng, err := NewEngine(g, idx, true)
			if err != nil {
				t.Fatal(err)
			}
			eng.SetMaxRefineSteps(1)
			for _, q := range queries {
				got, stats, err := eng.Query(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				want, err := BruteForce(g, q, 10, p, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d q=%d: engine %v, BF %v", seed, q, got, want)
				}
				fallbacks += stats.ExactFallbacks
				seqAnswers = append(seqAnswers, got)
				// The batch committed every fallback node's EXACT vector:
				// repeating the query must not fall back again.
				_, again, err := eng.Query(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				if again.ExactFallbacks != 0 {
					t.Fatalf("seed=%d q=%d: %d fallbacks on refined index", seed, q, again.ExactFallbacks)
				}
			}
		}
		if fallbacks == 0 {
			t.Fatalf("seed=%d: refinement budget 1 produced no fallbacks — test exercises nothing", seed)
		}

		// Sharded sweep, fresh index: identical answers and identical
		// fallback counts (the pending list is worker-independent).
		idx := buildIndex(t, g, 10, 2)
		eng, err := NewEngine(g, idx, true)
		if err != nil {
			t.Fatal(err)
		}
		eng.SetMaxRefineSteps(1)
		eng.SetWorkers(4)
		shardedFallbacks := 0
		for i, q := range queries {
			got, stats, err := eng.Query(q, 10)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, seqAnswers[i]) {
				t.Fatalf("seed=%d q=%d: sharded %v, sequential %v", seed, q, got, seqAnswers[i])
			}
			shardedFallbacks += stats.ExactFallbacks
		}
		if shardedFallbacks != fallbacks {
			t.Fatalf("seed=%d: sharded engine made %d fallbacks, sequential %d", seed, shardedFallbacks, fallbacks)
		}
	}
}
