package core

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/lbindex"
)

func viewTestGraph(t *testing.T, seed int64, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(graph.NodeID(rng.Intn(n)), graph.NodeID(rng.Intn(n)))
	}
	g, _, err := b.Build(graph.DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestViewConcurrentQueriesMatchEngine runs many goroutines through one
// View at mixed worker counts and checks every answer equals a sequential
// engine's — and that the view left the index untouched.
func TestViewConcurrentQueriesMatchEngine(t *testing.T) {
	g := viewTestGraph(t, 51, 60)
	opts := lbindex.DefaultOptions()
	opts.K = 6
	opts.HubBudget = 2
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Reference answers from a plain sequential no-update engine.
	eng, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	type qk struct {
		q graph.NodeID
		k int
	}
	var cases []qk
	want := map[qk][]graph.NodeID{}
	for q := graph.NodeID(0); int(q) < g.N(); q += 7 {
		for _, k := range []int{1, 3, 6} {
			ans, _, err := eng.Query(q, k)
			if err != nil {
				t.Fatal(err)
			}
			cases = append(cases, qk{q, k})
			want[qk{q, k}] = ans
		}
	}

	v, err := NewView(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	refinementsBefore := idx.Refinements()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, c := range cases {
				ans, _, err := v.Query(c.q, c.k, 1+(w+i)%3)
				if err != nil {
					t.Errorf("view q=%d k=%d: %v", c.q, c.k, err)
					return
				}
				ref := want[c]
				if len(ans) != len(ref) {
					t.Errorf("view q=%d k=%d: %v, engine %v", c.q, c.k, ans, ref)
					continue
				}
				for j := range ans {
					if ans[j] != ref[j] {
						t.Errorf("view q=%d k=%d: %v, engine %v", c.q, c.k, ans, ref)
						break
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := idx.Refinements(); got != refinementsBefore {
		t.Errorf("read-only view committed %d refinements", got-refinementsBefore)
	}
}

// TestViewRejectsMismatchedPair mirrors NewEngine's only constructor error.
func TestViewRejectsMismatchedPair(t *testing.T) {
	g := viewTestGraph(t, 52, 30)
	other := viewTestGraph(t, 53, 31)
	opts := lbindex.DefaultOptions()
	opts.K = 4
	opts.HubBudget = 1
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewView(other, idx); err == nil {
		t.Fatal("NewView accepted a mismatched graph/index pair")
	}
}
