package core

import "testing"

// TestQueryPhaseTiming checks the phase breakdown the observability layer
// exports: the named phase durations must be populated and must not exceed
// the total wall clock.
func TestQueryPhaseTiming(t *testing.T) {
	g := randomGraph(3, 200, true)
	idx := buildIndex(t, g, 10, 6)
	e, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := e.Query(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PMPNElapsed <= 0 {
		t.Fatal("PMPNElapsed not recorded")
	}
	if stats.DecideElapsed < 0 {
		t.Fatalf("DecideElapsed = %v, negative", stats.DecideElapsed)
	}
	if sum := stats.PMPNElapsed + stats.DecideElapsed + stats.FallbackElapsed; sum > stats.Elapsed*2 {
		t.Fatalf("phases sum to %v, over twice total %v", sum, stats.Elapsed)
	}
	p := stats.Phases()
	if _, ok := p["pmpn"]; !ok {
		t.Fatalf("Phases() = %v, missing pmpn", p)
	}
	for name, d := range p {
		if d <= 0 {
			t.Fatalf("phase %q reported non-positive duration %v", name, d)
		}
	}
}
