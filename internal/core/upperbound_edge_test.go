package core

import (
	"math"
	"testing"
)

// Edge cases of Algorithm 3 (UBC) called out by the staircase geometry:
// query k equal to the full indexed list, residue large enough to submerge
// every step, and degenerate staircases with zero-height steps.

func TestUpperBoundKEqualsListLength(t *testing.T) {
	phat := []float64{0.5, 0.4, 0.3, 0.2}
	// k == len(phat): the last step is the k-th; z_3 = 0.1 + 2·0.1 + 3·0.1
	// = 0.6. Residue 0.05 lands in (0, z_1]: ub = p̂(3) − (0.1−0.05)/1.
	if got := UpperBound(phat, 4, 0.05); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("UpperBound = %g, want 0.25", got)
	}
	// And with no residue it is exactly the last lower bound.
	if got := UpperBound(phat, 4, 0); got != 0.2 {
		t.Errorf("UpperBound = %g, want 0.2", got)
	}
}

func TestUpperBoundSubmergesWholeStaircase(t *testing.T) {
	phat := []float64{0.5, 0.4, 0.3}
	// Filling every gap up to p̂(1) costs z_2 = 0.1 + 2·0.1 = 0.3; residue 1
	// overflows by 0.7 spread over k=3 steps: ub = 0.5 + 0.7/3.
	want := 0.5 + 0.7/3
	if got := UpperBound(phat, 3, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("UpperBound = %g, want %g", got, want)
	}
	// k=1 degenerates to p̂(1) + ‖r‖ directly (no staircase to fill).
	if got := UpperBound(phat, 1, 1); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("UpperBound = %g, want 1.5", got)
	}
}

func TestUpperBoundZeroDeltaStaircase(t *testing.T) {
	// A perfectly flat staircase: every ∆ is zero, so every z_j collapses to
	// zero and ANY positive residue goes straight to the submerged branch,
	// spreading evenly over the k steps.
	phat := []float64{0.25, 0.25, 0.25, 0.25}
	for _, k := range []int{1, 2, 4} {
		want := 0.25 + 0.1/float64(k)
		if got := UpperBound(phat, k, 0.1); math.Abs(got-want) > 1e-12 {
			t.Errorf("k=%d: UpperBound = %g, want %g", k, got, want)
		}
	}
	// Flat prefix with one real drop at the end: z_j stays 0 until the loop
	// reaches the drop, so the residue pours into the last gap first.
	// phat = {0.3, 0.3, 0.3, 0.1}, k=4: z_1 = 1·(0.3−0.1) = 0.2; residue
	// 0.1 ≤ z_1 levels within the gap: ub = 0.3 − (0.2−0.1)/1 = 0.2.
	phat = []float64{0.3, 0.3, 0.3, 0.1}
	if got := UpperBound(phat, 4, 0.1); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("UpperBound = %g, want 0.2", got)
	}
	// All-zero staircase (a node with an empty lower bound): the bound is
	// just the residue spread over k.
	phat = []float64{0, 0, 0}
	if got := UpperBound(phat, 3, 0.6); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("UpperBound = %g, want 0.2", got)
	}
}

// TestUpperBoundMonotoneInResidue: more undecided ink can never tighten the
// bound — the property Proposition 4 relies on, checked across the branch
// boundaries of the edge staircases above.
func TestUpperBoundMonotoneInResidue(t *testing.T) {
	for _, phat := range [][]float64{
		{0.5, 0.4, 0.3, 0.2, 0.1},
		{0.25, 0.25, 0.25, 0.25},
		{0.3, 0.3, 0.3, 0.1},
		{0, 0, 0},
	} {
		for k := 1; k <= len(phat); k++ {
			prev := math.Inf(-1)
			for r := 0.0; r <= 2.0; r += 0.01 {
				ub := UpperBound(phat, k, r)
				if ub < prev-1e-12 {
					t.Fatalf("phat=%v k=%d: UpperBound decreased from %g to %g at r=%g", phat, k, prev, ub, r)
				}
				prev = ub
			}
		}
	}
}
