package core

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
)

func anytimeQueries(n int) []graph.NodeID {
	qs := []graph.NodeID{0, graph.NodeID(n / 3), graph.NodeID(n / 2), graph.NodeID(2 * n / 3), graph.NodeID(n - 1)}
	return qs
}

func idSet(ids []graph.NodeID) map[graph.NodeID]bool {
	m := make(map[graph.NodeID]bool, len(ids))
	for _, u := range ids {
		m[u] = true
	}
	return m
}

// checkContainment asserts guaranteed ⊆ exact ⊆ guaranteed ∪ maybe.
func checkContainment(t *testing.T, label string, guaranteed, maybe, exact []graph.NodeID) {
	t.Helper()
	inExact := idSet(exact)
	cover := idSet(guaranteed)
	for _, u := range maybe {
		cover[u] = true
	}
	for _, u := range guaranteed {
		if !inExact[u] {
			t.Fatalf("%s: guaranteed node %d not in exact answer %v", label, u, exact)
		}
	}
	for _, u := range exact {
		if !cover[u] {
			t.Fatalf("%s: exact node %d in neither guaranteed %v nor maybe %v", label, u, guaranteed, maybe)
		}
	}
}

// TestAnytimeContainmentAcrossFamilies is the (ε, δ=0) oracle: across graph
// families, k and the full eps sweep, the two-part answer must bracket the
// brute-force answer, meet the budget whenever it did not stop on
// convergence, and shrink its maybe set monotonically as eps tightens
// (a later stop can only decide more nodes, never resurrect one).
func TestAnytimeContainmentAcrossFamilies(t *testing.T) {
	epsSweep := []float64{0.5, 0.2, 0.05, 0}
	for _, family := range []string{"web", "coauthor", "spam"} {
		family := family
		t.Run(family, func(t *testing.T) {
			t.Parallel()
			g := oracleGraph(t, family)
			idx := buildIndex(t, g, 20, 6)
			view, err := NewView(g, idx)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{3, 10} {
				for _, q := range anytimeQueries(g.N()) {
					exact, err := BruteForce(g, q, k, idx.Options().RWR, 4)
					if err != nil {
						t.Fatal(err)
					}
					prevMaybe := map[graph.NodeID]bool(nil)
					for _, eps := range epsSweep {
						res, err := view.QueryAnytime(q, k, AnytimeOptions{Eps: eps}, 2)
						if err != nil {
							t.Fatal(err)
						}
						label := family
						checkContainment(t, label, res.Guaranteed, res.Maybe, exact)
						if !res.Stats.Converged && res.Stats.EpsAchieved > eps {
							t.Fatalf("%s k=%d q=%d eps=%g: budget missed without convergence (achieved %g)",
								family, k, q, eps, res.Stats.EpsAchieved)
						}
						und := len(res.Maybe)
						tot := len(res.Guaranteed) + und
						want := 0.0
						if und > 0 {
							want = float64(und) / float64(tot)
						}
						if math.Abs(res.Stats.EpsAchieved-want) > 1e-12 {
							t.Fatalf("%s: EpsAchieved=%g but |maybe|/(total)=%g", family, res.Stats.EpsAchieved, want)
						}
						// eps decreases through the sweep, so each maybe set must
						// be a subset of the previous (looser) one.
						if prevMaybe != nil {
							for _, u := range res.Maybe {
								if !prevMaybe[u] {
									t.Fatalf("%s k=%d q=%d eps=%g: maybe node %d absent at looser eps",
										family, k, q, eps, u)
								}
							}
						}
						prevMaybe = idSet(res.Maybe)
						if eps == 0 && len(res.Maybe) > 0 && !res.Stats.Converged {
							t.Fatalf("%s: eps=0 stopped before convergence with %d undecided", family, len(res.Maybe))
						}
					}
				}
			}
		})
	}
}

// TestAnytimeMonteCarlo drives the δ > 0 tier with a short round cadence so
// the Monte Carlo stage engages mid-iteration, and checks (a) the walks
// actually ran, (b) the probabilistic answer still brackets brute force
// (with the fixed seed this is a deterministic regression, not a flake),
// and (c) equal seeds give byte-identical results while the verdict maps
// never override a deterministic screen decision.
func TestAnytimeMonteCarlo(t *testing.T) {
	g := oracleGraph(t, "web")
	idx := buildIndex(t, g, 20, 6)
	view, err := NewView(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	opts := AnytimeOptions{Eps: 0.02, Delta: 1e-3, RoundIters: 1, Seed: 99, MCWalks: 256}
	var walks int64
	for _, q := range anytimeQueries(g.N()) {
		exact, err := BruteForce(g, q, 10, idx.Options().RWR, 4)
		if err != nil {
			t.Fatal(err)
		}
		res, err := view.QueryAnytime(q, 10, opts, 2)
		if err != nil {
			t.Fatal(err)
		}
		checkContainment(t, "mc", res.Guaranteed, res.Maybe, exact)
		walks += res.Stats.MCWalks
		again, err := view.QueryAnytime(q, 10, opts, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Guaranteed, again.Guaranteed) || !reflect.DeepEqual(res.Maybe, again.Maybe) {
			t.Fatalf("q=%d: fixed-seed runs disagree: %v/%v vs %v/%v",
				q, res.Guaranteed, res.Maybe, again.Guaranteed, again.Maybe)
		}
		if res.Stats.MCWalks != again.Stats.MCWalks {
			t.Fatalf("q=%d: fixed-seed runs walked differently: %d vs %d", q, res.Stats.MCWalks, again.Stats.MCWalks)
		}
	}
	if walks == 0 {
		t.Fatal("Monte Carlo stage never engaged across the workload")
	}
}

// TestAnytimeEscalateMatchesColdQuery is the warm-start oracle: resolving a
// partial anytime run exactly must give the SAME answer as a cold exact
// query, at any worker count, and regardless of whether Monte Carlo
// verdicts were taken along the way (they are discarded).
func TestAnytimeEscalateMatchesColdQuery(t *testing.T) {
	for _, family := range []string{"web", "coauthor", "spam"} {
		g := oracleGraph(t, family)
		idx := buildIndex(t, g, 20, 6)
		view, err := NewView(g, idx)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range anytimeQueries(g.N()) {
			want, _, err := view.Query(q, 10, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 3} {
				res, err := view.QueryAnytime(q, 10, AnytimeOptions{Eps: 0.5, Delta: 1e-3, RoundIters: 1, Seed: 7}, workers)
				if err != nil {
					t.Fatal(err)
				}
				got, stats, err := res.Escalate(workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s q=%d w=%d: escalated %v, cold %v", family, q, workers, got, want)
				}
				if stats.Results != len(got) {
					t.Fatalf("stats.Results=%d, answer has %d", stats.Results, len(got))
				}
				if _, _, err := res.Escalate(workers); err == nil {
					t.Fatal("second Escalate accepted")
				}
			}
		}
	}
}

// TestAnytimeConcurrent hammers one shared view with interleaved exact and
// anytime queries; under -race this is the data-race harness for the
// approx/exact serving mix, and every concurrent answer must equal its
// sequential counterpart.
func TestAnytimeConcurrent(t *testing.T) {
	g := oracleGraph(t, "web")
	idx := buildIndex(t, g, 20, 6)
	view, err := NewView(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	queries := anytimeQueries(g.N())
	wantExact := make([][]graph.NodeID, len(queries))
	wantG := make([][]graph.NodeID, len(queries))
	wantM := make([][]graph.NodeID, len(queries))
	opts := AnytimeOptions{Eps: 0.1, Delta: 1e-3, Seed: 3, RoundIters: 2}
	for i, q := range queries {
		if wantExact[i], _, err = view.Query(q, 10, 1); err != nil {
			t.Fatal(err)
		}
		res, err := view.QueryAnytime(q, 10, opts, 1)
		if err != nil {
			t.Fatal(err)
		}
		wantG[i], wantM[i] = res.Guaranteed, res.Maybe
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for rep := 0; rep < 4; rep++ {
		for i, q := range queries {
			wg.Add(1)
			go func(i int, q graph.NodeID, approx bool) {
				defer wg.Done()
				if approx {
					res, err := view.QueryAnytime(q, 10, opts, 2)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(res.Guaranteed, wantG[i]) || !reflect.DeepEqual(res.Maybe, wantM[i]) {
						t.Errorf("q=%d: concurrent anytime diverged", q)
					}
				} else {
					got, _, err := view.Query(q, 10, 2)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, wantExact[i]) {
						t.Errorf("q=%d: concurrent exact diverged", q)
					}
				}
			}(i, q, rep%2 == 0)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestAnytimeValidation covers the option and parameter guard rails.
func TestAnytimeValidation(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 5, 2)
	view, err := NewView(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		q    graph.NodeID
		k    int
		opts AnytimeOptions
	}{
		{"negative q", -1, 3, AnytimeOptions{}},
		{"q out of range", graph.NodeID(g.N()), 3, AnytimeOptions{}},
		{"k=0", 0, 0, AnytimeOptions{}},
		{"k beyond index", 0, idx.K() + 1, AnytimeOptions{}},
		{"eps=1", 0, 3, AnytimeOptions{Eps: 1}},
		{"eps<0", 0, 3, AnytimeOptions{Eps: -0.1}},
		{"eps NaN", 0, 3, AnytimeOptions{Eps: math.NaN()}},
		{"delta>0.5", 0, 3, AnytimeOptions{Delta: 0.6}},
		{"delta<0", 0, 3, AnytimeOptions{Delta: -1e-9}},
		{"negative rounds", 0, 3, AnytimeOptions{RoundIters: -1}},
		{"negative walks", 0, 3, AnytimeOptions{MCWalks: -1}},
	} {
		if _, err := view.QueryAnytime(tc.q, tc.k, tc.opts, 1); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}
