package core

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lbindex"
)

// TestFallbackCommitsSurviveSaveLoad: exact states committed by the
// deferred fallback resolution are fully drained (zero residue), so they
// must keep deciding by the cheap hit check not only on in-memory repeat
// queries but after a save/load round trip — the "update curve flattens"
// property of Fig. 7/8 holds across restarts.
func TestFallbackCommitsSurviveSaveLoad(t *testing.T) {
	g := randomGraph(11, 150, false)
	idx := buildIndex(t, g, 10, 2)
	eng, err := NewEngine(g, idx, true)
	if err != nil {
		t.Fatal(err)
	}
	eng.SetMaxRefineSteps(1)
	_, st1, err := eng.Query(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st1.ExactFallbacks == 0 {
		t.Fatal("no fallbacks fired; pick another seed")
	}
	// in-memory repeat
	eng2, _ := NewEngine(g, idx, false)
	eng2.SetMaxRefineSteps(1)
	_, st2, err := eng2.Query(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st2.ExactFallbacks != 0 {
		t.Errorf("in-memory repeat: %d fallbacks recurred", st2.ExactFallbacks)
	}
	// save/load repeat
	path := filepath.Join(t.TempDir(), "x.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	idx2, err := lbindex.LoadFile(path, lbindex.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng3, err := NewEngine(g, idx2, false)
	if err != nil {
		t.Fatal(err)
	}
	eng3.SetMaxRefineSteps(1)
	_, st3, err := eng3.Query(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st3.ExactFallbacks != 0 {
		t.Errorf("save/load repeat: %d fallbacks recurred", st3.ExactFallbacks)
	}
}
