package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/workload"
)

func TestPracticalModeSupersetAndNearExact(t *testing.T) {
	g, err := gen.WebGraph(500, 13)
	if err != nil {
		t.Fatal(err)
	}
	opts := lbindex.DefaultOptions()
	opts.K = 20
	opts.HubBudget = 8
	opts.Omega = 0
	opts.Workers = 2
	build := func() *lbindex.Index {
		idx, _, err := lbindex.Build(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		return idx
	}

	exactEng, err := NewEngine(g, build(), true)
	if err != nil {
		t.Fatal(err)
	}
	practEng, err := NewEngine(g, build(), true)
	if err != nil {
		t.Fatal(err)
	}
	practEng.SetPracticalDecisions(true)

	queries, err := workload.Queries(g.N(), 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	var jaccardSum float64
	var exactFallbacks int
	for _, q := range queries {
		exact, es, err := exactEng.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		practical, ps, err := practEng.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		exactFallbacks += ps.ExactFallbacks
		// Practical decisions only ever keep undecided near-boundary
		// candidates, so the practical answer must contain the exact one.
		inPractical := map[graph.NodeID]bool{}
		for _, u := range practical {
			inPractical[u] = true
		}
		for _, u := range exact {
			if !inPractical[u] {
				t.Fatalf("q=%d: exact answer node %d missing from practical answer", q, u)
			}
		}
		jaccardSum += workload.Jaccard(exact, practical)
		_ = es
	}
	if exactFallbacks != 0 {
		t.Errorf("practical mode ran %d exact fallbacks, want 0", exactFallbacks)
	}
	avg := jaccardSum / float64(len(queries))
	// The extra inclusions are confined to sub-η-precision boundary gaps.
	if avg < 0.9 {
		t.Errorf("practical answers diverge too far from exact: avg Jaccard %.3f", avg)
	}
}
