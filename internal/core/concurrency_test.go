package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/rwr"
	"repro/internal/vecmath"
	"repro/internal/workload"
)

// oracleGraph builds one graph of each family the paper evaluates on.
func oracleGraph(t *testing.T, family string) *graph.Graph {
	t.Helper()
	switch family {
	case "web":
		g, err := gen.WebGraph(300, 41)
		if err != nil {
			t.Fatal(err)
		}
		return g
	case "coauthor":
		g, _, err := gen.Coauthor(gen.CoauthorOptions{
			Authors: 250, Communities: 6, Prolific: 3,
			PapersPerAuthor: 5, CoauthorsPerPaper: 2, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	case "spam":
		g, _, err := gen.SpamWeb(gen.SpamWebOptions{
			Normal: 180, Spam: 50, Undecided: 25, Farms: 2,
			FarmDensity: 6, NormalOut: 5, SpamToNormal: 2,
			NormalToSpam: 0.02, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return g
	default:
		t.Fatalf("unknown family %q", family)
		return nil
	}
}

// TestParallelQueryMatchesSequentialAndBruteForce is the correctness oracle
// of the intra-query parallelism tentpole: across graph families, query
// sizes and worker counts, the sharded engine must return EXACTLY the
// answer of the sequential engine — which in exact mode equals brute force.
// Run under -race this doubles as the data-race harness for the sharded
// decision loop committing into the striped index.
func TestParallelQueryMatchesSequentialAndBruteForce(t *testing.T) {
	const indexK = 20
	for _, family := range []string{"web", "coauthor", "spam"} {
		family := family
		t.Run(family, func(t *testing.T) {
			g := oracleGraph(t, family)
			opts := lbindex.DefaultOptions()
			opts.K = indexK
			opts.HubBudget = 5
			opts.Workers = 2
			built, _, err := lbindex.Build(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			queries, err := workload.Queries(g.N(), 6, 55)
			if err != nil {
				t.Fatal(err)
			}
			// One full proximity matrix serves every brute-force check of
			// this family (BruteForce recomputes it per call).
			cols, err := rwr.ProximityMatrix(g, opts.RWR, 0)
			if err != nil {
				t.Fatal(err)
			}
			bruteForce := func(q graph.NodeID, k int) []graph.NodeID {
				var results []graph.NodeID
				for u := 0; u < g.N(); u++ {
					if cols[u][q] >= vecmath.KthLargest(cols[u], k) {
						results = append(results, graph.NodeID(u))
					}
				}
				return results
			}
			for _, update := range []bool{false, true} {
				// Each worker-count sweep gets engines over the same shared
				// index; in update mode the commits themselves must not
				// change any answer (they only tighten bounds).
				seqEng, err := NewEngine(g, built, update)
				if err != nil {
					t.Fatal(err)
				}
				parEngs := make([]*Engine, 0, 2)
				for _, w := range []int{2, 8} {
					eng, err := NewEngine(g, built, update)
					if err != nil {
						t.Fatal(err)
					}
					eng.SetWorkers(w)
					parEngs = append(parEngs, eng)
				}
				for _, k := range []int{1, 10, indexK} {
					for _, q := range queries {
						want, _, err := seqEng.Query(q, k)
						if err != nil {
							t.Fatal(err)
						}
						bf := bruteForce(q, k)
						if !reflect.DeepEqual(want, bf) {
							t.Fatalf("%s update=%t k=%d q=%d: sequential %v != brute force %v",
								family, update, k, q, want, bf)
						}
						for _, eng := range parEngs {
							got, stats, err := eng.Query(q, k)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("%s update=%t k=%d q=%d workers=%d: parallel %v != sequential %v",
									family, update, k, q, eng.Workers(), got, want)
							}
							if stats.Results != len(got) {
								t.Fatalf("%s k=%d q=%d workers=%d: stats.Results=%d, len(answer)=%d",
									family, k, q, eng.Workers(), stats.Results, len(got))
							}
						}
					}
				}
			}
			if err := built.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestParallelStatsMatchSequential: shard-merged counters must equal the
// sequential sweep's (they are per-node counts, summed).
func TestParallelStatsMatchSequential(t *testing.T) {
	g := oracleGraph(t, "web")
	opts := lbindex.DefaultOptions()
	opts.K = 20
	opts.HubBudget = 5
	opts.Workers = 2
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewEngine(g, idx, false)
	if err != nil {
		t.Fatal(err)
	}
	par.SetWorkers(4)
	for _, q := range []graph.NodeID{1, 100, 299} {
		_, ws, err := seq.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		_, ps, err := par.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Candidates != ws.Candidates || ps.Hits != ws.Hits ||
			ps.RefineSteps != ws.RefineSteps || ps.ExactFallbacks != ws.ExactFallbacks ||
			ps.Committed != ws.Committed || ps.PMPNIters != ws.PMPNIters {
			t.Errorf("q=%d: parallel stats %+v != sequential %+v", q, ps, ws)
		}
	}
}

// TestConcurrentEnginesSharedIndex runs several engines — one per
// goroutine, as documented — against one shared index with updates
// enabled. The index must stay invariant-clean and queries must agree with
// a single-threaded reference. Run with -race to exercise the locking.
func TestConcurrentEnginesSharedIndex(t *testing.T) {
	g, err := gen.WebGraph(400, 31)
	if err != nil {
		t.Fatal(err)
	}
	opts := lbindex.DefaultOptions()
	opts.K = 20
	opts.HubBudget = 5
	opts.Omega = 0
	opts.Workers = 2
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Reference answers from a fresh single-threaded engine on a copy.
	refIdx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := NewEngine(g, refIdx, false)
	if err != nil {
		t.Fatal(err)
	}
	queries := []graph.NodeID{3, 77, 150, 222, 301, 399}
	want := make([][]graph.NodeID, len(queries))
	for i, q := range queries {
		want[i], _, err = refEng.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			eng, err := NewEngine(g, idx, true)
			if err != nil {
				errs <- err
				return
			}
			for round := 0; round < 3; round++ {
				for i, q := range queries {
					got, _, err := eng.Query(q, 10)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, want[i]) {
						t.Errorf("worker %d q=%d: got %v, want %v", worker, q, got, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if idx.Refinements() == 0 {
		t.Log("note: no refinements were needed by this workload")
	}
}
