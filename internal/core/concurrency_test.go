package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/lbindex"
)

// TestConcurrentEnginesSharedIndex runs several engines — one per
// goroutine, as documented — against one shared index with updates
// enabled. The index must stay invariant-clean and queries must agree with
// a single-threaded reference. Run with -race to exercise the locking.
func TestConcurrentEnginesSharedIndex(t *testing.T) {
	g, err := gen.WebGraph(400, 31)
	if err != nil {
		t.Fatal(err)
	}
	opts := lbindex.DefaultOptions()
	opts.K = 20
	opts.HubBudget = 5
	opts.Omega = 0
	opts.Workers = 2
	idx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Reference answers from a fresh single-threaded engine on a copy.
	refIdx, _, err := lbindex.Build(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	refEng, err := NewEngine(g, refIdx, false)
	if err != nil {
		t.Fatal(err)
	}
	queries := []graph.NodeID{3, 77, 150, 222, 301, 399}
	want := make([][]graph.NodeID, len(queries))
	for i, q := range queries {
		want[i], _, err = refEng.Query(q, 10)
		if err != nil {
			t.Fatal(err)
		}
	}

	const workers = 4
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			eng, err := NewEngine(g, idx, true)
			if err != nil {
				errs <- err
				return
			}
			for round := 0; round < 3; round++ {
				for i, q := range queries {
					got, _, err := eng.Query(q, 10)
					if err != nil {
						errs <- err
						return
					}
					if !reflect.DeepEqual(got, want[i]) {
						t.Errorf("worker %d q=%d: got %v, want %v", worker, q, got, want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if idx.Refinements() == 0 {
		t.Log("note: no refinements were needed by this workload")
	}
}
