package core

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/lbindex"
)

// View is a read-only, concurrency-safe query façade over one immutable
// (graph, index) pair. Where an Engine owns a BCA workspace and therefore
// serves one goroutine at a time, a View maintains a free list of no-update
// engines and hands each Query call a private one, so any number of
// goroutines may query the same snapshot simultaneously.
//
// A View never mutates its index: its engines run in no-update mode, which
// refines per-candidate state on deep copies (Index.StateSnapshot) and
// commits nothing back. That makes a View safe to share not only across
// goroutines but across index snapshots — a cloned index (lbindex.Clone)
// being refreshed off to the side shares rows with the view's index, and
// neither side ever writes through the shared rows.
//
// The serving daemon (internal/serve) publishes one View per snapshot epoch
// behind an atomic pointer; requests grab the current View once and run
// entirely against it, so a concurrent snapshot swap can never produce a
// torn read.
type View struct {
	g       graph.View
	idx     *lbindex.Index
	engines sync.Pool
}

// NewView binds a graph and index into a shareable read-only view. The pair
// is validated once here, so engine construction inside the pool cannot
// fail later.
func NewView(g graph.View, idx *lbindex.Index) (*View, error) {
	// Surface the node-count mismatch (the only constructor error) now.
	if _, err := NewEngine(g, idx, false); err != nil {
		return nil, err
	}
	v := &View{g: g, idx: idx}
	v.engines.New = func() any {
		e, _ := NewEngine(g, idx, false)
		return e
	}
	return v, nil
}

// Query answers one reverse top-k query with the given intra-query worker
// count (≤ 0 selects GOMAXPROCS, as in Engine.SetWorkers). Safe for
// concurrent use; answers are identical at any worker setting.
func (v *View) Query(q graph.NodeID, k, workers int) ([]graph.NodeID, QueryStats, error) {
	e := v.engines.Get().(*Engine)
	defer v.engines.Put(e)
	e.SetWorkers(workers)
	return e.Query(q, k)
}

// DecideList answers the shard-local decision step for the listed nodes
// against a precomputed proximities-to-query vector, with the given
// intra-engine worker count (≤ 0 selects GOMAXPROCS) — the entry point the
// scatter-gather coordinator fans out to. Safe for concurrent use; see
// Engine.DecideList.
func (v *View) DecideList(pq []float64, k int, nodes []graph.NodeID, workers int) ([]graph.NodeID, QueryStats, error) {
	e := v.engines.Get().(*Engine)
	defer v.engines.Put(e)
	e.SetWorkers(workers)
	return e.DecideList(pq, k, nodes)
}

// Graph returns the graph view this View queries (a base CSR *graph.Graph
// or a *graph.Overlay carrying un-compacted edits).
func (v *View) Graph() graph.View { return v.g }

// Index returns the view's index.
func (v *View) Index() *lbindex.Index { return v.idx }

// N returns the node count of the underlying graph.
func (v *View) N() int { return v.g.N() }

// MaxK returns the largest query k the underlying index supports.
func (v *View) MaxK() int { return v.idx.K() }
