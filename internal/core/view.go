package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/lbindex"
	"repro/internal/rwr"
)

// View is a read-only, concurrency-safe query façade over one immutable
// (graph, index) pair. Where an Engine owns a BCA workspace and therefore
// serves one goroutine at a time, a View maintains a free list of no-update
// engines and hands each Query call a private one, so any number of
// goroutines may query the same snapshot simultaneously.
//
// A View never mutates its index: its engines run in no-update mode, which
// refines per-candidate state on deep copies (Index.StateSnapshot) and
// commits nothing back. That makes a View safe to share not only across
// goroutines but across index snapshots — a cloned index (lbindex.Clone)
// being refreshed off to the side shares rows with the view's index, and
// neither side ever writes through the shared rows.
//
// The serving daemon (internal/serve) publishes one View per snapshot epoch
// behind an atomic pointer; requests grab the current View once and run
// entirely against it, so a concurrent snapshot swap can never produce a
// torn read.
type View struct {
	g       graph.View
	idx     *lbindex.Index
	engines sync.Pool
}

// NewView binds a graph and index into a shareable read-only view. The pair
// is validated once here, so engine construction inside the pool cannot
// fail later.
func NewView(g graph.View, idx *lbindex.Index) (*View, error) {
	// Surface the node-count mismatch (the only constructor error) now.
	if _, err := NewEngine(g, idx, false); err != nil {
		return nil, err
	}
	v := &View{g: g, idx: idx}
	v.engines.New = func() any {
		e, _ := NewEngine(g, idx, false)
		return e
	}
	return v, nil
}

// Query answers one reverse top-k query with the given intra-query worker
// count (≤ 0 selects GOMAXPROCS, as in Engine.SetWorkers). Safe for
// concurrent use; answers are identical at any worker setting.
//
// The View is the identifier-translation boundary for cache-aware
// relabelings (lbindex.Index.Relabeling): q and the answer are in the
// EXTERNAL space callers speak, translated to and from the internal storage
// labels the graph and index were built under. With no relabeling installed
// both spaces coincide and translation is free.
func (v *View) Query(q graph.NodeID, k, workers int) ([]graph.NodeID, QueryStats, error) {
	e := v.engines.Get().(*Engine)
	defer v.engines.Put(e)
	e.SetWorkers(workers)
	answer, stats, err := e.Query(v.idx.ToInternal(q), k)
	stats.Query = q
	return externalAnswer(v.idx, answer), stats, err
}

// Explain runs Engine.Explain through the view's engine pool, translating
// the query and every decision's node across the relabeling boundary like
// Query does. Decisions come back ordered by external node id.
func (v *View) Explain(q graph.NodeID, k int, includePruned bool, workers int) (*Explanation, error) {
	e := v.engines.Get().(*Engine)
	defer v.engines.Put(e)
	e.SetWorkers(workers)
	ex, err := e.Explain(v.idx.ToInternal(q), k, includePruned)
	if err != nil {
		return nil, err
	}
	if v.idx.Relabeling() != nil {
		ex.Query = q
		ex.Stats.Query = q
		for i := range ex.Decisions {
			ex.Decisions[i].Node = v.idx.ToExternal(ex.Decisions[i].Node)
		}
		sort.Slice(ex.Decisions, func(i, j int) bool { return ex.Decisions[i].Node < ex.Decisions[j].Node })
	}
	return ex, nil
}

// QueryMulti answers a batch of reverse top-k queries through the SpMM tier
// (rwr.ProximityToBatchFunc): all proximity columns advance in one slab,
// amortizing the matrix traffic across the batch, and each query's decision
// step runs on a pooled engine as soon as its column converges — a query
// that converges early delivers early, never waiting for the batch's
// stragglers. Candidates whose refinement budget stalls are NOT resolved
// per query: they are parked past the sweep and resolved once for the whole
// batch, deduplicated across queries — a deferred candidate's exact vector
// depends only on the candidate, so B queries stalling on overlapping
// hub-adjacent candidates pay for each forward solve once
// (Engine.exactThresholds) and then compare their own p_u(q) against the
// shared threshold. Only queries that actually deferred wait for this
// phase; their deliveries carry the shared resolution wall clock in
// QueryStats.FallbackElapsed (charged in full to each, like QueryBatch).
//
// deliver(i, answer, stats, err) is invoked exactly once per query,
// possibly concurrently from multiple goroutines; QueryMulti returns after
// every delivery has completed. Each answer is identical to
// Query(qs[i], ks[i], workers) — the batched proximity vector is
// bit-identical to the scalar one, each bound decision depends only on it,
// and the deduplicated exact solves are bit-identical to the per-query
// ones.
//
// Validation covers the whole batch up front: on a non-nil error from a
// malformed input, deliver has not been called at all.
func (v *View) QueryMulti(qs []graph.NodeID, ks []int, workers int, deliver func(i int, answer []graph.NodeID, stats QueryStats, err error)) error {
	if len(qs) != len(ks) {
		return fmt.Errorf("core: %d queries but %d k values", len(qs), len(ks))
	}
	n := v.g.N()
	for i, q := range qs {
		if int(q) < 0 || int(q) >= n {
			return fmt.Errorf("core: query node %d out of range [0,%d)", q, n)
		}
		if ks[i] <= 0 || ks[i] > v.idx.K() {
			return fmt.Errorf("core: k=%d outside [1,%d] supported by the index", ks[i], v.idx.K())
		}
	}
	internal := make([]graph.NodeID, len(qs))
	for i, q := range qs {
		internal[i] = v.idx.ToInternal(q)
	}
	// swept is one query's decision-sweep outcome. Goroutines write disjoint
	// entries; parked entries are only read after wg.Wait.
	type swept struct {
		partial []graph.NodeID
		pend    []pendingFallback
		stats   QueryStats
		parked  bool
	}
	state := make([]swept, len(qs))
	start := time.Now()
	var wg sync.WaitGroup
	err := rwr.ProximityToBatchFunc(v.g, internal, v.idx.Options().RWR, workers, func(i int, res rwr.Result, rerr error) {
		pmElapsed := time.Since(start)
		if rerr != nil {
			deliver(i, nil, QueryStats{
				Query: qs[i], K: ks[i],
				PMPNIters: res.Iterations, PMPNElapsed: pmElapsed, Elapsed: pmElapsed,
			}, rerr)
			return
		}
		// Decide off the coordinating goroutine so the surviving columns keep
		// iterating while this query's candidates are screened.
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := v.engines.Get().(*Engine)
			defer v.engines.Put(e)
			e.SetWorkers(workers)
			st := &state[i]
			st.stats = QueryStats{Query: qs[i], K: ks[i], PMPNIters: res.Iterations, PMPNElapsed: pmElapsed}
			var derr error
			st.partial, st.pend, derr = e.decideSetDeferred(res.Vector, ks[i], v.idx.OwnedNodes(), &st.stats)
			if derr == nil && len(st.pend) > 0 {
				// Park for the deduplicated batch-wide resolution below.
				st.parked = true
				return
			}
			sort.Slice(st.partial, func(a, b int) bool { return st.partial[a] < st.partial[b] })
			st.stats.Results = len(st.partial)
			st.stats.Elapsed = time.Since(start)
			deliver(i, externalAnswer(v.idx, st.partial), st.stats, derr)
		}()
	})
	wg.Wait()
	if err != nil {
		return err
	}
	// Batch-wide fallback resolution. The exact threshold pkmax(u) depends
	// on k, so dedupe groups parked queries by their k — the common
	// uniform-k batch resolves in a single group. Groups run in ascending-k
	// order for determinism.
	byK := map[int][]int{}
	for i := range state {
		if state[i].parked {
			byK[ks[i]] = append(byK[ks[i]], i)
		}
	}
	groupKs := make([]int, 0, len(byK))
	for k := range byK {
		groupKs = append(groupKs, k)
	}
	sort.Ints(groupKs)
	for _, k := range groupKs {
		group := byK[k]
		colOf := make(map[graph.NodeID]int)
		var unique []pendingFallback
		for _, i := range group {
			for _, pf := range state[i].pend {
				if _, ok := colOf[pf.u]; !ok {
					colOf[pf.u] = len(unique)
					unique = append(unique, pf)
				}
			}
		}
		resolveStart := time.Now()
		e := v.engines.Get().(*Engine)
		e.SetWorkers(workers)
		tieTol := e.tieTol
		// View engines never update the index, so no commits happen and the
		// onCommit hook is unreachable.
		th, rerr := e.exactThresholds(unique, k, workers, func(int) {})
		v.engines.Put(e)
		resolveElapsed := time.Since(resolveStart)
		for _, i := range group {
			st := &state[i]
			st.stats.FallbackElapsed += resolveElapsed
			st.stats.Elapsed = time.Since(start)
			if rerr != nil {
				deliver(i, nil, st.stats, rerr)
				continue
			}
			for _, pf := range st.pend {
				if pf.puq >= th[colOf[pf.u]]-tieTol {
					st.partial = append(st.partial, pf.u)
				}
			}
			sort.Slice(st.partial, func(a, b int) bool { return st.partial[a] < st.partial[b] })
			st.stats.Results = len(st.partial)
			st.stats.Elapsed = time.Since(start)
			deliver(i, externalAnswer(v.idx, st.partial), st.stats, nil)
		}
	}
	return nil
}

// DecideList answers the shard-local decision step for the listed nodes
// against a precomputed proximities-to-query vector, with the given
// intra-engine worker count (≤ 0 selects GOMAXPROCS) — the entry point the
// scatter-gather coordinator fans out to. Safe for concurrent use; see
// Engine.DecideList.
func (v *View) DecideList(pq []float64, k int, nodes []graph.NodeID, workers int) ([]graph.NodeID, QueryStats, error) {
	e := v.engines.Get().(*Engine)
	defer v.engines.Put(e)
	e.SetWorkers(workers)
	return e.DecideList(pq, k, nodes)
}

// Graph returns the graph view this View queries (a base CSR *graph.Graph
// or a *graph.Overlay carrying un-compacted edits).
func (v *View) Graph() graph.View { return v.g }

// Index returns the view's index.
func (v *View) Index() *lbindex.Index { return v.idx }

// N returns the node count of the underlying graph.
func (v *View) N() int { return v.g.N() }

// MaxK returns the largest query k the underlying index supports.
func (v *View) MaxK() int { return v.idx.K() }

// externalAnswer maps an internally-labeled answer back to the external
// identifier space and restores ascending order. With no relabeling the
// spaces coincide and the slice passes through untouched.
func externalAnswer(idx *lbindex.Index, answer []graph.NodeID) []graph.NodeID {
	if idx.Relabeling() == nil {
		return answer
	}
	for i, u := range answer {
		answer[i] = idx.ToExternal(u)
	}
	sort.Slice(answer, func(i, j int) bool { return answer[i] < answer[j] })
	return answer
}
