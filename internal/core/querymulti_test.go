package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/rwr"
)

// TestQueryMultiMatchesQuery: every answer delivered by the SpMM-batched
// path equals the scalar View.Query answer — same nodes, same PMPN
// iteration count — across batch widths, mixed k, duplicate queries and
// worker counts.
func TestQueryMultiMatchesQuery(t *testing.T) {
	g := viewTestGraph(t, 61, 120)
	idx := buildIndex(t, g, 8, 3)
	v, err := NewView(g, idx)
	if err != nil {
		t.Fatal(err)
	}

	pool := make([]graph.NodeID, 0, 16)
	ks := make([]int, 0, 16)
	for i := 0; i < 16; i++ {
		pool = append(pool, graph.NodeID((i*29)%g.N()))
		ks = append(ks, 1+i%8)
	}
	pool[5] = pool[2] // duplicate query in one batch
	ks[5] = ks[2]

	for _, width := range []int{1, 2, 4, 16} {
		qs, kset := pool[:width], ks[:width]
		for _, workers := range []int{1, 3} {
			type delivery struct {
				answer []graph.NodeID
				stats  QueryStats
				err    error
			}
			got := make([]delivery, width)
			var mu sync.Mutex
			seen := make([]int, width)
			err := v.QueryMulti(qs, kset, workers, func(i int, answer []graph.NodeID, stats QueryStats, err error) {
				mu.Lock()
				defer mu.Unlock()
				seen[i]++
				got[i] = delivery{answer, stats, err}
			})
			if err != nil {
				t.Fatalf("width=%d workers=%d: %v", width, workers, err)
			}
			for i := range qs {
				if seen[i] != 1 {
					t.Fatalf("width=%d workers=%d: query %d delivered %d times", width, workers, i, seen[i])
				}
				if got[i].err != nil {
					t.Fatalf("width=%d workers=%d q=%d: %v", width, workers, qs[i], got[i].err)
				}
				want, wstats, err := v.Query(qs[i], kset[i], workers)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got[i].answer, want) {
					t.Errorf("width=%d workers=%d q=%d k=%d: batched %v, scalar %v",
						width, workers, qs[i], kset[i], got[i].answer, want)
				}
				if got[i].stats.PMPNIters != wstats.PMPNIters {
					t.Errorf("width=%d workers=%d q=%d: batched PMPN took %d iters, scalar %d",
						width, workers, qs[i], got[i].stats.PMPNIters, wstats.PMPNIters)
				}
				if got[i].stats.Query != qs[i] || got[i].stats.K != kset[i] {
					t.Errorf("stats echo wrong query: %+v", got[i].stats)
				}
			}
		}
	}
}

// TestQueryMultiDeferredFallbacks: when candidates exhaust their refinement
// budget mid-batch, QueryMulti parks them and resolves the whole batch's
// stalls in deduplicated shared slabs (grouped by k). The answers must equal
// the scalar View path under the same budget and the brute-force oracle, the
// fallback path must actually fire, and the shared resolution wall clock
// must be charged to the parked queries' stats.
func TestQueryMultiDeferredFallbacks(t *testing.T) {
	p := rwr.DefaultParams()
	g := randomGraph(11, 150, false)
	idx := buildIndex(t, g, 10, 2)
	v, err := NewView(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	// Starve the refinement budget on every pooled engine so bound decisions
	// stall and the deferred-resolution path is the one under test.
	v.engines = sync.Pool{New: func() any {
		e, _ := NewEngine(g, idx, false)
		e.SetMaxRefineSteps(1)
		return e
	}}

	rng := rand.New(rand.NewSource(19))
	qs := make([]graph.NodeID, 6)
	ks := make([]int, 6)
	for i := range qs {
		qs[i] = graph.NodeID(rng.Intn(g.N()))
		ks[i] = 5 + i%2*5 // mixed k ∈ {5, 10}: two resolution groups
	}

	for _, workers := range []int{1, 4} {
		answers := make([][]graph.NodeID, len(qs))
		var mu sync.Mutex
		fallbacks, charged := 0, 0
		err := v.QueryMulti(qs, ks, workers, func(i int, answer []graph.NodeID, stats QueryStats, qerr error) {
			mu.Lock()
			defer mu.Unlock()
			if qerr != nil {
				t.Errorf("workers=%d q=%d: %v", workers, qs[i], qerr)
				return
			}
			answers[i] = answer
			fallbacks += stats.ExactFallbacks
			if stats.ExactFallbacks > 0 && stats.FallbackElapsed > 0 {
				charged++
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if fallbacks == 0 {
			t.Fatalf("workers=%d: no fallbacks fired; the deferred path went untested", workers)
		}
		if charged == 0 {
			t.Errorf("workers=%d: no parked query was charged FallbackElapsed", workers)
		}
		for i := range qs {
			want, err := BruteForce(g, qs[i], ks[i], p, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(answers[i], want) {
				t.Errorf("workers=%d q=%d k=%d: batched %v, brute force %v",
					workers, qs[i], ks[i], answers[i], want)
			}
			scalar, _, err := v.Query(qs[i], ks[i], workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(answers[i], scalar) {
				t.Errorf("workers=%d q=%d k=%d: batched %v, scalar view %v",
					workers, qs[i], ks[i], answers[i], scalar)
			}
		}
	}
}

// TestQueryMultiValidation: malformed batches error before any delivery.
func TestQueryMultiValidation(t *testing.T) {
	g := toyGraph(t)
	idx := buildIndex(t, g, 3, 1)
	v, err := NewView(g, idx)
	if err != nil {
		t.Fatal(err)
	}
	deliver := func(i int, answer []graph.NodeID, stats QueryStats, err error) {
		t.Errorf("deliver called (i=%d) for an invalid batch", i)
	}
	if err := v.QueryMulti([]graph.NodeID{0, 1}, []int{2}, 1, deliver); err == nil {
		t.Error("want length-mismatch error")
	}
	if err := v.QueryMulti([]graph.NodeID{0, 99}, []int{2, 2}, 1, deliver); err == nil {
		t.Error("want out-of-range error")
	}
	if err := v.QueryMulti([]graph.NodeID{0, 1}, []int{2, 0}, 1, deliver); err == nil {
		t.Error("want k error")
	}
	if err := v.QueryMulti(nil, nil, 1, deliver); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}
