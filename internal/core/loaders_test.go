package core

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/lbindex"
)

// TestQueryIdenticalAcrossLoaders is the acceptance check for index format
// v2: the same index file must answer every query bit-identically whether
// it was loaded from a v1 image, a v2 image onto the heap, or a v2 image
// zero-copy via mmap — in both no-update and update (refining) engines.
func TestQueryIdenticalAcrossLoaders(t *testing.T) {
	g := randomGraph(23, 300, false)
	idx := buildIndex(t, g, 8, 3)

	dir := t.TempDir()
	v1Path, v2Path := filepath.Join(dir, "i.v1"), filepath.Join(dir, "i.v2")
	for _, w := range []struct {
		path string
		save func(f *os.File) error
	}{
		{v1Path, func(f *os.File) error { return idx.SaveV1(f) }},
		{v2Path, func(f *os.File) error { return idx.Save(f) }},
	} {
		f, err := os.Create(w.path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.save(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	load := func(path string, mmap bool) *lbindex.Index {
		li, err := lbindex.LoadFile(path, lbindex.LoadOptions{Mmap: mmap})
		if err != nil {
			t.Fatalf("loading %s (mmap=%v): %v", path, mmap, err)
		}
		return li
	}
	indexes := map[string]*lbindex.Index{
		"v1-heap": load(v1Path, false),
		"v2-heap": load(v2Path, false),
		"v2-mmap": load(v2Path, true),
	}

	for _, update := range []bool{false, true} {
		engines := make(map[string]*Engine, len(indexes))
		for name, li := range indexes {
			// Update mode refines shared state: give each engine its own
			// clone so the three runs stay independent and comparable.
			backing := li
			if update {
				backing = li.Clone()
			}
			eng, err := NewEngine(g, backing, update)
			if err != nil {
				t.Fatal(err)
			}
			engines[name] = eng
		}
		for q := 0; q < g.N(); q += 7 {
			for _, k := range []int{1, 3, 8} {
				want, _, err := engines["v1-heap"].Query(graph.NodeID(q), k)
				if err != nil {
					t.Fatal(err)
				}
				for _, name := range []string{"v2-heap", "v2-mmap"} {
					got, _, err := engines[name].Query(graph.NodeID(q), k)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("update=%v q=%d k=%d: %s answered %v, v1-heap answered %v",
							update, q, k, name, got, want)
					}
				}
			}
		}
	}
}
