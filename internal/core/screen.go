package core

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/lbindex"
)

// defaultTieTol is the floating-point tolerance on the membership boundary
// shared by the engine's decision rule (see Engine.tieTol) and the
// incremental Screen below — both must compare with the same slack or an
// early screen decision could disagree with the final engine decision.
const defaultTieTol = 1e-9

// Screen incrementally classifies one shard's candidate set against
// partial PMPN bounds, round by round. A scatter-gather coordinator
// (internal/shard) creates one Screen per shard per query, then after each
// block of PMPN iterations calls Advance with the current iterate x and its
// elementwise error bound τ (rwr.ToStepper.Tail): for every still-undecided
// node u,
//
//   - x[u] + τ < p̂_u(k) − tol proves p_u(q) < p̂_u(k) − tol: the engine's
//     first screen would prune u, so it is pruned now, permanently;
//   - x[u] − τ ≥ UB_u − tol (the Algorithm-3 staircase upper bound over
//     u's residue + rounding slack; plain p̂_u(k) when the state is fully
//     drained) proves the engine's hit check would fire: u is confirmed
//     into the answer now, permanently.
//
// Both tests are monotone-safe — they imply the corresponding exact-pq
// decision — so a query answered partly by early rounds and partly by a
// final exact-pq DecideList is bit-identical to the single-engine answer.
//
// Per-node bound inputs (p̂_u(k), residue+slack, the staircase bound) are
// fetched lazily and memoized: the cheap k-th lower bound prunes the bulk
// of the graph long before the more expensive upper bound is ever needed.
//
// A Screen is single-use, single-goroutine; different shards' Screens
// advance concurrently without coordination (they touch disjoint rows).
type Screen struct {
	idx *lbindex.Index
	k   int
	tol float64

	// Alive set, compacted in place as nodes decide. lb/rn/ub are aligned
	// caches; rn and ub are NaN until first computed.
	ids []graph.NodeID
	lb  []float64
	rn  []float64
	ub  []float64

	hits      []graph.NodeID
	pruned    int
	confirmed int
	maxLB     float64
}

// RoundReport summarizes one Advance: what the round decided and the
// tightest still-open prune gap, which the coordinator folds across shards
// into the global bound that sizes the next round.
type RoundReport struct {
	// NewHits are the nodes this round confirmed into the answer,
	// ascending within the round.
	NewHits []graph.NodeID
	// Pruned counts nodes this round proved out of the answer.
	Pruned int
	// Undecided is the remaining alive-set size after the round.
	Undecided int
	// MinPruneGap is the smallest p̂_u(k) − tol − x[u] over undecided
	// nodes currently sitting BELOW their lower bound (+Inf if none): once
	// the coordinator's τ drops under the global minimum of this quantity,
	// every such node prunes. It is the "current global k-th-score lower
	// bound" datum of the cross-shard exchange.
	MinPruneGap float64
}

// NewScreen prepares a screen over the nodes this view's index
// materializes (its shard's owned set, or every node for a full index).
func (v *View) NewScreen(k int) (*Screen, error) {
	return newScreen(v.g.N(), v.idx, k)
}

// newScreen is the constructor shared by View.NewScreen and the anytime
// engine paths that hold a raw (graph, index) pair rather than a View.
func newScreen(n int, idx *lbindex.Index, k int) (*Screen, error) {
	if k <= 0 || k > idx.K() {
		return nil, fmt.Errorf("core: k=%d outside [1,%d] supported by the index", k, idx.K())
	}
	owned := idx.OwnedNodes()
	var ids []graph.NodeID
	if owned != nil {
		ids = append([]graph.NodeID(nil), owned...)
	} else {
		ids = make([]graph.NodeID, n)
		for u := range ids {
			ids[u] = graph.NodeID(u)
		}
	}
	s := &Screen{
		idx: idx,
		k:   k,
		tol: defaultTieTol,
		ids: ids,
		lb:  make([]float64, len(ids)),
		rn:  make([]float64, len(ids)),
		ub:  make([]float64, len(ids)),
	}
	for i, u := range ids {
		s.lb[i] = idx.KthLowerBound(u, k)
		s.rn[i] = math.NaN()
		s.ub[i] = math.NaN()
		if s.lb[i] > s.maxLB {
			s.maxLB = s.lb[i]
		}
	}
	return s, nil
}

// MaxLowerBound returns the largest p̂_u(k) over this screen's node set.
// While the coordinator's τ exceeds the global maximum of this bound, no
// node anywhere can be pruned, so the first exchange round is scheduled
// only once τ falls under it.
func (s *Screen) MaxLowerBound() float64 { return s.maxLB }

// Advance screens the alive set against iterate x with elementwise error
// bound tau. x must cover the full node space; tau must be a valid bound
// for THIS x. With tau = 0, Advance decides exactly like the engine's
// pre-refinement screen (survivors are the candidates refinement would
// work on).
func (s *Screen) Advance(x []float64, tau float64) RoundReport {
	rep := RoundReport{MinPruneGap: math.Inf(1)}
	kept := 0
	for i := 0; i < len(s.ids); i++ {
		u := s.ids[i]
		lb := s.lb[i]
		xv := x[u]
		if xv+tau < lb-s.tol {
			s.pruned++
			rep.Pruned++
			continue
		}
		plo := xv - tau
		if plo < lb-s.tol {
			// Not provably above the lower bound yet: it can neither be
			// confirmed (UB ≥ lb) nor pruned this round. Record how far τ
			// must still fall for the prune test to fire.
			if gap := lb - s.tol - xv; gap > 0 && gap < rep.MinPruneGap {
				rep.MinPruneGap = gap
			}
			s.keep(i, &kept)
			continue
		}
		rn := s.rn[i]
		if math.IsNaN(rn) {
			rn = s.idx.ResidueNorm(u) + s.idx.RoundingSlack(u)
			s.rn[i] = rn
		}
		if rn == 0 {
			// Exact row: p_u(q) ≥ plo ≥ lb − tol decides membership.
			s.confirm(u, &rep)
			continue
		}
		ub := s.ub[i]
		if math.IsNaN(ub) {
			ub = UpperBound(s.idx.PHatRow(u), s.k, rn)
			s.ub[i] = ub
		}
		if plo >= ub-s.tol {
			s.confirm(u, &rep)
			continue
		}
		s.keep(i, &kept)
	}
	s.ids = s.ids[:kept]
	s.lb = s.lb[:kept]
	s.rn = s.rn[:kept]
	s.ub = s.ub[:kept]
	rep.Undecided = kept
	return rep
}

func (s *Screen) keep(i int, kept *int) {
	s.ids[*kept] = s.ids[i]
	s.lb[*kept] = s.lb[i]
	s.rn[*kept] = s.rn[i]
	s.ub[*kept] = s.ub[i]
	*kept++
}

func (s *Screen) confirm(u graph.NodeID, rep *RoundReport) {
	s.hits = append(s.hits, u)
	rep.NewHits = append(rep.NewHits, u)
	s.confirmed++
}

// Survivors returns the still-undecided nodes, ascending. The slice
// aliases internal state and is valid until the next Advance.
func (s *Screen) Survivors() []graph.NodeID { return s.ids }

// survivorBounds returns the decision bounds (p̂_u(k), UB_u) for the i-th
// survivor, memoizing the residue norm and staircase bound exactly like
// Advance does. For a fully-drained row UB collapses to the lower bound.
// The anytime tier's Monte Carlo stage compares its probabilistic
// confidence interval for p_u(q) against these.
func (s *Screen) survivorBounds(i int) (lb, ub float64) {
	lb = s.lb[i]
	rn := s.rn[i]
	if math.IsNaN(rn) {
		u := s.ids[i]
		rn = s.idx.ResidueNorm(u) + s.idx.RoundingSlack(u)
		s.rn[i] = rn
	}
	if rn == 0 {
		return lb, lb
	}
	ub = s.ub[i]
	if math.IsNaN(ub) {
		ub = UpperBound(s.idx.PHatRow(s.ids[i]), s.k, rn)
		s.ub[i] = ub
	}
	return lb, ub
}

// Hits returns every node confirmed so far, in confirmation order.
func (s *Screen) Hits() []graph.NodeID { return s.hits }

// Pruned returns the total number of nodes proved out of the answer by
// early (τ > 0) or final screens.
func (s *Screen) Pruned() int { return s.pruned }

// Confirmed returns the total number of nodes confirmed into the answer.
func (s *Screen) Confirmed() int { return s.confirmed }
