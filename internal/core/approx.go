package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/rwr"
)

// QueryApproximate implements the approximation the paper suggests in §5.3
// ("Pruning Power of Bounds"): it returns only the candidates that the
// index bounds confirm WITHOUT any refinement — the "hits" of Figure 6 —
// and skips everything undecided. On web-like graphs the hit count tracks
// the exact result count closely, so the recall loss is small while the
// entire candidate-refinement phase is skipped; answers are always a
// subset of the exact answer except for boundary-noise inclusions by the
// first upper-bound check.
//
// The index is never modified, regardless of the engine's update mode.
func (e *Engine) QueryApproximate(q graph.NodeID, k int) ([]graph.NodeID, QueryStats, error) {
	stats := QueryStats{Query: q, K: k}
	if int(q) < 0 || int(q) >= e.g.N() {
		return nil, stats, fmt.Errorf("core: query node %d out of range [0,%d)", q, e.g.N())
	}
	if k <= 0 || k > e.idx.K() {
		return nil, stats, fmt.Errorf("core: k=%d outside [1,%d] supported by the index", k, e.idx.K())
	}
	start := time.Now()

	pmpn, err := rwr.ProximityToParallel(e.g, q, e.idx.Options().RWR, e.workers)
	if err != nil {
		return nil, stats, err
	}
	stats.PMPNIters = pmpn.Iterations
	stats.PMPNElapsed = time.Since(start)

	var results []graph.NodeID
	for u := range e.eachIndexed() {
		puq := pmpn.Vector[u]
		lb := e.idx.KthLowerBound(u, k)
		if puq < lb-e.tieTol {
			continue
		}
		stats.Candidates++
		rnorm := e.idx.ResidueNorm(u) + e.idx.RoundingSlack(u)
		if rnorm == 0 {
			stats.Hits++
			results = append(results, u)
			continue
		}
		if puq >= UpperBound(e.idx.PHatRow(u), k, rnorm)-e.tieTol {
			stats.Hits++
			results = append(results, u)
		}
	}
	stats.Results = len(results)
	stats.Elapsed = time.Since(start)
	sort.Slice(results, func(i, j int) bool { return results[i] < results[j] })
	return results, stats, nil
}
