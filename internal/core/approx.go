package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
)

// QueryApproximate implements the approximation the paper suggests in §5.3
// ("Pruning Power of Bounds"): it returns only the candidates that the
// index bounds confirm WITHOUT any refinement — the "hits" of Figure 6 —
// and skips everything undecided. On web-like graphs the hit count tracks
// the exact result count closely, so the recall loss is small while the
// entire candidate-refinement phase is skipped; answers are always a
// subset of the exact answer except for boundary-noise inclusions by the
// first upper-bound check.
//
// Deprecated: QueryApproximate is the anytime tier's least informative
// corner. It is now a thin wrapper over the same round loop View.QueryAnytime
// drives — run to convergence with ε = 0 and no Monte Carlo stage, keep the
// confirmed set, discard the undecided one — preserved for its historical
// hits-only contract (and its freedom from the View/engine split: it works
// on a bare Engine in the internal label space). New callers want
// View.QueryAnytime, which reports the discarded candidates as an explicit
// maybe set, stops early under an ε budget, and can escalate to exact.
//
// The index is never modified, regardless of the engine's update mode.
func (e *Engine) QueryApproximate(q graph.NodeID, k int) ([]graph.NodeID, QueryStats, error) {
	stats := QueryStats{Query: q, K: k}
	if int(q) < 0 || int(q) >= e.g.N() {
		return nil, stats, fmt.Errorf("core: query node %d out of range [0,%d)", q, e.g.N())
	}
	if k <= 0 || k > e.idx.K() {
		return nil, stats, fmt.Errorf("core: k=%d outside [1,%d] supported by the index", k, e.idx.K())
	}
	start := time.Now()

	o, err := AnytimeOptions{}.resolve() // ε = 0, δ = 0: deterministic, to convergence
	if err != nil {
		return nil, stats, err
	}
	var astats AnytimeStats
	st, err := runAnytime(e.g, e.idx, q, k, o, e.workers, &astats)
	if err != nil {
		return nil, stats, err
	}
	stats.PMPNIters = astats.PMPNIters
	stats.PMPNElapsed = astats.PMPNElapsed
	// Candidates, as in the one-shot original: nodes the k-th lower bound
	// never pruned — the confirmed hits plus the undecided leftovers.
	stats.Candidates = st.screen.Confirmed() + len(st.screen.Survivors())
	results := append([]graph.NodeID(nil), st.screen.Hits()...)
	sort.Slice(results, func(i, j int) bool { return results[i] < results[j] })
	stats.Hits = len(results)
	stats.Results = len(results)
	stats.Elapsed = time.Since(start)
	return results, stats, nil
}
