package graph

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// paperToyEdges is the 6-node example graph of Figure 1. Edges are inferred
// so that the stated proximity matrix is reproduced (verified in the rwr
// package tests); here we only need a small connected digraph.
func paperToyEdges() [][2]NodeID {
	return [][2]NodeID{
		{0, 1}, {1, 0}, {1, 2}, {2, 1}, {3, 0}, {3, 1}, {3, 4},
		{4, 0}, {4, 1}, {5, 1}, {5, 5}, {0, 3}, {2, 2}, {4, 4},
	}
}

func TestBuildBasic(t *testing.T) {
	g, err := FromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {1, 2}, {2, 0}, {3, 0}}, DanglingSelfLoop)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 5 {
		t.Fatalf("M = %d, want 5", g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := g.OutNeighbors(0); !reflect.DeepEqual(got, []NodeID{1, 2}) {
		t.Errorf("OutNeighbors(0) = %v, want [1 2]", got)
	}
	if got := g.InNeighbors(0); !reflect.DeepEqual(got, []NodeID{2, 3}) {
		t.Errorf("InNeighbors(0) = %v, want [2 3]", got)
	}
	if g.OutDegree(0) != 2 || g.InDegree(2) != 2 {
		t.Errorf("degree mismatch: out(0)=%d in(2)=%d", g.OutDegree(0), g.InDegree(2))
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Errorf("HasEdge wrong: 0->1 %t, 1->0 %t", g.HasEdge(0, 1), g.HasEdge(1, 0))
	}
	if w := g.TotalOutWeight(0); w != 2 {
		t.Errorf("TotalOutWeight(0) = %g, want 2", w)
	}
}

func TestDanglingSelfLoop(t *testing.T) {
	g, err := FromEdges(3, [][2]NodeID{{0, 1}, {0, 2}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	// Nodes 1 and 2 were dangling; each must now self-loop.
	if !g.HasEdge(1, 1) || !g.HasEdge(2, 2) {
		t.Errorf("missing self-loops on dangling nodes")
	}
	if g.N() != 3 || g.M() != 4 {
		t.Errorf("n=%d m=%d, want 3/4", g.N(), g.M())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDanglingSharedSink(t *testing.T) {
	g, err := FromEdges(3, [][2]NodeID{{0, 1}, {0, 2}}, DanglingSharedSink)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4 (sink added)", g.N())
	}
	sink := NodeID(3)
	if !g.HasEdge(1, sink) || !g.HasEdge(2, sink) || !g.HasEdge(sink, sink) {
		t.Errorf("sink wiring wrong")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDanglingSharedSinkNoDangling(t *testing.T) {
	g, err := FromEdges(2, [][2]NodeID{{0, 1}, {1, 0}}, DanglingSharedSink)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 {
		t.Fatalf("no dangling nodes but N grew to %d", g.N())
	}
}

func TestDanglingPrune(t *testing.T) {
	// 0->1->2, 2 dangling. Pruning 2 makes 1 dangling, pruning 1 makes 0
	// dangling: the whole chain disappears. 3<->4 survives.
	b := NewBuilder(5)
	for _, e := range [][2]NodeID{{0, 1}, {1, 2}, {3, 4}, {4, 3}} {
		b.AddEdge(e[0], e[1])
	}
	g, remap, err := b.Build(DanglingPrune)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 2 {
		t.Fatalf("n=%d m=%d, want 2/2", g.N(), g.M())
	}
	want := []NodeID{-1, -1, -1, 0, 1}
	if !reflect.DeepEqual(remap, want) {
		t.Errorf("remap = %v, want %v", remap, want)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDanglingReject(t *testing.T) {
	if _, err := FromEdges(2, [][2]NodeID{{0, 1}}, DanglingReject); err == nil {
		t.Fatal("want error for dangling node under DanglingReject")
	}
	if _, err := FromEdges(2, [][2]NodeID{{0, 1}, {1, 0}}, DanglingReject); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestDuplicateEdgesCollapse(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g, _, err := b.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (duplicates collapsed)", g.M())
	}
	if g.OutDegree(0) != 1 {
		t.Errorf("OutDegree(0) = %d, want 1", g.OutDegree(0))
	}
}

func TestWeightedDuplicatesSum(t *testing.T) {
	b := NewBuilder(2)
	b.AddWeightedEdge(0, 1, 2)
	b.AddWeightedEdge(0, 1, 3)
	b.AddWeightedEdge(1, 0, 1)
	g, _, err := b.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	if w := g.EdgeWeight(0, 1); w != 5 {
		t.Errorf("EdgeWeight(0,1) = %g, want 5", w)
	}
	if w := g.TotalOutWeight(0); w != 5 {
		t.Errorf("TotalOutWeight(0) = %g, want 5", w)
	}
}

func TestWeightedPromotionBackfillsOnes(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)              // recorded while unweighted
	b.AddWeightedEdge(1, 2, 2.5) // promotes builder to weighted
	b.AddEdge(2, 0)              // weight 1 again
	g, _, err := b.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if w := g.EdgeWeight(0, 1); w != 1 {
		t.Errorf("backfilled weight = %g, want 1", w)
	}
	if w := g.EdgeWeight(1, 2); w != 2.5 {
		t.Errorf("explicit weight = %g, want 2.5", w)
	}
}

func TestNonPositiveWeightRejected(t *testing.T) {
	b := NewBuilder(2)
	b.AddWeightedEdge(0, 1, 0)
	if _, _, err := b.Build(DanglingSelfLoop); err == nil {
		t.Fatal("want error for zero weight")
	}
	b2 := NewBuilder(2)
	b2.AddWeightedEdge(0, 1, -1)
	if _, _, err := b2.Build(DanglingSelfLoop); err == nil {
		t.Fatal("want error for negative weight")
	}
}

func TestEmptyGraph(t *testing.T) {
	g, _, err := NewBuilder(0).Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("n=%d m=%d, want 0/0", g.N(), g.M())
	}
}

func TestImplicitNodeGrowth(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(7, 3)
	b.AddEdge(3, 7)
	g, _, err := b.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 8 {
		t.Fatalf("N = %d, want 8", g.N())
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestInOutMirrorConsistency(t *testing.T) {
	// Property: for every edge u->v found via out-lists, v's in-list must
	// contain u, with the same weight, on random graphs.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		b := NewBuilder(n)
		m := 1 + rng.Intn(4*n)
		for i := 0; i < m; i++ {
			u := NodeID(rng.Intn(n))
			v := NodeID(rng.Intn(n))
			b.AddWeightedEdge(u, v, 1+rng.Float64()*5)
		}
		g, _, err := b.Build(DanglingSelfLoop)
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		for u := NodeID(0); int(u) < g.N(); u++ {
			for i, v := range g.OutNeighbors(u) {
				w := g.OutWeightsOf(u)[i]
				found := false
				for j, x := range g.InNeighbors(v) {
					if x == u && g.InWeightsOf(v)[j] == w {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValidatePolicyProperty(t *testing.T) {
	// Property: every dangling policy except Reject yields a graph that
	// passes Validate (i.e. no dangling nodes remain, CSR consistent).
	policies := []DanglingPolicy{DanglingSelfLoop, DanglingSharedSink, DanglingPrune}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		edges := make([][2]NodeID, 0)
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			edges = append(edges, [2]NodeID{NodeID(rng.Intn(n)), NodeID(rng.Intn(n))})
		}
		for _, pol := range policies {
			b := NewBuilder(n)
			for _, e := range edges {
				b.AddEdge(e[0], e[1])
			}
			g, _, err := b.Build(pol)
			if err != nil {
				return false
			}
			if g.N() > 0 && g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g, err := FromEdges(6, paperToyEdges(), DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	b, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := b.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for u := NodeID(0); int(u) < g.N(); u++ {
		if !reflect.DeepEqual(g.OutNeighbors(u), g2.OutNeighbors(u)) {
			t.Fatalf("out-neighbors of %d differ", u)
		}
	}
}

func TestWeightedEdgeListRoundTrip(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 2.5)
	b.AddWeightedEdge(1, 2, 0.25)
	b.AddWeightedEdge(2, 0, 7)
	g, _, err := b.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	b2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := b2.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if w := g2.EdgeWeight(0, 1); w != 2.5 {
		t.Errorf("weight lost in round trip: %g", w)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0",          // too few fields
		"a 1",        // bad source
		"0 b",        // bad destination
		"0 1 weight", // bad weight
		"-1 2",       // negative id
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("ReadEdgeList(%q): want error", c)
		}
	}
}

func TestReadEdgeListSkipsComments(t *testing.T) {
	in := "# header\n% also a comment\n\n0 1\n1 0\n"
	b, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if b.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", b.NumEdges())
	}
}

func TestStats(t *testing.T) {
	g, err := FromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 0}, {2, 0}, {3, 0}, {3, 3}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 7 {
		t.Fatalf("stats shape wrong: %+v", s)
	}
	if s.MaxOutDegree != 3 {
		t.Errorf("MaxOutDegree = %d, want 3", s.MaxOutDegree)
	}
	if s.MaxInDegree != 3 {
		t.Errorf("MaxInDegree = %d, want 3", s.MaxInDegree)
	}
	if s.SelfLoops != 1 {
		t.Errorf("SelfLoops = %d, want 1", s.SelfLoops)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestTopByDegree(t *testing.T) {
	// Node 0 has the largest in-degree (3), node 0 also has the largest
	// out-degree (3); node 3 has out-degree 2.
	g, err := FromEdges(4, [][2]NodeID{{0, 1}, {0, 2}, {0, 3}, {1, 0}, {2, 0}, {3, 0}, {3, 1}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	if got := TopByInDegree(g, 1); !reflect.DeepEqual(got, []NodeID{0}) {
		t.Errorf("TopByInDegree = %v, want [0]", got)
	}
	if got := TopByOutDegree(g, 2); !reflect.DeepEqual(got, []NodeID{0, 3}) {
		t.Errorf("TopByOutDegree = %v, want [0 3]", got)
	}
	if got := TopByInDegree(g, 100); len(got) != 4 {
		t.Errorf("TopByInDegree clamp: got %d ids, want 4", len(got))
	}
	if got := TopByInDegree(g, 0); got != nil {
		t.Errorf("TopByInDegree(0) = %v, want nil", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g, err := FromEdges(3, [][2]NodeID{{0, 1}, {1, 0}, {2, 0}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	h := DegreeHistogram(g, true) // in-degrees: node0=2, node1=1, node2=0
	if h[2] != 1 || h[1] != 1 || h[0] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestGini(t *testing.T) {
	if g := gini([]int{1, 1, 1, 1}); g > 1e-12 {
		t.Errorf("gini uniform = %g, want 0", g)
	}
	g := gini([]int{0, 0, 0, 10})
	if g < 0.7 {
		t.Errorf("gini concentrated = %g, want high", g)
	}
	if g := gini(nil); g != 0 {
		t.Errorf("gini empty = %g", g)
	}
}

func TestString(t *testing.T) {
	for _, p := range []DanglingPolicy{DanglingSelfLoop, DanglingSharedSink, DanglingPrune, DanglingReject, DanglingPolicy(99)} {
		if p.String() == "" {
			t.Errorf("empty String for %d", int(p))
		}
	}
}
