package graph

import (
	"fmt"
	"sort"
)

// Permutation is a node relabeling: perm[external] = internal. The external
// identifier space is what callers (HTTP API, CLI, edge-list files) speak;
// the internal space is the storage order of the CSR arrays. A cache-aware
// relabeling (degree-descending or RCM) is applied at index build time and
// carried alongside the index, so external identifiers never change.
type Permutation []NodeID

// Validate checks that p is a bijection on [0, n).
func (p Permutation) Validate(n int) error {
	if len(p) != n {
		return fmt.Errorf("graph: permutation covers %d nodes, graph has %d", len(p), n)
	}
	seen := make([]bool, n)
	for ext, in := range p {
		if in < 0 || int(in) >= n {
			return fmt.Errorf("graph: permutation maps %d to out-of-range %d", ext, in)
		}
		if seen[in] {
			return fmt.Errorf("graph: permutation maps two nodes to %d", in)
		}
		seen[in] = true
	}
	return nil
}

// Inverse returns the inverse permutation: inv[internal] = external.
func (p Permutation) Inverse() Permutation {
	inv := make(Permutation, len(p))
	for ext, in := range p {
		inv[in] = NodeID(ext)
	}
	return inv
}

// IsIdentity reports whether p maps every node to itself (or is empty).
func (p Permutation) IsIdentity() bool {
	for ext, in := range p {
		if NodeID(ext) != in {
			return false
		}
	}
	return true
}

// IdentityPermutation returns the identity relabeling on n nodes.
func IdentityPermutation(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = NodeID(i)
	}
	return p
}

// DegreeOrderPermutation assigns internal identifiers in descending total
// (in+out) degree, ties broken by ascending external id. High-degree hub
// rows — touched by almost every PMPN sweep — end up packed at the front of
// the iterate vector and the CSR arrays, so the hot working set spans the
// fewest cache lines.
func DegreeOrderPermutation(g *Graph) Permutation {
	n := g.N()
	order := make([]NodeID, n)
	for i := range order {
		order[i] = NodeID(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ua, ub := order[a], order[b]
		da := g.OutDegree(ua) + g.InDegree(ua)
		db := g.OutDegree(ub) + g.InDegree(ub)
		if da != db {
			return da > db
		}
		return ua < ub
	})
	perm := make(Permutation, n)
	for rank, u := range order {
		perm[u] = NodeID(rank)
	}
	return perm
}

// RCMPermutation computes a reverse Cuthill–McKee ordering of the
// symmetrized adjacency (an edge in either direction connects two nodes):
// breadth-first from a minimum-degree node per component, visiting each
// frontier's unvisited neighbors in ascending (degree, id) order, with the
// final order reversed. RCM clusters each node near its neighbors, shrinking
// the bandwidth of the transition matrix so gather-style matvec sweeps walk
// nearly-sequential memory.
func RCMPermutation(g *Graph) Permutation {
	n := g.N()
	deg := make([]int32, n)
	for u := 0; u < n; u++ {
		deg[u] = int32(g.OutDegree(NodeID(u)) + g.InDegree(NodeID(u)))
	}

	// Seed order: all nodes by ascending (degree, id); BFS components start
	// from the first unvisited entry, which is a minimum-degree node of its
	// component's remainder.
	seeds := make([]NodeID, n)
	for i := range seeds {
		seeds[i] = NodeID(i)
	}
	sort.Slice(seeds, func(a, b int) bool {
		ua, ub := seeds[a], seeds[b]
		if deg[ua] != deg[ub] {
			return deg[ua] < deg[ub]
		}
		return ua < ub
	})

	visited := make([]bool, n)
	order := make([]NodeID, 0, n)
	queue := make([]NodeID, 0, n)
	frontier := make([]NodeID, 0, 64)
	for _, seed := range seeds {
		if visited[seed] {
			continue
		}
		visited[seed] = true
		queue = append(queue[:0], seed)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			order = append(order, u)
			frontier = frontier[:0]
			frontier = appendUnvisited(frontier, g.OutNeighbors(u), visited)
			frontier = appendUnvisited(frontier, g.InNeighbors(u), visited)
			sort.Slice(frontier, func(a, b int) bool {
				va, vb := frontier[a], frontier[b]
				if deg[va] != deg[vb] {
					return deg[va] < deg[vb]
				}
				return va < vb
			})
			queue = append(queue, frontier...)
		}
	}

	perm := make(Permutation, n)
	for i, u := range order {
		// Reverse the Cuthill–McKee order.
		perm[u] = NodeID(n - 1 - i)
	}
	return perm
}

// appendUnvisited appends the not-yet-visited members of nbrs to dst,
// marking them visited (so a node reachable via both adjacency directions
// is enqueued once).
func appendUnvisited(dst, nbrs []NodeID, visited []bool) []NodeID {
	for _, v := range nbrs {
		if !visited[v] {
			visited[v] = true
			dst = append(dst, v)
		}
	}
	return dst
}

// Extend pads p with identity labels up to n nodes: the relabeling a grown
// graph pairs with an index whose permutation predates the new nodes.
// Identifiers past the stored permutation keep identity labels — exactly the
// convention the lbindex translation boundary applies — so the padded
// permutation is still a bijection on [0, n). Errors if p already covers
// more nodes than n (the graph/index pair is inconsistent, not grown).
func (p Permutation) Extend(n int) (Permutation, error) {
	if len(p) > n {
		return nil, fmt.Errorf("graph: permutation covers %d nodes, graph has only %d", len(p), n)
	}
	if len(p) == n {
		return p, nil
	}
	out := make(Permutation, n)
	copy(out, p)
	for i := len(p); i < n; i++ {
		out[i] = NodeID(i)
	}
	return out, nil
}

// ApplyPermutation returns a new Graph storing node u at position perm[u]:
// the relabeled twin of g, with identical topology and weights. Used once
// at index build (or load) time; query-path translation happens at the API
// boundary, not here.
func ApplyPermutation(g *Graph, perm Permutation) (*Graph, error) {
	if err := perm.Validate(g.N()); err != nil {
		return nil, err
	}
	b := NewBuilder(g.N())
	for u := NodeID(0); int(u) < g.N(); u++ {
		nbrs := g.OutNeighbors(u)
		ws := g.OutWeightsOf(u)
		for i, v := range nbrs {
			w := 1.0
			if ws != nil {
				w = ws[i]
			}
			b.AddWeightedEdge(perm[u], perm[v], w)
		}
	}
	// g has no dangling nodes (its own policy ran at build), so the
	// relabeled twin has none either.
	pg, _, err := b.Build(DanglingReject)
	return pg, err
}
