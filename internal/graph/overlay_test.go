package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// viewEquivalent verifies two views expose identical adjacency semantics:
// same node/edge counts, per-node neighbor lists, weights, normalizers and
// membership answers. Weight representation may differ (nil weight slices
// mean all-1), so comparison is per-edge.
func viewEquivalent(a, b View) error {
	if a.N() != b.N() {
		return fmt.Errorf("N: %d vs %d", a.N(), b.N())
	}
	if a.M() != b.M() {
		return fmt.Errorf("M: %d vs %d", a.M(), b.M())
	}
	for u := NodeID(0); int(u) < a.N(); u++ {
		ao, bo := a.OutNeighbors(u), b.OutNeighbors(u)
		if len(ao) != len(bo) {
			return fmt.Errorf("node %d: out-degree %d vs %d", u, len(ao), len(bo))
		}
		aw, bw := a.OutWeightsOf(u), b.OutWeightsOf(u)
		for i := range ao {
			if ao[i] != bo[i] {
				return fmt.Errorf("node %d: out-neighbor[%d] %d vs %d", u, i, ao[i], bo[i])
			}
			wa, wb := 1.0, 1.0
			if aw != nil {
				wa = aw[i]
			}
			if bw != nil {
				wb = bw[i]
			}
			if wa != wb {
				return fmt.Errorf("edge %d→%d: weight %g vs %g", u, ao[i], wa, wb)
			}
		}
		if a.TotalOutWeight(u) != b.TotalOutWeight(u) {
			return fmt.Errorf("node %d: total out-weight %g vs %g", u, a.TotalOutWeight(u), b.TotalOutWeight(u))
		}
		ai, bi := a.InNeighbors(u), b.InNeighbors(u)
		if len(ai) != len(bi) {
			return fmt.Errorf("node %d: in-degree %d vs %d", u, len(ai), len(bi))
		}
		aiw, biw := a.InWeightsOf(u), b.InWeightsOf(u)
		for i := range ai {
			if ai[i] != bi[i] {
				return fmt.Errorf("node %d: in-neighbor[%d] %d vs %d", u, i, ai[i], bi[i])
			}
			wa, wb := 1.0, 1.0
			if aiw != nil {
				wa = aiw[i]
			}
			if biw != nil {
				wb = biw[i]
			}
			if wa != wb {
				return fmt.Errorf("in-edge %d→%d: weight %g vs %g", ai[i], u, wa, wb)
			}
		}
	}
	return nil
}

func overlayTestGraph(t *testing.T, n int, seed int64, weighted bool) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		u, v := NodeID(rng.Intn(n)), NodeID(rng.Intn(n))
		if weighted {
			b.AddWeightedEdge(u, v, 1+rng.Float64()*4)
		} else {
			b.AddEdge(u, v)
		}
	}
	g, _, err := b.Build(DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestOverlayEmptyEqualsBase: a fresh overlay is view-equivalent to its
// base and carries no delta.
func TestOverlayEmptyEqualsBase(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := overlayTestGraph(t, 40, 7, weighted)
		o := NewOverlay(g)
		if err := viewEquivalent(g, o); err != nil {
			t.Fatalf("weighted=%v: %v", weighted, err)
		}
		if o.PatchedNodes() != 0 || o.DeltaEdges() != 0 || o.Generation() != 0 {
			t.Fatalf("fresh overlay reports delta: %d nodes, %d edges", o.PatchedNodes(), o.DeltaEdges())
		}
	}
}

// TestOverlayApplyBasics covers insert, remove, weight change, self-loop
// policy on emptied nodes, and COW isolation of the receiver.
func TestOverlayApplyBasics(t *testing.T) {
	// 0→1, 0→2, 1→0, 2→2(self-loop from dangling fixup at build)
	g, err := FromEdges(3, [][2]NodeID{{0, 1}, {0, 2}, {1, 0}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOverlay(g)

	o2, err := o.Apply([]EdgeEdit{{From: 2, To: 0}, {From: 0, To: 1, Remove: true}})
	if err != nil {
		t.Fatal(err)
	}
	if o.M() != g.M() || o.HasEdge(2, 0) || !o.HasEdge(0, 1) {
		t.Fatal("Apply mutated its receiver")
	}
	if !o2.HasEdge(2, 0) || o2.HasEdge(0, 1) || !o2.HasEdge(0, 2) {
		t.Fatalf("edit batch not applied: %v", o2)
	}
	if o2.M() != g.M() {
		t.Fatalf("M = %d, want %d", o2.M(), g.M())
	}
	if got := o2.InNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("in-neighbors of 0 = %v, want [1 2]", got)
	}

	// Removing node 1's only out-edge triggers the self-loop policy.
	o3, err := o2.Apply([]EdgeEdit{{From: 1, To: 0, Remove: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !o3.HasEdge(1, 1) || o3.OutDegree(1) != 1 {
		t.Fatalf("emptied node did not get a self-loop: out(1)=%v", o3.OutNeighbors(1))
	}

	// Weight change via remove+insert.
	o4, err := o3.Apply([]EdgeEdit{{From: 0, To: 2, Remove: true}, {From: 0, To: 2, Weight: 3.5}})
	if err != nil {
		t.Fatal(err)
	}
	if w := o4.EdgeWeight(0, 2); w != 3.5 {
		t.Fatalf("weight change: got %g, want 3.5", w)
	}
	if !o4.Weighted() {
		t.Fatal("overlay did not become weighted")
	}
	if tw := o4.TotalOutWeight(0); tw != 3.5 {
		t.Fatalf("TotalOutWeight(0) = %g, want 3.5", tw)
	}
}

// TestOverlayApplyErrors mirrors the rebuild path's validation.
func TestOverlayApplyErrors(t *testing.T) {
	g, err := FromEdges(3, [][2]NodeID{{0, 1}, {1, 2}, {2, 0}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOverlay(g)
	cases := []struct {
		name  string
		edits []EdgeEdit
	}{
		{"remove missing", []EdgeEdit{{From: 0, To: 2, Remove: true}}},
		{"remove out-of-range source", []EdgeEdit{{From: 9, To: 0, Remove: true}}},
		{"double remove", []EdgeEdit{{From: 0, To: 1, Remove: true}, {From: 0, To: 1, Remove: true}}},
		{"insert existing", []EdgeEdit{{From: 0, To: 1}}},
		{"negative weight", []EdgeEdit{{From: 0, To: 2, Weight: -2}}},
		{"negative node", []EdgeEdit{{From: -1, To: 0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := o.Apply(tc.edits); err == nil {
				t.Fatalf("Apply(%v) succeeded, want error", tc.edits)
			}
			if err := viewEquivalent(g, o); err != nil {
				t.Fatalf("failed Apply mutated the overlay: %v", err)
			}
		})
	}
	// Within-batch insert+remove of the same edge cancels (no error).
	if _, err := o.Apply([]EdgeEdit{{From: 0, To: 2}, {From: 0, To: 2, Remove: true}}); err != nil {
		t.Fatalf("insert+remove pair should cancel, got %v", err)
	}
	// An insert naming NEW nodes that is cancelled by a later remove in
	// the same batch nets to a no-op and must NOT grow the graph (the
	// rebuild's builder never sees the cancelled pair).
	o6, err := o.Apply([]EdgeEdit{{From: 2, To: 7}, {From: 2, To: 7, Remove: true}})
	if err != nil {
		t.Fatalf("cancelled growing insert: %v", err)
	}
	if o6.N() != o.N() || o6.M() != o.M() {
		t.Fatalf("cancelled growing insert changed the graph: n=%d m=%d, want n=%d m=%d", o6.N(), o6.M(), o.N(), o.M())
	}
	// A repeated insert of the same NEW edge is last-wins, matching the
	// rebuild path's batch semantics.
	o5, err := o.Apply([]EdgeEdit{{From: 0, To: 2, Weight: 2}, {From: 0, To: 2, Weight: 7}})
	if err != nil {
		t.Fatalf("repeated insert should overwrite, got %v", err)
	}
	if w := o5.EdgeWeight(0, 2); w != 7 {
		t.Fatalf("repeated insert: weight %g, want 7 (last wins)", w)
	}
}

// TestOverlayNodeGrowth: edits naming nodes beyond N grow the overlay;
// every new node without out-edges self-loops.
func TestOverlayNodeGrowth(t *testing.T) {
	g, err := FromEdges(2, [][2]NodeID{{0, 1}, {1, 0}}, DanglingSelfLoop)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOverlay(g)
	o2, err := o.Apply([]EdgeEdit{{From: 0, To: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if o2.N() != 5 {
		t.Fatalf("N = %d, want 5", o2.N())
	}
	// Nodes 2, 3, 4 are new; 2 and 3 untouched → self-loops; 4 receives an
	// edge but has no out-edges → self-loop.
	for _, u := range []NodeID{2, 3, 4} {
		if !o2.HasEdge(u, u) || o2.OutDegree(u) != 1 {
			t.Fatalf("new node %d: out=%v, want self-loop", u, o2.OutNeighbors(u))
		}
	}
	if got := o2.InNeighbors(4); len(got) != 2 || got[0] != 0 || got[1] != 4 {
		t.Fatalf("in(4) = %v, want [0 4]", got)
	}
	if got := o2.InDegree(2); got != 1 {
		t.Fatalf("in-degree(2) = %d, want 1 (its own loop)", got)
	}
	if o2.M() != g.M()+4 {
		t.Fatalf("M = %d, want %d", o2.M(), g.M()+4)
	}
}

// TestOverlayCompactRoundTrip: compacting an edited overlay yields a CSR
// equivalent to the overlay, and a fresh overlay over it matches too.
func TestOverlayCompactRoundTrip(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := overlayTestGraph(t, 60, 11, weighted)
		o := NewOverlay(g)
		rng := rand.New(rand.NewSource(99))
		for batch := 0; batch < 5; batch++ {
			var edits []EdgeEdit
			seen := map[[2]NodeID]bool{}
			for len(edits) < 4 {
				u := NodeID(rng.Intn(o.N()))
				if rng.Intn(2) == 0 && o.OutDegree(u) > 1 {
					nbrs := o.OutNeighbors(u)
					v := nbrs[rng.Intn(len(nbrs))]
					if seen[[2]NodeID{u, v}] {
						continue
					}
					seen[[2]NodeID{u, v}] = true
					edits = append(edits, EdgeEdit{From: u, To: v, Remove: true})
				} else {
					v := NodeID(rng.Intn(o.N()))
					if u == v || o.HasEdge(u, v) || seen[[2]NodeID{u, v}] {
						continue
					}
					seen[[2]NodeID{u, v}] = true
					edits = append(edits, EdgeEdit{From: u, To: v})
				}
			}
			next, err := o.Apply(edits)
			if err != nil {
				t.Fatal(err)
			}
			o = next
		}
		compacted, err := o.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if err := compacted.Validate(); err != nil {
			t.Fatalf("weighted=%v: compacted graph invalid: %v", weighted, err)
		}
		if err := viewEquivalent(o, compacted); err != nil {
			t.Fatalf("weighted=%v: compacted ≠ overlay: %v", weighted, err)
		}
		if err := viewEquivalent(o, NewOverlay(compacted)); err != nil {
			t.Fatalf("weighted=%v: fresh overlay over compacted ≠ overlay: %v", weighted, err)
		}
	}
}
